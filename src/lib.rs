//! # exact-diag
//!
//! Umbrella crate of the `lattice-symmetries-rs` workspace: a from-scratch
//! Rust reproduction of *"Implementing scalable matrix-vector products for
//! the exact diagonalization methods in quantum many-body physics"*
//! (Westerhout & Chamberlain, PAW-ATM '23, arXiv:2308.16712).
//!
//! Re-exports the full public API; see [`ls_core`] for the main entry
//! points and the repository `README.md` / `DESIGN.md` for the
//! architecture. Runnable examples live in `examples/`, the experiment
//! harness in `crates/bench`.

pub use ls_baseline as baseline;
pub use ls_basis as basis;
pub use ls_core as core;
pub use ls_core::prelude;
pub use ls_dist as dist;
pub use ls_eigen as eigen;
pub use ls_expr as expr;
pub use ls_kernels as kernels;
pub use ls_perfmodel as perfmodel;
pub use ls_runtime as runtime;
pub use ls_symmetry as symmetry;
