//! Memory-bounded eigensolving with checkpoint/restart: kill this
//! process at ANY moment (SIGKILL included) and rerun the same command —
//! the solve resumes from the last completed restart cycle and finishes
//! with **bit-identical** eigenvalues.
//!
//! The solver is thick-restart Lanczos holding at most `k + extra`
//! Krylov vectors; each restart cycle compresses the basis to the best
//! Ritz pairs and (here, `every = 1`) writes an atomic, checksummed
//! checkpoint. The example drives one restart cycle per solver call so
//! it can narrate progress — every call after the first resumes from the
//! checkpoint, which is exactly the kill-and-resume path.
//!
//! ```sh
//! cargo run --release --example checkpoint_restart -- \
//!     [--sites N] [--weight W] [--k K] [--extra P] [--tol T] \
//!     [--ckpt PATH] [--keep K] [--fresh] [--verify] [--max-cycles C]
//! ```
//!
//! `--fresh` deletes an existing checkpoint first (generation files and
//! manifest included); `--verify` reruns the whole solve uninterrupted
//! in memory and asserts the eigenvalues are bit-identical to the
//! chunked/resumed run. `--keep K` (K > 1) switches to rotated
//! keep-last-K checkpoints: each cycle writes a new generation file and
//! a crash-consistent manifest, and the resume path falls back to an
//! older generation if the newest is torn — determinism makes resumption
//! from *any* cycle converge to the same bits.
//!
//! With `LS_TRANSPORT=multiprocess LS_LOCALES=N` the same contract holds
//! across OS processes: the solve runs distributed (thick-restart over
//! the producer/consumer product with the deterministic schedule), every
//! rank writes the identical canonical-order checkpoint via its own
//! atomic tempfile, and killing the whole job (launcher included) at any
//! moment still resumes bit-identically — on the same locale count.

use exact_diag::prelude::*;
use exact_diag::runtime::transport;

fn main() {
    transport::launch_if_requested();
    let mut sites = 18usize;
    let mut weight: Option<usize> = None;
    let mut k = 2usize;
    let mut extra = 10usize;
    let mut tol = 1e-10f64;
    let mut ckpt = String::from("checkpoint_restart.lsck");
    let mut keep = 1usize;
    let mut fresh = false;
    let mut verify = false;
    let mut max_cycles = 500usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().expect("missing value for flag");
        match arg.as_str() {
            "--sites" => sites = value().parse().unwrap(),
            "--weight" => weight = Some(value().parse().unwrap()),
            "--k" => k = value().parse().unwrap(),
            "--extra" => extra = value().parse().unwrap(),
            "--tol" => tol = value().parse().unwrap(),
            "--ckpt" => ckpt = value(),
            "--keep" => keep = value().parse().unwrap(),
            "--fresh" => fresh = true,
            "--verify" => verify = true,
            "--max-cycles" => max_cycles = value().parse().unwrap(),
            other => panic!(
                "unknown flag {other} (try --sites/--weight/--k/--extra/--tol/--ckpt/\
                 --keep/--fresh/--verify/--max-cycles)"
            ),
        }
    }
    let weight = weight.unwrap_or(sites / 2) as u32;
    let path = std::path::PathBuf::from(&ckpt);
    if fresh {
        // One deleter is enough; the barrier keeps a lagging rank from
        // probing (and resuming from) the file before it disappears.
        // `remove_checkpoint` also prunes rotated generation files.
        if transport::is_primary() {
            exact_diag::core::io::remove_checkpoint(&path).ok();
        }
        if let Some(mp) = transport::active() {
            mp.barrier();
        }
    }

    if let Some(mp) = transport::active() {
        run_distributed(
            mp, sites, weight, k, extra, tol, &ckpt, &path, keep, verify, max_cycles,
        );
        return;
    }

    let expr = heisenberg(&chain_bonds(sites), 1.0);
    let sector = SectorSpec::with_weight(sites as u32, weight).unwrap();
    let (basis, op) = Operator::<f64>::from_expr(&expr, sector).unwrap();
    // `LS_PRECISION=f32|mixed` stores the Krylov state (and the
    // checkpoint payload) in 4-byte lanes; the kill-and-resume contract
    // is per precision mode.
    let precision = exact_diag::eigen::Precision::from_env();
    let lane = if precision == exact_diag::eigen::Precision::F64 { 8 } else { 4 };
    println!(
        "{sites}-site U(1) sector (weight {weight}): dim {}, budget {} vectors \
         ({:.1} MiB of Krylov state, {lane}-byte lanes), tol {tol:.0e}",
        basis.dim(),
        k + extra,
        ((k + extra) * basis.dim() * lane) as f64 / (1024.0 * 1024.0),
    );
    if path.exists() {
        println!("resuming from checkpoint {ckpt}");
    }
    if precision != exact_diag::eigen::Precision::F64 {
        run_reduced(precision, &op, k, extra, tol, &ckpt, &path, keep, verify, max_cycles);
        return;
    }

    let base = RestartOptions { k, extra, tol, ..RestartOptions::new(k) };
    let policy = CheckpointPolicy { keep, ..CheckpointPolicy::new(path.clone()) };

    // One restart cycle per call: `max_restarts` is cumulative (stored in
    // the checkpoint), so raising the cap by 1 each call runs exactly one
    // new cycle and re-enters through the resume path every time. After a
    // resume, start past the checkpoint's restart counter — calls with a
    // lower cap would reload the state and return without doing work.
    // The latest-checkpoint probe understands both the plain single-file
    // format and the rotated manifest (falling back past torn newest
    // generations, exactly like the solver's own resume path).
    let start = if path.exists() {
        match exact_diag::core::io::load_latest_checkpoint::<Vec<f64>, _>(&path, &op) {
            Ok(st) => st.restarts + 1,
            Err(e) => panic!("cannot resume from {ckpt}: {e}"),
        }
    } else {
        1
    };
    let mut result = None;
    for cycle in start..=max_cycles.max(start) {
        let res = exact_diag::eigen::thick_restart_lanczos(
            &op,
            &RestartOptions {
                max_restarts: cycle,
                checkpoint: Some(policy.clone()),
                ..base.clone()
            },
        );
        let lam0 = res.eigenvalues.first().copied().unwrap_or(f64::NAN);
        let resid = res.residuals.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "cycle {cycle:>4}: λ0 ≈ {lam0:.12}  max residual {resid:.3e}  \
             (peak {} vectors, {} matvecs this call)",
            res.peak_retained, res.iterations
        );
        let done = res.converged;
        result = Some(res);
        if done {
            break;
        }
    }
    let result = result.expect("max_cycles must be >= 1");
    assert!(result.converged, "did not converge within {max_cycles} cycles");

    print!("EIGENVALUES");
    for v in &result.eigenvalues {
        print!(" {:016x}", v.to_bits());
    }
    println!();
    for (i, v) in result.eigenvalues.iter().enumerate() {
        println!("  λ{i} = {v:.15}");
    }

    if verify {
        // The uninterrupted reference: same options, no checkpointing,
        // one call. Bit-identical eigenvalues are the resume contract.
        let reference = exact_diag::eigen::thick_restart_lanczos(&op, &base);
        assert!(reference.converged);
        assert_eq!(
            reference.eigenvalues.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            result.eigenvalues.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "checkpointed run diverged from the uninterrupted solve"
        );
        println!("VERIFIED: chunked/resumed run is bit-identical to the uninterrupted solve");
    }
}

/// The reduced-precision variant (`LS_PRECISION=f32|mixed`): the same
/// cycle-by-cycle kill-and-resume protocol, but the Krylov state is
/// stored in f32 ([`exact_diag::eigen::F32Vec`] via
/// [`exact_diag::eigen::MixedOp`]) and checkpoints carry 4-byte lanes.
/// Resume stays bit-identical *within the mode*; `mixed` additionally
/// runs one f64 Rayleigh–Ritz refinement over the converged Ritz basis
/// before reporting eigenvalues.
#[allow(clippy::too_many_arguments)]
fn run_reduced(
    precision: exact_diag::eigen::Precision,
    op: &Operator<f64>,
    k: usize,
    extra: usize,
    tol: f64,
    ckpt: &str,
    path: &std::path::Path,
    keep: usize,
    verify: bool,
    max_cycles: usize,
) {
    use exact_diag::eigen::{
        refine_in_f64, thick_restart_lanczos_in, F32Vec, MixedOp, Precision,
    };

    let mixed = MixedOp::new(op);
    // The mixed mode refines over the converged Ritz basis, so the f32
    // solve must return its vectors.
    let base = RestartOptions {
        k,
        extra,
        tol,
        want_vectors: precision == Precision::Mixed,
        ..RestartOptions::new(k)
    };
    let policy = CheckpointPolicy { keep, ..CheckpointPolicy::new(path.to_path_buf()) };

    let start = if path.exists() {
        match exact_diag::core::io::load_latest_checkpoint::<F32Vec, _>(path, &mixed) {
            Ok(st) => st.restarts + 1,
            Err(e) => panic!("cannot resume from {ckpt}: {e}"),
        }
    } else {
        1
    };
    let mut result = None;
    for cycle in start..=max_cycles.max(start) {
        let res = thick_restart_lanczos_in(
            &mixed,
            &RestartOptions {
                max_restarts: cycle,
                checkpoint: Some(policy.clone()),
                ..base.clone()
            },
        );
        let lam0 = res.eigenvalues.first().copied().unwrap_or(f64::NAN);
        let resid = res.residuals.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "cycle {cycle:>4}: λ0 ≈ {lam0:.12}  max residual {resid:.3e}  \
             (peak {} vectors, {} matvecs this call)",
            res.peak_retained, res.iterations
        );
        let done = res.converged;
        result = Some(res);
        if done {
            break;
        }
    }
    let result = result.expect("max_cycles must be >= 1");
    assert!(result.converged, "did not converge within {max_cycles} cycles");

    // Refinement is deterministic over a deterministic basis, so the
    // refined eigenvalues inherit the resume contract bit for bit.
    let finish = |res: &exact_diag::eigen::LanczosResultIn<F32Vec>| -> Vec<f64> {
        match precision {
            Precision::Mixed => {
                let basis = res.eigenvectors.as_ref().expect("want_vectors was set");
                let (vals, _, _) = refine_in_f64(op, basis);
                vals.into_iter().take(k).collect()
            }
            _ => res.eigenvalues.clone(),
        }
    };
    let eigenvalues = finish(&result);

    print!("EIGENVALUES");
    for v in &eigenvalues {
        print!(" {:016x}", v.to_bits());
    }
    println!();
    for (i, v) in eigenvalues.iter().enumerate() {
        println!("  λ{i} = {v:.15}");
    }

    if verify {
        let reference = thick_restart_lanczos_in(&mixed, &base);
        assert!(reference.converged);
        assert_eq!(
            finish(&reference).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            eigenvalues.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "checkpointed run diverged from the uninterrupted solve"
        );
        println!("VERIFIED: chunked/resumed run is bit-identical to the uninterrupted solve");
    }
}

/// The multiprocess variant: the identical cycle-by-cycle protocol, but
/// the solve is the distributed thick-restart Lanczos (deterministic
/// producer/consumer schedule), the Krylov state lives in the hashed
/// distribution and the checkpoint is written in canonical global order
/// by every rank. SPMD: all ranks execute everything collective; only
/// rank 0 narrates.
#[allow(clippy::too_many_arguments)]
fn run_distributed(
    mp: &'static transport::MpRuntime,
    sites: usize,
    weight: u32,
    k: usize,
    extra: usize,
    tol: f64,
    ckpt: &str,
    path: &std::path::Path,
    keep: usize,
    verify: bool,
    max_cycles: usize,
) {
    use exact_diag::basis::{SectorSpec, SymmetrizedOperator};
    use exact_diag::dist::eigensolve::{
        dist_thick_restart_lanczos, DistOp, DistRestartOptions,
    };
    use exact_diag::dist::enumerate_dist;
    use exact_diag::dist::matvec::PcOptions;
    use exact_diag::runtime::{Cluster, ClusterSpec, DistVec};

    let primary = mp.rank() == 0;
    let kernel = heisenberg(&chain_bonds(sites), 1.0).to_kernel(sites as u32).unwrap();
    let sector = SectorSpec::with_weight(sites as u32, weight).unwrap();
    let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();
    let cluster = Cluster::new(ClusterSpec::new(mp.n_locales(), 1));
    let basis = enumerate_dist(&cluster, &sector, 4);
    if primary {
        println!(
            "{sites}-site U(1) sector (weight {weight}): dim {}, budget {} vectors, \
             tol {tol:.0e} — distributed over {} processes",
            basis.dim(),
            k + extra,
            mp.n_locales(),
        );
        if path.exists() {
            println!("resuming from checkpoint {ckpt}");
        }
    }

    let pc = PcOptions { deterministic: true, ..PcOptions::default() };
    let base = RestartOptions { k, extra, tol, ..RestartOptions::new(k) };
    let policy = CheckpointPolicy { keep, ..CheckpointPolicy::new(path.to_path_buf()) };

    let start = if path.exists() {
        let probe = DistOp::new(&cluster, &op, &basis, pc);
        match exact_diag::core::io::load_latest_checkpoint::<DistVec<f64>, _>(path, &probe) {
            Ok(st) => st.restarts + 1,
            Err(e) => panic!("cannot resume from {ckpt}: {e}"),
        }
    } else {
        1
    };
    let mut result = None;
    for cycle in start..=max_cycles.max(start) {
        let res = dist_thick_restart_lanczos(
            &cluster,
            &op,
            &basis,
            &DistRestartOptions {
                restart: RestartOptions {
                    max_restarts: cycle,
                    checkpoint: Some(policy.clone()),
                    ..base.clone()
                },
                pc,
            },
        );
        let lam0 = res.eigenvalues.first().copied().unwrap_or(f64::NAN);
        let resid = res.residuals.iter().cloned().fold(0.0f64, f64::max);
        if primary {
            println!(
                "cycle {cycle:>4}: λ0 ≈ {lam0:.12}  max residual {resid:.3e}  \
                 (peak {} vectors, {} matvecs this call)",
                res.peak_retained, res.iterations
            );
        }
        let done = res.converged;
        result = Some(res);
        if done {
            break;
        }
    }
    let result = result.expect("max_cycles must be >= 1");
    assert!(result.converged, "did not converge within {max_cycles} cycles");

    if primary {
        print!("EIGENVALUES");
        for v in &result.eigenvalues {
            print!(" {:016x}", v.to_bits());
        }
        println!();
        for (i, v) in result.eigenvalues.iter().enumerate() {
            println!("  λ{i} = {v:.15}");
        }
    }

    if verify {
        // Uninterrupted reference on the same cluster shape (collective:
        // every rank participates; every rank checks).
        let reference = dist_thick_restart_lanczos(
            &cluster,
            &op,
            &basis,
            &DistRestartOptions { restart: base, pc },
        );
        assert!(reference.converged);
        assert_eq!(
            reference.eigenvalues.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            result.eigenvalues.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "checkpointed run diverged from the uninterrupted solve"
        );
        if primary {
            println!(
                "VERIFIED: chunked/resumed run is bit-identical to the uninterrupted solve"
            );
        }
    }
}
