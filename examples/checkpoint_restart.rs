//! Memory-bounded eigensolving with checkpoint/restart: kill this
//! process at ANY moment (SIGKILL included) and rerun the same command —
//! the solve resumes from the last completed restart cycle and finishes
//! with **bit-identical** eigenvalues.
//!
//! The solver is thick-restart Lanczos holding at most `k + extra`
//! Krylov vectors; each restart cycle compresses the basis to the best
//! Ritz pairs and (here, `every = 1`) writes an atomic, checksummed
//! checkpoint. The example drives one restart cycle per solver call so
//! it can narrate progress — every call after the first resumes from the
//! checkpoint, which is exactly the kill-and-resume path.
//!
//! ```sh
//! cargo run --release --example checkpoint_restart -- \
//!     [--sites N] [--weight W] [--k K] [--extra P] [--tol T] \
//!     [--ckpt PATH] [--fresh] [--verify] [--max-cycles C]
//! ```
//!
//! `--fresh` deletes an existing checkpoint first; `--verify` reruns the
//! whole solve uninterrupted in memory and asserts the eigenvalues are
//! bit-identical to the chunked/resumed run.

use exact_diag::prelude::*;

fn main() {
    let mut sites = 18usize;
    let mut weight: Option<usize> = None;
    let mut k = 2usize;
    let mut extra = 10usize;
    let mut tol = 1e-10f64;
    let mut ckpt = String::from("checkpoint_restart.lsck");
    let mut fresh = false;
    let mut verify = false;
    let mut max_cycles = 500usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().expect("missing value for flag");
        match arg.as_str() {
            "--sites" => sites = value().parse().unwrap(),
            "--weight" => weight = Some(value().parse().unwrap()),
            "--k" => k = value().parse().unwrap(),
            "--extra" => extra = value().parse().unwrap(),
            "--tol" => tol = value().parse().unwrap(),
            "--ckpt" => ckpt = value(),
            "--fresh" => fresh = true,
            "--verify" => verify = true,
            "--max-cycles" => max_cycles = value().parse().unwrap(),
            other => panic!(
                "unknown flag {other} (try --sites/--weight/--k/--extra/--tol/--ckpt/\
                 --fresh/--verify/--max-cycles)"
            ),
        }
    }
    let weight = weight.unwrap_or(sites / 2) as u32;
    let path = std::path::PathBuf::from(&ckpt);
    if fresh {
        std::fs::remove_file(&path).ok();
    }

    let expr = heisenberg(&chain_bonds(sites), 1.0);
    let sector = SectorSpec::with_weight(sites as u32, weight).unwrap();
    let (basis, op) = Operator::<f64>::from_expr(&expr, sector).unwrap();
    println!(
        "{sites}-site U(1) sector (weight {weight}): dim {}, budget {} vectors \
         ({:.1} MiB of Krylov state), tol {tol:.0e}",
        basis.dim(),
        k + extra,
        ((k + extra) * basis.dim() * 8) as f64 / (1024.0 * 1024.0),
    );
    if path.exists() {
        println!("resuming from checkpoint {ckpt}");
    }

    let base = RestartOptions { k, extra, tol, ..RestartOptions::new(k) };
    let policy = CheckpointPolicy::new(path.clone());

    // One restart cycle per call: `max_restarts` is cumulative (stored in
    // the checkpoint), so raising the cap by 1 each call runs exactly one
    // new cycle and re-enters through the resume path every time. After a
    // resume, start past the checkpoint's restart counter — calls with a
    // lower cap would reload the state and return without doing work.
    let start = if path.exists() {
        match exact_diag::core::io::load_checkpoint::<Vec<f64>, _>(&path, &op) {
            Ok(st) => st.restarts + 1,
            Err(e) => panic!("cannot resume from {ckpt}: {e}"),
        }
    } else {
        1
    };
    let mut result = None;
    for cycle in start..=max_cycles.max(start) {
        let res = exact_diag::eigen::thick_restart_lanczos(
            &op,
            &RestartOptions {
                max_restarts: cycle,
                checkpoint: Some(policy.clone()),
                ..base.clone()
            },
        );
        let lam0 = res.eigenvalues.first().copied().unwrap_or(f64::NAN);
        let resid = res.residuals.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "cycle {cycle:>4}: λ0 ≈ {lam0:.12}  max residual {resid:.3e}  \
             (peak {} vectors, {} matvecs this call)",
            res.peak_retained, res.iterations
        );
        let done = res.converged;
        result = Some(res);
        if done {
            break;
        }
    }
    let result = result.expect("max_cycles must be >= 1");
    assert!(result.converged, "did not converge within {max_cycles} cycles");

    print!("EIGENVALUES");
    for v in &result.eigenvalues {
        print!(" {:016x}", v.to_bits());
    }
    println!();
    for (i, v) in result.eigenvalues.iter().enumerate() {
        println!("  λ{i} = {v:.15}");
    }

    if verify {
        // The uninterrupted reference: same options, no checkpointing,
        // one call. Bit-identical eigenvalues are the resume contract.
        let reference = exact_diag::eigen::thick_restart_lanczos(&op, &base);
        assert!(reference.converged);
        assert_eq!(
            reference.eigenvalues.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            result.eigenvalues.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "checkpointed run diverged from the uninterrupted solve"
        );
        println!("VERIFIED: chunked/resumed run is bit-identical to the uninterrupted solve");
    }
}
