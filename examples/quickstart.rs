//! Quickstart: exact diagonalization of a Heisenberg ring in three steps.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use exact_diag::prelude::*;

fn main() {
    let n = 16usize;

    // 1. The Hamiltonian as a symbolic expression: the antiferromagnetic
    //    Heisenberg model on a closed chain — the paper's benchmark system.
    let hamiltonian = heisenberg(&chain_bonds(n), 1.0);
    println!("H = J Σ S_i·S_{{i+1}} on a {n}-site ring");

    // 2. The symmetry sector: U(1) at half filling, momentum 0, even
    //    reflection parity, even spin-inversion parity. The paper's Fig. 1
    //    trick: 2^16 = 65536 states collapse to a few hundred.
    let group = chain_group(n, 0, Some(0), Some(0)).unwrap();
    let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
    let u1_states =
        ls_kernels::combinadics::BinomialTable::new().choose(n as u32, n as u32 / 2);
    println!(
        "sector: dim {} (of {u1_states} U(1) states, of 2^{n} = {} raw states)",
        sector.dimension(),
        1u64 << n
    );

    // 3. Build the basis + operator, run Lanczos.
    let (basis, op) = Operator::<f64>::from_expr(&hamiltonian, sector).unwrap();
    let (e0, psi) = ground_state(&op);
    println!("basis dim     = {}", basis.dim());
    println!("ground energy = {e0:.12}");
    println!("energy / site = {:.12}", e0 / n as f64);
    println!("|psi| = {:.3} (normalized)", psi.iter().map(|x| x * x).sum::<f64>().sqrt());

    // The thermodynamic limit is 1/4 - ln 2 ≈ -0.443147; finite chains
    // approach it from below.
    assert!((e0 / n as f64 + 0.446).abs() < 0.01);

    // A couple of excited levels in the same sector:
    let lows = lowest_eigenvalues(&op, 3);
    println!("lowest sector levels: {lows:?}");
}
