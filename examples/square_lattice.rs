//! Two-dimensional example: the 4×4 square-lattice Heisenberg
//! antiferromagnet with 2D translation symmetry.
//!
//! Demonstrates that the machinery is not chain-specific: any abelian-
//! character symmetry group works, here T_x × T_y on a torus.
//!
//! ```sh
//! cargo run --release --example square_lattice
//! ```

use exact_diag::prelude::*;
use exact_diag::symmetry::lattice::square_site;

fn main() {
    let (lx, ly) = (4usize, 4usize);
    let n = lx * ly;
    let bonds = square_bonds(lx, ly);
    println!("4x4 periodic square lattice: {} sites, {} bonds", n, bonds.len());

    let expr = heisenberg(&bonds, 1.0);

    // Scan the (kx, ky) momentum grid for the ground state.
    let mut results = Vec::new();
    for kx in 0..lx as i64 {
        for ky in 0..ly as i64 {
            let group = SymmetryGroup::generate(&[
                Generator::new(square_translation_x(lx, ly), kx),
                Generator::new(square_translation_y(lx, ly), ky),
            ])
            .unwrap();
            let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
            let dim = sector.dimension();
            let e = if sector.is_real() {
                let (_, op) = Operator::<f64>::from_expr(&expr, sector).unwrap();
                ground_state_energy(&op)
            } else {
                let (_, op) = Operator::<Complex64>::from_expr(&expr, sector).unwrap();
                ground_state_energy(&op)
            };
            println!("  (kx, ky) = ({kx}, {ky})  dim {dim:>5}  E0 = {e:.10}");
            results.push(((kx, ky), e));
        }
    }
    results.sort_by(|a, b| a.1.total_cmp(&b.1));
    let ((kx, ky), e0) = results[0];
    println!("\nglobal ground state: E0 = {e0:.10} at (kx, ky) = ({kx}, {ky})");
    println!("E0 per site = {:.10}", e0 / n as f64);

    // Literature value for the 4x4 torus: E0 = -11.228483 (e.g. QMC /
    // exact diagonalization benchmarks), at zero momentum.
    assert_eq!((kx, ky), (0, 0));
    assert!((e0 + 11.228_483).abs() < 1e-4, "E0 = {e0}");

    // Sanity: the Néel-ordered product state energy is higher.
    let neel_energy: f64 = bonds
        .iter()
        .map(|&(a, b)| {
            let (ax, ay) = (a % lx, a / lx);
            let (bx, by) = (b % lx, b / lx);
            let sa = (ax + ay) % 2;
            let sb = (bx + by) % 2;
            if sa == sb {
                0.25
            } else {
                -0.25
            }
        })
        .sum();
    println!("classical Néel energy = {neel_energy} (> E0, as it must be)");
    assert!(neel_energy > e0);
    let _ = square_site(lx, 0, 0);
}
