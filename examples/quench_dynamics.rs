//! Real-time dynamics after a quantum quench: the Néel state evolving
//! under the Heisenberg Hamiltonian.
//!
//! Krylov time evolution (`ls_eigen::expm`) uses nothing but the same
//! matrix-vector product the paper scales up — this is the "dynamics"
//! capability of packages like QuSpin, running on our matrix-free stack.
//! The staggered magnetization decays from its maximal value 1/2 as the
//! initial product state dephases, while energy and norm are conserved
//! to Krylov accuracy.
//!
//! ```sh
//! cargo run --release --example quench_dynamics
//! ```

use exact_diag::eigen::evolve_real_time;
use exact_diag::prelude::*;

fn main() {
    let n = 14usize;
    // U(1)-only sector: the Néel state is a single basis vector there.
    let sector = SectorSpec::with_weight(n as u32, n as u32 / 2).unwrap();
    let expr = heisenberg(&chain_bonds(n), 1.0);
    let (basis, op) = Operator::<Complex64>::from_expr(&expr, sector).unwrap();
    println!("quench: |Néel⟩ = |↑↓↑↓...⟩ under the {n}-site Heisenberg ring");
    println!("sector dim = {}\n", basis.dim());

    // The Néel state |↑↓↑↓…⟩: bit i set for even i.
    let neel: u64 = (0..n).step_by(2).map(|i| 1u64 << i).sum();
    let idx = basis.index_of(neel).expect("Néel state is in the sector");
    let mut psi = vec![Complex64::ZERO; basis.dim()];
    psi[idx] = Complex64::ONE;

    // Staggered magnetization m_s = (1/n) Σ_i (-1)^i ⟨Sz_i⟩, computed
    // directly from the amplitudes (diagonal observable).
    let staggered = |psi: &[Complex64]| -> f64 {
        let mut m = 0.0;
        for (j, amp) in psi.iter().enumerate() {
            let w = amp.norm_sqr();
            if w == 0.0 {
                continue;
            }
            let s = basis.state(j);
            let mut sz = 0.0;
            for i in 0..n {
                let up = (s >> i) & 1 == 1;
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                sz += sign * if up { 0.5 } else { -0.5 };
            }
            m += w * sz;
        }
        m / n as f64
    };

    let energy = |psi: &[Complex64]| -> f64 {
        let mut h_psi = vec![Complex64::ZERO; basis.dim()];
        op.apply(psi, &mut h_psi);
        psi.iter().zip(&h_psi).map(|(a, b)| a.conj() * *b).sum::<Complex64>().re
    };

    let e_init = energy(&psi);
    println!("{:>6} {:>12} {:>14} {:>10}", "t", "m_s(t)", "energy", "norm");
    println!("{}", "-".repeat(46));
    let dt = 0.5;
    let steps = 12;
    let mut t = 0.0;
    for _ in 0..=steps {
        let norm: f64 = psi.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        println!("{t:>6.2} {:>12.6} {:>14.9} {:>10.6}", staggered(&psi), energy(&psi), norm);
        psi = evolve_real_time(&op, &psi, dt, 40);
        t += dt;
    }

    // Conservation checks.
    let e_final = energy(&psi);
    let norm: f64 = psi.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    assert!((e_final - e_init).abs() < 1e-7, "energy drift {}", e_final - e_init);
    assert!((norm - 1.0).abs() < 1e-8, "norm drift {norm}");
    // The Néel order must have decayed substantially by t = 6.
    assert!(staggered(&psi).abs() < 0.25, "m_s did not decay");
    println!("\nenergy and norm conserved ✓; staggered order decayed ✓");
}
