//! Ground-state survey of Heisenberg rings: energies, finite-size
//! convergence and the singlet-triplet gap, resolved by symmetry sector.
//!
//! This is the workload family of the paper's evaluation (Sec. 6), at
//! laptop scale. For each even ring size we diagonalize every momentum
//! sector (complex sectors transparently switch to `Complex64`) and
//! report where the ground state lives — alternating between k = 0 and
//! k = π with the parity of N/2, per Marshall's sign rule.
//!
//! ```sh
//! cargo run --release --example heisenberg_chain
//! ```

use exact_diag::prelude::*;

fn sector_energy(expr: &Expr, n: usize, k: i64) -> f64 {
    let group = chain_group(n, k, None, None).unwrap();
    let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
    if sector.is_real() {
        let (_, op) = Operator::<f64>::from_expr(expr, sector).unwrap();
        ground_state_energy(&op)
    } else {
        let (_, op) = Operator::<Complex64>::from_expr(expr, sector).unwrap();
        ground_state_energy(&op)
    }
}

fn main() {
    println!(
        "{:>4} {:>10} {:>16} {:>12} {:>8} {:>12}",
        "N", "dim(k=0)", "E0", "E0/N", "k(gs)", "gap"
    );
    println!("{}", "-".repeat(68));
    let bethe = 0.25 - std::f64::consts::LN_2; // thermodynamic limit of E0/N

    for n in [8usize, 10, 12, 14, 16, 18] {
        let expr = heisenberg(&chain_bonds(n), 1.0);

        // Scan all momentum sectors for the global ground state & gap.
        let mut energies: Vec<(i64, f64)> =
            (0..n as i64).map(|k| (k, sector_energy(&expr, n, k))).collect();
        energies.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (k_gs, e0) = energies[0];
        let gap = energies[1].1 - e0;

        let group = chain_group(n, 0, None, None).unwrap();
        let dim_k0 = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap().dimension();

        println!(
            "{n:>4} {dim_k0:>10} {e0:>16.10} {:>12.8} {k_gs:>8} {gap:>12.8}",
            e0 / n as f64
        );

        // Marshall: ground state momentum is 0 for N/2 even, π for N/2 odd.
        let expect_k = if (n / 2) % 2 == 0 { 0 } else { n as i64 / 2 };
        assert_eq!(k_gs, expect_k, "unexpected ground-state momentum");
    }
    println!("{}", "-".repeat(68));
    println!("thermodynamic limit (Bethe ansatz): E0/N -> {bethe:.8}");
}
