//! Models smoke test: the local-Hilbert pipeline on non-spin-1/2 sites.
//! A half-filled Hubbard chain (spinful fermions, Jordan-Wigner signs)
//! and a spin-1 Heisenberg ring are solved with the distributed
//! thick-restart Lanczos engine and checked on the primary rank against
//! a dense Jacobi oracle and the shared-memory `BatchedPull` solver.
//!
//! ```sh
//! cargo run --release --example hubbard_chain
//! ```
//!
//! runs on the in-process transport;
//!
//! ```sh
//! LS_TRANSPORT=multiprocess LS_LOCALES=2 \
//!     cargo run --release --example hubbard_chain
//! ```
//!
//! runs the identical program across real OS processes. The
//! `EIGENVALUES*` hex lines are bit-identical across both backends (the
//! deterministic producer/consumer schedule); CI compares the digests.

use exact_diag::basis::SymmetrizedOperator;
use exact_diag::dist::eigensolve::{dist_thick_restart_lanczos, DistRestartOptions};
use exact_diag::dist::{enumerate_dist, PcOptions};
use exact_diag::eigen::jacobi::eigh_real;
use exact_diag::prelude::*;
use exact_diag::runtime::transport;
use exact_diag::runtime::{Cluster, ClusterSpec};

/// Prints on the primary rank only (every rank in multiprocess mode runs
/// the same program; one copy of the report is enough).
macro_rules! say {
    ($($arg:tt)*) => { if transport::is_primary() { println!($($arg)*); } };
}

/// Ground-state energy from the dense sector matrix via cyclic Jacobi.
fn dense_ground_energy(expr: &Expr, sector: &SectorSpec) -> f64 {
    let hilbert = LocalHilbert::from_encoding(sector.encoding());
    let kernel = expr.to_kernel_in(&hilbert, sector.n_sites()).unwrap();
    let basis = SpinBasis::build(sector.clone());
    let n = basis.dim();
    let dense = kernel.to_dense_states(basis.states());
    let mut flat = vec![0.0; n * n];
    for (r, row) in dense.iter().enumerate() {
        for (c, z) in row.iter().enumerate() {
            flat[r * n + c] = z.re;
        }
    }
    let (evals, _) = eigh_real(&flat, n);
    evals.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Solves one sector with the distributed thick-restart engine and
/// verifies it (primary rank) against the dense oracle and the
/// shared-memory pipeline. Returns the distributed ground energy.
fn solve_and_check(label: &str, expr: &Expr, sector: &SectorSpec, cluster: &Cluster) -> f64 {
    let hilbert = LocalHilbert::from_encoding(sector.encoding());
    let kernel = expr.to_kernel_in(&hilbert, sector.n_sites()).unwrap();
    let op = SymmetrizedOperator::<f64>::new(&kernel, sector).unwrap();
    let basis = enumerate_dist(cluster, sector, 3);
    say!("{label}: dim {} (exact: {})", basis.dim(), sector.dimension());

    let t = std::time::Instant::now();
    let res = dist_thick_restart_lanczos(
        cluster,
        &op,
        &basis,
        &DistRestartOptions {
            restart: RestartOptions {
                extra: 10,
                tol: 1e-12,
                want_vectors: false,
                ..RestartOptions::new(1)
            },
            pc: PcOptions { deterministic: true, ..PcOptions::default() },
        },
    );
    assert!(res.converged, "{label}: distributed solve did not converge");
    let e_dist = res.eigenvalues[0];
    say!(
        "{label}: E0 = {:.12} ({} iterations, {:.1} ms)",
        e_dist,
        res.iterations,
        t.elapsed().as_secs_f64() * 1e3
    );

    // The reference solves are process-local; only the primary runs them.
    if transport::is_primary() {
        let e_dense = dense_ground_energy(expr, sector);
        let (_, shared) = Operator::<f64>::from_expr(expr, sector.clone()).unwrap();
        let e_pull = ground_state_energy(&shared);
        say!("{label}: dense oracle {e_dense:.12}, shared-memory {e_pull:.12}");
        assert!((e_dist - e_dense).abs() < 1e-10, "{label}: dist vs dense oracle");
        assert!((e_pull - e_dense).abs() < 1e-10, "{label}: pull vs dense oracle");
    }
    e_dist
}

fn main() {
    // Relaunches as the multi-process launcher when LS_TRANSPORT says so;
    // a no-op on the in-process backend and inside worker processes.
    transport::launch_if_requested();

    let mp = transport::active();
    let locales = mp.map(|m| m.n_locales()).unwrap_or_else(|| {
        std::env::var(transport::ENV_LOCALES).ok().and_then(|v| v.parse().ok()).unwrap_or(2)
    });
    say!(
        "== {} cluster: {locales} locales x 2 cores (backend: {}) ==",
        if mp.is_some() { "multiprocess" } else { "simulated" },
        transport::backend().name()
    );
    let cluster = Cluster::new(ClusterSpec::new(locales, 2));

    // Half-filled 6-site Hubbard chain: t = 1, U = 4, periodic;
    // (n_up, n_down) = (3, 3) gives C(6,3)^2 = 400 states.
    let n = 6usize;
    let hubbard = hubbard_1d(n, 1.0, 4.0, true);
    let fermion_sector = SectorSpec::spinful_fermions(n as u32, 3, 3).unwrap();
    let e_hubbard = solve_and_check("hubbard", &hubbard, &fermion_sector, &cluster);

    // Spin-1 Heisenberg ring, total Sz = 0 (code_sum = n): 141 states.
    let spin_one = heisenberg(&chain_bonds(n), 1.0);
    let spin_sector = SectorSpec::spin_s(n as u32, 3, Some(n as u32)).unwrap();
    let e_spin_one = solve_and_check("spin-1", &spin_one, &spin_sector, &cluster);

    // Hex digests for the CI backend comparison (in-process vs
    // multiprocess must produce identical bits).
    say!("EIGENVALUES_HUBBARD {:016x}", e_hubbard.to_bits());
    say!("EIGENVALUES_SPIN1 {:016x}", e_spin_one.to_bits());
    say!("\nmodels smoke ✓");
}
