//! I/O via the block distribution (paper Sec. 5.1): wavefunctions live in
//! the hashed distribution during the computation and are converted with
//! the Fig. 3 algorithm for writing to disk. The roundtrip is bit-exact —
//! the property the paper verifies in Sec. 6.1.
//!
//! ```sh
//! cargo run --release --example io_roundtrip
//! ```

use exact_diag::basis::{SectorSpec, SymmetrizedOperator};
use exact_diag::core::io;
use exact_diag::dist::eigensolve::{dist_lanczos_smallest, DistLanczosOptions};
use exact_diag::dist::enumerate_dist;
use exact_diag::prelude::*;
use exact_diag::runtime::{Cluster, ClusterSpec, DistVec};

fn main() {
    let n = 16usize;
    let locales = 3usize;
    let cluster = Cluster::new(ClusterSpec::new(locales, 2));

    // Build the distributed problem and compute the ground state.
    let kernel = heisenberg(&chain_bonds(n), 1.0).to_kernel(n as u32).unwrap();
    let group = chain_group(n, 0, Some(0), Some(0)).unwrap();
    let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
    let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();
    let basis = enumerate_dist(&cluster, &sector, 8);
    println!("distributed basis: dim {} over {locales} locales", basis.dim());

    let res = dist_lanczos_smallest(&cluster, &op, &basis, 1, &DistLanczosOptions::default());
    println!("E0 = {:.12}", res.eigenvalues[0]);

    // Make a deterministic hashed-distributed vector (e.g. |+...+>-ish).
    let hashed = DistVec::<f64>::from_parts(
        basis
            .states()
            .parts()
            .iter()
            .map(|p| p.iter().map(|&s| ((s as f64) * 1e-3).sin()).collect())
            .collect(),
    );

    // hashed -> block -> file.
    let dir = std::env::temp_dir();
    let vec_path = dir.join(format!("ls_example_vector_{}.lsrs", std::process::id()));
    let basis_path = dir.join(format!("ls_example_basis_{}.lsrs", std::process::id()));
    io::save_hashed_vector(&vec_path, &cluster, &basis, &hashed).unwrap();
    println!("wrote {}", vec_path.display());

    // Save the basis too (states in canonical global order).
    let canonical = io::hashed_vector_to_block(&cluster, &basis, &hashed);
    let mut all_states: Vec<u64> = basis.states().parts().iter().flatten().copied().collect();
    all_states.sort_unstable();
    let orbit_by_state: std::collections::HashMap<u64, u32> = basis
        .states()
        .parts()
        .iter()
        .zip(basis.orbit_sizes().parts())
        .flat_map(|(s, o)| s.iter().copied().zip(o.iter().copied()))
        .collect();
    let orbits: Vec<u32> = all_states.iter().map(|s| orbit_by_state[s]).collect();
    io::save_basis(&basis_path, n as u32, Some(n as u32 / 2), &all_states, &orbits).unwrap();
    println!("wrote {}", basis_path.display());

    // Read back and verify bit-exactness against the canonical gather.
    let loaded: Vec<f64> = io::load_vector(&vec_path).unwrap();
    assert_eq!(loaded.len() as u64, basis.dim());
    assert_eq!(loaded, canonical, "vector roundtrip must be bit-exact");

    let loaded_basis = io::load_basis(&basis_path).unwrap();
    assert_eq!(loaded_basis.states, all_states);
    assert_eq!(loaded_basis.n_sites, n as u32);

    // And the values line up with the hashed originals state-by-state.
    for (global_idx, &s) in all_states.iter().enumerate() {
        let l = basis.owner(s);
        let i = basis.index_on(l, s).unwrap();
        assert_eq!(loaded[global_idx], hashed.part(l)[i]);
    }
    println!("roundtrip hashed -> block -> disk -> memory: bit-exact ✓");

    std::fs::remove_file(&vec_path).ok();
    std::fs::remove_file(&basis_path).ok();
}
