//! The dynamical spin structure factor `S(q, ω)` of the Heisenberg chain
//! via the Lanczos continued fraction — exact diagonalization's classic
//! dynamics application, built entirely on the matrix-vector product.
//!
//! For each momentum `q` we seed the continued fraction with
//! `|φ_q⟩ = Sz_q |gs⟩` (diagonal in the σz basis, so the seed is a simple
//! modulation of the ground state) and locate the dominant excitation
//! energy. The two-spinon continuum of the Heisenberg chain is bounded
//! below by the des Cloizeaux–Pearson dispersion `ω_dCP = (π/2)|sin q|`;
//! the finite-chain peaks must track it.
//!
//! ```sh
//! cargo run --release --example dynamical_structure_factor
//! ```

use exact_diag::eigen::spectral_coefficients;
use exact_diag::prelude::*;

fn main() {
    let n = 16usize;
    let sector = SectorSpec::with_weight(n as u32, n as u32 / 2).unwrap();
    let expr = heisenberg(&chain_bonds(n), 1.0);
    let (basis, op) = Operator::<Complex64>::from_expr(&expr, sector).unwrap();
    let (e0, gs) = ground_state(&op);
    println!("{n}-site Heisenberg ring, dim {} (U(1) sector), E0 = {e0:.8}\n", basis.dim());

    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12}",
        "q/π", "S(q)", "peak ω", "dCP lower", "2-spinon up"
    );
    println!("{}", "-".repeat(58));

    let eta = 0.08;
    for k in 1..=n / 2 {
        let q = std::f64::consts::TAU * k as f64 / n as f64;
        // |φ⟩ = Sz_q |gs⟩ with Sz_q = (1/√n) Σ_j e^{-iqj} Sz_j (diagonal).
        let mut seed = vec![Complex64::ZERO; basis.dim()];
        for (idx, amp) in gs.iter().enumerate() {
            let s = basis.state(idx);
            let mut f = Complex64::ZERO;
            for j in 0..n {
                let szj = if (s >> j) & 1 == 1 { 0.5 } else { -0.5 };
                f += Complex64::cis(-q * j as f64).scale(szj);
            }
            seed[idx] = *amp * f.scale(1.0 / (n as f64).sqrt());
        }
        let coeffs = spectral_coefficients(&op, &seed, 120);
        // Static structure factor = total weight of the seed.
        let s_q = coeffs.weight;

        // Scan ω for the dominant peak (relative to E0).
        let mut best = (0.0f64, f64::MIN);
        for step in 0..800 {
            let omega = step as f64 * 0.005;
            let a = coeffs.spectral_function(e0 + omega, eta);
            if a > best.1 {
                best = (omega, a);
            }
        }
        let (peak, _) = best;
        let dcp = std::f64::consts::FRAC_PI_2 * q.sin().abs();
        let upper = std::f64::consts::PI * (q / 2.0).sin().abs();
        println!(
            "{:>6.3} {s_q:>10.5} {peak:>12.4} {dcp:>12.4} {upper:>12.4}",
            q / std::f64::consts::PI
        );
        // The peak lies in (or near, finite-size) the two-spinon band.
        assert!(
            peak > dcp - 0.35 && peak < upper + 0.35,
            "q={q}: peak {peak} outside [{dcp}, {upper}]"
        );
    }
    println!(
        "\npeaks track the des Cloizeaux–Pearson lower bound of the \
         two-spinon continuum ✓"
    );
}
