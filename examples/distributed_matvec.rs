//! The paper's distributed pipeline end to end, on the simulated cluster:
//! distributed basis enumeration (Fig. 4), producer/consumer matrix-vector
//! products (Fig. 5), a distributed Lanczos run — Krylov state held **in
//! place on the locale parts**, nothing gathered — plus distributed
//! imaginary-time evolution and a spectral function on the same in-place
//! pipeline, and the communication statistics that drive the performance
//! model.
//!
//! ```sh
//! cargo run --release --example distributed_matvec
//! ```

use exact_diag::basis::SectorSpec;
use exact_diag::basis::SymmetrizedOperator;
use exact_diag::dist::eigensolve::{dist_lanczos_smallest, DistLanczosOptions};
use exact_diag::dist::matvec::PcOptions;
use exact_diag::dist::{
    dist_evolve_imaginary_time, dist_spectral_coefficients, enumerate_dist, matvec_pc,
};
use exact_diag::prelude::*;
use exact_diag::runtime::{Cluster, ClusterSpec, DistVec};

fn main() {
    let n = 20usize;
    let locales = 4usize;
    let cores = 2usize;

    println!("== simulated cluster: {locales} locales x {cores} cores ==");
    let cluster = Cluster::new(ClusterSpec::new(locales, cores));

    // Hamiltonian and the paper's benchmark sector.
    let kernel = heisenberg(&chain_bonds(n), 1.0).to_kernel(n as u32).unwrap();
    let group = chain_group(n, 0, Some(0), Some(0)).unwrap();
    let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
    let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();

    // Distributed enumeration (Fig. 4): cyclic chunks, filter, hash-
    // distribute.
    let t = std::time::Instant::now();
    let basis = enumerate_dist(&cluster, &sector, 25);
    println!(
        "basis: dim {} enumerated in {:.1} ms (exact Burnside dim: {})",
        basis.dim(),
        t.elapsed().as_secs_f64() * 1e3,
        sector.dimension()
    );
    let (min, max, mean) = basis.balance();
    println!("hashed distribution balance: min {min} / mean {mean:.1} / max {max}");

    // Why hashing? Compare against partitioning the raw state space into
    // contiguous ranges (paper Sec. 5.1: the hash "mixes all bits" for
    // load balance; representative density makes ranges skewed).
    use exact_diag::dist::distribution::{partition_balance, Scheme};
    let all_states: Vec<u64> = basis.states().parts().iter().flatten().copied().collect();
    for scheme in [Scheme::Hashed, Scheme::RawRanges] {
        let r = partition_balance(&all_states, n as u32, locales, scheme);
        println!(
            "  {scheme:?}: imbalance (max/mean) = {:.3}, cv = {:.3}",
            r.imbalance(),
            r.cv()
        );
    }

    // One producer/consumer matvec on |+...+> and its statistics.
    let x = DistVec::<f64>::from_parts(
        basis.states().lens().iter().map(|&l| vec![1.0; l]).collect(),
    );
    let mut y = DistVec::<f64>::zeros(&basis.states().lens());
    cluster.reset_stats();
    let t = std::time::Instant::now();
    matvec_pc(
        &cluster,
        &op,
        &basis,
        &x,
        &mut y,
        PcOptions { producers: 1, consumers: 1, capacity: 512 },
    );
    let dt = t.elapsed().as_secs_f64();
    let stats = cluster.stats_total();
    println!("\n== one producer/consumer matvec ==");
    println!("wall time        : {:.1} ms", dt * 1e3);
    println!("remote puts      : {} ({} bytes)", stats.puts, stats.put_bytes);
    println!("mean message     : {:.0} bytes", stats.mean_message_bytes());
    println!("flag messages    : {} (remoteAtomicWrite)", stats.flag_messages);

    // Distributed Lanczos: the full ED pipeline. Every Krylov vector
    // lives and dies in the hashed distribution — the statistics below
    // prove no full-vector gather ever happens (zero RMA gets).
    println!("\n== distributed Lanczos (in place on DistVec) ==");
    cluster.reset_stats();
    let t = std::time::Instant::now();
    let res = dist_lanczos_smallest(
        &cluster,
        &op,
        &basis,
        1,
        &DistLanczosOptions {
            pc: PcOptions { producers: 1, consumers: 1, capacity: 512 },
            ..Default::default()
        },
    );
    println!(
        "E0 = {:.12} ({} iterations, {:.1} ms, converged: {})",
        res.eigenvalues[0],
        res.iterations,
        t.elapsed().as_secs_f64() * 1e3,
        res.converged
    );
    let solve_stats = cluster.stats_total();
    println!(
        "krylov state gathered : {} bytes ({} RMA gets) — everything stayed distributed",
        solve_stats.get_bytes, solve_stats.gets
    );
    assert_eq!(solve_stats.gets, 0);

    // Distributed dynamics on the same in-place pipeline: imaginary-time
    // projection toward the ground state, then the dynamical spectral
    // function of a seed state via the Lanczos continued fraction.
    println!("\n== distributed dynamics ==");
    let psi0 = DistVec::<f64>::from_parts(
        basis.states().lens().iter().map(|&l| vec![1.0; l]).collect(),
    );
    let t = std::time::Instant::now();
    let cooled =
        dist_evolve_imaginary_time(&cluster, &op, &basis, &psi0, 4.0, 40, PcOptions::default());
    // Rayleigh quotient of the cooled state through one more product.
    let mut h_cooled = DistVec::<f64>::zeros(&basis.states().lens());
    matvec_pc(&cluster, &op, &basis, &cooled, &mut h_cooled, PcOptions::default());
    let e_cooled = exact_diag::dist::blas::dot(&cooled, &h_cooled);
    println!(
        "imaginary time τ=4.0 : ⟨H⟩ = {:.9} (E0 = {:.9}, {:.1} ms, state stayed distributed)",
        e_cooled,
        res.eigenvalues[0],
        t.elapsed().as_secs_f64() * 1e3,
    );

    let t = std::time::Instant::now();
    let coeffs =
        dist_spectral_coefficients(&cluster, &op, &basis, &psi0, 60, PcOptions::default());
    let omegas: Vec<f64> = (0..5).map(|i| res.eigenvalues[0] + i as f64 * 2.0).collect();
    let spectrum = coeffs.spectrum(&omegas, 0.2);
    println!(
        "spectral function    : {} Lanczos coefficients in {:.1} ms; A(ω) at {:?} = {:?}",
        coeffs.alphas.len(),
        t.elapsed().as_secs_f64() * 1e3,
        omegas.iter().map(|w| (w * 100.0).round() / 100.0).collect::<Vec<_>>(),
        spectrum.iter().map(|a| (a * 1e4).round() / 1e4).collect::<Vec<_>>(),
    );

    // Cross-check against the shared-memory path.
    let shared_sector = sector.clone();
    let expr = heisenberg(&chain_bonds(n), 1.0);
    let (_, shared_op) = Operator::<f64>::from_expr(&expr, shared_sector).unwrap();
    let e0_shared = ground_state_energy(&shared_op);
    println!("shared-memory reference: {e0_shared:.12}");
    assert!(
        (res.eigenvalues[0] - e0_shared).abs() < 1e-8,
        "distributed and shared-memory energies disagree"
    );
    println!("\ndistributed == shared ✓");
}
