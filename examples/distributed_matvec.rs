//! The paper's distributed pipeline end to end: distributed basis
//! enumeration (Fig. 4), producer/consumer matrix-vector products
//! (Fig. 5), a distributed Lanczos run — Krylov state held **in place on
//! the locale parts**, nothing gathered — plus distributed imaginary-time
//! evolution and a spectral function on the same in-place pipeline, and
//! the communication statistics that drive the performance model.
//!
//! ```sh
//! cargo run --release --example distributed_matvec
//! ```
//!
//! runs on the default in-process transport (locales are thread teams).
//! The identical program runs across real OS processes — shared-memory
//! windows, TCP accumulate/collective traffic — with:
//!
//! ```sh
//! LS_TRANSPORT=multiprocess LS_LOCALES=4 \
//!     cargo run --release --example distributed_matvec
//! ```
//!
//! The `EIGENVALUES` line is bit-identical across both backends (the
//! Lanczos run uses the deterministic producer/consumer schedule); CI
//! compares the hex digests directly.

use exact_diag::basis::SectorSpec;
use exact_diag::basis::SymmetrizedOperator;
use exact_diag::dist::eigensolve::{dist_lanczos_smallest, DistLanczosOptions};
use exact_diag::dist::matvec::PcOptions;
use exact_diag::dist::{
    dist_evolve_imaginary_time, dist_spectral_coefficients, enumerate_dist, matvec_pc,
};
use exact_diag::prelude::*;
use exact_diag::runtime::transport;
use exact_diag::runtime::{Cluster, ClusterSpec, DistVec};

/// Prints on the primary rank only (every rank in multiprocess mode runs
/// the same program; one copy of the report is enough).
macro_rules! say {
    ($($arg:tt)*) => { if transport::is_primary() { println!($($arg)*); } };
}

fn main() {
    // Relaunches as the multi-process launcher when LS_TRANSPORT says so;
    // a no-op on the in-process backend and inside worker processes.
    transport::launch_if_requested();

    let n = 20usize;
    let mp = transport::active();
    // LS_LOCALES also sizes the in-process cluster, so the two backends
    // can be compared on the same shape (reduction order follows it).
    let locales = mp.map(|m| m.n_locales()).unwrap_or_else(|| {
        std::env::var(transport::ENV_LOCALES).ok().and_then(|v| v.parse().ok()).unwrap_or(4)
    });
    let cores = 2usize;

    say!(
        "== {} cluster: {locales} locales x {cores} cores (backend: {}) ==",
        if mp.is_some() { "multiprocess" } else { "simulated" },
        transport::backend().name()
    );
    let cluster = Cluster::new(ClusterSpec::new(locales, cores));

    // Hamiltonian and the paper's benchmark sector.
    let kernel = heisenberg(&chain_bonds(n), 1.0).to_kernel(n as u32).unwrap();
    let group = chain_group(n, 0, Some(0), Some(0)).unwrap();
    let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
    let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();

    // Distributed enumeration (Fig. 4): cyclic chunks, filter, hash-
    // distribute.
    let t = std::time::Instant::now();
    let basis = enumerate_dist(&cluster, &sector, 25);
    say!(
        "basis: dim {} enumerated in {:.1} ms (exact Burnside dim: {})",
        basis.dim(),
        t.elapsed().as_secs_f64() * 1e3,
        sector.dimension()
    );
    let (min, max, mean) = basis.balance();
    say!("hashed distribution balance: min {min} / mean {mean:.1} / max {max}");

    // Why hashing? Compare against partitioning the raw state space into
    // contiguous ranges (paper Sec. 5.1: the hash "mixes all bits" for
    // load balance; representative density makes ranges skewed).
    use exact_diag::dist::distribution::{partition_balance, Scheme};
    let all_states: Vec<u64> = basis.states().parts().iter().flatten().copied().collect();
    for scheme in [Scheme::Hashed, Scheme::RawRanges] {
        let r = partition_balance(&all_states, n as u32, locales, scheme);
        say!("  {scheme:?}: imbalance (max/mean) = {:.3}, cv = {:.3}", r.imbalance(), r.cv());
    }

    // One producer/consumer matvec on |+...+> and its statistics.
    let x = DistVec::<f64>::from_parts(
        basis.states().lens().iter().map(|&l| vec![1.0; l]).collect(),
    );
    let mut y = DistVec::<f64>::zeros(&basis.states().lens());
    cluster.reset_stats();
    let t = std::time::Instant::now();
    matvec_pc(
        &cluster,
        &op,
        &basis,
        &x,
        &mut y,
        PcOptions { producers: 1, consumers: 1, capacity: 512, ..PcOptions::default() },
    );
    let dt = t.elapsed().as_secs_f64();
    let stats = cluster.stats_total();
    say!("\n== one producer/consumer matvec ==");
    say!("wall time        : {:.1} ms", dt * 1e3);
    say!("remote puts      : {} ({} bytes)", stats.puts, stats.put_bytes);
    say!("mean message     : {:.0} bytes", stats.mean_message_bytes());
    say!("flag messages    : {} (remoteAtomicWrite)", stats.flag_messages);

    // Distributed Lanczos: the full ED pipeline. Every Krylov vector
    // lives and dies in the hashed distribution — the statistics below
    // prove no full-vector gather ever happens (zero RMA gets). The
    // deterministic schedule makes the eigenvalue bit-identical across
    // transports, which the multiprocess CI smoke test checks.
    say!("\n== distributed Lanczos (in place on DistVec) ==");
    cluster.reset_stats();
    let t = std::time::Instant::now();
    let res = dist_lanczos_smallest(
        &cluster,
        &op,
        &basis,
        1,
        &DistLanczosOptions {
            pc: PcOptions { capacity: 512, deterministic: true, ..PcOptions::default() },
            ..Default::default()
        },
    );
    say!(
        "E0 = {:.12} ({} iterations, {:.1} ms, converged: {})",
        res.eigenvalues[0],
        res.iterations,
        t.elapsed().as_secs_f64() * 1e3,
        res.converged
    );
    say!("EIGENVALUES {:016x}", res.eigenvalues[0].to_bits());
    let solve_stats = cluster.stats_total();
    say!(
        "krylov state gathered : {} bytes ({} RMA gets) — everything stayed distributed",
        solve_stats.get_bytes,
        solve_stats.gets
    );
    assert_eq!(solve_stats.gets, 0);

    // Distributed dynamics on the same in-place pipeline: imaginary-time
    // projection toward the ground state, then the dynamical spectral
    // function of a seed state via the Lanczos continued fraction.
    say!("\n== distributed dynamics ==");
    let psi0 = DistVec::<f64>::from_parts(
        basis.states().lens().iter().map(|&l| vec![1.0; l]).collect(),
    );
    let t = std::time::Instant::now();
    let cooled =
        dist_evolve_imaginary_time(&cluster, &op, &basis, &psi0, 4.0, 40, PcOptions::default());
    // Rayleigh quotient of the cooled state through one more product.
    let mut h_cooled = DistVec::<f64>::zeros(&basis.states().lens());
    matvec_pc(&cluster, &op, &basis, &cooled, &mut h_cooled, PcOptions::default());
    let e_cooled = exact_diag::dist::blas::dot(&cooled, &h_cooled);
    say!(
        "imaginary time τ=4.0 : ⟨H⟩ = {:.9} (E0 = {:.9}, {:.1} ms, state stayed distributed)",
        e_cooled,
        res.eigenvalues[0],
        t.elapsed().as_secs_f64() * 1e3,
    );

    let t = std::time::Instant::now();
    let coeffs =
        dist_spectral_coefficients(&cluster, &op, &basis, &psi0, 60, PcOptions::default());
    let omegas: Vec<f64> = (0..5).map(|i| res.eigenvalues[0] + i as f64 * 2.0).collect();
    let spectrum = coeffs.spectrum(&omegas, 0.2);
    say!(
        "spectral function    : {} Lanczos coefficients in {:.1} ms; A(ω) at {:?} = {:?}",
        coeffs.alphas.len(),
        t.elapsed().as_secs_f64() * 1e3,
        omegas.iter().map(|w| (w * 100.0).round() / 100.0).collect::<Vec<_>>(),
        spectrum.iter().map(|a| (a * 1e4).round() / 1e4).collect::<Vec<_>>(),
    );

    // Wire traffic summary (multiprocess only: what actually crossed the
    // socket / shared-memory boundary, as opposed to the modeled counts).
    if let Some(mp) = mp {
        let t = mp.stats().snapshot();
        say!("\n== transport wire statistics (rank 0) ==");
        say!("tcp tx           : {} frames, {} bytes", t.tx_frames, t.tx_bytes);
        say!("tcp rx           : {} frames, {} bytes", t.rx_frames, t.rx_bytes);
        say!("shm read/write   : {} / {} bytes", t.shm_read_bytes, t.shm_write_bytes);
        say!(
            "barriers         : {} (mean {:.1} µs)",
            t.barriers,
            t.mean_barrier_seconds() * 1e6
        );
    }

    // Cross-check against the shared-memory path. The reference solve is
    // process-local, so only the primary rank runs it.
    if transport::is_primary() {
        let shared_sector = sector.clone();
        let expr = heisenberg(&chain_bonds(n), 1.0);
        let (_, shared_op) = Operator::<f64>::from_expr(&expr, shared_sector).unwrap();
        let e0_shared = ground_state_energy(&shared_op);
        say!("shared-memory reference: {e0_shared:.12}");
        assert!(
            (res.eigenvalues[0] - e0_shared).abs() < 1e-8,
            "distributed and shared-memory energies disagree"
        );
        say!("\ndistributed == shared ✓");
    }
}
