//! The paper's distributed pipeline end to end, on the simulated cluster:
//! distributed basis enumeration (Fig. 4), producer/consumer matrix-vector
//! products (Fig. 5), a distributed Lanczos run, and the communication
//! statistics that drive the performance model.
//!
//! ```sh
//! cargo run --release --example distributed_matvec
//! ```

use exact_diag::basis::SectorSpec;
use exact_diag::basis::SymmetrizedOperator;
use exact_diag::dist::eigensolve::{dist_lanczos_smallest, DistLanczosOptions};
use exact_diag::dist::matvec::PcOptions;
use exact_diag::dist::{enumerate_dist, matvec_pc};
use exact_diag::prelude::*;
use exact_diag::runtime::{Cluster, ClusterSpec, DistVec};

fn main() {
    let n = 20usize;
    let locales = 4usize;
    let cores = 2usize;

    println!("== simulated cluster: {locales} locales x {cores} cores ==");
    let cluster = Cluster::new(ClusterSpec::new(locales, cores));

    // Hamiltonian and the paper's benchmark sector.
    let kernel = heisenberg(&chain_bonds(n), 1.0).to_kernel(n as u32).unwrap();
    let group = chain_group(n, 0, Some(0), Some(0)).unwrap();
    let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
    let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();

    // Distributed enumeration (Fig. 4): cyclic chunks, filter, hash-
    // distribute.
    let t = std::time::Instant::now();
    let basis = enumerate_dist(&cluster, &sector, 25);
    println!(
        "basis: dim {} enumerated in {:.1} ms (exact Burnside dim: {})",
        basis.dim(),
        t.elapsed().as_secs_f64() * 1e3,
        sector.dimension()
    );
    let (min, max, mean) = basis.balance();
    println!("hashed distribution balance: min {min} / mean {mean:.1} / max {max}");

    // Why hashing? Compare against partitioning the raw state space into
    // contiguous ranges (paper Sec. 5.1: the hash "mixes all bits" for
    // load balance; representative density makes ranges skewed).
    use exact_diag::dist::distribution::{partition_balance, Scheme};
    let all_states: Vec<u64> = basis.states().parts().iter().flatten().copied().collect();
    for scheme in [Scheme::Hashed, Scheme::RawRanges] {
        let r = partition_balance(&all_states, n as u32, locales, scheme);
        println!(
            "  {scheme:?}: imbalance (max/mean) = {:.3}, cv = {:.3}",
            r.imbalance(),
            r.cv()
        );
    }

    // One producer/consumer matvec on |+...+> and its statistics.
    let x = DistVec::<f64>::from_parts(
        basis.states().lens().iter().map(|&l| vec![1.0; l]).collect(),
    );
    let mut y = DistVec::<f64>::zeros(&basis.states().lens());
    cluster.reset_stats();
    let t = std::time::Instant::now();
    matvec_pc(
        &cluster,
        &op,
        &basis,
        &x,
        &mut y,
        PcOptions { producers: 1, consumers: 1, capacity: 512 },
    );
    let dt = t.elapsed().as_secs_f64();
    let stats = cluster.stats_total();
    println!("\n== one producer/consumer matvec ==");
    println!("wall time        : {:.1} ms", dt * 1e3);
    println!("remote puts      : {} ({} bytes)", stats.puts, stats.put_bytes);
    println!("mean message     : {:.0} bytes", stats.mean_message_bytes());
    println!("flag messages    : {} (remoteAtomicWrite)", stats.flag_messages);

    // Distributed Lanczos: the full ED pipeline.
    println!("\n== distributed Lanczos ==");
    let t = std::time::Instant::now();
    let res = dist_lanczos_smallest(
        &cluster,
        &op,
        &basis,
        1,
        &DistLanczosOptions {
            pc: PcOptions { producers: 1, consumers: 1, capacity: 512 },
            ..Default::default()
        },
    );
    println!(
        "E0 = {:.12} ({} iterations, {:.1} ms, converged: {})",
        res.eigenvalues[0],
        res.iterations,
        t.elapsed().as_secs_f64() * 1e3,
        res.converged
    );

    // Cross-check against the shared-memory path.
    let shared_sector = sector.clone();
    let expr = heisenberg(&chain_bonds(n), 1.0);
    let (_, shared_op) = Operator::<f64>::from_expr(&expr, shared_sector).unwrap();
    let e0_shared = ground_state_energy(&shared_op);
    println!("shared-memory reference: {e0_shared:.12}");
    assert!(
        (res.eigenvalues[0] - e0_shared).abs() < 1e-8,
        "distributed and shared-memory energies disagree"
    );
    println!("\ndistributed == shared ✓");
}
