//! The executable matrix-free operator representation.
//!
//! An [`OperatorKernel`] answers one question fast: *given a basis state
//! `|α⟩`, what are the non-zero entries `⟨β|H|α⟩`?* That is the paper's
//! `getRow` (by Hermiticity, rows and columns coincide up to conjugation).
//!
//! The kernel has three parts:
//!
//! * **diagonal (Walsh)** — a Walsh polynomial `Σ_m c_m Π_{i ∈ zmask_m} z_i`
//!   where `z_i = ±1` is the `σz` eigenvalue of site `i`. Evaluating it is
//!   a few popcounts per monomial, branch-free. Used for one-bit
//!   encodings (spin-1/2 and fermionic orbitals).
//! * **diagonal (patterns)** — for multi-bit site codes, masked-compare
//!   [`DiagPattern`]s: `(c, sites, pat)` contributes `c` iff the code
//!   fields of `α` on `sites` equal `pat`.
//! * **off-diagonal** — scattering [`Channel`]s: `(c, sites, in, out)`
//!   fires on `|α⟩` iff the bits of `α` on `sites` equal `in`, producing
//!   `|β⟩ = α ^ (in ^ out)` with amplitude `±c`; the sign is the fermionic
//!   Jordan-Wigner parity `(−1)^{popcount(α & sign)}` (always `+` for
//!   spin kernels, whose `sign` masks are zero).

use ls_kernels::{Complex64, SiteEncoding};

/// One Walsh monomial of the diagonal part: `coeff · Π_{i∈zmask} z_i`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ZMonomial {
    pub coeff: Complex64,
    pub zmask: u64,
}

/// One masked-compare diagonal term for multi-bit encodings:
/// contributes `coeff` to `⟨α|H|α⟩` iff `α & sites == pat`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DiagPattern {
    pub coeff: Complex64,
    /// Mask of the code fields the pattern inspects.
    pub sites: u64,
    /// Required code pattern on `sites`.
    pub pat: u64,
}

/// One off-diagonal scattering channel.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Channel {
    /// Amplitude `⟨β|H|α⟩` contributed when the channel fires (up to the
    /// Jordan-Wigner sign below).
    pub coeff: Complex64,
    /// Mask of the sites the channel inspects/modifies.
    pub sites: u64,
    /// Required input bit pattern on `sites`.
    pub in_pat: u64,
    /// Output bit pattern on `sites` (`!= in_pat`).
    pub out_pat: u64,
    /// Jordan-Wigner sign mask (disjoint from `sites`): the amplitude is
    /// negated iff `popcount(α & sign)` is odd. Zero for spin operators.
    pub sign: u64,
}

impl Channel {
    /// XOR mask turning a matching input state into the output state.
    #[inline]
    pub fn flip_mask(&self) -> u64 {
        self.in_pat ^ self.out_pat
    }

    /// The signed amplitude `⟨β|H|α⟩` for a matching `α`.
    #[inline]
    pub fn amplitude(&self, alpha: u64) -> Complex64 {
        if (alpha & self.sign).count_ones() & 1 == 1 {
            -self.coeff
        } else {
            self.coeff
        }
    }
}

/// Compiled matrix-free operator. Build one with
/// [`crate::Expr::to_kernel`] (spin-1/2) or
/// [`crate::Expr::to_kernel_in`] (any local Hilbert space).
#[derive(Clone, Debug)]
pub struct OperatorKernel {
    encoding: SiteEncoding,
    n_sites: u32,
    diag: Vec<ZMonomial>,
    patterns: Vec<DiagPattern>,
    offdiag: Vec<Channel>,
}

impl OperatorKernel {
    pub(crate) fn from_parts(
        n_sites: u32,
        diag: Vec<ZMonomial>,
        offdiag: Vec<Channel>,
    ) -> Self {
        Self::from_parts_encoded(SiteEncoding::spin_half(), n_sites, diag, Vec::new(), offdiag)
    }

    pub(crate) fn from_parts_encoded(
        encoding: SiteEncoding,
        n_sites: u32,
        mut diag: Vec<ZMonomial>,
        mut patterns: Vec<DiagPattern>,
        mut offdiag: Vec<Channel>,
    ) -> Self {
        // Canonical order: cheap determinism for tests and reproducibility.
        diag.sort_by_key(|m| m.zmask);
        patterns.sort_by_key(|p| (p.sites, p.pat));
        offdiag.sort_by_key(|c| (c.sites, c.in_pat, c.out_pat, c.sign));
        Self { encoding, n_sites, diag, patterns, offdiag }
    }

    /// The identity-free zero operator on `n_sites` spin-1/2 sites.
    pub fn zero(n_sites: u32) -> Self {
        Self::from_parts(n_sites, Vec::new(), Vec::new())
    }

    pub fn n_sites(&self) -> u32 {
        self.n_sites
    }

    /// The site encoding the kernel's masks and patterns are expressed in.
    pub fn encoding(&self) -> SiteEncoding {
        self.encoding
    }

    /// Total code bits of a basis word.
    pub fn code_bits(&self) -> u32 {
        self.encoding.code_bits(self.n_sites)
    }

    pub fn diagonal_monomials(&self) -> &[ZMonomial] {
        &self.diag
    }

    pub fn diagonal_patterns(&self) -> &[DiagPattern] {
        &self.patterns
    }

    pub fn channels(&self) -> &[Channel] {
        &self.offdiag
    }

    /// Does any channel carry a non-trivial Jordan-Wigner sign mask?
    /// (Spin kernels never do; fermionic kernels do unless every hop is
    /// between adjacent orbitals.)
    pub fn has_signs(&self) -> bool {
        self.offdiag.iter().any(|c| c.sign != 0)
    }

    /// Maximum number of off-diagonal entries a single row can have.
    pub fn max_row_entries(&self) -> usize {
        self.offdiag.len()
    }

    /// Evaluates the diagonal entry `⟨α|H|α⟩`.
    #[inline]
    pub fn diagonal(&self, alpha: u64) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for m in &self.diag {
            // Π_{i∈zmask} z_i = (-1)^{# of down spins within zmask}.
            let downs = (!alpha & m.zmask).count_ones();
            if downs & 1 == 0 {
                acc += m.coeff;
            } else {
                acc -= m.coeff;
            }
        }
        for p in &self.patterns {
            if alpha & p.sites == p.pat {
                acc += p.coeff;
            }
        }
        acc
    }

    /// Appends all off-diagonal entries of the row of `|α⟩` to `out` as
    /// `(β, ⟨β|H|α⟩)` pairs. Does not clear `out`.
    #[inline]
    pub fn off_diagonal(&self, alpha: u64, out: &mut Vec<(u64, Complex64)>) {
        for ch in &self.offdiag {
            if alpha & ch.sites == ch.in_pat {
                out.push((alpha ^ ch.flip_mask(), ch.amplitude(alpha)));
            }
        }
    }

    /// Full row: diagonal plus off-diagonal entries. Mostly a convenience
    /// for tests; hot paths use the split accessors.
    pub fn row(&self, alpha: u64) -> Vec<(u64, Complex64)> {
        let mut out = Vec::with_capacity(1 + self.offdiag.len());
        let d = self.diagonal(alpha);
        if d != Complex64::ZERO {
            out.push((alpha, d));
        }
        self.off_diagonal(alpha, &mut out);
        out
    }

    /// Does every off-diagonal channel preserve the total code sum — the
    /// Hamming weight for one-bit encodings (total `Sz` U(1) symmetry),
    /// the particle number for fermions, `Σ(Sz_i + S)` for spin-S?
    pub fn conserves_hamming_weight(&self) -> bool {
        let n = self.n_sites;
        self.offdiag.iter().all(|c| {
            self.encoding.code_sum(c.in_pat, n) == self.encoding.code_sum(c.out_pat, n)
        })
    }

    /// Does every off-diagonal channel preserve the bit count within
    /// `mask`? (Per-species particle-number conservation: e.g. spin-up
    /// and spin-down fermion counts separately.)
    pub fn conserves_masked_weight(&self, mask: u64) -> bool {
        self.offdiag
            .iter()
            .all(|c| (c.in_pat & mask).count_ones() == (c.out_pat & mask).count_ones())
    }

    /// Is the kernel Hermitian (as a matrix)?
    pub fn is_hermitian(&self, tol: f64) -> bool {
        // Diagonal must be real: Walsh/pattern coefficients real.
        if self.diag.iter().any(|m| m.coeff.im.abs() > tol) {
            return false;
        }
        if self.patterns.iter().any(|p| p.coeff.im.abs() > tol) {
            return false;
        }
        // Every channel must have a conjugate partner. Sign masks are
        // disjoint from `sites`, so the Jordan-Wigner parity of a matching
        // α equals that of the produced β and the partner must carry the
        // *same* mask.
        for c in &self.offdiag {
            let partner = self.offdiag.iter().find(|p| {
                p.sites == c.sites
                    && p.in_pat == c.out_pat
                    && p.out_pat == c.in_pat
                    && p.sign == c.sign
            });
            match partner {
                Some(p) => {
                    if !p.coeff.approx_eq(c.coeff.conj(), tol) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }

    /// The adjoint kernel (conjugate transpose).
    pub fn adjoint(&self) -> Self {
        let diag = self
            .diag
            .iter()
            .map(|m| ZMonomial { coeff: m.coeff.conj(), zmask: m.zmask })
            .collect();
        let patterns =
            self.patterns.iter().map(|p| DiagPattern { coeff: p.coeff.conj(), ..*p }).collect();
        let offdiag = self
            .offdiag
            .iter()
            .map(|c| Channel {
                coeff: c.coeff.conj(),
                sites: c.sites,
                in_pat: c.out_pat,
                out_pat: c.in_pat,
                sign: c.sign,
            })
            .collect();
        Self::from_parts_encoded(self.encoding, self.n_sites, diag, patterns, offdiag)
    }

    /// Structural comparison up to tolerance (kernels are canonically
    /// sorted, so same-structure kernels align element-wise).
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        if self.encoding != other.encoding
            || self.n_sites != other.n_sites
            || self.diag.len() != other.diag.len()
            || self.patterns.len() != other.patterns.len()
            || self.offdiag.len() != other.offdiag.len()
        {
            return false;
        }
        self.diag
            .iter()
            .zip(&other.diag)
            .all(|(a, b)| a.zmask == b.zmask && a.coeff.approx_eq(b.coeff, tol))
            && self.patterns.iter().zip(&other.patterns).all(|(a, b)| {
                a.sites == b.sites && a.pat == b.pat && a.coeff.approx_eq(b.coeff, tol)
            })
            && self.offdiag.iter().zip(&other.offdiag).all(|(a, b)| {
                a.sites == b.sites
                    && a.in_pat == b.in_pat
                    && a.out_pat == b.out_pat
                    && a.sign == b.sign
                    && a.coeff.approx_eq(b.coeff, tol)
            })
    }

    /// Dense matrix representation over the full `2^code_bits` word space
    /// (for testing; `code_bits <= 12`). Rows/columns of invalid code
    /// words (possible only for non-power-of-two local dimensions) are
    /// zero — channels map valid words to valid words.
    pub fn to_dense(&self) -> Vec<Vec<Complex64>> {
        let code_bits = self.code_bits();
        assert!(code_bits <= 12, "dense form limited to small systems");
        let dim = 1usize << code_bits;
        let mut h = vec![vec![Complex64::ZERO; dim]; dim];
        let mut row = Vec::new();
        for alpha in 0..dim as u64 {
            if !self.encoding.is_valid(alpha, self.n_sites) {
                continue;
            }
            row.clear();
            row.extend(self.row(alpha));
            for &(beta, v) in &row {
                // row() yields ⟨β|H|α⟩, i.e. column α of H.
                h[beta as usize][alpha as usize] += v;
            }
        }
        h
    }

    /// Dense matrix over an explicit sorted basis-state list: entry
    /// `[i][j] = ⟨states[i]|H|states[j]⟩`. Scattering out of the list is
    /// dropped (the list is assumed closed under the kernel's channels,
    /// as any full sector of a conserved operator is).
    pub fn to_dense_states(&self, states: &[u64]) -> Vec<Vec<Complex64>> {
        let dim = states.len();
        let mut h = vec![vec![Complex64::ZERO; dim]; dim];
        let mut row = Vec::new();
        for (col, &alpha) in states.iter().enumerate() {
            row.clear();
            row.extend(self.row(alpha));
            for &(beta, v) in &row {
                if let Ok(r) = states.binary_search(&beta) {
                    h[r][col] += v;
                }
            }
        }
        h
    }

    /// Total number of stored terms (for the perf model and Table 1-style
    /// bookkeeping).
    pub fn n_terms(&self) -> usize {
        self.diag.len() + self.patterns.len() + self.offdiag.len()
    }

    /// Scales every term by a real factor.
    pub fn scaled(&self, factor: f64) -> Self {
        let diag = self
            .diag
            .iter()
            .map(|m| ZMonomial { coeff: m.coeff.scale(factor), zmask: m.zmask })
            .collect();
        let patterns = self
            .patterns
            .iter()
            .map(|p| DiagPattern { coeff: p.coeff.scale(factor), ..*p })
            .collect();
        let offdiag = self
            .offdiag
            .iter()
            .map(|c| Channel { coeff: c.coeff.scale(factor), ..*c })
            .collect();
        Self::from_parts_encoded(self.encoding, self.n_sites, diag, patterns, offdiag)
    }

    /// Sums kernels (all must share the encoding), merging duplicate
    /// terms and dropping cancellations.
    pub fn merged<'a>(kernels: impl IntoIterator<Item = &'a Self>) -> Self {
        use std::collections::HashMap;
        let mut encoding = SiteEncoding::spin_half();
        let mut n_sites = 0;
        let mut walsh: HashMap<u64, Complex64> = HashMap::new();
        let mut pats: HashMap<(u64, u64), Complex64> = HashMap::new();
        let mut channels: HashMap<(u64, u64, u64, u64), Complex64> = HashMap::new();
        for k in kernels {
            if n_sites == 0 {
                encoding = k.encoding;
            } else {
                debug_assert_eq!(
                    encoding, k.encoding,
                    "merging kernels of different encodings"
                );
            }
            n_sites = n_sites.max(k.n_sites);
            for m in &k.diag {
                *walsh.entry(m.zmask).or_insert(Complex64::ZERO) += m.coeff;
            }
            for p in &k.patterns {
                *pats.entry((p.sites, p.pat)).or_insert(Complex64::ZERO) += p.coeff;
            }
            for c in &k.offdiag {
                *channels
                    .entry((c.sites, c.in_pat, c.out_pat, c.sign))
                    .or_insert(Complex64::ZERO) += c.coeff;
            }
        }
        const TOL: f64 = 1e-14;
        let diag = walsh
            .into_iter()
            .filter(|(_, c)| c.abs() > TOL)
            .map(|(zmask, coeff)| ZMonomial { coeff, zmask })
            .collect();
        let patterns = pats
            .into_iter()
            .filter(|(_, c)| c.abs() > TOL)
            .map(|((sites, pat), coeff)| DiagPattern { coeff, sites, pat })
            .collect();
        let offdiag = channels
            .into_iter()
            .filter(|(_, c)| c.abs() > TOL)
            .map(|((sites, in_pat, out_pat, sign), coeff)| Channel {
                coeff,
                sites,
                in_pat,
                out_pat,
                sign,
            })
            .collect();
        Self::from_parts_encoded(encoding, n_sites, diag, patterns, offdiag)
    }

    /// Drops every channel that does not conserve the total code sum.
    ///
    /// Within a fixed-weight sector, non-conserving channels connect to
    /// orthogonal sectors and contribute nothing to expectation values;
    /// projecting them out lets arbitrary observables be evaluated in
    /// U(1) sectors.
    pub fn u1_projected(&self) -> Self {
        let n = self.n_sites;
        let offdiag = self
            .offdiag
            .iter()
            .filter(|c| {
                self.encoding.code_sum(c.in_pat, n) == self.encoding.code_sum(c.out_pat, n)
            })
            .copied()
            .collect();
        Self::from_parts_encoded(
            self.encoding,
            self.n_sites,
            self.diag.clone(),
            self.patterns.clone(),
            offdiag,
        )
    }

    /// Drops every channel that does not conserve the bit count within
    /// each of `masks` (per-species number projection, e.g. separate
    /// spin-up/spin-down fermion counts).
    pub fn projected_conserving(&self, masks: &[u64]) -> Self {
        let offdiag = self
            .offdiag
            .iter()
            .filter(|c| {
                masks
                    .iter()
                    .all(|&m| (c.in_pat & m).count_ones() == (c.out_pat & m).count_ones())
            })
            .copied()
            .collect();
        Self::from_parts_encoded(
            self.encoding,
            self.n_sites,
            self.diag.clone(),
            self.patterns.clone(),
            offdiag,
        )
    }

    /// The kernel of `U H U†` where `U|s⟩ = |u(s)⟩`, `u` being the bit
    /// permutation `apply` optionally composed with global spin inversion.
    ///
    /// Channels transform by relabelling the masks; under spin inversion
    /// the in/out patterns invert within their site mask and each Walsh
    /// monomial picks up `(-1)^|zmask|`. Only spin kernels participate in
    /// non-trivial symmetry groups, so sign masks (always zero there) map
    /// through the permutation unchanged in meaning.
    pub fn conjugated_by(&self, apply: impl Fn(u64) -> u64, flip: bool) -> Self {
        let diag = self
            .diag
            .iter()
            .map(|m| {
                let zmask = apply(m.zmask);
                let sign = if flip && zmask.count_ones() & 1 == 1 { -1.0 } else { 1.0 };
                ZMonomial { coeff: m.coeff.scale(sign), zmask }
            })
            .collect();
        let patterns = self
            .patterns
            .iter()
            .map(|p| DiagPattern { coeff: p.coeff, sites: apply(p.sites), pat: apply(p.pat) })
            .collect();
        let offdiag = self
            .offdiag
            .iter()
            .map(|c| {
                let sites = apply(c.sites);
                let mut in_pat = apply(c.in_pat);
                let mut out_pat = apply(c.out_pat);
                if flip {
                    in_pat = !in_pat & sites;
                    out_pat = !out_pat & sites;
                }
                Channel { coeff: c.coeff, sites, in_pat, out_pat, sign: apply(c.sign) }
            })
            .collect();
        Self::from_parts_encoded(self.encoding, self.n_sites, diag, patterns, offdiag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{annihilate, create, sminus, splus, sz};
    use crate::hilbert::LocalHilbert;

    #[test]
    fn heisenberg_bond_row() {
        // H = S+_0 S-_1 /2 + S-_0 S+_1 /2 + Sz_0 Sz_1 on 2 sites.
        let h = crate::builders::heisenberg_bond(0, 1).to_kernel(2).unwrap();
        // |↓↓⟩ = 0b00: diagonal 1/4, no off-diagonal.
        assert!(h.diagonal(0b00).approx_eq(Complex64::from(0.25), 1e-15));
        let mut out = Vec::new();
        h.off_diagonal(0b00, &mut out);
        assert!(out.is_empty());
        // |↑↓⟩ = 0b01 (site 0 up): diagonal -1/4, hops to 0b10 with 1/2.
        assert!(h.diagonal(0b01).approx_eq(Complex64::from(-0.25), 1e-15));
        out.clear();
        h.off_diagonal(0b01, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0b10);
        assert!(out[0].1.approx_eq(Complex64::from(0.5), 1e-15));
        // |↑↑⟩: diagonal 1/4, nothing else.
        assert!(h.diagonal(0b11).approx_eq(Complex64::from(0.25), 1e-15));
    }

    #[test]
    fn hermiticity_detection() {
        let h = crate::builders::heisenberg_bond(0, 1).to_kernel(2).unwrap();
        assert!(h.is_hermitian(1e-12));
        let nh = (splus(0) * sminus(1)).to_kernel(2).unwrap();
        assert!(!nh.is_hermitian(1e-12));
        assert!(nh.adjoint().approx_eq(&(splus(1) * sminus(0)).to_kernel(2).unwrap(), 1e-12));
    }

    #[test]
    fn fermionic_hop_is_hermitian_with_signs() {
        let h = LocalHilbert::fermion();
        let hop = crate::builders::fermion_hop(0, 3, 1.0);
        let k = hop.to_kernel_in(&h, 4).unwrap();
        assert!(k.has_signs());
        assert!(k.is_hermitian(1e-12));
        assert!(k.conserves_hamming_weight());
        // The adjoint of c†_0 c_3 is c†_3 c_0 with the same sign mask.
        let half = (create(0) * annihilate(3)).to_kernel_in(&h, 4).unwrap();
        let back = (create(3) * annihilate(0)).to_kernel_in(&h, 4).unwrap();
        assert!(half.adjoint().approx_eq(&back, 1e-12));
    }

    #[test]
    fn u1_conservation() {
        assert!(crate::builders::heisenberg_bond(0, 1)
            .to_kernel(2)
            .unwrap()
            .conserves_hamming_weight());
        assert!(!(splus(0) * splus(1)).to_kernel(2).unwrap().conserves_hamming_weight());
        assert!((sz(0) * sz(1)).to_kernel(2).unwrap().conserves_hamming_weight());
    }

    #[test]
    fn masked_weight_conservation() {
        let h = LocalHilbert::fermion();
        // Spin-up hop on orbitals {0,1} of a 4-orbital (2-site spinful)
        // system conserves both species counts.
        let hop = crate::builders::fermion_hop(0, 1, 1.0).to_kernel_in(&h, 4).unwrap();
        assert!(hop.conserves_masked_weight(0b0011));
        assert!(hop.conserves_masked_weight(0b1100));
        // A spin-mixing hop 1 → 2 conserves the total but not the species.
        let mix = crate::builders::fermion_hop(1, 2, 1.0).to_kernel_in(&h, 4).unwrap();
        assert!(mix.conserves_hamming_weight());
        assert!(!mix.conserves_masked_weight(0b0011));
        // Projection strips the mixing channels.
        let projected = mix.projected_conserving(&[0b0011, 0b1100]);
        assert_eq!(projected.channels().len(), 0);
    }

    #[test]
    fn scaled_and_merged() {
        let a = crate::builders::heisenberg_bond(0, 1).to_kernel(3).unwrap();
        let b = crate::builders::heisenberg_bond(1, 2).to_kernel(3).unwrap();
        // a + b == kernel of the summed expression.
        let merged = OperatorKernel::merged([&a, &b]);
        let expect = crate::builders::heisenberg(&[(0, 1), (1, 2)], 1.0).to_kernel(3).unwrap();
        assert!(merged.approx_eq(&expect, 1e-13));
        // a + (-1)·a == 0.
        let cancelled = OperatorKernel::merged([&a, &a.scaled(-1.0)]);
        assert_eq!(cancelled.n_terms(), 0);
        // 2·a == a + a.
        assert!(a.scaled(2.0).approx_eq(&OperatorKernel::merged([&a, &a]), 1e-13));
    }

    #[test]
    fn u1_projection_strips_raising_channels() {
        let k = (crate::ast::sx(0) + sz(0) * sz(1)).to_kernel(2).unwrap();
        assert!(!k.conserves_hamming_weight());
        let p = k.u1_projected();
        assert!(p.conserves_hamming_weight());
        assert_eq!(p.channels().len(), 0); // Sx channels all removed
        assert_eq!(p.diagonal_monomials().len(), k.diagonal_monomials().len());
    }

    #[test]
    fn conjugation_by_translation() {
        // The 4-ring Heisenberg chain commutes with translation; a single
        // bond does not.
        let n = 4u32;
        let bonds: Vec<(usize, usize)> = (0..4).map(|i| (i, (i + 1) % 4)).collect();
        let h = crate::builders::heisenberg(&bonds, 1.0).to_kernel(n).unwrap();
        let rot = |s: u64| ls_kernels::bits::rotate_low_bits(s, n, 1);
        assert!(h.conjugated_by(rot, false).approx_eq(&h, 1e-12));
        let bond = crate::builders::heisenberg_bond(0, 1).to_kernel(n).unwrap();
        assert!(!bond.conjugated_by(rot, false).approx_eq(&bond, 1e-12));
        // Spin inversion: Heisenberg commutes with the global flip.
        let flip = |s: u64| s; // permutation part is identity
        assert!(h.conjugated_by(flip, true).approx_eq(&h, 1e-12));
        // A Zeeman field does not.
        let zeeman = (crate::ast::sz(0) + crate::ast::sz(1)).to_kernel(n).unwrap();
        assert!(!zeeman.conjugated_by(flip, true).approx_eq(&zeeman, 1e-12));
    }

    #[test]
    fn dense_of_single_bond() {
        let h = crate::builders::heisenberg_bond(0, 1).to_kernel(2).unwrap();
        let d = h.to_dense();
        // Known 4x4 Heisenberg bond in basis |00⟩,|01⟩,|10⟩,|11⟩
        // (bit 0 = site 0):
        let q = 0.25;
        let half = 0.5;
        let expect = [
            [q, 0.0, 0.0, 0.0],
            [0.0, -q, half, 0.0],
            [0.0, half, -q, 0.0],
            [0.0, 0.0, 0.0, q],
        ];
        for r in 0..4 {
            for c in 0..4 {
                assert!(
                    d[r][c].approx_eq(Complex64::from(expect[r][c]), 1e-14),
                    "entry ({r},{c}) = {:?}",
                    d[r][c]
                );
            }
        }
    }

    #[test]
    fn dense_states_matches_full_dense() {
        let h = crate::builders::heisenberg_bond(0, 1).to_kernel(2).unwrap();
        let full = h.to_dense();
        let states: Vec<u64> = (0..4).collect();
        let sub = h.to_dense_states(&states);
        for r in 0..4 {
            for c in 0..4 {
                assert!(sub[r][c].approx_eq(full[r][c], 1e-15));
            }
        }
    }
}
