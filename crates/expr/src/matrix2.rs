//! Complex 2×2 matrices: the single-site building blocks of spin-1/2
//! operators.

use ls_kernels::Complex64;

/// A 2×2 complex matrix in row-major order: `m[row][col]`.
///
/// Rows/columns are indexed by the *bit value* of the site: index 0 is
/// `|↓⟩` (bit 0), index 1 is `|↑⟩` (bit 1). `m[a][b]` is `⟨a|M|b⟩`.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Matrix2 {
    pub m: [[Complex64; 2]; 2],
}

const C0: Complex64 = Complex64::ZERO;
const C1: Complex64 = Complex64::ONE;

impl Matrix2 {
    pub const ZERO: Self = Self { m: [[C0, C0], [C0, C0]] };
    pub const IDENTITY: Self = Self { m: [[C1, C0], [C0, C1]] };

    /// `S+ = |↑⟩⟨↓|`: raises a down spin.
    pub const SPLUS: Self = Self { m: [[C0, C0], [C1, C0]] };
    /// `S- = |↓⟩⟨↑|`: lowers an up spin.
    pub const SMINUS: Self = Self { m: [[C0, C1], [C0, C0]] };
    /// `Sz = diag(-1/2, +1/2)` (bit 1 = up = +1/2).
    pub const SZ: Self =
        Self { m: [[Complex64::new(-0.5, 0.0), C0], [C0, Complex64::new(0.5, 0.0)]] };
    /// `Sx = (S+ + S-) / 2`.
    pub const SX: Self =
        Self { m: [[C0, Complex64::new(0.5, 0.0)], [Complex64::new(0.5, 0.0), C0]] };
    /// `Sy = (S+ - S-) / (2i)`.
    pub const SY: Self =
        Self { m: [[C0, Complex64::new(0.0, 0.5)], [Complex64::new(0.0, -0.5), C0]] };
    /// Pauli `σx = 2 Sx`.
    pub const SIGMA_X: Self = Self { m: [[C0, C1], [C1, C0]] };
    /// Pauli `σy = 2 Sy`.
    pub const SIGMA_Y: Self =
        Self { m: [[C0, Complex64::new(0.0, 1.0)], [Complex64::new(0.0, -1.0), C0]] };
    /// Pauli `σz = 2 Sz`.
    pub const SIGMA_Z: Self = Self { m: [[Complex64::new(-1.0, 0.0), C0], [C0, C1]] };
    /// Projector onto `|↑⟩` (number operator `n = 1/2 + Sz`).
    pub const P_UP: Self = Self { m: [[C0, C0], [C0, C1]] };
    /// Projector onto `|↓⟩` (hole operator `1 - n`).
    pub const P_DOWN: Self = Self { m: [[C1, C0], [C0, C0]] };

    /// Matrix product `self · other`.
    pub fn mul(&self, other: &Self) -> Self {
        let mut out = Self::ZERO;
        for r in 0..2 {
            for c in 0..2 {
                out.m[r][c] = self.m[r][0] * other.m[0][c] + self.m[r][1] * other.m[1][c];
            }
        }
        out
    }

    pub fn add(&self, other: &Self) -> Self {
        let mut out = Self::ZERO;
        for r in 0..2 {
            for c in 0..2 {
                out.m[r][c] = self.m[r][c] + other.m[r][c];
            }
        }
        out
    }

    pub fn scale(&self, z: Complex64) -> Self {
        let mut out = *self;
        for r in 0..2 {
            for c in 0..2 {
                out.m[r][c] *= z;
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Self {
        Self {
            m: [
                [self.m[0][0].conj(), self.m[1][0].conj()],
                [self.m[0][1].conj(), self.m[1][1].conj()],
            ],
        }
    }

    pub fn is_zero(&self, tol: f64) -> bool {
        self.m.iter().flatten().all(|z| z.abs() <= tol)
    }

    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        for r in 0..2 {
            for c in 0..2 {
                if !self.m[r][c].approx_eq(other.m[r][c], tol) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_algebra() {
        // S+ S- = P_up, S- S+ = P_down.
        assert!(Matrix2::SPLUS.mul(&Matrix2::SMINUS).approx_eq(&Matrix2::P_UP, 1e-15));
        assert!(Matrix2::SMINUS.mul(&Matrix2::SPLUS).approx_eq(&Matrix2::P_DOWN, 1e-15));
        // (S+)^2 = 0.
        assert!(Matrix2::SPLUS.mul(&Matrix2::SPLUS).is_zero(1e-15));
        // [Sz, S+] = S+.
        let comm = Matrix2::SZ
            .mul(&Matrix2::SPLUS)
            .add(&Matrix2::SPLUS.mul(&Matrix2::SZ).scale(-Complex64::ONE));
        assert!(comm.approx_eq(&Matrix2::SPLUS, 1e-15));
        // Sx² + Sy² + Sz² = 3/4 I.
        let casimir = Matrix2::SX
            .mul(&Matrix2::SX)
            .add(&Matrix2::SY.mul(&Matrix2::SY))
            .add(&Matrix2::SZ.mul(&Matrix2::SZ));
        assert!(casimir.approx_eq(&Matrix2::IDENTITY.scale(0.75.into()), 1e-15));
    }

    #[test]
    fn pauli_algebra() {
        // σx σy = i σz.
        let xy = Matrix2::SIGMA_X.mul(&Matrix2::SIGMA_Y);
        assert!(xy.approx_eq(&Matrix2::SIGMA_Z.scale(Complex64::I), 1e-15));
        // σ² = I for all Paulis.
        for p in [Matrix2::SIGMA_X, Matrix2::SIGMA_Y, Matrix2::SIGMA_Z] {
            assert!(p.mul(&p).approx_eq(&Matrix2::IDENTITY, 1e-15));
        }
    }

    #[test]
    fn hermiticity() {
        for h in [Matrix2::SX, Matrix2::SY, Matrix2::SZ, Matrix2::P_UP] {
            assert!(h.adjoint().approx_eq(&h, 1e-15));
        }
        assert!(Matrix2::SPLUS.adjoint().approx_eq(&Matrix2::SMINUS, 1e-15));
    }

    #[test]
    fn sx_sy_from_ladder() {
        let sx = Matrix2::SPLUS.add(&Matrix2::SMINUS).scale(0.5.into());
        assert!(sx.approx_eq(&Matrix2::SX, 1e-15));
        let sy = Matrix2::SPLUS
            .add(&Matrix2::SMINUS.scale(-Complex64::ONE))
            .scale(Complex64::new(0.0, -0.5));
        assert!(sy.approx_eq(&Matrix2::SY, 1e-15));
    }
}
