//! A small expression language for Hamiltonians.
//!
//! Mirrors the role of the input-file parser in the paper's package.
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! expr      := term (('+' | '-') term)*
//! term      := unary ('*' unary)*
//! unary     := '-' unary | atom
//! atom      := number | 'i' | primitive | '(' expr ')'
//! primitive := ('S+' | 'S-' | 'Sz' | 'Sx' | 'Sy' | 'σx' | 'σy' | 'σz'
//!               | 'c†' | 'c' | 'n') '_' digits
//! number    := usual float syntax, optionally suffixed with 'i'
//! ```
//!
//! Examples: `"0.5 * (S+_0 * S-_1 + S-_0 * S+_1) + Sz_0 * Sz_1"`,
//! `"2i * Sy_3 - σz_0"`, `"c†_0 * c_1 + c†_1 * c_0 + 4 * n_0 * n_2"`.

use crate::ast::{Expr, Primitive, PrimitiveKind};
use ls_kernels::Complex64;

/// Parse failure with a byte position into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub position: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Number(f64),
    ImagNumber(f64),
    ImagUnit,
    Prim(PrimitiveKind, u16),
    Plus,
    Minus,
    Star,
    LParen,
    RParen,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), position: self.pos }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek_char(&self) -> Option<char> {
        std::str::from_utf8(&self.src[self.pos..]).ok().and_then(|s| s.chars().next())
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize)>, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let c = self.peek_char().ok_or_else(|| self.error("invalid UTF-8"))?;
        let tok = match c {
            '+' => {
                self.pos += 1;
                Token::Plus
            }
            '-' => {
                self.pos += 1;
                Token::Minus
            }
            '*' => {
                self.pos += 1;
                Token::Star
            }
            '(' => {
                self.pos += 1;
                Token::LParen
            }
            ')' => {
                self.pos += 1;
                Token::RParen
            }
            '0'..='9' | '.' => self.lex_number()?,
            'S' => self.lex_spin_primitive()?,
            'σ' => self.lex_sigma_primitive()?,
            'c' => self.lex_fermion_primitive()?,
            'n' => {
                self.pos += 1;
                let site = self.lex_site_index()?;
                Token::Prim(PrimitiveKind::Number, site)
            }
            'i' => {
                self.pos += 1;
                Token::ImagUnit
            }
            other => return Err(self.error(format!("unexpected character {other:?}"))),
        };
        Ok(Some((tok, start)))
    }

    fn lex_number(&mut self) -> Result<Token, ParseError> {
        let start = self.pos;
        while self.pos < self.src.len() && matches!(self.src[self.pos], b'0'..=b'9' | b'.') {
            self.pos += 1;
        }
        // Exponent part.
        if self.pos < self.src.len() && matches!(self.src[self.pos], b'e' | b'E') {
            let mut p = self.pos + 1;
            if p < self.src.len() && matches!(self.src[p], b'+' | b'-') {
                p += 1;
            }
            if p < self.src.len() && self.src[p].is_ascii_digit() {
                self.pos = p;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let value: f64 =
            text.parse().map_err(|_| self.error(format!("bad number literal {text:?}")))?;
        // Imaginary suffix?
        if self.pos < self.src.len() && self.src[self.pos] == b'i' {
            self.pos += 1;
            Ok(Token::ImagNumber(value))
        } else {
            Ok(Token::Number(value))
        }
    }

    fn lex_spin_primitive(&mut self) -> Result<Token, ParseError> {
        // "S" already peeked.
        self.pos += 1;
        let kind = match self.src.get(self.pos) {
            Some(b'+') => PrimitiveKind::SPlus,
            Some(b'-') => PrimitiveKind::SMinus,
            Some(b'z') => PrimitiveKind::Sz,
            Some(b'x') => PrimitiveKind::Sx,
            Some(b'y') => PrimitiveKind::Sy,
            other => {
                return Err(self
                    .error(format!("expected one of +, -, z, x, y after 'S', got {other:?}")))
            }
        };
        self.pos += 1;
        let site = self.lex_site_index()?;
        Ok(Token::Prim(kind, site))
    }

    fn lex_sigma_primitive(&mut self) -> Result<Token, ParseError> {
        // 'σ' is two bytes in UTF-8.
        self.pos += 'σ'.len_utf8();
        let kind = match self.src.get(self.pos) {
            Some(b'x') => PrimitiveKind::SigmaX,
            Some(b'y') => PrimitiveKind::SigmaY,
            Some(b'z') => PrimitiveKind::SigmaZ,
            other => {
                return Err(self.error(format!("expected x, y or z after 'σ', got {other:?}")))
            }
        };
        self.pos += 1;
        let site = self.lex_site_index()?;
        Ok(Token::Prim(kind, site))
    }

    fn lex_fermion_primitive(&mut self) -> Result<Token, ParseError> {
        // "c" already peeked; an optional '†' makes it a creation operator.
        self.pos += 1;
        let kind = if self.peek_char() == Some('†') {
            self.pos += '†'.len_utf8();
            PrimitiveKind::Create
        } else {
            PrimitiveKind::Annihilate
        };
        let site = self.lex_site_index()?;
        Ok(Token::Prim(kind, site))
    }

    fn lex_site_index(&mut self) -> Result<u16, ParseError> {
        if self.src.get(self.pos) != Some(&b'_') {
            return Err(self.error("expected '_' before the site index"));
        }
        self.pos += 1;
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected a site index"));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        text.parse::<u16>().map_err(|_| self.error(format!("site index {text:?} out of range")))
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    cursor: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.cursor).map(|(t, _)| t)
    }

    fn pos(&self) -> usize {
        self.tokens.get(self.cursor).map(|&(_, p)| p).unwrap_or(self.end)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.cursor).map(|(t, _)| t.clone());
        self.cursor += 1;
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), position: self.pos() }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.bump();
                    acc = acc + self.term()?;
                }
                Some(Token::Minus) => {
                    self.bump();
                    acc = acc - self.term()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.unary()?;
        while matches!(self.peek(), Some(Token::Star)) {
            self.bump();
            acc = acc * self.unary()?;
        }
        Ok(acc)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Some(Token::Minus)) {
            self.bump();
            return Ok(-self.unary()?);
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Number(x)) => Ok(Expr::scalar(x)),
            Some(Token::ImagNumber(x)) => Ok(Expr::scalar_c(Complex64::new(0.0, x))),
            Some(Token::ImagUnit) => Ok(Expr::scalar_c(Complex64::I)),
            Some(Token::Prim(kind, site)) => Ok(Expr::Primitive(Primitive { kind, site })),
            Some(Token::LParen) => {
                let inner = self.expr()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(self.error("expected ')'")),
                }
            }
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }
}

/// Parses an operator expression from a string.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut lexer = Lexer::new(src);
    let mut tokens = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        tokens.push(tok);
    }
    let end = src.len();
    let mut parser = Parser { tokens, cursor: 0, end };
    let expr = parser.expr()?;
    if parser.cursor != parser.tokens.len() {
        return Err(parser.error("trailing input"));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{sminus, splus, sy, sz};

    fn kernels_equal(a: &str, b: Expr, n: u32) -> bool {
        let ka = parse_expr(a).unwrap().to_kernel(n).unwrap();
        let kb = b.to_kernel(n).unwrap();
        ka.approx_eq(&kb, 1e-12)
    }

    #[test]
    fn parses_heisenberg_bond() {
        assert!(kernels_equal(
            "0.5 * (S+_0 * S-_1 + S-_0 * S+_1) + Sz_0 * Sz_1",
            crate::builders::heisenberg_bond(0, 1),
            2
        ));
    }

    #[test]
    fn parses_numbers_and_imaginary() {
        assert!(kernels_equal("2e-1 * Sz_0", 0.2 * sz(0), 1));
        assert!(kernels_equal(
            "2i * Sy_0",
            Expr::scalar_c(Complex64::new(0.0, 2.0)) * sy(0),
            1
        ));
        assert!(kernels_equal(
            "i * S+_0 - i * S-_0",
            Expr::scalar_c(Complex64::I) * (splus(0) - sminus(0)),
            1
        ));
    }

    #[test]
    fn precedence_and_unary_minus() {
        assert!(kernels_equal(
            "-Sz_0 * Sz_1 + 2 * Sz_0",
            Expr::Sum(vec![-(sz(0) * sz(1)), 2.0 * sz(0)]),
            2
        ));
        // '*' binds tighter than '+':
        assert!(kernels_equal("Sz_0 + Sz_1 * Sz_2", sz(0) + sz(1) * sz(2), 3));
    }

    #[test]
    fn sigma_primitives() {
        assert!(kernels_equal("σz_0", 2.0 * sz(0), 1));
        assert!(kernels_equal(
            "σx_1 * σx_0",
            crate::ast::sigma_x(1) * crate::ast::sigma_x(0),
            2
        ));
    }

    #[test]
    fn error_positions() {
        assert!(parse_expr("Sz_").is_err());
        assert!(parse_expr("Sq_0").is_err());
        assert!(parse_expr("(Sz_0").is_err());
        assert!(parse_expr("Sz_0 Sz_1").is_err()); // no implicit '*'
        assert!(parse_expr("").is_err());
        assert!(parse_expr("Sz_99999999").is_err());
        let e = parse_expr("Sz_0 + @").unwrap_err();
        assert_eq!(e.position, 7);
    }

    #[test]
    fn nested_parentheses() {
        assert!(kernels_equal("((Sz_0) * ((Sz_1)))", sz(0) * sz(1), 2));
    }

    #[test]
    fn fermion_primitives() {
        use crate::ast::{annihilate, create, number};
        use crate::hilbert::LocalHilbert;
        let h = LocalHilbert::fermion();
        let parsed = parse_expr("c†_0 * c_2 + c†_2 * c_0 + 4 * n_0 * n_1").unwrap();
        let built = create(0) * annihilate(2)
            + create(2) * annihilate(0)
            + 4.0 * (number(0) * number(1));
        let ka = parsed.to_kernel_in(&h, 3).unwrap();
        let kb = built.to_kernel_in(&h, 3).unwrap();
        assert!(ka.approx_eq(&kb, 1e-12));
        // Display of fermionic expressions round-trips through the parser.
        let again = parse_expr(&format!("{built}")).unwrap().to_kernel_in(&h, 3).unwrap();
        assert!(again.approx_eq(&kb, 1e-12));
    }
}
