//! Convenience constructors for common Hamiltonians.
//!
//! The spin builders compile against any spin-S local Hilbert space
//! (`heisenberg` works unchanged for spin-1 chains); the fermionic
//! builders require [`crate::LocalHilbert::fermion`] sites.

use crate::ast::{annihilate, create, number, sminus, splus, sx, sz, Expr};

/// The Heisenberg exchange on one bond:
/// `S_i · S_j = (S+_i S-_j + S-_i S+_j)/2 + Sz_i Sz_j`.
pub fn heisenberg_bond(i: u16, j: u16) -> Expr {
    Expr::scalar(0.5) * (splus(i) * sminus(j) + sminus(i) * splus(j)) + sz(i) * sz(j)
}

/// Antiferromagnetic Heisenberg model `H = J Σ_bonds S_i · S_j`.
///
/// With `j = 1` and the closed-chain bond list this is exactly the paper's
/// benchmark Hamiltonian.
pub fn heisenberg(bonds: &[(usize, usize)], j: f64) -> Expr {
    let mut terms = Vec::with_capacity(bonds.len());
    for &(a, b) in bonds {
        terms.push(j * heisenberg_bond(a as u16, b as u16));
    }
    Expr::Sum(terms)
}

/// One XXZ bond: `(S+_i S-_j + S-_i S+_j)·jxy/2 + Δ·Sz_i Sz_j`.
pub fn xxz_bond(i: u16, j: u16, jxy: f64, delta: f64) -> Expr {
    Expr::scalar(0.5 * jxy) * (splus(i) * sminus(j) + sminus(i) * splus(j))
        + delta * (sz(i) * sz(j))
}

/// XXZ model over a bond list.
pub fn xxz(bonds: &[(usize, usize)], jxy: f64, delta: f64) -> Expr {
    let mut terms = Vec::with_capacity(bonds.len());
    for &(a, b) in bonds {
        terms.push(xxz_bond(a as u16, b as u16, jxy, delta));
    }
    Expr::Sum(terms)
}

/// Ising `ZZ` coupling `J Σ Sz_i Sz_j` over bonds.
pub fn ising_zz(bonds: &[(usize, usize)], j: f64) -> Expr {
    let mut terms = Vec::with_capacity(bonds.len());
    for &(a, b) in bonds {
        terms.push(j * (sz(a as u16) * sz(b as u16)));
    }
    Expr::Sum(terms)
}

/// Transverse field `h Σ_i Sx_i` over `n` sites (breaks U(1); used by the
/// transverse-field Ising example).
pub fn transverse_field(n_sites: usize, h: f64) -> Expr {
    let mut terms = Vec::with_capacity(n_sites);
    for i in 0..n_sites {
        terms.push(h * sx(i as u16));
    }
    Expr::Sum(terms)
}

/// One hopping bond `−t (c†_i c_j + c†_j c_i)` between fermionic
/// orbitals `i` and `j` (Jordan-Wigner signs handled by compilation).
pub fn fermion_hop(i: u16, j: u16, t: f64) -> Expr {
    Expr::scalar(-t) * (create(i) * annihilate(j) + create(j) * annihilate(i))
}

/// The 1D Hubbard chain on `n` physical sites:
/// `H = −t Σ_{⟨ij⟩,σ} (c†_{iσ} c_{jσ} + h.c.) + U Σ_i n_{i↑} n_{i↓}`.
///
/// Orbital layout: spin-up orbital of site `i` is code position `i`, the
/// spin-down orbital is `n + i` — so the basis word needs `2n` fermionic
/// sites, nearest-neighbour hops are string-free within each species, and
/// the periodic closure bond (when `periodic`) exercises non-trivial
/// Jordan-Wigner sign masks.
pub fn hubbard_1d(n: usize, t: f64, u: f64, periodic: bool) -> Expr {
    let n16 = n as u16;
    let mut terms = Vec::new();
    let last_bond = if periodic && n > 2 { n } else { n.saturating_sub(1) };
    for b in 0..last_bond {
        let (i, j) = (b as u16 % n16, (b as u16 + 1) % n16);
        terms.push(fermion_hop(i, j, t)); // spin up
        terms.push(fermion_hop(n16 + i, n16 + j, t)); // spin down
    }
    for i in 0..n16 {
        terms.push(u * (number(i) * number(n16 + i)));
    }
    Expr::Sum(terms)
}

/// The total-spin operator `S² = (Σ_i S_i)·(Σ_j S_j)` for spin-1/2
/// systems (the on-site Casimir `S_i · S_i = 3/4` is hardcoded).
///
/// Commutes with any SU(2)-symmetric Hamiltonian; its eigenvalues are
/// `s(s+1)`. Useful as a diagnostic observable: the ground state of the
/// antiferromagnetic Heisenberg chain is a singlet (`⟨S²⟩ = 0`).
pub fn total_spin_squared(n_sites: usize) -> Expr {
    let mut terms = Vec::with_capacity(n_sites * n_sites);
    for i in 0..n_sites as u16 {
        for j in 0..n_sites as u16 {
            if i == j {
                // S_i · S_i = 3/4 for spin-1/2.
                terms.push(Expr::scalar(0.75));
            } else {
                terms.push(heisenberg_bond(i, j));
            }
        }
    }
    Expr::Sum(terms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heisenberg_is_hermitian_and_u1() {
        let bonds = [(0usize, 1usize), (1, 2), (2, 0)];
        let k = heisenberg(&bonds, 1.0).to_kernel(3).unwrap();
        assert!(k.is_hermitian(1e-12));
        assert!(k.conserves_hamming_weight());
        // One Walsh monomial per bond, two channels per bond.
        assert_eq!(k.diagonal_monomials().len(), 3);
        assert_eq!(k.channels().len(), 6);
    }

    #[test]
    fn xxz_reduces_to_heisenberg() {
        let bonds = [(0usize, 1usize)];
        let a = xxz(&bonds, 1.0, 1.0).to_kernel(2).unwrap();
        let b = heisenberg(&bonds, 1.0).to_kernel(2).unwrap();
        assert!(a.approx_eq(&b, 1e-14));
    }

    #[test]
    fn transverse_field_breaks_u1() {
        let k = transverse_field(3, 0.7).to_kernel(3).unwrap();
        assert!(!k.conserves_hamming_weight());
        assert!(k.is_hermitian(1e-12));
        assert_eq!(k.channels().len(), 6); // one raise + one lower per site
    }

    #[test]
    fn ising_is_diagonal() {
        let k = ising_zz(&[(0, 1), (1, 2)], 2.0).to_kernel(3).unwrap();
        assert!(k.channels().is_empty());
        assert_eq!(k.diagonal_monomials().len(), 2);
    }

    #[test]
    fn hubbard_structure() {
        use crate::hilbert::LocalHilbert;
        let h = LocalHilbert::fermion();
        // 3-site open chain, 6 orbitals.
        let k = hubbard_1d(3, 1.0, 4.0, false).to_kernel_in(&h, 6).unwrap();
        assert!(k.is_hermitian(1e-12));
        assert!(k.conserves_hamming_weight());
        // Species conservation: up orbitals 0..3, down orbitals 3..6.
        assert!(k.conserves_masked_weight(0b000111));
        assert!(k.conserves_masked_weight(0b111000));
        // Open-chain nearest-neighbour hops are all string-free.
        assert!(!k.has_signs());
        // Periodic closure introduces a Jordan-Wigner string.
        let p = hubbard_1d(3, 1.0, 4.0, true).to_kernel_in(&h, 6).unwrap();
        assert!(p.has_signs());
        assert!(p.is_hermitian(1e-12));
    }

    #[test]
    fn total_spin_squared_on_two_sites() {
        // Two spins: S² has eigenvalues 0 (singlet) and 2 (triplet).
        let k = total_spin_squared(2).to_kernel(2).unwrap();
        let d = k.to_dense();
        // Triplet |↑↑⟩: S² = 2.
        assert!(d[3][3].approx_eq(ls_kernels::Complex64::from(2.0), 1e-12));
        // On the |↑↓⟩/|↓↑⟩ block: [[1, 1], [1, 1]] — eigenvalues 0 and 2.
        assert!(d[1][1].approx_eq(ls_kernels::Complex64::from(1.0), 1e-12));
        assert!(d[1][2].approx_eq(ls_kernels::Complex64::from(1.0), 1e-12));
        assert!(k.is_hermitian(1e-12));
    }

    #[test]
    fn total_spin_commutes_with_heisenberg() {
        let n = 4;
        let h = heisenberg(&[(0, 1), (1, 2), (2, 3), (3, 0)], 1.0).to_kernel(n).unwrap();
        let s2 = total_spin_squared(n as usize).to_kernel(n).unwrap();
        // [H, S²] = 0: compare dense products.
        let hd = h.to_dense();
        let sd = s2.to_dense();
        let dim = 1usize << n;
        for i in 0..dim {
            for j in 0..dim {
                let mut hs = ls_kernels::Complex64::ZERO;
                let mut sh = ls_kernels::Complex64::ZERO;
                for k in 0..dim {
                    hs += hd[i][k] * sd[k][j];
                    sh += sd[i][k] * hd[k][j];
                }
                assert!(hs.approx_eq(sh, 1e-10), "[H,S²] != 0 at ({i},{j})");
            }
        }
    }
}
