//! The pluggable local Hilbert space: which on-site primitives exist,
//! what their matrices are, and how site codes pack into basis words.
//!
//! A [`LocalHilbert`] pairs a [`SiteEncoding`] (field width, local
//! dimension, statistics flag) with the operator dictionary of that site
//! type. Everything downstream — normal ordering, channel compilation,
//! sector enumeration, ranking, batched/distributed matvec — is generic
//! over it; only this module and the instance builders know what a
//! "fermion" or a "spin-1 site" actually is.
//!
//! Sign convention for fermions: sites are Jordan-Wigner ordered by code
//! position, `c_i = (Π_{j<i} Z_j) a_i` with `Z = diag(1, −1)` in the
//! occupation basis, so a channel's runtime amplitude is
//! `(−1)^{popcount(α & sign_mask)} · coeff`.

use crate::ast::PrimitiveKind;
use crate::normal::CompileError;
use crate::sitematrix::SiteMatrix;
use ls_kernels::SiteEncoding;

/// A local Hilbert space: encoding plus on-site operator dictionary.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LocalHilbert {
    encoding: SiteEncoding,
}

impl LocalHilbert {
    /// Spin-1/2 sites: the default, and the bit-identical fast path.
    pub const fn spin_half() -> Self {
        Self { encoding: SiteEncoding::spin_half() }
    }

    /// Spin-S sites with `local_dim = 2S + 1` in `2..=4`.
    pub fn spin(local_dim: u32) -> Self {
        Self { encoding: SiteEncoding::spin(local_dim) }
    }

    /// Spin-1 sites (codes 0, 1, 2 for `Sz = −1, 0, +1`).
    pub fn spin_one() -> Self {
        Self::spin(3)
    }

    /// Fermionic orbitals (one occupation bit per site, Jordan-Wigner
    /// signs). Spinful models use two orbitals per physical site.
    pub const fn fermion() -> Self {
        Self { encoding: SiteEncoding::fermion() }
    }

    /// Reconstructs the Hilbert space from its encoding (the encoding
    /// fully determines the operator dictionary).
    pub fn from_encoding(encoding: SiteEncoding) -> Self {
        Self { encoding }
    }

    pub fn encoding(&self) -> SiteEncoding {
        self.encoding
    }

    pub fn local_dim(&self) -> u32 {
        self.encoding.local_dim()
    }

    pub fn is_fermionic(&self) -> bool {
        self.encoding.is_fermionic()
    }

    /// Human-readable name for diagnostics.
    pub fn name(&self) -> &'static str {
        if self.is_fermionic() {
            "fermion"
        } else {
            match self.local_dim() {
                2 => "spin-1/2",
                3 => "spin-1",
                _ => "spin-3/2",
            }
        }
    }

    /// The on-site matrix of a primitive, or an error if this site type
    /// does not define it (e.g. `c†` on a spin site, `σx` on spin-1).
    pub fn primitive_matrix(&self, kind: PrimitiveKind) -> Result<SiteMatrix, CompileError> {
        use PrimitiveKind::*;
        let unsupported = || {
            Err(CompileError::UnsupportedPrimitive {
                symbol: kind.symbol(),
                hilbert: self.name(),
            })
        };
        if self.is_fermionic() {
            return match kind {
                Create => Ok(SiteMatrix::fermion_create()),
                Annihilate => Ok(SiteMatrix::fermion_annihilate()),
                Number => Ok(SiteMatrix::fermion_number()),
                _ => unsupported(),
            };
        }
        let d = self.local_dim() as usize;
        match kind {
            SPlus => Ok(SiteMatrix::splus(d)),
            SMinus => Ok(SiteMatrix::sminus(d)),
            Sz => Ok(SiteMatrix::sz(d)),
            Sx => Ok(SiteMatrix::sx(d)),
            Sy => Ok(SiteMatrix::sy(d)),
            SigmaX if d == 2 => Ok(SiteMatrix::sx(2).scale(2.0.into())),
            SigmaY if d == 2 => Ok(SiteMatrix::sy(2).scale(2.0.into())),
            SigmaZ if d == 2 => Ok(SiteMatrix::sz(2).scale(2.0.into())),
            _ => unsupported(),
        }
    }

    /// Does `kind` carry a Jordan-Wigner string in this Hilbert space?
    pub fn primitive_has_string(&self, kind: PrimitiveKind) -> bool {
        self.is_fermionic() && matches!(kind, PrimitiveKind::Create | PrimitiveKind::Annihilate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_half_dictionary_matches_matrix2() {
        let h = LocalHilbert::spin_half();
        let m = h.primitive_matrix(PrimitiveKind::SigmaZ).unwrap();
        assert!(m.approx_eq(&SiteMatrix::from_matrix2(crate::Matrix2::SIGMA_Z), 1e-15));
        assert!(h.primitive_matrix(PrimitiveKind::Create).is_err());
        assert!(!h.is_fermionic());
    }

    #[test]
    fn spin_one_rejects_paulis_and_fermions() {
        let h = LocalHilbert::spin_one();
        assert!(h.primitive_matrix(PrimitiveKind::Sz).is_ok());
        let err = h.primitive_matrix(PrimitiveKind::SigmaX).unwrap_err();
        assert!(matches!(err, CompileError::UnsupportedPrimitive { hilbert: "spin-1", .. }));
        assert!(h.primitive_matrix(PrimitiveKind::Annihilate).is_err());
    }

    #[test]
    fn fermion_dictionary() {
        let h = LocalHilbert::fermion();
        assert!(h.is_fermionic());
        assert!(h.primitive_matrix(PrimitiveKind::Create).is_ok());
        assert!(h.primitive_matrix(PrimitiveKind::Sz).is_err());
        assert!(h.primitive_has_string(PrimitiveKind::Create));
        assert!(!h.primitive_has_string(PrimitiveKind::Number));
    }
}
