//! Normal-form expansion: AST → monomials → kernel.
//!
//! Every expression is first distributed into a sum of *monomials* (a
//! complex coefficient times at most one d×d matrix per site — same-site
//! products are multiplied out immediately using the local Hilbert
//! space's algebra). Fermionic primitives additionally carry a
//! Jordan-Wigner parity string `Π_{j<site} Z_j`; multiplication folds
//! string factors into overlapping site matrices (`Z·M` from the left,
//! `M·Z` from the right) and cancels doubled strings, so a monomial's
//! residual `zstring` is always disjoint from its matrix factors.
//!
//! Each monomial is then decomposed over the matrix units
//! `E_ab = |a⟩⟨b|`, yielding scattering channels. For one-bit encodings
//! diagonal channels are converted to Walsh monomials so that e.g.
//! `Sz_i Sz_j` costs a single popcount instead of four masked compares
//! (residual strings fold into the Walsh masks: `Z_j = −z_j`); wider
//! encodings keep diagonal channels as masked-compare patterns.

use std::collections::{BTreeMap, HashMap};

use crate::ast::Expr;
use crate::hilbert::LocalHilbert;
use crate::kernel::{Channel, DiagPattern, OperatorKernel, ZMonomial};
use crate::sitematrix::SiteMatrix;
use ls_kernels::bits::low_mask;
use ls_kernels::Complex64;

/// Error compiling an expression to a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A primitive references a site ≥ `n_sites`.
    SiteOutOfRange { site: u16, n_sites: u32 },
    /// The system's packed codes exceed the 64-bit basis word.
    TooManySites(u32),
    /// A monomial touches more sites than the expansion limit (16); such
    /// operators are outside the scope of two- and few-body physics.
    MonomialTooWide(usize),
    /// The primitive is not defined on this local Hilbert space (e.g.
    /// `c†` on a spin site, `σx` on spin-1).
    UnsupportedPrimitive { symbol: &'static str, hilbert: &'static str },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SiteOutOfRange { site, n_sites } => {
                write!(f, "site {site} out of range for {n_sites} sites")
            }
            Self::TooManySites(n) => write!(f, "{n} sites exceeds the 64-bit limit"),
            Self::MonomialTooWide(k) => {
                write!(f, "monomial touches {k} sites (limit 16)")
            }
            Self::UnsupportedPrimitive { symbol, hilbert } => {
                write!(f, "primitive {symbol} is not defined on {hilbert} sites")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A coefficient times one matrix per (sorted) site, times a residual
/// Jordan-Wigner string `Π_{j∈zstring} Z_j` on sites *not* in `factors`.
#[derive(Clone, Debug)]
struct Monomial {
    coeff: Complex64,
    factors: BTreeMap<u16, SiteMatrix>,
    zstring: u64,
}

impl Monomial {
    fn scalar(c: Complex64) -> Self {
        Self { coeff: c, factors: BTreeMap::new(), zstring: 0 }
    }

    /// Operator product `self · other` (self acts *after* other ... the
    /// convention only matters within a site, where we multiply
    /// `self_matrix · other_matrix` — matching `(AB)|ψ⟩ = A(B|ψ⟩)` with
    /// `A = self`).
    ///
    /// String bookkeeping: at each site the combined factor is `A_s · B_s`
    /// with `A_s, B_s ∈ {I, M, Z}`. A left string over a right factor
    /// multiplies `Z·M`; a right string over a (merged) left factor
    /// multiplies `M·Z`; two strings on a bare site cancel (`Z² = I`),
    /// which the final XOR handles.
    fn mul(&self, other: &Self) -> Self {
        let mut factors = self.factors.clone();
        let mut s_left = self.zstring;
        for (&site, m) in &other.factors {
            let bit = 1u64 << site;
            let mb = if s_left & bit != 0 {
                s_left &= !bit;
                SiteMatrix::fermion_parity().mul(m)
            } else {
                *m
            };
            factors.entry(site).and_modify(|ma| *ma = ma.mul(&mb)).or_insert(mb);
        }
        let mut s_right = other.zstring;
        let mut crossing = s_right;
        while crossing != 0 {
            let site = crossing.trailing_zeros() as u16;
            crossing &= crossing - 1;
            if let Some(ma) = factors.get_mut(&site) {
                *ma = ma.mul(&SiteMatrix::fermion_parity());
                s_right &= !(1u64 << site);
            }
        }
        Self { coeff: self.coeff * other.coeff, factors, zstring: s_left ^ s_right }
    }

    fn is_zero(&self, tol: f64) -> bool {
        self.coeff.abs() <= tol || self.factors.values().any(|m| m.is_zero(tol))
    }
}

/// Distributes the expression into monomials over `h`'s site algebra.
fn expand(expr: &Expr, h: &LocalHilbert) -> Result<Vec<Monomial>, CompileError> {
    Ok(match expr {
        Expr::Scalar(z) => vec![Monomial::scalar(*z)],
        Expr::Primitive(p) => {
            let mut factors = BTreeMap::new();
            factors.insert(p.site, h.primitive_matrix(p.kind)?);
            let zstring =
                if h.primitive_has_string(p.kind) { low_mask(p.site as u32) } else { 0 };
            vec![Monomial { coeff: Complex64::ONE, factors, zstring }]
        }
        Expr::Sum(es) => {
            let mut out = Vec::new();
            for e in es {
                out.extend(expand(e, h)?);
            }
            out
        }
        Expr::Product(es) => {
            let mut acc = vec![Monomial::scalar(Complex64::ONE)];
            for e in es {
                // A·B: for our left-to-right fold the accumulated product
                // is applied first conceptually as written; within a site
                // the matrix product must follow operator order:
                // Product([A, B]) means A*B, i.e. apply B to the ket first,
                // so the combined matrix is A_site · B_site. The fold
                // computes acc.mul(next) with acc on the left. Since acc
                // holds the *earlier* factors of the product (A), this is
                // A_site · B_site as required.
                let rhs = expand(e, h)?;
                let mut next = Vec::with_capacity(acc.len() * rhs.len());
                for a in &acc {
                    for b in &rhs {
                        next.push(a.mul(b));
                    }
                }
                acc = next;
            }
            acc
        }
    })
}

const TOL: f64 = 1e-14;

impl Expr {
    /// Compiles the expression into an [`OperatorKernel`] for an
    /// `n_sites`-site spin-1/2 system.
    ///
    /// The scalar (identity) part of the expression becomes the Walsh
    /// monomial with empty `zmask`, i.e. a constant energy shift.
    pub fn to_kernel(&self, n_sites: u32) -> Result<OperatorKernel, CompileError> {
        self.to_kernel_in(&LocalHilbert::spin_half(), n_sites)
    }

    /// Compiles the expression into an [`OperatorKernel`] for `n_sites`
    /// sites of the given local Hilbert space.
    ///
    /// The same normal-ordering and channel-merging path serves every
    /// site type; spin-1/2 input produces kernels bit-identical to the
    /// historical single-algebra compiler.
    pub fn to_kernel_in(
        &self,
        h: &LocalHilbert,
        n_sites: u32,
    ) -> Result<OperatorKernel, CompileError> {
        let encoding = h.encoding();
        if n_sites > encoding.max_sites() {
            return Err(CompileError::TooManySites(n_sites));
        }
        let bits = encoding.bits();
        let monomials = expand(self, h)?;
        // Merge channels across monomials.
        let mut channels: HashMap<(u64, u64, u64, u64), Complex64> = HashMap::new();
        let mut walsh: HashMap<u64, Complex64> = HashMap::new();
        let mut patterns: HashMap<(u64, u64), Complex64> = HashMap::new();
        for mono in &monomials {
            if mono.is_zero(TOL) {
                continue;
            }
            let sites: Vec<u16> = mono.factors.keys().copied().collect();
            if sites.len() > 16 {
                return Err(CompileError::MonomialTooWide(sites.len()));
            }
            for &s in &sites {
                if s as u32 >= n_sites {
                    return Err(CompileError::SiteOutOfRange { site: s, n_sites });
                }
            }
            if mono.zstring != 0 && 64 - mono.zstring.leading_zeros() > n_sites {
                let site = (63 - mono.zstring.leading_zeros()) as u16;
                return Err(CompileError::SiteOutOfRange { site, n_sites });
            }
            let mats: Vec<&SiteMatrix> = mono.factors.values().collect();
            let string = mono.zstring;
            // DFS over matrix-unit assignments (a_i, b_i) per site.
            expand_channels(
                mono.coeff,
                &sites,
                &mats,
                bits,
                0,
                0,
                0,
                &mut |sites_mask, in_pat, out_pat, c| {
                    if in_pat == out_pat {
                        if bits == 1 {
                            // Diagonal channel: convert to Walsh monomials.
                            // Π_i P_{b_i} = Σ_{T ⊆ sites} (1/2^k) Π_{i∈T} s_i z_i
                            // with s_i = +1 if b_i = 1 else -1. A residual
                            // string contributes Π_{j∈string} Z_j with
                            // Z_j = −z_j, i.e. extends every Walsh mask by
                            // `string` and scales by (−1)^|string|.
                            let k = sites_mask.count_ones();
                            let norm = 1.0 / (1u64 << k) as f64;
                            let string_sign =
                                if string.count_ones() & 1 == 0 { 1.0 } else { -1.0 };
                            // Iterate subsets of sites_mask.
                            let mut t = sites_mask;
                            loop {
                                // sign = Π_{i∈T} s_i = (-1)^{# of zero-bits of
                                // in_pat within T}.
                                let negs = (t & !in_pat).count_ones();
                                let sign = if negs & 1 == 0 { 1.0 } else { -1.0 };
                                *walsh.entry(t | string).or_insert(Complex64::ZERO) +=
                                    c.scale(norm * sign * string_sign);
                                if t == 0 {
                                    break;
                                }
                                t = (t - 1) & sites_mask;
                            }
                        } else {
                            // Multi-bit sites: keep the masked-compare form.
                            *patterns.entry((sites_mask, in_pat)).or_insert(Complex64::ZERO) +=
                                c;
                        }
                    } else {
                        *channels
                            .entry((sites_mask, in_pat, out_pat, string))
                            .or_insert(Complex64::ZERO) += c;
                    }
                },
            );
        }
        let diag: Vec<ZMonomial> = walsh
            .into_iter()
            .filter(|(_, c)| c.abs() > TOL)
            .map(|(zmask, coeff)| ZMonomial { coeff, zmask })
            .collect();
        let diag_patterns: Vec<DiagPattern> = patterns
            .into_iter()
            .filter(|(_, c)| c.abs() > TOL)
            .map(|((sites, pat), coeff)| DiagPattern { coeff, sites, pat })
            .collect();
        let offdiag: Vec<Channel> = channels
            .into_iter()
            .filter(|(_, c)| c.abs() > TOL)
            .map(|((sites, in_pat, out_pat, sign), coeff)| Channel {
                coeff,
                sites,
                in_pat,
                out_pat,
                sign,
            })
            .collect();
        Ok(OperatorKernel::from_parts_encoded(encoding, n_sites, diag, diag_patterns, offdiag))
    }
}

/// Recursively expands `coeff · Π_i M_i` over matrix units, calling `emit`
/// with `(sites_mask, in_pattern, out_pattern, coefficient)` for every
/// non-zero assignment. Patterns live in code space: site `i`'s field
/// occupies bits `[i·bits, (i+1)·bits)`.
#[allow(clippy::too_many_arguments)]
fn expand_channels(
    coeff: Complex64,
    sites: &[u16],
    mats: &[&SiteMatrix],
    bits: u32,
    sites_mask: u64,
    in_pat: u64,
    out_pat: u64,
    emit: &mut impl FnMut(u64, u64, u64, Complex64),
) {
    if coeff.abs() <= TOL {
        return;
    }
    match sites.split_first() {
        None => emit(sites_mask, in_pat, out_pat, coeff),
        Some((&site, rest_sites)) => {
            let (m, rest_mats) = mats.split_first().unwrap();
            let shift = site as u32 * bits;
            let field = low_mask(bits) << shift;
            for a in 0..m.d as u64 {
                for b in 0..m.d as u64 {
                    let entry = m.m[a as usize][b as usize];
                    if entry.abs() <= TOL {
                        continue;
                    }
                    expand_channels(
                        coeff * entry,
                        rest_sites,
                        rest_mats,
                        bits,
                        sites_mask | field,
                        in_pat | (b << shift),
                        out_pat | (a << shift),
                        emit,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{annihilate, create, number, sigma_x, sminus, splus, sx, sy, sz};

    fn dense(e: &Expr, n: u32) -> Vec<Vec<Complex64>> {
        e.to_kernel(n).unwrap().to_dense()
    }

    fn dense_approx_eq(a: &[Vec<Complex64>], b: &[Vec<Complex64>], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(ra, rb)| ra.iter().zip(rb).all(|(x, y)| x.approx_eq(*y, tol)))
    }

    #[test]
    fn same_site_products_reduce() {
        // S+ S- = P_up = 1/2 + Sz on one site.
        let lhs = dense(&(splus(0) * sminus(0)), 1);
        let rhs = dense(&(Expr::scalar(0.5) + sz(0)), 1);
        assert!(dense_approx_eq(&lhs, &rhs, 1e-14));
        // (S+)^2 = 0.
        let zero = dense(&(splus(0) * splus(0)), 1);
        assert!(zero.iter().flatten().all(|z| z.abs() < 1e-14));
    }

    #[test]
    fn linearity_of_compilation() {
        let a = splus(0) * sminus(1);
        let b = sz(0) * sz(2);
        let c = sx(1) * sx(2);
        let lhs = dense(&((a.clone() + b.clone()) * c.clone()), 3);
        // (a+b)c = ac + bc
        let ac = dense(&(a * c.clone()), 3);
        let bc = dense(&(b * c), 3);
        let sum: Vec<Vec<Complex64>> = ac
            .iter()
            .zip(&bc)
            .map(|(ra, rb)| ra.iter().zip(rb).map(|(x, y)| *x + *y).collect())
            .collect();
        assert!(dense_approx_eq(&lhs, &sum, 1e-13));
    }

    #[test]
    fn sx_equals_ladder_combination() {
        let lhs = dense(&sx(0), 1);
        let rhs = dense(&(Expr::scalar(0.5) * (splus(0) + sminus(0))), 1);
        assert!(dense_approx_eq(&lhs, &rhs, 1e-14));
    }

    #[test]
    fn sy_squared_is_quarter_identity() {
        let lhs = dense(&(sy(0) * sy(0)), 1);
        let rhs = dense(&Expr::scalar(0.25), 1);
        assert!(dense_approx_eq(&lhs, &rhs, 1e-14));
    }

    #[test]
    fn scalar_becomes_energy_shift() {
        let k = (Expr::scalar(3.5) + sz(0)).to_kernel(2).unwrap();
        assert!(k.diagonal(0b00).approx_eq(Complex64::from(3.5 - 0.5), 1e-14));
        assert!(k.diagonal(0b01).approx_eq(Complex64::from(3.5 + 0.5), 1e-14));
    }

    #[test]
    fn walsh_merging_cancels() {
        // Sz_0 Sz_1 has a single Walsh monomial with zmask {0,1} and
        // coefficient 1/4.
        let k = (sz(0) * sz(1)).to_kernel(2).unwrap();
        assert_eq!(k.diagonal_monomials().len(), 1);
        let m = k.diagonal_monomials()[0];
        assert_eq!(m.zmask, 0b11);
        assert!(m.coeff.approx_eq(Complex64::from(0.25), 1e-14));
        assert_eq!(k.channels().len(), 0);
    }

    #[test]
    fn site_out_of_range_rejected() {
        let err = sz(5).to_kernel(3).unwrap_err();
        assert_eq!(err, CompileError::SiteOutOfRange { site: 5, n_sites: 3 });
    }

    #[test]
    fn pauli_string_channels() {
        // σx_0 σx_1 = (S+_0 + S-_0)(S+_1 + S-_1): four channels, each ±1
        // flipping both bits.
        let k = (sigma_x(0) * sigma_x(1)).to_kernel(2).unwrap();
        assert_eq!(k.channels().len(), 4);
        for c in k.channels() {
            assert_eq!(c.sites, 0b11);
            assert_eq!(c.flip_mask(), 0b11);
            assert!(c.coeff.approx_eq(Complex64::ONE, 1e-14));
        }
        assert!(!k.conserves_hamming_weight());
    }

    #[test]
    fn heisenberg_dot_product_forms_agree() {
        // S_0 · S_1 via ladder form and via Sx Sx + Sy Sy + Sz Sz.
        let ladder = crate::builders::heisenberg_bond(0, 1);
        let cartesian = sx(0) * sx(1) + sy(0) * sy(1) + sz(0) * sz(1);
        let a = dense(&ladder, 2);
        let b = dense(&cartesian, 2);
        assert!(dense_approx_eq(&a, &b, 1e-14));
    }

    #[test]
    fn fermions_rejected_on_spin_sites() {
        let err = create(0).to_kernel(2).unwrap_err();
        assert!(matches!(err, CompileError::UnsupportedPrimitive { symbol: "c†", .. }));
    }

    #[test]
    fn jw_strings_cancel_in_number_operator() {
        // c†_i c_i compiles to the diagonal n_i regardless of how far up
        // the chain the orbital sits.
        let h = LocalHilbert::fermion();
        let k = (create(3) * annihilate(3)).to_kernel_in(&h, 5).unwrap();
        assert!(k.channels().is_empty());
        let kn = number(3).to_kernel_in(&h, 5).unwrap();
        assert!(k.approx_eq(&kn, 1e-14));
        assert!(k.diagonal(0b01000).approx_eq(Complex64::ONE, 1e-14));
        assert!(k.diagonal(0b10111).approx_eq(Complex64::ZERO, 1e-14));
    }

    #[test]
    fn adjacent_hop_has_no_sign_mask() {
        let h = LocalHilbert::fermion();
        let k = (create(1) * annihilate(2)).to_kernel_in(&h, 3).unwrap();
        assert_eq!(k.channels().len(), 1);
        let c = k.channels()[0];
        assert_eq!(c.sign, 0);
        assert_eq!(c.sites, 0b110);
        assert_eq!(c.in_pat, 0b100);
        assert_eq!(c.out_pat, 0b010);
    }

    #[test]
    fn long_range_hop_carries_jw_string() {
        // c†_0 c_3: sign counts the occupation of orbitals 1 and 2.
        let h = LocalHilbert::fermion();
        let k = (create(0) * annihilate(3)).to_kernel_in(&h, 4).unwrap();
        assert_eq!(k.channels().len(), 1);
        let c = k.channels()[0];
        assert_eq!(c.sign, 0b0110);
        // |1000⟩ → |0001⟩ with +1 (empty string)...
        let mut out = Vec::new();
        k.off_diagonal(0b1000, &mut out);
        assert_eq!(out, vec![(0b0001, Complex64::ONE)]);
        // ...but |1010⟩ → |0011⟩ with −1 (orbital 1 occupied).
        out.clear();
        k.off_diagonal(0b1010, &mut out);
        assert_eq!(out, vec![(0b0011, -Complex64::ONE)]);
    }

    #[test]
    fn spin_one_heisenberg_bond_diagonal_patterns() {
        // On spin-1 sites Sz_0 Sz_1 keeps masked-compare diagonal form.
        let h = LocalHilbert::spin_one();
        let k = (sz(0) * sz(1)).to_kernel_in(&h, 2).unwrap();
        assert!(k.diagonal_monomials().is_empty());
        assert!(k.channels().is_empty());
        // ⟨Sz Sz⟩ on |+1,−1⟩ (codes 2,0) is −1; on |+1,+1⟩ (codes 2,2) +1.
        assert!(k.diagonal(0b0010).approx_eq(-Complex64::ONE, 1e-14));
        assert!(k.diagonal(0b1010).approx_eq(Complex64::ONE, 1e-14));
        // |0,m⟩ rows vanish.
        assert!(k.diagonal(0b1001).approx_eq(Complex64::ZERO, 1e-14));
    }

    #[test]
    fn spin_one_ladder_normalization() {
        // S+|m=0⟩ = √2 |m=+1⟩ on a spin-1 site.
        let h = LocalHilbert::spin_one();
        let k = splus(0).to_kernel_in(&h, 1).unwrap();
        let mut out = Vec::new();
        k.off_diagonal(0b01, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0b10);
        assert!(out[0].1.approx_eq(Complex64::from(std::f64::consts::SQRT_2), 1e-14));
    }
}
