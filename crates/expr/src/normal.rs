//! Normal-form expansion: AST → monomials → kernel.
//!
//! Every expression is first distributed into a sum of *monomials* (a
//! complex coefficient times at most one 2×2 matrix per site — same-site
//! products are multiplied out immediately using the spin-1/2 algebra).
//! Each monomial is then decomposed over the matrix units
//! `E_ab = |a⟩⟨b|`, yielding scattering channels, and diagonal channels
//! are converted to Walsh monomials so that e.g. `Sz_i Sz_j` costs a
//! single popcount instead of four masked compares.

use std::collections::{BTreeMap, HashMap};

use crate::ast::Expr;
use crate::kernel::{Channel, OperatorKernel, ZMonomial};
use crate::matrix2::Matrix2;
use ls_kernels::Complex64;

/// Error compiling an expression to a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A primitive references a site ≥ `n_sites`.
    SiteOutOfRange { site: u16, n_sites: u32 },
    /// More than 64 sites requested.
    TooManySites(u32),
    /// A monomial touches more sites than the expansion limit (16); such
    /// operators are outside the scope of two- and few-body physics.
    MonomialTooWide(usize),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SiteOutOfRange { site, n_sites } => {
                write!(f, "site {site} out of range for {n_sites} sites")
            }
            Self::TooManySites(n) => write!(f, "{n} sites exceeds the 64-bit limit"),
            Self::MonomialTooWide(k) => {
                write!(f, "monomial touches {k} sites (limit 16)")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A coefficient times one matrix per (sorted) site.
#[derive(Clone, Debug)]
struct Monomial {
    coeff: Complex64,
    factors: BTreeMap<u16, Matrix2>,
}

impl Monomial {
    fn scalar(c: Complex64) -> Self {
        Self { coeff: c, factors: BTreeMap::new() }
    }

    /// Operator product `self · other` (self acts *after* other ... the
    /// convention only matters within a site, where we multiply
    /// `self_matrix · other_matrix` — matching `(AB)|ψ⟩ = A(B|ψ⟩)` with
    /// `A = self`).
    fn mul(&self, other: &Self) -> Self {
        let mut factors = self.factors.clone();
        for (&site, m) in &other.factors {
            factors
                .entry(site)
                .and_modify(|existing| *existing = existing.mul(m))
                .or_insert(*m);
        }
        Self { coeff: self.coeff * other.coeff, factors }
    }

    fn is_zero(&self, tol: f64) -> bool {
        self.coeff.abs() <= tol || self.factors.values().any(|m| m.is_zero(tol))
    }
}

/// Distributes the expression into monomials.
fn expand(expr: &Expr) -> Vec<Monomial> {
    match expr {
        Expr::Scalar(z) => vec![Monomial::scalar(*z)],
        Expr::Primitive(p) => {
            let mut factors = BTreeMap::new();
            factors.insert(p.site, p.kind.matrix());
            vec![Monomial { coeff: Complex64::ONE, factors }]
        }
        Expr::Sum(es) => es.iter().flat_map(expand).collect(),
        Expr::Product(es) => {
            let mut acc = vec![Monomial::scalar(Complex64::ONE)];
            for e in es {
                // A·B: for our left-to-right fold the accumulated product
                // is applied first conceptually as written; within a site
                // the matrix product must follow operator order:
                // Product([A, B]) means A*B, i.e. apply B to the ket first,
                // so the combined matrix is A_site · B_site. The fold
                // computes acc.mul(next) with acc on the left. Since acc
                // holds the *earlier* factors of the product (A), this is
                // A_site · B_site as required.
                let rhs = expand(e);
                let mut next = Vec::with_capacity(acc.len() * rhs.len());
                for a in &acc {
                    for b in &rhs {
                        next.push(a.mul(b));
                    }
                }
                acc = next;
            }
            acc
        }
    }
}

const TOL: f64 = 1e-14;

impl Expr {
    /// Compiles the expression into an [`OperatorKernel`] for an
    /// `n_sites`-site system.
    ///
    /// The scalar (identity) part of the expression becomes the Walsh
    /// monomial with empty `zmask`, i.e. a constant energy shift.
    pub fn to_kernel(&self, n_sites: u32) -> Result<OperatorKernel, CompileError> {
        if n_sites > 64 {
            return Err(CompileError::TooManySites(n_sites));
        }
        let monomials = expand(self);
        // Merge channels across monomials.
        let mut channels: HashMap<(u64, u64, u64), Complex64> = HashMap::new();
        let mut walsh: HashMap<u64, Complex64> = HashMap::new();
        for mono in &monomials {
            if mono.is_zero(TOL) {
                continue;
            }
            let sites: Vec<u16> = mono.factors.keys().copied().collect();
            if sites.len() > 16 {
                return Err(CompileError::MonomialTooWide(sites.len()));
            }
            for &s in &sites {
                if s as u32 >= n_sites {
                    return Err(CompileError::SiteOutOfRange { site: s, n_sites });
                }
            }
            let mats: Vec<&Matrix2> = mono.factors.values().collect();
            // DFS over matrix-unit assignments (a_i, b_i) per site.
            expand_channels(
                mono.coeff,
                &sites,
                &mats,
                0,
                0,
                0,
                &mut |sites_mask, in_pat, out_pat, c| {
                    if in_pat == out_pat {
                        // Diagonal channel: convert to Walsh monomials.
                        // Π_i P_{b_i} = Σ_{T ⊆ sites} (1/2^k) Π_{i∈T} s_i z_i
                        // with s_i = +1 if b_i = 1 else -1.
                        let k = sites_mask.count_ones();
                        let norm = 1.0 / (1u64 << k) as f64;
                        // Iterate subsets of sites_mask.
                        let mut t = sites_mask;
                        loop {
                            // sign = Π_{i∈T} s_i = (-1)^{# of zero-bits of
                            // in_pat within T}.
                            let negs = (t & !in_pat).count_ones();
                            let sign = if negs & 1 == 0 { 1.0 } else { -1.0 };
                            *walsh.entry(t).or_insert(Complex64::ZERO) += c.scale(norm * sign);
                            if t == 0 {
                                break;
                            }
                            t = (t - 1) & sites_mask;
                        }
                    } else {
                        *channels
                            .entry((sites_mask, in_pat, out_pat))
                            .or_insert(Complex64::ZERO) += c;
                    }
                },
            );
        }
        let diag: Vec<ZMonomial> = walsh
            .into_iter()
            .filter(|(_, c)| c.abs() > TOL)
            .map(|(zmask, coeff)| ZMonomial { coeff, zmask })
            .collect();
        let offdiag: Vec<Channel> = channels
            .into_iter()
            .filter(|(_, c)| c.abs() > TOL)
            .map(|((sites, in_pat, out_pat), coeff)| Channel { coeff, sites, in_pat, out_pat })
            .collect();
        Ok(OperatorKernel::from_parts(n_sites, diag, offdiag))
    }
}

/// Recursively expands `coeff · Π_i M_i` over matrix units, calling `emit`
/// with `(sites_mask, in_pattern, out_pattern, coefficient)` for every
/// non-zero assignment.
fn expand_channels(
    coeff: Complex64,
    sites: &[u16],
    mats: &[&Matrix2],
    sites_mask: u64,
    in_pat: u64,
    out_pat: u64,
    emit: &mut impl FnMut(u64, u64, u64, Complex64),
) {
    if coeff.abs() <= TOL {
        return;
    }
    match sites.split_first() {
        None => emit(sites_mask, in_pat, out_pat, coeff),
        Some((&site, rest_sites)) => {
            let (m, rest_mats) = mats.split_first().unwrap();
            let bit = 1u64 << site;
            for a in 0..2u64 {
                for b in 0..2u64 {
                    let entry = m.m[a as usize][b as usize];
                    if entry.abs() <= TOL {
                        continue;
                    }
                    expand_channels(
                        coeff * entry,
                        rest_sites,
                        rest_mats,
                        sites_mask | bit,
                        in_pat | (b * bit),
                        out_pat | (a * bit),
                        emit,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{sigma_x, sminus, splus, sx, sy, sz};

    fn dense(e: &Expr, n: u32) -> Vec<Vec<Complex64>> {
        e.to_kernel(n).unwrap().to_dense()
    }

    fn dense_approx_eq(a: &[Vec<Complex64>], b: &[Vec<Complex64>], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(ra, rb)| ra.iter().zip(rb).all(|(x, y)| x.approx_eq(*y, tol)))
    }

    #[test]
    fn same_site_products_reduce() {
        // S+ S- = P_up = 1/2 + Sz on one site.
        let lhs = dense(&(splus(0) * sminus(0)), 1);
        let rhs = dense(&(Expr::scalar(0.5) + sz(0)), 1);
        assert!(dense_approx_eq(&lhs, &rhs, 1e-14));
        // (S+)^2 = 0.
        let zero = dense(&(splus(0) * splus(0)), 1);
        assert!(zero.iter().flatten().all(|z| z.abs() < 1e-14));
    }

    #[test]
    fn linearity_of_compilation() {
        let a = splus(0) * sminus(1);
        let b = sz(0) * sz(2);
        let c = sx(1) * sx(2);
        let lhs = dense(&((a.clone() + b.clone()) * c.clone()), 3);
        // (a+b)c = ac + bc
        let ac = dense(&(a * c.clone()), 3);
        let bc = dense(&(b * c), 3);
        let sum: Vec<Vec<Complex64>> = ac
            .iter()
            .zip(&bc)
            .map(|(ra, rb)| ra.iter().zip(rb).map(|(x, y)| *x + *y).collect())
            .collect();
        assert!(dense_approx_eq(&lhs, &sum, 1e-13));
    }

    #[test]
    fn sx_equals_ladder_combination() {
        let lhs = dense(&sx(0), 1);
        let rhs = dense(&(Expr::scalar(0.5) * (splus(0) + sminus(0))), 1);
        assert!(dense_approx_eq(&lhs, &rhs, 1e-14));
    }

    #[test]
    fn sy_squared_is_quarter_identity() {
        let lhs = dense(&(sy(0) * sy(0)), 1);
        let rhs = dense(&Expr::scalar(0.25), 1);
        assert!(dense_approx_eq(&lhs, &rhs, 1e-14));
    }

    #[test]
    fn scalar_becomes_energy_shift() {
        let k = (Expr::scalar(3.5) + sz(0)).to_kernel(2).unwrap();
        assert!(k.diagonal(0b00).approx_eq(Complex64::from(3.5 - 0.5), 1e-14));
        assert!(k.diagonal(0b01).approx_eq(Complex64::from(3.5 + 0.5), 1e-14));
    }

    #[test]
    fn walsh_merging_cancels() {
        // Sz_0 Sz_1 has a single Walsh monomial with zmask {0,1} and
        // coefficient 1/4.
        let k = (sz(0) * sz(1)).to_kernel(2).unwrap();
        assert_eq!(k.diagonal_monomials().len(), 1);
        let m = k.diagonal_monomials()[0];
        assert_eq!(m.zmask, 0b11);
        assert!(m.coeff.approx_eq(Complex64::from(0.25), 1e-14));
        assert_eq!(k.channels().len(), 0);
    }

    #[test]
    fn site_out_of_range_rejected() {
        let err = sz(5).to_kernel(3).unwrap_err();
        assert_eq!(err, CompileError::SiteOutOfRange { site: 5, n_sites: 3 });
    }

    #[test]
    fn pauli_string_channels() {
        // σx_0 σx_1 = (S+_0 + S-_0)(S+_1 + S-_1): four channels, each ±1
        // flipping both bits.
        let k = (sigma_x(0) * sigma_x(1)).to_kernel(2).unwrap();
        assert_eq!(k.channels().len(), 4);
        for c in k.channels() {
            assert_eq!(c.sites, 0b11);
            assert_eq!(c.flip_mask(), 0b11);
            assert!(c.coeff.approx_eq(Complex64::ONE, 1e-14));
        }
        assert!(!k.conserves_hamming_weight());
    }

    #[test]
    fn heisenberg_dot_product_forms_agree() {
        // S_0 · S_1 via ladder form and via Sx Sx + Sy Sy + Sz Sz.
        let ladder = crate::builders::heisenberg_bond(0, 1);
        let cartesian = sx(0) * sx(1) + sy(0) * sy(1) + sz(0) * sz(1);
        let a = dense(&ladder, 2);
        let b = dense(&cartesian, 2);
        assert!(dense_approx_eq(&a, &b, 1e-14));
    }
}
