//! Complex d×d matrices (d ≤ 4): the single-site building blocks of
//! operators on an arbitrary local Hilbert space.
//!
//! [`SiteMatrix`] generalizes [`crate::Matrix2`] to local dimensions 2..=4
//! (spin-1/2 through spin-3/2, fermionic orbitals). Rows/columns are
//! indexed by the site *code* — the packed field value of
//! [`ls_kernels::SiteEncoding`] — so `m[a][b]` is `⟨a|M|b⟩` and code 0 is
//! the lowest-`Sz` (or empty-orbital) state.

use crate::matrix2::Matrix2;
use ls_kernels::Complex64;

/// A d×d complex matrix stored in a fixed 4×4 block, row-major:
/// `m[row][col]` with `row, col < d`.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct SiteMatrix {
    pub d: usize,
    pub m: [[Complex64; 4]; 4],
}

const C0: Complex64 = Complex64::ZERO;

impl SiteMatrix {
    pub fn zero(d: usize) -> Self {
        assert!((2..=4).contains(&d));
        Self { d, m: [[C0; 4]; 4] }
    }

    pub fn identity(d: usize) -> Self {
        let mut out = Self::zero(d);
        for i in 0..d {
            out.m[i][i] = Complex64::ONE;
        }
        out
    }

    /// Matrix unit `|a⟩⟨b|`.
    pub fn unit(d: usize, a: usize, b: usize) -> Self {
        assert!(a < d && b < d);
        let mut out = Self::zero(d);
        out.m[a][b] = Complex64::ONE;
        out
    }

    pub fn diagonal(d: usize, entries: &[f64]) -> Self {
        assert_eq!(entries.len(), d);
        let mut out = Self::zero(d);
        for (i, &v) in entries.iter().enumerate() {
            out.m[i][i] = Complex64::new(v, 0.0);
        }
        out
    }

    pub fn from_matrix2(m: Matrix2) -> Self {
        let mut out = Self::zero(2);
        for r in 0..2 {
            for c in 0..2 {
                out.m[r][c] = m.m[r][c];
            }
        }
        out
    }

    /// Spin quantum number of a d-dimensional site: `s = (d-1)/2`.
    fn spin_of(d: usize) -> f64 {
        (d as f64 - 1.0) / 2.0
    }

    /// `S+` for spin `s = (d-1)/2`: `⟨m+1|S+|m⟩ = √(s(s+1) − m(m+1))`
    /// with `m = code − s`.
    pub fn splus(d: usize) -> Self {
        let s = Self::spin_of(d);
        let mut out = Self::zero(d);
        for code in 0..d - 1 {
            let m = code as f64 - s;
            out.m[code + 1][code] = Complex64::new((s * (s + 1.0) - m * (m + 1.0)).sqrt(), 0.0);
        }
        out
    }

    /// `S- = (S+)†`.
    pub fn sminus(d: usize) -> Self {
        Self::splus(d).adjoint()
    }

    /// `Sz = diag(code − s)`.
    pub fn sz(d: usize) -> Self {
        let s = Self::spin_of(d);
        let mut out = Self::zero(d);
        for code in 0..d {
            out.m[code][code] = Complex64::new(code as f64 - s, 0.0);
        }
        out
    }

    /// `Sx = (S+ + S-)/2`.
    pub fn sx(d: usize) -> Self {
        Self::splus(d).add(&Self::sminus(d)).scale(Complex64::new(0.5, 0.0))
    }

    /// `Sy = (S+ − S-)/(2i)`.
    pub fn sy(d: usize) -> Self {
        Self::splus(d)
            .add(&Self::sminus(d).scale(-Complex64::ONE))
            .scale(Complex64::new(0.0, -0.5))
    }

    /// Fermionic creation operator on one orbital: `a† = |1⟩⟨0|` (the
    /// Jordan-Wigner string lives in the monomial, not the matrix).
    pub fn fermion_create() -> Self {
        Self::unit(2, 1, 0)
    }

    /// Fermionic annihilation operator on one orbital: `a = |0⟩⟨1|`.
    pub fn fermion_annihilate() -> Self {
        Self::unit(2, 0, 1)
    }

    /// Occupation number `n = |1⟩⟨1|`.
    pub fn fermion_number() -> Self {
        Self::unit(2, 1, 1)
    }

    /// Fermion parity `Z = (−1)^n = diag(1, −1)`: the per-site factor of a
    /// Jordan-Wigner string.
    pub fn fermion_parity() -> Self {
        Self::diagonal(2, &[1.0, -1.0])
    }

    /// Matrix product `self · other`.
    pub fn mul(&self, other: &Self) -> Self {
        debug_assert_eq!(self.d, other.d);
        let d = self.d;
        let mut out = Self::zero(d);
        for r in 0..d {
            for c in 0..d {
                let mut acc = C0;
                for k in 0..d {
                    acc += self.m[r][k] * other.m[k][c];
                }
                out.m[r][c] = acc;
            }
        }
        out
    }

    pub fn add(&self, other: &Self) -> Self {
        debug_assert_eq!(self.d, other.d);
        let mut out = Self::zero(self.d);
        for r in 0..self.d {
            for c in 0..self.d {
                out.m[r][c] = self.m[r][c] + other.m[r][c];
            }
        }
        out
    }

    pub fn scale(&self, z: Complex64) -> Self {
        let mut out = *self;
        for r in 0..self.d {
            for c in 0..self.d {
                out.m[r][c] *= z;
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Self {
        let mut out = Self::zero(self.d);
        for r in 0..self.d {
            for c in 0..self.d {
                out.m[r][c] = self.m[c][r].conj();
            }
        }
        out
    }

    pub fn is_zero(&self, tol: f64) -> bool {
        self.m.iter().flatten().all(|z| z.abs() <= tol)
    }

    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        if self.d != other.d {
            return false;
        }
        for r in 0..self.d {
            for c in 0..self.d {
                if !self.m[r][c].approx_eq(other.m[r][c], tol) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commutator(a: &SiteMatrix, b: &SiteMatrix) -> SiteMatrix {
        a.mul(b).add(&b.mul(a).scale(-Complex64::ONE))
    }

    #[test]
    fn spin_half_matches_matrix2() {
        assert!(
            SiteMatrix::splus(2).approx_eq(&SiteMatrix::from_matrix2(Matrix2::SPLUS), 1e-15)
        );
        assert!(
            SiteMatrix::sminus(2).approx_eq(&SiteMatrix::from_matrix2(Matrix2::SMINUS), 1e-15)
        );
        assert!(SiteMatrix::sz(2).approx_eq(&SiteMatrix::from_matrix2(Matrix2::SZ), 1e-15));
        assert!(SiteMatrix::sx(2).approx_eq(&SiteMatrix::from_matrix2(Matrix2::SX), 1e-15));
        assert!(SiteMatrix::sy(2).approx_eq(&SiteMatrix::from_matrix2(Matrix2::SY), 1e-15));
    }

    #[test]
    fn spin_algebra_all_dims() {
        for d in 2..=4usize {
            let (sp, sm, sz) = (SiteMatrix::splus(d), SiteMatrix::sminus(d), SiteMatrix::sz(d));
            // [Sz, S±] = ±S±.
            assert!(commutator(&sz, &sp).approx_eq(&sp, 1e-13), "d = {d}");
            assert!(commutator(&sz, &sm).approx_eq(&sm.scale(-Complex64::ONE), 1e-13));
            // [S+, S-] = 2 Sz.
            assert!(commutator(&sp, &sm).approx_eq(&sz.scale(Complex64::new(2.0, 0.0)), 1e-13));
            // Casimir S² = s(s+1) I.
            let s = (d as f64 - 1.0) / 2.0;
            let casimir = SiteMatrix::sx(d)
                .mul(&SiteMatrix::sx(d))
                .add(&SiteMatrix::sy(d).mul(&SiteMatrix::sy(d)))
                .add(&sz.mul(&sz));
            let expect = SiteMatrix::identity(d).scale(Complex64::new(s * (s + 1.0), 0.0));
            assert!(casimir.approx_eq(&expect, 1e-13), "d = {d}");
        }
    }

    #[test]
    fn fermion_site_algebra() {
        let (c, a) = (SiteMatrix::fermion_create(), SiteMatrix::fermion_annihilate());
        // a† a = n, a a† = 1 − n (same-site anticommutator = 1).
        assert!(c.mul(&a).approx_eq(&SiteMatrix::fermion_number(), 1e-15));
        let hole =
            SiteMatrix::identity(2).add(&SiteMatrix::fermion_number().scale(-Complex64::ONE));
        assert!(a.mul(&c).approx_eq(&hole, 1e-15));
        // a† Z = a†, a Z = −a, Z² = I.
        let z = SiteMatrix::fermion_parity();
        assert!(c.mul(&z).approx_eq(&c, 1e-15));
        assert!(a.mul(&z).approx_eq(&a.scale(-Complex64::ONE), 1e-15));
        assert!(z.mul(&z).approx_eq(&SiteMatrix::identity(2), 1e-15));
    }
}
