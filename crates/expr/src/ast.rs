//! The expression AST for symbolic spin operators.
//!
//! Expressions are built with ordinary Rust arithmetic (`+`, `-`, `*`) from
//! on-site primitives, or parsed from strings (see [`crate::parse`]).
//! They are compiled to an executable [`crate::OperatorKernel`] via
//! [`Expr::to_kernel`].

use crate::matrix2::Matrix2;
use ls_kernels::Complex64;
use std::ops::{Add, Mul, Neg, Sub};

/// Kinds of single-site operators. Which kinds an expression may use
/// depends on the local Hilbert space it is compiled against (see
/// [`crate::LocalHilbert::primitive_matrix`]): the spin kinds exist on
/// any spin-S site, the Pauli kinds only on spin-1/2, and the fermionic
/// kinds (`c†`, `c`, `n`) only on fermionic orbitals.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PrimitiveKind {
    /// Raising operator `S+`.
    SPlus,
    /// Lowering operator `S-`.
    SMinus,
    /// `Sz` with eigenvalues `−s..=+s`.
    Sz,
    /// `Sx = (S+ + S-)/2`.
    Sx,
    /// `Sy = (S+ - S-)/(2i)`.
    Sy,
    /// Pauli `σx` (= 2Sx).
    SigmaX,
    /// Pauli `σy` (= 2Sy).
    SigmaY,
    /// Pauli `σz` (= 2Sz).
    SigmaZ,
    /// Fermionic creation `c†` (Jordan-Wigner string over lower sites).
    Create,
    /// Fermionic annihilation `c`.
    Annihilate,
    /// Occupation number `n = c† c` (string-free).
    Number,
}

impl PrimitiveKind {
    /// The single-site 2×2 matrix, ignoring statistics (the Jordan-Wigner
    /// string of `c†`/`c` is handled during normal ordering, where the
    /// on-site parts are simply the spin ladder matrices).
    pub fn matrix(self) -> Matrix2 {
        match self {
            Self::SPlus | Self::Create => Matrix2::SPLUS,
            Self::SMinus | Self::Annihilate => Matrix2::SMINUS,
            Self::Sz => Matrix2::SZ,
            Self::Sx => Matrix2::SX,
            Self::Sy => Matrix2::SY,
            Self::SigmaX => Matrix2::SIGMA_X,
            Self::SigmaY => Matrix2::SIGMA_Y,
            Self::SigmaZ => Matrix2::SIGMA_Z,
            Self::Number => Matrix2::P_UP,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            Self::SPlus => "S+",
            Self::SMinus => "S-",
            Self::Sz => "Sz",
            Self::Sx => "Sx",
            Self::Sy => "Sy",
            Self::SigmaX => "σx",
            Self::SigmaY => "σy",
            Self::SigmaZ => "σz",
            Self::Create => "c†",
            Self::Annihilate => "c",
            Self::Number => "n",
        }
    }
}

/// A single-site operator attached to a lattice site.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Primitive {
    pub kind: PrimitiveKind,
    pub site: u16,
}

/// A symbolic operator expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A complex scalar (also the multiplicative coefficient unit).
    Scalar(Complex64),
    /// A single-site primitive.
    Primitive(Primitive),
    /// Sum of sub-expressions.
    Sum(Vec<Expr>),
    /// Product of sub-expressions (operator composition; order matters).
    Product(Vec<Expr>),
}

impl Expr {
    pub fn scalar(re: f64) -> Self {
        Expr::Scalar(Complex64::new(re, 0.0))
    }

    pub fn scalar_c(z: Complex64) -> Self {
        Expr::Scalar(z)
    }

    pub fn zero() -> Self {
        Expr::Scalar(Complex64::ZERO)
    }

    pub fn one() -> Self {
        Expr::Scalar(Complex64::ONE)
    }

    /// The largest site index + 1 mentioned in the expression, or 0.
    pub fn min_sites(&self) -> usize {
        match self {
            Expr::Scalar(_) => 0,
            Expr::Primitive(p) => p.site as usize + 1,
            Expr::Sum(es) | Expr::Product(es) => {
                es.iter().map(|e| e.min_sites()).max().unwrap_or(0)
            }
        }
    }

    /// Formal adjoint of the expression (reverses products, conjugates
    /// scalars, swaps `S+`/`S-`).
    pub fn adjoint(&self) -> Self {
        match self {
            Expr::Scalar(z) => Expr::Scalar(z.conj()),
            Expr::Primitive(p) => {
                let kind = match p.kind {
                    PrimitiveKind::SPlus => PrimitiveKind::SMinus,
                    PrimitiveKind::SMinus => PrimitiveKind::SPlus,
                    PrimitiveKind::Create => PrimitiveKind::Annihilate,
                    PrimitiveKind::Annihilate => PrimitiveKind::Create,
                    k => k, // Sx, Sy, Sz, Paulis, n are Hermitian
                };
                Expr::Primitive(Primitive { kind, site: p.site })
            }
            Expr::Sum(es) => Expr::Sum(es.iter().map(|e| e.adjoint()).collect()),
            Expr::Product(es) => Expr::Product(es.iter().rev().map(|e| e.adjoint()).collect()),
        }
    }
}

/// `S+` on `site`.
pub fn splus(site: u16) -> Expr {
    Expr::Primitive(Primitive { kind: PrimitiveKind::SPlus, site })
}

/// `S-` on `site`.
pub fn sminus(site: u16) -> Expr {
    Expr::Primitive(Primitive { kind: PrimitiveKind::SMinus, site })
}

/// `Sz` on `site`.
pub fn sz(site: u16) -> Expr {
    Expr::Primitive(Primitive { kind: PrimitiveKind::Sz, site })
}

/// `Sx` on `site`.
pub fn sx(site: u16) -> Expr {
    Expr::Primitive(Primitive { kind: PrimitiveKind::Sx, site })
}

/// `Sy` on `site`.
pub fn sy(site: u16) -> Expr {
    Expr::Primitive(Primitive { kind: PrimitiveKind::Sy, site })
}

/// Pauli `σx` on `site`.
pub fn sigma_x(site: u16) -> Expr {
    Expr::Primitive(Primitive { kind: PrimitiveKind::SigmaX, site })
}

/// Pauli `σy` on `site`.
pub fn sigma_y(site: u16) -> Expr {
    Expr::Primitive(Primitive { kind: PrimitiveKind::SigmaY, site })
}

/// Pauli `σz` on `site`.
pub fn sigma_z(site: u16) -> Expr {
    Expr::Primitive(Primitive { kind: PrimitiveKind::SigmaZ, site })
}

/// Fermionic creation operator `c†` on orbital `site`.
pub fn create(site: u16) -> Expr {
    Expr::Primitive(Primitive { kind: PrimitiveKind::Create, site })
}

/// Fermionic annihilation operator `c` on orbital `site`.
pub fn annihilate(site: u16) -> Expr {
    Expr::Primitive(Primitive { kind: PrimitiveKind::Annihilate, site })
}

/// Occupation number `n = c† c` on orbital `site`.
pub fn number(site: u16) -> Expr {
    Expr::Primitive(Primitive { kind: PrimitiveKind::Number, site })
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        match (self, rhs) {
            (Expr::Sum(mut a), Expr::Sum(b)) => {
                a.extend(b);
                Expr::Sum(a)
            }
            (Expr::Sum(mut a), b) => {
                a.push(b);
                Expr::Sum(a)
            }
            (a, Expr::Sum(mut b)) => {
                b.insert(0, a);
                Expr::Sum(b)
            }
            (a, b) => Expr::Sum(vec![a, b]),
        }
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        self + (-rhs)
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Scalar(-Complex64::ONE) * self
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        match (self, rhs) {
            (Expr::Product(mut a), Expr::Product(b)) => {
                a.extend(b);
                Expr::Product(a)
            }
            (Expr::Product(mut a), b) => {
                a.push(b);
                Expr::Product(a)
            }
            (a, Expr::Product(mut b)) => {
                b.insert(0, a);
                Expr::Product(b)
            }
            (a, b) => Expr::Product(vec![a, b]),
        }
    }
}

impl Mul<Expr> for f64 {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::scalar(self) * rhs
    }
}

impl Mul<f64> for Expr {
    type Output = Expr;
    fn mul(self, rhs: f64) -> Expr {
        Expr::scalar(rhs) * self
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Scalar(z) => {
                if z.im == 0.0 {
                    write!(f, "{}", z.re)
                } else {
                    write!(f, "({z})")
                }
            }
            Expr::Primitive(p) => write!(f, "{}_{}", p.kind.symbol(), p.site),
            Expr::Sum(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Product(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_operators() {
        let e = 2.0 * sz(0) * sz(1) + splus(0) * sminus(1);
        assert_eq!(e.min_sites(), 2);
        match &e {
            Expr::Sum(terms) => assert_eq!(terms.len(), 2),
            other => panic!("expected sum, got {other:?}"),
        }
    }

    #[test]
    fn adjoint_swaps_ladder_operators() {
        let e = splus(0) * sminus(1);
        let a = e.adjoint();
        // (S+_0 S-_1)† = S+_1 S-_0.
        assert_eq!(a, Expr::Product(vec![splus(1), sminus(0)]));
    }

    #[test]
    fn adjoint_is_involution() {
        let e = Expr::scalar_c(Complex64::new(0.0, 2.0)) * sy(3) * splus(1) + 0.5 * sz(0);
        assert_eq!(e.adjoint().adjoint(), e);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let e = 2.0 * sz(0) * sz(1) + splus(0) * sminus(1);
        let s = format!("{e}");
        let parsed = crate::parse::parse_expr(&s).unwrap();
        // Compare compiled kernels (ASTs may differ structurally).
        let k1 = e.to_kernel(2).unwrap();
        let k2 = parsed.to_kernel(2).unwrap();
        assert!(k1.approx_eq(&k2, 1e-12));
    }
}
