//! Property tests of the expression language: pretty-printing any random
//! expression and re-parsing it must reproduce the same operator.

use ls_expr::ast::{sminus, splus, sx, sy, sz, Expr};
use ls_expr::parse_expr;
use proptest::prelude::*;

const N_SITES: u32 = 4;

fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0u16..N_SITES as u16).prop_map(splus),
        (0u16..N_SITES as u16).prop_map(sminus),
        (0u16..N_SITES as u16).prop_map(sz),
        (0u16..N_SITES as u16).prop_map(sx),
        (0u16..N_SITES as u16).prop_map(sy),
        (-2.0f64..2.0).prop_map(Expr::scalar),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Sum),
            proptest::collection::vec(inner, 2..3).prop_map(Expr::Product),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_roundtrip(e in arb_expr()) {
        let text = format!("{e}");
        let parsed = parse_expr(&text)
            .unwrap_or_else(|err| panic!("failed to parse {text:?}: {err}"));
        let k1 = e.to_kernel(N_SITES).unwrap();
        let k2 = parsed.to_kernel(N_SITES).unwrap();
        prop_assert!(k1.approx_eq(&k2, 1e-9), "expr: {text}");
    }

    #[test]
    fn adjoint_matches_kernel_adjoint(e in arb_expr()) {
        let k = e.to_kernel(N_SITES).unwrap();
        let ka = e.adjoint().to_kernel(N_SITES).unwrap();
        prop_assert!(k.adjoint().approx_eq(&ka, 1e-9));
    }

    #[test]
    fn double_adjoint_is_identity(e in arb_expr()) {
        let k = e.to_kernel(N_SITES).unwrap();
        let kaa = e.adjoint().adjoint().to_kernel(N_SITES).unwrap();
        prop_assert!(k.approx_eq(&kaa, 1e-9));
    }

    #[test]
    fn expr_plus_adjoint_is_hermitian(e in arb_expr()) {
        let sym = e.clone() + e.adjoint();
        let k = sym.to_kernel(N_SITES).unwrap();
        prop_assert!(k.is_hermitian(1e-9));
    }

    #[test]
    fn scaling_by_two_equals_self_sum(e in arb_expr()) {
        let k = e.to_kernel(N_SITES).unwrap();
        let doubled = (e.clone() + e).to_kernel(N_SITES).unwrap();
        prop_assert!(k.scaled(2.0).approx_eq(&doubled, 1e-9));
    }
}
