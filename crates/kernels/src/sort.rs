//! Stable counting/radix sorts used to partition matrix-row output by
//! destination locale.
//!
//! The batched matrix-vector product (paper Sec. 5.3, "Computing multiple
//! rows at once") generates `(basis state, coefficient)` pairs whose
//! destination locales are scattered; before issuing remote puts, the pairs
//! are grouped per destination with a stable, linear-time counting sort.
//! Stability matters: it preserves the generation order within each
//! destination, which downstream code relies on for reproducibility.

/// Computes the stable counting-sort permutation of `keys` into
/// `num_buckets` buckets.
///
/// After the call, `perm` holds, for each input position `i`, the output
/// position `perm[i]`, and `offsets` holds the exclusive prefix sums of the
/// bucket sizes (length `num_buckets + 1`), i.e. bucket `b` occupies output
/// range `offsets[b] .. offsets[b + 1]`.
///
/// Both output vectors are cleared and refilled — callers reuse them across
/// invocations to stay allocation-free in steady state.
pub fn counting_sort_perm(
    keys: &[u16],
    num_buckets: usize,
    perm: &mut Vec<u32>,
    offsets: &mut Vec<u32>,
) {
    assert!(keys.len() <= u32::MAX as usize);
    offsets.clear();
    offsets.resize(num_buckets + 1, 0);
    for &k in keys {
        debug_assert!((k as usize) < num_buckets, "key out of range");
        offsets[k as usize + 1] += 1;
    }
    for b in 0..num_buckets {
        offsets[b + 1] += offsets[b];
    }
    perm.clear();
    perm.resize(keys.len(), 0);
    let mut cursor: Vec<u32> = offsets[..num_buckets].to_vec();
    for (i, &k) in keys.iter().enumerate() {
        let c = &mut cursor[k as usize];
        perm[i] = *c;
        *c += 1;
    }
}

/// Scatters `src` into `dst` according to a permutation produced by
/// [`counting_sort_perm`]: `dst[perm[i]] = src[i]`.
///
/// `dst` is overwritten and resized to `src.len()`.
pub fn apply_perm<T: Copy + Default>(perm: &[u32], src: &[T], dst: &mut Vec<T>) {
    assert_eq!(perm.len(), src.len());
    dst.clear();
    dst.resize(src.len(), T::default());
    for (i, &p) in perm.iter().enumerate() {
        dst[p as usize] = src[i];
    }
}

/// Convenience: stable-partition `(keys, a, b)` triples by key, in one call.
/// Returns bucket offsets. Scratch vectors are provided by the caller so
/// repeated calls do not allocate.
pub struct PartitionScratch {
    perm: Vec<u32>,
    pub offsets: Vec<u32>,
}

impl PartitionScratch {
    pub fn new() -> Self {
        Self { perm: Vec::new(), offsets: Vec::new() }
    }

    /// Partitions `states` and `coeffs` (parallel arrays) by `keys` into
    /// `num_buckets` buckets, writing grouped output into `states_out` /
    /// `coeffs_out`. Returns the bucket-offsets slice.
    pub fn partition<S: Copy + Default>(
        &mut self,
        keys: &[u16],
        num_buckets: usize,
        states: &[u64],
        coeffs: &[S],
        states_out: &mut Vec<u64>,
        coeffs_out: &mut Vec<S>,
    ) -> &[u32] {
        debug_assert_eq!(keys.len(), states.len());
        debug_assert_eq!(keys.len(), coeffs.len());
        counting_sort_perm(keys, num_buckets, &mut self.perm, &mut self.offsets);
        apply_perm(&self.perm, states, states_out);
        apply_perm(&self.perm, coeffs, coeffs_out);
        &self.offsets
    }
}

impl Default for PartitionScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Radix partitioner for matvec emissions: groups generated
/// `(dest_index, amplitude, src_index)` triples by *destination block*
/// (`dest_index >> block_bits`), so each block of the output vector can be
/// accumulated by exactly one thread in a sequential sweep — no atomics.
///
/// The partition is stable (counting sort), which preserves the
/// generation order inside every block; the batched push matvec relies on
/// that for bit-reproducible accumulation. All buffers are caller-owned
/// and reused across calls.
#[derive(Clone, Debug, Default)]
pub struct BlockPartitioner {
    keys: Vec<u16>,
    perm: Vec<u32>,
    offsets: Vec<u32>,
}

impl BlockPartitioner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Partitions the parallel arrays `(dest, amp, src)` into
    /// `num_blocks` destination blocks of `1 << block_bits` indices each,
    /// writing grouped copies into the `*_out` vectors. Returns the block
    /// offsets: block `b` occupies output range `offsets[b] ..
    /// offsets[b + 1]`.
    #[allow(clippy::too_many_arguments)] // three parallel in/out array pairs
    pub fn partition<S: Copy + Default>(
        &mut self,
        block_bits: u32,
        num_blocks: usize,
        dest: &[u32],
        amp: &[S],
        src: &[u32],
        dest_out: &mut Vec<u32>,
        amp_out: &mut Vec<S>,
        src_out: &mut Vec<u32>,
    ) -> &[u32] {
        debug_assert_eq!(dest.len(), amp.len());
        debug_assert_eq!(dest.len(), src.len());
        assert!(num_blocks <= u16::MAX as usize + 1, "too many destination blocks");
        self.keys.clear();
        self.keys.extend(dest.iter().map(|&d| {
            debug_assert!(
                ((d >> block_bits) as usize) < num_blocks,
                "destination index {d} exceeds the block range"
            );
            (d >> block_bits) as u16
        }));
        counting_sort_perm(&self.keys, num_blocks, &mut self.perm, &mut self.offsets);
        apply_perm(&self.perm, dest, dest_out);
        apply_perm(&self.perm, amp, amp_out);
        apply_perm(&self.perm, src, src_out);
        &self.offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let mut perm = Vec::new();
        let mut offsets = Vec::new();
        counting_sort_perm(&[], 4, &mut perm, &mut offsets);
        assert!(perm.is_empty());
        assert_eq!(offsets, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn partitions_and_is_stable() {
        let keys: Vec<u16> = vec![2, 0, 1, 2, 0, 1, 1, 2];
        let states: Vec<u64> = (100..108).collect();
        let coeffs: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
        let mut scratch = PartitionScratch::new();
        let mut s_out = Vec::new();
        let mut c_out = Vec::new();
        let offsets = scratch.partition(&keys, 3, &states, &coeffs, &mut s_out, &mut c_out);
        assert_eq!(offsets, &[0, 2, 5, 8]);
        // Bucket 0 keeps original order (stability):
        assert_eq!(&s_out[0..2], &[101, 104]);
        assert_eq!(&s_out[2..5], &[102, 105, 106]);
        assert_eq!(&s_out[5..8], &[100, 103, 107]);
        // Coefficients travel with their states:
        assert_eq!(c_out[0], 0.5);
        assert_eq!(c_out[5], 0.0);
    }

    #[test]
    fn block_partitioner_groups_and_is_stable() {
        // Destination indices over 4 blocks of 8 (block_bits = 3).
        let dest: Vec<u32> = vec![25, 3, 9, 26, 1, 14, 8, 31, 0];
        let amp: Vec<f64> = (0..dest.len()).map(|i| i as f64 + 0.25).collect();
        let src: Vec<u32> = (100..100 + dest.len() as u32).collect();
        let mut p = BlockPartitioner::new();
        let (mut d, mut a, mut s) = (Vec::new(), Vec::new(), Vec::new());
        let offsets = p.partition(3, 4, &dest, &amp, &src, &mut d, &mut a, &mut s).to_vec();
        assert_eq!(offsets, vec![0, 3, 6, 6, 9]);
        // Block 0 (< 8) keeps generation order; payloads travel along.
        assert_eq!(&d[0..3], &[3, 1, 0]);
        assert_eq!(&s[0..3], &[101, 104, 108]);
        assert_eq!(a[0], 1.25);
        // Block 1 (8..16):
        assert_eq!(&d[3..6], &[9, 14, 8]);
        // Block 3 (24..32):
        assert_eq!(&d[6..9], &[25, 26, 31]);
        // Reuse with an empty input.
        let offsets = p.partition(3, 4, &[], &[] as &[f64], &[], &mut d, &mut a, &mut s);
        assert_eq!(offsets, &[0, 0, 0, 0, 0]);
        assert!(d.is_empty() && a.is_empty() && s.is_empty());
    }

    #[test]
    fn matches_std_stable_sort() {
        // Compare against Vec::sort_by_key (which is stable) on pseudo
        // random data.
        let n = 10_000usize;
        let buckets = 37usize;
        let keys: Vec<u16> = (0..n)
            .map(|i| (crate::hash::hash64_01(i as u64) % buckets as u64) as u16)
            .collect();
        let vals: Vec<u64> = (0..n as u64).collect();

        let mut perm = Vec::new();
        let mut offsets = Vec::new();
        counting_sort_perm(&keys, buckets, &mut perm, &mut offsets);
        let mut ours = Vec::new();
        apply_perm(&perm, &vals, &mut ours);

        let mut expect: Vec<(u16, u64)> =
            keys.iter().copied().zip(vals.iter().copied()).collect();
        expect.sort_by_key(|&(k, _)| k);
        let expect: Vec<u64> = expect.into_iter().map(|(_, v)| v).collect();
        assert_eq!(ours, expect);

        // Offsets must match bucket boundaries.
        for b in 0..buckets {
            let lo = offsets[b] as usize;
            let hi = offsets[b + 1] as usize;
            for i in lo..hi {
                assert_eq!(keys[ours[i] as usize] as usize, b);
            }
        }
    }
}
