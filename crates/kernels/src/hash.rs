//! The hash function used for the hashed distribution of basis states.
//!
//! This is a bit-exact port of the paper's `hash64_01` (Sec. 5.1), itself
//! the finalization step of `splitmix64`. Mixing all input bits gives a
//! close-to-uniform assignment of basis states to locales, which is what
//! guarantees load balance of both memory and matrix-row work.

/// The paper's `hash64_01`: the splitmix64 finalizer.
#[inline]
pub fn hash64_01(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The paper's `localeIdxOf`: which locale owns basis state `state` in a
/// cluster of `num_locales` locales.
#[inline]
pub fn locale_idx_of(state: u64, num_locales: usize) -> usize {
    debug_assert!(num_locales > 0);
    (hash64_01(state) % num_locales as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        // The splitmix64 finalizer maps 0 to 0 (every step preserves 0).
        assert_eq!(hash64_01(0), 0);
        // Determinism + difference:
        assert_eq!(hash64_01(42), hash64_01(42));
        assert_ne!(hash64_01(42), hash64_01(43));
    }

    // Re-implementation used as an independent cross-check in tests.
    fn test_ref(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    #[test]
    fn matches_reference_on_many_inputs() {
        for i in 0..10_000u64 {
            let x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            assert_eq!(hash64_01(x), test_ref(x));
        }
    }

    #[test]
    fn locale_assignment_is_balanced() {
        // Hash the weight-8 states of a 16-site system onto 7 locales; each
        // locale should receive close to 1/7 of the states.
        let num_locales = 7;
        let mut counts = vec![0usize; num_locales];
        let mut total = 0usize;
        for s in crate::bits::FixedWeightRange::all(16, 8) {
            counts[locale_idx_of(s, num_locales)] += 1;
            total += 1;
        }
        let expect = total as f64 / num_locales as f64;
        for &c in &counts {
            let rel = (c as f64 - expect).abs() / expect;
            assert!(rel < 0.05, "imbalance {rel} too large: {counts:?}");
        }
    }

    #[test]
    fn single_locale_owns_everything() {
        for s in 0..100u64 {
            assert_eq!(locale_idx_of(s, 1), 0);
        }
    }
}
