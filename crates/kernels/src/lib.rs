//! # ls-kernels
//!
//! Low-level, allocation-free kernels used throughout the
//! `lattice-symmetries-rs` workspace: bit manipulation, hashing, fixed-weight
//! bitstring iteration (Gosper), combinadic ranking, Benes permutation
//! networks, stable counting/radix sorts and accelerated sorted-array
//! searches.
//!
//! In the paper these kernels are the Halide-generated layer; here they are
//! hand-written Rust following the Rust Performance Book idioms: no
//! allocation in hot loops, branch-light inner kernels, `#[inline]` on the
//! tiny leaf functions.

pub mod bits;
pub mod chunk;
pub mod combinadics;
pub mod complexnum;
pub mod encoding;
pub mod hash;
pub mod net;
pub mod search;
pub mod simd;
pub mod sort;

pub use complexnum::{Complex64, Scalar};
pub use encoding::{CodedRange, SiteEncoding};
pub use hash::{hash64_01, locale_idx_of};
pub use net::BenesNetwork;
