//! Centralized chunk-sizing heuristics for the parallel sweeps.
//!
//! Every parallel loop in the workspace (shared-memory matvec strategies,
//! the scatter partitioner, the distributed producer blocks) used to carry
//! its own copy of the `total / parts, at least min` arithmetic. The
//! copies live here now, expressed through one tunable helper
//! ([`chunk_len`]), so a tuning change propagates everywhere at once.
//!
//! **Determinism contract:** [`par_chunk`] depends only on the problem
//! size — *not* on the thread count. The persistent pool claims chunks
//! dynamically (an atomic cursor), so load balancing no longer needs
//! thread-count-aware splitting; fixing the partition shape is what makes
//! the fused per-chunk reduction partials (matvec+dot) bit-identical for
//! any `LS_NUM_THREADS`. Helpers that *are* thread-dependent
//! ([`dest_block_size`], [`rows_per_chunk`]) only bound staging memory and
//! task granularity; they never change floating-point summation order
//! (the scatter merge replays contributions in serial source order
//! regardless of the partition).

/// Fixed over-partition factor for thread-independent parallel sweeps:
/// enough chunks that dynamic claiming balances symmetry-skewed sectors
/// (orbit sizes vary per row) on any realistic core count, few enough
/// that the per-chunk claim (one `fetch_add`) stays noise.
pub const PAR_PARTS: usize = 512;

/// Minimum rows per chunk of a parallel sweep: below this the per-chunk
/// bookkeeping (scratch checkout, cursor claim) is no longer amortized.
pub const MIN_PAR_ROWS: usize = 64;

/// Rows a batched strategy processes per generation block: large enough
/// to amortize the per-block group pass and bulk ranking, small enough
/// that the block's SoA emission arrays stay cache-resident. Shared by
/// the shared-memory batched strategies and the distributed producers.
pub const BATCH_ROWS: usize = 1024;

/// The one tunable helper: splits `total` items into at most `parts`
/// chunks of at least `min_len` items each, returning the chunk length.
#[inline]
pub fn chunk_len(total: usize, parts: usize, min_len: usize) -> usize {
    total.div_ceil(parts.max(1)).max(min_len.max(1))
}

/// Output-chunk length for the shared-memory parallel sweeps.
///
/// Thread-count independent (see the module docs): the partition shape is
/// a function of `total` alone, so per-chunk reduction partials combine
/// into the same tree no matter how many workers execute the sweep.
#[inline]
pub fn par_chunk(total: usize) -> usize {
    chunk_len(total, PAR_PARTS, MIN_PAR_ROWS)
}

/// Destination-block size for the scatter partition: power of two (the
/// partition key is a shift), sized for a few blocks per thread.
#[inline]
pub fn dest_block_size(total: usize, threads: usize) -> usize {
    chunk_len(total, (threads * 4).max(8), 1).next_power_of_two().max(64)
}

/// Source rows per staged chunk for wave-produced scatter emissions: a
/// few chunks per thread, clamped so the triple staging stays bounded
/// regardless of the sector dimension.
#[inline]
pub fn rows_per_chunk(total: usize, threads: usize) -> usize {
    chunk_len(total, (threads * 4).max(1), 1).clamp(256, 1 << 14)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_len_covers_total() {
        for total in [0usize, 1, 63, 64, 65, 1000, 1 << 20] {
            for parts in [1usize, 2, 8, 512] {
                for min_len in [1usize, 64, 256] {
                    let len = chunk_len(total, parts, min_len);
                    assert!(len >= min_len);
                    // Enough chunks of this length to cover the work.
                    assert!(len * parts >= total || len >= min_len);
                    if total > 0 {
                        assert!(total.div_ceil(len) <= parts.max(total));
                    }
                }
            }
        }
    }

    #[test]
    fn par_chunk_is_thread_independent_and_bounded() {
        for total in [1usize, 100, 4096, 1 << 22] {
            let c = par_chunk(total);
            assert!(c >= MIN_PAR_ROWS);
            assert!(total.div_ceil(c) <= PAR_PARTS);
        }
        // Explicitly: no thread-count input exists; same total, same chunk.
        assert_eq!(par_chunk(1 << 20), par_chunk(1 << 20));
    }

    #[test]
    fn dest_block_size_is_power_of_two() {
        for total in [0usize, 1, 1000, 1 << 22] {
            for threads in [1usize, 2, 16, 128] {
                let b = dest_block_size(total, threads);
                assert!(b.is_power_of_two());
                assert!(b >= 64);
            }
        }
        // Matches the historical inline formula.
        assert_eq!(
            dest_block_size(1 << 20, 4),
            ((1usize << 20).div_ceil(16)).next_power_of_two().max(64)
        );
    }

    #[test]
    fn rows_per_chunk_is_clamped() {
        for total in [0usize, 10, 100_000, 1 << 30] {
            for threads in [1usize, 8, 64] {
                let r = rows_per_chunk(total, threads);
                assert!((256..=1 << 14).contains(&r));
            }
        }
    }
}
