//! Packed site-code encodings: how a local Hilbert space maps onto bits.
//!
//! A basis state of an `n`-site system is a `u64` of `n` packed `k`-bit
//! fields; the field at site `i` holds the site's *code* — an index
//! `0..local_dim` into the local basis. Spin-1/2 is the `k = 1` case
//! (code = bit = spin up), spinful fermions are `k = 1` occupation bits
//! per spin-orbital with Jordan-Wigner sign tracking, spin-1 is `k = 2`
//! with codes `0, 1, 2` for `Sz = -1, 0, +1`.
//!
//! [`SiteEncoding`] is the value everything downstream is generic over:
//! enumeration, ranking and the scattering-channel machinery only need
//! the field width, the local dimension (to skip invalid code words) and
//! the statistics flag (to know whether channels carry sign masks).

use crate::bits::{self, low_mask};

/// Describes how one lattice site's local Hilbert space is packed into a
/// basis word.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct SiteEncoding {
    local_dim: u8,
    bits: u8,
    fermionic: bool,
}

/// Iterator over the valid code words of an encoding within `[lo, hi)`,
/// in increasing order, optionally restricted to a fixed code sum (the
/// generalized U(1) charge). The chunked-range form exists for the same
/// reason as [`bits::FixedWeightRange`]: parallel enumeration splits the
/// raw word range and each chunk must reproduce exactly its slice of the
/// global order.
#[derive(Clone, Debug)]
pub struct CodedRange {
    encoding: SiteEncoding,
    n_sites: u32,
    code_sum: Option<u32>,
    next: Option<u64>,
    /// Largest word the range may yield (inclusive — the exclusive end of
    /// a dense 64-bit code space, 2^64, is not representable in a `u64`).
    last: u64,
}

impl SiteEncoding {
    /// One bit per site, both codes valid: the spin-1/2 fast path.
    pub const fn spin_half() -> Self {
        Self { local_dim: 2, bits: 1, fermionic: false }
    }

    /// One occupation bit per spin-orbital with fermionic (Jordan-Wigner)
    /// sign tracking.
    pub const fn fermion() -> Self {
        Self { local_dim: 2, bits: 1, fermionic: true }
    }

    /// A `local_dim`-state bosonic/spin site packed into
    /// `ceil(log2(local_dim))` bits. Supports `local_dim` in `2..=4`
    /// (spin-1/2 through spin-3/2); spin-1 is `SiteEncoding::spin(3)`.
    pub fn spin(local_dim: u32) -> Self {
        assert!(
            (2..=4).contains(&local_dim),
            "local dimension {local_dim} outside the supported range 2..=4"
        );
        let bits = if local_dim == 2 { 1 } else { 2 };
        Self { local_dim: local_dim as u8, bits, fermionic: false }
    }

    pub fn local_dim(self) -> u32 {
        self.local_dim as u32
    }

    /// Field width in bits.
    pub fn bits(self) -> u32 {
        self.bits as u32
    }

    /// Do channels of this encoding carry Jordan-Wigner sign masks?
    pub fn is_fermionic(self) -> bool {
        self.fermionic
    }

    /// Is this exactly the one-bit-per-site spin encoding every
    /// pre-existing spin-1/2 code path assumes?
    pub fn is_spin_half(self) -> bool {
        self == Self::spin_half()
    }

    /// Largest site count that fits a 64-bit word.
    pub fn max_sites(self) -> u32 {
        64 / self.bits as u32
    }

    /// Total code bits of an `n_sites` system — the width of the raw
    /// iteration space `[0, 2^code_bits)`.
    pub fn code_bits(self, n_sites: u32) -> u32 {
        debug_assert!(n_sites <= self.max_sites());
        n_sites * self.bits as u32
    }

    /// Bit position of site `site`'s field.
    #[inline]
    pub fn site_shift(self, site: u32) -> u32 {
        site * self.bits as u32
    }

    /// Mask selecting site `site`'s field.
    #[inline]
    pub fn site_mask(self, site: u32) -> u64 {
        low_mask(self.bits as u32) << self.site_shift(site)
    }

    /// The code stored at `site`.
    #[inline]
    pub fn extract(self, word: u64, site: u32) -> u64 {
        bits::extract_field(word, self.site_shift(site), self.bits as u32)
    }

    /// `word` with `site`'s code replaced by `code`.
    #[inline]
    pub fn deposit(self, word: u64, site: u32, code: u64) -> u64 {
        bits::deposit_field(word, self.site_shift(site), self.bits as u32, code)
    }

    /// Sum of all site codes — the generalized U(1) charge (Hamming
    /// weight for one-bit encodings, `Σ(Sz_i + S)` for spin-S, particle
    /// number for fermions).
    #[inline]
    pub fn code_sum(self, word: u64, n_sites: u32) -> u32 {
        bits::field_sum(word, self.bits as u32, n_sites)
    }

    /// Does every field of `word` hold a code `< local_dim`?
    #[inline]
    pub fn is_valid(self, word: u64, n_sites: u32) -> bool {
        if self.dense() {
            return word <= last_word(self.code_bits(n_sites));
        }
        if word > last_word(self.code_bits(n_sites)) {
            return false;
        }
        // local_dim == 3, bits == 2: a field is invalid iff both its bits
        // are set.
        let hi = word & HI2;
        let lo = word & (HI2 >> 1);
        hi & (lo << 1) == 0
    }

    /// Every `bits`-wide field pattern is a valid code (power-of-two
    /// local dimension): the raw word range needs no skipping, so dense
    /// scans (e.g. the SIMD field-sum filter) beat the odometer.
    #[inline]
    pub fn dense(self) -> bool {
        self.local_dim as u32 == 1 << self.bits
    }

    /// Smallest valid code word `>= word` with all fields `< local_dim`,
    /// or `None` if none exists below `2^code_bits`. Carries past whole
    /// invalid subtrees, so iterating with it costs `O(valid words)`.
    pub fn next_valid(self, word: u64, n_sites: u32) -> Option<u64> {
        let limit = last_word(self.code_bits(n_sites));
        if word > limit {
            return None;
        }
        if self.dense() {
            return Some(word);
        }
        let mut w = word;
        loop {
            // Highest invalid field, if any.
            let mut bad: Option<u32> = None;
            for site in (0..n_sites).rev() {
                if self.extract(w, site) >= self.local_dim as u64 {
                    bad = Some(site);
                    break;
                }
            }
            let Some(site) = bad else { return Some(w) };
            // Bump the field above the invalid one and clear everything
            // below — the smallest word strictly greater than every word
            // sharing this invalid prefix. When the invalid field is the
            // top site of a word-filling encoding (`sites * bits == 64`)
            // the carry position is bit 64: the carry leaves the word, so
            // no valid word `>= w` exists. `1u64 << 64` would be a shift
            // overflow, hence the explicit check.
            let carry_shift = self.site_shift(site + 1);
            if carry_shift >= 64 {
                return None;
            }
            let cleared = w & !low_mask(carry_shift);
            let (next, overflow) = cleared.overflowing_add(1u64 << carry_shift);
            if overflow || next > limit {
                return None;
            }
            w = next;
        }
    }

    /// Decodes `word` into one code per site (diagnostics: error
    /// messages report states as site configurations, not hex).
    pub fn decode(self, word: u64, n_sites: u32) -> Vec<u8> {
        (0..n_sites).map(|s| self.extract(word, s) as u8).collect()
    }

    /// Mask of all code bits strictly below `site`'s field — the
    /// Jordan-Wigner string mask of `c_site` (sign = parity of the
    /// occupied orbitals below the site).
    #[inline]
    pub fn sign_mask_below(self, site: u32) -> u64 {
        low_mask(self.site_shift(site))
    }
}

/// High bit of every 2-bit field.
const HI2: u64 = 0xaaaa_aaaa_aaaa_aaaa;

/// Largest word of a `code_bits`-wide space.
#[inline]
fn last_word(code_bits: u32) -> u64 {
    low_mask(code_bits)
}

impl CodedRange {
    /// Valid code words `w` with `lo <= w < hi` (and
    /// `code_sum(w) == sum` if fixed), increasing. `hi == u64::MAX`
    /// doubles as "unbounded" (the same sentinel convention as
    /// [`bits::FixedWeightRange`]): the exclusive end of a dense 64-bit
    /// code space is 2^64, which a `u64` cannot hold, and clamping it to
    /// `u64::MAX` used to silently drop the all-ones word from
    /// word-filling encodings (`sites * bits == 64`).
    pub fn new(
        encoding: SiteEncoding,
        n_sites: u32,
        code_sum: Option<u32>,
        lo: u64,
        hi: u64,
    ) -> Self {
        let space_last = last_word(encoding.code_bits(n_sites));
        let last =
            if hi == u64::MAX { space_last } else { space_last.min(hi.saturating_sub(1)) };
        let mut r = Self { encoding, n_sites, code_sum, next: None, last };
        r.next = if hi == 0 { None } else { r.seek(lo) };
        r
    }

    /// The full space.
    pub fn all(encoding: SiteEncoding, n_sites: u32, code_sum: Option<u32>) -> Self {
        Self::new(encoding, n_sites, code_sum, 0, u64::MAX)
    }

    /// Smallest matching word `>= from`, at most `last`.
    fn seek(&self, from: u64) -> Option<u64> {
        let mut w = from;
        loop {
            let v = self.encoding.next_valid(w, self.n_sites)?;
            if v > self.last {
                return None;
            }
            match self.code_sum {
                Some(sum) if self.encoding.code_sum(v, self.n_sites) != sum => {
                    w = v.checked_add(1)?;
                }
                _ => return Some(v),
            }
        }
    }
}

impl Iterator for CodedRange {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let cur = self.next?;
        self.next = cur.checked_add(1).and_then(|n| self.seek(n));
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_half_is_the_identity_encoding() {
        let e = SiteEncoding::spin_half();
        assert!(e.is_spin_half());
        assert_eq!(e.bits(), 1);
        assert_eq!(e.code_bits(24), 24);
        assert_eq!(e.code_sum(0b1011, 4), 3);
        assert!(e.is_valid(u64::MAX, 64));
        assert_eq!(e.next_valid(17, 8), Some(17));
        assert_eq!(SiteEncoding::spin(2), e);
    }

    #[test]
    fn fermion_differs_only_in_statistics() {
        let e = SiteEncoding::fermion();
        assert!(e.is_fermionic());
        assert!(!e.is_spin_half());
        assert_eq!(e.bits(), 1);
        assert_eq!(e.sign_mask_below(3), 0b111);
        assert_eq!(e.sign_mask_below(0), 0);
    }

    #[test]
    fn spin_one_field_access() {
        let e = SiteEncoding::spin(3);
        assert_eq!(e.bits(), 2);
        assert_eq!(e.max_sites(), 32);
        let mut w = 0u64;
        for (site, code) in [(0u32, 2u64), (1, 0), (2, 1), (3, 2)] {
            w = e.deposit(w, site, code);
        }
        assert_eq!(e.decode(w, 4), vec![2, 0, 1, 2]);
        assert_eq!(e.code_sum(w, 4), 5);
        assert!(e.is_valid(w, 4));
        assert!(!e.is_valid(e.deposit(w, 1, 3), 4));
    }

    #[test]
    fn next_valid_skips_invalid_subtrees() {
        let e = SiteEncoding::spin(3);
        let n = 3u32;
        // Brute-force reference.
        for w in 0..(1u64 << e.code_bits(n)) + 2 {
            let expect = (w..(1u64 << e.code_bits(n))).find(|&v| e.is_valid(v, n));
            assert_eq!(e.next_valid(w, n), expect, "w = {w:#b}");
        }
    }

    #[test]
    fn coded_range_full_space_counts() {
        let e = SiteEncoding::spin(3);
        // 3^4 = 81 valid words over 4 sites.
        let all: Vec<u64> = CodedRange::all(e, 4, None).collect();
        assert_eq!(all.len(), 81);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert!(all.iter().all(|&w| e.is_valid(w, 4)));
        // Fixed code sum: coefficient of x^4 in (1 + x + x²)^4 = 19.
        let sector: Vec<u64> = CodedRange::all(e, 4, Some(4)).collect();
        assert_eq!(sector.len(), 19);
        assert!(sector.iter().all(|&w| e.code_sum(w, 4) == 4));
    }

    #[test]
    fn coded_range_chunks_partition() {
        let e = SiteEncoding::spin(3);
        let n = 5u32;
        for sum in [None, Some(5), Some(0), Some(10)] {
            let full: Vec<u64> = CodedRange::all(e, n, sum).collect();
            let total = 1u64 << e.code_bits(n);
            let chunks = 7u64;
            let mut chunked = Vec::new();
            for c in 0..chunks {
                let lo = c * total / chunks;
                let hi = (c + 1) * total / chunks;
                chunked.extend(CodedRange::new(e, n, sum, lo, hi));
            }
            assert_eq!(full, chunked, "sum = {sum:?}");
        }
    }

    #[test]
    fn word_filling_spin_one_boundary() {
        // 32 spin-1 sites × 2 bits == 64 code bits: the carry out of the
        // top field used to be `1u64 << 64`.
        let e = SiteEncoding::spin(3);
        let n = 32u32;
        assert_eq!(e.code_bits(n), 64);
        // All-ones word: every field holds the invalid code 3. The carry
        // out of the top site leaves the word — no valid word above.
        assert_eq!(e.next_valid(u64::MAX, n), None);
        // Invalid code in the top field only: still nothing above.
        let top_bad = e.deposit(0, n - 1, 3);
        assert_eq!(e.next_valid(top_bad, n), None);
        // The largest *valid* word (code 2 everywhere) is its own
        // successor and is reachable through a bounded range.
        let top = (0..n).fold(0u64, |w, s| e.deposit(w, s, 2));
        assert_eq!(e.next_valid(top, n), Some(top));
        assert!(e.is_valid(top, n));
        let tail: Vec<u64> = CodedRange::new(e, n, None, top - 4, u64::MAX).collect();
        assert_eq!(tail.last(), Some(&top));
        assert!(tail.windows(2).all(|w| w[0] < w[1]));
        assert!(tail.iter().all(|&w| e.is_valid(w, n)));
        // Fixed-charge seek across the top of the space must terminate.
        let full_charge = 2 * n;
        let sector: Vec<u64> =
            CodedRange::new(e, n, Some(full_charge), top - 100, u64::MAX).collect();
        assert_eq!(sector, vec![top]);
    }

    #[test]
    fn word_filling_fermion_boundary() {
        // 64 spin-orbitals × 1 bit == 64 code bits (dense encoding): the
        // all-ones word is a valid state and must not be dropped by the
        // unrepresentable exclusive bound 2^64.
        let e = SiteEncoding::fermion();
        let n = 64u32;
        assert_eq!(e.code_bits(n), 64);
        assert!(e.is_valid(u64::MAX, n));
        assert_eq!(e.next_valid(u64::MAX, n), Some(u64::MAX));
        let tail: Vec<u64> = CodedRange::new(e, n, None, u64::MAX - 3, u64::MAX).collect();
        assert_eq!(tail, vec![u64::MAX - 3, u64::MAX - 2, u64::MAX - 1, u64::MAX]);
        // Fully-occupied charge sector: exactly the all-ones word. (Seek
        // from near the top — the generic weight seek is a linear scan,
        // so starting at 0 would walk the whole 2^64 space.)
        let sector: Vec<u64> =
            CodedRange::new(e, n, Some(64), u64::MAX - 50, u64::MAX).collect();
        assert_eq!(sector, vec![u64::MAX]);
        // An explicit exclusive bound below the sentinel still excludes.
        let bounded: Vec<u64> =
            CodedRange::new(e, n, None, u64::MAX - 3, u64::MAX - 1).collect();
        assert_eq!(bounded, vec![u64::MAX - 3, u64::MAX - 2]);
        // Empty ranges stay empty.
        assert_eq!(CodedRange::new(e, n, None, 5, 0).count(), 0);
        assert_eq!(CodedRange::new(e, n, None, 5, 5).count(), 0);
    }

    #[test]
    fn one_below_word_filling_boundary() {
        // 63 total bits: one bit short of the word — the last pre-overflow
        // width for 1-bit encodings, and 31 spin-1 sites (62 bits) for the
        // 2-bit field. Both must agree with the generic machinery.
        let f = SiteEncoding::fermion();
        assert_eq!(f.code_bits(63), 63);
        let last = low_mask(63);
        assert!(f.is_valid(last, 63));
        assert!(!f.is_valid(last + 1, 63));
        assert_eq!(f.next_valid(last, 63), Some(last));
        assert_eq!(f.next_valid(last + 1, 63), None);
        let tail: Vec<u64> = CodedRange::new(f, 63, None, last - 2, u64::MAX).collect();
        assert_eq!(tail, vec![last - 2, last - 1, last]);

        let e = SiteEncoding::spin(3);
        let n = 31u32;
        let top = (0..n).fold(0u64, |w, s| e.deposit(w, s, 2));
        assert_eq!(e.next_valid(top, n), Some(top));
        assert_eq!(e.next_valid(top + 1, n), None);
        let sector: Vec<u64> =
            CodedRange::new(e, n, Some(2 * n), top.saturating_sub(50), u64::MAX).collect();
        assert_eq!(sector, vec![top]);
    }

    #[test]
    fn coded_range_spin_half_matches_raw_range() {
        let e = SiteEncoding::spin_half();
        let all: Vec<u64> = CodedRange::all(e, 6, None).collect();
        assert_eq!(all, (0..64u64).collect::<Vec<_>>());
        let weighted: Vec<u64> = CodedRange::all(e, 6, Some(3)).collect();
        let gosper: Vec<u64> = crate::bits::FixedWeightRange::all(6, 3).collect();
        assert_eq!(weighted, gosper);
    }
}
