//! Benes permutation networks for 64-bit words.
//!
//! Applying a lattice symmetry to a basis state means permuting its bits.
//! A naive implementation walks all `n` bits; a Benes network performs the
//! same permutation in 11 `delta_swap` operations (for 64-bit words),
//! independent of the permutation. The real `lattice-symmetries` package
//! compiles its symmetries to Benes networks as well; this module
//! re-implements that compilation from scratch.
//!
//! A permutation is represented in *destination-from-source* form:
//! `source[i] = j` means output bit `i` takes the value of input bit `j`.

/// Swaps the bit pairs `(i, i + delta)` of `x` for every `i` with
/// `mask` bit `i` set. This is the classic delta-swap primitive.
#[inline]
pub fn delta_swap(x: u64, mask: u64, delta: u32) -> u64 {
    let t = ((x >> delta) ^ x) & mask;
    x ^ t ^ (t << delta)
}

/// Number of delta-swap stages of a 64-bit Benes network.
pub const STAGES: usize = 11;

/// Stage shift amounts: 32, 16, 8, 4, 2, 1, 2, 4, 8, 16, 32.
pub const DELTAS: [u32; STAGES] = [32, 16, 8, 4, 2, 1, 2, 4, 8, 16, 32];

/// A compiled bit permutation: 11 delta-swap stages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenesNetwork {
    masks: [u64; STAGES],
}

impl BenesNetwork {
    /// Compiles the permutation given in destination-from-source form.
    /// `source` must be a permutation of `0..source.len()` with
    /// `source.len() <= 64`; positions `source.len()..64` are fixed.
    ///
    /// # Panics
    /// Panics if `source` is not a permutation.
    pub fn new(source: &[usize]) -> Self {
        assert!(source.len() <= 64, "at most 64 bit positions");
        let mut perm = [0usize; 64];
        let mut seen = [false; 64];
        for (i, slot) in perm.iter_mut().enumerate() {
            let s = if i < source.len() {
                let s = source[i];
                assert!(s < source.len() && !seen[s], "`source` is not a permutation");
                seen[s] = true;
                s
            } else {
                i
            };
            *slot = s;
        }
        let mut masks = [0u64; STAGES];
        // Scratch buffers for the recursion (max block size 64).
        route(&mut masks, &mut perm, 0, 0, 64);
        Self { masks }
    }

    /// The identity permutation (all masks zero).
    pub fn identity() -> Self {
        Self { masks: [0; STAGES] }
    }

    /// Applies the permutation to `x`.
    #[inline]
    pub fn apply(&self, x: u64) -> u64 {
        let mut x = x;
        // Unconditionally apply all stages: branchless and fast.
        for (&mask, &delta) in self.masks.iter().zip(&DELTAS) {
            x = delta_swap(x, mask, delta);
        }
        x
    }

    /// The raw stage masks, mostly for inspection and tests.
    pub fn masks(&self) -> &[u64; STAGES] {
        &self.masks
    }

    /// True if every stage mask is zero (identity permutation).
    pub fn is_identity(&self) -> bool {
        self.masks.iter().all(|&m| m == 0)
    }
}

/// Applies a destination-from-source permutation naively, bit by bit.
/// Used as the correctness oracle and the ablation baseline.
#[inline]
pub fn apply_perm_naive(source: &[usize], x: u64) -> u64 {
    let mut res = 0u64;
    for (i, &s) in source.iter().enumerate() {
        res |= ((x >> s) & 1) << i;
    }
    if source.len() < 64 {
        // Bits beyond the permuted range are fixed.
        res |= x & !crate::bits::low_mask(source.len() as u32);
    }
    res
}

/// Recursive Benes routing for the block `perm[off .. off + size]` of
/// block-local sources (values in `0..size` are block-local as well).
///
/// `depth` selects the stage pair: stage `depth` on the way in and stage
/// `STAGES - 1 - depth` on the way out, both with shift `size / 2`.
fn route(
    masks: &mut [u64; STAGES],
    perm: &mut [usize; 64],
    depth: usize,
    off: usize,
    size: usize,
) {
    if size == 1 {
        return;
    }
    let m = size / 2;
    if size == 2 {
        // The middle stage (shift 1) is a single swap.
        if perm[off] == 1 {
            debug_assert_eq!(perm[off + 1], 0);
            masks[STAGES / 2] |= 1u64 << off;
        }
        return;
    }
    let block = &perm[off..off + size];
    // Inverse permutation within the block: inv[source] = output position.
    let mut inv = [usize::MAX; 64];
    for (d, &s) in block.iter().enumerate() {
        inv[s] = d;
    }
    // 2-coloring of outputs: net[d] = false (lower half) / true (upper).
    // Constraints: net[d] != net[d ^ m]  (output pairs share a switch) and
    // net[inv[s]] != net[inv[s ^ m]]    (input pairs share a switch).
    let mut net = [2u8; 64]; // 2 = unassigned
    for d0 in 0..size {
        if net[d0] != 2 {
            continue;
        }
        net[d0] = 0;
        let mut d = d0;
        loop {
            let dp = d ^ m; // output-pair partner
            if net[dp] == 2 {
                net[dp] = 1 - net[d];
            } else {
                debug_assert_eq!(net[dp], 1 - net[d]);
            }
            // Input-pair constraint propagated from dp:
            let d2 = inv[block[dp] ^ m];
            if net[d2] != 2 {
                debug_assert_eq!(net[d2], 1 - net[dp]);
                break;
            }
            net[d2] = 1 - net[dp];
            d = d2;
        }
    }
    // Input stage: element with source j exits at output inv[j]; it must be
    // routed to the upper half iff net[inv[j]] == 1. The swap bit of input
    // pair (j, j + m) is owned by the lower index j.
    for j in 0..m {
        if net[inv[j]] == 1 {
            masks[depth] |= 1u64 << (off + j);
        }
    }
    // Output stage: output pair (i, i + m); lower net delivers at i, upper
    // at i + m; swap when output i wants the upper element.
    for (i, &route_up) in net.iter().enumerate().take(m) {
        if route_up == 1 {
            masks[STAGES - 1 - depth] |= 1u64 << (off + i);
        }
    }
    // Build the two sub-permutations in place.
    let mut lower = [0usize; 32];
    let mut upper = [0usize; 32];
    for b in 0..m {
        let (d_low, d_up) = if net[b] == 0 { (b, b ^ m) } else { (b ^ m, b) };
        lower[b] = block[d_low] & (m - 1);
        upper[b] = block[d_up] & (m - 1);
    }
    perm[off..off + m].copy_from_slice(&lower[..m]);
    perm[off + m..off + size].copy_from_slice(&upper[..m]);
    route(masks, perm, depth + 1, off, m);
    route(masks, perm, depth + 1, off + m, m);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_apply(source: &[usize], x: u64) -> u64 {
        let mut res = 0u64;
        for (i, &s) in source.iter().enumerate() {
            res |= ((x >> s) & 1) << i;
        }
        if source.len() < 64 {
            res |= x & !crate::bits::low_mask(source.len() as u32);
        }
        res
    }

    #[test]
    fn identity() {
        let id: Vec<usize> = (0..64).collect();
        let net = BenesNetwork::new(&id);
        assert!(net.is_identity());
        for x in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(net.apply(x), x);
        }
    }

    #[test]
    fn swap_two_bits() {
        // Swap bits 0 and 1 of a 4-bit system.
        let net = BenesNetwork::new(&[1, 0, 2, 3]);
        assert_eq!(net.apply(0b0001), 0b0010);
        assert_eq!(net.apply(0b0010), 0b0001);
        assert_eq!(net.apply(0b0100), 0b0100);
        assert_eq!(net.apply(0b1010), 0b1001);
    }

    #[test]
    fn rotation_matches_rotate_low_bits() {
        // Translation on a ring: site i -> i+1 (mod n), i.e. output bit
        // (i+1)%n reads input bit i: source[(i+1)%n] = i, so
        // source[j] = (j + n - 1) % n.
        for n in [2u32, 3, 5, 8, 13, 24, 48, 64] {
            let source: Vec<usize> =
                (0..n as usize).map(|j| (j + n as usize - 1) % n as usize).collect();
            let net = BenesNetwork::new(&source);
            for seed in 0..200u64 {
                let x = crate::hash::hash64_01(seed) & crate::bits::low_mask(n);
                assert_eq!(
                    net.apply(x),
                    crate::bits::rotate_low_bits(x, n, 1),
                    "n={n} x={x:#b}"
                );
            }
        }
    }

    #[test]
    fn reversal_matches_reverse_low_bits() {
        for n in [2u32, 4, 7, 16, 33, 64] {
            let source: Vec<usize> = (0..n as usize).map(|j| n as usize - 1 - j).collect();
            let net = BenesNetwork::new(&source);
            for seed in 0..200u64 {
                let x = crate::hash::hash64_01(seed) & crate::bits::low_mask(n);
                assert_eq!(net.apply(x), crate::bits::reverse_low_bits(x, n));
            }
        }
    }

    #[test]
    fn random_permutations_match_naive() {
        // Deterministic pseudo-random permutations via Fisher-Yates driven
        // by the hash kernel.
        let mut rng_state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng_state = crate::hash::hash64_01(rng_state.wrapping_add(0x9e3779b97f4a7c15));
            rng_state
        };
        for n in [2usize, 3, 5, 12, 17, 40, 64] {
            for _ in 0..20 {
                let mut perm: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    perm.swap(i, j);
                }
                let net = BenesNetwork::new(&perm);
                for _ in 0..50 {
                    let x = next() & crate::bits::low_mask(n as u32);
                    assert_eq!(net.apply(x), reference_apply(&perm, x), "n={n}");
                }
                // High bits must stay fixed:
                let x = next();
                assert_eq!(
                    net.apply(x) & !crate::bits::low_mask(n as u32),
                    x & !crate::bits::low_mask(n as u32)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation() {
        let _ = BenesNetwork::new(&[0, 0, 1]);
    }

    #[test]
    fn composition_of_networks() {
        // Applying two networks one after another equals the composed
        // permutation. comp[i] = a[b[i]]: first apply a, then b.
        let a = [2usize, 0, 3, 1, 4, 5, 7, 6];
        let b = [1usize, 3, 5, 7, 0, 2, 4, 6];
        let net_a = BenesNetwork::new(&a);
        let net_b = BenesNetwork::new(&b);
        let comp: Vec<usize> = (0..8).map(|i| a[b[i]]).collect();
        let net_c = BenesNetwork::new(&comp);
        for x in 0..256u64 {
            assert_eq!(net_b.apply(net_a.apply(x)), net_c.apply(x));
        }
    }
}
