//! A minimal complex-number type and the `Scalar` abstraction.
//!
//! The offline crate set does not include `num-complex`, so we ship the
//! small part of it that exact diagonalization needs. `Scalar` lets the
//! basis/matvec/eigen layers be generic over `f64` (real symmetry sectors,
//! the case benchmarked in the paper) and `Complex64` (momentum sectors with
//! non-real characters).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number with `f64` components. Layout-compatible with `[f64; 2]`.
#[derive(Copy, Clone, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    pub re: f64,
    pub im: f64,
}

impl Complex64 {
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `exp(i * theta)` — the unit phase with angle `theta`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared modulus `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }

    /// True when `|z - w|` is at most `tol`.
    #[inline]
    pub fn approx_eq(self, w: Self, tol: f64) -> bool {
        (self - w).abs() <= tol
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self { re: self.re + o.re, im: self.im + o.im }
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        Self { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, o: Self) -> Self {
        let d = o.norm_sqr();
        Self {
            re: (self.re * o.re + self.im * o.im) / d,
            im: (self.im * o.re - self.re * o.im) / d,
        }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self { re: -self.re, im: -self.im }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

/// Field scalar used for wavefunction amplitudes: `f64` or [`Complex64`].
///
/// The `N_REALS`/`to_reals`/`from_reals` members expose the flat `f64`
/// representation so that distributed accumulation can use plain `f64`
/// atomics regardless of the scalar type.
pub trait Scalar:
    Copy
    + Clone
    + Send
    + Sync
    + PartialEq
    + fmt::Debug
    + Default
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
{
    /// Number of `f64` lanes in the flat representation (1 or 2).
    const N_REALS: usize;
    const ZERO: Self;
    const ONE: Self;

    /// Lossless conversion from a complex value; `None` if the imaginary
    /// part does not fit (used to reject complex characters in real
    /// sectors at operator-construction time).
    fn from_c64(z: Complex64) -> Option<Self>;
    fn to_c64(self) -> Complex64;
    fn conj(self) -> Self;
    fn re(self) -> f64;
    fn abs_sqr(self) -> f64;
    fn from_re(x: f64) -> Self;
    fn scale_re(self, x: f64) -> Self;
    fn to_reals(self) -> [f64; 2];
    fn from_reals(r: [f64; 2]) -> Self;
    /// `|self - other|` below `tol`?
    fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self - other).abs_sqr().sqrt() <= tol
    }

    /// Reinterprets the slice as `&[f64]` when `Self` *is* `f64` —
    /// a safe specialization hook that lets generic kernels hand the
    /// real-scalar case to SIMD paths. Returns `None` otherwise.
    fn as_f64_slice(xs: &[Self]) -> Option<&[f64]> {
        let _ = xs;
        None
    }

    /// Mutable counterpart of [`Scalar::as_f64_slice`].
    fn as_f64_slice_mut(xs: &mut [Self]) -> Option<&mut [f64]> {
        let _ = xs;
        None
    }
}

impl Scalar for f64 {
    const N_REALS: usize = 1;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_c64(z: Complex64) -> Option<Self> {
        // Tolerate tiny imaginary dust from phase arithmetic.
        if z.im.abs() <= 1e-12 * (1.0 + z.re.abs()) {
            Some(z.re)
        } else {
            None
        }
    }

    #[inline]
    fn to_c64(self) -> Complex64 {
        Complex64::new(self, 0.0)
    }

    #[inline]
    fn conj(self) -> Self {
        self
    }

    #[inline]
    fn re(self) -> f64 {
        self
    }

    #[inline]
    fn abs_sqr(self) -> f64 {
        self * self
    }

    #[inline]
    fn from_re(x: f64) -> Self {
        x
    }

    #[inline]
    fn scale_re(self, x: f64) -> Self {
        self * x
    }

    #[inline]
    fn to_reals(self) -> [f64; 2] {
        [self, 0.0]
    }

    #[inline]
    fn from_reals(r: [f64; 2]) -> Self {
        r[0]
    }

    #[inline]
    fn as_f64_slice(xs: &[Self]) -> Option<&[f64]> {
        Some(xs)
    }

    #[inline]
    fn as_f64_slice_mut(xs: &mut [Self]) -> Option<&mut [f64]> {
        Some(xs)
    }
}

impl Scalar for Complex64 {
    const N_REALS: usize = 2;
    const ZERO: Self = Complex64::ZERO;
    const ONE: Self = Complex64::ONE;

    #[inline]
    fn from_c64(z: Complex64) -> Option<Self> {
        Some(z)
    }

    #[inline]
    fn to_c64(self) -> Complex64 {
        self
    }

    #[inline]
    fn conj(self) -> Self {
        Complex64::conj(self)
    }

    #[inline]
    fn re(self) -> f64 {
        self.re
    }

    #[inline]
    fn abs_sqr(self) -> f64 {
        self.norm_sqr()
    }

    #[inline]
    fn from_re(x: f64) -> Self {
        Complex64::new(x, 0.0)
    }

    #[inline]
    fn scale_re(self, x: f64) -> Self {
        self.scale(x)
    }

    #[inline]
    fn to_reals(self) -> [f64; 2] {
        [self.re, self.im]
    }

    #[inline]
    fn from_reals(r: [f64; 2]) -> Self {
        Complex64::new(r[0], r[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.5, 3.0);
        let c = Complex64::new(0.25, 0.75);
        assert!((a + b - b).approx_eq(a, 1e-15));
        assert!(((a * b) * c).approx_eq(a * (b * c), 1e-12));
        assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-12));
        assert!((a / a).approx_eq(Complex64::ONE, 1e-15));
        assert!((a * a.conj()).approx_eq(Complex64::from(a.norm_sqr()), 1e-12));
    }

    #[test]
    fn cis_is_unit_phase() {
        for k in 0..16 {
            let t = std::f64::consts::TAU * k as f64 / 16.0;
            let z = Complex64::cis(t);
            assert!((z.abs() - 1.0).abs() < 1e-14);
        }
        assert!(Complex64::cis(0.0).approx_eq(Complex64::ONE, 1e-15));
        assert!(Complex64::cis(std::f64::consts::PI).approx_eq(-Complex64::ONE, 1e-15));
    }

    #[test]
    fn scalar_real_rejects_complex() {
        assert_eq!(<f64 as Scalar>::from_c64(Complex64::new(2.0, 0.0)), Some(2.0));
        assert_eq!(<f64 as Scalar>::from_c64(Complex64::new(0.0, 1.0)), None);
    }

    #[test]
    fn scalar_real_lanes_roundtrip() {
        let x = -3.25f64;
        assert_eq!(f64::from_reals(x.to_reals()), x);
        let z = Complex64::new(1.0, -2.0);
        assert_eq!(Complex64::from_reals(z.to_reals()), z);
    }
}
