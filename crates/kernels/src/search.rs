//! Searching sorted basis-state arrays (`stateToIndex` in the paper).
//!
//! Each locale stores its basis states sorted; mapping a generated state to
//! its local index is a binary search (paper Sec. 5.3). On top of the plain
//! binary search we provide a prefix-bucket index that first narrows the
//! range by the high bits of the state — the same trick the shared-memory
//! `lattice-symmetries` uses — which removes most of the cache misses of
//! the first binary-search steps. `benches/ablation.rs` quantifies the
//! difference.
//!
//! ## Bulk ranking
//!
//! One ranking per matrix element makes the matvec latency-bound: every
//! lookup is a chain of dependent loads, and the out-of-order window cannot
//! overlap enough of them when each lookup lives inside a larger per-element
//! loop body. [`PrefixIndex::lookup_batch`] and [`TrieIndex::lookup_batch`]
//! therefore rank a whole *block* of states at once, keeping
//! [`INTERLEAVE`] searches in flight simultaneously: the per-lane state is
//! a handful of registers, and the memory system sees a window of
//! independent loads instead of one dependent chain. Absent states are
//! reported with the [`NOT_FOUND`] sentinel so results stay in dense `u32`
//! arrays (no `Option` in the hot path).

/// Sentinel written by the `lookup_batch` kernels for states that are not
/// in the array. Never a valid rank (arrays are capped below `u32::MAX`).
pub const NOT_FOUND: u32 = u32::MAX;

/// Number of in-flight searches the batch kernels interleave. Eight lanes
/// of (lo, hi) bounds fit comfortably in registers while giving the memory
/// system eight independent loads per round.
pub const INTERLEAVE: usize = 8;

/// Plain binary search in a sorted slice.
#[inline]
pub fn binary_search(sorted: &[u64], needle: u64) -> Option<usize> {
    sorted.binary_search(&needle).ok()
}

/// A prefix-bucket acceleration structure over a sorted `u64` slice.
///
/// States are bucketed by their top `bits` bits (relative to an `n_bits`
/// wide state space); a bucket lookup plus a short binary search replaces
/// the full-range binary search.
#[derive(Clone, Debug)]
pub struct PrefixIndex {
    shift: u32,
    /// `starts[b] .. starts[b + 1]` is the slice of states with prefix `b`.
    starts: Vec<u32>,
}

impl PrefixIndex {
    /// Builds an index over `sorted` (ascending, duplicate-free) for states
    /// drawn from an `n_bits`-wide space. `bits` prefix bits are used;
    /// a good default is `ceil(log2(len / 4))`, see [`PrefixIndex::auto`].
    pub fn new(sorted: &[u64], n_bits: u32, bits: u32) -> Self {
        assert!(bits <= n_bits && bits <= 31, "prefix too wide");
        assert!(sorted.len() < u32::MAX as usize);
        let shift = n_bits - bits;
        let buckets = 1usize << bits;
        let mut starts = vec![0u32; buckets + 1];
        // Counting pass (states must be sorted; we only need boundaries).
        for &s in sorted {
            let b = Self::bucket(shift, s);
            debug_assert!(b < buckets, "state exceeds n_bits");
            starts[b + 1] += 1;
        }
        for b in 0..buckets {
            starts[b + 1] += starts[b];
        }
        Self { shift, starts }
    }

    /// Picks a bucket count of roughly `len / 4` (clamped to `[1, 2^20]`
    /// buckets) — large enough to shrink searches to a handful of elements,
    /// small enough to keep the index itself cache-resident. The width is
    /// `ceil(log2(len / 4))` as documented on [`PrefixIndex::new`]: the
    /// earlier floor rounded small charge-constrained sectors (multi-bit
    /// codes pack few states into a wide space, e.g. small half-filled
    /// Hubbard sectors) down to a 0-width prefix, degenerating every
    /// lookup to the full-range binary search the index exists to avoid.
    /// Degenerate inputs are handled: empty and length-1 slices get a
    /// single bucket, and the width is clamped so it can never exceed
    /// `n_bits` (or the structural limit of 31 bits) however `len / 4`
    /// rounds.
    pub fn auto(sorted: &[u64], n_bits: u32) -> Self {
        let buckets = sorted.len().div_ceil(4).max(1);
        let target_bits = buckets.next_power_of_two().ilog2().min(20).min(n_bits).min(31);
        Self::new(sorted, n_bits, target_bits)
    }

    /// The bucket of `s` for a given shift. `shift >= 64` (an index with
    /// zero prefix bits over a 64-bit state space) means a single bucket;
    /// a plain `>>` would overflow the shift there.
    #[inline]
    fn bucket(shift: u32, s: u64) -> usize {
        if shift >= 64 {
            0
        } else {
            (s >> shift) as usize
        }
    }

    /// Finds `needle` in `sorted` (the same slice the index was built on).
    #[inline]
    pub fn lookup(&self, sorted: &[u64], needle: u64) -> Option<usize> {
        let b = Self::bucket(self.shift, needle);
        if b + 1 >= self.starts.len() {
            return None;
        }
        let lo = self.starts[b] as usize;
        let hi = self.starts[b + 1] as usize;
        sorted[lo..hi].binary_search(&needle).ok().map(|i| lo + i)
    }

    /// Ranks a whole block of `needles` at once, writing each rank (or
    /// [`NOT_FOUND`]) into `out[i]`. [`INTERLEAVE`] binary searches advance
    /// in lockstep so their array probes overlap in the memory system —
    /// the bulk `stateToIndex` of the batched matvec engine.
    pub fn lookup_batch(&self, sorted: &[u64], needles: &[u64], out: &mut Vec<u32>) {
        const W: usize = INTERLEAVE;
        out.clear();
        out.resize(needles.len(), NOT_FOUND);
        let mut k = 0usize;
        while k + W <= needles.len() {
            // Per-lane search bounds from the prefix buckets.
            let mut lo = [0usize; W];
            let mut hi = [0usize; W];
            for l in 0..W {
                let b = Self::bucket(self.shift, needles[k + l]);
                if b + 1 < self.starts.len() {
                    lo[l] = self.starts[b] as usize;
                    hi[l] = self.starts[b + 1] as usize;
                }
                // else: lo == hi == 0 — the lane is born finished.
            }
            // AVX2 path: two 4-lane gather searches in lockstep, same
            // bisection as the scalar loop below, bit-identical ranks.
            if crate::simd::prefix_search_block(
                sorted,
                &needles[k..],
                &mut lo,
                &mut hi,
                &mut out[k..],
            ) {
                k += W;
                continue;
            }
            // Lockstep binary search: every live lane issues one probe per
            // round, so up to W independent loads are in flight.
            loop {
                let mut live = false;
                for l in 0..W {
                    if lo[l] < hi[l] {
                        let mid = (lo[l] + hi[l]) / 2;
                        let v = sorted[mid];
                        let n = needles[k + l];
                        if v < n {
                            lo[l] = mid + 1;
                        } else if v > n {
                            hi[l] = mid;
                        } else {
                            out[k + l] = mid as u32;
                            hi[l] = 0; // retire the lane
                        }
                        live = live || lo[l] < hi[l];
                    }
                }
                if !live {
                    break;
                }
            }
            k += W;
        }
        for (o, &n) in out[k..].iter_mut().zip(&needles[k..]) {
            *o = self.lookup(sorted, n).map_or(NOT_FOUND, |i| i as u32);
        }
    }

    /// Memory used by the index in bytes (for the perf model).
    pub fn memory_bytes(&self) -> usize {
        self.starts.len() * std::mem::size_of::<u32>()
    }
}

/// A radix-trie ranking structure over a sorted `u64` slice — the
/// trie-based ranking of Wallerberger & Held (the paper's Ref.\ 25).
///
/// States are split into fixed-width bit chunks from the most significant
/// end; each trie level is an array of nodes with `2^chunk_bits` slots.
/// Lookups cost exactly `n_chunks` dependent loads — no comparisons, no
/// branches on the data — at the price of more memory than the
/// prefix-bucket index. `benches/ablation.rs` compares all ranking
/// structures.
#[derive(Clone, Debug)]
pub struct TrieIndex {
    chunk_bits: u32,
    n_chunks: u32,
    n_bits: u32,
    /// Flattened nodes; node `i` occupies `nodes[i*fanout .. (i+1)*fanout]`.
    /// `u32::MAX` marks an absent child / absent state. Leaf slots hold
    /// ranks.
    nodes: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl TrieIndex {
    /// Builds a trie over `sorted` (ascending, duplicate-free) states of
    /// an `n_bits`-wide space, using `chunk_bits`-wide radix levels.
    pub fn build(sorted: &[u64], n_bits: u32, chunk_bits: u32) -> Self {
        assert!((1..=16).contains(&chunk_bits));
        assert!((1..=64).contains(&n_bits));
        assert!((sorted.len() as u64) < ABSENT as u64);
        let n_chunks = n_bits.div_ceil(chunk_bits).max(1);
        let fanout = 1usize << chunk_bits;
        let mut nodes = vec![ABSENT; fanout]; // root
        for (rank, &s) in sorted.iter().enumerate() {
            debug_assert!(n_bits == 64 || s < (1u64 << n_bits));
            let mut node = 0usize;
            for level in 0..n_chunks {
                let chunk = Self::chunk_of(s, n_bits, chunk_bits, n_chunks, level);
                let slot = node * fanout + chunk;
                if level + 1 == n_chunks {
                    debug_assert_eq!(nodes[slot], ABSENT, "duplicate state");
                    nodes[slot] = rank as u32;
                } else {
                    if nodes[slot] == ABSENT {
                        let new_node = nodes.len() / fanout;
                        nodes.resize(nodes.len() + fanout, ABSENT);
                        nodes[slot] = new_node as u32;
                    }
                    node = nodes[slot] as usize;
                }
            }
        }
        Self { chunk_bits, n_chunks, n_bits, nodes }
    }

    #[inline]
    fn chunk_of(s: u64, n_bits: u32, chunk_bits: u32, n_chunks: u32, level: u32) -> usize {
        // Chunks cover the low n_chunks*chunk_bits bits, most significant
        // first (the top chunk may extend beyond n_bits — those bits are
        // zero for valid states).
        let shift = (n_chunks - 1 - level) * chunk_bits;
        debug_assert!(shift < 64 || s >> 63 == 0);
        let _ = n_bits;
        ((s >> shift) & ((1u64 << chunk_bits) - 1)) as usize
    }

    /// Rank of `state`, or `None` if absent.
    #[inline]
    pub fn lookup(&self, state: u64) -> Option<usize> {
        if self.n_bits < 64 && state >> self.n_bits != 0 {
            return None;
        }
        let fanout = 1usize << self.chunk_bits;
        let mut node = 0usize;
        for level in 0..self.n_chunks {
            let chunk =
                Self::chunk_of(state, self.n_bits, self.chunk_bits, self.n_chunks, level);
            let slot = self.nodes[node * fanout + chunk];
            if slot == ABSENT {
                return None;
            }
            if level + 1 == self.n_chunks {
                return Some(slot as usize);
            }
            node = slot as usize;
        }
        unreachable!("n_chunks >= 1")
    }

    /// Ranks a whole block of `needles`, writing each rank (or
    /// [`NOT_FOUND`]) into `out[i]`. Lanes descend the trie level by level
    /// in lockstep: each round issues [`INTERLEAVE`] independent node
    /// loads, hiding the dependent-load latency a one-at-a-time walk pays
    /// in full at every level.
    pub fn lookup_batch(&self, needles: &[u64], out: &mut Vec<u32>) {
        const W: usize = INTERLEAVE;
        out.clear();
        out.resize(needles.len(), NOT_FOUND);
        let fanout = 1usize << self.chunk_bits;
        let mut k = 0usize;
        while k + W <= needles.len() {
            // ABSENT doubles as the "lane retired" marker; conveniently it
            // equals NOT_FOUND, so a retired lane's slot value is final.
            let mut node = [0u32; W];
            for l in 0..W {
                if self.n_bits < 64 && needles[k + l] >> self.n_bits != 0 {
                    node[l] = ABSENT;
                }
            }
            for level in 0..self.n_chunks {
                let last = level + 1 == self.n_chunks;
                for l in 0..W {
                    if node[l] == ABSENT {
                        continue;
                    }
                    let chunk = Self::chunk_of(
                        needles[k + l],
                        self.n_bits,
                        self.chunk_bits,
                        self.n_chunks,
                        level,
                    );
                    let slot = self.nodes[node[l] as usize * fanout + chunk];
                    if last {
                        out[k + l] = slot; // rank, or ABSENT == NOT_FOUND
                    }
                    node[l] = slot;
                }
            }
            k += W;
        }
        for (o, &n) in out[k..].iter_mut().zip(&needles[k..]) {
            *o = self.lookup(n).map_or(NOT_FOUND, |i| i as u32);
        }
    }

    /// Memory used by the trie in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::FixedWeightRange;

    fn test_states() -> Vec<u64> {
        FixedWeightRange::all(18, 9).collect()
    }

    #[test]
    fn binary_search_finds_all() {
        let states = test_states();
        for (i, &s) in states.iter().enumerate() {
            assert_eq!(binary_search(&states, s), Some(i));
        }
        assert_eq!(binary_search(&states, 0), None);
        assert_eq!(binary_search(&states, u64::MAX), None);
    }

    #[test]
    fn prefix_index_matches_binary_search() {
        let states = test_states();
        for bits in [1u32, 4, 8, 12] {
            let idx = PrefixIndex::new(&states, 18, bits);
            for (i, &s) in states.iter().enumerate() {
                assert_eq!(idx.lookup(&states, s), Some(i), "bits={bits}");
            }
            // Absent states: probe every value in a subrange.
            for probe in 0..(1u64 << 12) {
                assert_eq!(
                    idx.lookup(&states, probe),
                    binary_search(&states, probe),
                    "bits={bits} probe={probe:#b}"
                );
            }
        }
    }

    #[test]
    fn auto_index_on_small_and_empty() {
        let empty: Vec<u64> = Vec::new();
        let idx = PrefixIndex::auto(&empty, 10);
        assert_eq!(idx.lookup(&empty, 3), None);

        let one = vec![5u64];
        let idx = PrefixIndex::auto(&one, 10);
        assert_eq!(idx.lookup(&one, 5), Some(0));
        assert_eq!(idx.lookup(&one, 6), None);
    }

    #[test]
    fn auto_index_full_width_state_space() {
        // n_bits = 64 with a tiny basis drives `bits` to 0, i.e. a shift
        // of 64: the bucket computation must not overflow the shift.
        let empty: Vec<u64> = Vec::new();
        let idx = PrefixIndex::auto(&empty, 64);
        assert_eq!(idx.lookup(&empty, u64::MAX), None);

        let one = vec![1u64 << 63];
        let idx = PrefixIndex::auto(&one, 64);
        assert_eq!(idx.lookup(&one, 1 << 63), Some(0));
        assert_eq!(idx.lookup(&one, u64::MAX), None);
        assert_eq!(idx.lookup(&one, 0), None);

        // Awkward rounding: len / 4 == 1 keeps bits at 0 for any n_bits.
        let five: Vec<u64> = vec![0, 3, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        let idx = PrefixIndex::auto(&five, 64);
        for (i, &s) in five.iter().enumerate() {
            assert_eq!(idx.lookup(&five, s), Some(i));
        }
        assert_eq!(idx.lookup(&five, 17), None);
    }

    #[test]
    fn auto_bits_never_exceed_n_bits() {
        // A large array over a tiny state space: len / 4 would suggest far
        // more prefix bits than the space has.
        let states: Vec<u64> = (0..16u64).collect();
        let idx = PrefixIndex::auto(&states, 4);
        for (i, &s) in states.iter().enumerate() {
            assert_eq!(idx.lookup(&states, s), Some(i));
        }
        assert_eq!(idx.lookup(&states, 16), None);
    }

    #[test]
    fn auto_picks_a_real_prefix_for_hubbard_sectors() {
        // The 8-site half-filled Hubbard sector: 16 occupation bits (two
        // spin-orbitals per site), 4 up + 4 down electrons — C(8,4)² =
        // 4900 states in a 2^16 space. The floor-rounded width picked 10
        // bits here where the documented ceil(log2(len / 4)) is 11.
        let mut states: Vec<u64> = Vec::new();
        for up in FixedWeightRange::all(8, 4) {
            for dn in FixedWeightRange::all(8, 4) {
                states.push(dn << 8 | up);
            }
        }
        states.sort_unstable();
        assert_eq!(states.len(), 4900);
        let idx = PrefixIndex::auto(&states, 16);
        // ceil(log2(4900 / 4)) = ceil(log2(1225)) = 11 prefix bits.
        assert_eq!(idx.memory_bytes(), ((1 << 11) + 1) * std::mem::size_of::<u32>());
        for (i, &s) in states.iter().enumerate() {
            assert_eq!(idx.lookup(&states, s), Some(i));
        }
        assert_eq!(idx.lookup(&states, 0), None);

        // A *small* charge-constrained sector (2-site quarter-filled:
        // C(2,1)² = 4 states in 4 code bits) used to get a 0-width prefix
        // (len / 4 == 1 floors to 0 bits) and fall back to the full-range
        // search; ceil keeps at least one prefix bit as soon as len > 4.
        let mut small: Vec<u64> = Vec::new();
        for up in FixedWeightRange::all(3, 1) {
            for dn in FixedWeightRange::all(3, 2) {
                small.push(dn << 3 | up);
            }
        }
        small.sort_unstable();
        assert_eq!(small.len(), 9);
        let idx = PrefixIndex::auto(&small, 6);
        assert!(idx.memory_bytes() > 2 * std::mem::size_of::<u32>(), "0-width prefix");
        for (i, &s) in small.iter().enumerate() {
            assert_eq!(idx.lookup(&small, s), Some(i));
        }
    }

    #[test]
    fn prefix_lookup_batch_matches_scalar() {
        let states = test_states();
        // Mix of present states and absent probes, misaligned with the
        // interleave width on purpose.
        let mut probes: Vec<u64> = states.iter().copied().step_by(3).collect();
        probes.extend(0..(1u64 << 10));
        probes.push(u64::MAX);
        for bits in [1u32, 4, 8, 12] {
            let idx = PrefixIndex::new(&states, 18, bits);
            let mut out = Vec::new();
            idx.lookup_batch(&states, &probes, &mut out);
            assert_eq!(out.len(), probes.len());
            for (&p, &o) in probes.iter().zip(&out) {
                let expect = idx.lookup(&states, p).map_or(NOT_FOUND, |i| i as u32);
                assert_eq!(o, expect, "bits={bits} probe={p:#b}");
            }
        }
        // Tail-only batch (shorter than the interleave width).
        let idx = PrefixIndex::auto(&states, 18);
        let mut out = Vec::new();
        idx.lookup_batch(&states, &probes[..3], &mut out);
        assert_eq!(out.len(), 3);
        // And an empty batch.
        idx.lookup_batch(&states, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn trie_lookup_batch_matches_scalar() {
        let states = test_states();
        let mut probes: Vec<u64> = states.iter().copied().step_by(5).collect();
        probes.extend(0..(1u64 << 10));
        probes.push(1 << 20);
        probes.push(u64::MAX);
        for chunk_bits in [2u32, 4, 8] {
            let trie = TrieIndex::build(&states, 18, chunk_bits);
            let mut out = Vec::new();
            trie.lookup_batch(&probes, &mut out);
            for (&p, &o) in probes.iter().zip(&out) {
                let expect = trie.lookup(p).map_or(NOT_FOUND, |i| i as u32);
                assert_eq!(o, expect, "chunk_bits={chunk_bits} probe={p:#b}");
            }
        }
        // Degenerate tries still answer batches.
        let empty: Vec<u64> = Vec::new();
        let trie = TrieIndex::build(&empty, 10, 4);
        let mut out = Vec::new();
        trie.lookup_batch(&[0, 5, 9, 1, 2, 3, 4, 5, 6], &mut out);
        assert!(out.iter().all(|&o| o == NOT_FOUND));
    }

    #[test]
    fn trie_matches_binary_search() {
        let states = test_states();
        for chunk_bits in [2u32, 4, 6, 8] {
            let trie = TrieIndex::build(&states, 18, chunk_bits);
            for (i, &s) in states.iter().enumerate() {
                assert_eq!(trie.lookup(s), Some(i), "chunk_bits={chunk_bits}");
            }
            for probe in 0..(1u64 << 12) {
                assert_eq!(
                    trie.lookup(probe),
                    binary_search(&states, probe),
                    "chunk_bits={chunk_bits} probe={probe:#b}"
                );
            }
            // Out-of-space probes:
            assert_eq!(trie.lookup(1 << 20), None);
            assert_eq!(trie.lookup(u64::MAX), None);
        }
    }

    #[test]
    fn trie_edge_cases() {
        // Single state.
        let one = vec![42u64];
        let t = TrieIndex::build(&one, 10, 3);
        assert_eq!(t.lookup(42), Some(0));
        assert_eq!(t.lookup(41), None);
        // Empty.
        let empty: Vec<u64> = Vec::new();
        let t = TrieIndex::build(&empty, 10, 4);
        assert_eq!(t.lookup(0), None);
        // chunk_bits not dividing n_bits.
        let states: Vec<u64> = (0..100u64)
            .map(|i| i * 7 % 1000)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let t = TrieIndex::build(&states, 10, 3);
        for (i, &s) in states.iter().enumerate() {
            assert_eq!(t.lookup(s), Some(i));
        }
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    fn prefix_index_full_width() {
        // bits == n_bits: each bucket holds at most one state.
        let states = vec![0u64, 1, 2, 5, 9, 15];
        let idx = PrefixIndex::new(&states, 4, 4);
        for (i, &s) in states.iter().enumerate() {
            assert_eq!(idx.lookup(&states, s), Some(i));
        }
        assert_eq!(idx.lookup(&states, 3), None);
    }
}
