//! Searching sorted basis-state arrays (`stateToIndex` in the paper).
//!
//! Each locale stores its basis states sorted; mapping a generated state to
//! its local index is a binary search (paper Sec. 5.3). On top of the plain
//! binary search we provide a prefix-bucket index that first narrows the
//! range by the high bits of the state — the same trick the shared-memory
//! `lattice-symmetries` uses — which removes most of the cache misses of
//! the first binary-search steps. `benches/ablation.rs` quantifies the
//! difference.

/// Plain binary search in a sorted slice.
#[inline]
pub fn binary_search(sorted: &[u64], needle: u64) -> Option<usize> {
    sorted.binary_search(&needle).ok()
}

/// A prefix-bucket acceleration structure over a sorted `u64` slice.
///
/// States are bucketed by their top `bits` bits (relative to an `n_bits`
/// wide state space); a bucket lookup plus a short binary search replaces
/// the full-range binary search.
#[derive(Clone, Debug)]
pub struct PrefixIndex {
    shift: u32,
    /// `starts[b] .. starts[b + 1]` is the slice of states with prefix `b`.
    starts: Vec<u32>,
}

impl PrefixIndex {
    /// Builds an index over `sorted` (ascending, duplicate-free) for states
    /// drawn from an `n_bits`-wide space. `bits` prefix bits are used;
    /// a good default is `ceil(log2(len / 4))`, see [`PrefixIndex::auto`].
    pub fn new(sorted: &[u64], n_bits: u32, bits: u32) -> Self {
        assert!(bits <= n_bits && bits <= 31, "prefix too wide");
        assert!(sorted.len() < u32::MAX as usize);
        let shift = n_bits - bits;
        let buckets = 1usize << bits;
        let mut starts = vec![0u32; buckets + 1];
        // Counting pass (states must be sorted; we only need boundaries).
        for &s in sorted {
            let b = (s >> shift) as usize;
            debug_assert!(b < buckets, "state exceeds n_bits");
            starts[b + 1] += 1;
        }
        for b in 0..buckets {
            starts[b + 1] += starts[b];
        }
        Self { shift, starts }
    }

    /// Picks a bucket count of roughly `len / 4` (clamped to `[1, 2^20]`
    /// buckets) — large enough to shrink searches to a handful of elements,
    /// small enough to keep the index itself cache-resident.
    pub fn auto(sorted: &[u64], n_bits: u32) -> Self {
        let target_bits = (sorted.len() / 4).max(1).ilog2().min(20).min(n_bits);
        Self::new(sorted, n_bits, target_bits)
    }

    /// Finds `needle` in `sorted` (the same slice the index was built on).
    #[inline]
    pub fn lookup(&self, sorted: &[u64], needle: u64) -> Option<usize> {
        let b = (needle >> self.shift) as usize;
        if b + 1 >= self.starts.len() {
            return None;
        }
        let lo = self.starts[b] as usize;
        let hi = self.starts[b + 1] as usize;
        sorted[lo..hi].binary_search(&needle).ok().map(|i| lo + i)
    }

    /// Memory used by the index in bytes (for the perf model).
    pub fn memory_bytes(&self) -> usize {
        self.starts.len() * std::mem::size_of::<u32>()
    }
}

/// A radix-trie ranking structure over a sorted `u64` slice — the
/// trie-based ranking of Wallerberger & Held (the paper's Ref.\ 25).
///
/// States are split into fixed-width bit chunks from the most significant
/// end; each trie level is an array of nodes with `2^chunk_bits` slots.
/// Lookups cost exactly `n_chunks` dependent loads — no comparisons, no
/// branches on the data — at the price of more memory than the
/// prefix-bucket index. `benches/ablation.rs` compares all ranking
/// structures.
#[derive(Clone, Debug)]
pub struct TrieIndex {
    chunk_bits: u32,
    n_chunks: u32,
    n_bits: u32,
    /// Flattened nodes; node `i` occupies `nodes[i*fanout .. (i+1)*fanout]`.
    /// `u32::MAX` marks an absent child / absent state. Leaf slots hold
    /// ranks.
    nodes: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl TrieIndex {
    /// Builds a trie over `sorted` (ascending, duplicate-free) states of
    /// an `n_bits`-wide space, using `chunk_bits`-wide radix levels.
    pub fn build(sorted: &[u64], n_bits: u32, chunk_bits: u32) -> Self {
        assert!((1..=16).contains(&chunk_bits));
        assert!((1..=64).contains(&n_bits));
        assert!((sorted.len() as u64) < ABSENT as u64);
        let n_chunks = n_bits.div_ceil(chunk_bits).max(1);
        let fanout = 1usize << chunk_bits;
        let mut nodes = vec![ABSENT; fanout]; // root
        for (rank, &s) in sorted.iter().enumerate() {
            debug_assert!(n_bits == 64 || s < (1u64 << n_bits));
            let mut node = 0usize;
            for level in 0..n_chunks {
                let chunk = Self::chunk_of(s, n_bits, chunk_bits, n_chunks, level);
                let slot = node * fanout + chunk;
                if level + 1 == n_chunks {
                    debug_assert_eq!(nodes[slot], ABSENT, "duplicate state");
                    nodes[slot] = rank as u32;
                } else {
                    if nodes[slot] == ABSENT {
                        let new_node = nodes.len() / fanout;
                        nodes.resize(nodes.len() + fanout, ABSENT);
                        nodes[slot] = new_node as u32;
                    }
                    node = nodes[slot] as usize;
                }
            }
        }
        Self { chunk_bits, n_chunks, n_bits, nodes }
    }

    #[inline]
    fn chunk_of(s: u64, n_bits: u32, chunk_bits: u32, n_chunks: u32, level: u32) -> usize {
        // Chunks cover the low n_chunks*chunk_bits bits, most significant
        // first (the top chunk may extend beyond n_bits — those bits are
        // zero for valid states).
        let shift = (n_chunks - 1 - level) * chunk_bits;
        debug_assert!(shift < 64 || s >> 63 == 0);
        let _ = n_bits;
        ((s >> shift) & ((1u64 << chunk_bits) - 1)) as usize
    }

    /// Rank of `state`, or `None` if absent.
    #[inline]
    pub fn lookup(&self, state: u64) -> Option<usize> {
        if self.n_bits < 64 && state >> self.n_bits != 0 {
            return None;
        }
        let fanout = 1usize << self.chunk_bits;
        let mut node = 0usize;
        for level in 0..self.n_chunks {
            let chunk =
                Self::chunk_of(state, self.n_bits, self.chunk_bits, self.n_chunks, level);
            let slot = self.nodes[node * fanout + chunk];
            if slot == ABSENT {
                return None;
            }
            if level + 1 == self.n_chunks {
                return Some(slot as usize);
            }
            node = slot as usize;
        }
        unreachable!("n_chunks >= 1")
    }

    /// Memory used by the trie in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::FixedWeightRange;

    fn test_states() -> Vec<u64> {
        FixedWeightRange::all(18, 9).collect()
    }

    #[test]
    fn binary_search_finds_all() {
        let states = test_states();
        for (i, &s) in states.iter().enumerate() {
            assert_eq!(binary_search(&states, s), Some(i));
        }
        assert_eq!(binary_search(&states, 0), None);
        assert_eq!(binary_search(&states, u64::MAX), None);
    }

    #[test]
    fn prefix_index_matches_binary_search() {
        let states = test_states();
        for bits in [1u32, 4, 8, 12] {
            let idx = PrefixIndex::new(&states, 18, bits);
            for (i, &s) in states.iter().enumerate() {
                assert_eq!(idx.lookup(&states, s), Some(i), "bits={bits}");
            }
            // Absent states: probe every value in a subrange.
            for probe in 0..(1u64 << 12) {
                assert_eq!(
                    idx.lookup(&states, probe),
                    binary_search(&states, probe),
                    "bits={bits} probe={probe:#b}"
                );
            }
        }
    }

    #[test]
    fn auto_index_on_small_and_empty() {
        let empty: Vec<u64> = Vec::new();
        let idx = PrefixIndex::auto(&empty, 10);
        assert_eq!(idx.lookup(&empty, 3), None);

        let one = vec![5u64];
        let idx = PrefixIndex::auto(&one, 10);
        assert_eq!(idx.lookup(&one, 5), Some(0));
        assert_eq!(idx.lookup(&one, 6), None);
    }

    #[test]
    fn trie_matches_binary_search() {
        let states = test_states();
        for chunk_bits in [2u32, 4, 6, 8] {
            let trie = TrieIndex::build(&states, 18, chunk_bits);
            for (i, &s) in states.iter().enumerate() {
                assert_eq!(trie.lookup(s), Some(i), "chunk_bits={chunk_bits}");
            }
            for probe in 0..(1u64 << 12) {
                assert_eq!(
                    trie.lookup(probe),
                    binary_search(&states, probe),
                    "chunk_bits={chunk_bits} probe={probe:#b}"
                );
            }
            // Out-of-space probes:
            assert_eq!(trie.lookup(1 << 20), None);
            assert_eq!(trie.lookup(u64::MAX), None);
        }
    }

    #[test]
    fn trie_edge_cases() {
        // Single state.
        let one = vec![42u64];
        let t = TrieIndex::build(&one, 10, 3);
        assert_eq!(t.lookup(42), Some(0));
        assert_eq!(t.lookup(41), None);
        // Empty.
        let empty: Vec<u64> = Vec::new();
        let t = TrieIndex::build(&empty, 10, 4);
        assert_eq!(t.lookup(0), None);
        // chunk_bits not dividing n_bits.
        let states: Vec<u64> = (0..100u64)
            .map(|i| i * 7 % 1000)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let t = TrieIndex::build(&states, 10, 3);
        for (i, &s) in states.iter().enumerate() {
            assert_eq!(t.lookup(s), Some(i));
        }
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    fn prefix_index_full_width() {
        // bits == n_bits: each bucket holds at most one state.
        let states = vec![0u64, 1, 2, 5, 9, 15];
        let idx = PrefixIndex::new(&states, 4, 4);
        for (i, &s) in states.iter().enumerate() {
            assert_eq!(idx.lookup(&states, s), Some(i));
        }
        assert_eq!(idx.lookup(&states, 3), None);
    }
}
