//! Runtime-dispatched SIMD kernels with scalar twins.
//!
//! The paper's throughput claim is that the batched matvec engine is
//! bandwidth-bound; what scalar code leaves on the table is per-element
//! *instruction* overhead in the bit kernels (state generation, bulk
//! ranking) and latency in the gather-heavy amplitude accumulation.
//! This module provides explicit AVX2 paths for those kernels next to
//! their scalar twins, selected once at startup:
//!
//! * `LS_SIMD=auto` (default) — use AVX2 when the CPU reports it;
//! * `LS_SIMD=scalar` — force the scalar twins (the reference in the
//!   bit-equivalence proptests);
//! * `LS_SIMD=avx2` — require AVX2, panic if the CPU lacks it.
//!
//! Every kernel here is **bit-exact** against its scalar twin — not
//! merely close: integer kernels are trivially exact, and the floating
//! kernels are built so vectorization never changes the reduction shape.
//! Elementwise float kernels (`axpy_f32`, gather-multiply) vectorize the
//! IEEE-exact lane operations and keep any accumulation in the scalar
//! order; reducing kernels (`dot_f32`) define a fixed 4-lane interleaved
//! accumulator shape that the scalar twin implements with plain code and
//! the AVX2 path implements with one `vaddpd` per chunk — the same
//! additions in the same order either way. `LS_SIMD` therefore never
//! changes results, only speed, and the workspace determinism contract
//! (bit-identical across thread counts and backends) holds per
//! `LS_SIMD` setting *and* across settings.
//!
//! The f32-storage kernels (`dot_f32`, `axpy_f32`, ...) are the BLAS-1
//! layer of the mixed-precision Krylov mode (`LS_PRECISION=f32|mixed` in
//! `ls-eigen`): vectors are stored in f32, every product is widened to
//! f64 before arithmetic, and every reduction accumulates in f64 — only
//! storage narrows.

use std::sync::OnceLock;

/// The instruction set the kernels dispatch to, decided once per process
/// from `LS_SIMD` and runtime CPU feature detection.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SimdLevel {
    /// Scalar twins only.
    Scalar,
    /// AVX2 paths (x86-64 with runtime-detected AVX2 support).
    Avx2,
}

/// Bench/test override: when set, every kernel dispatches to its scalar
/// twin regardless of `LS_SIMD` and CPU detection. `LS_SIMD` is read
/// once per process, so in-process A/B comparisons (the `fig_batch`
/// SIMD-vs-scalar measurement) flip this instead.
static FORCE_SCALAR: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Forces (or releases) scalar dispatch for the whole process — the
/// in-process counterpart of `LS_SIMD=scalar`, used by benchmarks to
/// measure both paths in one run. Bit-exactness makes the flip safe at
/// any time.
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// The active dispatch level (cached; reads `LS_SIMD` once).
pub fn level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    if FORCE_SCALAR.load(std::sync::atomic::Ordering::Relaxed) {
        return SimdLevel::Scalar;
    }
    *LEVEL.get_or_init(|| {
        let mode = std::env::var("LS_SIMD").unwrap_or_else(|_| "auto".into());
        match mode.as_str() {
            "auto" => {
                if avx2_available() {
                    SimdLevel::Avx2
                } else {
                    SimdLevel::Scalar
                }
            }
            "scalar" => SimdLevel::Scalar,
            "avx2" => {
                assert!(avx2_available(), "LS_SIMD=avx2 but the CPU does not report AVX2");
                SimdLevel::Avx2
            }
            other => panic!("LS_SIMD={other:?} is not one of auto|scalar|avx2"),
        }
    })
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

// ---------------------------------------------------------------------------
// State generation: charge-mask and field-sum filters over raw word ranges.
// ---------------------------------------------------------------------------

/// Appends every word `s` in `[lo, hi)` with `popcount(s & mask) ==
/// weight` for all `(mask, weight)` pairs — the charge-sector filter of
/// spinful-fermion (Hubbard) enumeration, which scans its raw code range
/// densely. `hi == u64::MAX` is treated as an ordinary exclusive bound
/// (the enumeration layer clamps to the code space first).
pub fn filter_charge_masks(lo: u64, hi: u64, charges: &[(u64, u32)], out: &mut Vec<u64>) {
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: dispatched only when AVX2 was detected at startup.
        unsafe { filter_charge_masks_avx2(lo, hi, charges, out) };
        return;
    }
    filter_charge_masks_scalar(lo, hi, charges, out);
}

/// Scalar twin of [`filter_charge_masks`].
pub fn filter_charge_masks_scalar(
    lo: u64,
    hi: u64,
    charges: &[(u64, u32)],
    out: &mut Vec<u64>,
) {
    for s in lo..hi {
        if charges.iter().all(|&(m, w)| (s & m).count_ones() == w) {
            out.push(s);
        }
    }
}

/// Appends every word `s` in `[lo, hi)` whose field sum (sum of `n_fields`
/// packed `width`-bit fields, [`crate::bits::field_sum`]) equals `sum` —
/// the U(1)-sector filter of dense multi-bit enumeration. Supports the
/// widths that occur in practice (`width <= 2`).
pub fn filter_field_sum(
    lo: u64,
    hi: u64,
    width: u32,
    n_fields: u32,
    sum: u32,
    out: &mut Vec<u64>,
) {
    assert!((1..=2).contains(&width), "filter_field_sum supports widths 1 and 2");
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: dispatched only when AVX2 was detected at startup.
        unsafe { filter_field_sum_avx2(lo, hi, width, n_fields, sum, out) };
        return;
    }
    filter_field_sum_scalar(lo, hi, width, n_fields, sum, out);
}

/// Scalar twin of [`filter_field_sum`].
pub fn filter_field_sum_scalar(
    lo: u64,
    hi: u64,
    width: u32,
    n_fields: u32,
    sum: u32,
    out: &mut Vec<u64>,
) {
    for s in lo..hi {
        if crate::bits::field_sum(s, width, n_fields) == sum {
            out.push(s);
        }
    }
}

/// Extracts the `width`-bit field at `shift` from every word —
/// the batch form of [`crate::bits::extract_field`].
pub fn extract_field_batch(words: &[u64], shift: u32, width: u32, out: &mut Vec<u64>) {
    debug_assert!(shift + width <= 64 && width >= 1);
    out.clear();
    out.reserve(words.len());
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: dispatched only when AVX2 was detected at startup.
        unsafe { extract_field_batch_avx2(words, shift, width, out) };
        return;
    }
    extract_field_batch_scalar(words, shift, width, out);
}

/// Scalar twin of [`extract_field_batch`].
pub fn extract_field_batch_scalar(words: &[u64], shift: u32, width: u32, out: &mut Vec<u64>) {
    for &w in words {
        out.push(crate::bits::extract_field(w, shift, width));
    }
}

// ---------------------------------------------------------------------------
// Bulk ranking: the prefix-bucketed lockstep binary search.
// ---------------------------------------------------------------------------

/// One interleaved block of the prefix-bucketed binary search: resolves
/// `needles[0..8]` against `sorted` using per-lane bounds `lo`/`hi`
/// (from the prefix buckets; a lane with `lo == hi` is born finished)
/// and writes each rank or the caller's sentinel already present in
/// `out`. The AVX2 path runs two 4-lane gather searches in lockstep;
/// the bisection path is identical to the scalar twin's, so the results
/// are bit-for-bit the same.
///
/// Returns `true` when the SIMD path handled the block; the caller runs
/// its scalar loop otherwise (no-AVX2 machines, `LS_SIMD=scalar`, or an
/// array too large for signed 64-bit gather indices).
pub fn prefix_search_block(
    sorted: &[u64],
    needles: &[u64],
    lo: &mut [usize; 8],
    hi: &mut [usize; 8],
    out: &mut [u32],
) -> bool {
    debug_assert!(needles.len() >= 8 && out.len() >= 8);
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 && sorted.len() < i64::MAX as usize {
        // SAFETY: dispatched only when AVX2 was detected at startup;
        // bounds come from the prefix buckets, so every probed `mid`
        // indexes into `sorted`.
        unsafe { prefix_search_block_avx2(sorted, needles, lo, hi, out) };
        return true;
    }
    false
}

// ---------------------------------------------------------------------------
// Amplitude accumulation: the BatchedPull gather-multiply kernel.
// ---------------------------------------------------------------------------

/// One pull segment of the batched matvec, f64 specialization:
/// `yb[emit[t] >> 32] += a * x[emit[t] as u32 as usize]` for every packed
/// emission, in ascending `t` order. The AVX2 path gathers four `x`
/// lanes and multiplies them in one vector op (IEEE-identical to four
/// scalar multiplies), then applies the four additions scalarly in the
/// same ascending order — so the result is bit-for-bit the scalar
/// twin's, preserving the workspace determinism contract the scaling
/// bench asserts (`to_bits` equality across thread counts and modes).
///
/// # Panics
/// Debug builds assert every packed source/destination index is in
/// bounds; release builds rely on the emission builder's invariant.
pub fn accumulate_segment_f64(yb: &mut [f64], x: &[f64], emit: &[u64], a: f64) {
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: dispatched only when AVX2 was detected at startup; the
        // emission builder guarantees in-bounds packed indices.
        unsafe { accumulate_segment_f64_avx2(yb, x, emit, a) };
        return;
    }
    accumulate_segment_f64_scalar(yb, x, emit, a);
}

/// Scalar twin of [`accumulate_segment_f64`].
pub fn accumulate_segment_f64_scalar(yb: &mut [f64], x: &[f64], emit: &[u64], a: f64) {
    for &e in emit {
        yb[(e >> 32) as usize] += a * x[e as u32 as usize];
    }
}

// ---------------------------------------------------------------------------
// f32-storage / f64-arithmetic BLAS-1 (the mixed-precision kernels).
// ---------------------------------------------------------------------------

/// `Σ a[i]·b[i]` with f32 storage and f64 accumulation, over one block.
///
/// The reduction shape is fixed: four interleaved f64 accumulators over
/// the 4-aligned prefix (lane `l` sums elements `4k + l`), the remainder
/// into lanes `0..len % 4`, finished as `(acc0 + acc1) + (acc2 + acc3)`.
/// The AVX2 path performs the same additions with one `vaddpd` per
/// chunk, so both paths are bit-identical. Callers build deterministic
/// parallel reductions on top (fixed blocks + pairwise tree, exactly
/// like `ls-eigen`'s f64 kernels).
pub fn dot_f32(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: dispatched only when AVX2 was detected at startup.
        return unsafe { dot_f32_avx2(a, b) };
    }
    dot_f32_scalar(a, b)
}

/// Scalar twin of [`dot_f32`].
pub fn dot_f32_scalar(a: &[f32], b: &[f32]) -> f64 {
    let mut acc = [0.0f64; 4];
    let n4 = a.len() & !3;
    for k in (0..n4).step_by(4) {
        for l in 0..4 {
            acc[l] += a[k + l] as f64 * b[k + l] as f64;
        }
    }
    for i in n4..a.len() {
        acc[i - n4] += a[i] as f64 * b[i] as f64;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// `Σ a[i]²` with f32 storage and f64 accumulation (the [`dot_f32`]
/// reduction shape).
pub fn norm_sqr_f32(a: &[f32]) -> f64 {
    dot_f32(a, a)
}

/// `y[i] = f32(f64(y[i]) + alpha · f64(x[i]))` — axpy with f32 storage,
/// f64 arithmetic, one rounding on store. Elementwise, so the AVX2 path
/// (widen, multiply, add, narrow — no FMA) is IEEE-identical per lane.
pub fn axpy_f32(alpha: f64, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: dispatched only when AVX2 was detected at startup.
        unsafe { axpy_f32_avx2(alpha, x, y) };
        return;
    }
    axpy_f32_scalar(alpha, x, y);
}

/// Scalar twin of [`axpy_f32`].
pub fn axpy_f32_scalar(alpha: f64, x: &[f32], y: &mut [f32]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = (*yi as f64 + alpha * xi as f64) as f32;
    }
}

/// [`axpy_f32`] fused with `Σ y[i]²` of the *stored* (narrowed) result —
/// the norm a subsequent [`norm_sqr_f32`] of `y` would return, in the
/// [`dot_f32`] reduction shape.
pub fn axpy_norm_sqr_f32(alpha: f64, x: &[f32], y: &mut [f32]) -> f64 {
    assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: dispatched only when AVX2 was detected at startup.
        return unsafe { axpy_norm_sqr_f32_avx2(alpha, x, y) };
    }
    axpy_norm_sqr_f32_scalar(alpha, x, y)
}

/// Scalar twin of [`axpy_norm_sqr_f32`].
pub fn axpy_norm_sqr_f32_scalar(alpha: f64, x: &[f32], y: &mut [f32]) -> f64 {
    let mut acc = [0.0f64; 4];
    let n4 = y.len() & !3;
    for k in (0..n4).step_by(4) {
        for l in 0..4 {
            let v = (y[k + l] as f64 + alpha * x[k + l] as f64) as f32;
            y[k + l] = v;
            acc[l] += v as f64 * v as f64;
        }
    }
    for i in n4..y.len() {
        let v = (y[i] as f64 + alpha * x[i] as f64) as f32;
        y[i] = v;
        acc[i - n4] += v as f64 * v as f64;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// `y[i] = f32(f64(y[i]) · alpha)` — elementwise real scale in f64.
pub fn scale_f32(y: &mut [f32], alpha: f64) {
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: dispatched only when AVX2 was detected at startup.
        unsafe { scale_f32_avx2(y, alpha) };
        return;
    }
    scale_f32_scalar(y, alpha);
}

/// Scalar twin of [`scale_f32`].
pub fn scale_f32_scalar(y: &mut [f32], alpha: f64) {
    for yi in y.iter_mut() {
        *yi = (*yi as f64 * alpha) as f32;
    }
}

// ---------------------------------------------------------------------------
// AVX2 implementations.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Per-64-bit-lane popcount of a 4×u64 vector (nibble-LUT shuffle +
    /// `vpsadbw`, the standard AVX2 popcount).
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn popcnt_epi64(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3,
            2, 3, 3, 4,
        );
        let low_nibble = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_nibble);
        let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(v), low_nibble);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn filter_charge_masks_avx2(
        lo: u64,
        hi: u64,
        charges: &[(u64, u32)],
        out: &mut Vec<u64>,
    ) {
        let mut s = lo;
        let step = _mm256_set1_epi64x(4);
        let mut words = _mm256_setr_epi64x(
            lo as i64,
            lo.wrapping_add(1) as i64,
            lo.wrapping_add(2) as i64,
            lo.wrapping_add(3) as i64,
        );
        while s.checked_add(4).is_some_and(|e| e <= hi) {
            let mut ok = _mm256_set1_epi64x(-1);
            for &(mask, weight) in charges {
                let masked = _mm256_and_si256(words, _mm256_set1_epi64x(mask as i64));
                let cnt = popcnt_epi64(masked);
                let eq = _mm256_cmpeq_epi64(cnt, _mm256_set1_epi64x(weight as i64));
                ok = _mm256_and_si256(ok, eq);
            }
            let hits = _mm256_movemask_pd(_mm256_castsi256_pd(ok)) as u32;
            if hits != 0 {
                for l in 0..4u64 {
                    if hits & (1 << l) != 0 {
                        out.push(s + l);
                    }
                }
            }
            words = _mm256_add_epi64(words, step);
            s += 4;
        }
        super::filter_charge_masks_scalar(s, hi, charges, out);
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn filter_field_sum_avx2(
        lo: u64,
        hi: u64,
        width: u32,
        n_fields: u32,
        sum: u32,
        out: &mut Vec<u64>,
    ) {
        // Field sums via popcounts: a width-1 field sum is popcount under
        // the field mask; a width-2 field sum is popcount(low bits) +
        // 2·popcount(high bits). Both reduce to masked popcounts, which
        // is also how the scalar `bits::field_sum` computes them.
        let span = crate::bits::low_mask(width * n_fields);
        let (lo_mask, hi_mask) = if width == 1 {
            (span, 0u64)
        } else {
            (0x5555_5555_5555_5555 & span, 0xaaaa_aaaa_aaaa_aaaa & span)
        };
        let vsum = _mm256_set1_epi64x(sum as i64);
        let step = _mm256_set1_epi64x(4);
        let mut s = lo;
        let mut words = _mm256_setr_epi64x(
            lo as i64,
            lo.wrapping_add(1) as i64,
            lo.wrapping_add(2) as i64,
            lo.wrapping_add(3) as i64,
        );
        while s.checked_add(4).is_some_and(|e| e <= hi) {
            let low = popcnt_epi64(_mm256_and_si256(words, _mm256_set1_epi64x(lo_mask as i64)));
            let total = if hi_mask == 0 {
                low
            } else {
                let high =
                    popcnt_epi64(_mm256_and_si256(words, _mm256_set1_epi64x(hi_mask as i64)));
                _mm256_add_epi64(low, _mm256_slli_epi64::<1>(high))
            };
            let eq = _mm256_cmpeq_epi64(total, vsum);
            let hits = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
            if hits != 0 {
                for l in 0..4u64 {
                    if hits & (1 << l) != 0 {
                        out.push(s + l);
                    }
                }
            }
            words = _mm256_add_epi64(words, step);
            s += 4;
        }
        super::filter_field_sum_scalar(s, hi, width, n_fields, sum, out);
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn extract_field_batch_avx2(
        words: &[u64],
        shift: u32,
        width: u32,
        out: &mut Vec<u64>,
    ) {
        let mask = _mm256_set1_epi64x(crate::bits::low_mask(width) as i64);
        let shift_v = _mm_cvtsi32_si128(shift as i32);
        let mut chunks = words.chunks_exact(4);
        for ch in &mut chunks {
            let v = _mm256_loadu_si256(ch.as_ptr() as *const __m256i);
            let f = _mm256_and_si256(_mm256_srl_epi64(v, shift_v), mask);
            let mut lanes = [0u64; 4];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, f);
            out.extend_from_slice(&lanes);
        }
        super::extract_field_batch_scalar(chunks.remainder(), shift, width, out);
    }

    /// # Safety
    /// Requires AVX2; every `mid` probed from the given bounds must index
    /// into `sorted`, and `sorted.len() < i64::MAX`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn prefix_search_block_avx2(
        sorted: &[u64],
        needles: &[u64],
        lo: &mut [usize; 8],
        hi: &mut [usize; 8],
        out: &mut [u32],
    ) {
        // Unsigned u64 ordering via the sign-bias trick: x <u y iff
        // (x ^ MIN) <s (y ^ MIN).
        let bias = _mm256_set1_epi64x(i64::MIN);
        let base = sorted.as_ptr() as *const i64;
        for g in 0..2usize {
            let o = 4 * g;
            let mut vlo = _mm256_setr_epi64x(
                lo[o] as i64,
                lo[o + 1] as i64,
                lo[o + 2] as i64,
                lo[o + 3] as i64,
            );
            let mut vhi = _mm256_setr_epi64x(
                hi[o] as i64,
                hi[o + 1] as i64,
                hi[o + 2] as i64,
                hi[o + 3] as i64,
            );
            let needle = _mm256_loadu_si256(needles.as_ptr().add(o) as *const __m256i);
            let needle_b = _mm256_xor_si256(needle, bias);
            loop {
                let live = _mm256_cmpgt_epi64(vhi, vlo);
                if _mm256_movemask_pd(_mm256_castsi256_pd(live)) == 0 {
                    break;
                }
                let mid = _mm256_srli_epi64::<1>(_mm256_add_epi64(vlo, vhi));
                // Gather sorted[mid] on live lanes only (retired lanes
                // would probe stale bounds).
                let v =
                    _mm256_mask_i64gather_epi64::<8>(_mm256_setzero_si256(), base, mid, live);
                let vb = _mm256_xor_si256(v, bias);
                let lt = _mm256_and_si256(live, _mm256_cmpgt_epi64(needle_b, vb)); // v < n
                let gt = _mm256_and_si256(live, _mm256_cmpgt_epi64(vb, needle_b)); // v > n
                let found = _mm256_andnot_si256(_mm256_or_si256(lt, gt), live);
                let hits = _mm256_movemask_pd(_mm256_castsi256_pd(found)) as u32;
                if hits != 0 {
                    let mut mids = [0i64; 4];
                    _mm256_storeu_si256(mids.as_mut_ptr() as *mut __m256i, mid);
                    for l in 0..4 {
                        if hits & (1 << l) != 0 {
                            out[o + l] = mids[l] as u32;
                        }
                    }
                }
                // lo = lt ? mid + 1 : lo;  hi = gt ? mid : (found ? lo : hi)
                let mid1 = _mm256_add_epi64(mid, _mm256_set1_epi64x(1));
                vlo = _mm256_blendv_epi8(vlo, mid1, lt);
                vhi = _mm256_blendv_epi8(vhi, mid, gt);
                vhi = _mm256_blendv_epi8(vhi, vlo, found); // retire: hi = lo
            }
        }
    }

    /// # Safety
    /// Requires AVX2; every packed index in `emit` must be in bounds for
    /// `x` (low 32 bits) and `yb` (high 32 bits).
    #[target_feature(enable = "avx2")]
    pub unsafe fn accumulate_segment_f64_avx2(yb: &mut [f64], x: &[f64], emit: &[u64], a: f64) {
        let va = _mm256_set1_pd(a);
        let idx_mask = _mm256_set1_epi64x(0xffff_ffff);
        let mut chunks = emit.chunks_exact(4);
        for ch in &mut chunks {
            let e = _mm256_loadu_si256(ch.as_ptr() as *const __m256i);
            let src = _mm256_and_si256(e, idx_mask);
            let xv = _mm256_i64gather_pd::<8>(x.as_ptr(), src);
            let prod = _mm256_mul_pd(xv, va);
            let mut p = [0.0f64; 4];
            _mm256_storeu_pd(p.as_mut_ptr(), prod);
            // The additions stay scalar and in ascending emission order —
            // identical rounding to the scalar twin.
            for (l, &pe) in ch.iter().enumerate() {
                *yb.get_unchecked_mut((pe >> 32) as usize) += p[l];
            }
        }
        super::accumulate_segment_f64_scalar(yb, x, chunks.remainder(), a);
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_f32_avx2(a: &[f32], b: &[f32]) -> f64 {
        let mut acc = _mm256_setzero_pd();
        let n4 = a.len() & !3;
        for k in (0..n4).step_by(4) {
            let av = _mm256_cvtps_pd(_mm_loadu_ps(a.as_ptr().add(k)));
            let bv = _mm256_cvtps_pd(_mm_loadu_ps(b.as_ptr().add(k)));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        for i in n4..a.len() {
            lanes[i - n4] += *a.get_unchecked(i) as f64 * *b.get_unchecked(i) as f64;
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_f32_avx2(alpha: f64, x: &[f32], y: &mut [f32]) {
        let va = _mm256_set1_pd(alpha);
        let n4 = y.len() & !3;
        for k in (0..n4).step_by(4) {
            let xv = _mm256_cvtps_pd(_mm_loadu_ps(x.as_ptr().add(k)));
            let yv = _mm256_cvtps_pd(_mm_loadu_ps(y.as_ptr().add(k)));
            let r = _mm256_add_pd(yv, _mm256_mul_pd(va, xv));
            _mm_storeu_ps(y.as_mut_ptr().add(k), _mm256_cvtpd_ps(r));
        }
        super::axpy_f32_scalar(alpha, &x[n4..], &mut y[n4..]);
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_norm_sqr_f32_avx2(alpha: f64, x: &[f32], y: &mut [f32]) -> f64 {
        let va = _mm256_set1_pd(alpha);
        let mut acc = _mm256_setzero_pd();
        let n4 = y.len() & !3;
        for k in (0..n4).step_by(4) {
            let xv = _mm256_cvtps_pd(_mm_loadu_ps(x.as_ptr().add(k)));
            let yv = _mm256_cvtps_pd(_mm_loadu_ps(y.as_ptr().add(k)));
            let r = _mm256_add_pd(yv, _mm256_mul_pd(va, xv));
            let narrowed = _mm256_cvtpd_ps(r);
            _mm_storeu_ps(y.as_mut_ptr().add(k), narrowed);
            // Norm of the *stored* value: widen the narrowed lanes back.
            let stored = _mm256_cvtps_pd(narrowed);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(stored, stored));
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        for i in n4..y.len() {
            let v = (*y.get_unchecked(i) as f64 + alpha * *x.get_unchecked(i) as f64) as f32;
            *y.get_unchecked_mut(i) = v;
            lanes[i - n4] += v as f64 * v as f64;
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_f32_avx2(y: &mut [f32], alpha: f64) {
        let va = _mm256_set1_pd(alpha);
        let n4 = y.len() & !3;
        for k in (0..n4).step_by(4) {
            let yv = _mm256_cvtps_pd(_mm_loadu_ps(y.as_ptr().add(k)));
            _mm_storeu_ps(y.as_mut_ptr().add(k), _mm256_cvtpd_ps(_mm256_mul_pd(yv, va)));
        }
        super::scale_f32_scalar(&mut y[n4..], alpha);
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{
    accumulate_segment_f64_avx2, axpy_f32_avx2, axpy_norm_sqr_f32_avx2, dot_f32_avx2,
    extract_field_batch_avx2, filter_charge_masks_avx2, filter_field_sum_avx2,
    prefix_search_block_avx2, scale_f32_avx2,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed;
        (0..n)
            .map(|i| {
                s = crate::hash::hash64_01(s.wrapping_add(i as u64 + 1));
                s
            })
            .collect()
    }

    #[test]
    fn dispatch_level_is_cached_and_valid() {
        let l = level();
        assert_eq!(l, level());
        assert!(matches!(l, SimdLevel::Scalar | SimdLevel::Avx2));
    }

    #[test]
    fn charge_filter_matches_scalar() {
        let charges = [(0x00ffu64, 2u32), (0xff00u64, 3u32)];
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        filter_charge_masks(0, 1 << 16, &charges, &mut fast);
        filter_charge_masks_scalar(0, 1 << 16, &charges, &mut slow);
        assert_eq!(fast, slow);
        assert!(!fast.is_empty());
        // Misaligned range endpoints exercise the vector remainder.
        fast.clear();
        slow.clear();
        filter_charge_masks(13, 13 + 997, &charges, &mut fast);
        filter_charge_masks_scalar(13, 13 + 997, &charges, &mut slow);
        assert_eq!(fast, slow);
    }

    #[test]
    fn charge_filter_top_of_range() {
        // Near u64::MAX: the vector loop must not overflow its cursor.
        let charges = [(u64::MAX, 63u32)];
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        filter_charge_masks(u64::MAX - 200, u64::MAX, &charges, &mut fast);
        filter_charge_masks_scalar(u64::MAX - 200, u64::MAX, &charges, &mut slow);
        assert_eq!(fast, slow);
    }

    #[test]
    fn field_sum_filter_matches_scalar() {
        for (width, n_fields, sum) in [(1u32, 16u32, 8u32), (2, 8, 7), (2, 12, 12), (1, 5, 0)] {
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            let hi = 1u64 << (width * n_fields).min(18);
            filter_field_sum(0, hi, width, n_fields, sum, &mut fast);
            filter_field_sum_scalar(0, hi, width, n_fields, sum, &mut slow);
            assert_eq!(fast, slow, "width={width} n_fields={n_fields} sum={sum}");
        }
    }

    #[test]
    fn extract_field_matches_scalar() {
        let ws = words(3, 1027); // not a multiple of 4: remainder lanes
        for (shift, width) in [(0u32, 1u32), (5, 3), (31, 2), (62, 2), (63, 1), (0, 64)] {
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            extract_field_batch(&ws, shift, width, &mut fast);
            slow.clear();
            extract_field_batch_scalar(&ws, shift, width, &mut slow);
            assert_eq!(fast, slow, "shift={shift} width={width}");
        }
    }

    #[test]
    fn f32_kernels_match_scalar_twins_bitwise() {
        let n = 1021usize; // remainder lanes in every kernel
        let a: Vec<f32> = (0..n).map(|i| ((i * 37 % 113) as f32 - 56.0) * 0.125).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i * 91 % 127) as f32 - 63.0) * 0.25).collect();
        assert_eq!(dot_f32(&a, &b).to_bits(), dot_f32_scalar(&a, &b).to_bits());
        assert_eq!(norm_sqr_f32(&a).to_bits(), dot_f32_scalar(&a, &a).to_bits());

        let mut y1 = b.clone();
        let mut y2 = b.clone();
        axpy_f32(0.37, &a, &mut y1);
        axpy_f32_scalar(0.37, &a, &mut y2);
        assert_eq!(y1, y2);

        let mut y1 = b.clone();
        let mut y2 = b.clone();
        let n1 = axpy_norm_sqr_f32(-1.13, &a, &mut y1);
        let n2 = axpy_norm_sqr_f32_scalar(-1.13, &a, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(n1.to_bits(), n2.to_bits());
        // The fused norm is the norm of the stored vector.
        assert_eq!(n1.to_bits(), norm_sqr_f32(&y1).to_bits());

        let mut y1 = b.clone();
        let mut y2 = b;
        scale_f32(&mut y1, 0.031);
        scale_f32_scalar(&mut y2, 0.031);
        assert_eq!(y1, y2);
    }

    #[test]
    fn accumulate_segment_matches_scalar_bitwise() {
        let x: Vec<f64> = (0..512).map(|i| ((i * 29 % 101) as f64 - 50.0) * 0.01).collect();
        // Strictly increasing destinations within the segment (the
        // emission builder's invariant), arbitrary sources.
        let emit: Vec<u64> = (0..399u64)
            .map(|t| {
                let dest = t * 2 + (t % 3);
                let src = (t * 57) % 512;
                dest << 32 | src
            })
            .collect();
        let mut y1 = vec![0.25f64; 1024];
        let mut y2 = y1.clone();
        accumulate_segment_f64(&mut y1, &x, &emit, -0.731);
        accumulate_segment_f64_scalar(&mut y2, &x, &emit, -0.731);
        for (a, b) in y1.iter().zip(&y2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
