//! Combinadic (combinatorial number system) ranking of fixed-weight
//! bitstrings.
//!
//! When the only symmetry is U(1) (fixed Hamming weight), the index of a
//! basis state can be computed in closed form instead of by binary search:
//! the weight-`w` bitstrings of `n` bits, ordered as integers, are in
//! bijection with their combinadic rank. This gives an `O(n)` `state ->
//! index` map with no memory traffic, used as a fast path and as an oracle
//! in tests of the general lookup structures.

/// Table of binomial coefficients `C(n, k)` for `n, k <= 64`, with
/// saturation at `u64::MAX` (saturated entries are never used by callers
/// that stay within physical dimensions, but saturation keeps the table
/// total and panic-free).
#[derive(Clone, Debug)]
pub struct BinomialTable {
    table: Vec<u64>, // (n, k) -> table[n * 65 + k]
}

impl BinomialTable {
    pub fn new() -> Self {
        let mut table = vec![0u64; 65 * 65];
        for n in 0..=64usize {
            table[n * 65] = 1;
            for k in 1..=n {
                let a = table[(n - 1) * 65 + k - 1];
                let b = table[(n - 1) * 65 + k];
                table[n * 65 + k] = a.saturating_add(b);
            }
        }
        Self { table }
    }

    /// `C(n, k)`; zero when `k > n`.
    #[inline]
    pub fn choose(&self, n: u32, k: u32) -> u64 {
        if k > n || n > 64 {
            return 0;
        }
        self.table[n as usize * 65 + k as usize]
    }

    /// [`Self::choose`] without the range branches, for hot loops whose
    /// arguments are bounded by construction (`n, k <= 64`). The table
    /// stores explicit zeros for `k > n`, so the value is identical.
    #[inline]
    fn choose_raw(&self, n: u32, k: u32) -> u64 {
        debug_assert!(n <= 64 && k <= 64);
        self.table[n as usize * 65 + k as usize]
    }

    /// Rank of `state` among all values with the same popcount, ordered as
    /// integers. The lowest weight-`w` value has rank 0.
    ///
    /// Combinadic formula: rank = sum over set bits at positions `p_1 < p_2
    /// < ... < p_w` of `C(p_i, i)`.
    #[inline]
    pub fn rank(&self, state: u64) -> u64 {
        let mut rank = 0u64;
        let mut rest = state;
        let mut i = 1u32;
        while rest != 0 {
            let p = rest.trailing_zeros();
            rank += self.choose(p, i);
            rest &= rest - 1;
            i += 1;
        }
        rank
    }

    /// Differential rank: `rank(s ^ f)` for a *weight-preserving* flip
    /// mask `f`, given `rank(s)`.
    ///
    /// Only the set bits inside the flipped span `[lowest bit of f,
    /// highest bit of f]` contribute to the difference — below the span
    /// nothing changes, and above it the set-bit indices are unchanged
    /// because `f` conserves the popcount inside the span. For the
    /// short-range terms of a typical lattice Hamiltonian the span holds
    /// O(1) set bits, so this replaces the O(weight) full rank in the
    /// matvec's inner loop (the basis index of the *source* state is its
    /// rank, so the destination rank comes out of this delta alone).
    #[inline]
    pub fn rank_xor(&self, s: u64, f: u64, rank_s: u64) -> u64 {
        debug_assert!(f != 0, "flip mask of an off-diagonal channel");
        debug_assert_eq!(s.count_ones(), (s ^ f).count_ones(), "flip must conserve weight");
        let lo = f.trailing_zeros();
        let hi = 63 - f.leading_zeros();
        let span = (u64::MAX << lo) & (u64::MAX >> (63 - hi));
        // 1-based set-bit index of the first position inside the span.
        let first = (s & !(u64::MAX << lo)).count_ones() + 1;
        let mut sub = 0u64;
        let mut i = first;
        let mut rest = s & span;
        while rest != 0 {
            sub += self.choose(rest.trailing_zeros(), i);
            rest &= rest - 1;
            i += 1;
        }
        let mut add = 0u64;
        let mut i = first;
        let mut rest = (s ^ f) & span;
        while rest != 0 {
            add += self.choose(rest.trailing_zeros(), i);
            rest &= rest - 1;
            i += 1;
        }
        rank_s + add - sub
    }

    /// [`Self::rank_xor`] specialized for an *adjacent transposition*:
    /// the flip mask is `0b11 << lo` and exactly one of the two positions
    /// is set in `s`. The flipped span has no interior positions, so the
    /// delta collapses to two table loads — the inner-loop rank of every
    /// nearest-neighbour hopping/exchange term.
    ///
    /// `below_mask` must be `!(u64::MAX << lo)` (hoisted by the caller,
    /// which knows it per channel).
    #[inline]
    pub fn rank_xor_adjacent(&self, s: u64, lo: u32, below_mask: u64, rank_s: u64) -> u64 {
        debug_assert!((s >> lo) & 0b11 == 0b01 || (s >> lo) & 0b11 == 0b10);
        let first = (s & below_mask).count_ones() + 1;
        let lower_set = ((s >> lo) & 1) as u32;
        let sub = self.choose_raw(lo + 1 - lower_set, first);
        let add = self.choose_raw(lo + lower_set, first);
        rank_s + add - sub
    }

    /// Inverse of [`Self::rank`]: the weight-`w` value with the given rank.
    /// Requires `rank < C(n, w)` where `n` is the number of available bit
    /// positions (≤ 64).
    pub fn unrank(&self, mut rank: u64, n: u32, w: u32) -> u64 {
        debug_assert!(rank < self.choose(n, w), "rank out of range");
        let mut state = 0u64;
        let mut k = w;
        let mut p = n;
        while k > 0 {
            p -= 1;
            let c = self.choose(p, k);
            if rank >= c {
                rank -= c;
                state |= 1u64 << p;
                k -= 1;
            }
        }
        debug_assert_eq!(rank, 0);
        state
    }
}

impl Default for BinomialTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::FixedWeightRange;

    #[test]
    fn binomials() {
        let t = BinomialTable::new();
        assert_eq!(t.choose(0, 0), 1);
        assert_eq!(t.choose(4, 2), 6);
        assert_eq!(t.choose(10, 5), 252);
        assert_eq!(t.choose(40, 20), 137_846_528_820);
        assert_eq!(t.choose(48, 24), 32_247_603_683_100);
        assert_eq!(t.choose(64, 32), 1_832_624_140_942_590_534);
        assert_eq!(t.choose(5, 7), 0);
    }

    #[test]
    fn rank_is_position_in_gosper_order() {
        let t = BinomialTable::new();
        for (n, w) in [(10u32, 4u32), (12, 6), (9, 1), (7, 7), (8, 0)] {
            for (i, s) in FixedWeightRange::all(n, w).enumerate() {
                assert_eq!(t.rank(s), i as u64, "state {s:#b}");
                assert_eq!(t.unrank(i as u64, n, w), s);
            }
        }
    }

    #[test]
    fn rank_xor_matches_full_rank() {
        let t = BinomialTable::new();
        // Every weight-preserving 2-bit flip on every weight-6 state of 12
        // bits, plus some longer-range 4-bit flips.
        for s in FixedWeightRange::all(12, 6) {
            let rank_s = t.rank(s);
            for p in 0..12u32 {
                for q in 0..12u32 {
                    if p == q {
                        continue;
                    }
                    let f = (1u64 << p) | (1u64 << q);
                    if (s ^ f).count_ones() != s.count_ones() {
                        continue;
                    }
                    assert_eq!(t.rank_xor(s, f, rank_s), t.rank(s ^ f), "s={s:#b} f={f:#b}");
                }
            }
            // 4-bit flips: swap two set with two unset positions.
            let f = 0b1111u64;
            if (s ^ f).count_ones() == s.count_ones() {
                assert_eq!(t.rank_xor(s, f, rank_s), t.rank(s ^ f));
            }
        }
        // High-bit span on a wide state.
        let s = (1u64 << 63) | 0b101;
        let f = (1u64 << 63) | (1u64 << 62);
        assert_eq!(t.rank_xor(s, f, t.rank(s)), t.rank(s ^ f));
    }

    #[test]
    fn rank_xor_adjacent_matches_generic() {
        let t = BinomialTable::new();
        for s in FixedWeightRange::all(14, 7) {
            let rank_s = t.rank(s);
            for lo in 0..13u32 {
                let pair = (s >> lo) & 0b11;
                if pair != 0b01 && pair != 0b10 {
                    continue;
                }
                let f = 0b11u64 << lo;
                let below = !(u64::MAX << lo);
                assert_eq!(
                    t.rank_xor_adjacent(s, lo, below, rank_s),
                    t.rank_xor(s, f, rank_s),
                    "s={s:#b} lo={lo}"
                );
            }
        }
    }

    #[test]
    fn rank_unrank_roundtrip_large() {
        let t = BinomialTable::new();
        let n = 40;
        let w = 20;
        let dim = t.choose(n, w);
        // Sample ranks across the full range.
        for i in 0..1000u64 {
            let r = i * (dim / 1000);
            let s = t.unrank(r, n, w);
            assert_eq!(s.count_ones(), w);
            assert_eq!(t.rank(s), r);
        }
    }
}
