//! Combinadic (combinatorial number system) ranking of fixed-weight
//! bitstrings.
//!
//! When the only symmetry is U(1) (fixed Hamming weight), the index of a
//! basis state can be computed in closed form instead of by binary search:
//! the weight-`w` bitstrings of `n` bits, ordered as integers, are in
//! bijection with their combinadic rank. This gives an `O(n)` `state ->
//! index` map with no memory traffic, used as a fast path and as an oracle
//! in tests of the general lookup structures.

/// Table of binomial coefficients `C(n, k)` for `n, k <= 64`, with
/// saturation at `u64::MAX` (saturated entries are never used by callers
/// that stay within physical dimensions, but saturation keeps the table
/// total and panic-free).
#[derive(Clone, Debug)]
pub struct BinomialTable {
    table: Vec<u64>, // (n, k) -> table[n * 65 + k]
}

impl BinomialTable {
    pub fn new() -> Self {
        let mut table = vec![0u64; 65 * 65];
        for n in 0..=64usize {
            table[n * 65] = 1;
            for k in 1..=n {
                let a = table[(n - 1) * 65 + k - 1];
                let b = table[(n - 1) * 65 + k];
                table[n * 65 + k] = a.saturating_add(b);
            }
        }
        Self { table }
    }

    /// `C(n, k)`; zero when `k > n`.
    #[inline]
    pub fn choose(&self, n: u32, k: u32) -> u64 {
        if k > n || n > 64 {
            return 0;
        }
        self.table[n as usize * 65 + k as usize]
    }

    /// Rank of `state` among all values with the same popcount, ordered as
    /// integers. The lowest weight-`w` value has rank 0.
    ///
    /// Combinadic formula: rank = sum over set bits at positions `p_1 < p_2
    /// < ... < p_w` of `C(p_i, i)`.
    #[inline]
    pub fn rank(&self, state: u64) -> u64 {
        let mut rank = 0u64;
        let mut rest = state;
        let mut i = 1u32;
        while rest != 0 {
            let p = rest.trailing_zeros();
            rank += self.choose(p, i);
            rest &= rest - 1;
            i += 1;
        }
        rank
    }

    /// Inverse of [`Self::rank`]: the weight-`w` value with the given rank.
    /// Requires `rank < C(n, w)` where `n` is the number of available bit
    /// positions (≤ 64).
    pub fn unrank(&self, mut rank: u64, n: u32, w: u32) -> u64 {
        debug_assert!(rank < self.choose(n, w), "rank out of range");
        let mut state = 0u64;
        let mut k = w;
        let mut p = n;
        while k > 0 {
            p -= 1;
            let c = self.choose(p, k);
            if rank >= c {
                rank -= c;
                state |= 1u64 << p;
                k -= 1;
            }
        }
        debug_assert_eq!(rank, 0);
        state
    }
}

impl Default for BinomialTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::FixedWeightRange;

    #[test]
    fn binomials() {
        let t = BinomialTable::new();
        assert_eq!(t.choose(0, 0), 1);
        assert_eq!(t.choose(4, 2), 6);
        assert_eq!(t.choose(10, 5), 252);
        assert_eq!(t.choose(40, 20), 137_846_528_820);
        assert_eq!(t.choose(48, 24), 32_247_603_683_100);
        assert_eq!(t.choose(64, 32), 1_832_624_140_942_590_534);
        assert_eq!(t.choose(5, 7), 0);
    }

    #[test]
    fn rank_is_position_in_gosper_order() {
        let t = BinomialTable::new();
        for (n, w) in [(10u32, 4u32), (12, 6), (9, 1), (7, 7), (8, 0)] {
            for (i, s) in FixedWeightRange::all(n, w).enumerate() {
                assert_eq!(t.rank(s), i as u64, "state {s:#b}");
                assert_eq!(t.unrank(i as u64, n, w), s);
            }
        }
    }

    #[test]
    fn rank_unrank_roundtrip_large() {
        let t = BinomialTable::new();
        let n = 40;
        let w = 20;
        let dim = t.choose(n, w);
        // Sample ranks across the full range.
        for i in 0..1000u64 {
            let r = i * (dim / 1000);
            let s = t.unrank(r, n, w);
            assert_eq!(s.count_ones(), w);
            assert_eq!(t.rank(s), r);
        }
    }
}
