//! Bit-manipulation primitives for spin-1/2 basis states.
//!
//! A basis state of an `n`-site system is the low `n` bits of a `u64`; bit
//! `i` set means spin `i` points up. Everything here is `O(1)` or `O(n)`
//! with tiny constants — these functions sit in the innermost loops of
//! basis enumeration and matrix-row generation.

/// Returns the next integer with the same popcount as `v` (Gosper's hack),
/// or `None` when `v` is the largest such value representable in 64 bits.
///
/// `next_same_weight(0)` is `None`: zero is the unique weight-0 value.
#[inline]
pub fn next_same_weight(v: u64) -> Option<u64> {
    if v == 0 {
        return None;
    }
    let t = v | (v - 1);
    if t == u64::MAX {
        // v's ones occupy a suffix-maximal block; adding would overflow.
        return None;
    }
    let w = (t + 1) | (((!t & (t + 1)) - 1) >> (v.trailing_zeros() + 1));
    Some(w)
}

/// The smallest integer with exactly `weight` bits set (the dense suffix),
/// i.e. `2^weight - 1`. `weight` must be ≤ 64.
#[inline]
pub fn min_with_weight(weight: u32) -> u64 {
    debug_assert!(weight <= 64);
    if weight == 64 {
        u64::MAX
    } else {
        (1u64 << weight) - 1
    }
}

/// The largest `n`-bit integer with exactly `weight` bits set (the dense
/// prefix). Requires `weight <= n <= 64`.
#[inline]
pub fn max_with_weight(n: u32, weight: u32) -> u64 {
    debug_assert!(weight <= n && n <= 64);
    min_with_weight(weight) << (n - weight)
}

/// Smallest `y >= x` with exactly `weight` bits among the low `n` bits,
/// or `None` if no such value exists below `2^n`.
///
/// Used to start Gosper iteration in the middle of a chunked range
/// (Sec. 5.2 of the paper splits `0..2^N` into many chunks).
pub fn ceil_with_weight(x: u64, n: u32, weight: u32) -> Option<u64> {
    debug_assert!(n <= 64 && weight <= n);
    let limit = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    if x > limit {
        return None;
    }
    if weight == 0 {
        return if x == 0 { Some(0) } else { None };
    }
    if x.count_ones() == weight {
        return Some(x);
    }
    // Greedy: try to keep a prefix of x and choose the remainder minimally.
    // For each position `p` (from low to high) where x has a zero bit, we can
    // produce a candidate y > x that agrees with x above p, has bit p set and
    // distributes the remaining ones in the lowest positions below p.
    // Additionally, if popcount(x) < weight we can keep all of x and just add
    // ones in the lowest free positions — handled by scanning p over zero
    // bits and picking the smallest valid candidate, which is the first
    // (lowest p) candidate for the "fill-up" case.
    let need = weight as i64;
    // Case 1: fill zeros of x from the bottom (yields y >= x agreeing with x
    // on all one-bits). Valid when popcount(x) < weight.
    if (x.count_ones() as i64) < need {
        let mut y = x;
        let mut missing = weight - x.count_ones();
        let mut p = 0u32;
        while missing > 0 && p < n {
            if y & (1u64 << p) == 0 {
                y |= 1u64 << p;
                missing -= 1;
            }
            p += 1;
        }
        if missing == 0 {
            return Some(y);
        }
        return None;
    }
    // Case 2: popcount(x) > weight — must bump some zero bit of x to one and
    // clear everything below it. Scan p from low to high; candidate keeps
    // bits of x at positions > p, sets bit p (x must have 0 there), and puts
    // `rem` ones at the very bottom.
    for p in 0..n {
        if x & (1u64 << p) != 0 {
            continue;
        }
        let high = if p + 1 >= 64 { 0 } else { x >> (p + 1) << (p + 1) };
        let ones_high = high.count_ones() + 1; // +1 for bit p itself
        if ones_high > weight {
            continue;
        }
        let rem = weight - ones_high;
        if rem > p {
            continue; // not enough room below p
        }
        let y = high | (1u64 << p) | min_with_weight(rem);
        debug_assert!(y > x);
        return Some(y);
    }
    None
}

/// Iterator over all `n`-bit integers with exactly `weight` set bits lying
/// in the half-open range `[lo, hi)`, in increasing order.
#[derive(Debug, Clone)]
pub struct FixedWeightRange {
    next: Option<u64>,
    hi: u64,
}

impl FixedWeightRange {
    /// All weight-`weight` states `s` with `lo <= s < hi` and `s < 2^n`.
    pub fn new(n: u32, weight: u32, lo: u64, hi: u64) -> Self {
        let next = ceil_with_weight(lo, n, weight).filter(|&s| s < hi);
        Self { next, hi }
    }

    /// The full range `0..2^n`.
    pub fn all(n: u32, weight: u32) -> Self {
        let hi = if n == 64 { u64::MAX } else { 1u64 << n };
        // `hi` of 2^64-1 loses the all-ones state for n=64/weight=64; that
        // corner is irrelevant for physics (we never enumerate n=64), but
        // keep it correct anyway:
        if n == 64 && weight == 64 {
            return Self { next: Some(u64::MAX), hi: u64::MAX };
        }
        Self::new(n, weight, 0, hi)
    }
}

impl Iterator for FixedWeightRange {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        let cur = self.next?;
        self.next = match next_same_weight(cur) {
            Some(n) if n < self.hi => Some(n),
            _ => None,
        };
        // Special corner: hi == u64::MAX means "no upper bound" for the
        // n=64 all-ones case handled in `all`.
        if cur == u64::MAX && self.hi == u64::MAX {
            self.next = None;
        }
        Some(cur)
    }
}

/// Reverses the low `n` bits of `x` (bits `n..64` are cleared).
#[inline]
pub fn reverse_low_bits(x: u64, n: u32) -> u64 {
    debug_assert!((1..=64).contains(&n));
    x.reverse_bits() >> (64 - n)
}

/// Flips the low `n` bits of `x` (global spin inversion).
#[inline]
pub fn flip_low_bits(x: u64, n: u32) -> u64 {
    debug_assert!((1..=64).contains(&n));
    x ^ low_mask(n)
}

/// Mask with the low `n` bits set.
#[inline]
pub fn low_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Rotates the low `n` bits of `x` left by `k` (sites `i -> (i + k) mod n`).
#[inline]
pub fn rotate_low_bits(x: u64, n: u32, k: u32) -> u64 {
    debug_assert!((1..=64).contains(&n));
    let k = k % n;
    if k == 0 {
        return x & low_mask(n);
    }
    let x = x & low_mask(n);
    ((x << k) | (x >> (n - k))) & low_mask(n)
}

/// Parity (0 or 1) of `popcount(x)` as a sign: returns `+1.0` for even
/// parity and `-1.0` for odd.
#[inline]
pub fn parity_sign(x: u64) -> f64 {
    if x.count_ones() & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// Extracts the `width`-bit field starting at bit `shift`: the masked
/// multi-bit read of packed k-bit site codes. `shift + width` must be
/// ≤ 64.
#[inline]
pub fn extract_field(x: u64, shift: u32, width: u32) -> u64 {
    debug_assert!(shift + width <= 64);
    (x >> shift) & low_mask(width)
}

/// Replaces the `width`-bit field starting at bit `shift` with `v` (which
/// must fit in `width` bits): the masked multi-bit write.
#[inline]
pub fn deposit_field(x: u64, shift: u32, width: u32, v: u64) -> u64 {
    debug_assert!(shift + width <= 64);
    debug_assert!(v <= low_mask(width));
    (x & !(low_mask(width) << shift)) | (v << shift)
}

/// Sum of the first `n_fields` consecutive `width`-bit fields of `x` —
/// the generalized Hamming weight of a packed site-code word (for
/// `width == 1` this is a popcount over the low `n_fields` bits).
#[inline]
pub fn field_sum(x: u64, width: u32, n_fields: u32) -> u32 {
    debug_assert!(width >= 1 && width as u64 * n_fields as u64 <= 64);
    if width == 1 {
        return (x & low_mask(n_fields)).count_ones();
    }
    if width == 2 {
        // Sum of 2-bit fields = popcount of the low bits + 2·popcount of
        // the high bits; two popcounts instead of a shift loop.
        let w = x & low_mask(2 * n_fields);
        return (w & 0x5555_5555_5555_5555).count_ones()
            + 2 * (w & 0xaaaa_aaaa_aaaa_aaaa).count_ones();
    }
    let mut acc = 0u32;
    let mut w = x & low_mask(width * n_fields);
    while w != 0 {
        acc += (w & low_mask(width)) as u32;
        w >>= width;
    }
    acc
}

/// Number of set bits of `x` strictly below bit position `site` — the
/// fermionic Jordan-Wigner sign count: `c_site` acting on occupation
/// word `x` carries the sign `(-1)^popcount_below(x, site)`.
#[inline]
pub fn popcount_below(x: u64, site: u32) -> u32 {
    (x & low_mask(site)).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gosper_enumerates_all_combinations() {
        // n = 10, weight = 4: C(10, 4) = 210 states, increasing order.
        let states: Vec<u64> = FixedWeightRange::all(10, 4).collect();
        assert_eq!(states.len(), 210);
        for w in states.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &s in &states {
            assert_eq!(s.count_ones(), 4);
            assert!(s < 1 << 10);
        }
    }

    #[test]
    fn gosper_weight_zero_and_full() {
        assert_eq!(FixedWeightRange::all(8, 0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(FixedWeightRange::all(8, 8).collect::<Vec<_>>(), vec![255]);
    }

    #[test]
    fn next_same_weight_terminates() {
        assert_eq!(next_same_weight(0), None);
        assert_eq!(next_same_weight(u64::MAX), None);
        // Highest 3-bit-weight value: ones at the very top.
        let top = 0b111u64 << 61;
        assert_eq!(next_same_weight(top), None);
        assert_eq!(next_same_weight(0b0011), Some(0b0101));
        assert_eq!(next_same_weight(0b0101), Some(0b0110));
        assert_eq!(next_same_weight(0b0110), Some(0b1001));
    }

    #[test]
    fn ceil_with_weight_agrees_with_scan() {
        let n = 12u32;
        for weight in 0..=n {
            for x in 0u64..(1 << n) {
                let expect = (x..(1 << n)).find(|s| s.count_ones() == weight);
                assert_eq!(ceil_with_weight(x, n, weight), expect, "x={x:#b} w={weight}");
            }
        }
    }

    #[test]
    fn fixed_weight_range_subranges_partition() {
        // Chunked iteration must reproduce the full iteration exactly.
        let n = 14u32;
        let w = 7u32;
        let full: Vec<u64> = FixedWeightRange::all(n, w).collect();
        let mut chunked = Vec::new();
        let total = 1u64 << n;
        let chunks = 13u64; // deliberately not a divisor
        for c in 0..chunks {
            let lo = c * total / chunks;
            let hi = (c + 1) * total / chunks;
            chunked.extend(FixedWeightRange::new(n, w, lo, hi));
        }
        assert_eq!(full, chunked);
    }

    #[test]
    fn rotate_and_reverse() {
        let x = 0b0000_1011u64;
        assert_eq!(rotate_low_bits(x, 8, 1), 0b0001_0110);
        assert_eq!(rotate_low_bits(x, 8, 8), x);
        assert_eq!(reverse_low_bits(x, 8), 0b1101_0000);
        assert_eq!(reverse_low_bits(reverse_low_bits(x, 8), 8), x);
        assert_eq!(flip_low_bits(x, 8), 0b1111_0100);
    }

    #[test]
    fn masks() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(64), u64::MAX);
        assert_eq!(max_with_weight(8, 3), 0b1110_0000);
        assert_eq!(min_with_weight(3), 0b111);
    }

    #[test]
    fn parity() {
        assert_eq!(parity_sign(0), 1.0);
        assert_eq!(parity_sign(0b1), -1.0);
        assert_eq!(parity_sign(0b11), 1.0);
        assert_eq!(parity_sign(u64::MAX), 1.0);
    }

    #[test]
    fn field_extract_deposit_roundtrip() {
        let mut x = 0u64;
        let codes = [2u64, 0, 3, 1, 2, 2, 0, 1];
        for (i, &c) in codes.iter().enumerate() {
            x = deposit_field(x, 2 * i as u32, 2, c);
        }
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(extract_field(x, 2 * i as u32, 2), c);
        }
        // Depositing over an existing field replaces it.
        let y = deposit_field(x, 4, 2, 1);
        assert_eq!(extract_field(y, 4, 2), 1);
        assert_eq!(extract_field(y, 2, 2), 0);
        assert_eq!(extract_field(y, 6, 2), 1);
    }

    #[test]
    fn field_sum_matches_manual() {
        assert_eq!(field_sum(0b10_01_11_00, 2, 4), 2 + 1 + 3);
        assert_eq!(field_sum(0b1011, 1, 4), 3);
        assert_eq!(field_sum(0b1011, 1, 2), 2);
        assert_eq!(field_sum(u64::MAX, 2, 32), 32 * 3);
        assert_eq!(field_sum(0, 2, 32), 0);
    }

    #[test]
    fn popcount_below_is_the_jw_count() {
        assert_eq!(popcount_below(0b1011, 0), 0);
        assert_eq!(popcount_below(0b1011, 1), 1);
        assert_eq!(popcount_below(0b1011, 2), 2);
        assert_eq!(popcount_below(0b1011, 3), 2);
        assert_eq!(popcount_below(0b1011, 4), 3);
        assert_eq!(popcount_below(u64::MAX, 64), 64);
    }
}
