//! Property-based tests for the kernel layer.

use ls_kernels::bits::{
    ceil_with_weight, low_mask, next_same_weight, reverse_low_bits, rotate_low_bits,
    FixedWeightRange,
};
use ls_kernels::combinadics::BinomialTable;
use ls_kernels::net::{apply_perm_naive, BenesNetwork};
use ls_kernels::search::PrefixIndex;
use ls_kernels::simd;
use ls_kernels::sort::{apply_perm, counting_sort_perm};
use ls_kernels::{hash64_01, locale_idx_of};
use proptest::prelude::*;

fn arb_perm(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn benes_matches_naive(n in 1usize..=64, seed in any::<u64>(), x in any::<u64>()) {
        // Derive a permutation from the seed deterministically.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            state = hash64_01(state.wrapping_add(i as u64));
            perm.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let net = BenesNetwork::new(&perm);
        prop_assert_eq!(net.apply(x), apply_perm_naive(&perm, x));
    }

    #[test]
    fn benes_is_bijective(perm in arb_perm(16), xs in proptest::collection::vec(any::<u64>(), 2)) {
        let net = BenesNetwork::new(&perm);
        let a = xs[0] & low_mask(16);
        let b = xs[1] & low_mask(16);
        if a != b {
            prop_assert_ne!(net.apply(a), net.apply(b));
        }
    }

    #[test]
    fn gosper_preserves_weight_and_grows(v in 1u64..u64::MAX) {
        if let Some(w) = next_same_weight(v) {
            prop_assert!(w > v);
            prop_assert_eq!(w.count_ones(), v.count_ones());
            // There is nothing with the same weight strictly between.
            // (Spot-check a few candidates rather than the full gap.)
            for d in 1..=3u64 {
                if v + d < w {
                    prop_assert_ne!((v + d).count_ones(), v.count_ones());
                }
            }
        }
    }

    #[test]
    fn ceil_with_weight_is_minimal(x in any::<u64>(), n in 1u32..=20, w in 0u32..=20) {
        prop_assume!(w <= n);
        let x = x & low_mask(n);
        match ceil_with_weight(x, n, w) {
            Some(y) => {
                prop_assert!(y >= x);
                prop_assert_eq!(y.count_ones(), w);
                prop_assert!(y <= low_mask(n));
                // Minimality: x..y contains nothing of weight w. Scanning the
                // whole gap can be huge; sample its ends.
                let gap = y - x;
                for d in 0..gap.min(64) {
                    prop_assert_ne!((x + d).count_ones(), w);
                }
            }
            None => {
                // No weight-w value at or above x below 2^n: the largest
                // weight-w value must be below x.
                let max_w = if w == 0 { 0 } else { low_mask(w) << (n - w) };
                prop_assert!(max_w < x || w > n);
            }
        }
    }

    #[test]
    fn rank_orders_like_integers(n in 2u32..=16, seed in any::<u64>()) {
        let w = (seed % (n as u64 + 1)) as u32;
        let t = BinomialTable::new();
        let states: Vec<u64> = FixedWeightRange::all(n, w).collect();
        for pair in states.windows(2) {
            prop_assert!(t.rank(pair[0]) < t.rank(pair[1]));
        }
    }

    #[test]
    fn unrank_inverts_rank(n in 2u32..=40, r in any::<u64>()) {
        let w = n / 2;
        let t = BinomialTable::new();
        let dim = t.choose(n, w);
        let r = r % dim;
        let s = t.unrank(r, n, w);
        prop_assert_eq!(t.rank(s), r);
        prop_assert_eq!(s.count_ones(), w);
    }

    #[test]
    fn rotation_composes(n in 1u32..=64, k1 in 0u32..64, k2 in 0u32..64, x in any::<u64>()) {
        let x = x & low_mask(n);
        let a = rotate_low_bits(rotate_low_bits(x, n, k1 % n), n, k2 % n);
        let b = rotate_low_bits(x, n, (k1 % n + k2 % n) % n);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn reverse_is_involution(n in 1u32..=64, x in any::<u64>()) {
        let x = x & low_mask(n);
        prop_assert_eq!(reverse_low_bits(reverse_low_bits(x, n), n), x);
    }

    #[test]
    fn locale_idx_in_range(s in any::<u64>(), l in 1usize..=4096) {
        prop_assert!(locale_idx_of(s, l) < l);
    }

    #[test]
    fn counting_sort_is_stable_permutation(
        keys in proptest::collection::vec(0u16..32, 0..500),
    ) {
        let mut perm = Vec::new();
        let mut offsets = Vec::new();
        counting_sort_perm(&keys, 32, &mut perm, &mut offsets);
        // perm is a permutation:
        let mut seen = vec![false; keys.len()];
        for &p in &perm {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        // output is grouped by key and stable:
        let vals: Vec<u64> = (0..keys.len() as u64).collect();
        let mut out = Vec::new();
        apply_perm(&perm, &vals, &mut out);
        let mut expect: Vec<(u16, u64)> = keys.iter().copied().zip(vals).collect();
        expect.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(out, expect.into_iter().map(|(_, v)| v).collect::<Vec<_>>());
    }

    #[test]
    fn prefix_index_agrees_with_binary_search(
        mut states in proptest::collection::vec(0u64..(1 << 20), 1..300),
        probes in proptest::collection::vec(0u64..(1 << 20), 50),
        bits in 1u32..=16,
    ) {
        states.sort_unstable();
        states.dedup();
        let idx = PrefixIndex::new(&states, 20, bits);
        for p in probes {
            prop_assert_eq!(idx.lookup(&states, p), states.binary_search(&p).ok());
        }
    }
}

// ---------------------------------------------------------------------------
// SIMD kernels vs their scalar twins: every dispatched kernel in
// `ls_kernels::simd` must be *bit-exact* against the scalar reference on
// random masks, encodings and batch lengths (including remainder lanes).
// On machines without AVX2 the dispatched path *is* the scalar twin and
// the assertions are trivially true — the CI x86-64 runners exercise the
// vector paths.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simd_charge_filter_matches_scalar(
        lo in any::<u64>(),
        span in 0u64..4096,
        charge_seeds in proptest::collection::vec(any::<u64>(), 0..3),
    ) {
        // Mask from the low bits, weight from the top 7 (0..=64).
        let charges: Vec<(u64, u32)> = charge_seeds
            .iter()
            .map(|&s| (s, (s >> 57) as u32 % 65))
            .collect();
        let hi = lo.saturating_add(span);
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        simd::filter_charge_masks(lo, hi, &charges, &mut fast);
        simd::filter_charge_masks_scalar(lo, hi, &charges, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn simd_field_sum_filter_matches_scalar(
        lo in any::<u64>(),
        span in 0u64..4096,
        width in 1u32..=2,
        n_fields in 1u32..=32,
        sum in 0u32..=96,
    ) {
        prop_assume!(width * n_fields <= 64);
        let hi = lo.saturating_add(span);
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        simd::filter_field_sum(lo, hi, width, n_fields, sum, &mut fast);
        simd::filter_field_sum_scalar(lo, hi, width, n_fields, sum, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn simd_extract_field_matches_scalar(
        words in proptest::collection::vec(any::<u64>(), 0..600),
        shift in 0u32..=63,
        width_seed in 1u32..=64,
    ) {
        let width = width_seed.min(64 - shift);
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        simd::extract_field_batch(&words, shift, width, &mut fast);
        simd::extract_field_batch_scalar(&words, shift, width, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn simd_prefix_search_block_ranks_bit_identically(
        mut states in proptest::collection::vec(any::<u64>(), 8..500),
        needles_seed in proptest::collection::vec(any::<u64>(), 8),
    ) {
        states.sort_unstable();
        states.dedup();
        // Mix of members (even seeds index into `states`) and arbitrary
        // probes (odd seeds used raw).
        let needles: Vec<u64> = needles_seed
            .iter()
            .map(|&raw| {
                if raw % 2 == 0 { states[(raw as usize / 2) % states.len()] } else { raw }
            })
            .collect();
        let needles: [u64; 8] = needles.try_into().unwrap();
        let mut lo = [0usize; 8];
        let mut hi = [states.len(); 8];
        const SENTINEL: u32 = 0xdead_beef;
        let mut out = [SENTINEL; 8];
        if simd::prefix_search_block(&states, &needles, &mut lo, &mut hi, &mut out) {
            // Found lanes carry the unique rank; absent lanes are left
            // untouched — exactly what the scalar lockstep loop does.
            for (l, &n) in needles.iter().enumerate() {
                match states.binary_search(&n) {
                    Ok(rank) => prop_assert_eq!(out[l], rank as u32, "lane {}", l),
                    Err(_) => prop_assert_eq!(out[l], SENTINEL, "lane {}", l),
                }
            }
        }
    }

    #[test]
    fn simd_accumulate_segment_matches_scalar(
        n_x in 1usize..300,
        n_y in 1usize..100,
        emits in proptest::collection::vec(any::<u64>(), 0..400),
        a_seed in any::<i32>(),
    ) {
        let a = a_seed as f64 * 2.0 / i32::MAX as f64;
        let x: Vec<f64> = (0..n_x).map(|i| (hash64_01(i as u64 + 7) >> 11) as f64 * 1e-16 - 0.4).collect();
        // Source index from the low half, destination from the high half.
        let emit: Vec<u64> = emits
            .iter()
            .map(|&e| ((e & 0xffff_ffff) % n_x as u64) | (((e >> 32) % n_y as u64) << 32))
            .collect();
        let mut fast = vec![0.125f64; n_y];
        let mut slow = fast.clone();
        simd::accumulate_segment_f64(&mut fast, &x, &emit, a);
        simd::accumulate_segment_f64_scalar(&mut slow, &x, &emit, a);
        for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
            prop_assert_eq!(f.to_bits(), s.to_bits(), "y[{}]", i);
        }
    }

    #[test]
    fn simd_f32_blas_matches_scalar_bitwise(
        xs_seed in proptest::collection::vec(any::<i32>(), 0..600),
        alpha_seed in any::<i32>(),
    ) {
        let alpha = alpha_seed as f64 * 2.0 / i32::MAX as f64;
        let xs: Vec<f32> = xs_seed.iter().map(|&v| v as f32 / i32::MAX as f32).collect();
        let ys: Vec<f32> = xs.iter().map(|&v| 0.5 - v * 0.25).collect();
        prop_assert_eq!(
            simd::dot_f32(&xs, &ys).to_bits(),
            simd::dot_f32_scalar(&xs, &ys).to_bits()
        );
        prop_assert_eq!(
            simd::norm_sqr_f32(&xs).to_bits(),
            simd::dot_f32_scalar(&xs, &xs).to_bits()
        );
        let mut ya = ys.clone();
        let mut yb = ys.clone();
        simd::axpy_f32(alpha, &xs, &mut ya);
        simd::axpy_f32_scalar(alpha, &xs, &mut yb);
        prop_assert_eq!(&ya, &yb);
        let mut fa = ys.clone();
        let mut fb = ys.clone();
        let na = simd::axpy_norm_sqr_f32(alpha, &xs, &mut fa);
        let nb = simd::axpy_norm_sqr_f32_scalar(alpha, &xs, &mut fb);
        prop_assert_eq!(na.to_bits(), nb.to_bits());
        prop_assert_eq!(&fa, &fb);
        // The fused update equals the unfused one elementwise.
        prop_assert_eq!(&fa, &ya);
        let mut sa = ys.clone();
        let mut sb = ys;
        simd::scale_f32(&mut sa, alpha);
        simd::scale_f32_scalar(&mut sb, alpha);
        prop_assert_eq!(sa, sb);
    }
}
