//! Property-based tests for the kernel layer.

use ls_kernels::bits::{
    ceil_with_weight, low_mask, next_same_weight, reverse_low_bits, rotate_low_bits,
    FixedWeightRange,
};
use ls_kernels::combinadics::BinomialTable;
use ls_kernels::net::{apply_perm_naive, BenesNetwork};
use ls_kernels::search::PrefixIndex;
use ls_kernels::sort::{apply_perm, counting_sort_perm};
use ls_kernels::{hash64_01, locale_idx_of};
use proptest::prelude::*;

fn arb_perm(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn benes_matches_naive(n in 1usize..=64, seed in any::<u64>(), x in any::<u64>()) {
        // Derive a permutation from the seed deterministically.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            state = hash64_01(state.wrapping_add(i as u64));
            perm.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let net = BenesNetwork::new(&perm);
        prop_assert_eq!(net.apply(x), apply_perm_naive(&perm, x));
    }

    #[test]
    fn benes_is_bijective(perm in arb_perm(16), xs in proptest::collection::vec(any::<u64>(), 2)) {
        let net = BenesNetwork::new(&perm);
        let a = xs[0] & low_mask(16);
        let b = xs[1] & low_mask(16);
        if a != b {
            prop_assert_ne!(net.apply(a), net.apply(b));
        }
    }

    #[test]
    fn gosper_preserves_weight_and_grows(v in 1u64..u64::MAX) {
        if let Some(w) = next_same_weight(v) {
            prop_assert!(w > v);
            prop_assert_eq!(w.count_ones(), v.count_ones());
            // There is nothing with the same weight strictly between.
            // (Spot-check a few candidates rather than the full gap.)
            for d in 1..=3u64 {
                if v + d < w {
                    prop_assert_ne!((v + d).count_ones(), v.count_ones());
                }
            }
        }
    }

    #[test]
    fn ceil_with_weight_is_minimal(x in any::<u64>(), n in 1u32..=20, w in 0u32..=20) {
        prop_assume!(w <= n);
        let x = x & low_mask(n);
        match ceil_with_weight(x, n, w) {
            Some(y) => {
                prop_assert!(y >= x);
                prop_assert_eq!(y.count_ones(), w);
                prop_assert!(y <= low_mask(n));
                // Minimality: x..y contains nothing of weight w. Scanning the
                // whole gap can be huge; sample its ends.
                let gap = y - x;
                for d in 0..gap.min(64) {
                    prop_assert_ne!((x + d).count_ones(), w);
                }
            }
            None => {
                // No weight-w value at or above x below 2^n: the largest
                // weight-w value must be below x.
                let max_w = if w == 0 { 0 } else { low_mask(w) << (n - w) };
                prop_assert!(max_w < x || w > n);
            }
        }
    }

    #[test]
    fn rank_orders_like_integers(n in 2u32..=16, seed in any::<u64>()) {
        let w = (seed % (n as u64 + 1)) as u32;
        let t = BinomialTable::new();
        let states: Vec<u64> = FixedWeightRange::all(n, w).collect();
        for pair in states.windows(2) {
            prop_assert!(t.rank(pair[0]) < t.rank(pair[1]));
        }
    }

    #[test]
    fn unrank_inverts_rank(n in 2u32..=40, r in any::<u64>()) {
        let w = n / 2;
        let t = BinomialTable::new();
        let dim = t.choose(n, w);
        let r = r % dim;
        let s = t.unrank(r, n, w);
        prop_assert_eq!(t.rank(s), r);
        prop_assert_eq!(s.count_ones(), w);
    }

    #[test]
    fn rotation_composes(n in 1u32..=64, k1 in 0u32..64, k2 in 0u32..64, x in any::<u64>()) {
        let x = x & low_mask(n);
        let a = rotate_low_bits(rotate_low_bits(x, n, k1 % n), n, k2 % n);
        let b = rotate_low_bits(x, n, (k1 % n + k2 % n) % n);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn reverse_is_involution(n in 1u32..=64, x in any::<u64>()) {
        let x = x & low_mask(n);
        prop_assert_eq!(reverse_low_bits(reverse_low_bits(x, n), n), x);
    }

    #[test]
    fn locale_idx_in_range(s in any::<u64>(), l in 1usize..=4096) {
        prop_assert!(locale_idx_of(s, l) < l);
    }

    #[test]
    fn counting_sort_is_stable_permutation(
        keys in proptest::collection::vec(0u16..32, 0..500),
    ) {
        let mut perm = Vec::new();
        let mut offsets = Vec::new();
        counting_sort_perm(&keys, 32, &mut perm, &mut offsets);
        // perm is a permutation:
        let mut seen = vec![false; keys.len()];
        for &p in &perm {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        // output is grouped by key and stable:
        let vals: Vec<u64> = (0..keys.len() as u64).collect();
        let mut out = Vec::new();
        apply_perm(&perm, &vals, &mut out);
        let mut expect: Vec<(u16, u64)> = keys.iter().copied().zip(vals).collect();
        expect.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(out, expect.into_iter().map(|(_, v)| v).collect::<Vec<_>>());
    }

    #[test]
    fn prefix_index_agrees_with_binary_search(
        mut states in proptest::collection::vec(0u64..(1 << 20), 1..300),
        probes in proptest::collection::vec(0u64..(1 << 20), 50),
        bits in 1u32..=16,
    ) {
        states.sort_unstable();
        states.dedup();
        let idx = PrefixIndex::new(&states, 20, bits);
        for p in probes {
            prop_assert_eq!(idx.lookup(&states, p), states.binary_search(&p).ok());
        }
    }
}
