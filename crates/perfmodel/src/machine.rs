//! Machine constants and primitive cost functions.

/// A simple LogGP-style machine description.
///
/// Times are seconds, bandwidths bytes/second. Per-core rates describe one
/// core of the modelled machine.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Cores per node (Snellius "thin": 128).
    pub cores_per_node: usize,
    /// Effective time of one Benes-network application inside the row
    /// kernel (amortized: includes channel bookkeeping).
    pub t_benes: f64,
    /// Time of one destination-side element: `stateToIndex` (prefix bucket
    /// + short binary search) plus the atomic accumulate.
    pub t_lookup: f64,
    /// Time to test one enumeration candidate (representative check with
    /// early exit).
    pub t_candidate: f64,
    /// Aggregate per-node memory bandwidth available to streaming
    /// passes (histogram/partition/merge) in bytes/s.
    pub mem_bw: f64,
    /// Per-message network latency (one-sided put/get initiation).
    pub alpha: f64,
    /// Peak per-node injection bandwidth.
    pub bw_peak: f64,
    /// Message size at which the effective bandwidth reaches half of
    /// peak (models the small-message penalty the paper discusses in
    /// Sec. 6.2).
    pub msg_half_size: f64,
    /// Fraction of communication time that is *not* hidden behind
    /// computation in the producer/consumer pipeline. Fitted once against
    /// the paper's measured 51× speedup (42 spins, 64 nodes); everything
    /// else is predicted.
    pub comm_exposure: f64,
}

impl MachineModel {
    /// Snellius constants with compute rates anchored to the paper's
    /// single-node measurements (see crate docs).
    pub fn snellius_paper_calibrated() -> Self {
        // Anchors (42 spins, dim = 3 204 236 779, 84 off-diagonal
        // channels, |G| = 168):
        //   producers: 424 s/core  => t_row = 424*128/dim = 16.94 µs
        //              t_benes = t_row / (84*168) = 1.20 ns
        //   consumers: 80 s/core   => t_lookup = 80*128/(dim*84) = 38.1 ns
        //   enumeration: 407.5 s on one node over C(42,21) candidates
        //              => t_candidate = 407.5*128/5.3826e11 = 96.9 ns
        Self {
            cores_per_node: 128,
            t_benes: 1.20e-9,
            t_lookup: 38.1e-9,
            t_candidate: 96.9e-9,
            mem_bw: 100e9,
            alpha: 2.0e-6,
            bw_peak: 12.5e9, // 100 Gb/s HDR100
            msg_half_size: 2048.0,
            comm_exposure: 0.30,
        }
    }

    /// Builds a model from a calibration of *this* machine's kernels
    /// (used to sanity-check that shapes are robust to the constants).
    pub fn from_calibration(c: &crate::calibrate::Calibration) -> Self {
        Self {
            cores_per_node: 128,
            t_benes: c.t_benes,
            t_lookup: c.t_lookup,
            t_candidate: c.t_candidate,
            mem_bw: c.memcpy_bw * 32.0, // single-core stream -> node estimate
            ..Self::snellius_paper_calibrated()
        }
    }

    /// Effective bandwidth for messages of `msg_bytes`:
    /// `bw_peak * m / (m + msg_half_size)`.
    pub fn eff_bandwidth(&self, msg_bytes: f64) -> f64 {
        let m = msg_bytes.max(1.0);
        self.bw_peak * m / (m + self.msg_half_size)
    }

    /// Time to move `total_bytes` from one node in messages of
    /// `msg_bytes`: latency per message plus the bandwidth term.
    pub fn transfer_time(&self, total_bytes: f64, msg_bytes: f64) -> f64 {
        if total_bytes <= 0.0 {
            return 0.0;
        }
        let msgs = (total_bytes / msg_bytes.max(1.0)).ceil();
        msgs * self.alpha + total_bytes / self.eff_bandwidth(msg_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_curve_saturates() {
        let m = MachineModel::snellius_paper_calibrated();
        assert!(m.eff_bandwidth(64.0) < 0.05 * m.bw_peak);
        assert!((m.eff_bandwidth(2048.0) - 0.5 * m.bw_peak).abs() < 1e-3 * m.bw_peak);
        assert!(m.eff_bandwidth((1u64 << 20) as f64) > 0.99 * m.bw_peak);
        // Monotone:
        let mut last = 0.0;
        for p in 0..24 {
            let bw = m.eff_bandwidth((1u64 << p) as f64);
            assert!(bw >= last);
            last = bw;
        }
    }

    #[test]
    fn transfer_time_components() {
        let m = MachineModel::snellius_paper_calibrated();
        // Tiny transfer: latency-dominated.
        let t_small = m.transfer_time(8.0, 8.0);
        assert!(t_small >= m.alpha);
        // Huge transfer in big messages: bandwidth-dominated.
        let t_big = m.transfer_time(1e9, 1e6);
        assert!((t_big - 1e9 / m.eff_bandwidth(1e6)).abs() / t_big < 0.05);
        assert_eq!(m.transfer_time(0.0, 1024.0), 0.0);
    }

    #[test]
    fn anchors_recovered() {
        // The constants must reproduce the paper's single-node numbers.
        let m = MachineModel::snellius_paper_calibrated();
        let dim = 3_204_236_779f64;
        let t_row = 84.0 * 168.0 * m.t_benes;
        let produce_per_core = dim * t_row / 128.0;
        assert!((produce_per_core - 424.0).abs() < 10.0, "{produce_per_core}");
        let consume_per_core = dim * 84.0 * m.t_lookup / 128.0;
        assert!((consume_per_core - 80.0).abs() < 3.0, "{consume_per_core}");
        let candidates = 538_257_874_440f64; // C(42, 21)
        let enum_1node = candidates * m.t_candidate / 128.0;
        assert!((enum_1node - 407.5).abs() < 10.0, "{enum_1node}");
    }
}
