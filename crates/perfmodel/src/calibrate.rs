//! Kernel calibration on the host machine.
//!
//! Measures the primitive rates of *this* build's kernels (Benes
//! application inside row generation, ranking lookups, representative
//! checks, streaming memory bandwidth). The resulting constants can be
//! swapped into the [`crate::MachineModel`] to confirm that the projected
//! scaling *shapes* do not depend on the paper-anchored constants.

use ls_basis::{SectorSpec, SpinBasis, SymmetrizedOperator};
use ls_expr::builders::heisenberg;
use ls_symmetry::lattice;
use std::time::Instant;

/// Measured single-core kernel rates.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// Effective seconds per Benes application in row generation.
    pub t_benes: f64,
    /// Seconds per ranking lookup (+ accumulate).
    pub t_lookup: f64,
    /// Seconds per enumeration candidate.
    pub t_candidate: f64,
    /// Streaming memcpy bandwidth of one core (bytes/s).
    pub memcpy_bw: f64,
}

/// Runs the calibration micro-benchmarks. `n` controls the model system
/// (chain length, default 24 is a good balance of realism and runtime).
pub fn calibrate(n: usize) -> Calibration {
    let bonds = lattice::chain_bonds(n);
    let kernel = heisenberg(&bonds, 1.0).to_kernel(n as u32).unwrap();
    let group = lattice::chain_group(n, 0, Some(0), Some(0)).unwrap();
    let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
    let basis = SpinBasis::build(sector.clone());
    let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();

    // Row generation rate -> t_benes.
    let sample = basis.dim().min(20_000);
    let mut row = Vec::with_capacity(op.max_row_entries());
    let mut sink = 0u64;
    let start = Instant::now();
    for j in 0..sample {
        row.clear();
        op.apply_off_diag(basis.state(j), basis.orbit_sizes()[j], &mut row);
        sink = sink.wrapping_add(row.len() as u64);
    }
    let t_row = start.elapsed().as_secs_f64() / sample as f64;
    let t_benes = t_row / (op.n_channels() as f64 * sector.group().order() as f64);

    // Ranking rate.
    let probes: Vec<u64> =
        (0..200_000).map(|i| basis.state((i * 7919) % basis.dim())).collect();
    let start = Instant::now();
    let mut found = 0usize;
    for &p in &probes {
        if basis.index_of(p).is_some() {
            found += 1;
        }
    }
    let t_lookup = start.elapsed().as_secs_f64() / probes.len() as f64;
    assert_eq!(found, probes.len());

    // Candidate-check rate (enumeration filter).
    let start = Instant::now();
    let chunk = ls_basis::enumerate::filter_range(&sector, 0, 1 << n);
    let t_candidate = start.elapsed().as_secs_f64()
        / ls_kernels::combinadics::BinomialTable::new().choose(n as u32, n as u32 / 2) as f64;
    std::hint::black_box(&chunk);

    // Streaming bandwidth.
    let buf = vec![1u64; 4 << 20];
    let mut dst = vec![0u64; 4 << 20];
    let start = Instant::now();
    let reps = 8;
    for _ in 0..reps {
        dst.copy_from_slice(&buf);
        std::hint::black_box(&dst);
    }
    let memcpy_bw = (reps * buf.len() * 8) as f64 / start.elapsed().as_secs_f64();

    std::hint::black_box(sink);
    Calibration { t_benes, t_lookup, t_candidate, memcpy_bw }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_sane_rates() {
        let c = calibrate(16);
        assert!(c.t_benes > 1e-11 && c.t_benes < 1e-5, "t_benes = {}", c.t_benes);
        assert!(c.t_lookup > 1e-9 && c.t_lookup < 1e-4);
        assert!(c.t_candidate > 1e-10 && c.t_candidate < 1e-3);
        assert!(c.memcpy_bw > 1e8, "memcpy {} B/s", c.memcpy_bw);
        // A model built from it behaves like a machine model.
        let m = crate::MachineModel::from_calibration(&c);
        assert!(m.eff_bandwidth(1e6) > 0.0);
    }
}
