//! Workload descriptions: exact operation counts for the paper's
//! benchmark Hamiltonians.

use ls_kernels::combinadics::BinomialTable;

/// A closed Heisenberg spin-1/2 chain in the paper's benchmark sector
/// (U(1) at half filling, momentum 0, reflection +1, spin inversion +1).
#[derive(Clone, Debug)]
pub struct ChainWorkload {
    pub n_spins: usize,
    /// Exact sector dimension (Burnside counting; matches Table 2).
    pub dim: f64,
    /// Off-diagonal scattering channels per row (2 per bond).
    pub channels: f64,
    /// Symmetry-group order |G| = 4N (dihedral × inversion).
    pub group_order: f64,
    /// Raw candidates enumerated by the basis construction
    /// (`C(N, N/2)` with Gosper iteration).
    pub candidates: f64,
}

impl ChainWorkload {
    pub fn new(n_spins: usize) -> Self {
        assert!(n_spins >= 4 && n_spins.is_multiple_of(2) && n_spins <= 64);
        let dim = ls_symmetry::count::table2_dimension(n_spins) as f64;
        let binom = BinomialTable::new();
        let candidates = binom.choose(n_spins as u32, n_spins as u32 / 2) as f64;
        Self {
            n_spins,
            dim,
            channels: 2.0 * n_spins as f64,
            group_order: 4.0 * n_spins as f64,
            candidates,
        }
    }

    /// Time to generate one row (all matrix elements of one source
    /// state) on one core: every generated state is resolved against the
    /// whole group.
    pub fn t_row(&self, m: &crate::MachineModel) -> f64 {
        self.channels * self.group_order * m.t_benes
    }

    /// Total `(state, coefficient)` pairs of one matrix-vector product.
    pub fn total_pairs(&self) -> f64 {
        self.dim * self.channels
    }

    /// Bytes on the wire per pair (u64 state + f64 coefficient).
    pub const BYTES_PER_PAIR: f64 = 16.0;

    /// Fraction of pairs whose destination is a different locale (uniform
    /// hashing).
    pub fn remote_fraction(nodes: usize) -> f64 {
        if nodes <= 1 {
            0.0
        } else {
            1.0 - 1.0 / nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_dimensions() {
        assert_eq!(ChainWorkload::new(40).dim, 861_725_794.0);
        assert_eq!(ChainWorkload::new(42).dim, 3_204_236_779.0);
        assert_eq!(ChainWorkload::new(44).dim, 11_955_836_258.0);
        assert_eq!(ChainWorkload::new(46).dim, 44_748_176_653.0);
        assert_eq!(ChainWorkload::new(48).dim, 167_959_144_032.0);
    }

    #[test]
    fn chain_structure() {
        let w = ChainWorkload::new(40);
        assert_eq!(w.channels, 80.0);
        assert_eq!(w.group_order, 160.0);
        assert_eq!(w.candidates, 137_846_528_820.0);
        assert_eq!(ChainWorkload::remote_fraction(1), 0.0);
        assert!((ChainWorkload::remote_fraction(4) - 0.75).abs() < 1e-12);
    }
}
