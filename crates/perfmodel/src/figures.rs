//! Per-figure projections.
//!
//! Each function returns the series a figure plots (node count vs seconds
//! or speedup). The bench harness prints these next to the paper's
//! reported/der derived reference values.

use crate::machine::MachineModel;
use crate::workload::ChainWorkload;

/// One point of a scaling series.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Point {
    pub nodes: usize,
    pub value: f64,
}

/// Producer/consumer split used by the paper (104 + 24 of 128 cores).
#[derive(Copy, Clone, Debug)]
pub struct CoreSplit {
    pub producers: usize,
    pub consumers: usize,
}

impl Default for CoreSplit {
    fn default() -> Self {
        Self { producers: 104, consumers: 24 }
    }
}

// --------------------------------------------------------------------
// Fig. 8 / Fig. 9: matrix-vector product
// --------------------------------------------------------------------

/// Wall time of one producer/consumer matvec on `nodes` nodes.
///
/// Single node: no split (every core both produces and consumes, as in
/// the paper's single-node reference). Multi-node: the strict split makes
/// the slower side the bottleneck, plus the exposed (non-overlapped)
/// fraction of communication.
pub fn matvec_pc_time(
    m: &MachineModel,
    w: &ChainWorkload,
    nodes: usize,
    split: CoreSplit,
    buffer_bytes: f64,
) -> f64 {
    let produce_work = w.dim * w.t_row(m); // core-seconds
    let consume_work = w.total_pairs() * m.t_lookup; // core-seconds
    if nodes <= 1 {
        return (produce_work + consume_work) / m.cores_per_node as f64;
    }
    let n = nodes as f64;
    // Per-node wire traffic of the pipeline.
    let bytes_per_node =
        w.total_pairs() * ChainWorkload::BYTES_PER_PAIR * ChainWorkload::remote_fraction(nodes)
            / n;
    // Message initiation is a per-core cost paid by the producers (the
    // sends are pipelined across cores, not serialized on the wire).
    let msgs_per_node = bytes_per_node / buffer_bytes;
    let t_produce = produce_work / (n * split.producers as f64)
        + msgs_per_node * m.alpha / split.producers as f64;
    let t_consume = consume_work / (n * split.consumers as f64);
    let t_wire = bytes_per_node / m.eff_bandwidth(buffer_bytes);
    t_produce.max(t_consume) + m.comm_exposure * t_wire
}

/// Fig. 8a/8b: strong-scaling speedups, normalized to `base_nodes`.
pub fn fig8_speedups(
    m: &MachineModel,
    n_spins: usize,
    node_counts: &[usize],
    base_nodes: usize,
    split: CoreSplit,
) -> Vec<Point> {
    let w = ChainWorkload::new(n_spins);
    let buffer = 16.0 * 1024.0;
    let t_base = matvec_pc_time(m, &w, base_nodes, split, buffer);
    node_counts
        .iter()
        .map(|&nodes| Point {
            nodes,
            value: t_base / matvec_pc_time(m, &w, nodes, split, buffer),
        })
        .collect()
}

/// The paper's single-node producer/consumer second breakdown (Sec. 6.3):
/// returns (seconds per producing core, seconds per consuming core) for a
/// given node count and split.
pub fn matvec_core_breakdown(
    m: &MachineModel,
    n_spins: usize,
    nodes: usize,
    split: CoreSplit,
) -> (f64, f64) {
    let w = ChainWorkload::new(n_spins);
    let n = nodes as f64;
    (
        w.dim * w.t_row(m) / (n * split.producers as f64),
        w.total_pairs() * m.t_lookup / (n * split.consumers as f64),
    )
}

/// SPINPACK-like bulk-synchronous matvec time (Fig. 9's baseline).
///
/// Three modelled differences, per the paper's discussion and measured
/// anchors:
/// 1. ≈2× slower single-node kernels (the paper measures LS 2× faster on
///    one node);
/// 2. no communication/computation overlap — the exchange is serialized
///    after the generation phase;
/// 3. the pure-MPI `alltoallv` (one rank per core, `128·L` ranks) loses
///    effective bandwidth as the node count grows: more, smaller
///    messages, plus the synchronizing nature of the collective. We model
///    the per-node effective exchange bandwidth as
///    `bw_peak / (1 + L/3)`, calibrated so that the measured 7–8× gap at
///    32 nodes *and* the ≈3× gap at 4 nodes are both reproduced; the
///    qualitative consequence — SPINPACK's exchange time stays roughly
///    constant under strong scaling, flattening its speedup curve — is
///    exactly the behaviour Fig. 9 shows.
pub fn matvec_spinpack_time(m: &MachineModel, w: &ChainWorkload, nodes: usize) -> f64 {
    let kernel_factor = 2.0;
    let compute_work = kernel_factor * (w.dim * w.t_row(m) + w.total_pairs() * m.t_lookup);
    let t_compute = compute_work / (nodes as f64 * m.cores_per_node as f64);
    if nodes <= 1 {
        return t_compute;
    }
    let n = nodes as f64;
    let bytes_per_node =
        w.total_pairs() * ChainWorkload::BYTES_PER_PAIR * ChainWorkload::remote_fraction(nodes)
            / n;
    let collective_bw = m.bw_peak / (1.0 + n / 3.0);
    let t_comm = bytes_per_node / collective_bw;
    // No overlap: compute + full exchange, serialized.
    t_compute + t_comm
}

/// Fig. 9: speedup over the *fastest single-node LS run* for both codes.
pub fn fig9_series(
    m: &MachineModel,
    n_spins: usize,
    node_counts: &[usize],
) -> (Vec<Point>, Vec<Point>) {
    let w = ChainWorkload::new(n_spins);
    let buffer = 16.0 * 1024.0;
    let t1_ls = matvec_pc_time(m, &w, 1, CoreSplit::default(), buffer);
    let ls = node_counts
        .iter()
        .map(|&nodes| Point {
            nodes,
            value: t1_ls / matvec_pc_time(m, &w, nodes, CoreSplit::default(), buffer),
        })
        .collect();
    let sp = node_counts
        .iter()
        .map(|&nodes| Point { nodes, value: t1_ls / matvec_spinpack_time(m, &w, nodes) })
        .collect();
    (ls, sp)
}

// --------------------------------------------------------------------
// Fig. 7: basis construction
// --------------------------------------------------------------------

/// Wall time of the distributed states enumeration on `nodes` nodes.
///
/// Filter phase: perfectly parallel over candidates. Distribution phase:
/// the paper's message-size analysis — `chunks = nodes·cores·25`, so each
/// chunk sends `dim/(chunks·nodes)` elements per destination, and small
/// systems hit the small-message regime at high node counts.
pub fn enumeration_time(m: &MachineModel, w: &ChainWorkload, nodes: usize) -> f64 {
    let n = nodes as f64;
    let cores = m.cores_per_node as f64;
    let t_filter = w.candidates * m.t_candidate / (n * cores);
    if nodes <= 1 {
        return t_filter;
    }
    let chunks = n * cores * 25.0;
    let elems_per_chunk = w.dim / chunks;
    let msg_bytes = (elems_per_chunk / n * 8.0).max(8.0);
    let bytes_per_node = w.dim / n * 8.0 * ChainWorkload::remote_fraction(nodes);
    let t_dist = m.transfer_time(bytes_per_node, msg_bytes);
    t_filter + t_dist
}

/// Fig. 7: strong-scaling speedup of basis construction over one node.
pub fn fig7_speedups(m: &MachineModel, n_spins: usize, node_counts: &[usize]) -> Vec<Point> {
    let w = ChainWorkload::new(n_spins);
    let t1 = enumeration_time(m, &w, 1);
    node_counts
        .iter()
        .map(|&nodes| Point { nodes, value: t1 / enumeration_time(m, &w, nodes) })
        .collect()
}

// --------------------------------------------------------------------
// Fig. 6: block <-> hashed conversion
// --------------------------------------------------------------------

/// Wall time of one conversion (either direction — the cost structure is
/// symmetric: streaming passes locally plus the remote transfer).
pub fn conversion_time(m: &MachineModel, w: &ChainWorkload, nodes: usize) -> f64 {
    let n = nodes as f64;
    let bytes_local = w.dim / n * 8.0;
    // Histogram pass over the masks + partition/merge pass over the data.
    let t_local = (bytes_local * 2.5) / m.mem_bw;
    if nodes <= 1 {
        return t_local;
    }
    let chunks_per_node = m.cores_per_node as f64 * 25.0;
    let msg_bytes = (bytes_local / chunks_per_node / n).max(8.0);
    let t_net = m.transfer_time(bytes_local * ChainWorkload::remote_fraction(nodes), msg_bytes);
    t_local + t_net
}

/// Fig. 6: absolute conversion times.
pub fn fig6_times(m: &MachineModel, n_spins: usize, node_counts: &[usize]) -> Vec<Point> {
    let w = ChainWorkload::new(n_spins);
    node_counts
        .iter()
        .map(|&nodes| Point { nodes, value: conversion_time(m, &w, nodes) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MachineModel {
        MachineModel::snellius_paper_calibrated()
    }

    #[test]
    fn single_node_anchor_42_spins() {
        // Paper: fastest single-node LS matvec for 42 spins: 509.6 s
        // (Fig. 9 caption); the model's T1 = produce + consume work.
        let w = ChainWorkload::new(42);
        let t1 = matvec_pc_time(&model(), &w, 1, CoreSplit::default(), 16384.0);
        assert!((t1 - 504.0).abs() < 15.0, "T1 = {t1}");
    }

    #[test]
    fn paper_breakdown_at_64_nodes() {
        // Paper Sec. 6.3: at 64 nodes each producer spends ≈8.2 s in
        // getManyRows.
        let (p, c) = matvec_core_breakdown(&model(), 42, 64, CoreSplit::default());
        assert!((p - 8.2).abs() < 0.5, "producer time {p}");
        assert!(c < p, "consumers must not dominate: {c} vs {p}");
    }

    #[test]
    fn fig8a_speedup_in_papers_range() {
        // Paper: ≈51× for 42 spins at 64 nodes (vs ideal 64). The model
        // must land in that regime (sub-ideal, > 40).
        let s = fig8_speedups(&model(), 42, &[64], 1, CoreSplit::default());
        assert!(s[0].value > 42.0 && s[0].value < 60.0, "speedup {}", s[0].value);
        // 40 spins scale slightly worse at fixed nodes (smaller problem).
        let s40 = fig8_speedups(&model(), 40, &[64], 1, CoreSplit::default());
        assert!(s40[0].value <= s[0].value + 1.0);
    }

    #[test]
    fn fig8b_large_systems() {
        // 44 spins: 47× going 4 -> 256 nodes (ideal 64); we accept the
        // 40..64 band. 46 spins: 12× going 16 -> 256 (ideal 16); band
        // 10..16.
        let s44 = fig8_speedups(&model(), 44, &[256], 4, CoreSplit::default());
        assert!(s44[0].value > 40.0 && s44[0].value < 64.0, "44 spins: {}", s44[0].value);
        let s46 = fig8_speedups(&model(), 46, &[256], 16, CoreSplit::default());
        assert!(s46[0].value > 10.0 && s46[0].value <= 16.0, "46 spins: {}", s46[0].value);
    }

    #[test]
    fn fig9_ratio_grows_to_7x() {
        let (ls, sp) = fig9_series(&model(), 42, &[1, 32]);
        // Single node: LS is ~2x faster (the kernel factor).
        let r1 = ls[0].value / sp[0].value;
        assert!((r1 - 2.0).abs() < 0.2, "single-node ratio {r1}");
        // 32 nodes: paper reports 7-8x.
        let r32 = ls[1].value / sp[1].value;
        assert!(r32 > 5.5 && r32 < 10.0, "32-node ratio {r32}");
    }

    #[test]
    fn fig7_saturation_ordering() {
        // Paper: near-perfect scaling to 16 nodes; at 32 nodes the
        // 40-spin system saturates while 42 spins stays close to ideal.
        let m = model();
        let s40 = fig7_speedups(&m, 40, &[16, 32]);
        let s42 = fig7_speedups(&m, 42, &[16, 32]);
        assert!(s40[0].value > 13.0, "40 spins @16: {}", s40[0].value);
        assert!(s42[0].value > 14.0, "42 spins @16: {}", s42[0].value);
        // Saturation: 40 spins loses clearly more at 32 nodes.
        let eff40 = s40[1].value / 32.0;
        let eff42 = s42[1].value / 32.0;
        assert!(eff40 < eff42 - 0.03, "40 spins should saturate first: {eff40} vs {eff42}");
        // Single-node anchors: 102.1 s and 407.5 s.
        let t40 = enumeration_time(&m, &ChainWorkload::new(40), 1);
        assert!((t40 - 102.1).abs() < 5.0, "{t40}");
    }

    #[test]
    fn fig6_under_a_second_beyond_4_locales() {
        // Paper Sec. 6.1: for > 4 locales both conversions complete well
        // under a second.
        let m = model();
        for n_spins in [40usize, 42] {
            for nodes in [8usize, 16, 32] {
                let t = conversion_time(&m, &ChainWorkload::new(n_spins), nodes);
                assert!(t < 1.0, "{n_spins} spins on {nodes} nodes: {t} s");
            }
        }
        // And the single-node time is larger than the 8-node time.
        let w = ChainWorkload::new(42);
        assert!(conversion_time(&m, &w, 1) > conversion_time(&m, &w, 8));
    }

    #[test]
    fn matvec_time_decreases_with_nodes() {
        let m = model();
        let w = ChainWorkload::new(44);
        let mut last = f64::INFINITY;
        for nodes in [4usize, 8, 16, 32, 64, 128, 256] {
            let t = matvec_pc_time(&m, &w, nodes, CoreSplit::default(), 16384.0);
            assert!(t < last, "non-monotonic at {nodes}");
            last = t;
        }
    }
}
