//! # ls-perfmodel
//!
//! An analytic (LogGP-flavoured) performance model that projects the
//! paper's cluster-scale experiments from exact operation counts.
//!
//! ## Why a model
//!
//! The paper's evaluation ran on 1–256 nodes of the Snellius supercomputer
//! (128 cores/node, 100 Gb/s InfiniBand). This reproduction executes the
//! *algorithms* faithfully on a simulated PGAS runtime, but cannot run
//! 32768 cores; the wall-clock *scaling* figures are therefore produced by
//! this model, fed with
//!
//! 1. **exact operation counts** — rows generated, `stateToIndex` lookups,
//!    bytes moved, message sizes — which are closed-form functions of the
//!    Hamiltonian, the sector dimension (known exactly via Burnside
//!    counting) and the locale count; these are cross-checked against the
//!    instrumented counts of small-scale real executions;
//! 2. **machine constants** anchored to the paper's own single-node
//!    measurements (42 spins: 424 s/core producing, 80 s/core consuming,
//!    509.6 s total; 40/42-spin basis construction: 102.1 s / 407.5 s) and
//!    Snellius's published network parameters.
//!
//! The model reproduces the paper's qualitative results — near-linear
//! matvec scaling to 64 nodes with the producer/consumer imbalance
//! capping 42 spins at ≈51×, the 40-spin enumeration saturation caused by
//! ≈2 KB messages, and the 7–8× advantage over the `alltoallv` baseline
//! at 32 nodes — from first principles plus one fitted overlap
//! coefficient (see [`machine::MachineModel::comm_exposure`]).

pub mod calibrate;
pub mod figures;
pub mod machine;
pub mod workload;

pub use machine::MachineModel;
pub use workload::ChainWorkload;
