//! The bulk-synchronous (SPINPACK-style) matrix-vector product.

use crate::collective::alltoallv;
use ls_basis::SymmetrizedOperator;
use ls_dist::DistSpinBasis;
use ls_kernels::Scalar;
use ls_runtime::{Cluster, DistVec};

/// `y = H x` with full materialization and a collective exchange.
///
/// Phase structure (no overlap anywhere):
/// generate → barrier → alltoallv → barrier → accumulate.
pub fn matvec_alltoall<S: Scalar>(
    cluster: &Cluster,
    op: &SymmetrizedOperator<S>,
    basis: &DistSpinBasis,
    x: &DistVec<S>,
    y: &mut DistVec<S>,
) {
    let locales = cluster.n_locales();
    assert_eq!(x.n_locales(), locales);
    assert_eq!(y.n_locales(), locales);
    for l in 0..locales {
        assert_eq!(x.part(l).len(), basis.local_dim(l));
        assert_eq!(y.part(l).len(), basis.local_dim(l));
    }

    // Phase 1: generate everything. The per-locale buckets hold the whole
    // outgoing volume at once — the memory high-water mark SPINPACK pays.
    let buckets: Vec<Vec<Vec<(u64, S)>>> = cluster.run(|ctx| {
        let me = ctx.locale();
        let states = basis.states().part(me);
        let orbits = basis.orbit_sizes().part(me);
        let x_local = x.part(me);
        let mut out: Vec<Vec<(u64, S)>> = vec![Vec::new(); locales];
        let mut row = Vec::with_capacity(op.max_row_entries());
        for (j, (&alpha, &orbit)) in states.iter().zip(orbits).enumerate() {
            // Diagonal contribution is local; buffer it with the rest so
            // the accumulate phase is uniform.
            let d = op.diagonal(alpha);
            if d != S::ZERO {
                out[me].push((alpha, d * x_local[j]));
            }
            row.clear();
            op.apply_off_diag(alpha, orbit, &mut row);
            for &(rep, amp) in &row {
                let dest = ls_kernels::locale_idx_of(rep, locales);
                out[dest].push((rep, amp * x_local[j]));
            }
        }
        ctx.barrier_wait();
        out
    });

    // Phases 2-4: collective exchange (synchronizing).
    let received = alltoallv(cluster, &buckets);

    // Phase 5: rank + accumulate, purely local, no overlap with comm.
    // Ranking runs through the bulk kernel — even the bulk-synchronous
    // baseline benefits from interleaved lookups once the data is local.
    let y_parts: Vec<Vec<S>> = cluster.run(|ctx| {
        let me = ctx.locale();
        let mut y_local = vec![S::ZERO; basis.local_dim(me)];
        let pairs = received.part(me);
        let needles: Vec<u64> = pairs.iter().map(|&(s, _)| s).collect();
        let mut idx = Vec::new();
        basis.index_on_batch(me, &needles, &mut idx);
        for (&(rep, coeff), &i) in pairs.iter().zip(&idx) {
            let i = if i != ls_kernels::search::NOT_FOUND {
                i as usize
            } else {
                basis.index_on_present(me, rep)
            };
            y_local[i] += coeff;
        }
        ctx.barrier_wait();
        y_local
    });
    for (l, part) in y_parts.into_iter().enumerate() {
        *y.part_mut(l) = part;
    }
}

/// Peak number of buffered `(state, coefficient)` pairs per locale for a
/// given basis — the baseline's memory overhead (reported in the
/// experiment harness).
pub fn peak_buffered_pairs<S: Scalar>(
    op: &SymmetrizedOperator<S>,
    basis: &DistSpinBasis,
) -> Vec<usize> {
    (0..basis.n_locales()).map(|l| basis.local_dim(l) * (op.max_row_entries() + 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls_basis::SectorSpec;
    use ls_dist::enumerate_dist;
    use ls_dist::matvec::{matvec_naive, matvec_pc, PcOptions};
    use ls_expr::builders::heisenberg;
    use ls_runtime::ClusterSpec;
    use ls_symmetry::lattice;

    fn setup(
        n: usize,
        locales: usize,
    ) -> (Cluster, SymmetrizedOperator<f64>, DistSpinBasis, DistVec<f64>) {
        let group = lattice::chain_group(n, 0, Some(0), Some(0)).unwrap();
        let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
        let kernel = heisenberg(&lattice::chain_bonds(n), 1.0).to_kernel(n as u32).unwrap();
        let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();
        let cluster = Cluster::new(ClusterSpec::new(locales, 1));
        let basis = enumerate_dist(&cluster, &sector, 3);
        let mut x = DistVec::<f64>::zeros(&basis.states().lens());
        for l in 0..locales {
            for (i, s) in basis.states().part(l).iter().enumerate() {
                x.part_mut(l)[i] = ((*s as f64) * 0.21).sin() - 0.3;
            }
        }
        (cluster, op, basis, x)
    }

    #[test]
    fn agrees_with_async_implementations() {
        for locales in [1usize, 2, 4] {
            let (cluster, op, basis, x) = setup(12, locales);
            let lens = basis.states().lens();
            let mut y_base = DistVec::<f64>::zeros(&lens);
            matvec_alltoall(&cluster, &op, &basis, &x, &mut y_base);
            let mut y_naive = DistVec::<f64>::zeros(&lens);
            matvec_naive(&cluster, &op, &basis, &x, &mut y_naive);
            let mut y_pc = DistVec::<f64>::zeros(&lens);
            matvec_pc(&cluster, &op, &basis, &x, &mut y_pc, PcOptions::default());
            for l in 0..locales {
                for ((base, naive), pc) in
                    y_base.part(l).iter().zip(y_naive.part(l)).zip(y_pc.part(l))
                {
                    assert!((base - naive).abs() < 1e-11);
                    assert!((base - pc).abs() < 1e-11);
                }
            }
        }
    }

    #[test]
    fn is_bulk_synchronous() {
        let (cluster, op, basis, x) = setup(10, 3);
        let mut y = DistVec::<f64>::zeros(&basis.states().lens());
        cluster.reset_stats();
        matvec_alltoall(&cluster, &op, &basis, &x, &mut y);
        let s = cluster.stats_total();
        // Barriers: generate (1/locale) + alltoallv (2/locale) +
        // accumulate (1/locale) + allreduce-free = 4 per locale.
        assert_eq!(s.barriers, 4 * 3);
        assert!(s.puts > 0);
    }

    #[test]
    fn memory_estimate_reported() {
        let (_, op, basis, _) = setup(10, 2);
        let peaks = peak_buffered_pairs(&op, &basis);
        assert_eq!(peaks.len(), 2);
        for (l, &p) in peaks.iter().enumerate() {
            assert!(p >= basis.local_dim(l));
        }
    }
}
