//! A stored-matrix (distributed CSR-like) baseline.
//!
//! SPINPACK can precompute and store matrix structure; the paper's Sec. 2
//! explains why matrix-free wins at scale — storage costs a factor
//! `O(N)` in memory. This variant makes the trade-off measurable: row
//! generation and ranking happen once at build time, after which each
//! product only streams the stored triples and exchanges coefficients.

use crate::collective::alltoallv;
use ls_basis::SymmetrizedOperator;
use ls_dist::DistSpinBasis;
use ls_kernels::Scalar;
use ls_runtime::{Cluster, DistVec};

/// One stored matrix entry: destination locale and *pre-ranked* index.
#[derive(Copy, Clone, Debug, Default)]
struct Entry<S> {
    dest_locale: u32,
    dest_index: u32,
    coeff: S,
}

/// One locale's build output: row pointers, entries, diagonal.
type LocalPart<S> = (Vec<u32>, Vec<Entry<S>>, Vec<S>);

/// A distributed, fully materialized (transposed) sparse matrix.
pub struct StoredMatrix<S: Scalar> {
    /// Per source locale: CSR-ish row pointers over the local columns.
    row_ptr: Vec<Vec<u32>>,
    entries: Vec<Vec<Entry<S>>>,
    /// Per source locale: diagonal values.
    diag: Vec<Vec<S>>,
}

impl<S: Scalar> StoredMatrix<S> {
    /// Generates and ranks every matrix element once.
    pub fn build(
        cluster: &Cluster,
        op: &SymmetrizedOperator<S>,
        basis: &DistSpinBasis,
    ) -> Self {
        let locales = cluster.n_locales();
        let parts: Vec<LocalPart<S>> = cluster.run(|ctx| {
            let me = ctx.locale();
            let states = basis.states().part(me);
            let orbits = basis.orbit_sizes().part(me);
            let mut row_ptr = Vec::with_capacity(states.len() + 1);
            let mut entries = Vec::new();
            let mut diag = Vec::with_capacity(states.len());
            let mut row = Vec::with_capacity(op.max_row_entries());
            row_ptr.push(0u32);
            for (&alpha, &orbit) in states.iter().zip(orbits) {
                diag.push(op.diagonal(alpha));
                row.clear();
                op.apply_off_diag(alpha, orbit, &mut row);
                for &(rep, amp) in &row {
                    let dest = ls_kernels::locale_idx_of(rep, locales);
                    let idx = basis.index_on(dest, rep).expect("state missing from the basis");
                    entries.push(Entry {
                        dest_locale: dest as u32,
                        dest_index: idx as u32,
                        coeff: amp,
                    });
                }
                row_ptr.push(entries.len() as u32);
            }
            (row_ptr, entries, diag)
        });
        let mut row_ptr = Vec::with_capacity(locales);
        let mut entries = Vec::with_capacity(locales);
        let mut diag = Vec::with_capacity(locales);
        for (r, e, d) in parts {
            row_ptr.push(r);
            entries.push(e);
            diag.push(d);
        }
        Self { row_ptr, entries, diag }
    }

    /// Stored entries per locale (the memory the matrix-free form avoids).
    pub fn stored_entries(&self) -> Vec<usize> {
        self.entries.iter().map(|e| e.len()).collect()
    }

    /// Bytes per locale for the stored representation.
    pub fn memory_bytes(&self) -> Vec<usize> {
        self.entries
            .iter()
            .zip(&self.row_ptr)
            .zip(&self.diag)
            .map(|((e, r), d)| {
                e.len() * std::mem::size_of::<Entry<S>>()
                    + r.len() * 4
                    + d.len() * std::mem::size_of::<S>()
            })
            .collect()
    }

    /// `y = H x`, bulk-synchronous, using the stored structure (no row
    /// generation, no ranking — only the exchange and the adds remain).
    pub fn apply(&self, cluster: &Cluster, x: &DistVec<S>, y: &mut DistVec<S>) {
        let locales = cluster.n_locales();
        // Phase 1: form outgoing (dest_index, value) pairs.
        let buckets: Vec<Vec<Vec<(u32, S)>>> = cluster.run(|ctx| {
            let me = ctx.locale();
            let x_local = x.part(me);
            let mut out: Vec<Vec<(u32, S)>> = vec![Vec::new(); locales];
            let row_ptr = &self.row_ptr[me];
            let entries = &self.entries[me];
            for j in 0..x_local.len() {
                let d = self.diag[me][j];
                if d != S::ZERO {
                    out[me].push((j as u32, d * x_local[j]));
                }
                for e in &entries[row_ptr[j] as usize..row_ptr[j + 1] as usize] {
                    out[e.dest_locale as usize].push((e.dest_index, e.coeff * x_local[j]));
                }
            }
            ctx.barrier_wait();
            out
        });
        let received = alltoallv(cluster, &buckets);
        let y_parts: Vec<Vec<S>> = cluster.run(|ctx| {
            let me = ctx.locale();
            let mut y_local = vec![S::ZERO; x.part(me).len()];
            for &(i, v) in received.part(me) {
                y_local[i as usize] += v;
            }
            ctx.barrier_wait();
            y_local
        });
        for (l, part) in y_parts.into_iter().enumerate() {
            *y.part_mut(l) = part;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matvec::matvec_alltoall;
    use ls_basis::SectorSpec;
    use ls_dist::enumerate_dist;
    use ls_expr::builders::heisenberg;
    use ls_runtime::ClusterSpec;
    use ls_symmetry::lattice;

    #[test]
    fn stored_equals_matrix_free() {
        let n = 12usize;
        let group = lattice::chain_group(n, 0, None, Some(0)).unwrap();
        let sector = SectorSpec::new(n as u32, Some(6), group).unwrap();
        let kernel = heisenberg(&lattice::chain_bonds(n), 1.0).to_kernel(n as u32).unwrap();
        let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();
        let locales = 3;
        let cluster = Cluster::new(ClusterSpec::new(locales, 1));
        let basis = enumerate_dist(&cluster, &sector, 3);
        let stored = StoredMatrix::build(&cluster, &op, &basis);
        let mut x = DistVec::<f64>::zeros(&basis.states().lens());
        for l in 0..locales {
            for (i, _) in basis.states().part(l).iter().enumerate() {
                x.part_mut(l)[i] = (i as f64 + l as f64 * 0.5).cos();
            }
        }
        let lens = basis.states().lens();
        let mut y_stored = DistVec::<f64>::zeros(&lens);
        stored.apply(&cluster, &x, &mut y_stored);
        let mut y_free = DistVec::<f64>::zeros(&lens);
        matvec_alltoall(&cluster, &op, &basis, &x, &mut y_free);
        for l in 0..locales {
            for (a, b) in y_stored.part(l).iter().zip(y_free.part(l)) {
                assert!((a - b).abs() < 1e-11);
            }
        }
        // Memory accounting is non-trivial:
        let mem = stored.memory_bytes();
        assert!(mem.iter().all(|&m| m > 0));
        let entries: usize = stored.stored_entries().iter().sum();
        assert!(entries > 0);
    }
}
