//! Emulated MPI collectives over the simulated runtime.

use ls_runtime::{Cluster, DistVec, RmaWriteWindow};

/// `MPI_Alltoallv`: every locale contributes `send[me][dest]` (a bucket
/// per destination); the result gives each locale the concatenation of
/// what everyone sent to it, ordered by source locale.
///
/// The count exchange (`MPI_Alltoall` of sizes) and the data exchange are
/// both recorded in the communication statistics; two barriers model the
/// collective's synchronizing nature.
pub fn alltoallv<T: Copy + Send + Sync + Default>(
    cluster: &Cluster,
    send: &[Vec<Vec<T>>],
) -> DistVec<T> {
    let locales = cluster.n_locales();
    assert_eq!(send.len(), locales);
    for (l, buckets) in send.iter().enumerate() {
        assert_eq!(buckets.len(), locales, "locale {l} bucket count");
    }
    // Count exchange: locale src tells locale dst how much is coming.
    let counts: Vec<Vec<usize>> =
        (0..locales).map(|src| send[src].iter().map(|b| b.len()).collect()).collect();
    for l in 0..locales {
        cluster.stats()[l].record_put(locales * 8, locales > 1);
    }
    // Receive layout: on locale dst, data from src starts at
    // Σ_{s<src} counts[s][dst].
    let mut recv_offsets = vec![vec![0usize; locales]; locales]; // [src][dst]
    let mut recv_sizes = vec![0usize; locales];
    for dst in 0..locales {
        let mut acc = 0usize;
        for src in 0..locales {
            recv_offsets[src][dst] = acc;
            acc += counts[src][dst];
        }
        recv_sizes[dst] = acc;
    }
    let mut recv = DistVec::<T>::zeros(&recv_sizes);
    {
        let win = RmaWriteWindow::new(&mut recv);
        cluster.run(|ctx| {
            let me = ctx.locale();
            // Synchronize entry (collectives are synchronizing).
            ctx.barrier_wait();
            for dst in 0..locales {
                let bucket = &send[me][dst];
                if !bucket.is_empty() {
                    win.put(ctx, dst, recv_offsets[me][dst], bucket);
                }
            }
            ctx.barrier_wait();
        });
    }
    recv
}

/// `MPI_Allreduce(sum)` for a single f64 (used by dot products in the
/// baseline's Lanczos).
pub fn allreduce_sum(cluster: &Cluster, locals: &[f64]) -> f64 {
    assert_eq!(locals.len(), cluster.n_locales());
    for l in 0..cluster.n_locales() {
        cluster.stats()[l].record_put(8, cluster.n_locales() > 1);
        cluster.stats()[l].record_barrier();
    }
    locals.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls_runtime::ClusterSpec;

    #[test]
    fn alltoallv_orders_by_source() {
        let locales = 3;
        let cluster = Cluster::new(ClusterSpec::new(locales, 1));
        // send[src][dst] = values src*10+dst repeated (src+1) times.
        let send: Vec<Vec<Vec<u32>>> = (0..locales)
            .map(|src| (0..locales).map(|dst| vec![(src * 10 + dst) as u32; src + 1]).collect())
            .collect();
        let recv = alltoallv(&cluster, &send);
        // On dst=1: from src0: [1], src1: [11, 11], src2: [21, 21, 21].
        assert_eq!(recv.part(1), &[1, 11, 11, 21, 21, 21]);
        assert_eq!(recv.part(0), &[0, 10, 10, 20, 20, 20]);
        assert_eq!(recv.part(2), &[2, 12, 12, 22, 22, 22]);
    }

    #[test]
    fn empty_buckets() {
        let cluster = Cluster::new(ClusterSpec::new(2, 1));
        let send = vec![vec![vec![], vec![5u8]], vec![vec![], vec![]]];
        let recv = alltoallv(&cluster, &send);
        assert!(recv.part(0).is_empty());
        assert_eq!(recv.part(1), &[5]);
    }

    #[test]
    fn allreduce() {
        let cluster = Cluster::new(ClusterSpec::new(4, 1));
        assert_eq!(allreduce_sum(&cluster, &[1.0, 2.0, 3.0, 4.0]), 10.0);
    }
}
