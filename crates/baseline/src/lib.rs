//! # ls-baseline
//!
//! A bulk-synchronous, `MPI_Alltoallv`-style matrix-vector product — the
//! stand-in for SPINPACK, the state-of-the-art MPI code the paper
//! benchmarks against (its Fig. 9).
//!
//! The paper attributes SPINPACK's inferior scaling to its communication
//! structure: collective exchanges that cannot overlap communication with
//! computation. This crate reproduces exactly that structure on the same
//! simulated runtime the asynchronous implementation uses, so the
//! comparison isolates the algorithmic difference:
//!
//! 1. **generate** — every locale materializes *all* outgoing
//!    `(state, coefficient)` pairs for its whole source range (the memory
//!    spike the producer/consumer pipeline avoids);
//! 2. **barrier**;
//! 3. **exchange** — an emulated `alltoallv`: counts first, then one bulk
//!    transfer per (source, destination) pair;
//! 4. **barrier**;
//! 5. **accumulate** — each locale ranks and adds its received pairs.
//!
//! No work proceeds while communication is in flight, and no
//! communication starts until all generation is done — the defining
//! contrast with the producer/consumer pipeline in `ls_dist::matvec::pc`.

pub mod collective;
pub mod matvec;
pub mod stored;

pub use collective::alltoallv;
pub use matvec::matvec_alltoall;
pub use stored::StoredMatrix;
