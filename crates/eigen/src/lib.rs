//! # ls-eigen
//!
//! Krylov eigensolvers for the exact-diagonalization stack.
//!
//! Exact diagonalization ultimately asks for a few extreme eigenpairs of a
//! huge Hermitian matrix; the paper (Sec. 2.1) points to Krylov subspace
//! methods as the standard tool, with the matrix-vector product (this
//! workspace's centrepiece) as the only operation touching the operator.
//!
//! This crate provides:
//! * [`vector`] — the Krylov storage abstraction: [`KrylovVec`] (fused
//!   deterministic BLAS-1 over any vector representation, implemented for
//!   `Vec<S>` and the locale-partitioned `ls_runtime::DistVec<S>`) and
//!   [`KrylovOp`] (the matrix-free operator over that storage, with a
//!   blanket implementation turning every [`LinearOp`] into a
//!   `KrylovOp<Vec<S>>`);
//! * [`LinearOp`] — the slice-based matrix-free operator interface,
//!   including the fused matvec+dot epilogue hook
//!   ([`LinearOp::apply_dot`]);
//! * [`op`] — the BLAS-1 layer: serial helpers plus the **parallel
//!   deterministic kernels** (`par_dot`, `par_norm_sqr`, blocked
//!   multi-vector `par_multi_dot`/`par_multi_axpy`, fused axpy+norm)
//!   whose reductions are bit-identical at any `LS_NUM_THREADS`;
//! * [`lanczos::lanczos_smallest_in`] — Lanczos with full (blocked CGS2)
//!   reorthogonalization and Ritz-residual convergence control, written
//!   once against the vector abstraction and running entirely on the
//!   parallel fused pipeline ([`lanczos::lanczos_smallest`] is the
//!   slice-based wrapper); [`expm`] and [`spectral`] reuse the same
//!   factorization for propagators and spectral functions;
//! * [`restart::thick_restart_lanczos_in`] — the memory-bounded variant:
//!   at most `k + extra` retained Krylov vectors via Ritz compression at
//!   restart boundaries, with optional checkpoint/restart
//!   ([`restart::CheckpointPolicy`]) whose resume is bit-identical to
//!   the uninterrupted solve. [`lanczos_smallest_in`] routes here
//!   automatically when `max_iter` exceeds the
//!   [`LanczosOptions::max_retained`] budget;
//! * [`checkpoint`] — the versioned, checksummed on-disk format behind
//!   that resume contract ([`save_checkpoint`] / [`load_checkpoint`],
//!   typed [`CheckpointError`]s for truncated, corrupt or mismatched
//!   files);
//! * [`health`] — the solver layer of the silent-error defense:
//!   [`HealthMonitor`] checks Lanczos invariants (finite coefficients,
//!   `β ≥ 0`, retained-basis orthonormality, sane residuals) each cycle,
//!   and the thick-restart driver catches the typed
//!   [`SolverHealthError`] (or a transport
//!   [`ls_runtime::TransportError::Corruption`]) and rolls back to the
//!   newest valid checkpoint, bounded by `LS_MAX_ROLLBACKS`;
//! * [`tridiag::tridiag_eigh`] — implicit-shift QL for the projected
//!   tridiagonal problem (no LAPACK available offline, so this is a
//!   from-scratch implementation);
//! * [`jacobi`] — dense cyclic-Jacobi reference solvers (real symmetric
//!   and complex Hermitian via real embedding) used to validate everything
//!   else.

pub mod checkpoint;
pub mod expm;
pub mod health;
pub mod jacobi;
pub mod lanczos;
pub mod op;
pub mod precision;
pub mod restart;
pub mod spectral;
pub mod tridiag;
pub mod vector;

pub use checkpoint::{
    generation_path, load_checkpoint, load_latest_checkpoint, manifest_generations,
    remove_checkpoint, save_checkpoint, save_checkpoint_ref, save_checkpoint_rotated,
    CheckpointError, CheckpointState, CheckpointStateRef,
};
pub use expm::{
    evolve_imaginary_time, evolve_imaginary_time_in, evolve_real_time, evolve_real_time_in,
};
pub use health::{HealthMonitor, SolverHealthError};
pub use lanczos::{
    lanczos_smallest, lanczos_smallest_in, LanczosOptions, LanczosResult, LanczosResultIn,
};
pub use op::{DenseOp, LinearOp};
pub use precision::{
    eigensolve_precision, refine_in_f64, thick_restart_lanczos_f32, DistF32Vec, F32Vec,
    MixedOp, Precision,
};
pub use restart::{
    thick_restart_lanczos, thick_restart_lanczos_in, CheckpointPolicy, RestartOptions,
};
pub use spectral::{spectral_coefficients, spectral_coefficients_in, SpectralCoefficients};
pub use vector::{KrylovOp, KrylovVec};
