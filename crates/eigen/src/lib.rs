//! # ls-eigen
//!
//! Krylov eigensolvers for the exact-diagonalization stack.
//!
//! Exact diagonalization ultimately asks for a few extreme eigenpairs of a
//! huge Hermitian matrix; the paper (Sec. 2.1) points to Krylov subspace
//! methods as the standard tool, with the matrix-vector product (this
//! workspace's centrepiece) as the only operation touching the operator.
//!
//! This crate provides:
//! * [`LinearOp`] — the minimal matrix-free operator interface, including
//!   the fused matvec+dot epilogue hook ([`LinearOp::apply_dot`]);
//! * [`op`] — the BLAS-1 layer: serial helpers plus the **parallel
//!   deterministic kernels** (`par_dot`, `par_norm_sqr`, blocked
//!   multi-vector `par_multi_dot`/`par_multi_axpy`, fused axpy+norm)
//!   whose reductions are bit-identical at any `LS_NUM_THREADS`;
//! * [`lanczos::lanczos_smallest`] — Lanczos with full (blocked CGS2)
//!   reorthogonalization and Ritz-residual convergence control, running
//!   entirely on the parallel fused pipeline;
//! * [`tridiag::tridiag_eigh`] — implicit-shift QL for the projected
//!   tridiagonal problem (no LAPACK available offline, so this is a
//!   from-scratch implementation);
//! * [`jacobi`] — dense cyclic-Jacobi reference solvers (real symmetric
//!   and complex Hermitian via real embedding) used to validate everything
//!   else.

pub mod expm;
pub mod jacobi;
pub mod lanczos;
pub mod op;
pub mod spectral;
pub mod tridiag;

pub use expm::{evolve_imaginary_time, evolve_real_time};
pub use lanczos::{lanczos_smallest, LanczosOptions, LanczosResult};
pub use op::{DenseOp, LinearOp};
pub use spectral::{spectral_coefficients, SpectralCoefficients};
