//! The matrix-free operator interface.

use ls_kernels::Scalar;

/// A linear operator `A` acting on vectors of scalars `S`.
///
/// Implementations must be thread-safe (`Sync`): eigensolvers may call
/// `apply` from parallel contexts.
pub trait LinearOp<S: Scalar>: Sync {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`. `x.len() == y.len() == self.dim()`; `y` arrives
    /// zero-filled or with arbitrary content and must be overwritten.
    fn apply(&self, x: &[S], y: &mut [S]);

    /// True when the operator is Hermitian. Lanczos requires it.
    fn is_hermitian(&self) -> bool {
        true
    }
}

/// A dense (row-major) matrix operator — the reference implementation and
/// test scaffold.
#[derive(Clone, Debug)]
pub struct DenseOp<S> {
    n: usize,
    a: Vec<S>, // row-major n×n
}

impl<S: Scalar> DenseOp<S> {
    pub fn new(n: usize, a: Vec<S>) -> Self {
        assert_eq!(a.len(), n * n);
        Self { n, a }
    }

    pub fn from_rows(rows: &[Vec<S>]) -> Self {
        let n = rows.len();
        let mut a = Vec::with_capacity(n * n);
        for r in rows {
            assert_eq!(r.len(), n);
            a.extend_from_slice(r);
        }
        Self { n, a }
    }

    pub fn entry(&self, i: usize, j: usize) -> S {
        self.a[i * self.n + j]
    }
}

impl<S: Scalar> LinearOp<S> for DenseOp<S> {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[S], y: &mut [S]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.a[i * self.n..(i + 1) * self.n];
            let mut acc = S::ZERO;
            for (aij, xj) in row.iter().zip(x) {
                acc += *aij * *xj;
            }
            *yi = acc;
        }
    }
}

/// Hermitian inner product `⟨a, b⟩ = Σ conj(a_i) b_i`.
#[inline]
pub fn dot<S: Scalar>(a: &[S], b: &[S]) -> S {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = S::ZERO;
    for (x, y) in a.iter().zip(b) {
        acc += x.conj() * *y;
    }
    acc
}

/// Squared 2-norm (always real).
#[inline]
pub fn norm_sqr<S: Scalar>(a: &[S]) -> f64 {
    a.iter().map(|x| x.abs_sqr()).sum()
}

/// 2-norm.
#[inline]
pub fn norm<S: Scalar>(a: &[S]) -> f64 {
    norm_sqr(a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * *xi;
    }
}

/// `x *= alpha` (real scale).
#[inline]
pub fn scale<S: Scalar>(x: &mut [S], alpha: f64) {
    for xi in x.iter_mut() {
        *xi = xi.scale_re(alpha);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls_kernels::Complex64;

    #[test]
    fn dense_apply() {
        let a = DenseOp::new(2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut y = vec![0.0; 2];
        a.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn blas1_helpers() {
        let a = vec![1.0, -2.0, 2.0];
        assert_eq!(norm_sqr(&a), 9.0);
        assert_eq!(norm(&a), 3.0);
        assert_eq!(dot(&a, &a), 9.0);
        let mut y = vec![0.0, 1.0, 0.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, vec![2.0, -3.0, 4.0]);
        scale(&mut y, 0.5);
        assert_eq!(y, vec![1.0, -1.5, 2.0]);
    }

    #[test]
    fn complex_dot_conjugates_left() {
        let a = vec![Complex64::new(0.0, 1.0)];
        let b = vec![Complex64::new(0.0, 1.0)];
        // ⟨i, i⟩ = conj(i)·i = 1.
        assert!(dot(&a, &b).approx_eq(Complex64::ONE, 1e-15));
    }
}
