//! The matrix-free operator interface and the BLAS-1 layer of the
//! eigensolvers.
//!
//! Two tiers of vector kernels live here:
//!
//! * the original serial helpers ([`dot`], [`norm`], [`axpy`], [`scale`])
//!   — linear accumulation order, used by the dense references and
//!   anywhere a plain loop is the right tool;
//! * the **parallel deterministic** kernels ([`par_dot`],
//!   [`par_norm_sqr`], [`par_axpy`], [`par_scale`], and the fused
//!   [`par_axpy_norm_sqr`]) that the Lanczos pipeline runs on. Reductions
//!   are computed as per-block partials over a *fixed* partition
//!   ([`REDUCE_BLOCK`], independent of the thread count) combined in a
//!   fixed pairwise tree ([`pairwise_sum`]) — the result is bit-identical
//!   for `LS_NUM_THREADS = 1, 2, …, N`, only the wall time changes.

use ls_kernels::Scalar;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// A linear operator `A` acting on vectors of scalars `S`.
///
/// Implementations must be thread-safe (`Sync`): eigensolvers may call
/// `apply` from parallel contexts.
pub trait LinearOp<S: Scalar>: Sync {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`. `x.len() == y.len() == self.dim()`; `y` arrives
    /// zero-filled or with arbitrary content and must be overwritten.
    fn apply(&self, x: &[S], y: &mut [S]);

    /// Computes `y = A x` and returns `⟨x, y⟩` — the fused matvec+dot
    /// epilogue of a Lanczos iteration (`α_j = ⟨v_j, H v_j⟩`).
    ///
    /// The default runs `apply` followed by [`par_dot`]; implementations
    /// with chunked products (e.g. the batched pull strategy) override it
    /// to accumulate the inner product while the freshly written output
    /// chunk is still cache-resident, saving one full sweep over the
    /// Krylov vectors per iteration. Overrides must stay deterministic
    /// across thread counts, like every kernel in this module.
    fn apply_dot(&self, x: &[S], y: &mut [S]) -> S {
        self.apply(x, y);
        par_dot(x, y)
    }

    /// True when the operator is Hermitian. Lanczos requires it.
    fn is_hermitian(&self) -> bool {
        true
    }
}

/// A dense (row-major) matrix operator — the reference implementation and
/// test scaffold.
#[derive(Clone, Debug)]
pub struct DenseOp<S> {
    n: usize,
    a: Vec<S>, // row-major n×n
}

impl<S: Scalar> DenseOp<S> {
    pub fn new(n: usize, a: Vec<S>) -> Self {
        assert_eq!(a.len(), n * n);
        Self { n, a }
    }

    pub fn from_rows(rows: &[Vec<S>]) -> Self {
        let n = rows.len();
        let mut a = Vec::with_capacity(n * n);
        for r in rows {
            assert_eq!(r.len(), n);
            a.extend_from_slice(r);
        }
        Self { n, a }
    }

    pub fn entry(&self, i: usize, j: usize) -> S {
        self.a[i * self.n + j]
    }
}

impl<S: Scalar> LinearOp<S> for DenseOp<S> {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[S], y: &mut [S]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.a[i * self.n..(i + 1) * self.n];
            let mut acc = S::ZERO;
            for (aij, xj) in row.iter().zip(x) {
                acc += *aij * *xj;
            }
            *yi = acc;
        }
    }
}

/// Hermitian inner product `⟨a, b⟩ = Σ conj(a_i) b_i`.
#[inline]
pub fn dot<S: Scalar>(a: &[S], b: &[S]) -> S {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = S::ZERO;
    for (x, y) in a.iter().zip(b) {
        acc += x.conj() * *y;
    }
    acc
}

/// Squared 2-norm (always real).
#[inline]
pub fn norm_sqr<S: Scalar>(a: &[S]) -> f64 {
    a.iter().map(|x| x.abs_sqr()).sum()
}

/// 2-norm.
#[inline]
pub fn norm<S: Scalar>(a: &[S]) -> f64 {
    norm_sqr(a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * *xi;
    }
}

/// `x *= alpha` (real scale).
#[inline]
pub fn scale<S: Scalar>(x: &mut [S], alpha: f64) {
    for xi in x.iter_mut() {
        *xi = xi.scale_re(alpha);
    }
}

// ---------------------------------------------------------------------------
// Parallel deterministic kernels
// ---------------------------------------------------------------------------

/// Reduction-block length of the parallel kernels. Fixed — *never* a
/// function of the thread count — so the partial-sum layout, and with it
/// every floating-point result, is identical no matter how many pool
/// workers execute the sweep. Sized to amortize a chunk claim while
/// leaving enough blocks for dynamic load balancing on large sectors.
pub const REDUCE_BLOCK: usize = 8192;

/// Below this many blocks a kernel computes its partials inline instead
/// of dispatching to the pool — a wake-up costs more than a few blocks
/// of streaming arithmetic. The partial layout and combination tree are
/// the same either way, so the result is bit-identical to the parallel
/// path (the dispatch decision is invisible in the output). Public so
/// the f32-storage kernels of [`crate::precision`] share the threshold.
pub const MIN_PAR_BLOCKS: usize = 8;

/// Sums `parts` in a fixed pairwise (balanced binary) tree. The tree
/// shape depends only on `parts.len()`, making the reduction
/// deterministic and more accurate than linear accumulation.
pub fn pairwise_sum<S: Scalar>(parts: &[S]) -> S {
    match parts.len() {
        0 => S::ZERO,
        1 => parts[0],
        2 => parts[0] + parts[1],
        n => pairwise_sum(&parts[..n / 2]) + pairwise_sum(&parts[n / 2..]),
    }
}

/// Views a scalar slice as atomic `f64`-bit lanes (the layout trick the
/// scatter matvec uses). Used for racing-free indexed stores of reduction
/// partials from parallel chunks; every lane is written by exactly one
/// chunk, so relaxed stores suffice. Public so the fused matvec+dot in
/// `ls-core` shares this one audited copy of the unsafe cast (`f64`
/// itself is a `Scalar`, so plain real partials go through it too).
pub fn atomic_lanes<S: Scalar>(data: &mut [S]) -> &[AtomicU64] {
    // SAFETY: every `Scalar` is `N_REALS` little-endian f64 lanes, and
    // AtomicU64 has the same size/alignment as f64 on every supported
    // target.
    unsafe {
        std::slice::from_raw_parts(
            data.as_mut_ptr() as *const AtomicU64,
            data.len() * S::N_REALS,
        )
    }
}

/// Stores `value`'s lanes into partial slot `slot` (relaxed; one writer
/// per slot — see [`atomic_lanes`]).
#[inline]
pub fn store_partial<S: Scalar>(lanes: &[AtomicU64], slot: usize, value: S) {
    let reals = value.to_reals();
    for lane in 0..S::N_REALS {
        lanes[slot * S::N_REALS + lane].store(reals[lane].to_bits(), Ordering::Relaxed);
    }
}

/// Parallel Hermitian inner product, bit-deterministic across thread
/// counts: per-block partials (linear within a [`REDUCE_BLOCK`]) combined
/// with [`pairwise_sum`].
pub fn par_dot<S: Scalar>(a: &[S], b: &[S]) -> S {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let n_blocks = n.div_ceil(REDUCE_BLOCK);
    if n_blocks <= 1 {
        return dot(a, b);
    }
    let mut partials = vec![S::ZERO; n_blocks];
    if n_blocks < MIN_PAR_BLOCKS {
        for (bi, p) in partials.iter_mut().enumerate() {
            let lo = bi * REDUCE_BLOCK;
            let hi = (lo + REDUCE_BLOCK).min(n);
            *p = dot(&a[lo..hi], &b[lo..hi]);
        }
    } else {
        let lanes = atomic_lanes(&mut partials);
        (0..n_blocks).into_par_iter().for_each(|bi| {
            let lo = bi * REDUCE_BLOCK;
            let hi = (lo + REDUCE_BLOCK).min(n);
            store_partial(lanes, bi, dot(&a[lo..hi], &b[lo..hi]));
        });
    }
    pairwise_sum(&partials)
}

/// Parallel squared 2-norm, bit-deterministic across thread counts.
pub fn par_norm_sqr<S: Scalar>(a: &[S]) -> f64 {
    let n = a.len();
    let n_blocks = n.div_ceil(REDUCE_BLOCK);
    if n_blocks <= 1 {
        return norm_sqr(a);
    }
    let mut partials = vec![0.0f64; n_blocks];
    if n_blocks < MIN_PAR_BLOCKS {
        for (bi, p) in partials.iter_mut().enumerate() {
            let lo = bi * REDUCE_BLOCK;
            let hi = (lo + REDUCE_BLOCK).min(n);
            *p = norm_sqr(&a[lo..hi]);
        }
    } else {
        let lanes = atomic_lanes(&mut partials);
        (0..n_blocks).into_par_iter().for_each(|bi| {
            let lo = bi * REDUCE_BLOCK;
            let hi = (lo + REDUCE_BLOCK).min(n);
            store_partial(lanes, bi, norm_sqr(&a[lo..hi]));
        });
    }
    pairwise_sum(&partials)
}

/// Parallel 2-norm (deterministic, see [`par_norm_sqr`]).
pub fn par_norm<S: Scalar>(a: &[S]) -> f64 {
    par_norm_sqr(a).sqrt()
}

/// Parallel `y += alpha * x`. Element-wise, so trivially deterministic.
pub fn par_axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    debug_assert_eq!(x.len(), y.len());
    if y.len() < MIN_PAR_BLOCKS * REDUCE_BLOCK {
        return axpy(alpha, x, y);
    }
    y.par_chunks_mut(REDUCE_BLOCK).enumerate().for_each(|(bi, yb)| {
        let base = bi * REDUCE_BLOCK;
        axpy(alpha, &x[base..base + yb.len()], yb);
    });
}

/// Parallel `x *= alpha` (real scale).
pub fn par_scale<S: Scalar>(x: &mut [S], alpha: f64) {
    if x.len() < MIN_PAR_BLOCKS * REDUCE_BLOCK {
        return scale(x, alpha);
    }
    x.par_chunks_mut(REDUCE_BLOCK).for_each(|xb| scale(xb, alpha));
}

/// Blocked multi-vector inner products: `out[b] = ⟨vs[b], w⟩` for every
/// basis vector at once, sweeping `w` (and each `vs[b]`) exactly once.
/// This is the coefficient half of blocked (CGS2) reorthogonalization —
/// with `m` basis vectors the one-vector-at-a-time loop reads `w` `m`
/// times per pass; this kernel reads it once, with the current `w` block
/// cache-hot across all `m` dot products. Deterministic: per-vector
/// partials over the fixed [`REDUCE_BLOCK`] partition, combined with
/// [`pairwise_sum`].
pub fn par_multi_dot<S: Scalar, V: AsRef<[S]> + Sync>(vs: &[V], w: &[S]) -> Vec<S> {
    let m = vs.len();
    if m == 0 {
        return Vec::new();
    }
    let n = w.len();
    let n_blocks = n.div_ceil(REDUCE_BLOCK).max(1);
    // partials[b * n_blocks + k] = ⟨vs[b], w⟩ restricted to block k.
    let mut partials = vec![S::ZERO; m * n_blocks];
    let fill = |k: usize, partials_k: &mut dyn FnMut(usize, S)| {
        let lo = k * REDUCE_BLOCK;
        let hi = (lo + REDUCE_BLOCK).min(n);
        for (b, v) in vs.iter().enumerate() {
            partials_k(b, dot(&v.as_ref()[lo..hi], &w[lo..hi]));
        }
    };
    if n_blocks < MIN_PAR_BLOCKS {
        for k in 0..n_blocks {
            fill(k, &mut |b, p| partials[b * n_blocks + k] = p);
        }
    } else {
        let lanes = atomic_lanes(&mut partials);
        (0..n_blocks).into_par_iter().for_each(|k| {
            fill(k, &mut |b, p| store_partial(lanes, b * n_blocks + k, p));
        });
    }
    (0..m).map(|b| pairwise_sum(&partials[b * n_blocks..(b + 1) * n_blocks])).collect()
}

/// Blocked multi-vector update: `w += Σ_b coeffs[b] · vs[b]`, sweeping
/// `w` exactly once (the update half of blocked reorthogonalization and
/// of Ritz-vector assembly). Per element the additions run in ascending
/// `b` order — independent of how chunks are claimed, so deterministic.
pub fn par_multi_axpy<S: Scalar, V: AsRef<[S]> + Sync>(coeffs: &[S], vs: &[V], w: &mut [S]) {
    debug_assert_eq!(coeffs.len(), vs.len());
    if vs.is_empty() {
        return;
    }
    let update = |base: usize, wb: &mut [S]| {
        for (b, v) in vs.iter().enumerate() {
            axpy(coeffs[b], &v.as_ref()[base..base + wb.len()], wb);
        }
    };
    if w.len() < MIN_PAR_BLOCKS * REDUCE_BLOCK {
        let len = w.len();
        let mut lo = 0usize;
        while lo < len {
            let hi = (lo + REDUCE_BLOCK).min(len);
            update(lo, &mut w[lo..hi]);
            lo = hi;
        }
    } else {
        w.par_chunks_mut(REDUCE_BLOCK).enumerate().for_each(|(k, wb)| {
            update(k * REDUCE_BLOCK, wb);
        });
    }
}

/// [`par_multi_axpy`] fused with `‖w‖²` of the result — the final
/// reorthogonalization pass and the β norm in one sweep over `w`.
/// Bit-identical to [`par_multi_axpy`] followed by [`par_norm_sqr`].
pub fn par_multi_axpy_norm_sqr<S: Scalar, V: AsRef<[S]> + Sync>(
    coeffs: &[S],
    vs: &[V],
    w: &mut [S],
) -> f64 {
    debug_assert_eq!(coeffs.len(), vs.len());
    let n = w.len();
    let n_blocks = n.div_ceil(REDUCE_BLOCK).max(1);
    let update = |base: usize, wb: &mut [S]| -> f64 {
        for (b, v) in vs.iter().enumerate() {
            axpy(coeffs[b], &v.as_ref()[base..base + wb.len()], wb);
        }
        norm_sqr(wb)
    };
    let mut partials = vec![0.0f64; n_blocks];
    if n_blocks < MIN_PAR_BLOCKS {
        for (k, p) in partials.iter_mut().enumerate() {
            let lo = k * REDUCE_BLOCK;
            let hi = (lo + REDUCE_BLOCK).min(n);
            *p = update(lo, &mut w[lo..hi]);
        }
    } else {
        let lanes = atomic_lanes(&mut partials);
        w.par_chunks_mut(REDUCE_BLOCK).enumerate().for_each(|(k, wb)| {
            store_partial(lanes, k, update(k * REDUCE_BLOCK, wb));
        });
    }
    pairwise_sum(&partials)
}

/// Fused `y += alpha * x; return ‖y‖²` in one parallel sweep — the
/// axpy+norm epilogue of a Lanczos iteration (the final
/// reorthogonalization update and the β that follows it), saving one full
/// read pass over the Krylov vector. Bit-identical to [`par_axpy`]
/// followed by [`par_norm_sqr`], at any thread count.
pub fn par_axpy_norm_sqr<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = y.len();
    let n_blocks = n.div_ceil(REDUCE_BLOCK);
    if n_blocks <= 1 {
        axpy(alpha, x, y);
        return norm_sqr(y);
    }
    let mut partials = vec![0.0f64; n_blocks];
    if n_blocks < MIN_PAR_BLOCKS {
        for (bi, p) in partials.iter_mut().enumerate() {
            let lo = bi * REDUCE_BLOCK;
            let hi = (lo + REDUCE_BLOCK).min(n);
            axpy(alpha, &x[lo..hi], &mut y[lo..hi]);
            *p = norm_sqr(&y[lo..hi]);
        }
    } else {
        let lanes = atomic_lanes(&mut partials);
        y.par_chunks_mut(REDUCE_BLOCK).enumerate().for_each(|(bi, yb)| {
            let base = bi * REDUCE_BLOCK;
            let xb = &x[base..base + yb.len()];
            axpy(alpha, xb, yb);
            store_partial(lanes, bi, norm_sqr(yb));
        });
    }
    pairwise_sum(&partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls_kernels::Complex64;

    #[test]
    fn dense_apply() {
        let a = DenseOp::new(2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut y = vec![0.0; 2];
        a.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn blas1_helpers() {
        let a = vec![1.0, -2.0, 2.0];
        assert_eq!(norm_sqr(&a), 9.0);
        assert_eq!(norm(&a), 3.0);
        assert_eq!(dot(&a, &a), 9.0);
        let mut y = vec![0.0, 1.0, 0.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, vec![2.0, -3.0, 4.0]);
        scale(&mut y, 0.5);
        assert_eq!(y, vec![1.0, -1.5, 2.0]);
    }

    #[test]
    fn complex_dot_conjugates_left() {
        let a = vec![Complex64::new(0.0, 1.0)];
        let b = vec![Complex64::new(0.0, 1.0)];
        // ⟨i, i⟩ = conj(i)·i = 1.
        assert!(dot(&a, &b).approx_eq(Complex64::ONE, 1e-15));
    }

    fn ramp(n: usize, scale: f64) -> Vec<f64> {
        (0..n).map(|i| ((i % 97) as f64 - 48.0) * scale).collect()
    }

    #[test]
    fn par_kernels_agree_with_serial() {
        for n in [0usize, 1, 100, REDUCE_BLOCK, 3 * REDUCE_BLOCK + 7, 9 * REDUCE_BLOCK + 11] {
            let a = ramp(n, 1e-3);
            let b = ramp(n, -2e-3);
            let tol = 1e-12 * (n as f64 + 1.0);
            assert!((par_dot(&a, &b) - dot(&a, &b)).abs() <= tol, "dot n={n}");
            assert!((par_norm_sqr(&a) - norm_sqr(&a)).abs() <= tol, "norm n={n}");
            let mut y1 = b.clone();
            let mut y2 = b.clone();
            par_axpy(0.37, &a, &mut y1);
            axpy(0.37, &a, &mut y2);
            assert_eq!(y1, y2, "axpy n={n}");
            par_scale(&mut y1, 0.25);
            scale(&mut y2, 0.25);
            assert_eq!(y1, y2, "scale n={n}");
            // Fused axpy+norm is bit-identical to the split pair.
            let mut y3 = b.clone();
            let fused = par_axpy_norm_sqr(-0.11, &a, &mut y3);
            let mut y4 = b.clone();
            par_axpy(-0.11, &a, &mut y4);
            assert_eq!(y3, y4, "fused update n={n}");
            assert_eq!(fused.to_bits(), par_norm_sqr(&y4).to_bits(), "fused norm n={n}");
        }
    }

    #[test]
    fn blocked_multi_kernels_agree_with_loops() {
        for n in [0usize, 5, REDUCE_BLOCK + 3, 9 * REDUCE_BLOCK + 1] {
            let w = ramp(n, 5e-4);
            let vs: Vec<Vec<f64>> = (0..4).map(|k| ramp(n, 1e-3 * (k + 1) as f64)).collect();
            let coeffs = par_multi_dot(&vs, &w);
            assert_eq!(coeffs.len(), 4);
            for (b, v) in vs.iter().enumerate() {
                assert_eq!(
                    coeffs[b].to_bits(),
                    par_dot(v, &w).to_bits(),
                    "multi-dot lane {b} n={n}"
                );
            }
            // Multi-axpy equals the sequential per-vector updates.
            let mut w1 = w.clone();
            par_multi_axpy(&coeffs, &vs, &mut w1);
            let mut w2 = w.clone();
            // Same per-element order: ascending b within each element.
            for i in 0..n {
                for (b, v) in vs.iter().enumerate() {
                    w2[i] += coeffs[b] * v[i];
                }
            }
            assert_eq!(w1, w2, "multi-axpy n={n}");
            // The fused variant matches multi-axpy + parallel norm bitwise.
            let mut w3 = w.clone();
            let fused = par_multi_axpy_norm_sqr(&coeffs, &vs, &mut w3);
            assert_eq!(w3, w1, "fused multi update n={n}");
            assert_eq!(fused.to_bits(), par_norm_sqr(&w1).to_bits(), "fused multi norm n={n}");
        }
    }

    #[test]
    fn pairwise_sum_shapes() {
        assert_eq!(pairwise_sum::<f64>(&[]), 0.0);
        assert_eq!(pairwise_sum(&[3.0]), 3.0);
        let parts: Vec<f64> = (0..13).map(|i| i as f64).collect();
        assert_eq!(pairwise_sum(&parts), 78.0);
        let cparts: Vec<Complex64> =
            (0..7).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
        let s = pairwise_sum(&cparts);
        assert!(s.approx_eq(Complex64::new(21.0, -21.0), 1e-12));
    }
}
