//! Symmetric tridiagonal eigensolver: implicit-shift QL (a from-scratch
//! port of the classic EISPACK `tql2` algorithm).
//!
//! Lanczos projects the big operator onto a Krylov subspace where it is
//! tridiagonal; this solver finishes the job. It is exact-arithmetic-free
//! and `O(n^2)` per eigenvalue with eigenvectors, which is negligible next
//! to the matrix-vector products.

/// Computes all eigenvalues (ascending) and, optionally, eigenvectors of
/// the symmetric tridiagonal matrix with diagonal `d` and sub-diagonal `e`
/// (`e.len() == d.len() - 1`).
///
/// Returns `(eigenvalues, eigenvectors)` where `eigenvectors[k]` is the
/// k-th eigenvector (of length `n`) when requested.
pub fn tridiag_eigh(
    d: &[f64],
    e: &[f64],
    want_vectors: bool,
) -> (Vec<f64>, Option<Vec<Vec<f64>>>) {
    let n = d.len();
    assert!(n > 0, "empty matrix");
    assert_eq!(e.len(), n.saturating_sub(1));
    let mut d = d.to_vec();
    // Shifted copy of e with a trailing zero, as tql2 expects.
    let mut ee = vec![0.0f64; n];
    ee[..n - 1].copy_from_slice(e);
    // z: identity if vectors wanted (accumulates rotations), else empty.
    let mut z: Vec<f64> = if want_vectors {
        let mut z = vec![0.0; n * n];
        for i in 0..n {
            z[i * n + i] = 1.0;
        }
        z
    } else {
        Vec::new()
    };

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find small sub-diagonal element.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if ee[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter < 50, "tql2 failed to converge");
            // Form implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * ee[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r } else { -r };
            g = d[m] - d[l] + ee[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * ee[i];
                let b = c * ee[i];
                r = f.hypot(g);
                ee[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow: drop the rotation and retry.
                    d[i + 1] -= p;
                    ee[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                if !z.is_empty() {
                    for k in 0..n {
                        f = z[k * n + i + 1];
                        z[k * n + i + 1] = s * z[k * n + i] + c * f;
                        z[k * n + i] = c * z[k * n + i] - s * f;
                    }
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            ee[l] = g;
            ee[m] = 0.0;
        }
    }

    // Sort ascending (with vectors).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].total_cmp(&d[b]));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let vectors = if want_vectors {
        Some(order.iter().map(|&col| (0..n).map(|row| z[row * n + col]).collect()).collect())
    } else {
        None
    };
    (values, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_eigenpairs(d: &[f64], e: &[f64]) {
        let n = d.len();
        let (vals, vecs) = tridiag_eigh(d, e, true);
        let vecs = vecs.unwrap();
        assert_eq!(vals.len(), n);
        // Ascending:
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // Residuals ||T v - λ v||:
        for (lam, v) in vals.iter().zip(&vecs) {
            let mut tv = vec![0.0; n];
            for i in 0..n {
                tv[i] = d[i] * v[i];
                if i > 0 {
                    tv[i] += e[i - 1] * v[i - 1];
                }
                if i + 1 < n {
                    tv[i] += e[i] * v[i + 1];
                }
            }
            let res: f64 = tv
                .iter()
                .zip(v)
                .map(|(a, b)| (a - lam * b) * (a - lam * b))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-9, "residual {res} for eigenvalue {lam}");
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
        // Trace preserved:
        let tr_d: f64 = d.iter().sum();
        let tr_v: f64 = vals.iter().sum();
        assert!((tr_d - tr_v).abs() < 1e-8 * (1.0 + tr_d.abs()));
    }

    #[test]
    fn toeplitz_has_known_spectrum() {
        // d = 0, e = 1: eigenvalues are 2 cos(kπ/(n+1)), k = 1..n.
        let n = 12;
        let d = vec![0.0; n];
        let e = vec![1.0; n - 1];
        let (vals, _) = tridiag_eigh(&d, &e, false);
        let mut expect: Vec<f64> = (1..=n)
            .map(|k| 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        expect.sort_by(f64::total_cmp);
        for (a, b) in vals.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn single_element() {
        let (vals, vecs) = tridiag_eigh(&[3.5], &[], true);
        assert_eq!(vals, vec![3.5]);
        assert_eq!(vecs.unwrap(), vec![vec![1.0]]);
    }

    #[test]
    fn two_by_two_exact() {
        // [[a, b], [b, c]]: eigenvalues (a+c)/2 ± sqrt(((a-c)/2)^2 + b^2).
        let (a, b, c) = (1.0, 2.0, -1.0);
        let (vals, _) = tridiag_eigh(&[a, c], &[b], false);
        let mid = (a + c) / 2.0;
        let rad = (((a - c) / 2.0f64).powi(2) + b * b).sqrt();
        assert!((vals[0] - (mid - rad)).abs() < 1e-12);
        assert!((vals[1] - (mid + rad)).abs() < 1e-12);
    }

    #[test]
    fn random_matrices_have_consistent_eigenpairs() {
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed = ls_kernels::hash64_01(seed.wrapping_add(1));
            (seed >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        for n in [2usize, 3, 5, 17, 40] {
            let d: Vec<f64> = (0..n).map(|_| next() * 3.0).collect();
            let e: Vec<f64> = (0..n - 1).map(|_| next()).collect();
            check_eigenpairs(&d, &e);
        }
    }

    #[test]
    fn zero_offdiagonal_returns_sorted_diagonal() {
        let d = vec![3.0, -1.0, 2.0];
        let e = vec![0.0, 0.0];
        let (vals, _) = tridiag_eigh(&d, &e, false);
        assert_eq!(vals, vec![-1.0, 2.0, 3.0]);
    }
}
