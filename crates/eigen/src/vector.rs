//! The Krylov vector abstraction: one solver, any storage.
//!
//! Every Krylov algorithm in this crate (Lanczos eigensolver, the
//! `exp(zH)` propagators, the spectral continued fraction) is a short
//! three-term recurrence over a handful of BLAS-1 primitives plus the
//! matrix-vector product. [`KrylovVec`] captures exactly those
//! primitives — fused, deterministic, in place — so the recurrences are
//! written once and run on any storage:
//!
//! * **`Vec<S>`** — shared-memory vectors on the parallel deterministic
//!   kernels of [`crate::op`] (per-block partials over the fixed
//!   [`crate::op::REDUCE_BLOCK`] partition, pairwise reduction trees);
//! * **`ls_runtime::DistVec<S>`** — locale-partitioned vectors. Each
//!   primitive runs the same shared-memory kernel *per part* and reduces
//!   the per-locale partials in locale order (the `allreduce` of a real
//!   cluster). Nothing is ever gathered: the Krylov recurrence operates
//!   on the distributed parts in place, which is the paper's central
//!   claim — Krylov state stays distributed, only matrix elements cross
//!   locale boundaries.
//!
//! [`KrylovOp`] is the operator side: the matrix-vector product over a
//! given vector type, plus the allocation hook the solvers use for their
//! workspace ([`KrylovOp::new_vec`]) and the fused matvec+dot epilogue
//! ([`KrylovOp::apply_dot`]). Every [`LinearOp`] automatically is a
//! `KrylovOp<Vec<S>>`, so existing slice-based operators need no changes;
//! the distributed backend implements `KrylovOp<DistVec<S>>` directly on
//! the producer/consumer engine.
//!
//! # Determinism
//!
//! Both implementations inherit the workspace-wide contract: reduction
//! partials live on thread-count-independent partitions (blocks within a
//! part, parts in locale order), so every primitive is bit-identical for
//! any `LS_NUM_THREADS`. The distributed reduction order *does* depend on
//! the locale count — results across cluster shapes agree to solver
//! tolerance, not bitwise, exactly like a real machine.

use crate::op::{self, LinearOp};
use ls_kernels::Scalar;
use ls_runtime::transport::{self, MpRuntime};
use ls_runtime::DistVec;

/// Rank-ordered sum of per-rank scalar partials (multiprocess). Lane-wise
/// addition in rank order is bit-identical to the in-process backend's
/// `acc += partial` over parts in locale order.
fn allreduce_scalars<S: Scalar>(mp: &MpRuntime, partials: &[S]) -> Vec<S> {
    let mut lanes = Vec::with_capacity(partials.len() * S::N_REALS);
    for p in partials {
        lanes.extend_from_slice(&p.to_reals()[..S::N_REALS]);
    }
    let summed = mp.allreduce_lanes(&lanes);
    summed
        .chunks_exact(S::N_REALS)
        .map(|c| {
            let mut r = [0.0f64; 2];
            r[..S::N_REALS].copy_from_slice(c);
            S::from_reals(r)
        })
        .collect()
}

/// A vector a Krylov solver can iterate on: fused, deterministic BLAS-1
/// plus an element-order fill hook.
///
/// The multi-vector operations (`multi_dot`, `multi_axpy`,
/// `multi_axpy_norm_sqr`) are the blocked-CGS2 workhorses — they sweep
/// the target vector once for the whole basis instead of once per basis
/// vector, and the solvers' performance rests on them.
pub trait KrylovVec: Clone {
    type Scalar: Scalar;

    /// Storage-kind tag written into checkpoint files so a resume cannot
    /// silently reinterpret one storage's bytes as another's
    /// (see [`crate::checkpoint`]). Dense `Vec<S>` is 1, distributed
    /// `DistVec<S>` is 2; the f32 storages of [`crate::precision`] are
    /// 3 (dense) and 4 (distributed).
    const STORAGE_KIND: u32;

    /// Bytes per stored scalar lane: 8 for f64-backed storage (the
    /// default), 4 for the f32 storages of the mixed-precision mode.
    /// Checkpoints (format v2) record it so a resume can widen an f32
    /// checkpoint into an f64 solve explicitly — and reject the lossy
    /// direction with a typed error instead of truncating lanes.
    const SCALAR_WIDTH: u32 = 8;

    /// Global number of elements (summed over parts for distributed
    /// storage).
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Part lengths describing the physical layout (`[len]` for dense
    /// storage, per-locale lengths for distributed storage). Checkpoints
    /// record it so a resume on a different layout is rejected instead of
    /// silently breaking the bit-identical-resume contract (reduction
    /// order follows the parts).
    fn layout(&self) -> Vec<usize>;

    /// Visits every element in ascending global order — the
    /// serialization counterpart of [`KrylovVec::fill_with`].
    fn visit(&self, f: &mut dyn FnMut(Self::Scalar));

    /// Overwrites every element with `f(global_index)`, calling `f` in
    /// ascending global order exactly once per element. Callers feed
    /// sequential RNG streams through this, so the order is a contract:
    /// a distributed vector filled this way is element-for-element the
    /// vector a shared-memory solver would start from.
    fn fill_with(&mut self, f: &mut dyn FnMut(usize) -> Self::Scalar);

    /// Hermitian inner product `⟨self, other⟩` (left side conjugated).
    fn dot(&self, other: &Self) -> Self::Scalar;

    /// Squared 2-norm (always real).
    fn norm_sqr(&self) -> f64;

    fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// `self += alpha · x`.
    fn axpy(&mut self, alpha: Self::Scalar, x: &Self);

    /// `self *= alpha` (real scale).
    fn scale(&mut self, alpha: f64);

    /// Fused `self += alpha · x; ‖self‖²` in one sweep.
    fn axpy_norm_sqr(&mut self, alpha: Self::Scalar, x: &Self) -> f64;

    /// Blocked multi-dot: `out[b] = ⟨vs[b], w⟩`, sweeping `w` once.
    fn multi_dot(vs: &[Self], w: &Self) -> Vec<Self::Scalar>;

    /// Blocked multi-update: `w += Σ_b coeffs[b] · vs[b]`, sweeping `w`
    /// once; per element the additions run in ascending `b` order.
    fn multi_axpy(coeffs: &[Self::Scalar], vs: &[Self], w: &mut Self);

    /// [`Self::multi_axpy`] fused with `‖w‖²` of the result.
    fn multi_axpy_norm_sqr(coeffs: &[Self::Scalar], vs: &[Self], w: &mut Self) -> f64;
}

impl<S: Scalar> KrylovVec for Vec<S> {
    type Scalar = S;

    const STORAGE_KIND: u32 = 1;

    fn len(&self) -> usize {
        <[S]>::len(self)
    }

    fn layout(&self) -> Vec<usize> {
        vec![<[S]>::len(self)]
    }

    fn visit(&self, f: &mut dyn FnMut(S)) {
        for &x in self.iter() {
            f(x);
        }
    }

    fn fill_with(&mut self, f: &mut dyn FnMut(usize) -> S) {
        for (i, x) in self.iter_mut().enumerate() {
            *x = f(i);
        }
    }

    fn dot(&self, other: &Self) -> S {
        op::par_dot(self, other)
    }

    fn norm_sqr(&self) -> f64 {
        op::par_norm_sqr(self)
    }

    fn axpy(&mut self, alpha: S, x: &Self) {
        op::par_axpy(alpha, x, self);
    }

    fn scale(&mut self, alpha: f64) {
        op::par_scale(self, alpha);
    }

    fn axpy_norm_sqr(&mut self, alpha: S, x: &Self) -> f64 {
        op::par_axpy_norm_sqr(alpha, x, self)
    }

    fn multi_dot(vs: &[Self], w: &Self) -> Vec<S> {
        op::par_multi_dot(vs, w)
    }

    fn multi_axpy(coeffs: &[S], vs: &[Self], w: &mut Self) {
        op::par_multi_axpy(coeffs, vs, w);
    }

    fn multi_axpy_norm_sqr(coeffs: &[S], vs: &[Self], w: &mut Self) -> f64 {
        op::par_multi_axpy_norm_sqr(coeffs, vs, w)
    }
}

/// The distributed implementation: every primitive is the shared-memory
/// kernel applied per locale part, with scalar partials combined in
/// locale order. No part ever leaves its locale.
///
/// Under the multiprocess transport each rank runs the kernels on its own
/// (authoritative) part only and combines partials through a rank-ordered
/// allreduce — bit-identical to the in-process locale-ordered sum. The
/// replica's remote parts are left untouched by the update primitives;
/// only [`KrylovVec::visit`] re-assembles the global vector (allgather in
/// rank order), which is what checkpointing consumes.
impl<S: Scalar> KrylovVec for DistVec<S> {
    type Scalar = S;

    const STORAGE_KIND: u32 = 2;

    fn len(&self) -> usize {
        self.total_len()
    }

    fn layout(&self) -> Vec<usize> {
        self.lens()
    }

    fn visit(&self, f: &mut dyn FnMut(S)) {
        if let Some(mp) = transport::active() {
            // Allgather this rank's authoritative part and emit all parts
            // in rank (= global) order: every rank streams the identical
            // canonical vector, so checkpoints written from it agree.
            use bytes::{Buf, BufMut};
            let own = self.part(mp.rank());
            let mut payload = Vec::with_capacity(own.len() * 8 * S::N_REALS);
            for x in own {
                for &lane in &x.to_reals()[..S::N_REALS] {
                    payload.put_f64_le(lane);
                }
            }
            for contribution in mp.allgather(&payload) {
                let mut r: &[u8] = &contribution;
                while r.remaining() > 0 {
                    let mut lanes = [0.0f64; 2];
                    for slot in lanes.iter_mut().take(S::N_REALS) {
                        *slot = r.get_f64_le();
                    }
                    f(S::from_reals(lanes));
                }
            }
            return;
        }
        self.for_each(|&x| f(x));
    }

    fn fill_with(&mut self, f: &mut dyn FnMut(usize) -> S) {
        // Multiprocess included: every rank fills the full replica — the
        // stream is deterministic, so all ranks agree and each rank's own
        // part comes out authoritative.
        let mut i = 0usize;
        for part in self.parts_mut() {
            for x in part.iter_mut() {
                *x = f(i);
                i += 1;
            }
        }
    }

    fn dot(&self, other: &Self) -> S {
        debug_assert_eq!(self.lens(), other.lens(), "distributed dot of mismatched layouts");
        if let Some(mp) = transport::active() {
            let me = mp.rank();
            let partial = op::par_dot(self.part(me), other.part(me));
            return allreduce_scalars(mp, &[partial])[0];
        }
        let mut acc = S::ZERO;
        for (pa, pb) in self.parts().iter().zip(other.parts()) {
            acc += op::par_dot(pa, pb);
        }
        acc
    }

    fn norm_sqr(&self) -> f64 {
        if let Some(mp) = transport::active() {
            let partial = op::par_norm_sqr(self.part(mp.rank()));
            return mp.allreduce_lanes(&[partial])[0];
        }
        self.parts().iter().map(|p| op::par_norm_sqr(p)).sum()
    }

    fn axpy(&mut self, alpha: S, x: &Self) {
        debug_assert_eq!(self.lens(), x.lens(), "distributed axpy of mismatched layouts");
        if let Some(mp) = transport::active() {
            let me = mp.rank();
            op::par_axpy(alpha, x.part(me), self.part_mut(me));
            return;
        }
        for (py, px) in self.parts_mut().iter_mut().zip(x.parts()) {
            op::par_axpy(alpha, px, py);
        }
    }

    fn scale(&mut self, alpha: f64) {
        if let Some(mp) = transport::active() {
            op::par_scale(self.part_mut(mp.rank()), alpha);
            return;
        }
        for part in self.parts_mut() {
            op::par_scale(part, alpha);
        }
    }

    fn axpy_norm_sqr(&mut self, alpha: S, x: &Self) -> f64 {
        debug_assert_eq!(self.lens(), x.lens(), "distributed axpy of mismatched layouts");
        if let Some(mp) = transport::active() {
            let me = mp.rank();
            let partial = op::par_axpy_norm_sqr(alpha, x.part(me), self.part_mut(me));
            return mp.allreduce_lanes(&[partial])[0];
        }
        let mut acc = 0.0f64;
        for (py, px) in self.parts_mut().iter_mut().zip(x.parts()) {
            acc += op::par_axpy_norm_sqr(alpha, px, py);
        }
        acc
    }

    fn multi_dot(vs: &[Self], w: &Self) -> Vec<S> {
        if let Some(mp) = transport::active() {
            let me = mp.rank();
            let parts: Vec<&[S]> = vs.iter().map(|v| v.part(me)).collect();
            let partials = op::par_multi_dot(&parts, w.part(me));
            return allreduce_scalars(mp, &partials);
        }
        let mut out = vec![S::ZERO; vs.len()];
        for (l, wp) in w.parts().iter().enumerate() {
            let parts: Vec<&[S]> = vs.iter().map(|v| v.part(l)).collect();
            for (acc, partial) in out.iter_mut().zip(op::par_multi_dot(&parts, wp)) {
                *acc += partial;
            }
        }
        out
    }

    fn multi_axpy(coeffs: &[S], vs: &[Self], w: &mut Self) {
        debug_assert_eq!(coeffs.len(), vs.len());
        if let Some(mp) = transport::active() {
            let me = mp.rank();
            let parts: Vec<&[S]> = vs.iter().map(|v| v.part(me)).collect();
            op::par_multi_axpy(coeffs, &parts, w.part_mut(me));
            return;
        }
        for (l, wp) in w.parts_mut().iter_mut().enumerate() {
            let parts: Vec<&[S]> = vs.iter().map(|v| v.part(l)).collect();
            op::par_multi_axpy(coeffs, &parts, wp);
        }
    }

    fn multi_axpy_norm_sqr(coeffs: &[S], vs: &[Self], w: &mut Self) -> f64 {
        debug_assert_eq!(coeffs.len(), vs.len());
        if let Some(mp) = transport::active() {
            let me = mp.rank();
            let parts: Vec<&[S]> = vs.iter().map(|v| v.part(me)).collect();
            let partial = op::par_multi_axpy_norm_sqr(coeffs, &parts, w.part_mut(me));
            return mp.allreduce_lanes(&[partial])[0];
        }
        let mut acc = 0.0f64;
        for (l, wp) in w.parts_mut().iter_mut().enumerate() {
            let parts: Vec<&[S]> = vs.iter().map(|v| v.part(l)).collect();
            acc += op::par_multi_axpy_norm_sqr(coeffs, &parts, wp);
        }
        acc
    }
}

/// A linear operator over an abstract Krylov vector type.
///
/// This is what the generic solvers ([`crate::lanczos::lanczos_smallest_in`],
/// [`crate::expm::evolve_real_time_in`], ...) are written against. The
/// slice-based [`LinearOp`] gets a blanket implementation for
/// `V = Vec<S>`, so every existing operator works unchanged; distributed
/// operators implement this directly for `DistVec<S>` and run their
/// products in place on the parts.
pub trait KrylovOp<V: KrylovVec> {
    /// Dimension of the (square) operator — `V::len` of its vectors.
    fn dim(&self) -> usize;

    /// Allocates a zero vector in this operator's layout (the solvers'
    /// workspace hook: one call per solver invocation, never per
    /// iteration).
    fn new_vec(&self) -> V;

    /// Computes `y = A x` in place on `y`'s storage.
    fn apply(&self, x: &V, y: &mut V);

    /// Computes `y = A x` and returns `⟨x, y⟩` — the fused matvec+dot
    /// epilogue of a Lanczos iteration. Implementations override it when
    /// they can accumulate the inner product while the freshly written
    /// output is still cache-resident.
    fn apply_dot(&self, x: &V, y: &mut V) -> V::Scalar {
        self.apply(x, y);
        x.dot(y)
    }

    /// True when the operator is Hermitian. The Krylov solvers require it.
    fn is_hermitian(&self) -> bool {
        true
    }

    /// Restores the operator to a usable state after detected corruption,
    /// before the solver replays from its newest checkpoint. In-process
    /// operators are stateless with respect to a cycle, so the default is
    /// a no-op; distributed operators override it to re-synchronize the
    /// transport (drain poisoned state, re-enter a clean communication
    /// epoch) and rebuild any communication-plan caches.
    fn recover(&self) {}
}

/// Every slice-based operator is a Krylov operator over `Vec<S>`,
/// including its fused `apply_dot` override (e.g. the batched-pull
/// matvec+dot of `ls-core`).
impl<S: Scalar, Op: LinearOp<S> + ?Sized> KrylovOp<Vec<S>> for Op {
    fn dim(&self) -> usize {
        LinearOp::dim(self)
    }

    fn new_vec(&self) -> Vec<S> {
        vec![S::ZERO; LinearOp::dim(self)]
    }

    fn apply(&self, x: &Vec<S>, y: &mut Vec<S>) {
        LinearOp::apply(self, x, y);
    }

    fn apply_dot(&self, x: &Vec<S>, y: &mut Vec<S>) -> S {
        LinearOp::apply_dot(self, x, y)
    }

    fn is_hermitian(&self) -> bool {
        LinearOp::is_hermitian(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls_kernels::Complex64;

    fn ramp(n: usize, scale: f64) -> Vec<f64> {
        (0..n).map(|i| ((i % 89) as f64 - 44.0) * scale).collect()
    }

    /// Splits a dense vector into parts of the given lengths.
    fn split(v: &[f64], lens: &[usize]) -> DistVec<f64> {
        let mut parts = Vec::new();
        let mut lo = 0usize;
        for &len in lens {
            parts.push(v[lo..lo + len].to_vec());
            lo += len;
        }
        assert_eq!(lo, v.len());
        DistVec::from_parts(parts)
    }

    #[test]
    fn dist_primitives_agree_with_dense() {
        let n = 3 * op::REDUCE_BLOCK + 137;
        let lens = [op::REDUCE_BLOCK + 1, 0, n - op::REDUCE_BLOCK - 1 - 500, 500];
        let a = ramp(n, 1e-3);
        let b = ramp(n, -7e-4);
        let da = split(&a, &lens);
        let db = split(&b, &lens);
        let tol = 1e-12 * n as f64;
        assert!((KrylovVec::dot(&da, &db) - op::dot(&a, &b)).abs() <= tol);
        assert!((da.norm_sqr() - op::norm_sqr(&a)).abs() <= tol);

        let mut y = db.clone();
        y.axpy(0.37, &da);
        let mut y_ref = b.clone();
        op::axpy(0.37, &a, &mut y_ref);
        assert_eq!(y.concat(), y_ref, "axpy");
        y.scale(0.25);
        op::scale(&mut y_ref, 0.25);
        assert_eq!(y.concat(), y_ref, "scale");

        let mut y = db.clone();
        let fused = y.axpy_norm_sqr(-0.11, &da);
        let mut y_ref = b.clone();
        op::axpy(-0.11, &a, &mut y_ref);
        assert_eq!(y.concat(), y_ref, "fused axpy");
        assert!((fused - op::norm_sqr(&y_ref)).abs() <= tol, "fused norm");
    }

    #[test]
    fn dist_multi_kernels_agree_with_loops() {
        let n = 2 * op::REDUCE_BLOCK + 33;
        let lens = [17usize, n - 17 - 1000, 0, 1000];
        let w = ramp(n, 5e-4);
        let vs: Vec<Vec<f64>> = (0..5).map(|k| ramp(n, 1e-3 * (k + 1) as f64)).collect();
        let dw = split(&w, &lens);
        let dvs: Vec<DistVec<f64>> = vs.iter().map(|v| split(v, &lens)).collect();

        let coeffs = KrylovVec::multi_dot(&dvs, &dw);
        for (b, v) in vs.iter().enumerate() {
            let expect = op::dot(v, &w);
            assert!((coeffs[b] - expect).abs() <= 1e-12 * n as f64, "lane {b}");
        }

        let mut out = dw.clone();
        DistVec::multi_axpy(&coeffs, &dvs, &mut out);
        let mut out_ref = w.clone();
        for i in 0..n {
            for (b, v) in vs.iter().enumerate() {
                out_ref[i] += coeffs[b] * v[i];
            }
        }
        assert_eq!(out.concat(), out_ref, "multi-axpy");

        let mut out2 = dw.clone();
        let fused = DistVec::multi_axpy_norm_sqr(&coeffs, &dvs, &mut out2);
        assert_eq!(out2.concat(), out_ref, "fused multi-axpy update");
        assert!((fused - op::norm_sqr(&out_ref)).abs() <= 1e-10 * n as f64, "fused norm");
    }

    #[test]
    fn fill_order_is_global_element_order() {
        let mut dense = vec![0.0f64; 23];
        let mut dist = DistVec::<f64>::zeros(&[5, 0, 11, 7]);
        let mut k = 0;
        KrylovVec::fill_with(&mut dense, &mut |i| i as f64 * 0.5);
        KrylovVec::fill_with(&mut dist, &mut |i| {
            assert_eq!(i, k, "fill must visit ascending global order");
            k += 1;
            i as f64 * 0.5
        });
        assert_eq!(dist.concat(), dense);
    }

    #[test]
    fn blanket_krylov_op_matches_linear_op() {
        let a = crate::op::DenseOp::new(2, vec![1.0, 2.0, 3.0, 4.0]);
        let x = vec![1.0, 1.0];
        let mut y = KrylovOp::<Vec<f64>>::new_vec(&a);
        assert_eq!(y, vec![0.0, 0.0]);
        let d = KrylovOp::apply_dot(&a, &x, &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
        assert_eq!(d, 10.0);
        assert_eq!(KrylovOp::<Vec<f64>>::dim(&a), 2);
        assert!(KrylovOp::<Vec<f64>>::is_hermitian(&a));
    }

    #[test]
    fn complex_dist_dot_conjugates_left() {
        let a = DistVec::from_parts(vec![vec![Complex64::new(0.0, 1.0)], vec![]]);
        assert!(KrylovVec::dot(&a, &a).approx_eq(Complex64::ONE, 1e-15));
    }
}
