//! Thick-restart Lanczos: memory-bounded eigensolving with
//! checkpoint/restart.
//!
//! Full-reorthogonalization Lanczos ([`crate::lanczos`]) retains every
//! Krylov vector, so a long solve on a large sector is memory-bound by
//! the *solver* (`m · dim` scalars), not the matrix — exactly backwards
//! for a code whose point is reaching dimensions where memory is the
//! binding constraint. Thick restart (Wu & Simon; the restarting used by
//! the Lanczos solvers in XDiag / `lattice-symmetries`) caps the basis:
//! run a cycle of the ordinary recurrence, diagonalize the projected
//! matrix, keep only the best `keep` Ritz pairs plus the trailing
//! residual direction, and continue expanding from there. The retained
//! set plus workspace never exceeds `k + extra` vectors
//! ([`RestartOptions`]), so sector size — not iteration count — sets the
//! memory budget.
//!
//! After a restart the projected operator is no longer tridiagonal but
//! **arrowhead + tridiagonal**: locked Ritz values `θ_i` on the diagonal,
//! a border `s_i = β·y_i[m-1]` coupling each locked vector to the chain
//! seed, then the new `α/β` chain. The first cycle solves the projected
//! problem with the tridiagonal QL of [`crate::tridiag`]; restarted
//! cycles use the dense Jacobi reference ([`crate::jacobi`]) on the small
//! `m × m` projected matrix — both `O(m³) ≪` one matrix-vector product.
//!
//! The expansion itself is the same blocked-CGS2 pipeline as the
//! unrestarted solver (fused [`KrylovOp::apply_dot`],
//! `multi_dot`/`multi_axpy` sweeps, fused update+norm), written against
//! [`KrylovVec`]/[`KrylovOp`] — one implementation serves `Vec<S>` and
//! the locale-partitioned `DistVec<S>`, and a distributed solve stays
//! distributed.
//!
//! Long cluster runs additionally get **checkpoint/restart**
//! ([`CheckpointPolicy`]): at restart boundaries the compressed state
//! (locked basis + chain seed + projected coefficients + restart/RNG
//! counters) is written atomically in the versioned, checksummed format
//! of [`crate::checkpoint`]. A killed solve resumed from its checkpoint
//! is **bit-identical** to the uninterrupted one — same eigenvalues,
//! same Ritz vectors, to the last bit, at any `LS_NUM_THREADS`.

use crate::checkpoint::{
    load_latest_checkpoint, save_checkpoint_ref, save_checkpoint_rotated, CheckpointStateRef,
};
use crate::health::{max_rollbacks_from_env, raise, HealthMonitor, SolverHealthError};
use crate::jacobi::eigh_real;
use crate::lanczos::{
    cgs2_beta, lanczos_plain_in, random_fill, LanczosOptions, LanczosResult, LanczosResultIn,
};
use crate::tridiag::tridiag_eigh;
use crate::vector::{KrylovOp, KrylovVec};
use crate::LinearOp;
use ls_kernels::Scalar;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Exact-breakdown threshold, shared with the unrestarted solver.
const BREAKDOWN: f64 = 1e-13;

/// When and where to checkpoint a thick-restart solve.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Checkpoint file. Writes are atomic (`<path>.tmp` + rename); the
    /// file is overwritten as the solve progresses and left in place on
    /// completion (delete it to force a fresh start).
    pub path: PathBuf,
    /// Write every `every` completed restart cycles (≥ 1).
    pub every: usize,
    /// Resume from `path` when it exists (default). The checkpoint must
    /// match the solve (same `k`, budget, storage kind, scalar width and
    /// part layout) — anything else panics with the typed
    /// [`crate::checkpoint::CheckpointError`], because a silently
    /// mismatched resume could not be bit-identical.
    pub resume: bool,
    /// Generations to retain (default 1). With `keep == 1`, `path` holds
    /// the single checkpoint file (the historical format). With
    /// `keep > 1`, `path` holds a crash-consistent manifest and the last
    /// `keep` generations live in sibling `<filename>.g<cycle>` files
    /// ([`crate::checkpoint::save_checkpoint_rotated`]): a crash mid-write
    /// strands at most the newest generation, and resumes fall back to
    /// the newest *valid* one — still bit-identical, because resuming
    /// from any cycle reproduces the same trajectory.
    pub keep: usize,
}

impl CheckpointPolicy {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into(), every: 1, resume: true, keep: 1 }
    }
}

/// Options for [`thick_restart_lanczos_in`].
///
/// Defaults ([`RestartOptions::new`]): `extra = max(2k, 24)` (total
/// budget `k + extra` vectors), `max_restarts = 400`, `tol = 1e-10`,
/// `seed = 0x5eed`, no vectors, no checkpointing.
#[derive(Clone, Debug)]
pub struct RestartOptions {
    /// Number of wanted (smallest) eigenpairs.
    pub k: usize,
    /// Memory headroom beyond `k`: the solve holds at most `k + extra`
    /// Krylov-state vectors at any instant (locked Ritz vectors, chain,
    /// workspace and compression scratch). Must be ≥ `k + 3` so a
    /// restart cycle can make progress.
    pub extra: usize,
    /// Cap on completed restart cycles, **cumulative across resumes**
    /// (the counter is stored in the checkpoint): a resumed solve
    /// continues toward the same limit. Hitting it returns the current
    /// Ritz estimates with `converged = false`.
    pub max_restarts: usize,
    /// Convergence threshold on the Ritz residual estimate
    /// `|β·y_i[m-1]|` relative to the spectral scale.
    pub tol: f64,
    /// Seed for the start vector and breakdown re-seeds. Each draw uses
    /// a counter-derived stream, so resumed runs redraw identically.
    pub seed: u64,
    /// Compute Ritz vectors?
    pub want_vectors: bool,
    /// Checkpoint/restart policy (off by default).
    pub checkpoint: Option<CheckpointPolicy>,
}

impl RestartOptions {
    pub fn new(k: usize) -> Self {
        Self {
            k,
            extra: (2 * k).max(24),
            max_restarts: 400,
            tol: 1e-10,
            seed: 0x5eed,
            want_vectors: false,
            checkpoint: None,
        }
    }
}

impl Default for RestartOptions {
    fn default() -> Self {
        Self::new(1)
    }
}

/// Splits the total vector budget `b = k + extra` into the locked count
/// per restart (`keep`) and the cycle expansion cap (`m`). Compression
/// transiently holds `m` old + `keep` new + 1 residual vectors, all of
/// which must fit in `b`: `m = b - keep - 1`.
pub(crate) fn split_budget(k: usize, b: usize) -> (usize, usize) {
    debug_assert!(b >= 2 * k + 3);
    let keep = (k + ((b - k) / 4).max(1)).min((b - 3) / 2).max(k);
    let m = b - keep - 1;
    debug_assert!(m > keep);
    (keep, m)
}

/// Draws the `draws`-th random vector of the solve. Every draw seeds its
/// own RNG from `(seed, draw index)`, so a resumed run reproduces the
/// exact stream without serializing RNG internals.
fn draw_random<V: KrylovVec>(v: &mut V, seed: u64, draws: &mut u64) {
    let mut rng =
        StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(*draws + 1));
    random_fill(v, &mut rng);
    *draws += 1;
}

/// Dense symmetric projected matrix: locked arrowhead (diagonal `θ_i`,
/// border `s_i` in column `l`) followed by the tridiagonal chain.
fn projected_dense(diag: &[f64], border: &[f64], offdiag: &[f64], l: usize) -> Vec<f64> {
    let m = diag.len();
    let mut t = vec![0.0f64; m * m];
    for (i, &d) in diag.iter().enumerate() {
        t[i * m + i] = d;
    }
    for (i, &s) in border.iter().enumerate().take(l) {
        t[i * m + l] = s;
        t[l * m + i] = s;
    }
    for (idx, &beta) in offdiag.iter().enumerate() {
        let j = l + idx;
        t[j * m + j + 1] = beta;
        t[(j + 1) * m + j] = beta;
    }
    t
}

/// Eigen-decomposition of the projected matrix: tridiagonal QL on the
/// first cycle (`l == 0`), dense Jacobi on the arrowhead thereafter.
fn projected_eigh(
    diag: &[f64],
    border: &[f64],
    offdiag: &[f64],
    l: usize,
) -> (Vec<f64>, Vec<Vec<f64>>) {
    if l == 0 {
        let (vals, vecs) = tridiag_eigh(diag, offdiag, true);
        (vals, vecs.unwrap())
    } else {
        eigh_real(&projected_dense(diag, border, offdiag, l), diag.len())
    }
}

/// Shared-memory wrapper over [`thick_restart_lanczos_in`] with
/// `V = Vec<S>`.
pub fn thick_restart_lanczos<S: Scalar, Op: LinearOp<S> + ?Sized>(
    op: &Op,
    opts: &RestartOptions,
) -> LanczosResult<S> {
    thick_restart_lanczos_in::<Vec<S>, Op>(op, opts)
}

/// Computes the `k` smallest eigenpairs of a Hermitian operator while
/// holding at most `k + extra` Krylov-state vectors, restarting the
/// recurrence through the Ritz compression of the projected matrix.
///
/// The result type is the same [`LanczosResultIn`] the unrestarted
/// solver returns (Ritz vectors come back in the solver's storage);
/// `iterations` counts matrix-vector products performed *by this call*
/// and `peak_retained` reports the realized vector high-water mark.
///
/// # Panics
/// Panics if `k == 0`, `k > op.dim()`, `extra < k + 3`, the operator
/// reports itself non-Hermitian, or resuming from a corrupt/mismatched
/// checkpoint (the typed [`crate::checkpoint::CheckpointError`] is in
/// the panic message).
pub fn thick_restart_lanczos_in<V: KrylovVec, Op: KrylovOp<V> + ?Sized>(
    op: &Op,
    opts: &RestartOptions,
) -> LanczosResultIn<V> {
    let n = op.dim();
    let k = opts.k;
    assert!(k >= 1, "need at least one eigenpair");
    assert!(k <= n, "k = {k} exceeds dimension {n}");
    assert!(op.is_hermitian(), "Lanczos requires a Hermitian operator");
    assert!(
        opts.extra >= k + 3,
        "restart budget too small: extra = {} but need extra >= k + 3 = {}",
        opts.extra,
        k + 3
    );
    let b = k + opts.extra;
    // Delegate to the unrestarted solver only when its own high-water
    // mark (n basis vectors + workspace + Ritz assembly) provably fits
    // the budget — the `≤ k + extra` contract holds on every path.
    // Slightly larger small problems still run the restart machinery:
    // the expansion simply exhausts the space and finishes exactly.
    let assembly = if opts.want_vectors { k } else { 0 };
    if n + 1 + assembly <= b {
        let plain = LanczosOptions {
            max_iter: n,
            tol: opts.tol,
            seed: opts.seed,
            want_vectors: opts.want_vectors,
            ..Default::default()
        };
        return lanczos_plain_in(op, k, &plain);
    }
    let (keep_max, m) = split_budget(k, b);

    // ---- state at a restart boundary -----------------------------------
    // basis = [u_0 .. u_{l-1}, chain seed, chain ...]; diag holds the l
    // locked Ritz values then the chain alphas; border couples each
    // locked vector to the chain seed; offdiag is the chain betas.
    let mut basis: Vec<V> = Vec::with_capacity(m);
    let mut diag: Vec<f64> = Vec::with_capacity(m);
    let mut border: Vec<f64> = Vec::new();
    let mut offdiag: Vec<f64> = Vec::with_capacity(m);
    let mut l = 0usize;
    let mut restarts = 0usize;
    let mut draws = 0u64;
    let mut breakdowns = 0usize;

    if let Some(cp) = &opts.checkpoint {
        if cp.resume && cp.path.exists() {
            let st = match load_latest_checkpoint::<V, Op>(&cp.path, op) {
                Ok(st) => st,
                Err(e) => {
                    panic!("cannot resume from checkpoint {}: {e}", cp.path.display())
                }
            };
            assert!(
                st.k == k && st.budget == b,
                "checkpoint {} was written for k = {}, budget = {} (this solve: k = {k}, \
                 budget = {b}); resuming under different parameters would not be \
                 bit-identical",
                cp.path.display(),
                st.k,
                st.budget,
            );
            l = st.retained;
            diag = st.diag;
            border = st.border;
            basis = st.basis;
            restarts = st.restarts;
            draws = st.draws;
            breakdowns = st.breakdowns as usize;
        }
    }
    if basis.is_empty() {
        let mut v0 = op.new_vec();
        draw_random(&mut v0, opts.seed, &mut draws);
        let nrm = v0.norm();
        v0.scale(1.0 / nrm);
        basis.push(v0);
    }

    let mut w = op.new_vec();
    let mut matvecs = 0usize;
    let mut peak = basis.len() + 1; // basis + workspace w
    let mut converged = false;
    // Current Ritz estimates (from the resumed locked set, if any) so a
    // run that performs zero new cycles still reports something sane.
    let mut vals: Vec<f64> = diag.iter().copied().take(k).collect();
    let mut residuals: Vec<f64> = border.iter().map(|s| s.abs()).take(k).collect();
    let mut eigenvectors: Option<Vec<V>> = None;

    // ---- silent-error defense ------------------------------------------
    // Each cycle runs inside `catch_unwind`; a typed corruption signal
    // (transport CRC/ABFT violation or a solver health check) rolls the
    // solve back to its newest valid checkpoint instead of dying,
    // bounded by LS_MAX_ROLLBACKS. Anything else re-raises untouched.
    let monitor = HealthMonitor::from_env();
    let max_rollbacks = max_rollbacks_from_env() as u64;
    let mut rollbacks = 0u64;

    'outer: while restarts < opts.max_restarts {
        let cycle_done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // ---- expansion: grow the chain to m vectors --------------------
            let mut beta_last = 0.0f64;
            // Set when the chain filled up via a breakdown while an
            // unexplored invariant subspace provably remains: the cycle must
            // then compress and restart from that fresh direction instead of
            // declaring the (exact but possibly multiplicity-deficient)
            // projected values converged.
            let mut forced_restart = false;
            loop {
                let j = basis.len() - 1;
                debug_assert_eq!(diag.len(), j, "projected matrix out of step with basis");
                let alpha = op.apply_dot(&basis[j], &mut w).re();
                matvecs += 1;
                diag.push(alpha);
                // Full blocked-CGS2 reorthogonalization against the *whole*
                // retained set — locked Ritz vectors and chain alike. The
                // first pass subsumes the explicit `α v_j`, `β v_{j-1}` and
                // `Σ s_i u_i` subtractions.
                let beta = cgs2_beta(&basis, &mut w);
                if let Err(e) = monitor.check_step(restarts, alpha, beta) {
                    raise(e);
                }
                if beta <= BREAKDOWN {
                    // Exact invariant subspace. Re-seed with a fresh random
                    // direction orthogonalized (CGS2) against every retained
                    // vector — including the locked Ritz vectors — so the
                    // next block explores an unexplored subspace.
                    breakdowns += 1;
                    let mut fresh = op.new_vec();
                    draw_random(&mut fresh, opts.seed, &mut draws);
                    let before = fresh.norm();
                    let nf = cgs2_beta(&basis, &mut fresh);
                    if nf <= 1e-10 * before {
                        // The basis spans the reachable space: the projected
                        // problem is exact and complete. Finish on it.
                        break;
                    }
                    fresh.scale(1.0 / nf);
                    if basis.len() == m {
                        if breakdowns > k {
                            // More than k independent invariant blocks have
                            // been explored (cumulative across cycles, like
                            // the unrestarted solver's rule): every copy of
                            // the wanted eigenvalues is reachable from some
                            // block, so the exact projected values stand.
                            break;
                        }
                        // The chain is full but `fresh` just proved an
                        // unexplored subspace remains — multiplicity may be
                        // unresolved. Force a restart with `fresh` as the
                        // next chain seed (β = 0: decoupled from the locked
                        // set, exactly a random-restart block).
                        w = fresh;
                        beta_last = 0.0;
                        forced_restart = true;
                        break;
                    }
                    offdiag.push(0.0);
                    basis.push(fresh);
                    peak = peak.max(basis.len() + 1);
                    continue;
                }
                if basis.len() == m {
                    beta_last = beta;
                    w.scale(1.0 / beta);
                    break; // w is now the normalized residual v_res
                }
                offdiag.push(beta);
                w.scale(1.0 / beta);
                basis.push(w.clone());
                peak = peak.max(basis.len() + 1);
            }

            // ---- cycle end: projected solve + convergence test -------------
            let mcur = basis.len();
            assert!(mcur >= k, "Krylov space collapsed below k = {k} (dim {n})");
            let (cvals, yvecs) = projected_eigh(&diag, &border, &offdiag, l);
            if let Err(e) = monitor.check_ritz(restarts, &cvals) {
                raise(e);
            }
            let spectral_scale =
                cvals.iter().fold(0.0f64, |acc, v| acc.max(v.abs())).max(1e-300);
            let resid: Vec<f64> =
                (0..k).map(|i| (beta_last * yvecs[i][mcur - 1]).abs()).collect();
            if let Err(e) = monitor.check_residuals(restarts, &resid) {
                raise(e);
            }
            let ok = !forced_restart && resid.iter().all(|r| *r <= opts.tol * spectral_scale);
            vals = cvals[..k].to_vec();
            residuals = resid;

            if ok {
                // Converged (β_last ≈ 0 without a forced restart means the
                // reachable space is exhausted — the projected problem is
                // then exact). Assemble Ritz vectors from the full cycle
                // basis before anything is compressed away.
                converged = true;
                if opts.want_vectors {
                    let mut out = Vec::with_capacity(k);
                    for yv in yvecs.iter().take(k) {
                        let mut x = op.new_vec();
                        let coeffs: Vec<V::Scalar> =
                            yv.iter().take(mcur).map(|&t| V::Scalar::from_re(t)).collect();
                        V::multi_axpy(&coeffs, &basis[..mcur], &mut x);
                        let nx = x.norm();
                        x.scale(1.0 / nx);
                        out.push(x);
                    }
                    peak = peak.max(mcur + 1 + k);
                    eigenvectors = Some(out);
                }
                return true;
            }

            // ---- thick restart: compress to the best keep Ritz pairs -------
            let keep = keep_max.min(mcur - 2).max(k);
            let mut new_basis: Vec<V> = Vec::with_capacity(keep + 1);
            for yv in yvecs.iter().take(keep) {
                let mut u = op.new_vec();
                let coeffs: Vec<V::Scalar> =
                    yv.iter().take(mcur).map(|&t| V::Scalar::from_re(t)).collect();
                V::multi_axpy(&coeffs, &basis[..mcur], &mut u);
                new_basis.push(u);
            }
            peak = peak.max(mcur + keep + 1);
            let new_border: Vec<f64> =
                (0..keep).map(|i| beta_last * yvecs[i][mcur - 1]).collect();
            basis = new_basis; // old cycle basis freed here
            basis.push(std::mem::replace(&mut w, op.new_vec())); // residual seeds the next chain
            l = keep;
            diag = cvals[..keep].to_vec();
            border = new_border;
            offdiag.clear();
            restarts += 1;

            // Retained-set orthonormality: the compressed basis is the state
            // the *whole rest of the solve* builds on, so drift here (a
            // flipped bit in a locked Ritz vector) would silently poison
            // every later cycle. Checked at the boundary, before it is
            // checkpointed as "good".
            if let Err(e) = monitor.check_basis(restarts, &basis) {
                raise(e);
            }

            if let Some(cp) = &opts.checkpoint {
                if restarts.is_multiple_of(cp.every.max(1)) {
                    // Borrowed state: no clone of the retained basis, so the
                    // write stays inside the k + extra vector budget.
                    let st = CheckpointStateRef {
                        k,
                        budget: b,
                        restarts,
                        draws,
                        breakdowns: breakdowns as u64,
                        retained: l,
                        diag: &diag,
                        border: &border,
                        basis: &basis,
                    };
                    let written = if cp.keep > 1 {
                        save_checkpoint_rotated(&cp.path, &st, cp.keep)
                    } else {
                        save_checkpoint_ref(&cp.path, &st)
                    };
                    if let Err(e) = written {
                        panic!("failed to write checkpoint {}: {e}", cp.path.display());
                    }
                }
            }
            false
        }));

        match cycle_done {
            Ok(true) => break 'outer,
            Ok(false) => {}
            Err(payload) => {
                // Only *typed corruption signals* are recoverable: a
                // solver health violation or a transport integrity error.
                // Plain panics (bugs, assertion failures) re-raise as-is.
                let recoverable = payload.downcast_ref::<SolverHealthError>().is_some()
                    || payload.downcast_ref::<ls_runtime::TransportError>().is_some_and(|e| {
                        matches!(e, ls_runtime::TransportError::Corruption { .. })
                    });
                if !recoverable || rollbacks >= max_rollbacks {
                    std::panic::resume_unwind(payload);
                }
                rollbacks += 1;
                eprintln!(
                    "ls-eigen: corruption detected in restart cycle {restarts}; rolling back \
                     ({rollbacks}/{max_rollbacks})"
                );
                // Give the operator a chance to re-synchronize (the
                // distributed backend drains transport poison and
                // re-enters a clean communication epoch here) *before*
                // the replay issues collectives.
                op.recover();
                let restored = opts
                    .checkpoint
                    .as_ref()
                    .filter(|cp| cp.path.exists())
                    .and_then(|cp| load_latest_checkpoint::<V, Op>(&cp.path, op).ok())
                    .filter(|st| st.k == k && st.budget == b);
                match restored {
                    Some(st) => {
                        l = st.retained;
                        diag = st.diag;
                        border = st.border;
                        basis = st.basis;
                        restarts = st.restarts;
                        draws = st.draws;
                        breakdowns = st.breakdowns as usize;
                    }
                    None => {
                        // No checkpoint written yet (or none valid): roll
                        // all the way back to the start. Draws are
                        // counter-derived, so the replayed trajectory is
                        // the uninterrupted one, bit for bit.
                        l = 0;
                        restarts = 0;
                        draws = 0;
                        breakdowns = 0;
                        diag = Vec::new();
                        border = Vec::new();
                        basis = Vec::new();
                        let mut v0 = op.new_vec();
                        draw_random(&mut v0, opts.seed, &mut draws);
                        let nrm = v0.norm();
                        v0.scale(1.0 / nrm);
                        basis.push(v0);
                    }
                }
                offdiag.clear();
                w = op.new_vec();
                vals = diag.iter().copied().take(k).collect();
                residuals = border.iter().map(|s| s.abs()).take(k).collect();
            }
        }
    }

    if opts.want_vectors && eigenvectors.is_none() && l >= k {
        // Restart budget exhausted before convergence: the locked basis
        // holds the current best Ritz vectors — return them (best
        // effort, aligned with the reported eigenvalue estimates) so
        // `want_vectors` is honored on every exit path that has them.
        eigenvectors = Some(basis[..k].to_vec());
        peak = peak.max(basis.len() + 1 + k);
    }

    LanczosResultIn {
        eigenvalues: vals,
        eigenvectors,
        iterations: matvecs,
        residuals,
        converged,
        peak_retained: peak,
        rollbacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::eigh_real;
    use crate::lanczos::lanczos_smallest;
    use crate::op::DenseOp;

    fn random_symmetric(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        let mut next = move || {
            s = ls_kernels::hash64_01(s.wrapping_add(1));
            (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let x = next();
                a[i * n + j] = x;
                a[j * n + i] = x;
            }
        }
        a
    }

    #[test]
    fn matches_dense_with_a_tight_budget() {
        let n = 120;
        let a = random_symmetric(n, 11);
        let (expect, _) = eigh_real(&a, n);
        let op = DenseOp::new(n, a);
        let opts = RestartOptions {
            extra: 14, // budget 18 vectors on a 120-dim problem
            tol: 1e-11,
            want_vectors: true,
            ..RestartOptions::new(4)
        };
        let res = thick_restart_lanczos(&op, &opts);
        assert!(res.converged, "residuals {:?}", res.residuals);
        assert!(res.peak_retained <= opts.k + opts.extra, "peak {}", res.peak_retained);
        for (i, (got, want)) in res.eigenvalues.iter().zip(&expect).enumerate() {
            assert!((got - want).abs() < 1e-7, "λ{i}: {got} vs {want}");
        }
        // Ritz vectors are genuine eigenvectors.
        let op_ref = DenseOp::new(n, random_symmetric(n, 11));
        for (lam, v) in res.eigenvalues.iter().zip(res.eigenvectors.as_ref().unwrap()) {
            let mut av = vec![0.0f64; n];
            LinearOp::apply(&op_ref, v, &mut av);
            let rn: f64 = av
                .iter()
                .zip(v)
                .map(|(x, y)| (x - lam * y) * (x - lam * y))
                .sum::<f64>()
                .sqrt();
            assert!(rn < 1e-6, "residual {rn}");
        }
    }

    #[test]
    fn agrees_with_full_memory_lanczos() {
        let n = 90;
        let a = random_symmetric(n, 23);
        let op = DenseOp::new(n, a);
        let full = lanczos_smallest(
            &op,
            3,
            &LanczosOptions { max_iter: n, tol: 1e-11, ..Default::default() },
        );
        let thick = thick_restart_lanczos(
            &op,
            &RestartOptions { extra: 10, tol: 1e-11, ..RestartOptions::new(3) },
        );
        assert!(full.converged && thick.converged);
        for (a, b) in full.eigenvalues.iter().zip(&thick.eigenvalues) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn small_problems_fall_back_to_plain_lanczos() {
        let n = 12;
        let a = random_symmetric(n, 5);
        let (expect, _) = eigh_real(&a, n);
        let op = DenseOp::new(n, a);
        let res = thick_restart_lanczos(&op, &RestartOptions::new(2));
        assert!(res.converged);
        for (got, want) in res.eigenvalues.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn truncated_then_resumed_is_bit_identical() {
        let n = 150;
        let a = random_symmetric(n, 77);
        let op = DenseOp::new(n, a);
        let mut path = std::env::temp_dir();
        path.push(format!("ls_restart_resume_{}.lsck", std::process::id()));
        std::fs::remove_file(&path).ok();

        let base = RestartOptions {
            extra: 12,
            tol: 1e-12,
            want_vectors: true,
            ..RestartOptions::new(2)
        };
        let uninterrupted = thick_restart_lanczos(&op, &base);
        assert!(uninterrupted.converged);

        // Same solve, but killed after 2 restart cycles and resumed.
        let ck = CheckpointPolicy::new(path.clone());
        let truncated = thick_restart_lanczos(
            &op,
            &RestartOptions { max_restarts: 2, checkpoint: Some(ck.clone()), ..base.clone() },
        );
        assert!(!truncated.converged, "picked max_restarts too large for the test");
        let resumed = thick_restart_lanczos(
            &op,
            &RestartOptions { checkpoint: Some(ck), ..base.clone() },
        );
        assert!(resumed.converged);
        for (a, b) in uninterrupted.eigenvalues.iter().zip(&resumed.eigenvalues) {
            assert_eq!(a.to_bits(), b.to_bits(), "resumed eigenvalue diverged");
        }
        let uv = uninterrupted.eigenvectors.unwrap();
        let rv = resumed.eigenvectors.unwrap();
        for (a, b) in uv.iter().zip(&rv) {
            let bits = |v: &Vec<f64>| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b), "resumed Ritz vector diverged");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rotated_resume_survives_a_torn_newest_generation() {
        use crate::checkpoint::{generation_path, manifest_generations, remove_checkpoint};
        let n = 150;
        let a = random_symmetric(n, 77);
        let op = DenseOp::new(n, a);
        let mut path = std::env::temp_dir();
        path.push(format!("ls_restart_rotated_{}.lsck", std::process::id()));
        remove_checkpoint(&path).unwrap();

        let base = RestartOptions {
            extra: 12,
            tol: 1e-12,
            want_vectors: true,
            ..RestartOptions::new(2)
        };
        let uninterrupted = thick_restart_lanczos(&op, &base);
        assert!(uninterrupted.converged);

        // Killed after 3 cycles with keep-last-2 rotation...
        let ck = CheckpointPolicy { keep: 2, ..CheckpointPolicy::new(path.clone()) };
        let truncated = thick_restart_lanczos(
            &op,
            &RestartOptions { max_restarts: 3, checkpoint: Some(ck.clone()), ..base.clone() },
        );
        assert!(!truncated.converged);
        assert_eq!(manifest_generations(&path).unwrap(), vec![2, 3]);

        // ...then the newest generation is torn by the "crash".
        let g3 = generation_path(&path, 3);
        let bytes = std::fs::read(&g3).unwrap();
        std::fs::write(&g3, &bytes[..bytes.len() / 2]).unwrap();

        // The resume falls back to generation 2 and still converges to
        // the bit-identical answer (any-cycle resume determinism).
        let resumed = thick_restart_lanczos(
            &op,
            &RestartOptions { checkpoint: Some(ck), ..base.clone() },
        );
        assert!(resumed.converged);
        for (a, b) in uninterrupted.eigenvalues.iter().zip(&resumed.eigenvalues) {
            assert_eq!(a.to_bits(), b.to_bits(), "rotated resume diverged");
        }
        remove_checkpoint(&path).unwrap();
    }

    #[test]
    fn degenerate_spectrum_recovers_multiplicity() {
        // 3 copies of -1 in a 60-dim space, solved with an 11-vector
        // budget: restarts + breakdown re-seeding must find all copies.
        let n = 60;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            a[i * n + i] = if i < 3 { -1.0 } else { 2.0 };
        }
        let op = DenseOp::new(n, a);
        let res =
            thick_restart_lanczos(&op, &RestartOptions { extra: 7, ..RestartOptions::new(4) });
        let copies = res.eigenvalues.iter().filter(|v| (*v + 1.0).abs() < 1e-8).count();
        assert_eq!(copies, 3, "eigenvalues {:?}", res.eigenvalues);
        assert!((res.eigenvalues[3] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn breakdown_at_chain_capacity_forces_a_restart() {
        // diag(-1 ×4, 2 ×56) with k = 4 and a budget whose expansion
        // chain (m = 6) fills with exactly three 2-dim invariant blocks:
        // the first cycle ends in a breakdown *at capacity* while a
        // fourth copy of -1 is still unexplored. Declaring the exact
        // projected values converged there would return [-1,-1,-1,2];
        // the forced restart must keep going until all four copies are
        // found.
        let n = 60;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            a[i * n + i] = if i < 4 { -1.0 } else { 2.0 };
        }
        let op = DenseOp::new(n, a);
        let res = thick_restart_lanczos(
            &op,
            &RestartOptions { extra: 7, want_vectors: true, ..RestartOptions::new(4) },
        );
        for (i, v) in res.eigenvalues.iter().enumerate() {
            assert!((v + 1.0).abs() < 1e-8, "λ{i} = {v}, expected all four copies of -1");
        }
        // want_vectors is honored on every exit path.
        assert_eq!(res.eigenvectors.as_ref().map(|e| e.len()), Some(4));
    }

    #[test]
    #[should_panic(expected = "extra >= k + 3")]
    fn undersized_budget_panics() {
        let op = DenseOp::new(50, vec![0.0; 2500]);
        let _ =
            thick_restart_lanczos(&op, &RestartOptions { extra: 2, ..RestartOptions::new(2) });
    }

    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    /// A dense operator that corrupts exactly one matvec output: the
    /// `fire_at`-th apply gets a NaN written into `y[0]`, once. Later
    /// (replayed) applies are clean, so a rolled-back solve retraces the
    /// uncorrupted trajectory — the hermetic stand-in for a one-shot
    /// soft error.
    struct NanOnceOp {
        inner: DenseOp<f64>,
        calls: AtomicUsize,
        fire_at: usize,
        fired: AtomicBool,
    }

    impl NanOnceOp {
        fn new(inner: DenseOp<f64>, fire_at: usize) -> Self {
            Self { inner, calls: AtomicUsize::new(0), fire_at, fired: AtomicBool::new(false) }
        }
    }

    impl LinearOp<f64> for NanOnceOp {
        fn dim(&self) -> usize {
            LinearOp::dim(&self.inner)
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            LinearOp::apply(&self.inner, x, y);
            let call = self.calls.fetch_add(1, Ordering::SeqCst);
            if call == self.fire_at && !self.fired.swap(true, Ordering::SeqCst) {
                y[0] = f64::NAN;
            }
        }
    }

    #[test]
    fn corrupted_cycle_rolls_back_to_checkpoint_bit_identically() {
        let n = 150;
        let a = random_symmetric(n, 77);
        let clean = thick_restart_lanczos(
            &DenseOp::new(n, a.clone()),
            &RestartOptions { extra: 12, tol: 1e-12, ..RestartOptions::new(2) },
        );
        assert!(clean.converged);
        assert_eq!(clean.rollbacks, 0, "clean run must not roll back");

        let mut path = std::env::temp_dir();
        path.push(format!("ls_restart_rollback_{}.lsck", std::process::id()));
        std::fs::remove_file(&path).ok();
        // Budget 14 → chain length 8: apply #15 (0-based) lands after the
        // second restart boundary, so a checkpoint exists to roll back to.
        let op = NanOnceOp::new(DenseOp::new(n, a.clone()), 15);
        let res = thick_restart_lanczos(
            &op,
            &RestartOptions {
                extra: 12,
                tol: 1e-12,
                checkpoint: Some(CheckpointPolicy::new(path.clone())),
                ..RestartOptions::new(2)
            },
        );
        assert!(res.converged, "residuals {:?}", res.residuals);
        assert_eq!(res.rollbacks, 1, "the poisoned cycle must be detected exactly once");
        for (c, r) in clean.eigenvalues.iter().zip(&res.eigenvalues) {
            assert_eq!(c.to_bits(), r.to_bits(), "rolled-back eigenvalue diverged");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_before_first_checkpoint_replays_from_the_start() {
        let n = 150;
        let a = random_symmetric(n, 77);
        let base = RestartOptions { extra: 12, tol: 1e-12, ..RestartOptions::new(2) };
        let clean = thick_restart_lanczos(&DenseOp::new(n, a.clone()), &base);
        // Fire during the very first cycle: no checkpoint exists yet, so
        // the rollback resets to the initial state; counter-derived draws
        // make the replay bit-identical to the uninterrupted run.
        let op = NanOnceOp::new(DenseOp::new(n, a.clone()), 3);
        let res = thick_restart_lanczos(&op, &base);
        assert!(res.converged);
        assert_eq!(res.rollbacks, 1);
        for (c, r) in clean.eigenvalues.iter().zip(&res.eigenvalues) {
            assert_eq!(c.to_bits(), r.to_bits(), "restarted eigenvalue diverged");
        }
    }

    #[test]
    fn persistent_corruption_exhausts_the_rollback_budget_and_reraises() {
        // An operator that *always* emits NaN: every replay fails again,
        // so the default LS_MAX_ROLLBACKS budget runs out and the typed
        // health error must surface to the caller (where the process
        // supervisor takes over in a multiprocess job).
        struct AlwaysNan(usize);
        impl LinearOp<f64> for AlwaysNan {
            fn dim(&self) -> usize {
                self.0
            }
            fn apply(&self, _x: &[f64], y: &mut [f64]) {
                y.fill(f64::NAN);
            }
        }
        let op = AlwaysNan(120);
        let payload = std::panic::catch_unwind(|| {
            thick_restart_lanczos(&op, &RestartOptions { extra: 12, ..RestartOptions::new(2) })
        })
        .expect_err("a persistently corrupt operator must not converge");
        let health = payload
            .downcast_ref::<crate::health::SolverHealthError>()
            .expect("payload must stay the typed SolverHealthError");
        assert_eq!(health.check, "alpha");
    }
}
