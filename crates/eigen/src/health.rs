//! Krylov health monitoring: the solver-level layer of the silent-error
//! defense.
//!
//! Transport CRCs ([`ls_runtime::crc32c()`], `LS_INTEGRITY`) catch bytes
//! that change in flight, but a silent error inside a rank — a flipped
//! bit in resident Krylov state, a miscomputed kernel — produces frames
//! that are internally consistent and checksum clean. What such errors
//! *cannot* fake is the algebra of the Lanczos recurrence: coefficients
//! stay finite, `β ≥ 0` by construction, the retained basis stays
//! orthonormal to working precision, and Ritz residual estimates are
//! finite numbers. [`HealthMonitor`] checks exactly those invariants once
//! per restart cycle (plus a per-iteration finiteness check that is a
//! handful of flops next to a matrix-vector product).
//!
//! A violation surfaces as a typed [`SolverHealthError`] thrown with
//! [`std::panic::panic_any`] — the same unwind channel the multiprocess
//! transport uses for [`ls_runtime::TransportError::Corruption`] — so the
//! thick-restart driver ([`crate::restart`]) catches both with one
//! `catch_unwind`, rolls the solve back to its newest valid checkpoint,
//! and only re-raises once `LS_MAX_ROLLBACKS` is exhausted (at which
//! point the process-level supervisor takes over).
//!
//! The orthogonality sweep is the only check that costs real work
//! (`O(l²·dim)` on the `l ≤ k + extra` retained vectors, once per cycle,
//! collective under the multiprocess transport), so it is gated on
//! `LS_INTEGRITY=full` like the segment checksums; everything else is
//! cheap enough to run unconditionally.

use crate::vector::KrylovVec;
use ls_kernels::Scalar;
use ls_runtime::IntegrityMode;
use std::fmt;

/// Environment knob bounding how many times a solve may roll back to a
/// checkpoint before re-raising the failure to the supervisor.
pub const ENV_MAX_ROLLBACKS: &str = "LS_MAX_ROLLBACKS";

/// Default rollback budget when [`ENV_MAX_ROLLBACKS`] is unset.
pub const DEFAULT_MAX_ROLLBACKS: usize = 3;

/// Reads the rollback budget from the environment (fresh each call, so
/// tests and long-lived drivers can adjust it between solves).
///
/// # Panics
/// Panics on an unparsable value — a typo'd budget silently defaulting
/// would change recovery behaviour without warning.
pub fn max_rollbacks_from_env() -> usize {
    match std::env::var(ENV_MAX_ROLLBACKS) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{ENV_MAX_ROLLBACKS}={v:?} is not a count")),
        Err(_) => DEFAULT_MAX_ROLLBACKS,
    }
}

/// A violated Lanczos invariant: the typed payload the health monitor
/// throws (via [`std::panic::panic_any`]) and the rollback driver in
/// [`crate::restart`] catches.
#[derive(Clone, Debug, PartialEq)]
pub struct SolverHealthError {
    /// Completed restart cycles at the time of detection (0 during the
    /// first cycle and for the unrestarted solver).
    pub cycle: usize,
    /// Which invariant failed (`"alpha"`, `"beta"`, `"ritz"`,
    /// `"residual"`, `"orthogonality"`).
    pub check: &'static str,
    /// Human-readable specifics: the offending value and its position.
    pub detail: String,
}

impl fmt::Display for SolverHealthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solver health violation in cycle {}: {} check failed ({})",
            self.cycle, self.check, self.detail
        )
    }
}

impl std::error::Error for SolverHealthError {}

/// Throws `err` down the unwind channel the rollback driver listens on.
/// `panic_any` keeps the payload typed: `catch_unwind` downcasts it back
/// to [`SolverHealthError`] instead of string-matching a message.
pub fn raise(err: SolverHealthError) -> ! {
    eprintln!("ls-eigen: {err}");
    std::panic::panic_any(err)
}

/// Per-cycle invariant checks over the Lanczos recurrence.
///
/// Construct with [`HealthMonitor::from_env`]; each method returns the
/// typed [`SolverHealthError`] on violation so the checks are unit-testable
/// without unwinding — solver call sites feed errors through [`raise`].
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    /// Tolerance on the orthonormality drift of the retained basis:
    /// `|⟨u_i, u_j⟩ − δ_ij|` beyond this is a violation. CGS2 keeps the
    /// basis orthonormal to a few ulps, so 1e-6 of drift means state was
    /// corrupted, not rounded.
    pub orth_tol: f64,
    /// Run the `O(l²·dim)` orthogonality sweep? Tied to
    /// `LS_INTEGRITY=full` by [`HealthMonitor::from_env`].
    pub check_orthogonality: bool,
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self { orth_tol: 1e-6, check_orthogonality: true }
    }
}

impl HealthMonitor {
    /// Monitor configured from `LS_INTEGRITY`: the cheap finiteness
    /// checks always run, the orthogonality sweep only under `full`.
    pub fn from_env() -> Self {
        Self { check_orthogonality: IntegrityMode::from_env().full(), ..Self::default() }
    }

    /// Checks one recurrence step: `α` finite, `β` finite and
    /// non-negative. (`β` is the norm of the reorthogonalized residual,
    /// so a negative value cannot arise from healthy arithmetic at all —
    /// only a NaN can sneak through `sqrt`.)
    pub fn check_step(
        &self,
        cycle: usize,
        alpha: f64,
        beta: f64,
    ) -> Result<(), SolverHealthError> {
        if !alpha.is_finite() {
            return Err(SolverHealthError {
                cycle,
                check: "alpha",
                detail: format!("diagonal coefficient is {alpha}"),
            });
        }
        if !beta.is_finite() || beta < 0.0 {
            return Err(SolverHealthError {
                cycle,
                check: "beta",
                detail: format!("off-diagonal coefficient is {beta}"),
            });
        }
        Ok(())
    }

    /// Checks the projected solve's output: every Ritz value finite.
    pub fn check_ritz(&self, cycle: usize, ritz: &[f64]) -> Result<(), SolverHealthError> {
        for (i, v) in ritz.iter().enumerate() {
            if !v.is_finite() {
                return Err(SolverHealthError {
                    cycle,
                    check: "ritz",
                    detail: format!("Ritz value {i} is {v}"),
                });
            }
        }
        Ok(())
    }

    /// Checks the residual estimates: finite (they are `|β·y|` of finite
    /// inputs — anything else means the projected eigenvectors are junk).
    pub fn check_residuals(
        &self,
        cycle: usize,
        residuals: &[f64],
    ) -> Result<(), SolverHealthError> {
        for (i, r) in residuals.iter().enumerate() {
            if !r.is_finite() {
                return Err(SolverHealthError {
                    cycle,
                    check: "residual",
                    detail: format!("residual estimate {i} is {r}"),
                });
            }
        }
        Ok(())
    }

    /// Checks orthonormality of the retained basis: every pairwise inner
    /// product within [`HealthMonitor::orth_tol`] of `δ_ij`. Skipped
    /// (Ok) unless [`HealthMonitor::check_orthogonality`] is set. Under
    /// the multiprocess transport this is collective (one allreduce per
    /// retained vector): call it from all ranks or none.
    pub fn check_basis<V: KrylovVec>(
        &self,
        cycle: usize,
        basis: &[V],
    ) -> Result<(), SolverHealthError> {
        if !self.check_orthogonality {
            return Ok(());
        }
        for (j, v) in basis.iter().enumerate() {
            // One blocked sweep gives column j of the Gram matrix; by
            // symmetry checking columns checks everything.
            let col = V::multi_dot(basis, v);
            for (i, c) in col.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                let [cre, cim] = c.to_reals();
                // Comparisons are written to *fail* on NaN (f64::max
                // would silently drop a NaN drift instead).
                let dre = (cre - expect).abs();
                let dim = cim.abs();
                let drift = if dre.is_nan() || dre >= dim { dre } else { dim };
                if !(dre <= self.orth_tol && dim <= self.orth_tol) {
                    return Err(SolverHealthError {
                        cycle,
                        check: "orthogonality",
                        detail: format!(
                            "|<u_{i}, u_{j}> - {expect}| = {drift:.3e} exceeds {:.1e}",
                            self.orth_tol
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mon() -> HealthMonitor {
        HealthMonitor::default()
    }

    #[test]
    fn finite_steps_pass_and_poisoned_steps_fail() {
        assert!(mon().check_step(0, 1.5, 0.25).is_ok());
        assert!(mon().check_step(0, 1.5, 0.0).is_ok());
        let e = mon().check_step(3, f64::NAN, 0.1).unwrap_err();
        assert_eq!(e.check, "alpha");
        assert_eq!(e.cycle, 3);
        assert_eq!(mon().check_step(0, 0.0, f64::INFINITY).unwrap_err().check, "beta");
        assert_eq!(mon().check_step(0, 0.0, -1e-3).unwrap_err().check, "beta");
    }

    #[test]
    fn ritz_and_residual_checks_catch_non_finite_entries() {
        assert!(mon().check_ritz(1, &[-2.0, 0.5]).is_ok());
        assert_eq!(mon().check_ritz(1, &[-2.0, f64::NAN]).unwrap_err().check, "ritz");
        assert!(mon().check_residuals(1, &[1e-12, 0.0]).is_ok());
        let e = mon().check_residuals(2, &[1e-12, f64::INFINITY]).unwrap_err();
        assert_eq!(e.check, "residual");
        assert!(e.detail.contains("estimate 1"), "{}", e.detail);
    }

    #[test]
    fn orthogonality_check_accepts_clean_and_flags_drifted_bases() {
        let basis: Vec<Vec<f64>> = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]];
        assert!(mon().check_basis(0, &basis).is_ok());
        // A corrupted retained vector: still unit norm, no longer
        // orthogonal to its neighbour.
        let s = 0.5f64.sqrt();
        let drifted: Vec<Vec<f64>> = vec![vec![1.0, 0.0, 0.0], vec![s, s, 0.0]];
        let e = mon().check_basis(4, &drifted).unwrap_err();
        assert_eq!(e.check, "orthogonality");
        assert_eq!(e.cycle, 4);
        // NaN contamination is also drift (comparison written to fail on
        // NaN, not pass vacuously).
        let nan: Vec<Vec<f64>> = vec![vec![f64::NAN, 0.0, 0.0]];
        assert_eq!(mon().check_basis(0, &nan).unwrap_err().check, "orthogonality");
        // Gated off: same drifted basis passes.
        let off = HealthMonitor { check_orthogonality: false, ..mon() };
        assert!(off.check_basis(4, &drifted).is_ok());
    }

    #[test]
    fn display_names_the_cycle_and_check() {
        let e = SolverHealthError { cycle: 7, check: "beta", detail: "is NaN".into() };
        let s = e.to_string();
        assert!(s.contains("cycle 7") && s.contains("beta"), "{s}");
    }

    #[test]
    fn rollback_budget_parses_and_defaults() {
        // Serial with respect to other env tests: unique var name.
        std::env::remove_var(ENV_MAX_ROLLBACKS);
        assert_eq!(max_rollbacks_from_env(), DEFAULT_MAX_ROLLBACKS);
        std::env::set_var(ENV_MAX_ROLLBACKS, "7");
        assert_eq!(max_rollbacks_from_env(), 7);
        std::env::remove_var(ENV_MAX_ROLLBACKS);
    }
}
