//! Krylov-subspace time evolution: `exp(z H)|ψ⟩` without forming `H`.
//!
//! The same Lanczos machinery that finds eigenvalues evaluates matrix
//! exponentials: project onto an `m`-dimensional Krylov space, exponentiate
//! the small tridiagonal matrix exactly (via its eigendecomposition) and
//! lift back. This powers real-time dynamics (`z = -it`) and
//! imaginary-time/thermal evolution (`z = -τ`) — the "dynamics" features
//! packages like QuSpin offer, built on the same matrix-vector product the
//! paper scales up.
//!
//! The propagators are generic over [`KrylovVec`]
//! ([`evolve_real_time_in`] / [`evolve_imaginary_time_in`]): the Krylov
//! factorization is the shared blocked-CGS2 pipeline of
//! [`crate::lanczos`] (fused matvec+dot, one `multi_dot`/`multi_axpy`
//! sweep per pass instead of a clone-and-subtract per basis vector), and
//! the lift back is a single fused `multi_axpy` sweep. Distributed
//! states evolve in place on their locale parts; the slice-based
//! wrappers ([`evolve_real_time`] / [`evolve_imaginary_time`]) cover the
//! shared-memory path.

use crate::lanczos::krylov_factorization;
use crate::tridiag::tridiag_eigh;
use crate::vector::{KrylovOp, KrylovVec};
use crate::LinearOp;
use ls_kernels::{Complex64, Scalar};

/// `exp(-i t H)|ψ⟩` for a Hermitian operator, via an `m`-dimensional
/// Krylov space. Unitary up to Krylov truncation error (use `m ≈ 20–40`
/// for moderate `t·‖H‖`). Slice-based wrapper over
/// [`evolve_real_time_in`].
pub fn evolve_real_time<Op: LinearOp<Complex64> + ?Sized>(
    op: &Op,
    psi: &[Complex64],
    t: f64,
    m: usize,
) -> Vec<Complex64> {
    evolve_real_time_owned(op, psi.to_vec(), t, m)
}

/// `exp(-i t H)|ψ⟩` in place on the operator's vector storage: the
/// Krylov basis, the projected exponential and the lifted result all
/// live in `V` (for a distributed state nothing is ever gathered).
pub fn evolve_real_time_in<V, Op>(op: &Op, psi: &V, t: f64, m: usize) -> V
where
    V: KrylovVec<Scalar = Complex64>,
    Op: KrylovOp<V> + ?Sized,
{
    evolve_real_time_owned(op, psi.clone(), t, m)
}

/// The owned core both entry points lower to: `psi` becomes the first
/// Krylov vector, so each caller pays exactly one copy of the state.
fn evolve_real_time_owned<V, Op>(op: &Op, psi: V, t: f64, m: usize) -> V
where
    V: KrylovVec<Scalar = Complex64>,
    Op: KrylovOp<V> + ?Sized,
{
    assert!(op.is_hermitian());
    let norm_in = psi.norm();
    if norm_in == 0.0 {
        return psi;
    }
    let (basis, alphas, betas) = krylov_factorization(op, psi, m.max(2));
    let k = alphas.len();
    let (vals, vecs) = tridiag_eigh(&alphas, &betas, true);
    let vecs = vecs.unwrap();
    // coeff_j = Σ_k Q_{j,k} e^{-i t λ_k} Q_{0,k} — note `vecs[k][j]` is
    // component j of eigenvector k.
    let mut coeffs = Vec::with_capacity(k);
    for j in 0..k {
        let mut cj = Complex64::ZERO;
        for (lam, q) in vals.iter().zip(&vecs) {
            cj += Complex64::cis(-t * lam).scale(q[j] * q[0]);
        }
        coeffs.push(cj.scale(norm_in));
    }
    let mut out = op.new_vec();
    V::multi_axpy(&coeffs, &basis[..k], &mut out);
    out
}

/// `exp(-τ H)|ψ⟩` (imaginary time), normalized. Works in real arithmetic
/// for real sectors; converges to the ground state as `τ → ∞`.
/// Slice-based wrapper over [`evolve_imaginary_time_in`].
pub fn evolve_imaginary_time<S: Scalar, Op: LinearOp<S> + ?Sized>(
    op: &Op,
    psi: &[S],
    tau: f64,
    m: usize,
) -> Vec<S> {
    evolve_imaginary_time_owned(op, psi.to_vec(), tau, m)
}

/// `exp(-τ H)|ψ⟩` (imaginary time, normalized) in place on the
/// operator's vector storage.
pub fn evolve_imaginary_time_in<V: KrylovVec, Op: KrylovOp<V> + ?Sized>(
    op: &Op,
    psi: &V,
    tau: f64,
    m: usize,
) -> V {
    evolve_imaginary_time_owned(op, psi.clone(), tau, m)
}

/// The owned core both entry points lower to (one state copy per call).
fn evolve_imaginary_time_owned<V: KrylovVec, Op: KrylovOp<V> + ?Sized>(
    op: &Op,
    psi: V,
    tau: f64,
    m: usize,
) -> V {
    assert!(op.is_hermitian());
    let norm_in = psi.norm();
    assert!(norm_in > 0.0, "zero start vector");
    let (basis, alphas, betas) = krylov_factorization(op, psi, m.max(2));
    let k = alphas.len();
    let (vals, vecs) = tridiag_eigh(&alphas, &betas, true);
    let vecs = vecs.unwrap();
    // Shift by the smallest Ritz value to avoid overflow for large τ.
    let shift = vals[0];
    let mut coeffs = Vec::with_capacity(k);
    for j in 0..k {
        let mut cj = 0.0f64;
        for (lam, q) in vals.iter().zip(&vecs) {
            cj += (-tau * (lam - shift)).exp() * q[j] * q[0];
        }
        coeffs.push(V::Scalar::from_re(cj));
    }
    let mut out = op.new_vec();
    V::multi_axpy(&coeffs, &basis[..k], &mut out);
    let n_out = out.norm();
    assert!(n_out > 0.0, "evolution annihilated the state");
    out.scale(1.0 / n_out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::eigh_real;
    use crate::op::{dot, norm, DenseOp};

    fn random_symmetric(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        let mut next = move || {
            s = ls_kernels::hash64_01(s.wrapping_add(1));
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let x = next();
                a[i * n + j] = x;
                a[j * n + i] = x;
            }
        }
        a
    }

    fn to_complex_op(a: &[f64], n: usize) -> DenseOp<Complex64> {
        DenseOp::new(n, a.iter().map(|&x| Complex64::new(x, 0.0)).collect())
    }

    #[test]
    fn real_time_evolution_is_unitary_and_conserves_energy() {
        let n = 30;
        let a = random_symmetric(n, 5);
        let op = to_complex_op(&a, n);
        let psi: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.4).sin(), (i as f64 * 0.9).cos()))
            .collect();
        let e_before = {
            let mut hp = vec![Complex64::ZERO; n];
            LinearOp::apply(&op, &psi, &mut hp);
            dot(&psi, &hp).re / dot(&psi, &psi).re
        };
        let out = evolve_real_time(&op, &psi, 1.7, n);
        // Norm preserved.
        assert!((norm(&out) - norm(&psi)).abs() < 1e-8);
        // Energy preserved.
        let e_after = {
            let mut hp = vec![Complex64::ZERO; n];
            LinearOp::apply(&op, &out, &mut hp);
            dot(&out, &hp).re / dot(&out, &out).re
        };
        assert!((e_before - e_after).abs() < 1e-8, "{e_before} vs {e_after}");
    }

    #[test]
    fn eigenstate_acquires_a_pure_phase() {
        let n = 16;
        let a = random_symmetric(n, 11);
        let (vals, vecs) = eigh_real(&a, n);
        let op = to_complex_op(&a, n);
        let psi: Vec<Complex64> = vecs[0].iter().map(|&x| Complex64::new(x, 0.0)).collect();
        let t = 0.83;
        let out = evolve_real_time(&op, &psi, t, n);
        let phase = Complex64::cis(-t * vals[0]);
        for (o, p) in out.iter().zip(&psi) {
            assert!(o.approx_eq(*p * phase, 1e-8), "{o:?} vs {:?}", *p * phase);
        }
    }

    #[test]
    fn small_time_matches_taylor_expansion() {
        let n = 12;
        let a = random_symmetric(n, 23);
        let op = to_complex_op(&a, n);
        let psi: Vec<Complex64> =
            (0..n).map(|i| Complex64::new(1.0 / (1.0 + i as f64), 0.0)).collect();
        let t = 1e-3;
        let out = evolve_real_time(&op, &psi, t, n);
        // ψ - i t H ψ - t²/2 H²ψ + O(t³)
        let mut hp = vec![Complex64::ZERO; n];
        LinearOp::apply(&op, &psi, &mut hp);
        let mut hhp = vec![Complex64::ZERO; n];
        LinearOp::apply(&op, &hp, &mut hhp);
        for i in 0..n {
            let taylor = psi[i] - Complex64::I.scale(t) * hp[i] - hhp[i].scale(t * t / 2.0);
            assert!(out[i].approx_eq(taylor, 1e-7), "{:?} vs {taylor:?}", out[i]);
        }
    }

    #[test]
    fn imaginary_time_projects_to_ground_state() {
        let n = 24;
        let a = random_symmetric(n, 31);
        let (_, vecs) = eigh_real(&a, n);
        let op = DenseOp::new(n, a.clone());
        let psi: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.3).sin()).collect();
        let out = evolve_imaginary_time(&op, &psi, 300.0, n);
        // Overlap with the true ground state approaches ±1 (suppression
        // of excited states is exp(-τ·gap); the Krylov space is exact
        // here since m = n).
        let overlap: f64 = out.iter().zip(&vecs[0]).map(|(a, b)| a * b).sum();
        assert!(overlap.abs() > 1.0 - 1e-9, "overlap {overlap}");
        assert!((norm(&out) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn zero_state_passthrough_and_asserts() {
        let n = 4;
        let op = to_complex_op(&random_symmetric(n, 1), n);
        let zero = vec![Complex64::ZERO; n];
        let out = evolve_real_time(&op, &zero, 1.0, 8);
        assert_eq!(out, zero);
    }
}
