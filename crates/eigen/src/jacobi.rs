//! Dense reference eigensolvers: cyclic Jacobi for real symmetric
//! matrices, and complex Hermitian matrices via the standard real
//! embedding. These are the oracles the fast solvers are tested against;
//! they are `O(n^3)` per sweep and intended for `n ≲ 500`.

use ls_kernels::Complex64;

/// Eigen-decomposition of a real symmetric matrix (row-major `n×n`).
/// Returns `(eigenvalues ascending, eigenvectors)`; `eigenvectors[k]` is
/// the k-th (normalized) eigenvector.
pub fn eigh_real(a: &[f64], n: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    assert_eq!(a.len(), n * n);
    let mut a = a.to_vec();
    // Symmetry check (cheap insurance against transposition bugs).
    for i in 0..n {
        for j in (i + 1)..n {
            let diff = (a[i * n + j] - a[j * n + i]).abs();
            let scale = 1.0 + a[i * n + j].abs();
            assert!(diff <= 1e-9 * scale, "matrix not symmetric at ({i},{j})");
        }
    }
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let max_sweeps = 64;
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i * n + j] * a[i * n + j];
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + frobenius(&a, n)) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of A.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors (columns of V).
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| a[x * n + x].total_cmp(&a[y * n + y]));
    let vals: Vec<f64> = order.iter().map(|&i| a[i * n + i]).collect();
    let vecs: Vec<Vec<f64>> =
        order.iter().map(|&col| (0..n).map(|row| v[row * n + col]).collect()).collect();
    (vals, vecs)
}

fn frobenius(a: &[f64], n: usize) -> f64 {
    a.iter().take(n * n).map(|x| x * x).sum::<f64>().sqrt()
}

/// Eigenvalues (ascending) of a complex Hermitian matrix via the real
/// embedding `[[A, -B], [B, A]]` of `H = A + iB`; each eigenvalue of `H`
/// appears twice in the embedding, so we return every other one.
pub fn eigvals_hermitian(h: &[Complex64], n: usize) -> Vec<f64> {
    assert_eq!(h.len(), n * n);
    // Hermiticity check.
    for i in 0..n {
        for j in 0..n {
            let d = h[i * n + j] - h[j * n + i].conj();
            assert!(d.abs() <= 1e-9 * (1.0 + h[i * n + j].abs()), "not Hermitian");
        }
    }
    let m = 2 * n;
    let mut e = vec![0.0f64; m * m];
    for i in 0..n {
        for j in 0..n {
            let z = h[i * n + j];
            e[i * m + j] = z.re; // A
            e[(i + n) * m + (j + n)] = z.re; // A
            e[i * m + (j + n)] = -z.im; // -B
            e[(i + n) * m + j] = z.im; // B
        }
    }
    let (vals, _) = eigh_real(&e, m);
    // Doubled spectrum: take pairs.
    let mut out = Vec::with_capacity(n);
    let mut k = 0;
    while k + 1 < m {
        // Consecutive entries must match (degenerate pair from embedding).
        debug_assert!(
            (vals[k] - vals[k + 1]).abs() < 1e-6 * (1.0 + vals[k].abs()),
            "embedding pair mismatch: {} vs {}",
            vals[k],
            vals[k + 1]
        );
        out.push(0.5 * (vals[k] + vals[k + 1]));
        k += 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two() {
        // [[2, 1], [1, 2]]: eigenvalues 1 and 3.
        let (vals, vecs) = eigh_real(&[2.0, 1.0, 1.0, 2.0], 2);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
        // Eigenvector for λ=1 is (1,-1)/√2 up to sign.
        let v = &vecs[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[0] + v[1]).abs() < 1e-10);
    }

    #[test]
    fn residuals_on_random_symmetric() {
        let mut seed = 42u64;
        let mut next = move || {
            seed = ls_kernels::hash64_01(seed.wrapping_add(1));
            (seed >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        for n in [3usize, 8, 25] {
            let mut a = vec![0.0f64; n * n];
            for i in 0..n {
                for j in i..n {
                    let x = next();
                    a[i * n + j] = x;
                    a[j * n + i] = x;
                }
            }
            let (vals, vecs) = eigh_real(&a, n);
            for (lam, v) in vals.iter().zip(&vecs) {
                // ||A v - λ v||
                let mut res = 0.0;
                for i in 0..n {
                    let mut av = 0.0;
                    for j in 0..n {
                        av += a[i * n + j] * v[j];
                    }
                    res += (av - lam * v[i]) * (av - lam * v[i]);
                }
                assert!(res.sqrt() < 1e-9, "residual {}", res.sqrt());
            }
            // Orthonormality.
            for i in 0..n {
                for j in 0..n {
                    let d: f64 = vecs[i].iter().zip(&vecs[j]).map(|(a, b)| a * b).sum();
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!((d - expect).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn hermitian_embedding() {
        // H = [[1, i], [-i, 1]]: eigenvalues 0 and 2.
        let h = vec![
            Complex64::new(1.0, 0.0),
            Complex64::new(0.0, 1.0),
            Complex64::new(0.0, -1.0),
            Complex64::new(1.0, 0.0),
        ];
        let vals = eigvals_hermitian(&h, 2);
        assert!((vals[0] - 0.0).abs() < 1e-10);
        assert!((vals[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = vec![3.0, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0, 5.0];
        let (vals, _) = eigh_real(&a, 3);
        assert_eq!(vals, vec![-1.0, 3.0, 5.0]);
    }
}
