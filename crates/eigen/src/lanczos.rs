//! Lanczos with full reorthogonalization, on the parallel fused BLAS-1
//! pipeline — generic over the Krylov vector storage.
//!
//! Plain three-term Lanczos loses orthogonality in floating point (ghost
//! eigenvalues); since our Krylov dimensions are modest (≲ a few hundred)
//! we keep all basis vectors and reorthogonalize every new vector twice
//! ("twice is enough", Kahan–Parlett). Memory is `m · dim` scalars, which
//! is the same trade the real `lattice-symmetries` makes for robustness.
//!
//! The recurrence is written once, against [`KrylovVec`] /
//! [`KrylovOp`] ([`lanczos_smallest_in`]): between the matrix-vector
//! products every vector operation is a fused deterministic primitive —
//! reorthogonalization is *blocked* CGS2 (`multi_dot` / `multi_axpy`
//! sweep `w` once per pass for the whole basis, not once per basis
//! vector), and two fused epilogues trim further sweeps —
//! [`KrylovOp::apply_dot`] (matvec+dot, `α_j` falls out of the product)
//! and [`KrylovVec::multi_axpy_norm_sqr`] (the final update + the β
//! norm). On `Vec<S>` these lower to the kernels of [`crate::op`]
//! (bit-identical for any `LS_NUM_THREADS`); on `DistVec<S>` they run in
//! place on the locale parts, so the Krylov state never leaves its locale
//! ([`lanczos_smallest`] is the slice-based wrapper). The Ritz vectors
//! are assembled in the same storage — a distributed solve returns
//! distributed eigenvectors.

use crate::restart::{thick_restart_lanczos_in, CheckpointPolicy, RestartOptions};
use crate::tridiag::tridiag_eigh;
use crate::vector::{KrylovOp, KrylovVec};
use crate::LinearOp;
use ls_kernels::Scalar;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for [`lanczos_smallest`].
#[derive(Clone, Debug)]
pub struct LanczosOptions {
    /// Maximum Krylov dimension.
    pub max_iter: usize,
    /// Convergence threshold on the Ritz residual estimate
    /// `|β_m · y_m[k]|` relative to the spectral scale.
    pub tol: f64,
    /// Seed for the random start vector (deterministic by default).
    pub seed: u64,
    /// Compute Ritz vectors?
    pub want_vectors: bool,
    /// Memory budget: the maximum number of Krylov-state vectors (basis
    /// plus workspace) the solver may hold. When the Krylov dimension
    /// implied by `max_iter` would exceed it, the solve transparently
    /// routes through thick-restart Lanczos
    /// ([`crate::restart::thick_restart_lanczos_in`]) so the retained
    /// set stays bounded; small problems keep the unrestarted path
    /// (identical results to previous releases).
    pub max_retained: usize,
    /// Checkpoint/restart policy, honored on the thick-restart path
    /// (the unrestarted path converges in one bounded pass and is not
    /// checkpointed).
    pub checkpoint: Option<CheckpointPolicy>,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        Self {
            max_iter: 300,
            tol: 1e-10,
            seed: 0x5eed,
            want_vectors: false,
            max_retained: 128,
            checkpoint: None,
        }
    }
}

/// Result of a Lanczos run over vector storage `V` (eigenvectors come
/// back in the same storage the solver iterated on — a distributed solve
/// yields distributed Ritz vectors).
#[derive(Clone, Debug)]
pub struct LanczosResultIn<V> {
    /// The `k` smallest Ritz values, ascending.
    pub eigenvalues: Vec<f64>,
    /// Ritz vectors (if requested), aligned with `eigenvalues`.
    pub eigenvectors: Option<Vec<V>>,
    /// Matrix-vector products performed (the Krylov dimension for the
    /// unrestarted solver).
    pub iterations: usize,
    /// Final residual estimates per returned eigenvalue.
    pub residuals: Vec<f64>,
    /// Did all `k` pairs meet the tolerance?
    pub converged: bool,
    /// High-water mark of simultaneously held Krylov-state vectors
    /// (basis + workspace + any compression/assembly scratch) — the
    /// solver's memory footprint in units of one state vector.
    pub peak_retained: usize,
    /// Checkpoint rollbacks performed by the silent-error defense
    /// ([`crate::health`]): cycles that detected corruption (transport
    /// CRC/ABFT or a solver health violation) and were replayed from the
    /// newest valid checkpoint. 0 on a clean run; the unrestarted solver
    /// has no rollback path and always reports 0.
    pub rollbacks: u64,
}

/// Result of a shared-memory (slice-backed) Lanczos run.
pub type LanczosResult<S> = LanczosResultIn<Vec<S>>;

/// Computes the `k` smallest eigenpairs of a Hermitian operator on dense
/// shared-memory vectors. Thin wrapper over [`lanczos_smallest_in`] with
/// `V = Vec<S>`.
///
/// # Panics
/// Panics if `k == 0`, `k > op.dim()` or the operator reports itself
/// non-Hermitian.
pub fn lanczos_smallest<S: Scalar, Op: LinearOp<S> + ?Sized>(
    op: &Op,
    k: usize,
    opts: &LanczosOptions,
) -> LanczosResult<S> {
    lanczos_smallest_in::<Vec<S>, Op>(op, k, opts)
}

/// Computes the `k` smallest eigenpairs of a Hermitian operator, running
/// the whole recurrence in place on the operator's vector storage.
///
/// **Memory routing:** when the Krylov dimension implied by
/// `opts.max_iter` exceeds `opts.max_retained`, the solve goes through
/// [`thick_restart_lanczos_in`] with a `max_retained`-vector budget —
/// same result type, bounded memory. Small problems take the classic
/// unrestarted path below.
///
/// # Panics
/// Panics if `k == 0`, `k > op.dim()` or the operator reports itself
/// non-Hermitian.
pub fn lanczos_smallest_in<V: KrylovVec, Op: KrylovOp<V> + ?Sized>(
    op: &Op,
    k: usize,
    opts: &LanczosOptions,
) -> LanczosResultIn<V> {
    let m_max = opts.max_iter.min(op.dim());
    if m_max + 1 > opts.max_retained && opts.max_retained >= 2 * k + 3 {
        // Preserve `max_iter` as a work bound: restarting re-does some
        // work per cycle (each compression discards subspace
        // information), so grant the routed solve ~4× the requested
        // matvec budget, translated into restart cycles via the
        // per-cycle chain length.
        let (keep, m) = crate::restart::split_budget(k, opts.max_retained);
        let chain = (m - keep).max(1);
        let max_restarts = (4 * opts.max_iter).div_ceil(chain).max(4);
        let ropts = RestartOptions {
            k,
            extra: opts.max_retained - k,
            max_restarts,
            tol: opts.tol,
            seed: opts.seed,
            want_vectors: opts.want_vectors,
            checkpoint: opts.checkpoint.clone(),
        };
        return thick_restart_lanczos_in(op, &ropts);
    }
    lanczos_plain_in(op, k, opts)
}

/// The classic unrestarted recurrence (every Krylov vector retained).
/// [`lanczos_smallest_in`] routes here for small problems; the
/// thick-restart solver also delegates here when the whole space fits in
/// its budget.
pub(crate) fn lanczos_plain_in<V: KrylovVec, Op: KrylovOp<V> + ?Sized>(
    op: &Op,
    k: usize,
    opts: &LanczosOptions,
) -> LanczosResultIn<V> {
    let n = op.dim();
    assert!(k >= 1, "need at least one eigenpair");
    assert!(k <= n, "k = {k} exceeds dimension {n}");
    assert!(op.is_hermitian(), "Lanczos requires a Hermitian operator");
    let m_max = opts.max_iter.min(n).max(k + 1).min(n);

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut v0 = op.new_vec();
    random_fill(&mut v0, &mut rng);
    let nrm = v0.norm();
    v0.scale(1.0 / nrm);

    let mut basis: Vec<V> = vec![v0];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let mut w = op.new_vec();

    let mut converged = false;
    let mut breakdowns = 0usize;
    let mut exact_break = false;
    let mut peak = 2usize; // basis + workspace
    let mut last_check: (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());

    for j in 0..m_max {
        // Fused matvec+dot: `w = H v_j` and `α_j = ⟨v_j, w⟩` in one pass
        // over the freshly written output (no clone of v_j either — the
        // operator reads the basis vector in place).
        let alpha = op.apply_dot(&basis[j], &mut w).re();
        alphas.push(alpha);
        if !alpha.is_finite() {
            // Surface the typed health error *before* cgs2 sweeps the
            // poisoned workspace through the whole basis: a NaN matvec
            // output must never be mistaken for (non-)convergence.
            crate::health::raise(crate::health::SolverHealthError {
                cycle: 0,
                check: "alpha",
                detail: format!("diagonal coefficient {j} is {alpha}"),
            });
        }
        // Full reorthogonalization, two *blocked* classical Gram–Schmidt
        // passes (CGS2 — "twice is enough" is precisely the repeated-CGS
        // theorem): each pass sweeps `w` once to take all coefficients at
        // a go (`multi_dot`) and once to apply them, instead of the
        // 2·m sweeps of the vector-at-a-time loop. The explicit
        // three-term subtractions (`α v_j`, `β v_{j-1}`) are subsumed by
        // the first pass — `⟨v_j, w⟩` *is* α and `⟨v_{j-1}, w⟩` is β up
        // to rounding, so projecting against the whole basis removes them
        // along with every older component: two more full sweeps saved.
        // The second pass's update is fused with the β norm (one sweep
        // fewer again).
        let beta = cgs2_beta(&basis, &mut w);
        if !beta.is_finite() {
            crate::health::raise(crate::health::SolverHealthError {
                cycle: 0,
                check: "beta",
                detail: format!("off-diagonal coefficient {j} is {beta}"),
            });
        }

        if beta <= 1e-13 {
            // Exact invariant subspace: every Ritz pair of the projected
            // problem is a true eigenpair, but the *multiplicity* of a
            // degenerate eigenvalue may not be resolved yet — each
            // invariant block contributes at most one copy. Keep
            // restarting with fresh random directions (re-orthogonalized
            // with blocked CGS2 against the whole basis, converged Ritz
            // directions included) until k values exist AND more than k
            // independent blocks were explored; only then is every copy
            // reachable from some block.
            breakdowns += 1;
            if alphas.len() >= k && (breakdowns > k || basis.len() >= m_max) {
                converged = true;
                exact_break = true;
                break;
            }
            if basis.len() >= m_max {
                exact_break = true;
                break;
            }
            let mut fresh = op.new_vec();
            random_fill(&mut fresh, &mut rng);
            let before = fresh.norm();
            let nf = cgs2_beta(&basis, &mut fresh);
            if nf <= 1e-10 * before {
                // The basis spans the whole space: the projected problem
                // is exact and complete.
                converged = alphas.len() >= k;
                exact_break = true;
                break;
            }
            fresh.scale(1.0 / nf);
            betas.push(0.0);
            basis.push(fresh);
            peak = peak.max(basis.len() + 1);
            continue;
        }

        // Convergence test on the projected problem.
        if alphas.len() >= k {
            let (vals, vecs) = tridiag_eigh(&alphas, &betas, true);
            let vecs = vecs.unwrap();
            let m = alphas.len();
            let spectral_scale =
                vals.iter().fold(0.0f64, |acc, v| acc.max(v.abs())).max(1e-300);
            let residuals: Vec<f64> = (0..k).map(|i| (beta * vecs[i][m - 1]).abs()).collect();
            let ok = residuals.iter().all(|r| *r <= opts.tol * spectral_scale);
            last_check = (vals[..k].to_vec(), residuals);
            if ok {
                converged = true;
                break;
            }
        }

        if basis.len() == m_max {
            break;
        }
        betas.push(beta);
        w.scale(1.0 / beta);
        basis.push(w.clone());
        peak = peak.max(basis.len() + 1);
    }

    // Final projected solve (covers the path where the loop ended without
    // a convergence check).
    let (vals, tvecs) = tridiag_eigh(&alphas, &betas, true);
    let tvecs = tvecs.unwrap();
    let m = alphas.len();
    let k_eff = k.min(m);
    let eigenvalues: Vec<f64> = vals[..k_eff].to_vec();
    let residuals = if last_check.0.len() == k_eff {
        last_check.1
    } else if exact_break {
        // Exact invariant-subspace exit: the Ritz pairs are exact.
        vec![0.0; k_eff]
    } else {
        vec![f64::NAN; k_eff]
    };

    let eigenvectors = if opts.want_vectors {
        let mut out = Vec::with_capacity(k_eff);
        for tv in tvecs.iter().take(k_eff) {
            let mut x = op.new_vec();
            let coeffs: Vec<V::Scalar> =
                tv.iter().take(m).map(|&t| V::Scalar::from_re(t)).collect();
            V::multi_axpy(&coeffs, &basis[..m], &mut x);
            let nx = x.norm();
            x.scale(1.0 / nx);
            out.push(x);
        }
        peak = peak.max(basis.len() + 1 + k_eff);
        Some(out)
    } else {
        None
    };

    LanczosResultIn {
        eigenvalues,
        eigenvectors,
        iterations: m,
        residuals,
        converged,
        peak_retained: peak,
        rollbacks: 0,
    }
}

/// Two blocked CGS passes orthogonalizing `w` against `basis`, the second
/// fused with the norm of the result: returns `β = ‖(1 - P)² w‖`.
/// Shared with the thick-restart solver ([`crate::restart`]).
pub(crate) fn cgs2_beta<V: KrylovVec>(basis: &[V], w: &mut V) -> f64 {
    let mut beta_sqr = f64::NAN;
    for pass in 0..2 {
        let mut coeffs = V::multi_dot(basis, w);
        for c in &mut coeffs {
            *c = -*c;
        }
        if pass == 1 {
            beta_sqr = V::multi_axpy_norm_sqr(&coeffs, basis, w);
        } else {
            V::multi_axpy(&coeffs, basis, w);
        }
    }
    beta_sqr.sqrt()
}

/// Builds an orthonormal Krylov basis from `v0` (consumed — it becomes
/// the first basis vector after normalization, so callers pay exactly
/// one copy of the input state) and the projected tridiagonal matrix
/// (full blocked-CGS2 reorthogonalization, fused epilogues — the
/// factorization behind the `exp(zH)` propagators and the spectral
/// continued fraction). Returns `(basis, alphas, betas)` with
/// `basis.len() == alphas.len()` and `betas.len() + 1 == alphas.len()`.
pub(crate) fn krylov_factorization<V: KrylovVec, Op: KrylovOp<V> + ?Sized>(
    op: &Op,
    mut v: V,
    m: usize,
) -> (Vec<V>, Vec<f64>, Vec<f64>) {
    let m = m.min(op.dim());
    let nv = v.norm();
    assert!(nv > 0.0, "zero start vector");
    v.scale(1.0 / nv);
    let mut basis: Vec<V> = Vec::with_capacity(m);
    basis.push(v);
    let mut alphas = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m.saturating_sub(1));
    let mut w = op.new_vec();
    for j in 0..m {
        let alpha = op.apply_dot(&basis[j], &mut w).re();
        alphas.push(alpha);
        let beta = cgs2_beta(&basis, &mut w);
        if beta <= 1e-13 || j + 1 == m {
            break;
        }
        betas.push(beta);
        w.scale(1.0 / beta);
        basis.push(w.clone());
    }
    (basis, alphas, betas)
}

pub(crate) fn random_fill<V: KrylovVec>(v: &mut V, rng: &mut StdRng) {
    v.fill_with(&mut |_i| {
        let re: f64 = rng.gen_range(-1.0..1.0);
        let im: f64 = if V::Scalar::N_REALS == 2 { rng.gen_range(-1.0..1.0) } else { 0.0 };
        V::Scalar::from_reals([re, im])
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::eigh_real;
    use crate::op::DenseOp;
    use ls_kernels::Complex64;

    fn random_symmetric(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        let mut next = move || {
            s = ls_kernels::hash64_01(s.wrapping_add(1));
            (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let x = next();
                a[i * n + j] = x;
                a[j * n + i] = x;
            }
        }
        a
    }

    #[test]
    fn matches_jacobi_on_dense_symmetric() {
        let n = 60;
        let a = random_symmetric(n, 7);
        let (expect, _) = eigh_real(&a, n);
        let op = DenseOp::new(n, a);
        let res = lanczos_smallest(
            &op,
            4,
            &LanczosOptions { max_iter: n, tol: 1e-11, ..Default::default() },
        );
        assert!(res.converged, "residuals: {:?}", res.residuals);
        for (i, (got, want)) in res.eigenvalues.iter().zip(&expect).take(4).enumerate() {
            assert!((got - want).abs() < 1e-8, "λ{i}: {got} vs {want}");
        }
    }

    #[test]
    fn ritz_vectors_have_small_residuals() {
        let n = 40;
        let a = random_symmetric(n, 99);
        let op = DenseOp::new(n, a.clone());
        let res = lanczos_smallest(
            &op,
            3,
            &LanczosOptions {
                max_iter: n,
                tol: 1e-11,
                want_vectors: true,
                ..Default::default()
            },
        );
        let vecs = res.eigenvectors.unwrap();
        for (lam, v) in res.eigenvalues.iter().zip(&vecs) {
            let mut av = vec![0.0f64; n];
            LinearOp::apply(&op, v, &mut av);
            let res_norm: f64 = av
                .iter()
                .zip(v)
                .map(|(x, y)| (x - lam * y) * (x - lam * y))
                .sum::<f64>()
                .sqrt();
            assert!(res_norm < 1e-7, "residual {res_norm}");
        }
    }

    #[test]
    fn complex_hermitian_operator() {
        // H = [[1, i], [-i, 1]] ⊗ I_10 + diagonal perturbation.
        let n = 20;
        let mut h = vec![Complex64::ZERO; n * n];
        for b in 0..10 {
            let (i, j) = (2 * b, 2 * b + 1);
            h[i * n + i] = Complex64::new(1.0 + 0.01 * b as f64, 0.0);
            h[j * n + j] = Complex64::new(1.0 + 0.01 * b as f64, 0.0);
            h[i * n + j] = Complex64::I;
            h[j * n + i] = -Complex64::I;
        }
        let expect = crate::jacobi::eigvals_hermitian(&h, n);
        let op = DenseOp::new(n, h);
        let res = lanczos_smallest(
            &op,
            3,
            &LanczosOptions { max_iter: n, tol: 1e-11, ..Default::default() },
        );
        for (got, want) in res.eigenvalues.iter().zip(&expect).take(3) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn small_dimension_edge_cases() {
        // dim == 1.
        let op = DenseOp::new(1, vec![4.2]);
        let res = lanczos_smallest(&op, 1, &LanczosOptions::default());
        assert!((res.eigenvalues[0] - 4.2).abs() < 1e-12);
        // k == dim.
        let op = DenseOp::new(3, vec![1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0]);
        let res = lanczos_smallest(&op, 3, &LanczosOptions::default());
        assert!((res.eigenvalues[0] - 1.0).abs() < 1e-10);
        assert!((res.eigenvalues[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn degenerate_spectrum_with_restart() {
        // Two distinct eigenvalues force an invariant subspace after two
        // steps, exercising the random-restart path. The re-seeded
        // direction is orthogonalized against the whole basis (converged
        // Ritz directions included) and restarts continue until more
        // than k independent blocks were explored, so the *full
        // multiplicity* of the degenerate ground state is recovered —
        // the earlier behaviour stopped at the first k exact values and
        // could return only two copies of -1.
        let n = 30;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            a[i * n + i] = if i < 3 { -1.0 } else { 2.0 };
        }
        let op = DenseOp::new(n, a);
        let res =
            lanczos_smallest(&op, 4, &LanczosOptions { max_iter: n, ..Default::default() });
        assert!((res.eigenvalues[0] + 1.0).abs() < 1e-9);
        // Every returned value is in the true spectrum {-1, 2}.
        for v in &res.eigenvalues {
            assert!(
                (v + 1.0).abs() < 1e-9 || (v - 2.0).abs() < 1e-9,
                "spurious eigenvalue {v}"
            );
        }
        // Multiplicity regression lock: exactly three copies of -1, then 2.
        let copies = res.eigenvalues.iter().filter(|v| (*v + 1.0).abs() < 1e-9).count();
        assert_eq!(copies, 3, "eigenvalues: {:?}", res.eigenvalues);
        assert!((res.eigenvalues[3] - 2.0).abs() < 1e-9);
        assert!(res.converged);
    }

    #[test]
    fn identity_operator_restarts_to_k_values() {
        let n = 10;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let op = DenseOp::new(n, a);
        let res = lanczos_smallest(&op, 3, &LanczosOptions::default());
        assert_eq!(res.eigenvalues.len(), 3);
        for v in &res.eigenvalues {
            assert!((v - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds dimension")]
    fn k_too_large_panics() {
        let op = DenseOp::new(2, vec![1.0, 0.0, 0.0, 1.0]);
        let _ = lanczos_smallest(&op, 3, &LanczosOptions::default());
    }

    /// A dense operator that hands out block-distributed vectors: drives
    /// the generic solver through the `DistVec` storage path without any
    /// cluster machinery.
    struct DistDense {
        inner: DenseOp<f64>,
        lens: Vec<usize>,
    }

    impl KrylovOp<ls_runtime::DistVec<f64>> for DistDense {
        fn dim(&self) -> usize {
            LinearOp::dim(&self.inner)
        }
        fn new_vec(&self) -> ls_runtime::DistVec<f64> {
            ls_runtime::DistVec::zeros(&self.lens)
        }
        fn apply(&self, x: &ls_runtime::DistVec<f64>, y: &mut ls_runtime::DistVec<f64>) {
            let mut dense = vec![0.0; KrylovOp::dim(self)];
            LinearOp::apply(&self.inner, &x.concat(), &mut dense);
            let mut lo = 0;
            for part in y.parts_mut() {
                let hi = lo + part.len();
                part.copy_from_slice(&dense[lo..hi]);
                lo = hi;
            }
        }
    }

    #[test]
    fn distvec_storage_agrees_with_dense_storage() {
        let n = 48;
        let a = random_symmetric(n, 41);
        let opts = LanczosOptions {
            max_iter: n,
            tol: 1e-11,
            want_vectors: true,
            ..Default::default()
        };
        let dense = lanczos_smallest(&DenseOp::new(n, a.clone()), 3, &opts);
        let dist_op = DistDense { inner: DenseOp::new(n, a), lens: vec![11, 0, 30, 7] };
        let dist = lanczos_smallest_in(&dist_op, 3, &opts);
        assert!(dense.converged && dist.converged);
        assert_eq!(dense.iterations, dist.iterations);
        for (a, b) in dense.eigenvalues.iter().zip(&dist.eigenvalues) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        // Ritz vectors come back distributed, matching up to global sign
        // and BLAS-1 reduction rounding (per-part partial sums differ
        // from the dense partition's).
        let dv = dense.eigenvectors.unwrap();
        let xv = dist.eigenvectors.unwrap();
        for (d, x) in dv.iter().zip(&xv) {
            let x = x.concat();
            let overlap: f64 = d.iter().zip(&x).map(|(p, q)| p * q).sum();
            assert!((overlap.abs() - 1.0).abs() < 1e-8, "overlap {overlap}");
        }
    }
}
