//! Mixed-precision Krylov mode: f32 vector storage, f64 arithmetic.
//!
//! The thick-restart solver is bandwidth-bound on its Krylov state (the
//! paper's central measurement), so halving the bytes per stored lane
//! halves the traffic of every BLAS-1 sweep and every reorthogonalization
//! pass. This module provides the storage for that trade:
//!
//! * [`F32Vec`] — a dense [`KrylovVec`] that *stores* f32 lanes but
//!   performs **all arithmetic in f64**: every product widens both
//!   operands, every reduction accumulates f64 partials over the same
//!   fixed [`op::REDUCE_BLOCK`] partition and [`op::pairwise_sum`] tree
//!   as the f64 kernels, and only the final store narrows. Results are
//!   therefore bit-identical across thread counts and `LS_SIMD` levels,
//!   exactly like the f64 storages — the *mode* changes results (f32
//!   rounding on store), never the machine shape.
//! * [`MixedOp`] — adapts any f64 [`LinearOp`] to `KrylovOp<F32Vec>` by
//!   widening the input vector, applying in f64, and narrowing the
//!   output.
//! * [`refine_in_f64`] — one step of iterative refinement: a
//!   Rayleigh–Ritz pass in full f64 over the widened f32 Ritz basis.
//!   For a Hermitian operator the Ritz values of the refined subspace
//!   carry an `O(‖r‖²)` eigenvalue error, which is what lets an f32
//!   subspace (residuals ~1e-6·‖H‖) deliver eigenvalues at f64 solver
//!   tolerance (~1e-12·‖H‖).
//!
//! The mode is selected by `LS_PRECISION`:
//!
//! * `f64` (default) — the ordinary double-precision solve;
//! * `f32` — f32 storage end to end, eigenvalues at f32 accuracy;
//! * `mixed` — f32 storage for the Krylov loop plus one f64 refinement
//!   pass at the end.
//!
//! Complex sectors ignore the knob (Jordan–Wigner phases and momentum
//! characters keep full width); [`eigensolve_precision`] is the routing
//! entry for real (f64) operators.

use crate::lanczos::LanczosResultIn;
use crate::op::{self, LinearOp};
use crate::restart::{thick_restart_lanczos_in, RestartOptions};
use crate::vector::{KrylovOp, KrylovVec};
use ls_kernels::simd;
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::OnceLock;

/// The precision mode of a Krylov solve (`LS_PRECISION`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Precision {
    /// f64 storage and arithmetic (the default).
    F64,
    /// f32 storage, f64 arithmetic, no refinement: eigenvalues at f32
    /// accuracy in half the vector memory.
    F32,
    /// f32 storage for the Krylov loop, one f64 Rayleigh–Ritz refinement
    /// at the end: f64-tolerance eigenvalues in half the loop memory.
    Mixed,
}

impl Precision {
    /// Reads `LS_PRECISION` (cached; `f64|f32|mixed`, default `f64`).
    pub fn from_env() -> Self {
        static MODE: OnceLock<Precision> = OnceLock::new();
        *MODE.get_or_init(|| {
            let mode = std::env::var("LS_PRECISION").unwrap_or_else(|_| "f64".into());
            match mode.as_str() {
                "f64" => Precision::F64,
                "f32" => Precision::F32,
                "mixed" => Precision::Mixed,
                other => panic!("LS_PRECISION={other:?} is not one of f64|f32|mixed"),
            }
        })
    }
}

/// A dense Krylov vector stored in f32, computed on in f64.
///
/// `Scalar = f64`: the solver-facing value type never changes, so the
/// three-term recurrence, CGS2 coefficients and checkpoint counters are
/// all full-width — only the per-element storage narrows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct F32Vec(pub Vec<f32>);

impl F32Vec {
    pub fn zeros(n: usize) -> Self {
        F32Vec(vec![0.0f32; n])
    }

    /// Widens into an existing f64 buffer (resizing it).
    pub fn widen_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.0.iter().map(|&x| x as f64));
    }

    /// Widened copy.
    pub fn widen(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.widen_into(&mut out);
        out
    }

    /// Narrows an f64 slice (one rounding per element).
    pub fn narrow_from(xs: &[f64]) -> Self {
        F32Vec(xs.iter().map(|&x| x as f32).collect())
    }
}

// --- deterministic parallel kernels over f32 storage -----------------------
//
// Same structure as the f64 kernels in `op`: f64 partials on the fixed
// REDUCE_BLOCK partition, inline below MIN_PAR_BLOCKS, pairwise tree on
// top. The per-block kernels are the `ls_kernels::simd` f32 kernels,
// whose scalar and AVX2 paths share one reduction shape.

fn par_dot_f32(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let n_blocks = n.div_ceil(op::REDUCE_BLOCK);
    if n_blocks <= 1 {
        return simd::dot_f32(a, b);
    }
    let mut partials = vec![0.0f64; n_blocks];
    if n_blocks < op::MIN_PAR_BLOCKS {
        for (bi, p) in partials.iter_mut().enumerate() {
            let lo = bi * op::REDUCE_BLOCK;
            let hi = (lo + op::REDUCE_BLOCK).min(n);
            *p = simd::dot_f32(&a[lo..hi], &b[lo..hi]);
        }
    } else {
        let lanes = op::atomic_lanes(&mut partials);
        (0..n_blocks).into_par_iter().for_each(|bi| {
            let lo = bi * op::REDUCE_BLOCK;
            let hi = (lo + op::REDUCE_BLOCK).min(n);
            op::store_partial(lanes, bi, simd::dot_f32(&a[lo..hi], &b[lo..hi]));
        });
    }
    op::pairwise_sum(&partials)
}

fn par_axpy_f32(alpha: f64, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    if y.len() < op::MIN_PAR_BLOCKS * op::REDUCE_BLOCK {
        return simd::axpy_f32(alpha, x, y);
    }
    y.par_chunks_mut(op::REDUCE_BLOCK).enumerate().for_each(|(bi, yb)| {
        let base = bi * op::REDUCE_BLOCK;
        simd::axpy_f32(alpha, &x[base..base + yb.len()], yb);
    });
}

fn par_scale_f32(y: &mut [f32], alpha: f64) {
    if y.len() < op::MIN_PAR_BLOCKS * op::REDUCE_BLOCK {
        return simd::scale_f32(y, alpha);
    }
    y.par_chunks_mut(op::REDUCE_BLOCK).for_each(|yb| simd::scale_f32(yb, alpha));
}

fn par_axpy_norm_sqr_f32(alpha: f64, x: &[f32], y: &mut [f32]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = y.len();
    let n_blocks = n.div_ceil(op::REDUCE_BLOCK);
    if n_blocks <= 1 {
        return simd::axpy_norm_sqr_f32(alpha, x, y);
    }
    let mut partials = vec![0.0f64; n_blocks];
    if n_blocks < op::MIN_PAR_BLOCKS {
        for (bi, p) in partials.iter_mut().enumerate() {
            let lo = bi * op::REDUCE_BLOCK;
            let hi = (lo + op::REDUCE_BLOCK).min(n);
            *p = simd::axpy_norm_sqr_f32(alpha, &x[lo..hi], &mut y[lo..hi]);
        }
        return op::pairwise_sum(&partials);
    }
    {
        let lanes = op::atomic_lanes(&mut partials);
        y.par_chunks_mut(op::REDUCE_BLOCK).enumerate().for_each(|(bi, yb)| {
            let base = bi * op::REDUCE_BLOCK;
            let xb = &x[base..base + yb.len()];
            op::store_partial(lanes, bi, simd::axpy_norm_sqr_f32(alpha, xb, yb));
        });
    }
    op::pairwise_sum(&partials)
}

/// Per element (ascending `b` additions in f64, one narrowing store):
/// `w[i] = f32(f64(w[i]) + Σ_b coeffs[b]·f64(vs[b][i]))`.
fn multi_axpy_block_f32(coeffs: &[f64], vs: &[&[f32]], base: usize, wb: &mut [f32]) {
    for (i, w) in wb.iter_mut().enumerate() {
        let mut acc = *w as f64;
        for (c, v) in coeffs.iter().zip(vs) {
            acc += c * v[base + i] as f64;
        }
        *w = acc as f32;
    }
}

fn par_multi_dot_f32(vs: &[&[f32]], w: &[f32]) -> Vec<f64> {
    let m = vs.len();
    if m == 0 {
        return Vec::new();
    }
    let n = w.len();
    let n_blocks = n.div_ceil(op::REDUCE_BLOCK).max(1);
    let mut partials = vec![0.0f64; m * n_blocks];
    let fill = |k: usize, sink: &mut dyn FnMut(usize, f64)| {
        let lo = k * op::REDUCE_BLOCK;
        let hi = (lo + op::REDUCE_BLOCK).min(n);
        for (b, v) in vs.iter().enumerate() {
            sink(b, simd::dot_f32(&v[lo..hi], &w[lo..hi]));
        }
    };
    if n_blocks < op::MIN_PAR_BLOCKS {
        for k in 0..n_blocks {
            fill(k, &mut |b, p| partials[b * n_blocks + k] = p);
        }
    } else {
        let lanes = op::atomic_lanes(&mut partials);
        (0..n_blocks).into_par_iter().for_each(|k| {
            fill(k, &mut |b, p| op::store_partial(lanes, b * n_blocks + k, p));
        });
    }
    (0..m).map(|b| op::pairwise_sum(&partials[b * n_blocks..(b + 1) * n_blocks])).collect()
}

fn par_multi_axpy_f32(coeffs: &[f64], vs: &[&[f32]], w: &mut [f32]) {
    debug_assert_eq!(coeffs.len(), vs.len());
    if w.len() < op::MIN_PAR_BLOCKS * op::REDUCE_BLOCK {
        return multi_axpy_block_f32(coeffs, vs, 0, w);
    }
    w.par_chunks_mut(op::REDUCE_BLOCK).enumerate().for_each(|(bi, wb)| {
        multi_axpy_block_f32(coeffs, vs, bi * op::REDUCE_BLOCK, wb);
    });
}

fn par_multi_axpy_norm_sqr_f32(coeffs: &[f64], vs: &[&[f32]], w: &mut [f32]) -> f64 {
    debug_assert_eq!(coeffs.len(), vs.len());
    let n = w.len();
    let n_blocks = n.div_ceil(op::REDUCE_BLOCK).max(1);
    let mut partials = vec![0.0f64; n_blocks];
    let update = |bi: usize, wb: &mut [f32]| -> f64 {
        multi_axpy_block_f32(coeffs, vs, bi * op::REDUCE_BLOCK, wb);
        simd::norm_sqr_f32(wb)
    };
    if n_blocks < op::MIN_PAR_BLOCKS {
        for (bi, p) in partials.iter_mut().enumerate() {
            let lo = bi * op::REDUCE_BLOCK;
            let hi = (lo + op::REDUCE_BLOCK).min(n);
            *p = update(bi, &mut w[lo..hi]);
        }
        return op::pairwise_sum(&partials);
    }
    {
        let lanes = op::atomic_lanes(&mut partials);
        w.par_chunks_mut(op::REDUCE_BLOCK).enumerate().for_each(|(bi, wb)| {
            op::store_partial(lanes, bi, update(bi, wb));
        });
    }
    op::pairwise_sum(&partials)
}

impl KrylovVec for F32Vec {
    type Scalar = f64;

    const STORAGE_KIND: u32 = 3;
    const SCALAR_WIDTH: u32 = 4;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn layout(&self) -> Vec<usize> {
        vec![self.0.len()]
    }

    fn visit(&self, f: &mut dyn FnMut(f64)) {
        for &x in &self.0 {
            f(x as f64);
        }
    }

    fn fill_with(&mut self, f: &mut dyn FnMut(usize) -> f64) {
        for (i, x) in self.0.iter_mut().enumerate() {
            *x = f(i) as f32;
        }
    }

    fn dot(&self, other: &Self) -> f64 {
        par_dot_f32(&self.0, &other.0)
    }

    fn norm_sqr(&self) -> f64 {
        par_dot_f32(&self.0, &self.0)
    }

    fn axpy(&mut self, alpha: f64, x: &Self) {
        par_axpy_f32(alpha, &x.0, &mut self.0);
    }

    fn scale(&mut self, alpha: f64) {
        par_scale_f32(&mut self.0, alpha);
    }

    fn axpy_norm_sqr(&mut self, alpha: f64, x: &Self) -> f64 {
        par_axpy_norm_sqr_f32(alpha, &x.0, &mut self.0)
    }

    fn multi_dot(vs: &[Self], w: &Self) -> Vec<f64> {
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.0.as_slice()).collect();
        par_multi_dot_f32(&refs, &w.0)
    }

    fn multi_axpy(coeffs: &[f64], vs: &[Self], w: &mut Self) {
        let parts: Vec<&[f32]> = vs.iter().map(|v| v.0.as_slice()).collect();
        par_multi_axpy_f32(coeffs, &parts, &mut w.0);
    }

    fn multi_axpy_norm_sqr(coeffs: &[f64], vs: &[Self], w: &mut Self) -> f64 {
        let parts: Vec<&[f32]> = vs.iter().map(|v| v.0.as_slice()).collect();
        par_multi_axpy_norm_sqr_f32(coeffs, &parts, &mut w.0)
    }
}

/// The distributed f32 storage: locale-partitioned like `DistVec<f64>`,
/// stored in f32, computed on in f64. Under the multiprocess transport
/// every primitive runs on this rank's part and combines f64 partials
/// through the rank-ordered allreduce, and [`KrylovVec::visit`]
/// allgathers **4-byte** wire frames — the halved vector traffic that
/// motivates the mode also shows up on the wire and in checkpoints.
///
/// A newtype over [`ls_runtime::DistVec<f32>`] (f32 is not a
/// [`ls_kernels::Scalar`], but coherence cannot see that next to the
/// blanket `DistVec<S: Scalar>` impl); it derefs to the inner vector, so
/// the partition API carries over unchanged.
#[derive(Clone, Debug)]
pub struct DistF32Vec(pub ls_runtime::DistVec<f32>);

impl DistF32Vec {
    /// Zero vector with the given per-locale part lengths.
    pub fn zeros(lens: &[usize]) -> Self {
        DistF32Vec(ls_runtime::DistVec::zeros(lens))
    }
}

impl std::ops::Deref for DistF32Vec {
    type Target = ls_runtime::DistVec<f32>;

    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl std::ops::DerefMut for DistF32Vec {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.0
    }
}

impl KrylovVec for DistF32Vec {
    type Scalar = f64;

    const STORAGE_KIND: u32 = 4;
    const SCALAR_WIDTH: u32 = 4;

    fn len(&self) -> usize {
        self.total_len()
    }

    fn layout(&self) -> Vec<usize> {
        self.lens()
    }

    fn visit(&self, f: &mut dyn FnMut(f64)) {
        if let Some(mp) = ls_runtime::transport::active() {
            use bytes::{Buf, BufMut};
            let own = self.part(mp.rank());
            let mut payload = Vec::with_capacity(own.len() * 4);
            for &x in own {
                payload.put_u32_le(x.to_bits());
            }
            for contribution in mp.allgather(&payload) {
                let mut r: &[u8] = &contribution;
                while r.remaining() > 0 {
                    f(f32::from_bits(r.get_u32_le()) as f64);
                }
            }
            return;
        }
        self.for_each(|&x| f(x as f64));
    }

    fn fill_with(&mut self, f: &mut dyn FnMut(usize) -> f64) {
        let mut i = 0usize;
        for part in self.parts_mut() {
            for x in part.iter_mut() {
                *x = f(i) as f32;
                i += 1;
            }
        }
    }

    fn dot(&self, other: &Self) -> f64 {
        debug_assert_eq!(self.lens(), other.lens(), "distributed dot of mismatched layouts");
        if let Some(mp) = ls_runtime::transport::active() {
            let me = mp.rank();
            let partial = par_dot_f32(self.part(me), other.part(me));
            return mp.allreduce_lanes(&[partial])[0];
        }
        let mut acc = 0.0f64;
        for (pa, pb) in self.parts().iter().zip(other.parts()) {
            acc += par_dot_f32(pa, pb);
        }
        acc
    }

    fn norm_sqr(&self) -> f64 {
        if let Some(mp) = ls_runtime::transport::active() {
            let partial = par_dot_f32(self.part(mp.rank()), self.part(mp.rank()));
            return mp.allreduce_lanes(&[partial])[0];
        }
        self.parts().iter().map(|p| par_dot_f32(p, p)).sum()
    }

    fn axpy(&mut self, alpha: f64, x: &Self) {
        debug_assert_eq!(self.lens(), x.lens(), "distributed axpy of mismatched layouts");
        if let Some(mp) = ls_runtime::transport::active() {
            let me = mp.rank();
            par_axpy_f32(alpha, x.part(me), self.part_mut(me));
            return;
        }
        for (py, px) in self.parts_mut().iter_mut().zip(x.parts()) {
            par_axpy_f32(alpha, px, py);
        }
    }

    fn scale(&mut self, alpha: f64) {
        if let Some(mp) = ls_runtime::transport::active() {
            par_scale_f32(self.part_mut(mp.rank()), alpha);
            return;
        }
        for part in self.parts_mut() {
            par_scale_f32(part, alpha);
        }
    }

    fn axpy_norm_sqr(&mut self, alpha: f64, x: &Self) -> f64 {
        debug_assert_eq!(self.lens(), x.lens(), "distributed axpy of mismatched layouts");
        if let Some(mp) = ls_runtime::transport::active() {
            let me = mp.rank();
            let partial = par_axpy_norm_sqr_f32(alpha, x.part(me), self.part_mut(me));
            return mp.allreduce_lanes(&[partial])[0];
        }
        let mut acc = 0.0f64;
        for (py, px) in self.parts_mut().iter_mut().zip(x.parts()) {
            acc += par_axpy_norm_sqr_f32(alpha, px, py);
        }
        acc
    }

    fn multi_dot(vs: &[Self], w: &Self) -> Vec<f64> {
        if let Some(mp) = ls_runtime::transport::active() {
            let me = mp.rank();
            let parts: Vec<&[f32]> = vs.iter().map(|v| v.part(me)).collect();
            let partials = par_multi_dot_f32(&parts, w.part(me));
            return mp.allreduce_lanes(&partials);
        }
        let mut out = vec![0.0f64; vs.len()];
        for (l, wp) in w.parts().iter().enumerate() {
            let parts: Vec<&[f32]> = vs.iter().map(|v| v.part(l)).collect();
            for (acc, partial) in out.iter_mut().zip(par_multi_dot_f32(&parts, wp)) {
                *acc += partial;
            }
        }
        out
    }

    fn multi_axpy(coeffs: &[f64], vs: &[Self], w: &mut Self) {
        debug_assert_eq!(coeffs.len(), vs.len());
        if let Some(mp) = ls_runtime::transport::active() {
            let me = mp.rank();
            let parts: Vec<&[f32]> = vs.iter().map(|v| v.part(me)).collect();
            par_multi_axpy_f32(coeffs, &parts, w.part_mut(me));
            return;
        }
        for (l, wp) in w.parts_mut().iter_mut().enumerate() {
            let parts: Vec<&[f32]> = vs.iter().map(|v| v.part(l)).collect();
            par_multi_axpy_f32(coeffs, &parts, wp);
        }
    }

    fn multi_axpy_norm_sqr(coeffs: &[f64], vs: &[Self], w: &mut Self) -> f64 {
        debug_assert_eq!(coeffs.len(), vs.len());
        if let Some(mp) = ls_runtime::transport::active() {
            let me = mp.rank();
            let parts: Vec<&[f32]> = vs.iter().map(|v| v.part(me)).collect();
            let partial = par_multi_axpy_norm_sqr_f32(coeffs, &parts, w.part_mut(me));
            return mp.allreduce_lanes(&[partial])[0];
        }
        let mut acc = 0.0f64;
        for (l, wp) in w.parts_mut().iter_mut().enumerate() {
            let parts: Vec<&[f32]> = vs.iter().map(|v| v.part(l)).collect();
            acc += par_multi_axpy_norm_sqr_f32(coeffs, &parts, wp);
        }
        acc
    }
}

/// Adapts an f64 [`LinearOp`] to `KrylovOp<F32Vec>`: widen the input,
/// apply in full f64, narrow the output. The matvec itself never runs in
/// reduced precision — only the Krylov *state* between matvecs is f32.
pub struct MixedOp<'a, Op: LinearOp<f64> + ?Sized> {
    inner: &'a Op,
    scratch: RefCell<(Vec<f64>, Vec<f64>)>,
}

impl<'a, Op: LinearOp<f64> + ?Sized> MixedOp<'a, Op> {
    pub fn new(inner: &'a Op) -> Self {
        Self { inner, scratch: RefCell::new((Vec::new(), Vec::new())) }
    }
}

impl<Op: LinearOp<f64> + ?Sized> KrylovOp<F32Vec> for MixedOp<'_, Op> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn new_vec(&self) -> F32Vec {
        F32Vec::zeros(self.inner.dim())
    }

    fn apply(&self, x: &F32Vec, y: &mut F32Vec) {
        let (xw, yw) = &mut *self.scratch.borrow_mut();
        x.widen_into(xw);
        yw.clear();
        yw.resize(xw.len(), 0.0);
        self.inner.apply(xw, yw);
        y.0.clear();
        y.0.extend(yw.iter().map(|&v| v as f32));
    }

    fn apply_dot(&self, x: &F32Vec, y: &mut F32Vec) -> f64 {
        // The fused dot must be the dot of the *stored* (narrowed) `y`,
        // or the Lanczos α would disagree with what a recomputation from
        // storage yields and a checkpoint resume could diverge.
        self.apply(x, y);
        x.dot(y)
    }

    fn is_hermitian(&self) -> bool {
        self.inner.is_hermitian()
    }
}

/// Thick-restart Lanczos with f32 Krylov storage over an f64 operator.
/// Checkpoints written by this solve carry `SCALAR_WIDTH = 4`.
pub fn thick_restart_lanczos_f32<Op: LinearOp<f64> + ?Sized>(
    op: &Op,
    opts: &RestartOptions,
) -> LanczosResultIn<F32Vec> {
    thick_restart_lanczos_in(&MixedOp::new(op), opts)
}

/// One step of iterative refinement: Rayleigh–Ritz in full f64 on the
/// span of the (widened) f32 Ritz basis. Returns `(eigenvalues,
/// eigenvectors, residuals)`, ascending, one entry per basis vector.
///
/// For a Hermitian `A`, Ritz values extracted from a subspace carrying
/// residual `‖r‖` have `O(‖r‖²)` eigenvalue error — the f32 subspace's
/// ~1e-7 relative residuals land the refined eigenvalues at ~1e-14
/// relative error, i.e. f64 solver tolerance, for the cost of `k` f64
/// matvecs.
pub fn refine_in_f64<Op: LinearOp<f64> + ?Sized>(
    op: &Op,
    basis32: &[F32Vec],
) -> (Vec<f64>, Vec<Vec<f64>>, Vec<f64>) {
    let k = basis32.len();
    assert!(k >= 1, "refinement needs at least one Ritz vector");
    let mut basis: Vec<Vec<f64>> = basis32.iter().map(|v| v.widen()).collect();
    // Orthonormalize the widened basis (CGS2: two projection passes).
    for i in 0..k {
        for _pass in 0..2 {
            let (head, tail) = basis.split_at_mut(i);
            let v = &mut tail[0];
            if i > 0 {
                let mut coeffs = op::par_multi_dot(head, v);
                for c in coeffs.iter_mut() {
                    *c = -*c;
                }
                op::par_multi_axpy(&coeffs, head, v);
            }
        }
        let norm = op::par_norm_sqr(&basis[i]).sqrt();
        assert!(norm > 0.0, "refinement basis is rank-deficient");
        op::par_scale(&mut basis[i], 1.0 / norm);
    }
    // Projected matrix H[i][j] = ⟨v_i, A v_j⟩ from k full-precision
    // matvecs (keep the products for residuals).
    let mut av: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut h = vec![0.0f64; k * k];
    for j in 0..k {
        let mut w = vec![0.0f64; basis[j].len()];
        op.apply(&basis[j], &mut w);
        for (i, hij) in op::par_multi_dot(&basis, &w).into_iter().enumerate() {
            h[i * k + j] = hij;
        }
        av.push(w);
    }
    // Symmetrize against matvec round-off before the Jacobi solve.
    for i in 0..k {
        for j in (i + 1)..k {
            let s = 0.5 * (h[i * k + j] + h[j * k + i]);
            h[i * k + j] = s;
            h[j * k + i] = s;
        }
    }
    let (vals, rots) = crate::jacobi::eigh_real(&h, k);
    // Assemble refined eigenvectors and their true residuals.
    let mut vecs = Vec::with_capacity(k);
    let mut residuals = Vec::with_capacity(k);
    for (e, rot) in rots.iter().enumerate() {
        let mut x = vec![0.0f64; basis[0].len()];
        op::par_multi_axpy(rot, &basis, &mut x);
        let mut r = vec![0.0f64; x.len()];
        op::par_multi_axpy(rot, &av, &mut r); // r = A x
        op::par_axpy(-vals[e], &x, &mut r); // r -= λ x
        residuals.push(op::par_norm_sqr(&r).sqrt());
        vecs.push(x);
    }
    (vals, vecs, residuals)
}

/// Precision-routed thick-restart eigensolve for real (f64) operators:
/// the entry the f64 pipeline calls when `LS_PRECISION` may be set.
/// Eigenvectors come back widened to f64 in every mode.
pub fn eigensolve_precision<Op: LinearOp<f64> + ?Sized>(
    op: &Op,
    opts: &RestartOptions,
    precision: Precision,
) -> LanczosResultIn<Vec<f64>> {
    match precision {
        Precision::F64 => thick_restart_lanczos_in::<Vec<f64>, Op>(op, opts),
        Precision::F32 => {
            let r = thick_restart_lanczos_f32(op, opts);
            LanczosResultIn {
                eigenvalues: r.eigenvalues,
                eigenvectors: r.eigenvectors.map(|vs| vs.iter().map(F32Vec::widen).collect()),
                iterations: r.iterations,
                residuals: r.residuals,
                converged: r.converged,
                peak_retained: r.peak_retained,
                rollbacks: r.rollbacks,
            }
        }
        Precision::Mixed => {
            // The f32 pass must return its Ritz basis for refinement.
            let mut inner = opts.clone();
            inner.want_vectors = true;
            let r = thick_restart_lanczos_f32(op, &inner);
            let basis32 = r.eigenvectors.expect("want_vectors was set");
            let (vals, vecs, residuals) = refine_in_f64(op, &basis32);
            LanczosResultIn {
                eigenvalues: vals,
                eigenvectors: opts.want_vectors.then_some(vecs),
                iterations: r.iterations + basis32.len(),
                residuals,
                converged: r.converged,
                peak_retained: r.peak_retained,
                rollbacks: r.rollbacks,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::DenseOp;
    use crate::restart::RestartOptions;

    /// Symmetric test matrix with a well-separated low end.
    fn test_op(n: usize) -> DenseOp<f64> {
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            a[i * n + i] = i as f64 - 0.3 * n as f64;
            if i + 1 < n {
                a[i * n + i + 1] = 0.7;
                a[(i + 1) * n + i] = 0.7;
            }
            if i + 3 < n {
                a[i * n + i + 3] = -0.2;
                a[(i + 3) * n + i] = -0.2;
            }
        }
        DenseOp::new(n, a)
    }

    #[test]
    fn f32_vec_kernels_match_f64_to_storage_precision() {
        let n = 3 * op::REDUCE_BLOCK + 41;
        let xs: Vec<f64> = (0..n).map(|i| ((i % 97) as f64 - 48.0) * 1e-3).collect();
        let ys: Vec<f64> = (0..n).map(|i| ((i % 89) as f64 - 44.0) * 2e-3).collect();
        let fx = F32Vec::narrow_from(&xs);
        let mut fy = F32Vec::narrow_from(&ys);
        let tol = 1e-6 * n as f64;
        assert!((fx.dot(&fy) - op::par_dot(&xs, &ys)).abs() <= tol);
        assert!((fx.norm_sqr() - op::par_norm_sqr(&xs)).abs() <= tol);
        let fused = fy.axpy_norm_sqr(0.31, &fx);
        assert!((fused - fy.norm_sqr()).abs() <= 1e-12 * n as f64, "fused = stored norm");
        let mut wide = fy.widen();
        op::par_scale(&mut wide, 0.5);
        fy.scale(0.5);
        for (a, b) in fy.0.iter().zip(&wide) {
            assert_eq!(*a, *b as f32, "scale narrows the f64 result");
        }
    }

    #[test]
    fn f32_multi_kernels_are_deterministic_and_fused() {
        let n = 2 * op::REDUCE_BLOCK + 17;
        let vs: Vec<F32Vec> = (0..4)
            .map(|k| {
                F32Vec::narrow_from(
                    &(0..n)
                        .map(|i| ((i * (k + 2) % 83) as f64 - 41.0) * 1e-3)
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let w0 = F32Vec::narrow_from(
            &(0..n).map(|i| ((i % 71) as f64 - 35.0) * 1e-3).collect::<Vec<_>>(),
        );
        let coeffs = F32Vec::multi_dot(&vs, &w0);
        let mut w1 = w0.clone();
        F32Vec::multi_axpy(&coeffs, &vs, &mut w1);
        let mut w2 = w0.clone();
        let fused = F32Vec::multi_axpy_norm_sqr(&coeffs, &vs, &mut w2);
        assert_eq!(w1, w2, "fused update matches plain update");
        assert_eq!(fused.to_bits(), w1.norm_sqr().to_bits(), "fused norm is stored norm");
    }

    #[test]
    fn env_default_is_f64() {
        // The suite does not set LS_PRECISION, so the cached mode is the
        // default (other tests pass precision explicitly).
        assert_eq!(Precision::from_env(), Precision::F64);
    }

    #[test]
    fn f32_storage_reaches_f32_accuracy() {
        let op = test_op(400);
        let opts = RestartOptions { tol: 1e-6, ..RestartOptions::new(3) };
        let exact = thick_restart_lanczos_in::<Vec<f64>, _>(&op, &RestartOptions::new(3));
        let r32 = eigensolve_precision(&op, &opts, Precision::F32);
        for (a, b) in r32.eigenvalues.iter().zip(&exact.eigenvalues) {
            assert!((a - b).abs() <= 1e-3, "f32 eigenvalue {a} vs f64 {b}");
        }
    }

    #[test]
    fn mixed_mode_reaches_f64_tolerance() {
        let op = test_op(400);
        let opts = RestartOptions { tol: 1e-6, want_vectors: true, ..RestartOptions::new(3) };
        let exact = thick_restart_lanczos_in::<Vec<f64>, _>(&op, &RestartOptions::new(3));
        let rm = eigensolve_precision(&op, &opts, Precision::Mixed);
        for (a, b) in rm.eigenvalues.iter().zip(&exact.eigenvalues) {
            assert!((a - b).abs() <= 1e-9, "refined eigenvalue {a} vs f64 {b}");
        }
        // Residuals of the refined pairs are genuinely small in f64.
        for r in &rm.residuals {
            assert!(*r <= 1e-4, "refined residual {r}");
        }
    }
}
