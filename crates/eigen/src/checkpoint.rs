//! Versioned, checksummed checkpoints for the thick-restart Lanczos
//! solver ([`crate::restart`]).
//!
//! A checkpoint captures the compressed solver state at a restart
//! boundary — the retained Ritz basis plus the chain seed, the projected
//! coefficients (`θ`, border `s`), the restart counter and the RNG draw
//! counter — which is everything needed to resume a killed solve
//! **bit-identically**: vectors are stored as exact `f64` lanes in
//! canonical global element order, so the resumed in-memory state equals
//! the uninterrupted one to the last bit.
//!
//! Format (little-endian), magic `LSCK`, version 2:
//!
//! ```text
//! magic[4] version:u32 kind:u32 lanes:u32 width:u32
//! k:u64 budget:u64 restarts:u64 draws:u64 breakdowns:u64 retained:u64 nvecs:u64
//! nparts:u64 part_len:u64 × nparts
//! diag:f64 × retained  border:f64 × retained
//! vector data: nvecs × Σpart_len × lanes × width bytes  (global element order)
//! checksum:u64 (FNV-1a over every preceding byte)
//! ```
//!
//! `kind` is [`KrylovVec::STORAGE_KIND`] (dense = 1, distributed = 2,
//! f32 dense = 3, f32 distributed = 4): loading a checkpoint into a
//! different storage is a typed error, as is a layout (part-length)
//! mismatch — resuming on a different locale partition would change
//! reduction order and break bit-identity. `width` is
//! [`KrylovVec::SCALAR_WIDTH`] — bytes per stored lane (8, or 4 for the
//! f32 storages of the mixed-precision mode); version-1 files have no
//! width field and are read as width 8. A precision-mismatched resume is
//! allowed only in the exact widening direction (f32 file into the
//! matching f64 storage — lossless, though such a resume follows the
//! f64 trajectory from the widened state rather than replaying the f32
//! one bit-identically); the narrowing direction would silently truncate
//! lanes and is rejected with
//! [`CheckpointError::PrecisionMismatch`].
//! Writes go to `<path>.tmp` first and are renamed into place, so a kill
//! mid-write never corrupts the previous checkpoint.

use crate::vector::{KrylovOp, KrylovVec};
use bytes::{Buf, BufMut};
use ls_kernels::Scalar;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 4] = b"LSCK";
const VERSION: u32 = 2;

/// Solver state at a restart boundary (see [`crate::restart`] for the
/// invariants: `basis` holds `retained` locked Ritz vectors followed by
/// one chain-seed vector, `diag`/`border` are the projected arrowhead).
#[derive(Clone, Debug)]
pub struct CheckpointState<V> {
    /// Number of wanted eigenpairs the checkpointed solve was asked for.
    pub k: usize,
    /// Total vector budget (`k + extra`) of the checkpointed solve.
    pub budget: usize,
    /// Restart cycles completed so far (cumulative across resumes).
    pub restarts: usize,
    /// Random vectors drawn so far (start vector + breakdown re-seeds).
    pub draws: u64,
    /// Exact-breakdown events so far (cumulative across resumes): the
    /// solver's multiplicity-recovery rule compares this against `k`, so
    /// a resume must replay the same count to stay bit-identical.
    pub breakdowns: u64,
    /// Number of locked Ritz vectors at the front of `basis`.
    pub retained: usize,
    /// Ritz values of the locked vectors (`retained` entries).
    pub diag: Vec<f64>,
    /// Arrowhead border coupling each locked vector to the chain seed.
    pub border: Vec<f64>,
    /// `retained + 1` vectors: the locked Ritz basis, then the chain seed.
    pub basis: Vec<V>,
}

/// Typed failure modes of [`load_checkpoint`]. Corrupted or mismatched
/// files are reported, never panicked on.
#[derive(Debug)]
pub enum CheckpointError {
    Io(io::Error),
    /// Shorter than the fixed header + checksum.
    TooShort,
    BadMagic([u8; 4]),
    UnsupportedVersion(u32),
    /// The file was written for a different vector storage (e.g. a dense
    /// checkpoint loaded into a distributed solve).
    WrongStorageKind {
        found: u32,
        expected: u32,
    },
    ScalarWidthMismatch {
        found: u32,
        expected: u32,
    },
    /// The file's storage width (bytes per lane) disagrees with the
    /// active precision mode in the lossy direction: an f64 checkpoint
    /// cannot resume an f32-storage solve (lanes would be truncated).
    /// The widening direction (f32 file, f64 solve) loads fine.
    PrecisionMismatch {
        found: u32,
        expected: u32,
    },
    /// Part lengths in the file differ from the operator's layout.
    LayoutMismatch {
        found: Vec<usize>,
        expected: Vec<usize>,
    },
    /// The payload ends before its declared contents.
    Truncated {
        needed: usize,
        available: usize,
    },
    BadChecksum {
        stored: u64,
        computed: u64,
    },
    /// Internally inconsistent header fields.
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::TooShort => write!(f, "checkpoint file too short for header"),
            Self::BadMagic(m) => write!(f, "bad checkpoint magic {m:?}"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Self::WrongStorageKind { found, expected } => write!(
                f,
                "checkpoint written for storage kind {found}, loading as kind {expected}"
            ),
            Self::ScalarWidthMismatch { found, expected } => write!(
                f,
                "checkpoint scalar has {found} lanes, requested scalar has {expected}"
            ),
            Self::PrecisionMismatch { found, expected } => write!(
                f,
                "checkpoint stores {found}-byte lanes but the solve stores {expected}-byte \
                 lanes: resuming would truncate precision (widen by resuming in f64, or \
                 delete the checkpoint to restart)"
            ),
            Self::LayoutMismatch { found, expected } => write!(
                f,
                "checkpoint layout {found:?} does not match solver layout {expected:?}"
            ),
            Self::Truncated { needed, available } => {
                write!(f, "checkpoint truncated: needs {needed} more bytes, has {available}")
            }
            Self::BadChecksum { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            Self::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// FNV-1a (64-bit), the checksum all checkpoints carry. Not
/// cryptographic — it catches truncation, bit rot and partial writes.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Borrowed view of the solver state for [`save_checkpoint_ref`]: the
/// solver checkpoints every cycle, and cloning `retained + 1` full
/// vectors per write would double the transient footprint the
/// `k + extra` budget promises to bound.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointStateRef<'a, V> {
    pub k: usize,
    pub budget: usize,
    pub restarts: usize,
    pub draws: u64,
    pub breakdowns: u64,
    pub retained: usize,
    pub diag: &'a [f64],
    pub border: &'a [f64],
    pub basis: &'a [V],
}

/// Serializes a checkpoint and writes it atomically (`<path>.tmp` then
/// rename), so an interrupted write never destroys the previous one.
pub fn save_checkpoint<V: KrylovVec>(
    path: &Path,
    state: &CheckpointState<V>,
) -> io::Result<()> {
    save_checkpoint_ref(
        path,
        &CheckpointStateRef {
            k: state.k,
            budget: state.budget,
            restarts: state.restarts,
            draws: state.draws,
            breakdowns: state.breakdowns,
            retained: state.retained,
            diag: &state.diag,
            border: &state.border,
            basis: &state.basis,
        },
    )
}

/// Serializes a checkpoint into its on-disk byte image (header, state,
/// trailing checksum) — shared by the plain and rotated write paths.
fn encode_checkpoint<V: KrylovVec>(state: &CheckpointStateRef<'_, V>) -> Vec<u8> {
    assert_eq!(state.diag.len(), state.retained, "diag length != retained count");
    assert_eq!(state.border.len(), state.retained, "border length != retained count");
    assert_eq!(state.basis.len(), state.retained + 1, "basis must hold retained + 1 vectors");
    let layout = state.basis[0].layout();
    let dim: usize = layout.iter().sum();
    let lanes = V::Scalar::N_REALS;
    let width = V::SCALAR_WIDTH as usize;

    let mut buf = Vec::with_capacity(
        4 + 4 * 4
            + 8 * 8
            + layout.len() * 8
            + 2 * state.retained * 8
            + state.basis.len() * dim * lanes * width
            + 8,
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(V::STORAGE_KIND);
    buf.put_u32_le(lanes as u32);
    buf.put_u32_le(V::SCALAR_WIDTH);
    buf.put_u64_le(state.k as u64);
    buf.put_u64_le(state.budget as u64);
    buf.put_u64_le(state.restarts as u64);
    buf.put_u64_le(state.draws);
    buf.put_u64_le(state.breakdowns);
    buf.put_u64_le(state.retained as u64);
    buf.put_u64_le(state.basis.len() as u64);
    buf.put_u64_le(layout.len() as u64);
    for &l in &layout {
        buf.put_u64_le(l as u64);
    }
    for &d in state.diag {
        buf.put_f64_le(d);
    }
    for &s in state.border {
        buf.put_f64_le(s);
    }
    for v in state.basis {
        debug_assert_eq!(v.layout(), layout, "checkpointed vectors must share one layout");
        v.visit(&mut |x| {
            let reals = x.to_reals();
            for lane in reals.iter().take(lanes) {
                if width == 4 {
                    // f32 storage: `visit` yields the widened value, so
                    // narrowing back is exact and round-trips bitwise.
                    buf.put_u32_le((*lane as f32).to_bits());
                } else {
                    buf.put_f64_le(*lane);
                }
            }
        });
    }
    let checksum = fnv1a64(&buf);
    buf.put_u64_le(checksum);
    buf
}

/// Atomic byte write: process-unique temp name, then rename. Under the
/// multiprocess transport every rank writes the (identical,
/// deterministic) bytes, and distinct temp files keep the concurrent
/// write+rename pairs from clobbering each other mid-write — each rename
/// atomically installs a complete file.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// [`save_checkpoint`] over borrowed state — the solver's write path.
pub fn save_checkpoint_ref<V: KrylovVec>(
    path: &Path,
    state: &CheckpointStateRef<'_, V>,
) -> io::Result<()> {
    write_atomic(path, &encode_checkpoint(state))
}

// ---- keep-last-K rotation ------------------------------------------------
//
// With `keep > 1` the checkpoint path holds a tiny *manifest* (magic
// `LSMF`) instead of the state itself; the state lives in sibling
// generation files `<filename>.g<restarts>`. Ordering makes the scheme
// crash-consistent: a generation file is fully written (atomically)
// *before* the manifest that mentions it, so the manifest never points at
// bytes that do not exist, and a crash between the two writes merely
// leaves an extra generation on disk. Because resumes are bit-identical
// from any cycle, falling back to an older valid generation (after
// corruption of the newest) changes nothing about the final eigenvalues.

const MANIFEST_MAGIC: &[u8; 4] = b"LSMF";
const MANIFEST_VERSION: u32 = 1;

/// The sibling file holding generation `gen` of the rotated checkpoint
/// at `path`.
pub fn generation_path(path: &Path, gen: u64) -> std::path::PathBuf {
    let name = path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
    path.with_file_name(format!("{name}.g{gen}"))
}

fn encode_manifest(keep: usize, gens: &[u64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + gens.len() * 8 + 8);
    buf.put_slice(MANIFEST_MAGIC);
    buf.put_u32_le(MANIFEST_VERSION);
    buf.put_u32_le(keep as u32);
    buf.put_u32_le(gens.len() as u32);
    for &g in gens {
        buf.put_u64_le(g);
    }
    let checksum = fnv1a64(&buf);
    buf.put_u64_le(checksum);
    buf
}

fn parse_manifest(raw: &[u8]) -> Result<Vec<u64>, CheckpointError> {
    if raw.len() < 16 + 8 {
        return Err(CheckpointError::TooShort);
    }
    let (payload, stored_tail) = raw.split_at(raw.len() - 8);
    let stored = u64::from_le_bytes(stored_tail.try_into().unwrap());
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(CheckpointError::BadChecksum { stored, computed });
    }
    let mut r = Reader { buf: payload };
    let mut magic = [0u8; 4];
    r.need(4)?;
    r.buf.copy_to_slice(&mut magic);
    if &magic != MANIFEST_MAGIC {
        return Err(CheckpointError::BadMagic(magic));
    }
    let version = r.u32()?;
    if version != MANIFEST_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let _keep = r.u32()?;
    let count = r.u32()? as usize;
    r.need(count.checked_mul(8).ok_or(CheckpointError::TooShort)?)?;
    let mut gens = Vec::with_capacity(count);
    for _ in 0..count {
        gens.push(r.u64()?);
    }
    Ok(gens)
}

/// The generations a rotated checkpoint at `path` currently advertises,
/// oldest first. Errors mirror [`load_checkpoint`]'s typed failures; a
/// plain (non-rotated) checkpoint reports [`CheckpointError::BadMagic`].
pub fn manifest_generations(path: &Path) -> Result<Vec<u64>, CheckpointError> {
    parse_manifest(&fs::read(path)?)
}

/// Every `<filename>.g<N>` sibling actually on disk, newest first — the
/// recovery path when the manifest itself is torn or missing.
fn scan_generations(path: &Path) -> Vec<u64> {
    let name = match path.file_name() {
        Some(n) => format!("{}.g", n.to_string_lossy()),
        None => return Vec::new(),
    };
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let mut gens: Vec<u64> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .flatten()
            .filter_map(|e| {
                e.file_name().to_string_lossy().strip_prefix(&name).and_then(|s| s.parse().ok())
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    gens.sort_unstable_by(|a, b| b.cmp(a));
    gens.dedup();
    gens
}

/// Saves one generation of a keep-last-`keep` rotated checkpoint: writes
/// the state to its generation file, then atomically updates the
/// manifest at `path`, then prunes generations that fell out of the
/// window (best-effort). `keep == 1` still goes through the manifest so
/// a job's rotation mode is consistent; use [`save_checkpoint_ref`] for
/// the plain single-file format.
pub fn save_checkpoint_rotated<V: KrylovVec>(
    path: &Path,
    state: &CheckpointStateRef<'_, V>,
    keep: usize,
) -> io::Result<()> {
    let keep = keep.max(1);
    let gen = state.restarts as u64;
    write_atomic(&generation_path(path, gen), &encode_checkpoint(state))?;

    // Merge with whatever the manifest (or, failing that, the directory)
    // already knows, keep the newest `keep`.
    let mut gens = match fs::read(path) {
        Ok(raw) => parse_manifest(&raw).unwrap_or_else(|_| {
            let mut g = scan_generations(path);
            g.reverse();
            g
        }),
        Err(_) => Vec::new(),
    };
    if !gens.contains(&gen) {
        gens.push(gen);
    }
    gens.sort_unstable();
    let cut = gens.len().saturating_sub(keep);
    let pruned: Vec<u64> = gens.drain(..cut).collect();
    write_atomic(path, &encode_manifest(keep, &gens))?;
    for old in pruned {
        let _ = fs::remove_file(generation_path(path, old));
    }
    Ok(())
}

/// Loads the newest valid checkpoint reachable from `path`, whatever its
/// format:
///
/// * a plain `LSCK` file loads directly ([`load_checkpoint`]);
/// * a rotated `LSMF` manifest tries its generations newest-first,
///   falling back past corrupt or missing ones — a crash mid-write
///   strands at most the newest generation, never the job;
/// * a torn manifest falls back to scanning the directory for
///   generation files.
///
/// The error returned when nothing loads is the most recent failure.
pub fn load_latest_checkpoint<V: KrylovVec, Op: KrylovOp<V> + ?Sized>(
    path: &Path,
    op: &Op,
) -> Result<CheckpointState<V>, CheckpointError> {
    let raw = fs::read(path)?;
    if !raw.starts_with(MANIFEST_MAGIC) {
        return load_checkpoint(path, op);
    }
    let mut gens = match parse_manifest(&raw) {
        Ok(mut gens) => {
            gens.sort_unstable_by(|a, b| b.cmp(a));
            gens
        }
        Err(_) => Vec::new(),
    };
    // Union with the directory: a crash after writing a generation but
    // before the manifest leaves a newer-than-advertised file that is
    // perfectly valid to resume from; a torn manifest leaves only files.
    for g in scan_generations(path) {
        if !gens.contains(&g) {
            gens.push(g);
        }
    }
    gens.sort_unstable_by(|a, b| b.cmp(a));
    if gens.is_empty() {
        return Err(CheckpointError::Malformed(
            "rotated checkpoint manifest with no generations on disk".into(),
        ));
    }
    let mut last_err = None;
    for gen in gens {
        match load_checkpoint(&generation_path(path, gen), op) {
            Ok(state) => return Ok(state),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap())
}

/// Removes a checkpoint and, if rotated, all of its generation files —
/// the `--fresh` path of restartable programs.
pub fn remove_checkpoint(path: &Path) -> io::Result<()> {
    for gen in scan_generations(path) {
        let _ = fs::remove_file(generation_path(path, gen));
    }
    match fs::remove_file(path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        other => other,
    }
}

/// A cursor over the raw bytes with length-checked reads: every parse
/// failure is a typed [`CheckpointError`], never a panic.
struct Reader<'a> {
    buf: &'a [u8],
}

impl Reader<'_> {
    fn need(&self, n: usize) -> Result<(), CheckpointError> {
        if self.buf.remaining() < n {
            Err(CheckpointError::Truncated { needed: n, available: self.buf.remaining() })
        } else {
            Ok(())
        }
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }
}

/// Loads and validates a checkpoint, rebuilding the basis vectors in the
/// operator's own storage (`op.new_vec()` + element-order fill). The
/// checkpoint must match the operator: same storage kind, same scalar
/// width, same part layout — anything else is a typed error, because a
/// resume that silently reinterprets or repartitions the state cannot be
/// bit-identical to the uninterrupted solve.
pub fn load_checkpoint<V: KrylovVec, Op: KrylovOp<V> + ?Sized>(
    path: &Path,
    op: &Op,
) -> Result<CheckpointState<V>, CheckpointError> {
    let raw = fs::read(path)?;
    if raw.len() < 4 + 3 * 4 + 8 * 8 + 8 {
        return Err(CheckpointError::TooShort);
    }
    let (payload, stored_tail) = raw.split_at(raw.len() - 8);
    let stored = u64::from_le_bytes(stored_tail.try_into().unwrap());
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(CheckpointError::BadChecksum { stored, computed });
    }

    let mut r = Reader { buf: payload };
    let mut magic = [0u8; 4];
    r.need(4)?;
    r.buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic(magic));
    }
    let version = r.u32()?;
    if version == 0 || version > VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let kind = r.u32()?;
    let lanes = r.u32()? as usize;
    // Version-1 files predate the width field: always 8-byte lanes.
    let width = if version == 1 { 8 } else { r.u32()? };
    // Precision routing: equal (kind, width) loads directly; an f32 file
    // may be *widened* into the matching f64 storage (lossless); the
    // narrowing direction is a typed error, never a silent truncation.
    let exact = kind == V::STORAGE_KIND && width == V::SCALAR_WIDTH;
    let widening = width == 4
        && V::SCALAR_WIDTH == 8
        && ((kind == 3 && V::STORAGE_KIND == 1) || (kind == 4 && V::STORAGE_KIND == 2));
    if !(exact || widening) {
        let narrowing = width == 8
            && V::SCALAR_WIDTH == 4
            && ((kind == 1 && V::STORAGE_KIND == 3) || (kind == 2 && V::STORAGE_KIND == 4));
        if narrowing || (kind == V::STORAGE_KIND && width != V::SCALAR_WIDTH) {
            return Err(CheckpointError::PrecisionMismatch {
                found: width,
                expected: V::SCALAR_WIDTH,
            });
        }
        return Err(CheckpointError::WrongStorageKind {
            found: kind,
            expected: V::STORAGE_KIND,
        });
    }
    if lanes != V::Scalar::N_REALS {
        return Err(CheckpointError::ScalarWidthMismatch {
            found: lanes as u32,
            expected: V::Scalar::N_REALS as u32,
        });
    }
    let k = r.u64()? as usize;
    let budget = r.u64()? as usize;
    let restarts = r.u64()? as usize;
    let draws = r.u64()?;
    let breakdowns = r.u64()?;
    let retained = r.u64()? as usize;
    let nvecs = r.u64()? as usize;
    if nvecs != retained + 1 {
        return Err(CheckpointError::Malformed(format!(
            "{nvecs} vectors for {retained} retained pairs (want retained + 1)"
        )));
    }
    if retained > budget || k > budget {
        return Err(CheckpointError::Malformed(format!(
            "retained {retained} / k {k} exceed budget {budget}"
        )));
    }
    let nparts = r.u64()? as usize;
    // Bound before allocating: each part length is 8 bytes.
    r.need(nparts.checked_mul(8).ok_or(CheckpointError::TooShort)?)?;
    let mut layout = Vec::with_capacity(nparts);
    for _ in 0..nparts {
        layout.push(r.u64()? as usize);
    }
    let expected_layout = op.new_vec().layout();
    if layout != expected_layout {
        return Err(CheckpointError::LayoutMismatch {
            found: layout,
            expected: expected_layout,
        });
    }
    let dim: usize = layout.iter().sum();
    if dim != op.dim() {
        return Err(CheckpointError::Malformed(format!(
            "checkpoint dimension {dim} != operator dimension {}",
            op.dim()
        )));
    }

    // Bound before allocating: `retained` is file-controlled, and a
    // checksum-valid but malformed file must come back as a typed error,
    // never as a capacity panic (diag + border are 16 bytes per entry).
    r.need(retained.checked_mul(16).ok_or(CheckpointError::TooShort)?)?;
    let mut diag = Vec::with_capacity(retained);
    for _ in 0..retained {
        diag.push(r.f64()?);
    }
    let mut border = Vec::with_capacity(retained);
    for _ in 0..retained {
        border.push(r.f64()?);
    }

    let vec_bytes = dim
        .checked_mul(lanes)
        .and_then(|x| x.checked_mul(width as usize))
        .ok_or(CheckpointError::TooShort)?;
    let total = vec_bytes.checked_mul(nvecs).ok_or(CheckpointError::TooShort)?;
    r.need(total)?;
    let mut basis = Vec::with_capacity(nvecs);
    for _ in 0..nvecs {
        let mut v = op.new_vec();
        v.fill_with(&mut |_i| {
            let mut reals = [0.0f64; 2];
            for lane in reals.iter_mut().take(lanes) {
                *lane = if width == 4 {
                    // f32 lanes widen exactly (also the widening resume).
                    f32::from_bits(r.buf.get_u32_le()) as f64
                } else {
                    r.buf.get_f64_le()
                };
            }
            V::Scalar::from_reals(reals)
        });
        basis.push(v);
    }

    Ok(CheckpointState {
        k,
        budget,
        restarts,
        draws,
        breakdowns,
        retained,
        diag,
        border,
        basis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::DenseOp;
    use ls_runtime::DistVec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ls_eigen_ckpt_{}_{name}.lsck", std::process::id()));
        p
    }

    fn sample_state(dim: usize) -> CheckpointState<Vec<f64>> {
        let mk = |s: f64| (0..dim).map(|i| (i as f64 * s).sin()).collect::<Vec<f64>>();
        CheckpointState {
            k: 2,
            budget: 12,
            restarts: 5,
            draws: 3,
            breakdowns: 1,
            retained: 2,
            diag: vec![-1.5, -0.25],
            border: vec![1e-3, -2e-4],
            basis: vec![mk(0.1), mk(0.2), mk(0.3)],
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let path = tmp("roundtrip");
        let dim = 97;
        let st = sample_state(dim);
        save_checkpoint(&path, &st).unwrap();
        let op = DenseOp::new(dim, vec![0.0; dim * dim]);
        let back = load_checkpoint::<Vec<f64>, _>(&path, &op).unwrap();
        assert_eq!(back.k, st.k);
        assert_eq!(back.budget, st.budget);
        assert_eq!(back.restarts, st.restarts);
        assert_eq!(back.draws, st.draws);
        assert_eq!(back.breakdowns, st.breakdowns);
        assert_eq!(back.retained, st.retained);
        assert_eq!(back.diag, st.diag);
        assert_eq!(back.border, st.border);
        assert_eq!(back.basis, st.basis); // f64 bit equality via PartialEq
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_storage_kind_rejected() {
        let path = tmp("kind");
        let dim = 16;
        save_checkpoint(&path, &sample_state(dim)).unwrap();
        // A distributed operator with the same total dimension.
        struct DistZero(Vec<usize>);
        impl KrylovOp<DistVec<f64>> for DistZero {
            fn dim(&self) -> usize {
                self.0.iter().sum()
            }
            fn new_vec(&self) -> DistVec<f64> {
                DistVec::zeros(&self.0)
            }
            fn apply(&self, _x: &DistVec<f64>, _y: &mut DistVec<f64>) {}
        }
        let op = DistZero(vec![8, 8]);
        match load_checkpoint::<DistVec<f64>, _>(&path, &op) {
            Err(CheckpointError::WrongStorageKind { found: 1, expected: 2 }) => {}
            other => panic!("expected WrongStorageKind, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    fn sample_state_f32(dim: usize) -> CheckpointState<crate::precision::F32Vec> {
        let st = sample_state(dim);
        CheckpointState {
            k: st.k,
            budget: st.budget,
            restarts: st.restarts,
            draws: st.draws,
            breakdowns: st.breakdowns,
            retained: st.retained,
            diag: st.diag,
            border: st.border,
            basis: st.basis.iter().map(|v| crate::precision::F32Vec::narrow_from(v)).collect(),
        }
    }

    #[test]
    fn f32_checkpoint_roundtrips_bitwise_and_widens_to_f64() {
        use crate::precision::{F32Vec, MixedOp};
        let path = tmp("f32_roundtrip");
        let dim = 61;
        let st = sample_state_f32(dim);
        save_checkpoint(&path, &st).unwrap();
        let dense = DenseOp::new(dim, vec![0.0; dim * dim]);

        // Same-precision resume: bit-exact.
        let op32 = MixedOp::new(&dense);
        let back = load_checkpoint::<F32Vec, _>(&path, &op32).unwrap();
        assert_eq!(back.basis, st.basis);
        assert_eq!(back.diag, st.diag);

        // Widening resume (f32 file, f64 solve): explicit and lossless.
        let wide = load_checkpoint::<Vec<f64>, _>(&path, &dense).unwrap();
        for (w, n) in wide.basis.iter().zip(&st.basis) {
            assert_eq!(w, &n.widen(), "widened lanes must be the exact f32 values");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn narrowing_resume_is_a_typed_precision_error() {
        use crate::precision::{F32Vec, MixedOp};
        let path = tmp("narrowing");
        let dim = 32;
        save_checkpoint(&path, &sample_state(dim)).unwrap(); // f64 file
        let dense = DenseOp::new(dim, vec![0.0; dim * dim]);
        let op32 = MixedOp::new(&dense);
        match load_checkpoint::<F32Vec, _>(&path, &op32) {
            Err(CheckpointError::PrecisionMismatch { found: 8, expected: 4 }) => {}
            other => panic!("expected PrecisionMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version1_files_load_as_f64() {
        // A v1 file is a v2 file with the width field cut out and the
        // version stamp rewritten — loaders must read it as 8-byte lanes.
        let path = tmp("v1_compat");
        let dim = 19;
        let st = sample_state(dim);
        save_checkpoint(&path, &st).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes()); // version = 1
        bytes.drain(16..20); // remove width field
        let body_end = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let op = DenseOp::new(dim, vec![0.0; dim * dim]);
        let back = load_checkpoint::<Vec<f64>, _>(&path, &op).unwrap();
        assert_eq!(back.basis, st.basis);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_and_corruption_rejected() {
        let path = tmp("corrupt");
        let dim = 40;
        save_checkpoint(&path, &sample_state(dim)).unwrap();
        let good = std::fs::read(&path).unwrap();
        let op = DenseOp::new(dim, vec![0.0; dim * dim]);

        // Truncated at various points (header, payload, checksum).
        for cut in [0, 3, 20, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            let err = load_checkpoint::<Vec<f64>, _>(&path, &op).unwrap_err();
            assert!(
                matches!(err, CheckpointError::TooShort | CheckpointError::BadChecksum { .. }),
                "cut {cut}: {err:?}"
            );
        }

        // A flipped payload byte fails the checksum.
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            load_checkpoint::<Vec<f64>, _>(&path, &op),
            Err(CheckpointError::BadChecksum { .. })
        ));

        // Layout mismatch: same bytes, smaller operator.
        std::fs::write(&path, &good).unwrap();
        let small = DenseOp::new(dim - 1, vec![0.0; (dim - 1) * (dim - 1)]);
        assert!(matches!(
            load_checkpoint::<Vec<f64>, _>(&path, &small),
            Err(CheckpointError::LayoutMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    fn save_rotated(path: &Path, st: &CheckpointState<Vec<f64>>, keep: usize) {
        save_checkpoint_rotated(
            path,
            &CheckpointStateRef {
                k: st.k,
                budget: st.budget,
                restarts: st.restarts,
                draws: st.draws,
                breakdowns: st.breakdowns,
                retained: st.retained,
                diag: &st.diag,
                border: &st.border,
                basis: &st.basis,
            },
            keep,
        )
        .unwrap();
    }

    #[test]
    fn rotation_keeps_last_k_and_loads_newest() {
        let path = tmp("rotate");
        remove_checkpoint(&path).unwrap();
        let dim = 24;
        let op = DenseOp::new(dim, vec![0.0; dim * dim]);
        for cycle in 1..=5 {
            let mut st = sample_state(dim);
            st.restarts = cycle;
            st.draws = cycle as u64 * 10;
            save_rotated(&path, &st, 3);
        }
        // Only the newest 3 generations survive, manifest agrees.
        assert_eq!(manifest_generations(&path).unwrap(), vec![3, 4, 5]);
        assert!(!generation_path(&path, 1).exists());
        assert!(!generation_path(&path, 2).exists());
        for gen in 3..=5 {
            assert!(generation_path(&path, gen).exists(), "generation {gen} missing");
        }
        let newest = load_latest_checkpoint::<Vec<f64>, _>(&path, &op).unwrap();
        assert_eq!(newest.restarts, 5);
        assert_eq!(newest.draws, 50);
        remove_checkpoint(&path).unwrap();
        assert!(!path.exists());
        assert!(scan_generations(&path).is_empty());
    }

    #[test]
    fn rotation_falls_back_past_a_corrupt_newest_generation() {
        let path = tmp("fallback");
        remove_checkpoint(&path).unwrap();
        let dim = 24;
        let op = DenseOp::new(dim, vec![0.0; dim * dim]);
        for cycle in 1..=3 {
            let mut st = sample_state(dim);
            st.restarts = cycle;
            save_rotated(&path, &st, 3);
        }
        // Corrupt the newest generation: the loader must fall back.
        let g3 = generation_path(&path, 3);
        let mut bytes = std::fs::read(&g3).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&g3, &bytes).unwrap();
        let state = load_latest_checkpoint::<Vec<f64>, _>(&path, &op).unwrap();
        assert_eq!(state.restarts, 2, "should resume from the newest *valid* generation");

        // Torn manifest: directory scan still finds the generations.
        std::fs::write(&path, b"LSMFgarbage").unwrap();
        let state = load_latest_checkpoint::<Vec<f64>, _>(&path, &op).unwrap();
        assert_eq!(state.restarts, 2);

        // Every generation corrupt: a typed error, not a panic.
        for gen in 1..=3 {
            std::fs::write(generation_path(&path, gen), b"junk").unwrap();
        }
        assert!(load_latest_checkpoint::<Vec<f64>, _>(&path, &op).is_err());
        remove_checkpoint(&path).unwrap();
    }

    #[test]
    fn plain_checkpoints_load_through_the_latest_api() {
        let path = tmp("plain_via_latest");
        remove_checkpoint(&path).unwrap();
        let dim = 33;
        let st = sample_state(dim);
        save_checkpoint(&path, &st).unwrap();
        let op = DenseOp::new(dim, vec![0.0; dim * dim]);
        let back = load_latest_checkpoint::<Vec<f64>, _>(&path, &op).unwrap();
        assert_eq!(back.basis, st.basis);
        // And a plain file is not a manifest.
        assert!(matches!(manifest_generations(&path), Err(CheckpointError::BadMagic(_))));
        remove_checkpoint(&path).unwrap();
    }

    #[test]
    fn unadvertised_newer_generation_is_preferred() {
        // Crash window: generation written, manifest not yet updated.
        let path = tmp("unadvertised");
        remove_checkpoint(&path).unwrap();
        let dim = 24;
        let op = DenseOp::new(dim, vec![0.0; dim * dim]);
        let mut st = sample_state(dim);
        st.restarts = 1;
        save_rotated(&path, &st, 2);
        // Simulate the torn write: generation 2 exists, manifest says [1].
        st.restarts = 2;
        let bytes = encode_checkpoint(&CheckpointStateRef {
            k: st.k,
            budget: st.budget,
            restarts: st.restarts,
            draws: st.draws,
            breakdowns: st.breakdowns,
            retained: st.retained,
            diag: &st.diag,
            border: &st.border,
            basis: &st.basis,
        });
        std::fs::write(generation_path(&path, 2), &bytes).unwrap();
        assert_eq!(manifest_generations(&path).unwrap(), vec![1]);
        let state = load_latest_checkpoint::<Vec<f64>, _>(&path, &op).unwrap();
        assert_eq!(state.restarts, 2);
        remove_checkpoint(&path).unwrap();
    }
}
