//! Dynamical response via the Lanczos continued fraction.
//!
//! The classic exact-diagonalization route to spectral functions
//! (Lin, the paper's Ref.\ 16): for a seed state `|φ⟩ = O|gs⟩`,
//!
//! ```text
//! A(ω) = -(1/π) Im ⟨φ| (ω + iη - H)^(-1) |φ⟩
//! ```
//!
//! is evaluated from the Lanczos coefficients `(α_j, β_j)` of `|φ⟩` as a
//! continued fraction — no inversion, no dense algebra, just the same
//! matrix-vector product everything else uses.
//!
//! The coefficient run is the shared blocked-CGS2 Krylov factorization
//! of [`crate::lanczos`] (fused matvec+dot, one `multi_dot`/`multi_axpy`
//! sweep per pass — no per-iteration clones), generic over
//! [`KrylovVec`]: a distributed seed state produces its coefficients
//! entirely in place on the locale parts
//! ([`spectral_coefficients_in`]); the coefficients themselves are a few
//! scalars, so the continued-fraction evaluation is storage-agnostic.

use crate::lanczos::krylov_factorization;
use crate::vector::{KrylovOp, KrylovVec};
use crate::LinearOp;
use ls_kernels::{Complex64, Scalar};

/// The Lanczos tridiagonal coefficients of a seed state: everything needed
/// to evaluate spectral functions at any frequency.
#[derive(Clone, Debug)]
pub struct SpectralCoefficients {
    /// `⟨φ|φ⟩` — the total spectral weight.
    pub weight: f64,
    pub alphas: Vec<f64>,
    pub betas: Vec<f64>,
}

/// Runs `m` Lanczos steps from `seed` (full reorthogonalization) and
/// returns the continued-fraction coefficients. Slice-based wrapper over
/// [`spectral_coefficients_in`].
pub fn spectral_coefficients<S: Scalar, Op: LinearOp<S> + ?Sized>(
    op: &Op,
    seed: &[S],
    m: usize,
) -> SpectralCoefficients {
    spectral_coefficients_owned(op, seed.to_vec(), m)
}

/// Runs `m` Lanczos steps from `seed` in place on the operator's vector
/// storage and returns the continued-fraction coefficients.
pub fn spectral_coefficients_in<V: KrylovVec, Op: KrylovOp<V> + ?Sized>(
    op: &Op,
    seed: &V,
    m: usize,
) -> SpectralCoefficients {
    spectral_coefficients_owned(op, seed.clone(), m)
}

/// The owned core both entry points lower to: `seed` becomes the first
/// Krylov vector, so each caller pays exactly one copy of the state.
fn spectral_coefficients_owned<V: KrylovVec, Op: KrylovOp<V> + ?Sized>(
    op: &Op,
    seed: V,
    m: usize,
) -> SpectralCoefficients {
    assert!(op.is_hermitian());
    let weight = seed.norm_sqr();
    assert!(weight > 0.0, "zero seed state has no spectrum");
    let (_basis, alphas, betas) = krylov_factorization(op, seed, m);
    SpectralCoefficients { weight, alphas, betas }
}

impl SpectralCoefficients {
    /// The resolvent matrix element `⟨φ|(z - H)^{-1}|φ⟩` at complex
    /// frequency `z = ω + iη`, evaluated bottom-up through the continued
    /// fraction.
    pub fn resolvent(&self, z: Complex64) -> Complex64 {
        let k = self.alphas.len();
        let mut acc = Complex64::ZERO;
        for j in (0..k).rev() {
            let denom = z - Complex64::from(self.alphas[j]) - acc;
            let b2 = if j > 0 { self.betas[j - 1].powi(2) } else { self.weight };
            // Next level up: β_j² / (z - α_j - acc); at the top the
            // numerator is ⟨φ|φ⟩.
            acc = Complex64::from(b2) / denom;
        }
        acc
    }

    /// The spectral function `A(ω) = -(1/π) Im ⟨φ|(ω + iη - H)^{-1}|φ⟩`
    /// with Lorentzian broadening `eta`.
    pub fn spectral_function(&self, omega: f64, eta: f64) -> f64 {
        assert!(eta > 0.0);
        let g = self.resolvent(Complex64::new(omega, eta));
        -g.im / std::f64::consts::PI
    }

    /// Evaluates `A(ω)` on a frequency grid.
    pub fn spectrum(&self, omegas: &[f64], eta: f64) -> Vec<f64> {
        omegas.iter().map(|&w| self.spectral_function(w, eta)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::eigh_real;
    use crate::op::DenseOp;

    fn random_symmetric(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        let mut next = move || {
            s = ls_kernels::hash64_01(s.wrapping_add(1));
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let x = next();
                a[i * n + j] = x;
                a[j * n + i] = x;
            }
        }
        a
    }

    /// Dense oracle: A(ω) = Σ_k |⟨k|φ⟩|² L_η(ω - λ_k).
    fn dense_spectrum(a: &[f64], n: usize, phi: &[f64], omega: f64, eta: f64) -> f64 {
        let (vals, vecs) = eigh_real(a, n);
        let mut acc = 0.0;
        for (lam, v) in vals.iter().zip(&vecs) {
            let overlap: f64 = v.iter().zip(phi).map(|(a, b)| a * b).sum();
            let lorentz = eta / std::f64::consts::PI / ((omega - lam).powi(2) + eta * eta);
            acc += overlap * overlap * lorentz;
        }
        acc
    }

    #[test]
    fn matches_dense_resolvent() {
        let n = 24;
        let a = random_symmetric(n, 3);
        let op = DenseOp::new(n, a.clone());
        let phi: Vec<f64> = (0..n).map(|i| (0.3 * i as f64).cos()).collect();
        // Full Krylov space => exact (up to roundoff).
        let coeffs = spectral_coefficients(&op, &phi, n);
        let eta = 0.15;
        for omega in [-2.0f64, -0.5, 0.0, 0.7, 1.9] {
            let ours = coeffs.spectral_function(omega, eta);
            let exact = dense_spectrum(&a, n, &phi, omega, eta);
            assert!(
                (ours - exact).abs() < 1e-8 * (1.0 + exact.abs()),
                "ω={omega}: {ours} vs {exact}"
            );
        }
    }

    #[test]
    fn sum_rule_total_weight() {
        // ∫ A(ω) dω = ⟨φ|φ⟩; check by coarse numerical integration over a
        // wide window (Lorentzian tails make this approximate).
        let n = 16;
        let a = random_symmetric(n, 9);
        let op = DenseOp::new(n, a);
        let phi: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let weight = crate::op::norm_sqr(&phi);
        let coeffs = spectral_coefficients(&op, &phi, n);
        let eta = 0.02;
        let (lo, hi, steps) = (-30.0, 30.0, 120_000);
        let dw = (hi - lo) / steps as f64;
        let integral: f64 = (0..steps)
            .map(|i| coeffs.spectral_function(lo + (i as f64 + 0.5) * dw, eta) * dw)
            .sum();
        assert!((integral - weight).abs() < 0.02 * weight, "∫A = {integral}, ⟨φ|φ⟩ = {weight}");
    }

    #[test]
    fn single_eigenstate_seed_is_a_single_peak() {
        let n = 12;
        let a = random_symmetric(n, 17);
        let (vals, vecs) = eigh_real(&a, n);
        let op = DenseOp::new(n, a);
        let coeffs = spectral_coefficients(&op, &vecs[3], n);
        let eta = 0.05;
        // Peak at λ_3 with height 1/(π η):
        let peak = coeffs.spectral_function(vals[3], eta);
        assert!((peak - 1.0 / (std::f64::consts::PI * eta)).abs() / peak < 1e-6);
        // Far away: tiny.
        assert!(coeffs.spectral_function(vals[3] + 50.0, eta) < 1e-4);
    }

    #[test]
    fn spectrum_is_nonnegative() {
        let n = 20;
        let a = random_symmetric(n, 21);
        let op = DenseOp::new(n, a);
        let phi: Vec<f64> = (0..n).map(|i| ((i * i) as f64).sin()).collect();
        let coeffs = spectral_coefficients(&op, &phi, n);
        let omegas: Vec<f64> = (0..200).map(|i| -4.0 + 0.04 * i as f64).collect();
        for v in coeffs.spectrum(&omegas, 0.1) {
            assert!(v >= -1e-12, "negative spectral weight {v}");
        }
    }
}
