//! Pins the determinism contract of the parallel BLAS-1 kernels: the
//! reductions use a fixed-shape pairwise tree over a thread-independent
//! block partition, so `par_dot` / `par_norm_sqr` (and the fused
//! `par_axpy_norm_sqr`) return *bit-identical* results for threads = 1,
//! 2, and N.
//!
//! The whole property lives in one `proptest!` test because
//! `rayon::set_thread_limit` is process-global: a single test body owns
//! the limit for its entire run and restores it afterwards.

use ls_eigen::op::{
    axpy, dot, norm_sqr, par_axpy, par_axpy_norm_sqr, par_dot, par_norm_sqr, REDUCE_BLOCK,
};
use ls_kernels::Complex64;
use proptest::prelude::*;

fn vec_from_seed(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let h = ls_kernels::hash64_01(seed.wrapping_add(i as u64).wrapping_mul(0x9e37));
            (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Runs `f` under each thread limit and asserts all results are
/// bit-identical; restores the previous limit even on failure.
fn identical_under_limits<R: PartialEq + std::fmt::Debug>(
    limits: &[usize],
    f: impl Fn() -> R,
) -> R {
    let prev = rayon::set_thread_limit(0);
    rayon::set_thread_limit(prev);
    let reference = {
        rayon::set_thread_limit(1);
        f()
    };
    for &t in limits {
        rayon::set_thread_limit(t);
        let got = f();
        assert_eq!(got, reference, "thread limit {t} diverged");
    }
    rayon::set_thread_limit(prev);
    reference
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reductions_identical_for_1_2_n(
        len in 0usize..4 * REDUCE_BLOCK + 17,
        seed in any::<u64>(),
        alpha_bits in any::<u64>(),
    ) {
        let n_threads = rayon::current_num_threads().max(4);
        let limits = [2usize, n_threads];
        let a = vec_from_seed(len, seed);
        let b = vec_from_seed(len, seed ^ 0xdead_beef);
        let alpha = ((alpha_bits >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;

        // Real scalars.
        let d = identical_under_limits(&limits, || par_dot(&a, &b).to_bits());
        let n2 = identical_under_limits(&limits, || par_norm_sqr(&a).to_bits());
        let fused = identical_under_limits(&limits, || {
            let mut y = b.clone();
            let r = par_axpy_norm_sqr(alpha, &a, &mut y);
            (r.to_bits(), y.iter().map(|v| v.to_bits()).collect::<Vec<_>>())
        });
        // The fused kernel is bit-identical to axpy followed by the
        // parallel norm (same partial layout).
        let mut y = b.clone();
        {
            let prev = rayon::set_thread_limit(1);
            par_axpy(alpha, &a, &mut y);
            let split = par_norm_sqr(&y);
            prop_assert_eq!(fused.0, split.to_bits());
            rayon::set_thread_limit(prev);
        }
        prop_assert_eq!(
            fused.1,
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Small inputs take the serial fast path; it must agree bitwise
        // with the general algorithm's single-block case.
        if len <= REDUCE_BLOCK {
            prop_assert_eq!(d, dot(&a, &b).to_bits());
            prop_assert_eq!(n2, norm_sqr(&a).to_bits());
            let mut y2 = b.clone();
            axpy(alpha, &a, &mut y2);
            prop_assert_eq!(fused.0, norm_sqr(&y2).to_bits());
        }

        // Complex scalars exercise the multi-lane partial stores.
        let re = vec_from_seed(len, seed ^ 1);
        let im = vec_from_seed(len, seed ^ 2);
        let ca: Vec<Complex64> =
            re.iter().zip(&im).map(|(&r, &i)| Complex64::new(r, i)).collect();
        let cb: Vec<Complex64> =
            im.iter().zip(&re).map(|(&r, &i)| Complex64::new(r, i)).collect();
        identical_under_limits(&limits, || {
            let z = par_dot(&ca, &cb);
            (z.re.to_bits(), z.im.to_bits())
        });
        identical_under_limits(&limits, || par_norm_sqr(&ca).to_bits());
    }
}
