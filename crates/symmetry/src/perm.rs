//! Site permutations.
//!
//! A [`SitePermutation`] maps lattice sites to lattice sites: `map[i] = j`
//! means "the spin on site `i` moves to site `j`". Acting on a basis state
//! `s`, bit `map[i]` of the image equals bit `i` of `s`.

use ls_kernels::net::BenesNetwork;

/// A permutation of `n` lattice sites in image form (`map[i]` = where site
/// `i` goes).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SitePermutation {
    map: Vec<u16>,
}

impl SitePermutation {
    /// Builds a permutation from its image list. Verifies bijectivity.
    pub fn new(map: impl Into<Vec<u16>>) -> Result<Self, String> {
        let map = map.into();
        if map.len() > 64 {
            return Err(format!("too many sites: {} > 64", map.len()));
        }
        let mut seen = vec![false; map.len()];
        for &j in &map {
            if j as usize >= map.len() || seen[j as usize] {
                return Err("not a permutation".to_string());
            }
            seen[j as usize] = true;
        }
        Ok(Self { map })
    }

    /// Builds from usize images (convenience for lattice constructors).
    pub fn from_usize(map: &[usize]) -> Result<Self, String> {
        Self::new(map.iter().map(|&x| x as u16).collect::<Vec<u16>>())
    }

    pub fn identity(n: usize) -> Self {
        Self { map: (0..n as u16).collect() }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &j)| i as u16 == j)
    }

    /// Image of site `i`.
    #[inline]
    pub fn image(&self, i: usize) -> usize {
        self.map[i] as usize
    }

    pub fn as_slice(&self) -> &[u16] {
        &self.map
    }

    /// Composition `self` then `other` (first move spins by `self`, then by
    /// `other`): `(other ∘ self)(i) = other[self[i]]`.
    pub fn then(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len());
        Self { map: self.map.iter().map(|&j| other.map[j as usize]).collect() }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u16; self.len()];
        for (i, &j) in self.map.iter().enumerate() {
            inv[j as usize] = i as u16;
        }
        Self { map: inv }
    }

    /// The multiplicative order (smallest `k > 0` with `self^k = id`).
    pub fn order(&self) -> u64 {
        // lcm of cycle lengths.
        let mut order = 1u64;
        for len in self.cycle_lengths() {
            order = lcm(order, len as u64);
        }
        order
    }

    /// Lengths of the permutation's cycles (including fixed points).
    pub fn cycle_lengths(&self) -> Vec<usize> {
        let mut seen = vec![false; self.len()];
        let mut out = Vec::new();
        for start in 0..self.len() {
            if seen[start] {
                continue;
            }
            let mut len = 0;
            let mut i = start;
            while !seen[i] {
                seen[i] = true;
                i = self.map[i] as usize;
                len += 1;
            }
            out.push(len);
        }
        out
    }

    /// Applies the permutation to a basis state, bit by bit. The fast path
    /// is [`SitePermutation::compile`]; this is the oracle.
    #[inline]
    pub fn apply_naive(&self, s: u64) -> u64 {
        let mut out = 0u64;
        for (i, &j) in self.map.iter().enumerate() {
            out |= ((s >> i) & 1) << j;
        }
        if self.len() < 64 {
            out |= s & !ls_kernels::bits::low_mask(self.len() as u32);
        }
        out
    }

    /// Compiles the permutation into a Benes network.
    ///
    /// The network wants destination-from-source form: output bit `d` reads
    /// input bit `source[d]`; since bit `i` of the input lands at `map[i]`,
    /// `source[map[i]] = i`, i.e. `source` is the inverse image list.
    pub fn compile(&self) -> BenesNetwork {
        let inv = self.inverse();
        let source: Vec<usize> = inv.map.iter().map(|&x| x as usize).collect();
        BenesNetwork::new(&source)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls_kernels::bits::{low_mask, rotate_low_bits};

    #[test]
    fn rejects_bad_input() {
        assert!(SitePermutation::new(vec![0u16, 0]).is_err());
        assert!(SitePermutation::new(vec![0u16, 2]).is_err());
        assert!(SitePermutation::new(vec![5u16]).is_err());
    }

    #[test]
    fn translation_acts_as_rotation() {
        // map[i] = (i+1) % n: spin at site i moves to site i+1 — this is a
        // left rotation of the bits.
        for n in [2u32, 3, 8, 21, 64] {
            let map: Vec<u16> = (0..n as u16).map(|i| (i + 1) % n as u16).collect();
            let t = SitePermutation::new(map).unwrap();
            for seed in 0..50u64 {
                let s = ls_kernels::hash64_01(seed) & low_mask(n);
                assert_eq!(t.apply_naive(s), rotate_low_bits(s, n, 1));
            }
        }
    }

    #[test]
    fn compiled_matches_naive() {
        let perms = [
            SitePermutation::new(vec![1u16, 2, 3, 0]).unwrap(),
            SitePermutation::new(vec![3u16, 2, 1, 0]).unwrap(),
            SitePermutation::new(vec![0u16, 2, 1, 4, 3, 5]).unwrap(),
        ];
        for p in &perms {
            let net = p.compile();
            for s in 0..64u64 {
                assert_eq!(net.apply(s), p.apply_naive(s), "{p:?} s={s:#b}");
            }
        }
    }

    #[test]
    fn inverse_and_composition() {
        let p = SitePermutation::new(vec![2u16, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        assert!(p.then(&inv).is_identity());
        assert!(inv.then(&p).is_identity());
        for s in 0..16u64 {
            assert_eq!(inv.apply_naive(p.apply_naive(s)), s);
        }
        // then(): composition order matters and matches bit application.
        let q = SitePermutation::new(vec![1u16, 0, 2, 3]).unwrap();
        let pq = p.then(&q);
        for s in 0..16u64 {
            assert_eq!(pq.apply_naive(s), q.apply_naive(p.apply_naive(s)));
        }
    }

    #[test]
    fn orders_and_cycles() {
        let t = SitePermutation::new(vec![1u16, 2, 3, 4, 5, 0]).unwrap();
        assert_eq!(t.order(), 6);
        assert_eq!(t.cycle_lengths(), vec![6]);
        let r = SitePermutation::new(vec![5u16, 4, 3, 2, 1, 0]).unwrap();
        assert_eq!(r.order(), 2);
        let mut cl = r.cycle_lengths();
        cl.sort();
        assert_eq!(cl, vec![2, 2, 2]);
        assert_eq!(SitePermutation::identity(7).order(), 1);
        // Mixed cycle structure: 2-cycle + 3-cycle => order 6.
        let m = SitePermutation::new(vec![1u16, 0, 3, 4, 2]).unwrap();
        assert_eq!(m.order(), 6);
        let mut cl = m.cycle_lengths();
        cl.sort();
        assert_eq!(cl, vec![2, 3]);
    }
}
