//! Closed-form symmetry-sector dimension counting (Burnside / projector
//! trace).
//!
//! The dimension of the symmetry-adapted subspace is the trace of the
//! projector `P = (1/|G|) Σ_g χ(g)* U_g`, i.e.
//!
//! ```text
//! dim = (1/|G|) Σ_g χ(g)* · Fix(g)
//! ```
//!
//! where `Fix(g)` counts basis states fixed by `g` (within the fixed
//! Hamming-weight sector if U(1) is imposed). `Fix(g)` follows from the
//! cycle structure of the permutation: a fixed state must be constant along
//! every cycle, and under a spin-inverting element it must alternate, which
//! is possible only for even-length cycles. A knapsack DP over cycle
//! lengths restricts to a given Hamming weight.
//!
//! This lets us verify Table 2 of the paper (dimensions up to 1.7·10¹¹)
//! exactly and instantly, without touching a single basis state.

use crate::group::SymmetryGroup;
use ls_kernels::Complex64;

/// Number of weight-`w` bitstrings fixed by an element with the given
/// plain-permutation cycle lengths, when the element carries no spin flip:
/// the generating function is `Π_c (1 + x^len(c))`.
///
/// With a flip, each cycle must have even length and contributes
/// `2 · x^(len/2)`; odd cycles make the count zero.
fn count_fixed(cycles: &[usize], flip: bool, weight: Option<u32>) -> u128 {
    let n: usize = cycles.iter().sum();
    match weight {
        None => {
            if flip {
                if cycles.iter().any(|&l| l % 2 == 1) {
                    0
                } else {
                    1u128 << cycles.len()
                }
            } else {
                1u128 << cycles.len()
            }
        }
        Some(w) => {
            let w = w as usize;
            if w > n {
                return 0;
            }
            // Knapsack DP over cycles: dp[v] = number of ways to pick a
            // total weight v.
            let mut dp = vec![0u128; w + 1];
            dp[0] = 1;
            if flip {
                for &len in cycles {
                    if len % 2 == 1 {
                        return 0;
                    }
                    let half = len / 2;
                    // Every cycle contributes weight exactly len/2, with
                    // multiplicity 2 (two alternating colourings).
                    for v in (0..=w).rev() {
                        dp[v] = if v >= half { dp[v - half] * 2 } else { 0 };
                    }
                }
            } else {
                for &len in cycles {
                    for v in (len..=w).rev() {
                        dp[v] += dp[v - len];
                    }
                }
            }
            dp[w]
        }
    }
}

/// The dimension of the symmetry sector defined by `group` (and optionally
/// a fixed Hamming weight), computed by Burnside counting.
///
/// Returns the exact dimension. Panics if the character-weighted sum is not
/// (numerically) a non-negative integer — which cannot happen for a valid
/// 1-dim representation.
pub fn sector_dimension(group: &SymmetryGroup, weight: Option<u32>) -> u64 {
    let mut acc = Complex64::ZERO;
    for el in group.elements() {
        let cycles = el.permutation().cycle_lengths();
        let fixed = count_fixed(&cycles, el.has_flip(), weight);
        // χ(g)* weighting.
        acc += el.phase().conj().to_c64().scale(fixed as f64);
    }
    let dim = acc.re / group.order() as f64;
    assert!(
        acc.im.abs() < 1e-3 * (1.0 + acc.re.abs()),
        "sector dimension has imaginary part: {acc:?}"
    );
    assert!(dim > -0.5, "negative sector dimension: {dim}");
    let rounded = dim.round();
    assert!(
        (dim - rounded).abs() < 1e-3 * (1.0 + rounded.abs()),
        "sector dimension not integral: {dim}"
    );
    rounded as u64
}

/// Dimensions of the paper's Table 2: closed chains of `n` spins with
/// U(1) at half filling, momentum 0, reflection parity +1 and
/// spin-inversion parity +1.
pub fn table2_dimension(n: usize) -> u64 {
    let group = crate::lattice::chain_group(n, 0, Some(0), Some(0))
        .expect("chain group is always consistent for k = 0");
    sector_dimension(&group, Some(n as u32 / 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{Generator, SymmetryGroup};
    use crate::lattice;

    /// Brute-force oracle: enumerate all 2^n states, compute the projector
    /// trace directly.
    fn dimension_brute_force(group: &SymmetryGroup, weight: Option<u32>) -> u64 {
        let n = group.n_sites();
        let mut acc = Complex64::ZERO;
        for s in 0..(1u64 << n) {
            if let Some(w) = weight {
                if s.count_ones() != w {
                    continue;
                }
            }
            for el in group.elements() {
                if el.apply(s) == s {
                    acc += el.phase().conj().to_c64();
                }
            }
        }
        let dim = acc.re / group.order() as f64;
        assert!(acc.im.abs() < 1e-6);
        dim.round() as u64
    }

    #[test]
    fn u1_only_is_binomial() {
        let g = SymmetryGroup::trivial(10);
        assert_eq!(sector_dimension(&g, Some(4)), 210);
        assert_eq!(sector_dimension(&g, None), 1024);
        assert_eq!(sector_dimension(&g, Some(0)), 1);
        assert_eq!(sector_dimension(&g, Some(10)), 1);
    }

    #[test]
    fn translation_sectors_sum_to_total() {
        // Σ_k dim(k) over all momenta = C(n, w).
        let n = 10usize;
        let w = 5u32;
        let mut total = 0u64;
        for k in 0..n as i64 {
            let g =
                SymmetryGroup::generate(&[Generator::new(lattice::chain_translation(n), k)])
                    .unwrap();
            total += sector_dimension(&g, Some(w));
        }
        assert_eq!(total, 252);
    }

    #[test]
    fn matches_brute_force_small_systems() {
        for n in [4usize, 6, 8] {
            for k in [0i64, 1, n as i64 / 2] {
                let g = SymmetryGroup::generate(&[Generator::new(
                    lattice::chain_translation(n),
                    k,
                )])
                .unwrap();
                for w in [None, Some(n as u32 / 2), Some(1)] {
                    assert_eq!(
                        sector_dimension(&g, w),
                        dimension_brute_force(&g, w),
                        "n={n} k={k} w={w:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_full_chain_group() {
        for n in [4usize, 6, 8, 10] {
            for (k, r, z) in [(0i64, 0i64, 0i64), (0, 1, 0), (0, 0, 1), (n as i64 / 2, 0, 0)] {
                let g = lattice::chain_group(n, k, Some(r), Some(z)).unwrap();
                let w = Some(n as u32 / 2);
                assert_eq!(
                    sector_dimension(&g, w),
                    dimension_brute_force(&g, w),
                    "n={n} k={k} r={r} z={z}"
                );
            }
        }
    }

    #[test]
    fn spin_inversion_halves_roughly() {
        let n = 12usize;
        let even = lattice::chain_group(n, 0, None, Some(0)).unwrap();
        let odd = lattice::chain_group(n, 0, None, Some(1)).unwrap();
        let no_inv = lattice::chain_group(n, 0, None, None).unwrap();
        let w = Some(n as u32 / 2);
        assert_eq!(
            sector_dimension(&even, w) + sector_dimension(&odd, w),
            sector_dimension(&no_inv, w)
        );
    }

    #[test]
    fn paper_table_2_exact() {
        // Table 2 of the paper: matrix dimensions of closed spin-1/2
        // chains with U(1) + translation + reflection + spin inversion.
        assert_eq!(table2_dimension(40), 861_725_794);
        assert_eq!(table2_dimension(42), 3_204_236_779);
        assert_eq!(table2_dimension(44), 11_955_836_258);
        assert_eq!(table2_dimension(46), 44_748_176_653);
        assert_eq!(table2_dimension(48), 167_959_144_032);
    }

    #[test]
    fn flip_fixed_point_counting() {
        // No state is fixed by plain spin inversion in an odd-weight
        // sector; for n even and w = n/2 the count is 0 as well because
        // inversion maps weight w to n - w = w but has no fixed points
        // (every bit flips); however states fixed by (T∘flip) exist.
        assert_eq!(count_fixed(&[1, 1, 1, 1], true, Some(2)), 0);
        assert_eq!(count_fixed(&[4], true, Some(2)), 2);
        assert_eq!(count_fixed(&[2, 2], true, Some(2)), 4);
        assert_eq!(count_fixed(&[3, 1], true, Some(2)), 0);
        assert_eq!(count_fixed(&[4], false, None), 2);
        assert_eq!(count_fixed(&[1, 1], false, Some(1)), 2);
    }
}
