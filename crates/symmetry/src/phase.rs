//! Exact rational phases for group characters.
//!
//! Characters of abelian symmetry groups are roots of unity. Storing them
//! as `exp(-2πi · num/den)` with an exact reduced fraction keeps group
//! arithmetic exact: equality checks (needed during group closure and for
//! the "is this sector real?" decision) never suffer from floating-point
//! drift.

use ls_kernels::Complex64;

/// A phase `exp(-2πi · num / den)` with `0 <= num < den`, `gcd = 1`.
///
/// The *negative* sign in the exponent matches the physics convention for
/// momentum sectors: a translation `T` in sector `k` has character
/// `χ(T) = exp(-2πi k / N)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RationalPhase {
    num: u32,
    den: u32,
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl RationalPhase {
    pub const ZERO: Self = Self { num: 0, den: 1 };
    /// Phase of -1 (`exp(-iπ)`).
    pub const HALF: Self = Self { num: 1, den: 2 };

    /// `exp(-2πi · num / den)`. The fraction is reduced and taken mod 1.
    /// `den` must be non-zero.
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den != 0, "zero denominator");
        let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
        let den = den as u64;
        let num = num.rem_euclid(den as i64) as u64;
        let g = gcd(num as u32, den as u32).max(1);
        Self { num: (num / g as u64) as u32, den: (den / g as u64) as u32 }
    }

    /// Group multiplication of characters: phases add modulo 1.
    // Not `ops::Add`: this is the group operation on characters, and the
    // callers read better with an explicit name.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Self) -> Self {
        let den = (self.den as u64) * (other.den as u64);
        let num =
            (self.num as u64) * (other.den as u64) + (other.num as u64) * (self.den as u64);
        let num = num % den;
        let g = gcd64(num, den).max(1);
        assert!(den / g <= u32::MAX as u64, "phase denominator overflow");
        Self { num: (num / g) as u32, den: (den / g) as u32 }
    }

    /// The phase of `χ(g)^k`.
    pub fn mul_int(self, k: u64) -> Self {
        let den = self.den as u64;
        let num = ((self.num as u128 * k as u128) % den as u128) as u64;
        let g = gcd64(num, den).max(1);
        Self { num: (num / g) as u32, den: (den / g) as u32 }
    }

    /// The conjugate character `χ(g)* = χ(g⁻¹)`.
    pub fn conj(self) -> Self {
        if self.num == 0 {
            self
        } else {
            Self { num: self.den - self.num, den: self.den }
        }
    }

    /// Is the character real (i.e. ±1)?
    pub fn is_real(self) -> bool {
        self.num == 0 || (self.den == 2 && self.num == 1)
    }

    pub fn is_one(self) -> bool {
        self.num == 0
    }

    /// The character value as a complex number.
    pub fn to_c64(self) -> Complex64 {
        if self.num == 0 {
            return Complex64::ONE;
        }
        if self.den == 2 {
            return -Complex64::ONE;
        }
        if self.den == 4 {
            // Exact values for the quarter turns.
            return if self.num == 1 { -Complex64::I } else { Complex64::I };
        }
        Complex64::cis(-std::f64::consts::TAU * self.num as f64 / self.den as f64)
    }

    pub fn numerator(self) -> u32 {
        self.num
    }

    pub fn denominator(self) -> u32 {
        self.den
    }
}

fn gcd64(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd64(b, a % b)
    }
}

impl Default for RationalPhase {
    fn default() -> Self {
        Self::ZERO
    }
}

impl std::fmt::Display for RationalPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.num == 0 {
            write!(f, "1")
        } else if self.den == 2 {
            write!(f, "-1")
        } else {
            write!(f, "exp(-2πi·{}/{})", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_mod_one() {
        assert_eq!(RationalPhase::new(2, 4), RationalPhase::new(1, 2));
        assert_eq!(RationalPhase::new(5, 4), RationalPhase::new(1, 4));
        assert_eq!(RationalPhase::new(-1, 4), RationalPhase::new(3, 4));
        assert_eq!(RationalPhase::new(4, 4), RationalPhase::ZERO);
        assert_eq!(RationalPhase::new(3, -4), RationalPhase::new(1, 4));
    }

    #[test]
    fn addition_is_exact() {
        let third = RationalPhase::new(1, 3);
        assert_eq!(third.add(third).add(third), RationalPhase::ZERO);
        let k5 = RationalPhase::new(2, 5);
        assert_eq!(k5.mul_int(5), RationalPhase::ZERO);
        assert_eq!(k5.mul_int(0), RationalPhase::ZERO);
        assert_eq!(
            RationalPhase::new(1, 6).add(RationalPhase::new(1, 2)),
            RationalPhase::new(2, 3)
        );
    }

    #[test]
    fn conjugate() {
        assert_eq!(RationalPhase::ZERO.conj(), RationalPhase::ZERO);
        assert_eq!(RationalPhase::HALF.conj(), RationalPhase::HALF);
        assert_eq!(RationalPhase::new(1, 3).conj(), RationalPhase::new(2, 3));
        let p = RationalPhase::new(3, 7);
        assert_eq!(p.add(p.conj()), RationalPhase::ZERO);
    }

    #[test]
    fn realness() {
        assert!(RationalPhase::ZERO.is_real());
        assert!(RationalPhase::HALF.is_real());
        assert!(!RationalPhase::new(1, 3).is_real());
        assert!(!RationalPhase::new(1, 4).is_real());
    }

    #[test]
    fn complex_values() {
        assert!(RationalPhase::ZERO.to_c64().approx_eq(Complex64::ONE, 1e-15));
        assert!(RationalPhase::HALF.to_c64().approx_eq(-Complex64::ONE, 1e-15));
        assert!(RationalPhase::new(1, 4).to_c64().approx_eq(-Complex64::I, 1e-15));
        let z = RationalPhase::new(1, 8).to_c64();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(z.approx_eq(Complex64::new(s, -s), 1e-15));
    }

    #[test]
    fn phase_times_conjugate_is_unit_modulus() {
        for den in 1..=24i64 {
            for num in 0..den {
                let p = RationalPhase::new(num, den);
                let z = p.to_c64();
                assert!((z.norm_sqr() - 1.0).abs() < 1e-14);
                assert!(z.conj().approx_eq(p.conj().to_c64(), 1e-14));
            }
        }
    }
}
