//! Ready-made symmetry permutations and bond lists for common lattices.
//!
//! The paper's benchmarks use closed spin-1/2 chains (periodic boundary
//! conditions) with U(1), spin-inversion, translation and reflection
//! symmetries; the square-lattice helpers support the 2D examples.

use crate::group::{Generator, SymmetryGroup};
use crate::perm::SitePermutation;

/// Translation by one site on a ring: site `i -> (i+1) mod n`.
pub fn chain_translation(n: usize) -> SitePermutation {
    SitePermutation::from_usize(&(0..n).map(|i| (i + 1) % n).collect::<Vec<_>>()).unwrap()
}

/// Reflection of a ring about the "bond center" between sites `n-1` and 0:
/// site `i -> n-1-i`.
pub fn chain_reflection(n: usize) -> SitePermutation {
    SitePermutation::from_usize(&(0..n).map(|i| n - 1 - i).collect::<Vec<_>>()).unwrap()
}

/// Nearest-neighbour bonds of a closed chain (periodic boundary
/// conditions). For `n = 2` there is a single bond to avoid double
/// counting.
pub fn chain_bonds(n: usize) -> Vec<(usize, usize)> {
    assert!(n >= 2);
    if n == 2 {
        return vec![(0, 1)];
    }
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// The full symmetry group of the paper's benchmark chains: translation
/// (momentum `k`), reflection (parity `p` ∈ {0,1} meaning ±1) and spin
/// inversion (parity `z` ∈ {0,1}).
///
/// Reflection is only consistent with `k ∈ {0, n/2}`; pass `reflection =
/// None` for other momenta.
pub fn chain_group(
    n: usize,
    momentum: i64,
    reflection: Option<i64>,
    spin_inversion: Option<i64>,
) -> Result<SymmetryGroup, crate::group::SymmetryError> {
    let mut gens = vec![Generator::new(chain_translation(n), momentum)];
    if let Some(p) = reflection {
        gens.push(Generator::new(chain_reflection(n), p));
    }
    if let Some(z) = spin_inversion {
        gens.push(Generator::spin_inversion(n, z));
    }
    SymmetryGroup::generate(&gens)
}

/// Site index of `(x, y)` on an `lx × ly` grid, row-major.
#[inline]
pub fn square_site(lx: usize, x: usize, y: usize) -> usize {
    y * lx + x
}

/// Translation by one column: `(x, y) -> (x+1 mod lx, y)`.
pub fn square_translation_x(lx: usize, ly: usize) -> SitePermutation {
    let mut map = vec![0usize; lx * ly];
    for y in 0..ly {
        for x in 0..lx {
            map[square_site(lx, x, y)] = square_site(lx, (x + 1) % lx, y);
        }
    }
    SitePermutation::from_usize(&map).unwrap()
}

/// Translation by one row: `(x, y) -> (x, y+1 mod ly)`.
pub fn square_translation_y(lx: usize, ly: usize) -> SitePermutation {
    let mut map = vec![0usize; lx * ly];
    for y in 0..ly {
        for x in 0..lx {
            map[square_site(lx, x, y)] = square_site(lx, x, (y + 1) % ly);
        }
    }
    SitePermutation::from_usize(&map).unwrap()
}

/// Nearest-neighbour bonds of an `lx × ly` periodic square lattice.
/// For extent 2 in a direction, bonds in that direction are not doubled.
pub fn square_bonds(lx: usize, ly: usize) -> Vec<(usize, usize)> {
    assert!(lx >= 2 && ly >= 1);
    let mut bonds = Vec::new();
    for y in 0..ly {
        for x in 0..lx {
            let s = square_site(lx, x, y);
            // +x neighbour
            if lx > 2 || x + 1 < lx {
                bonds.push((s, square_site(lx, (x + 1) % lx, y)));
            }
            // +y neighbour
            if (ly > 2 || y + 1 < ly) && ly > 1 {
                bonds.push((s, square_site(lx, x, (y + 1) % ly)));
            }
        }
    }
    bonds
}

/// 90° rotation of an `l × l` periodic square lattice about the origin
/// plaquette: `(x, y) -> (y, l-1-x)`. Order 4; sectors 0..3 give the C4
/// angular-momentum quantum numbers (±i characters need `Complex64`
/// amplitudes).
pub fn square_rotation(l: usize) -> SitePermutation {
    let mut map = vec![0usize; l * l];
    for y in 0..l {
        for x in 0..l {
            map[square_site(l, x, y)] = square_site(l, y, l - 1 - x);
        }
    }
    SitePermutation::from_usize(&map).unwrap()
}

/// Nearest-neighbour bonds of a two-leg ladder with `l` rungs (open or
/// periodic along the legs). Site `2*i` is on leg 0, `2*i + 1` on leg 1.
pub fn ladder_bonds(l: usize, periodic: bool) -> Vec<(usize, usize)> {
    assert!(l >= 2);
    let mut bonds = Vec::new();
    for i in 0..l {
        // Rung.
        bonds.push((2 * i, 2 * i + 1));
        // Legs.
        if i + 1 < l {
            bonds.push((2 * i, 2 * i + 2));
            bonds.push((2 * i + 1, 2 * i + 3));
        } else if periodic && l > 2 {
            bonds.push((2 * i, 0));
            bonds.push((2 * i + 1, 1));
        }
    }
    bonds
}

/// Rung translation on a periodic two-leg ladder: `(leg, rung) ->
/// (leg, rung+1)`.
pub fn ladder_translation(l: usize) -> SitePermutation {
    let mut map = vec![0usize; 2 * l];
    for i in 0..l {
        for leg in 0..2 {
            map[2 * i + leg] = 2 * ((i + 1) % l) + leg;
        }
    }
    SitePermutation::from_usize(&map).unwrap()
}

/// Leg-swap (reflection across the ladder axis).
pub fn ladder_leg_swap(l: usize) -> SitePermutation {
    let mut map = vec![0usize; 2 * l];
    for i in 0..l {
        map[2 * i] = 2 * i + 1;
        map[2 * i + 1] = 2 * i;
    }
    SitePermutation::from_usize(&map).unwrap()
}

/// Nearest-neighbour bonds of a periodic triangular ladder (a chain with
/// next-nearest-neighbour bonds — the J1-J2 geometry at J1 = J2).
pub fn triangular_ladder_bonds(n: usize) -> Vec<(usize, usize)> {
    assert!(n >= 5);
    let mut bonds: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    bonds.extend((0..n).map(|i| (i, (i + 2) % n)));
    bonds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_helpers() {
        let t = chain_translation(5);
        assert_eq!(t.image(0), 1);
        assert_eq!(t.image(4), 0);
        assert_eq!(t.order(), 5);
        let r = chain_reflection(5);
        assert_eq!(r.image(0), 4);
        assert_eq!(r.order(), 2);
        assert_eq!(chain_bonds(4), vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(chain_bonds(2), vec![(0, 1)]);
    }

    #[test]
    fn chain_group_orders() {
        // N=8, k=0, R=+1, I=+1: dihedral(16) × inversion(2) = 32 elements.
        let g = chain_group(8, 0, Some(0), Some(0)).unwrap();
        assert_eq!(g.order(), 32);
        // Without reflection: 8 × 2 = 16.
        let g = chain_group(8, 0, None, Some(0)).unwrap();
        assert_eq!(g.order(), 16);
        // Momentum-only, complex sector:
        let g = chain_group(8, 1, None, None).unwrap();
        assert_eq!(g.order(), 8);
        assert!(!g.is_real());
    }

    #[test]
    fn square_translations_commute_and_have_right_order() {
        let (lx, ly) = (4, 3);
        let tx = square_translation_x(lx, ly);
        let ty = square_translation_y(lx, ly);
        assert_eq!(tx.order(), lx as u64);
        assert_eq!(ty.order(), ly as u64);
        assert_eq!(tx.then(&ty), ty.then(&tx));
    }

    #[test]
    fn square_bond_counts() {
        // 4x4 periodic: 2 bonds per site = 32 bonds.
        assert_eq!(square_bonds(4, 4).len(), 32);
        // 2xL: x-direction bonds not doubled: L*(1) + L = 2L for L>2.
        assert_eq!(square_bonds(2, 3).len(), 3 + 6);
        // 1D-like degenerate case: 4x1 is a 4-chain.
        assert_eq!(square_bonds(4, 1).len(), 4);
    }

    #[test]
    fn square_rotation_properties() {
        for l in [2usize, 3, 4] {
            let r = square_rotation(l);
            assert_eq!(r.order(), 4, "l={l}");
            // Rotation preserves the periodic bond set.
            let bonds = square_bonds(l, l);
            let set: std::collections::BTreeSet<(usize, usize)> =
                bonds.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
            let mapped: std::collections::BTreeSet<(usize, usize)> = bonds
                .iter()
                .map(|&(a, b)| {
                    let (x, y) = (r.image(a), r.image(b));
                    (x.min(y), x.max(y))
                })
                .collect();
            assert_eq!(mapped, set, "l={l}");
        }
        // C4 with character i is a valid (complex) 1-dim rep.
        let g = crate::group::SymmetryGroup::generate(&[crate::group::Generator::new(
            square_rotation(3),
            1,
        )])
        .unwrap();
        assert_eq!(g.order(), 4);
        assert!(!g.is_real());
    }

    #[test]
    fn ladder_helpers() {
        let l = 4;
        let bonds = ladder_bonds(l, true);
        // l rungs + 2l leg bonds (periodic).
        assert_eq!(bonds.len(), l + 2 * l);
        let open = ladder_bonds(l, false);
        assert_eq!(open.len(), l + 2 * (l - 1));
        let t = ladder_translation(l);
        assert_eq!(t.order(), l as u64);
        let swap = ladder_leg_swap(l);
        assert_eq!(swap.order(), 2);
        // Translation and leg swap commute.
        assert_eq!(t.then(&swap), swap.then(&t));
        // Both are symmetries wrt the bond set: permuted bonds == bonds.
        let bond_set: std::collections::BTreeSet<(usize, usize)> =
            bonds.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        for p in [&t, &swap] {
            let mapped: std::collections::BTreeSet<(usize, usize)> = bonds
                .iter()
                .map(|&(a, b)| {
                    let (x, y) = (p.image(a), p.image(b));
                    (x.min(y), x.max(y))
                })
                .collect();
            assert_eq!(mapped, bond_set);
        }
    }

    #[test]
    fn triangular_ladder() {
        let bonds = triangular_ladder_bonds(6);
        assert_eq!(bonds.len(), 12);
        // Translation invariance of the bond set.
        let t = chain_translation(6);
        let set: std::collections::BTreeSet<(usize, usize)> =
            bonds.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        let mapped: std::collections::BTreeSet<(usize, usize)> = bonds
            .iter()
            .map(|&(a, b)| {
                let (x, y) = (t.image(a), t.image(b));
                (x.min(y), x.max(y))
            })
            .collect();
        assert_eq!(mapped, set);
    }

    #[test]
    fn square_group_with_momenta() {
        let g = crate::group::SymmetryGroup::generate(&[
            Generator::new(square_translation_x(4, 4), 0),
            Generator::new(square_translation_y(4, 4), 0),
        ])
        .unwrap();
        assert_eq!(g.order(), 16);
    }
}
