//! Symmetry group construction from generators.
//!
//! A user declares generators (e.g. translation with momentum sector `k`,
//! reflection with parity ±1, spin inversion with parity ±1); we compute
//! the group closure and assign each element its character. The machinery
//! requires the characters to form a **one-dimensional representation**:
//! `χ(g·h) = χ(g)·χ(h)` for all elements. This is verified exactly (with
//! rational phases) during closure.
//!
//! Note that the group itself does *not* have to be abelian: the dihedral
//! group of a ring (translations + reflections) is non-abelian, yet for
//! momentum sectors `k ∈ {0, π}` it has perfectly good 1-dim characters —
//! and those are exactly the sectors the paper benchmarks. Declaring a
//! reflection together with a complex momentum sector (`k ∉ {0, π}`) is
//! caught as [`SymmetryError::InconsistentSectors`] because no consistent
//! character assignment exists.

use std::collections::HashMap;

use crate::element::GroupElement;
use crate::perm::SitePermutation;
use crate::phase::RationalPhase;

/// A declared symmetry generator.
#[derive(Clone, Debug)]
pub struct Generator {
    pub permutation: SitePermutation,
    /// Compose the permutation with global spin inversion?
    pub flip: bool,
    /// The sector: the character of this generator is
    /// `exp(-2πi · sector / order)` where `order` is the order of the
    /// generator's action. E.g. translation with momentum `k` on an
    /// `N`-site ring has `sector = k`, `order = N`; a reflection has
    /// `order = 2` and `sector ∈ {0, 1}` meaning parity `+1` / `-1`.
    pub sector: i64,
}

impl Generator {
    pub fn new(permutation: SitePermutation, sector: i64) -> Self {
        Self { permutation, flip: false, sector }
    }

    pub fn with_flip(permutation: SitePermutation, sector: i64) -> Self {
        Self { permutation, flip: true, sector }
    }

    /// Global spin inversion with parity `+1` (`sector = 0`) or `-1`
    /// (`sector = 1`).
    pub fn spin_inversion(n_sites: usize, sector: i64) -> Self {
        Self { permutation: SitePermutation::identity(n_sites), flip: true, sector }
    }
}

/// Errors from group construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymmetryError {
    /// The same group element is reachable with two different characters —
    /// the declared sectors do not define a 1-dimensional representation
    /// (e.g. a reflection combined with momentum `k ∉ {0, π}`).
    InconsistentSectors,
    /// Generators act on different numbers of sites.
    MixedSizes,
    /// No generators and no site count to infer the trivial group from.
    Empty,
}

impl std::fmt::Display for SymmetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InconsistentSectors => {
                write!(f, "declared symmetry sectors are mutually inconsistent")
            }
            Self::MixedSizes => write!(f, "generators act on different site counts"),
            Self::Empty => write!(f, "no generators given"),
        }
    }
}

impl std::error::Error for SymmetryError {}

/// The closure of a set of symmetry generators: a finite abelian group
/// whose elements carry exact characters.
#[derive(Clone, Debug)]
pub struct SymmetryGroup {
    n_sites: usize,
    elements: Vec<GroupElement>,
}

impl SymmetryGroup {
    /// The trivial group (identity only) on `n_sites` sites.
    pub fn trivial(n_sites: usize) -> Self {
        Self { n_sites, elements: vec![GroupElement::identity(n_sites)] }
    }

    /// Generates the group from the given generators.
    pub fn generate(generators: &[Generator]) -> Result<Self, SymmetryError> {
        let n_sites = match generators.first() {
            Some(g) => g.permutation.len(),
            None => return Err(SymmetryError::Empty),
        };
        let mut gens = Vec::with_capacity(generators.len());
        for g in generators {
            if g.permutation.len() != n_sites {
                return Err(SymmetryError::MixedSizes);
            }
            let order = GroupElement::new(g.permutation.clone(), g.flip, RationalPhase::ZERO)
                .action_order();
            let phase = RationalPhase::new(g.sector, order as i64);
            gens.push(GroupElement::new(g.permutation.clone(), g.flip, phase));
        }
        // BFS closure with character consistency checking. Reaching the
        // same *action* along two paths with different accumulated phases
        // means the declared sectors do not form a 1-dim representation.
        let identity = GroupElement::identity(n_sites);
        let mut known: HashMap<(Vec<u16>, bool), RationalPhase> = HashMap::new();
        known.insert(identity.action_key(), RationalPhase::ZERO);
        let mut elements = vec![identity];
        let mut frontier = 0usize;
        while frontier < elements.len() {
            let current = elements[frontier].clone();
            frontier += 1;
            for g in &gens {
                let next = current.then(g);
                let key = next.action_key();
                match known.get(&key) {
                    Some(&phase) => {
                        if phase != next.phase() {
                            return Err(SymmetryError::InconsistentSectors);
                        }
                    }
                    None => {
                        known.insert(key, next.phase());
                        elements.push(next);
                    }
                }
            }
        }
        // Identity must have character 1; that is true by construction, but
        // a generator of order m with sector not divisible by m composed to
        // the identity is caught by the consistency check above.
        elements.sort_by_key(|e| e.action_key());
        // Keep the identity first for readability.
        if let Some(pos) = elements.iter().position(|e| e.is_identity_action()) {
            elements.swap(0, pos);
        }
        Ok(Self { n_sites, elements })
    }

    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Number of group elements `|G|`.
    pub fn order(&self) -> usize {
        self.elements.len()
    }

    pub fn elements(&self) -> &[GroupElement] {
        &self.elements
    }

    /// Do all elements have real characters (±1)? Real sectors admit `f64`
    /// wavefunctions; complex sectors need `Complex64`.
    pub fn is_real(&self) -> bool {
        self.elements.iter().all(|e| e.phase().is_real())
    }

    /// Does any element include the global spin flip?
    pub fn has_spin_inversion(&self) -> bool {
        self.elements.iter().any(|e| e.has_flip())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice;

    #[test]
    fn trivial_group() {
        let g = SymmetryGroup::trivial(8);
        assert_eq!(g.order(), 1);
        assert!(g.is_real());
        assert_eq!(g.elements()[0].apply(0b1010), 0b1010);
    }

    #[test]
    fn cyclic_group_from_translation() {
        let n = 6;
        let t = lattice::chain_translation(n);
        let g = SymmetryGroup::generate(&[Generator::new(t, 0)]).unwrap();
        assert_eq!(g.order(), 6);
        assert!(g.is_real()); // k = 0 sector
                              // All elements are powers of the translation: applying each to a
                              // state gives all rotations.
        let s = 0b000011u64;
        let mut images: Vec<u64> = g.elements().iter().map(|e| e.apply(s)).collect();
        images.sort_unstable();
        let mut expect: Vec<u64> =
            (0..6).map(|k| ls_kernels::bits::rotate_low_bits(s, 6, k)).collect();
        expect.sort_unstable();
        assert_eq!(images, expect);
    }

    #[test]
    fn momentum_sector_characters() {
        let n = 4;
        let t = lattice::chain_translation(n);
        let g = SymmetryGroup::generate(&[Generator::new(t, 1)]).unwrap();
        assert_eq!(g.order(), 4);
        assert!(!g.is_real()); // k = 1 on a 4-ring: characters include ±i
                               // The characters must be exp(-2πi·j/4) for the j-th power.
        let mut phases: Vec<RationalPhase> = g.elements().iter().map(|e| e.phase()).collect();
        phases.sort_by_key(|p| (p.denominator(), p.numerator()));
        assert!(phases.contains(&RationalPhase::new(1, 4)));
        assert!(phases.contains(&RationalPhase::new(3, 4)));
    }

    #[test]
    fn full_chain_group_size() {
        // Translation × reflection × spin inversion on an 8-ring:
        // |G| = 8 · 2 · 2 = 32.
        let n = 8;
        let gens = [
            Generator::new(lattice::chain_translation(n), 0),
            Generator::new(lattice::chain_reflection(n), 0),
            Generator::spin_inversion(n, 0),
        ];
        let g = SymmetryGroup::generate(&gens).unwrap();
        assert_eq!(g.order(), 32);
        assert!(g.is_real());
        assert!(g.has_spin_inversion());
    }

    #[test]
    fn non_abelian_with_trivial_characters_is_fine() {
        // A transposition and a 3-cycle generate S3 (non-abelian). With the
        // trivial character this is a perfectly valid 1-dim representation.
        let a = SitePermutation::new(vec![1u16, 0, 2]).unwrap();
        let b = SitePermutation::new(vec![1u16, 2, 0]).unwrap();
        let g = SymmetryGroup::generate(&[Generator::new(a, 0), Generator::new(b, 0)]).unwrap();
        assert_eq!(g.order(), 6);
        assert!(g.is_real());
    }

    #[test]
    fn complex_momentum_with_reflection_rejected() {
        // Dihedral relation R T = T^{-1} R forces χ(T)² = 1; with k = 1 on
        // a 6-ring, χ(T) = exp(-iπ/3) is not ±1, so no consistent 1-dim
        // character exists and closure must fail.
        let n = 6;
        let t = lattice::chain_translation(n);
        let r = lattice::chain_reflection(n);
        let res = SymmetryGroup::generate(&[Generator::new(t, 1), Generator::new(r, 0)]);
        assert_eq!(res.unwrap_err(), SymmetryError::InconsistentSectors);
    }

    #[test]
    fn momentum_zero_and_pi_with_reflection_accepted() {
        // k ∈ {0, N/2}: the dihedral group has 1-dim irreps; closure gives
        // the full dihedral group of order 2N.
        let n = 6;
        for k in [0i64, 3] {
            for parity in [0i64, 1] {
                let t = lattice::chain_translation(n);
                let r = lattice::chain_reflection(n);
                let g =
                    SymmetryGroup::generate(&[Generator::new(t, k), Generator::new(r, parity)])
                        .unwrap();
                assert_eq!(g.order(), 2 * n, "k={k} parity={parity}");
                assert!(g.is_real());
            }
        }
    }

    #[test]
    fn inconsistent_sector_detected() {
        // The square of a reflection is the identity; declaring sector 1
        // for a generator of order 2 is fine (χ = -1), but declaring a
        // non-integer-compatible sector for the product of two related
        // generators must fail. Build T (order 4, k=2 => χ(T) = -1) and
        // T² (order 2, sector 0 => χ = +1): inconsistent, since χ(T)² = +1
        // = χ(T²) is actually consistent; use sector 1 for T² instead
        // (χ(T²) = -1 ≠ (+1)):
        let n = 4;
        let t = lattice::chain_translation(n);
        let t2 = t.then(&t);
        let res = SymmetryGroup::generate(&[
            Generator::new(t.clone(), 2),
            Generator::new(t2.clone(), 1),
        ]);
        assert_eq!(res.unwrap_err(), SymmetryError::InconsistentSectors);
        // And the consistent declaration succeeds:
        let ok =
            SymmetryGroup::generate(&[Generator::new(t, 2), Generator::new(t2, 0)]).unwrap();
        assert_eq!(ok.order(), 4);
    }

    #[test]
    fn characters_form_homomorphism() {
        let n = 12;
        let t = lattice::chain_translation(n);
        let g = SymmetryGroup::generate(&[Generator::new(t, 5)]).unwrap();
        // χ(a·b) = χ(a)χ(b) for all pairs.
        for a in g.elements() {
            for b in g.elements() {
                let ab = a.then(b);
                // Find ab in the group:
                let found = g
                    .elements()
                    .iter()
                    .find(|e| e.action_key() == ab.action_key())
                    .expect("closure");
                assert_eq!(found.phase(), a.phase().add(b.phase()));
            }
        }
    }
}
