//! Group elements: a site permutation, an optional global spin flip, and a
//! character.

use crate::perm::SitePermutation;
use crate::phase::RationalPhase;
use ls_kernels::bits::low_mask;
use ls_kernels::net::BenesNetwork;
use ls_kernels::Complex64;

/// One element of a symmetry group, with its compiled fast path.
///
/// The action on a basis state is: permute the bits, then (optionally) flip
/// all of them. Global spin inversion commutes with every site permutation,
/// so this normal form is closed under composition.
#[derive(Clone, Debug)]
pub struct GroupElement {
    perm: SitePermutation,
    flip: bool,
    phase: RationalPhase,
    net: BenesNetwork,
    flip_mask: u64,
}

impl GroupElement {
    pub fn new(perm: SitePermutation, flip: bool, phase: RationalPhase) -> Self {
        let net = perm.compile();
        let n = perm.len() as u32;
        let flip_mask = if flip { low_mask(n) } else { 0 };
        Self { perm, flip, phase, net, flip_mask }
    }

    pub fn identity(n_sites: usize) -> Self {
        Self::new(SitePermutation::identity(n_sites), false, RationalPhase::ZERO)
    }

    /// Applies the element to a basis state (Benes network + flip mask).
    #[inline]
    pub fn apply(&self, s: u64) -> u64 {
        self.net.apply(s) ^ self.flip_mask
    }

    /// Applies only the permutation part (no spin flip). Used when
    /// conjugating operator kernels, where the flip is handled separately.
    #[inline]
    pub fn apply_permutation(&self, s: u64) -> u64 {
        self.net.apply(s)
    }

    /// The character `χ(g)` of this element.
    #[inline]
    pub fn character(&self) -> Complex64 {
        self.phase.to_c64()
    }

    /// The exact phase of the character.
    #[inline]
    pub fn phase(&self) -> RationalPhase {
        self.phase
    }

    pub fn permutation(&self) -> &SitePermutation {
        &self.perm
    }

    pub fn has_flip(&self) -> bool {
        self.flip
    }

    pub fn is_identity_action(&self) -> bool {
        self.perm.is_identity() && !self.flip
    }

    pub fn n_sites(&self) -> usize {
        self.perm.len()
    }

    /// Group composition: apply `self`, then `other`. Characters multiply.
    pub fn then(&self, other: &Self) -> Self {
        assert_eq!(self.n_sites(), other.n_sites());
        Self::new(
            self.perm.then(&other.perm),
            self.flip ^ other.flip,
            self.phase.add(other.phase),
        )
    }

    /// The key identifying the element's *action* (ignoring the character),
    /// used for deduplication during group closure.
    pub fn action_key(&self) -> (Vec<u16>, bool) {
        (self.perm.as_slice().to_vec(), self.flip)
    }

    /// Order of the action (smallest k with action^k = identity).
    pub fn action_order(&self) -> u64 {
        let p = self.perm.order();
        if self.flip {
            // (π, flip)^k = (π^k, flip^k); need π^k = id and k even.
            if p.is_multiple_of(2) {
                p
            } else {
                2 * p
            }
        } else {
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn translation(n: usize) -> SitePermutation {
        SitePermutation::new((0..n as u16).map(|i| (i + 1) % n as u16).collect::<Vec<_>>())
            .unwrap()
    }

    #[test]
    fn apply_with_flip() {
        let g = GroupElement::new(SitePermutation::identity(4), true, RationalPhase::ZERO);
        assert_eq!(g.apply(0b0000), 0b1111);
        assert_eq!(g.apply(0b1010), 0b0101);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let t = GroupElement::new(translation(6), false, RationalPhase::new(1, 6));
        let i = GroupElement::new(SitePermutation::identity(6), true, RationalPhase::HALF);
        let ti = t.then(&i);
        for s in 0..64u64 {
            assert_eq!(ti.apply(s), i.apply(t.apply(s)));
        }
        // Characters multiplied: exp(-2πi/6)·exp(-iπ) = exp(-2πi·(1/6+1/2)).
        assert_eq!(ti.phase(), RationalPhase::new(2, 3));
    }

    #[test]
    fn orders() {
        let t = GroupElement::new(translation(6), false, RationalPhase::ZERO);
        assert_eq!(t.action_order(), 6);
        let f = GroupElement::new(SitePermutation::identity(6), true, RationalPhase::ZERO);
        assert_eq!(f.action_order(), 2);
        let tf = t.then(&f);
        assert_eq!(tf.action_order(), 6); // π order 6 (even), flip absorbed
        let t5 = GroupElement::new(translation(5), false, RationalPhase::ZERO);
        let t5f = t5.then(&GroupElement::new(
            SitePermutation::identity(5),
            true,
            RationalPhase::ZERO,
        ));
        assert_eq!(t5f.action_order(), 10); // odd-order π with flip doubles
    }

    #[test]
    fn flip_commutes_with_permutation() {
        let n = 8;
        let t = translation(n);
        let tf = GroupElement::new(t.clone(), true, RationalPhase::ZERO);
        for s in 0..256u64 {
            let a = tf.apply(s);
            let b = t.apply_naive(s ^ ls_kernels::bits::low_mask(n as u32));
            assert_eq!(a, b);
        }
    }
}
