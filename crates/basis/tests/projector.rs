//! The decisive correctness test of the symmetry-adapted machinery:
//! compare our symmetrized matrix elements against brute-force projector
//! algebra on the full 2^N space.
//!
//! For every representative r we build the dense vector
//! `|r̃⟩ = P|r⟩ / ||P|r⟩||` with `P = (1/|G|) Σ_g χ(g)* U_g`, then check
//! `⟨r̃_i| H |r̃_j⟩` entry-by-entry against `SymmetrizedOperator`.

use ls_basis::{SectorSpec, SpinBasis, SymmetrizedOperator};
use ls_expr::builders::{heisenberg, xxz};
use ls_expr::OperatorKernel;
use ls_kernels::Complex64;
use ls_symmetry::{lattice, Generator, SymmetryGroup};

fn dense_projector(group: &SymmetryGroup, n: u32) -> Vec<Vec<Complex64>> {
    let dim = 1usize << n;
    let mut p = vec![vec![Complex64::ZERO; dim]; dim];
    let w = 1.0 / group.order() as f64;
    for el in group.elements() {
        let chi_conj = el.phase().conj().to_c64();
        for s in 0..dim as u64 {
            let t = el.apply(s);
            // U_g[t][s] = 1; P += χ* U_g / |G|.
            p[t as usize][s as usize] += chi_conj.scale(w);
        }
    }
    p
}

fn matvec(m: &[Vec<Complex64>], x: &[Complex64]) -> Vec<Complex64> {
    m.iter().map(|row| row.iter().zip(x).map(|(a, b)| *a * *b).sum()).collect()
}

fn dot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    a.iter().zip(b).map(|(x, y)| x.conj() * *y).sum()
}

/// Checks our sector matrix against the dense projector construction.
fn check_sector(kernel: &OperatorKernel, sector: &SectorSpec) {
    let n = sector.n_sites();
    let basis = SpinBasis::build(sector.clone());
    assert_eq!(basis.dim() as u64, sector.dimension());
    if basis.dim() == 0 {
        return;
    }
    let op = SymmetrizedOperator::<Complex64>::new(kernel, sector).unwrap();
    let ours = op.to_dense(&basis);

    let h_full = kernel.to_dense();
    let p = dense_projector(sector.group(), n);
    let dim_full = 1usize << n;

    // Build normalized symmetric states.
    let mut psi: Vec<Vec<Complex64>> = Vec::with_capacity(basis.dim());
    for &r in basis.states() {
        let mut e = vec![Complex64::ZERO; dim_full];
        e[r as usize] = Complex64::ONE;
        let pr = matvec(&p, &e);
        let norm = dot(&pr, &pr).re.sqrt();
        assert!(norm > 1e-10, "representative {r:#b} has zero norm but is in the basis");
        psi.push(pr.iter().map(|z| z.scale(1.0 / norm)).collect());
    }

    // Entry-by-entry comparison.
    for (j, pj) in psi.iter().enumerate() {
        let hpj = matvec(&h_full, pj);
        for (i, pi) in psi.iter().enumerate() {
            let expect = dot(pi, &hpj);
            assert!(
                ours[i][j].approx_eq(expect, 1e-9),
                "H[{i}][{j}]: ours = {:?}, projector = {:?} (n={n})",
                ours[i][j],
                expect
            );
        }
    }
}

#[test]
fn heisenberg_chain_real_sectors() {
    for n in [4usize, 6, 8] {
        let kernel = heisenberg(&lattice::chain_bonds(n), 1.0).to_kernel(n as u32).unwrap();
        for (k, r, z) in [
            (0i64, Some(0i64), Some(0i64)),
            (0, Some(1), Some(0)),
            (0, Some(0), Some(1)),
            (n as i64 / 2, Some(0), Some(0)),
            (n as i64 / 2, Some(1), None),
        ] {
            let group = lattice::chain_group(n, k, r, z).unwrap();
            let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
            check_sector(&kernel, &sector);
        }
    }
}

#[test]
fn heisenberg_chain_complex_momentum_sectors() {
    for n in [4usize, 6, 8] {
        let kernel = heisenberg(&lattice::chain_bonds(n), 1.0).to_kernel(n as u32).unwrap();
        for k in 1..n as i64 {
            let group = lattice::chain_group(n, k, None, None).unwrap();
            let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
            check_sector(&kernel, &sector);
        }
    }
}

#[test]
fn momentum_sectors_without_u1() {
    // Drop the weight restriction entirely (e.g. for transverse-field
    // models): the machinery must hold on the full 2^n space too.
    let n = 6usize;
    let kernel = heisenberg(&lattice::chain_bonds(n), 1.0).to_kernel(n as u32).unwrap();
    for k in 0..n as i64 {
        let group = lattice::chain_group(n, k, None, None).unwrap();
        let sector = SectorSpec::new(n as u32, None, group).unwrap();
        check_sector(&kernel, &sector);
    }
}

#[test]
fn xxz_anisotropy() {
    let n = 6usize;
    let kernel = xxz(&lattice::chain_bonds(n), 1.0, 0.4).to_kernel(n as u32).unwrap();
    let group = lattice::chain_group(n, 3, None, None).unwrap();
    let sector = SectorSpec::new(n as u32, Some(3), group).unwrap();
    check_sector(&kernel, &sector);
}

#[test]
fn square_lattice_two_dimensional_translations() {
    let (lx, ly) = (2usize, 3usize);
    let n = lx * ly;
    let kernel = heisenberg(&lattice::square_bonds(lx, ly), 1.0).to_kernel(n as u32).unwrap();
    for (kx, ky) in [(0i64, 0i64), (1, 0), (0, 1), (1, 2)] {
        let group = SymmetryGroup::generate(&[
            Generator::new(lattice::square_translation_x(lx, ly), kx),
            Generator::new(lattice::square_translation_y(lx, ly), ky),
        ])
        .unwrap();
        let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
        check_sector(&kernel, &sector);
    }
}

#[test]
fn spectra_of_all_momentum_sectors_union_to_full_spectrum_dimension() {
    // Dimensions of all momentum sectors partition the U(1) sector.
    let n = 10usize;
    let mut total = 0u64;
    for k in 0..n as i64 {
        let group = lattice::chain_group(n, k, None, None).unwrap();
        let sector = SectorSpec::new(n as u32, Some(5), group).unwrap();
        let basis = SpinBasis::build(sector.clone());
        assert_eq!(basis.dim() as u64, sector.dimension());
        total += basis.dim() as u64;
    }
    assert_eq!(total, 252);
}
