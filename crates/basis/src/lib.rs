//! # ls-basis
//!
//! Symmetry-adapted basis construction for exact diagonalization.
//!
//! In the presence of symmetries, basis elements (bitstrings) and indices
//! (positions in the wavefunction vector) decouple — the central
//! complication the paper's Fig. 1 illustrates. This crate owns that
//! machinery:
//!
//! * [`SectorSpec`] — a symmetry sector: number of sites, site encoding
//!   (spin-1/2, spin-S, fermionic orbitals), optional U(1) charge (total
//!   code sum), per-species [`ChargeMask`]s, and a symmetry group with
//!   characters;
//! * [`rep::state_info`] — maps an arbitrary bitstring to its orbit
//!   representative, with the character phase and orbit size needed for
//!   matrix elements;
//! * [`SpinBasis`] — the list of representatives (with fast state→index
//!   ranking), built serially or with rayon;
//! * [`SymmetrizedOperator`] — an [`ls_expr::OperatorKernel`] projected
//!   into a sector: `getRow` over *representatives*, producing
//!   `(representative, amplitude)` pairs — exactly the operation the
//!   distributed matrix-vector product is built on.

pub mod basis;
pub mod enumerate;
pub mod rep;
pub mod sector;
pub mod symop;

pub use basis::{missing_state, MissingState, RankingKind, SpinBasis};
pub use rep::{state_info, state_info_batch, StateInfo, StateInfoBatch};
pub use sector::{BasisError, ChargeMask, SectorSpec};
pub use symop::{OffDiagBlock, SymmetrizedOperator};
