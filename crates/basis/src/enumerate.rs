//! Basis enumeration: filtering the 2^N bitstring range down to valid
//! representatives (the shared-memory analogue of the paper's Fig. 4).
//!
//! The iteration space is split into chunks; each chunk is filtered
//! independently on the persistent pool (chunks are claimed dynamically,
//! which matters here: representative density varies wildly across the
//! range, so statically pre-assigned chunks would load-imbalance), and
//! the chunk results are concatenated in range order, which keeps the
//! final list sorted — binary-search ranking depends on that. The result
//! is identical for any chunk count and any thread count.

use crate::rep::is_representative;
use crate::sector::{ChargeMask, SectorSpec};
use ls_kernels::bits::FixedWeightRange;
use ls_kernels::CodedRange;
use rayon::prelude::*;

/// A filtered chunk: representatives and their orbit sizes.
#[derive(Default)]
pub struct Chunk {
    pub states: Vec<u64>,
    pub orbit_sizes: Vec<u32>,
}

/// Filters one sub-range `[lo, hi)` of the raw iteration space.
pub fn filter_range(sector: &SectorSpec, lo: u64, hi: u64) -> Chunk {
    let n = sector.n_sites();
    let code_bits = sector.code_bits();
    let group = sector.group();
    let mut out = Chunk::default();
    let trivial = group.order() == 1;
    let space_end = if code_bits == 64 { u64::MAX } else { 1u64 << code_bits };
    let hi = hi.min(space_end);
    if sector.encoding().bits() > 1 {
        let enc = sector.encoding();
        // Dense multi-bit codes (power-of-two local dimension): the
        // odometer has nothing to skip, so a straight scan wins — and
        // with a U(1) constraint the SIMD field-sum filter processes
        // four words per round. (`hi == u64::MAX` is the unbounded
        // sentinel of a 64-bit code space; the filter treats `hi` as
        // exclusive, so that case stays on the odometer.)
        if enc.dense() && enc.bits() <= 2 && hi != u64::MAX {
            match sector.hamming_weight() {
                Some(sum) => ls_kernels::simd::filter_field_sum(
                    lo,
                    hi,
                    enc.bits(),
                    n,
                    sum,
                    &mut out.states,
                ),
                None => out.states.extend(lo..hi),
            }
            out.orbit_sizes.resize(out.states.len(), 1);
            return out;
        }
        // Sparse multi-bit site codes: the odometer iterator skips
        // invalid codes; lattice symmetry groups are trivial here by
        // construction, so every valid word is its own representative.
        for s in CodedRange::new(enc, n, sector.hamming_weight(), lo, hi) {
            out.states.push(s);
            out.orbit_sizes.push(1);
        }
        return out;
    }
    let charges = sector.charges();
    match sector.hamming_weight() {
        Some(w) => {
            if charges.is_empty() {
                // Hot spin-1/2 path, untouched.
                for s in FixedWeightRange::new(n, w, lo, hi) {
                    push_if_rep(group, trivial, s, &mut out);
                }
            } else {
                for s in FixedWeightRange::new(n, w, lo, hi) {
                    if satisfies_charges(charges, s) {
                        push_if_rep(group, trivial, s, &mut out);
                    }
                }
            }
        }
        None => {
            if charges.is_empty() {
                for s in lo..hi {
                    push_if_rep(group, trivial, s, &mut out);
                }
            } else {
                // Charge-sector scan (spinful fermions / Hubbard): the
                // SIMD filter tests four words per round against every
                // per-channel popcount constraint.
                let masks: Vec<(u64, u32)> =
                    charges.iter().map(|c| (c.mask, c.weight)).collect();
                let mut cand = Vec::new();
                ls_kernels::simd::filter_charge_masks(lo, hi, &masks, &mut cand);
                for s in cand {
                    push_if_rep(group, trivial, s, &mut out);
                }
            }
        }
    }
    out
}

#[inline]
fn satisfies_charges(charges: &[ChargeMask], s: u64) -> bool {
    charges.iter().all(|c| (s & c.mask).count_ones() == c.weight)
}

#[inline]
fn push_if_rep(group: &ls_symmetry::SymmetryGroup, trivial: bool, s: u64, out: &mut Chunk) {
    if trivial {
        out.states.push(s);
        out.orbit_sizes.push(1);
    } else if let Some(orbit) = is_representative(group, s) {
        out.states.push(s);
        out.orbit_sizes.push(orbit);
    }
}

/// Splits `[0, 2^n)` into `chunks` half-open ranges of equal width.
///
/// At `n == 64` the final exclusive bound, 2^64, is not representable in
/// a `u64`; it is emitted as the `u64::MAX` sentinel that
/// [`filter_range`] and `CodedRange` interpret as "unbounded" (a plain
/// `as u64` truncation would yield an empty last chunk). Interior bounds
/// never collide with the sentinel: for any realistic chunk count the
/// next-to-last boundary is at most `2^64 - 2`.
pub fn split_ranges(n: u32, chunks: usize) -> Vec<(u64, u64)> {
    assert!(chunks >= 1);
    let total: u128 = 1u128 << n;
    let clamp = |x: u128| if x >= 1u128 << 64 { u64::MAX } else { x as u64 };
    (0..chunks as u128)
        .map(|c| {
            let lo = clamp(c * total / chunks as u128);
            let hi = clamp((c + 1) * total / chunks as u128);
            (lo, hi)
        })
        .collect()
}

/// Serial enumeration of all valid representatives, in increasing order.
pub fn enumerate(sector: &SectorSpec) -> Chunk {
    filter_range(sector, 0, u64::MAX)
}

/// Parallel enumeration with rayon. `chunks` controls the work split; the
/// result is identical to [`enumerate`].
pub fn enumerate_par(sector: &SectorSpec, chunks: usize) -> Chunk {
    let ranges = split_ranges(sector.code_bits(), chunks.max(1));
    let parts: Vec<Chunk> =
        ranges.into_par_iter().map(|(lo, hi)| filter_range(sector, lo, hi)).collect();
    let total: usize = parts.iter().map(|c| c.states.len()).sum();
    let mut out =
        Chunk { states: Vec::with_capacity(total), orbit_sizes: Vec::with_capacity(total) };
    for p in parts {
        out.states.extend_from_slice(&p.states);
        out.orbit_sizes.extend_from_slice(&p.orbit_sizes);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls_symmetry::lattice;

    #[test]
    fn u1_only_matches_gosper() {
        let sector = SectorSpec::with_weight(12, 5).unwrap();
        let chunk = enumerate(&sector);
        let expect: Vec<u64> = FixedWeightRange::all(12, 5).collect();
        assert_eq!(chunk.states, expect);
        assert!(chunk.orbit_sizes.iter().all(|&o| o == 1));
    }

    #[test]
    fn counts_match_burnside_dimension() {
        for n in [8usize, 10, 12] {
            let g = lattice::chain_group(n, 0, Some(0), Some(0)).unwrap();
            let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), g).unwrap();
            let chunk = enumerate(&sector);
            assert_eq!(chunk.states.len() as u64, sector.dimension(), "n={n}");
            // Sorted and unique:
            for w in chunk.states.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let g = lattice::chain_group(10, 0, Some(0), Some(0)).unwrap();
        let sector = SectorSpec::new(10, Some(5), g).unwrap();
        let serial = enumerate(&sector);
        for chunks in [1usize, 2, 3, 7, 64, 1000] {
            let par = enumerate_par(&sector, chunks);
            assert_eq!(par.states, serial.states, "chunks={chunks}");
            assert_eq!(par.orbit_sizes, serial.orbit_sizes);
        }
    }

    #[test]
    fn complex_sector_enumeration() {
        // k=1 momentum sector on a 10-ring: dimension from Burnside.
        let g = lattice::chain_group(10, 1, None, None).unwrap();
        let sector = SectorSpec::new(10, Some(5), g).unwrap();
        let chunk = enumerate(&sector);
        assert_eq!(chunk.states.len() as u64, sector.dimension());
    }

    #[test]
    fn spinful_fermion_enumeration() {
        // 3 physical sites, 1 up + 2 down: C(3,1)·C(3,2) = 9 states.
        let sector = SectorSpec::spinful_fermions(3, 1, 2).unwrap();
        let chunk = enumerate(&sector);
        assert_eq!(chunk.states.len() as u64, sector.dimension());
        assert_eq!(chunk.states.len(), 9);
        for &s in &chunk.states {
            assert_eq!((s & 0b000111).count_ones(), 1);
            assert_eq!((s & 0b111000).count_ones(), 2);
        }
        for w in chunk.states.windows(2) {
            assert!(w[0] < w[1]);
        }
        for chunks in [1usize, 3, 16] {
            let par = enumerate_par(&sector, chunks);
            assert_eq!(par.states, chunk.states, "chunks={chunks}");
        }
    }

    #[test]
    fn spin_one_enumeration() {
        // 5 spin-1 sites, code sum 5 (Σ Sz = 0).
        let sector = SectorSpec::spin_s(5, 3, Some(5)).unwrap();
        let chunk = enumerate(&sector);
        assert_eq!(chunk.states.len() as u64, sector.dimension());
        let enc = sector.encoding();
        for &s in &chunk.states {
            assert!(enc.is_valid(s, 5));
            assert_eq!(enc.code_sum(s, 5), 5);
        }
        for w in chunk.states.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Parallel split happens over the 10-bit packed-code space.
        for chunks in [1usize, 2, 7, 100] {
            let par = enumerate_par(&sector, chunks);
            assert_eq!(par.states, chunk.states, "chunks={chunks}");
        }
    }

    #[test]
    fn split_ranges_partition() {
        let ranges = split_ranges(10, 7);
        assert_eq!(ranges.len(), 7);
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges[6].1, 1024);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].1, pair[1].0);
        }
    }
}
