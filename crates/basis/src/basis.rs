//! The shared-memory symmetry-adapted basis.

use crate::enumerate;
use crate::sector::{BasisError, SectorSpec};
use ls_kernels::combinadics::BinomialTable;
use ls_kernels::search::{PrefixIndex, TrieIndex, NOT_FOUND};
use ls_kernels::SiteEncoding;

/// A generated state that has no rank in the basis — raised when an
/// operator produces a representative outside the sector. This is always
/// a logic error (a Hermitian symmetry-commuting operator stays inside
/// the sector), so the hot ranking paths report it by panicking via
/// [`missing_state`]; the typed form exists so every layer (shared-memory
/// basis, batched matvec, distributed locales) formats the same
/// diagnostic, including the per-site configuration under the sector's
/// encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingState {
    pub rep: u64,
    pub encoding: SiteEncoding,
    pub n_sites: u32,
}

impl std::fmt::Display for MissingState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "generated state {:#018x} is not in the basis (sites [", self.rep)?;
        for (i, c) in self.encoding.decode(self.rep, self.n_sites).iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "])")
    }
}

impl std::error::Error for MissingState {}

/// The shared cold tail of every `index_of_present`-style lookup (basis
/// ranking, batched matvec gather, distributed locale resolution):
/// keeping the panic (and its formatting machinery) out of the inlined
/// hot path lets the ranking call compile down to the lookup plus one
/// predictable branch.
#[cold]
#[inline(never)]
pub fn missing_state(rep: u64, encoding: SiteEncoding, n_sites: u32) -> ! {
    panic!("{}", MissingState { rep, encoding, n_sites });
}

/// How `state -> index` ranking is performed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RankingKind {
    /// Binary search over the sorted representative list.
    BinarySearch,
    /// Prefix-bucket index + short binary search (default).
    PrefixBuckets,
    /// Closed-form combinadic ranking — only valid for U(1)-only sectors.
    Combinadic,
    /// Radix trie (Wallerberger & Held, the paper's Ref.\ 25): fixed
    /// number of dependent loads, no comparisons; built lazily on first
    /// selection.
    Trie,
}

/// A fully built symmetry sector basis: the sorted list of representatives
/// with orbit sizes and a ranking structure.
#[derive(Clone, Debug)]
pub struct SpinBasis {
    sector: SectorSpec,
    states: Vec<u64>,
    orbit_sizes: Vec<u32>,
    prefix: PrefixIndex,
    combinadic: Option<BinomialTable>,
    trie: Option<TrieIndex>,
    ranking: RankingKind,
}

impl SpinBasis {
    /// Builds the basis by parallel enumeration.
    pub fn build(sector: SectorSpec) -> Self {
        let chunks = (rayon::current_num_threads() * 8).max(1);
        Self::build_with_chunks(sector, chunks)
    }

    /// Builds with an explicit chunk count (useful for tests and benches).
    pub fn build_with_chunks(sector: SectorSpec, chunks: usize) -> Self {
        let chunk = enumerate::enumerate_par(&sector, chunks);
        Self::from_parts(sector, chunk.states, chunk.orbit_sizes)
    }

    /// Assembles a basis from already-enumerated parts (used by the
    /// distributed layer after gathering).
    pub fn from_parts(sector: SectorSpec, states: Vec<u64>, orbit_sizes: Vec<u32>) -> Self {
        debug_assert_eq!(states.len(), orbit_sizes.len());
        debug_assert!(states.windows(2).all(|w| w[0] < w[1]), "states must be sorted");
        let prefix = PrefixIndex::auto(&states, sector.code_bits());
        // Combinadic ranking is exact only when every state is its own
        // orbit (trivial group), the weight is fixed, and the full
        // fixed-weight range is present — one-bit site codes with no
        // extra per-species charges.
        let combinadic = if sector.group().order() == 1
            && sector.hamming_weight().is_some()
            && sector.encoding().bits() == 1
            && sector.charges().is_empty()
        {
            Some(BinomialTable::new())
        } else {
            None
        };
        let ranking = if combinadic.is_some() {
            RankingKind::Combinadic
        } else {
            RankingKind::PrefixBuckets
        };
        Self { sector, states, orbit_sizes, prefix, combinadic, trie: None, ranking }
    }

    pub fn sector(&self) -> &SectorSpec {
        &self.sector
    }

    pub fn dim(&self) -> usize {
        self.states.len()
    }

    pub fn states(&self) -> &[u64] {
        &self.states
    }

    pub fn orbit_sizes(&self) -> &[u32] {
        &self.orbit_sizes
    }

    /// The state stored at `index`.
    #[inline]
    pub fn state(&self, index: usize) -> u64 {
        self.states[index]
    }

    /// Ranking: the index of a representative, or `None` if it is not in
    /// the basis. This is the paper's `stateToIndex`.
    #[inline]
    pub fn index_of(&self, rep: u64) -> Option<usize> {
        match self.ranking {
            RankingKind::Combinadic => {
                let t = self.combinadic.as_ref().unwrap();
                let idx = t.rank(rep) as usize;
                // Combinadic rank is only meaningful for the right weight.
                if rep.count_ones() == self.sector.hamming_weight().unwrap()
                    && idx < self.states.len()
                {
                    debug_assert_eq!(self.states[idx], rep);
                    Some(idx)
                } else {
                    None
                }
            }
            RankingKind::PrefixBuckets => self.prefix.lookup(&self.states, rep),
            RankingKind::BinarySearch => self.states.binary_search(&rep).ok(),
            RankingKind::Trie => {
                self.trie.as_ref().expect("trie built on selection").lookup(rep)
            }
        }
    }

    /// Ranking for hot loops where the state is guaranteed to be a member
    /// of the basis (every valid representative a Hermitian,
    /// symmetry-commuting operator generates is). Skips the `Option`
    /// plumbing and keeps panic formatting in a cold out-of-line function;
    /// membership is still asserted in debug builds.
    #[inline]
    pub fn index_of_present(&self, rep: u64) -> usize {
        debug_assert!(self.index_of(rep).is_some(), "state {rep:#018x} missing from the basis");
        match self.index_of(rep) {
            Some(i) => i,
            None => missing_state(rep, self.sector.encoding(), self.sector.n_sites()),
        }
    }

    /// Batched ranking: resolves a whole block of representatives into
    /// `out`, one `u32` rank (or [`NOT_FOUND`]) per input. Dispatches to
    /// the interleaved bulk kernels of the active [`RankingKind`] — this
    /// is the `stateToIndex` the batched matvec strategies use.
    pub fn index_of_batch(&self, reps: &[u64], out: &mut Vec<u32>) {
        match self.ranking {
            RankingKind::Combinadic => {
                let t = self.combinadic.as_ref().unwrap();
                let weight = self.sector.hamming_weight().unwrap();
                let len = self.states.len();
                out.clear();
                out.extend(reps.iter().map(|&rep| {
                    let idx = t.rank(rep) as usize;
                    if rep.count_ones() == weight && idx < len {
                        debug_assert_eq!(self.states[idx], rep);
                        idx as u32
                    } else {
                        NOT_FOUND
                    }
                }));
            }
            RankingKind::PrefixBuckets => self.prefix.lookup_batch(&self.states, reps, out),
            RankingKind::BinarySearch => {
                out.clear();
                out.extend(reps.iter().map(|&rep| {
                    self.states.binary_search(&rep).map_or(NOT_FOUND, |i| i as u32)
                }));
            }
            RankingKind::Trie => {
                self.trie.as_ref().expect("trie built on selection").lookup_batch(reps, out)
            }
        }
    }

    /// Forces a particular ranking implementation (ablation benches).
    ///
    /// A request the sector cannot honour (combinadic ranking off the
    /// U(1)-only spin-1/2 case) falls back to [`RankingKind::PrefixBuckets`]
    /// instead of failing; use [`Self::try_set_ranking`] to observe the
    /// rejection.
    pub fn set_ranking(&mut self, kind: RankingKind) {
        let _ = self.try_set_ranking(kind);
    }

    /// Like [`Self::set_ranking`], but reports whether the request could
    /// be honoured. On `Err` the basis is left on the always-valid
    /// [`RankingKind::PrefixBuckets`] ranking.
    pub fn try_set_ranking(&mut self, kind: RankingKind) -> Result<RankingKind, BasisError> {
        if kind == RankingKind::Combinadic && self.combinadic.is_none() {
            self.ranking = RankingKind::PrefixBuckets;
            return Err(BasisError::RankingUnavailable { requested: "combinadic" });
        }
        if kind == RankingKind::Trie && self.trie.is_none() {
            self.trie = Some(TrieIndex::build(&self.states, self.sector.code_bits(), 8));
        }
        self.ranking = kind;
        Ok(kind)
    }

    pub fn ranking(&self) -> RankingKind {
        self.ranking
    }

    /// The combinadic ranking table, present exactly when the sector is
    /// U(1)-only (trivial group, fixed weight) — the precondition of the
    /// differential-ranking fast path in the batched matvec.
    pub fn combinadic_table(&self) -> Option<&BinomialTable> {
        self.combinadic.as_ref()
    }

    /// Memory estimate in bytes (states + orbit sizes + index).
    pub fn memory_bytes(&self) -> usize {
        self.states.len() * 8 + self.orbit_sizes.len() * 4 + self.prefix.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls_symmetry::lattice;

    fn chain_basis(n: usize) -> SpinBasis {
        let g = lattice::chain_group(n, 0, Some(0), Some(0)).unwrap();
        SpinBasis::build(SectorSpec::new(n as u32, Some(n as u32 / 2), g).unwrap())
    }

    #[test]
    fn build_and_rank() {
        let basis = chain_basis(12);
        assert_eq!(basis.dim() as u64, basis.sector().dimension());
        for (i, &s) in basis.states().iter().enumerate() {
            assert_eq!(basis.index_of(s), Some(i));
        }
        // A non-representative must not be found.
        assert_eq!(basis.index_of(0b1000_0000_0001), None);
    }

    #[test]
    fn ranking_kinds_agree() {
        let mut basis = chain_basis(10);
        let probes: Vec<u64> = (0..1024).collect();
        let with_prefix: Vec<Option<usize>> =
            probes.iter().map(|&p| basis.index_of(p)).collect();
        basis.set_ranking(RankingKind::BinarySearch);
        let with_bs: Vec<Option<usize>> = probes.iter().map(|&p| basis.index_of(p)).collect();
        assert_eq!(with_prefix, with_bs);
        basis.set_ranking(RankingKind::Trie);
        let with_trie: Vec<Option<usize>> = probes.iter().map(|&p| basis.index_of(p)).collect();
        assert_eq!(with_prefix, with_trie);
    }

    #[test]
    fn batch_ranking_matches_scalar_for_all_kinds() {
        let mut basis = chain_basis(10);
        let mut probes: Vec<u64> = basis.states().to_vec();
        probes.extend(0..1024u64); // mostly absent
        probes.push(u64::MAX);
        let mut out = Vec::new();
        for kind in [RankingKind::PrefixBuckets, RankingKind::BinarySearch, RankingKind::Trie] {
            basis.set_ranking(kind);
            basis.index_of_batch(&probes, &mut out);
            assert_eq!(out.len(), probes.len());
            for (&p, &o) in probes.iter().zip(&out) {
                let expect = basis.index_of(p).map_or(NOT_FOUND, |i| i as u32);
                assert_eq!(o, expect, "{kind:?} probe={p:#b}");
            }
        }
        // Combinadic kind on a U(1)-only basis.
        let basis = SpinBasis::build(SectorSpec::with_weight(12, 6).unwrap());
        assert_eq!(basis.ranking(), RankingKind::Combinadic);
        basis.index_of_batch(&probes, &mut out);
        for (&p, &o) in probes.iter().zip(&out) {
            assert_eq!(o, basis.index_of(p).map_or(NOT_FOUND, |i| i as u32));
        }
    }

    #[test]
    fn index_of_present_agrees() {
        let basis = chain_basis(10);
        for (i, &s) in basis.states().iter().enumerate() {
            assert_eq!(basis.index_of_present(s), i);
        }
    }

    #[test]
    #[should_panic(expected = "is not in the basis")]
    #[cfg(not(debug_assertions))]
    fn index_of_present_panics_on_missing() {
        let basis = chain_basis(10);
        basis.index_of_present(0b10); // not a representative
    }

    #[test]
    fn combinadic_fast_path() {
        let basis = SpinBasis::build(SectorSpec::with_weight(14, 7).unwrap());
        assert_eq!(basis.ranking(), RankingKind::Combinadic);
        assert_eq!(basis.dim(), 3432);
        for (i, &s) in basis.states().iter().enumerate() {
            assert_eq!(basis.index_of(s), Some(i));
        }
        // Wrong-weight probes return None.
        assert_eq!(basis.index_of(0b111), None);
        assert_eq!(basis.index_of(0), None);
    }

    #[test]
    fn combinadic_falls_back_outside_u1_only() {
        // Symmetry-adapted sector: combinadic is impossible; the request
        // reports the typed error and the basis stays usable on
        // PrefixBuckets.
        let mut basis = chain_basis(8);
        assert_eq!(
            basis.try_set_ranking(RankingKind::Combinadic),
            Err(BasisError::RankingUnavailable { requested: "combinadic" })
        );
        assert_eq!(basis.ranking(), RankingKind::PrefixBuckets);
        for (i, &s) in basis.states().iter().enumerate() {
            assert_eq!(basis.index_of(s), Some(i));
        }
        // The infallible setter silently takes the same fallback.
        basis.set_ranking(RankingKind::Combinadic);
        assert_eq!(basis.ranking(), RankingKind::PrefixBuckets);
        // Charge-constrained fermionic sector: states are not the full
        // fixed-weight range, so combinadic must also be refused.
        let mut fermi = SpinBasis::build(SectorSpec::spinful_fermions(3, 1, 1).unwrap());
        assert_eq!(fermi.ranking(), RankingKind::PrefixBuckets);
        assert!(fermi.try_set_ranking(RankingKind::Combinadic).is_err());
    }

    #[test]
    fn fermion_and_spin_one_bases_rank() {
        let basis = SpinBasis::build(SectorSpec::spinful_fermions(4, 2, 2).unwrap());
        assert_eq!(basis.dim() as u64, basis.sector().dimension());
        for (i, &s) in basis.states().iter().enumerate() {
            assert_eq!(basis.index_of(s), Some(i));
            assert_eq!(basis.index_of_present(s), i);
        }
        // Wrong species count is absent even though total weight matches.
        assert_eq!(basis.index_of(0b0000_1111), None);

        let mut spin1 = SpinBasis::build(SectorSpec::spin_s(5, 3, Some(5)).unwrap());
        assert_eq!(spin1.dim() as u64, spin1.sector().dimension());
        let probes: Vec<u64> = (0..1 << 10).collect();
        let expect: Vec<Option<usize>> = probes.iter().map(|&p| spin1.index_of(p)).collect();
        for kind in [RankingKind::BinarySearch, RankingKind::Trie] {
            spin1.set_ranking(kind);
            let got: Vec<Option<usize>> = probes.iter().map(|&p| spin1.index_of(p)).collect();
            assert_eq!(got, expect, "{kind:?}");
        }
    }

    #[test]
    fn missing_state_reports_site_configuration() {
        let e = MissingState { rep: 0b10_01_00, encoding: SiteEncoding::spin(3), n_sites: 3 };
        let msg = e.to_string();
        assert!(msg.contains("is not in the basis"), "{msg}");
        assert!(msg.contains("[0 1 2]"), "{msg}");
    }
}
