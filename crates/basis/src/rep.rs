//! Orbit representatives, characters and norms.
//!
//! The symmetry-adapted basis vector built on representative `r` is
//! `|r̃⟩ = P|r⟩ / √n_r` with `P = (1/|G|) Σ_g χ(g)* U_g` and
//! `n_r = ⟨r|P|r⟩ = |Stab(r)| / |G|` — non-zero exactly when the character
//! is trivial on the stabilizer. Everything a matrix-vector product needs
//! about an arbitrary bitstring `s` is collected in one `O(|G|)` pass by
//! [`state_info`].

use ls_kernels::Complex64;
use ls_symmetry::SymmetryGroup;

/// The result of resolving a raw bitstring against a symmetry group.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct StateInfo {
    /// The orbit minimum (the canonical representative).
    pub representative: u64,
    /// `χ(g)*` for (any) `g` mapping `s` to the representative. When the
    /// orbit carries zero norm this value is meaningless.
    pub phase: Complex64,
    /// Orbit size `|G| / |Stab(s)|`.
    pub orbit_size: u32,
    /// `false` when the character is non-trivial on the stabilizer, i.e.
    /// the orbit does not support a state in this sector (`P|s⟩ = 0`).
    pub valid: bool,
}

/// Resolves `s`: finds its representative, the phase connecting `s` to it,
/// the orbit size and the norm-validity flag, in one pass over the group.
pub fn state_info(group: &SymmetryGroup, s: u64) -> StateInfo {
    let mut rep = s;
    let mut phase_exact = ls_symmetry::RationalPhase::ZERO;
    let mut stab = 0u32;
    let mut valid = true;
    for el in group.elements() {
        let t = el.apply(s);
        if t < rep {
            rep = t;
            phase_exact = el.phase();
        } else if t == s {
            stab += 1;
            if !el.phase().is_one() {
                valid = false;
            }
        }
    }
    // A state is always stabilized at least by the identity.
    debug_assert!(stab >= 1);
    StateInfo {
        representative: rep,
        // χ(g)^* of the minimizing element.
        phase: phase_exact.conj().to_c64(),
        orbit_size: group.order() as u32 / stab,
        valid,
    }
}

/// SoA results of resolving a *block* of raw bitstrings against a
/// symmetry group — the batched `state_info` of the matvec engine.
///
/// All vectors are aligned with the input block and are caller-owned
/// scratch: [`state_info_batch`] clears and refills them, so a reused
/// `StateInfoBatch` performs no allocations in steady state.
#[derive(Clone, Debug, Default)]
pub struct StateInfoBatch {
    /// Orbit minima (canonical representatives).
    pub representatives: Vec<u64>,
    /// `χ(g)*` of (any) element mapping the input to its representative;
    /// meaningless where `valid` is `false`.
    pub phases: Vec<Complex64>,
    /// Orbit sizes `|G| / |Stab(s)|`.
    pub orbit_sizes: Vec<u32>,
    /// `false` where the character is non-trivial on the stabilizer.
    pub valid: Vec<bool>,
    /// Stabilizer counts (internal accumulator for `orbit_sizes`).
    stab: Vec<u32>,
}

impl StateInfoBatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resolved states in the current block.
    pub fn len(&self) -> usize {
        self.representatives.len()
    }

    pub fn is_empty(&self) -> bool {
        self.representatives.is_empty()
    }
}

/// Resolves a block of states in one pass over the group, with the
/// group-element-outer / state-inner loop order: each element's compiled
/// permutation network is loaded once and applied to the whole block, so
/// the per-state work is a handful of register operations and the block's
/// independent updates can overlap in the pipeline. Produces exactly the
/// same values as [`state_info`] applied elementwise (same element
/// iteration order, same minimization), bit for bit.
pub fn state_info_batch(group: &SymmetryGroup, states: &[u64], out: &mut StateInfoBatch) {
    let n = states.len();
    out.representatives.clear();
    out.representatives.extend_from_slice(states);
    out.phases.clear();
    out.phases.resize(n, ls_symmetry::RationalPhase::ZERO.conj().to_c64());
    out.stab.clear();
    out.stab.resize(n, 0);
    out.valid.clear();
    out.valid.resize(n, true);
    for el in group.elements() {
        // Hoisted per-element constants: the scalar path re-derives the
        // character of the minimizing element per call; here the (exact →
        // f64) conversion happens once per element per block.
        let phase_conj = el.phase().conj().to_c64();
        let stabilizer_ok = el.phase().is_one();
        for (i, &s) in states.iter().enumerate() {
            let t = el.apply(s);
            if t < out.representatives[i] {
                out.representatives[i] = t;
                out.phases[i] = phase_conj;
            } else if t == s {
                out.stab[i] += 1;
                out.valid[i] = out.valid[i] && stabilizer_ok;
            }
        }
    }
    let order = group.order() as u32;
    out.orbit_sizes.clear();
    out.orbit_sizes.extend(out.stab.iter().map(|&stab| {
        // Every state is stabilized at least by the identity.
        debug_assert!(stab >= 1);
        order / stab
    }));
}

/// Is `s` a valid representative? Returns its orbit size if so.
///
/// `s` must be the minimum of its orbit *and* carry non-zero norm. This is
/// the filter applied during basis enumeration (paper Sec. 5.2).
pub fn is_representative(group: &SymmetryGroup, s: u64) -> Option<u32> {
    let mut stab = 0u32;
    for el in group.elements() {
        let t = el.apply(s);
        if t < s {
            return None;
        }
        if t == s {
            if !el.phase().is_one() {
                return None;
            }
            stab += 1;
        }
    }
    Some(group.order() as u32 / stab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls_symmetry::lattice;
    use ls_symmetry::{Generator, SymmetryGroup};

    fn translation_group(n: usize, k: i64) -> SymmetryGroup {
        SymmetryGroup::generate(&[Generator::new(lattice::chain_translation(n), k)]).unwrap()
    }

    #[test]
    fn trivial_group_everything_is_rep() {
        let g = SymmetryGroup::trivial(6);
        for s in 0..64u64 {
            let info = state_info(&g, s);
            assert_eq!(info.representative, s);
            assert_eq!(info.orbit_size, 1);
            assert!(info.valid);
            assert_eq!(is_representative(&g, s), Some(1));
        }
    }

    #[test]
    fn translation_orbits() {
        let g = translation_group(4, 0);
        // Orbit of 0b0001: {0001, 0010, 0100, 1000}; rep = 0b0001.
        let info = state_info(&g, 0b0100);
        assert_eq!(info.representative, 0b0001);
        assert_eq!(info.orbit_size, 4);
        assert!(info.valid);
        assert_eq!(is_representative(&g, 0b0001), Some(4));
        assert_eq!(is_representative(&g, 0b0010), None);
        // 0b0101 has a 2-element orbit (stabilized by T²).
        let info = state_info(&g, 0b0101);
        assert_eq!(info.representative, 0b0101);
        assert_eq!(info.orbit_size, 2);
        assert!(info.valid);
    }

    #[test]
    fn zero_norm_orbit_detected() {
        // k = 1 on a 4-ring: 0b0101 is stabilized by T² with character
        // χ(T²) = exp(-2πi·2/4) = -1 ≠ 1 → zero norm.
        let g = translation_group(4, 1);
        let info = state_info(&g, 0b0101);
        assert!(!info.valid);
        assert_eq!(is_representative(&g, 0b0101), None);
        // While 0b0011 (orbit size 4) is fine in any sector.
        assert_eq!(is_representative(&g, 0b0011), Some(4));
    }

    #[test]
    fn phase_of_mapping_element() {
        // k = 1 on a 4-ring. T|s⟩: site i -> i+1, i.e. rotate left.
        // s = 0b0010 is T applied to 0b0001, so the element mapping s back
        // to the rep 0b0001 is T³ (rotating left 3 more times), with
        // χ(T³) = exp(-2πi·3/4); the stored phase is its conjugate.
        let g = translation_group(4, 1);
        let info = state_info(&g, 0b0010);
        assert_eq!(info.representative, 0b0001);
        let expect = Complex64::cis(-std::f64::consts::TAU * 3.0 / 4.0).conj();
        assert!(info.phase.approx_eq(expect, 1e-12), "{:?}", info.phase);
    }

    #[test]
    fn representative_counts_match_burnside() {
        // # of valid representatives must equal the Burnside dimension.
        for n in [6usize, 8, 10] {
            for k in [0i64, 1, n as i64 / 2] {
                let g = translation_group(n, k);
                let dim = ls_symmetry::count::sector_dimension(&g, None);
                let count = (0..(1u64 << n))
                    .filter(|&s| is_representative(&g, s).is_some())
                    .count() as u64;
                assert_eq!(count, dim, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn representative_counts_with_inversion_and_reflection() {
        for n in [6usize, 8] {
            let g = lattice::chain_group(n, 0, Some(0), Some(0)).unwrap();
            let w = n as u32 / 2;
            let dim = ls_symmetry::count::sector_dimension(&g, Some(w));
            let count = (0..(1u64 << n))
                .filter(|&s| s.count_ones() == w)
                .filter(|&s| is_representative(&g, s).is_some())
                .count() as u64;
            assert_eq!(count, dim, "n={n}");
        }
    }

    #[test]
    fn batch_matches_scalar_state_info() {
        let groups = [
            SymmetryGroup::trivial(8),
            translation_group(8, 0),
            translation_group(8, 3),
            lattice::chain_group(8, 4, Some(1), Some(0)).unwrap(),
        ];
        for g in &groups {
            // All 256 states in blocks of 37 (misaligned on purpose).
            let states: Vec<u64> = (0..(1u64 << 8)).collect();
            let mut batch = StateInfoBatch::new();
            for chunk in states.chunks(37) {
                state_info_batch(g, chunk, &mut batch);
                assert_eq!(batch.len(), chunk.len());
                for (i, &s) in chunk.iter().enumerate() {
                    let scalar = state_info(g, s);
                    assert_eq!(batch.representatives[i], scalar.representative);
                    assert_eq!(batch.orbit_sizes[i], scalar.orbit_size);
                    assert_eq!(batch.valid[i], scalar.valid);
                    if scalar.valid {
                        // Bit-exact, not approximate: same element order,
                        // same conversion.
                        assert_eq!(batch.phases[i], scalar.phase, "state {s:#b}");
                    }
                }
            }
            // Scratch reuse across blocks of different sizes.
            state_info_batch(g, &[], &mut batch);
            assert!(batch.is_empty());
        }
    }

    #[test]
    fn info_consistent_with_is_representative() {
        let g = lattice::chain_group(8, 4, None, None).unwrap();
        for s in 0..(1u64 << 8) {
            let info = state_info(&g, s);
            let rep_check = is_representative(&g, s);
            if s == info.representative && info.valid {
                assert_eq!(rep_check, Some(info.orbit_size));
            } else {
                assert_eq!(rep_check, None);
            }
        }
    }
}
