//! Symmetry sector specification.

use ls_kernels::combinadics::BinomialTable;
use ls_kernels::SiteEncoding;
use ls_symmetry::SymmetryGroup;

/// Errors constructing sectors, bases and symmetrized operators.
#[derive(Debug, Clone, PartialEq)]
pub enum BasisError {
    /// The symmetry group acts on a different number of sites.
    GroupSizeMismatch { group_sites: usize, n_sites: u32 },
    /// Hamming weight (code sum) exceeds its maximum for the encoding.
    WeightOutOfRange { weight: u32, n_sites: u32 },
    /// Spin-inversion symmetry maps weight `w` to `n - w`; combining it
    /// with U(1) requires half filling.
    InversionNeedsHalfFilling,
    /// The sector has complex characters but a real scalar type was
    /// requested.
    ComplexSector,
    /// The operator does not conserve the Hamming weight (total code sum)
    /// but the sector fixes it.
    BreaksU1,
    /// The operator does not commute with a group element.
    BreaksSymmetry,
    /// The operator's coefficients are complex but a real scalar type was
    /// requested.
    ComplexOperator,
    /// The operator acts on a different number of sites than the sector.
    OperatorSizeMismatch { kernel_sites: u32, n_sites: u32 },
    /// Non-trivial lattice symmetry groups are only supported for
    /// spin-1/2 sectors (permutation masks act on one-bit site codes).
    UnsupportedSymmetry,
    /// The operator was compiled for a different site encoding than the
    /// sector's.
    EncodingMismatch,
    /// The operator does not conserve the particle number within a charge
    /// mask the sector fixes (e.g. mixes spin-up and spin-down fermions).
    BreaksCharge { mask: u64 },
    /// A charge constraint is malformed: weight above the mask's
    /// popcount, mask outside the site range, or masks overlapping.
    ChargeOutOfRange { mask: u64, weight: u32 },
    /// The requested ranking structure is not available for this sector
    /// (combinadic ranking needs a U(1)-only spin-1/2 sector).
    RankingUnavailable { requested: &'static str },
}

impl std::fmt::Display for BasisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::GroupSizeMismatch { group_sites, n_sites } => {
                write!(f, "symmetry group acts on {group_sites} sites, sector has {n_sites}")
            }
            Self::WeightOutOfRange { weight, n_sites } => {
                write!(f, "hamming weight {weight} out of range for {n_sites} sites")
            }
            Self::InversionNeedsHalfFilling => {
                write!(f, "spin inversion with U(1) requires weight = n/2")
            }
            Self::ComplexSector => {
                write!(f, "sector has complex characters; use Complex64 amplitudes")
            }
            Self::BreaksU1 => {
                write!(f, "operator does not conserve the Hamming weight")
            }
            Self::BreaksSymmetry => {
                write!(f, "operator does not commute with the symmetry group")
            }
            Self::ComplexOperator => {
                write!(f, "operator has complex coefficients; use Complex64")
            }
            Self::OperatorSizeMismatch { kernel_sites, n_sites } => {
                write!(f, "operator on {kernel_sites} sites, sector on {n_sites}")
            }
            Self::UnsupportedSymmetry => {
                write!(f, "non-trivial symmetry groups require spin-1/2 sites")
            }
            Self::EncodingMismatch => {
                write!(f, "operator and sector use different site encodings")
            }
            Self::BreaksCharge { mask } => {
                write!(f, "operator does not conserve the particle number on mask {mask:#x}")
            }
            Self::ChargeOutOfRange { mask, weight } => {
                write!(f, "charge weight {weight} invalid for mask {mask:#x}")
            }
            Self::RankingUnavailable { requested } => {
                write!(f, "{requested} ranking requires a U(1)-only spin-1/2 sector")
            }
        }
    }
}

impl std::error::Error for BasisError {}

/// A conserved per-species particle number: the bit count of basis words
/// within `mask` is fixed to `weight`. Used by spinful-fermion sectors to
/// pin `N↑` and `N↓` separately (masks are disjoint orbital sets).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChargeMask {
    pub mask: u64,
    pub weight: u32,
}

/// A symmetry sector: the subspace the Hamiltonian is restricted to.
#[derive(Clone, Debug)]
pub struct SectorSpec {
    n_sites: u32,
    encoding: SiteEncoding,
    hamming_weight: Option<u32>,
    charges: Vec<ChargeMask>,
    group: SymmetryGroup,
}

impl SectorSpec {
    /// Creates a spin-1/2 sector. `group` must act on `n_sites` sites; a
    /// fixed Hamming weight combined with spin-inversion symmetry
    /// requires half filling (inversion maps weight `w` to `n − w`).
    pub fn new(
        n_sites: u32,
        hamming_weight: Option<u32>,
        group: SymmetryGroup,
    ) -> Result<Self, BasisError> {
        if group.n_sites() != n_sites as usize {
            return Err(BasisError::GroupSizeMismatch {
                group_sites: group.n_sites(),
                n_sites,
            });
        }
        if let Some(w) = hamming_weight {
            if w > n_sites {
                return Err(BasisError::WeightOutOfRange { weight: w, n_sites });
            }
            if group.has_spin_inversion() && 2 * w != n_sites {
                return Err(BasisError::InversionNeedsHalfFilling);
            }
        }
        Ok(Self {
            n_sites,
            encoding: SiteEncoding::spin_half(),
            hamming_weight,
            charges: Vec::new(),
            group,
        })
    }

    /// A sector with no symmetries at all (full 2^n space).
    pub fn full(n_sites: u32) -> Self {
        Self::new(n_sites, None, SymmetryGroup::trivial(n_sites as usize))
            .expect("trivial full sector is always valid")
    }

    /// U(1)-only sector (fixed Hamming weight, no lattice symmetries).
    pub fn with_weight(n_sites: u32, weight: u32) -> Result<Self, BasisError> {
        Self::new(n_sites, Some(weight), SymmetryGroup::trivial(n_sites as usize))
    }

    /// A sector over an arbitrary site encoding with an optional fixed
    /// total code sum (the generalized U(1) charge: `Σ(Sz_i + S)` for
    /// spin-S, particle number for fermions). Lattice symmetry groups are
    /// not yet supported off the spin-1/2 encoding, so the group is
    /// trivial.
    pub fn with_encoding(
        n_sites: u32,
        encoding: SiteEncoding,
        code_sum: Option<u32>,
    ) -> Result<Self, BasisError> {
        if encoding.is_spin_half() {
            let mut s = Self::new(n_sites, code_sum, SymmetryGroup::trivial(n_sites as usize))?;
            s.encoding = encoding; // preserves a fermion() statistics flag
            return Ok(s);
        }
        if n_sites > encoding.max_sites() {
            return Err(BasisError::WeightOutOfRange { weight: 0, n_sites });
        }
        if let Some(w) = code_sum {
            if w > n_sites * (encoding.local_dim() - 1) {
                return Err(BasisError::WeightOutOfRange { weight: w, n_sites });
            }
        }
        Ok(Self {
            n_sites,
            encoding,
            hamming_weight: code_sum,
            charges: Vec::new(),
            group: SymmetryGroup::trivial(n_sites as usize),
        })
    }

    /// A spin-S sector (`local_dim = 2S + 1`) with an optional fixed
    /// total code sum (`Σ(Sz_i + S)`; half filling of the code sum is the
    /// `Σ Sz = 0` sector).
    pub fn spin_s(
        n_sites: u32,
        local_dim: u32,
        code_sum: Option<u32>,
    ) -> Result<Self, BasisError> {
        Self::with_encoding(n_sites, SiteEncoding::spin(local_dim), code_sum)
    }

    /// A spinful-fermion sector on `n_phys` physical sites with fixed
    /// `n_up` and `n_down` particle numbers.
    ///
    /// Orbital layout matches [`ls_expr::builders::hubbard_1d`]: spin-up
    /// orbitals occupy code positions `0..n_phys`, spin-down orbitals
    /// `n_phys..2·n_phys`. The total particle number becomes the sector's
    /// Hamming weight and each species count a [`ChargeMask`].
    pub fn spinful_fermions(n_phys: u32, n_up: u32, n_down: u32) -> Result<Self, BasisError> {
        let n_sites = 2 * n_phys;
        if n_sites > 64 {
            return Err(BasisError::WeightOutOfRange { weight: 0, n_sites });
        }
        let up_mask = ls_kernels::bits::low_mask(n_phys);
        let down_mask = up_mask << n_phys;
        if n_up > n_phys {
            return Err(BasisError::ChargeOutOfRange { mask: up_mask, weight: n_up });
        }
        if n_down > n_phys {
            return Err(BasisError::ChargeOutOfRange { mask: down_mask, weight: n_down });
        }
        Ok(Self {
            n_sites,
            encoding: SiteEncoding::fermion(),
            hamming_weight: Some(n_up + n_down),
            charges: vec![
                ChargeMask { mask: up_mask, weight: n_up },
                ChargeMask { mask: down_mask, weight: n_down },
            ],
            group: SymmetryGroup::trivial(n_sites as usize),
        })
    }

    pub fn n_sites(&self) -> u32 {
        self.n_sites
    }

    /// The site encoding of basis words (spin-1/2 unless the sector was
    /// built with [`Self::with_encoding`] or a fermion constructor).
    pub fn encoding(&self) -> SiteEncoding {
        self.encoding
    }

    /// Total bits of a packed basis word: `n_sites · encoding.bits()`.
    pub fn code_bits(&self) -> u32 {
        self.encoding.code_bits(self.n_sites)
    }

    /// The fixed total code sum, if any (Hamming weight for one-bit
    /// encodings).
    pub fn hamming_weight(&self) -> Option<u32> {
        self.hamming_weight
    }

    /// Additional per-species conserved charges (disjoint masks with
    /// fixed bit counts), if any.
    pub fn charges(&self) -> &[ChargeMask] {
        &self.charges
    }

    pub fn group(&self) -> &SymmetryGroup {
        &self.group
    }

    /// Can amplitudes be real? (All characters ±1.)
    pub fn is_real(&self) -> bool {
        self.group.is_real()
    }

    /// Exact sector dimension without enumeration: Burnside counting for
    /// symmetric spin-1/2 sectors, binomial products for charge sectors,
    /// a polynomial-coefficient recurrence for multi-bit codes.
    pub fn dimension(&self) -> u64 {
        if !self.charges.is_empty() {
            let table = BinomialTable::new();
            let mut dim = 1u64;
            let mut covered = 0u64;
            let mut used = 0u32;
            for c in &self.charges {
                dim *= table.choose(c.mask.count_ones(), c.weight);
                covered |= c.mask;
                used += c.weight;
            }
            let free = self.n_sites - covered.count_ones();
            match self.hamming_weight {
                Some(w) => dim * table.choose(free, w.saturating_sub(used)),
                None => dim << free,
            }
        } else if self.encoding.bits() > 1 {
            let d = self.encoding.local_dim() as usize;
            match self.hamming_weight {
                // Coefficient of x^w in (1 + x + … + x^{d−1})^n.
                Some(w) => {
                    let w = w as usize;
                    let mut coeffs = vec![0u64; w + 1];
                    coeffs[0] = 1;
                    for _ in 0..self.n_sites {
                        let mut next = vec![0u64; w + 1];
                        for (k, &c) in coeffs.iter().enumerate() {
                            if c == 0 {
                                continue;
                            }
                            for add in 0..d.min(w - k + 1) {
                                next[k + add] += c;
                            }
                        }
                        coeffs = next;
                    }
                    coeffs[w]
                }
                None => (d as u64).pow(self.n_sites),
            }
        } else {
            ls_symmetry::count::sector_dimension(&self.group, self.hamming_weight)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls_symmetry::lattice;

    #[test]
    fn construction_checks() {
        let g = SymmetryGroup::trivial(8);
        assert!(SectorSpec::new(8, Some(4), g.clone()).is_ok());
        assert!(matches!(
            SectorSpec::new(10, Some(4), g.clone()),
            Err(BasisError::GroupSizeMismatch { .. })
        ));
        assert!(matches!(
            SectorSpec::new(8, Some(9), g),
            Err(BasisError::WeightOutOfRange { .. })
        ));
        // Spin inversion off half filling:
        let gi = lattice::chain_group(8, 0, None, Some(0)).unwrap();
        assert!(matches!(
            SectorSpec::new(8, Some(3), gi.clone()),
            Err(BasisError::InversionNeedsHalfFilling)
        ));
        assert!(SectorSpec::new(8, Some(4), gi).is_ok());
    }

    #[test]
    fn dimension_shortcuts() {
        assert_eq!(SectorSpec::full(10).dimension(), 1024);
        assert_eq!(SectorSpec::with_weight(10, 5).unwrap().dimension(), 252);
        let g = lattice::chain_group(12, 0, Some(0), Some(0)).unwrap();
        let s = SectorSpec::new(12, Some(6), g).unwrap();
        // Cross-checked against brute-force enumeration elsewhere; here
        // just pin the value (12-site chain ground sector).
        assert_eq!(s.dimension(), 35);
        assert!(s.is_real());
    }

    #[test]
    fn default_sectors_are_spin_half() {
        let s = SectorSpec::with_weight(10, 5).unwrap();
        assert!(s.encoding().is_spin_half());
        assert_eq!(s.code_bits(), 10);
        assert!(s.charges().is_empty());
    }

    #[test]
    fn spinful_fermion_sector() {
        // 4 physical sites, 2 up + 2 down at half filling.
        let s = SectorSpec::spinful_fermions(4, 2, 2).unwrap();
        assert_eq!(s.n_sites(), 8);
        assert!(s.encoding().is_fermionic());
        assert_eq!(s.hamming_weight(), Some(4));
        assert_eq!(s.charges().len(), 2);
        assert_eq!(s.charges()[0], ChargeMask { mask: 0b0000_1111, weight: 2 });
        assert_eq!(s.charges()[1], ChargeMask { mask: 0b1111_0000, weight: 2 });
        // dim = C(4,2)² = 36.
        assert_eq!(s.dimension(), 36);
        assert!(matches!(
            SectorSpec::spinful_fermions(4, 5, 2),
            Err(BasisError::ChargeOutOfRange { .. })
        ));
    }

    #[test]
    fn spin_one_sector_dimension() {
        // 4 spin-1 sites, code sum 4 (Σ Sz = 0): coefficient of x^4 in
        // (1+x+x²)^4 = 19.
        let s = SectorSpec::spin_s(4, 3, Some(4)).unwrap();
        assert_eq!(s.code_bits(), 8);
        assert_eq!(s.dimension(), 19);
        // Unconstrained: 3^4.
        assert_eq!(SectorSpec::spin_s(4, 3, None).unwrap().dimension(), 81);
        assert!(matches!(
            SectorSpec::spin_s(4, 3, Some(9)),
            Err(BasisError::WeightOutOfRange { .. })
        ));
    }
}
