//! Symmetry sector specification.

use ls_symmetry::SymmetryGroup;

/// Errors constructing sectors, bases and symmetrized operators.
#[derive(Debug, Clone, PartialEq)]
pub enum BasisError {
    /// The symmetry group acts on a different number of sites.
    GroupSizeMismatch { group_sites: usize, n_sites: u32 },
    /// Hamming weight exceeds the number of sites.
    WeightOutOfRange { weight: u32, n_sites: u32 },
    /// Spin-inversion symmetry maps weight `w` to `n - w`; combining it
    /// with U(1) requires half filling.
    InversionNeedsHalfFilling,
    /// The sector has complex characters but a real scalar type was
    /// requested.
    ComplexSector,
    /// The operator does not conserve the Hamming weight but the sector
    /// fixes it.
    BreaksU1,
    /// The operator does not commute with a group element.
    BreaksSymmetry,
    /// The operator's coefficients are complex but a real scalar type was
    /// requested.
    ComplexOperator,
    /// The operator acts on a different number of sites than the sector.
    OperatorSizeMismatch { kernel_sites: u32, n_sites: u32 },
}

impl std::fmt::Display for BasisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::GroupSizeMismatch { group_sites, n_sites } => {
                write!(f, "symmetry group acts on {group_sites} sites, sector has {n_sites}")
            }
            Self::WeightOutOfRange { weight, n_sites } => {
                write!(f, "hamming weight {weight} out of range for {n_sites} sites")
            }
            Self::InversionNeedsHalfFilling => {
                write!(f, "spin inversion with U(1) requires weight = n/2")
            }
            Self::ComplexSector => {
                write!(f, "sector has complex characters; use Complex64 amplitudes")
            }
            Self::BreaksU1 => {
                write!(f, "operator does not conserve the Hamming weight")
            }
            Self::BreaksSymmetry => {
                write!(f, "operator does not commute with the symmetry group")
            }
            Self::ComplexOperator => {
                write!(f, "operator has complex coefficients; use Complex64")
            }
            Self::OperatorSizeMismatch { kernel_sites, n_sites } => {
                write!(f, "operator on {kernel_sites} sites, sector on {n_sites}")
            }
        }
    }
}

impl std::error::Error for BasisError {}

/// A symmetry sector: the subspace the Hamiltonian is restricted to.
#[derive(Clone, Debug)]
pub struct SectorSpec {
    n_sites: u32,
    hamming_weight: Option<u32>,
    group: SymmetryGroup,
}

impl SectorSpec {
    /// Creates a sector. `group` must act on `n_sites` sites; a fixed
    /// Hamming weight combined with spin-inversion symmetry requires half
    /// filling (inversion maps weight `w` to `n − w`).
    pub fn new(
        n_sites: u32,
        hamming_weight: Option<u32>,
        group: SymmetryGroup,
    ) -> Result<Self, BasisError> {
        if group.n_sites() != n_sites as usize {
            return Err(BasisError::GroupSizeMismatch {
                group_sites: group.n_sites(),
                n_sites,
            });
        }
        if let Some(w) = hamming_weight {
            if w > n_sites {
                return Err(BasisError::WeightOutOfRange { weight: w, n_sites });
            }
            if group.has_spin_inversion() && 2 * w != n_sites {
                return Err(BasisError::InversionNeedsHalfFilling);
            }
        }
        Ok(Self { n_sites, hamming_weight, group })
    }

    /// A sector with no symmetries at all (full 2^n space).
    pub fn full(n_sites: u32) -> Self {
        Self { n_sites, hamming_weight: None, group: SymmetryGroup::trivial(n_sites as usize) }
    }

    /// U(1)-only sector (fixed Hamming weight, no lattice symmetries).
    pub fn with_weight(n_sites: u32, weight: u32) -> Result<Self, BasisError> {
        Self::new(n_sites, Some(weight), SymmetryGroup::trivial(n_sites as usize))
    }

    pub fn n_sites(&self) -> u32 {
        self.n_sites
    }

    pub fn hamming_weight(&self) -> Option<u32> {
        self.hamming_weight
    }

    pub fn group(&self) -> &SymmetryGroup {
        &self.group
    }

    /// Can amplitudes be real? (All characters ±1.)
    pub fn is_real(&self) -> bool {
        self.group.is_real()
    }

    /// Exact sector dimension by Burnside counting — no enumeration.
    pub fn dimension(&self) -> u64 {
        ls_symmetry::count::sector_dimension(&self.group, self.hamming_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls_symmetry::lattice;

    #[test]
    fn construction_checks() {
        let g = SymmetryGroup::trivial(8);
        assert!(SectorSpec::new(8, Some(4), g.clone()).is_ok());
        assert!(matches!(
            SectorSpec::new(10, Some(4), g.clone()),
            Err(BasisError::GroupSizeMismatch { .. })
        ));
        assert!(matches!(
            SectorSpec::new(8, Some(9), g),
            Err(BasisError::WeightOutOfRange { .. })
        ));
        // Spin inversion off half filling:
        let gi = lattice::chain_group(8, 0, None, Some(0)).unwrap();
        assert!(matches!(
            SectorSpec::new(8, Some(3), gi.clone()),
            Err(BasisError::InversionNeedsHalfFilling)
        ));
        assert!(SectorSpec::new(8, Some(4), gi).is_ok());
    }

    #[test]
    fn dimension_shortcuts() {
        assert_eq!(SectorSpec::full(10).dimension(), 1024);
        assert_eq!(SectorSpec::with_weight(10, 5).unwrap().dimension(), 252);
        let g = lattice::chain_group(12, 0, Some(0), Some(0)).unwrap();
        let s = SectorSpec::new(12, Some(6), g).unwrap();
        // Cross-checked against brute-force enumeration elsewhere; here
        // just pin the value (12-site chain ground sector).
        assert_eq!(s.dimension(), 35);
        assert!(s.is_real());
    }
}
