//! Operators projected into a symmetry sector.
//!
//! A [`SymmetrizedOperator`] is the executable form of `H` restricted to a
//! sector basis of representatives. Applying a scattering channel to a
//! representative `|α⟩` yields a raw state `|s⟩`; resolving `s` against the
//! group gives its representative `|β⟩`, the connecting phase `χ(g)*` and
//! the orbit sizes, and the matrix element follows:
//!
//! ```text
//! ⟨β̃|H|α̃⟩ += c · χ(g)* · sqrt(orbit(α) / orbit(β))
//! ```
//!
//! (zero-norm orbits are skipped). This is the paper's `getRow` for
//! symmetry-adapted bases, and the inner kernel of every matrix-vector
//! product in this workspace.

use crate::rep::state_info;
use crate::sector::{BasisError, SectorSpec};
use ls_expr::OperatorKernel;
use ls_kernels::{Complex64, Scalar};
use ls_symmetry::SymmetryGroup;

#[derive(Copy, Clone, Debug)]
struct SymChannel<S> {
    coeff: S,
    sites: u64,
    in_pat: u64,
    flip: u64,
}

/// An operator kernel bound to a symmetry sector, with scalar type `S`.
#[derive(Clone, Debug)]
pub struct SymmetrizedOperator<S: Scalar> {
    group: SymmetryGroup,
    diag: Vec<(S, u64)>,
    channels: Vec<SymChannel<S>>,
    hermitian: bool,
    trivial_group: bool,
}

impl<S: Scalar> SymmetrizedOperator<S> {
    /// Binds `kernel` to `sector`, verifying that the operator
    /// 1. acts on the sector's sites,
    /// 2. conserves the Hamming weight if the sector fixes one,
    /// 3. commutes with every symmetry-group element (checked exactly via
    ///    kernel conjugation),
    /// 4. fits the scalar type (`f64` demands a real sector and real
    ///    coefficients).
    pub fn new(kernel: &OperatorKernel, sector: &SectorSpec) -> Result<Self, BasisError> {
        if kernel.n_sites() != sector.n_sites() {
            return Err(BasisError::OperatorSizeMismatch {
                kernel_sites: kernel.n_sites(),
                n_sites: sector.n_sites(),
            });
        }
        if sector.hamming_weight().is_some() && !kernel.conserves_hamming_weight() {
            return Err(BasisError::BreaksU1);
        }
        for el in sector.group().elements() {
            let conj = kernel.conjugated_by(|s| el.apply_permutation(s), el.has_flip());
            if !conj.approx_eq(kernel, 1e-10) {
                return Err(BasisError::BreaksSymmetry);
            }
        }
        if S::N_REALS == 1 && !sector.is_real() {
            return Err(BasisError::ComplexSector);
        }
        let mut diag = Vec::with_capacity(kernel.diagonal_monomials().len());
        for m in kernel.diagonal_monomials() {
            let c = S::from_c64(m.coeff).ok_or(BasisError::ComplexOperator)?;
            diag.push((c, m.zmask));
        }
        let mut channels = Vec::with_capacity(kernel.channels().len());
        for ch in kernel.channels() {
            let c = S::from_c64(ch.coeff).ok_or(BasisError::ComplexOperator)?;
            channels.push(SymChannel {
                coeff: c,
                sites: ch.sites,
                in_pat: ch.in_pat,
                flip: ch.flip_mask(),
            });
        }
        Ok(Self {
            group: sector.group().clone(),
            diag,
            channels,
            hermitian: kernel.is_hermitian(1e-10),
            trivial_group: sector.group().order() == 1,
        })
    }

    pub fn group(&self) -> &SymmetryGroup {
        &self.group
    }

    pub fn is_hermitian(&self) -> bool {
        self.hermitian
    }

    /// Upper bound on off-diagonal entries per row.
    pub fn max_row_entries(&self) -> usize {
        self.channels.len()
    }

    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    pub fn n_diag_monomials(&self) -> usize {
        self.diag.len()
    }

    /// Diagonal matrix element `⟨α̃|H|α̃⟩_diag` (the Walsh part; channel
    /// contributions that happen to map `α` back to itself are produced by
    /// [`Self::apply_off_diag`]).
    #[inline]
    pub fn diagonal(&self, alpha: u64) -> S {
        let mut acc = S::ZERO;
        for &(c, zmask) in &self.diag {
            let downs = (!alpha & zmask).count_ones();
            if downs & 1 == 0 {
                acc += c;
            } else {
                acc -= c;
            }
        }
        acc
    }

    /// Pushes `(β_rep, ⟨β̃|H|α̃⟩)` for every off-diagonal channel firing on
    /// the representative `alpha` (with orbit size `alpha_orbit`). Entries
    /// with `β_rep == alpha` are legitimate (orbit self-connections) and
    /// must be accumulated by the caller like any other entry.
    #[inline]
    pub fn apply_off_diag(&self, alpha: u64, alpha_orbit: u32, out: &mut Vec<(u64, S)>) {
        if self.trivial_group {
            for ch in &self.channels {
                if alpha & ch.sites == ch.in_pat {
                    out.push((alpha ^ ch.flip, ch.coeff));
                }
            }
            return;
        }
        for ch in &self.channels {
            if alpha & ch.sites == ch.in_pat {
                let raw = alpha ^ ch.flip;
                let info = state_info(&self.group, raw);
                if !info.valid {
                    continue;
                }
                let norm = (alpha_orbit as f64 / info.orbit_size as f64).sqrt();
                let phase =
                    S::from_c64(info.phase).expect("real sector guarantees real phases");
                let amp = ch.coeff * phase.scale_re(norm);
                out.push((info.representative, amp));
            }
        }
    }

    /// Builds the dense sector matrix (testing / small systems only).
    // Column index `j` addresses `h`, the basis and the orbit list at
    // once; the range loop is the clear form.
    #[allow(clippy::needless_range_loop)]
    pub fn to_dense(&self, basis: &crate::SpinBasis) -> Vec<Vec<S>> {
        let dim = basis.dim();
        assert!(dim <= 1 << 14, "dense sector matrix too large");
        let mut h = vec![vec![S::ZERO; dim]; dim];
        let mut row = Vec::new();
        for j in 0..dim {
            let alpha = basis.state(j);
            let orbit = basis.orbit_sizes()[j];
            h[j][j] += self.diagonal(alpha);
            row.clear();
            self.apply_off_diag(alpha, orbit, &mut row);
            for &(beta, amp) in &row {
                let i =
                    basis.index_of(beta).expect("channel produced a state outside the basis");
                h[i][j] += amp;
            }
        }
        h
    }
}

/// Convenience: symmetrize a Hermitian kernel with complex bookkeeping and
/// verify Hermiticity of the dense sector matrix (test helper).
pub fn sector_matrix_c64(
    kernel: &OperatorKernel,
    sector: &SectorSpec,
    basis: &crate::SpinBasis,
) -> Result<Vec<Vec<Complex64>>, BasisError> {
    let op = SymmetrizedOperator::<Complex64>::new(kernel, sector)?;
    Ok(op.to_dense(basis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::SpinBasis;
    use ls_expr::builders::heisenberg;
    use ls_symmetry::lattice;

    fn chain_setup(
        n: usize,
        k: i64,
        r: Option<i64>,
        z: Option<i64>,
    ) -> (OperatorKernel, SectorSpec, SpinBasis) {
        let kernel = heisenberg(&lattice::chain_bonds(n), 1.0).to_kernel(n as u32).unwrap();
        let group = lattice::chain_group(n, k, r, z).unwrap();
        let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
        let basis = SpinBasis::build(sector.clone());
        (kernel, sector, basis)
    }

    #[test]
    fn real_sector_builds_with_f64() {
        let (kernel, sector, _) = chain_setup(8, 0, Some(0), Some(0));
        let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();
        assert!(op.is_hermitian());
        assert_eq!(op.n_diag_monomials(), 8);
        assert_eq!(op.n_channels(), 16);
    }

    #[test]
    fn complex_sector_rejects_f64() {
        let (kernel, sector, _) = chain_setup(8, 1, None, None);
        let err = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap_err();
        assert_eq!(err, BasisError::ComplexSector);
        // ... but accepts Complex64.
        assert!(SymmetrizedOperator::<Complex64>::new(&kernel, &sector).is_ok());
    }

    #[test]
    fn symmetry_violation_detected() {
        // A single bond does not commute with translation.
        let n = 6;
        let kernel = ls_expr::builders::heisenberg_bond(0, 1).to_kernel(n as u32).unwrap();
        let group = lattice::chain_group(n, 0, None, None).unwrap();
        let sector = SectorSpec::new(n as u32, Some(3), group).unwrap();
        let err = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap_err();
        assert_eq!(err, BasisError::BreaksSymmetry);
    }

    #[test]
    fn u1_violation_detected() {
        let n = 4;
        let kernel = ls_expr::builders::transverse_field(n, 1.0).to_kernel(n as u32).unwrap();
        let sector = SectorSpec::with_weight(n as u32, 2).unwrap();
        let err = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap_err();
        assert_eq!(err, BasisError::BreaksU1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // symmetric (i, j) access pattern
    fn dense_sector_matrix_is_hermitian() {
        for (k, r, z) in
            [(0i64, Some(0i64), Some(0i64)), (0, Some(1), None), (4, None, Some(0))]
        {
            let (kernel, sector, basis) = chain_setup(8, k, r, z);
            let h = sector_matrix_c64(&kernel, &sector, &basis).unwrap();
            for i in 0..h.len() {
                for j in 0..h.len() {
                    assert!(
                        h[i][j].approx_eq(h[j][i].conj(), 1e-10),
                        "H[{i}][{j}] = {:?} vs H[{j}][{i}]* = {:?} (k={k})",
                        h[i][j],
                        h[j][i].conj()
                    );
                }
            }
        }
    }

    #[test]
    fn trivial_group_matches_generic_path() {
        // U(1)-only: the fast path must agree with a 1-element group going
        // through state_info.
        let n = 6u32;
        let kernel = heisenberg(&lattice::chain_bonds(n as usize), 1.0).to_kernel(n).unwrap();
        let sector = SectorSpec::with_weight(n, 3).unwrap();
        let basis = SpinBasis::build(sector.clone());
        let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();
        let mut out = Vec::new();
        for (j, &alpha) in basis.states().iter().enumerate() {
            out.clear();
            op.apply_off_diag(alpha, basis.orbit_sizes()[j], &mut out);
            // Compare against the raw kernel's off-diagonal (orbit size 1,
            // no phases in the trivial group).
            let mut raw = Vec::new();
            kernel.off_diagonal(alpha, &mut raw);
            let expect: Vec<(u64, f64)> = raw.into_iter().map(|(b, c)| (b, c.re)).collect();
            assert_eq!(out.len(), expect.len());
            for (a, e) in out.iter().zip(&expect) {
                assert_eq!(a.0, e.0);
                assert!((a.1 - e.1).abs() < 1e-14);
            }
        }
    }
}
