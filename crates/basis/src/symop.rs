//! Operators projected into a symmetry sector.
//!
//! A [`SymmetrizedOperator`] is the executable form of `H` restricted to a
//! sector basis of representatives. Applying a scattering channel to a
//! representative `|α⟩` yields a raw state `|s⟩`; resolving `s` against the
//! group gives its representative `|β⟩`, the connecting phase `χ(g)*` and
//! the orbit sizes, and the matrix element follows:
//!
//! ```text
//! ⟨β̃|H|α̃⟩ += c · χ(g)* · sqrt(orbit(α) / orbit(β))
//! ```
//!
//! (zero-norm orbits are skipped). This is the paper's `getRow` for
//! symmetry-adapted bases, and the inner kernel of every matrix-vector
//! product in this workspace.

use crate::rep::{state_info, state_info_batch, StateInfoBatch};
use crate::sector::{BasisError, SectorSpec};
use ls_expr::OperatorKernel;
use ls_kernels::combinadics::BinomialTable;
use ls_kernels::{Complex64, Scalar};
use ls_symmetry::SymmetryGroup;

/// SoA emissions of one block off-diagonal generation (the batched
/// `getRow`): parallel arrays of source position, destination
/// representative and matrix element. Caller-owned scratch — reusing one
/// `OffDiagBlock` across blocks keeps the hot loop allocation-free.
#[derive(Clone, Debug, Default)]
pub struct OffDiagBlock<S: Scalar> {
    /// Source position of each emission, relative to the block start.
    /// Non-decreasing: emissions are ordered (state, channel), exactly
    /// like repeated [`SymmetrizedOperator::apply_off_diag`] calls.
    pub src: Vec<u32>,
    /// Destination representatives, resolved against the group.
    pub reps: Vec<u64>,
    /// Matrix elements `⟨β̃|H|α̃⟩`.
    pub amps: Vec<S>,
    info: StateInfoBatch,
}

impl<S: Scalar> OffDiagBlock<S> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of emissions in the current block.
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }
}

#[derive(Copy, Clone, Debug)]
struct SymChannel<S> {
    coeff: S,
    sites: u64,
    in_pat: u64,
    flip: u64,
    /// Jordan-Wigner parity mask: the amplitude picks up
    /// `(−1)^popcount(α & sign)`. Zero for bosonic/spin channels.
    sign: u64,
}

impl<S: Scalar> SymChannel<S> {
    /// The channel coefficient with the fermionic string sign applied.
    #[inline]
    fn signed_coeff(&self, alpha: u64) -> S {
        if (alpha & self.sign).count_ones() & 1 == 1 {
            -self.coeff
        } else {
            self.coeff
        }
    }
}

/// An operator kernel bound to a symmetry sector, with scalar type `S`.
#[derive(Clone, Debug)]
pub struct SymmetrizedOperator<S: Scalar> {
    group: SymmetryGroup,
    diag: Vec<(S, u64)>,
    /// Masked-compare diagonal patterns `(coeff, sites, pat)` from
    /// multi-bit encodings (empty for spin-1/2 operators).
    patterns: Vec<(S, u64, u64)>,
    channels: Vec<SymChannel<S>>,
    hermitian: bool,
    trivial_group: bool,
    /// Any channel with a non-zero Jordan-Wigner sign mask? Gates the
    /// sign-free hot loops.
    has_signs: bool,
    /// Process-unique construction id (shared by clones, which carry
    /// identical terms) — see [`Self::diag_fingerprint`].
    id: u64,
}

/// Source of [`SymmetrizedOperator::id`]: monotonically increasing, never
/// reused, so cache keys built on it cannot suffer allocator ABA.
static NEXT_OPERATOR_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl<S: Scalar> SymmetrizedOperator<S> {
    /// Binds `kernel` to `sector`, verifying that the operator
    /// 1. acts on the sector's sites, with the sector's site encoding,
    /// 2. conserves the Hamming weight (total code sum) if the sector
    ///    fixes one, and every per-species [`crate::ChargeMask`],
    /// 3. commutes with every symmetry-group element (checked exactly via
    ///    kernel conjugation),
    /// 4. fits the scalar type (`f64` demands a real sector and real
    ///    coefficients).
    pub fn new(kernel: &OperatorKernel, sector: &SectorSpec) -> Result<Self, BasisError> {
        if kernel.n_sites() != sector.n_sites() {
            return Err(BasisError::OperatorSizeMismatch {
                kernel_sites: kernel.n_sites(),
                n_sites: sector.n_sites(),
            });
        }
        if kernel.encoding() != sector.encoding() {
            return Err(BasisError::EncodingMismatch);
        }
        if sector.hamming_weight().is_some() && !kernel.conserves_hamming_weight() {
            return Err(BasisError::BreaksU1);
        }
        for c in sector.charges() {
            if !kernel.conserves_masked_weight(c.mask) {
                return Err(BasisError::BreaksCharge { mask: c.mask });
            }
        }
        for el in sector.group().elements() {
            let conj = kernel.conjugated_by(|s| el.apply_permutation(s), el.has_flip());
            if !conj.approx_eq(kernel, 1e-10) {
                return Err(BasisError::BreaksSymmetry);
            }
        }
        if S::N_REALS == 1 && !sector.is_real() {
            return Err(BasisError::ComplexSector);
        }
        let mut diag = Vec::with_capacity(kernel.diagonal_monomials().len());
        for m in kernel.diagonal_monomials() {
            let c = S::from_c64(m.coeff).ok_or(BasisError::ComplexOperator)?;
            diag.push((c, m.zmask));
        }
        let mut patterns = Vec::with_capacity(kernel.diagonal_patterns().len());
        for p in kernel.diagonal_patterns() {
            let c = S::from_c64(p.coeff).ok_or(BasisError::ComplexOperator)?;
            patterns.push((c, p.sites, p.pat));
        }
        let mut channels = Vec::with_capacity(kernel.channels().len());
        for ch in kernel.channels() {
            let c = S::from_c64(ch.coeff).ok_or(BasisError::ComplexOperator)?;
            channels.push(SymChannel {
                coeff: c,
                sites: ch.sites,
                in_pat: ch.in_pat,
                flip: ch.flip_mask(),
                sign: ch.sign,
            });
        }
        Ok(Self {
            group: sector.group().clone(),
            diag,
            patterns,
            channels,
            hermitian: kernel.is_hermitian(1e-10),
            trivial_group: sector.group().order() == 1,
            has_signs: kernel.has_signs(),
            id: NEXT_OPERATOR_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        })
    }

    pub fn group(&self) -> &SymmetryGroup {
        &self.group
    }

    /// Is the bound group trivial (U(1)-only sector)? Gates the
    /// differential-ranking fast path of the batched matvec.
    pub fn has_trivial_group(&self) -> bool {
        self.trivial_group
    }

    /// Identity of this operator's diagonal — the cache key the matvec
    /// scratch pool uses to memoize per-state diagonals across repeated
    /// products. Built on a process-unique construction id (never
    /// recycled, so a freed operator's allocation being reused cannot
    /// produce a stale hit); clones share the id and the identical terms.
    pub fn diag_fingerprint(&self) -> (u64, usize) {
        (self.id, self.diag.len())
    }

    pub fn is_hermitian(&self) -> bool {
        self.hermitian
    }

    /// Does any channel carry a fermionic Jordan-Wigner sign mask? When
    /// true the segment-encoded constant-coefficient fast paths (which
    /// assume one amplitude per channel) are unavailable.
    pub fn has_signs(&self) -> bool {
        self.has_signs
    }

    /// Upper bound on off-diagonal entries per row.
    pub fn max_row_entries(&self) -> usize {
        self.channels.len()
    }

    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    pub fn n_diag_monomials(&self) -> usize {
        self.diag.len()
    }

    pub fn n_diag_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Diagonal matrix element `⟨α̃|H|α̃⟩_diag` (the Walsh part; channel
    /// contributions that happen to map `α` back to itself are produced by
    /// [`Self::apply_off_diag`]).
    #[inline]
    pub fn diagonal(&self, alpha: u64) -> S {
        let mut acc = S::ZERO;
        for &(c, zmask) in &self.diag {
            let downs = (!alpha & zmask).count_ones();
            if downs & 1 == 0 {
                acc += c;
            } else {
                acc -= c;
            }
        }
        for &(c, sites, pat) in &self.patterns {
            if alpha & sites == pat {
                acc += c;
            }
        }
        acc
    }

    /// Pushes `(β_rep, ⟨β̃|H|α̃⟩)` for every off-diagonal channel firing on
    /// the representative `alpha` (with orbit size `alpha_orbit`). Entries
    /// with `β_rep == alpha` are legitimate (orbit self-connections) and
    /// must be accumulated by the caller like any other entry.
    #[inline]
    pub fn apply_off_diag(&self, alpha: u64, alpha_orbit: u32, out: &mut Vec<(u64, S)>) {
        if self.trivial_group {
            if self.has_signs {
                for ch in &self.channels {
                    if alpha & ch.sites == ch.in_pat {
                        out.push((alpha ^ ch.flip, ch.signed_coeff(alpha)));
                    }
                }
            } else {
                // Sign-free hot loop (all spin models), untouched.
                for ch in &self.channels {
                    if alpha & ch.sites == ch.in_pat {
                        out.push((alpha ^ ch.flip, ch.coeff));
                    }
                }
            }
            return;
        }
        for ch in &self.channels {
            if alpha & ch.sites == ch.in_pat {
                let raw = alpha ^ ch.flip;
                let info = state_info(&self.group, raw);
                if !info.valid {
                    continue;
                }
                let norm = (alpha_orbit as f64 / info.orbit_size as f64).sqrt();
                let phase =
                    S::from_c64(info.phase).expect("real sector guarantees real phases");
                let amp = ch.signed_coeff(alpha) * phase.scale_re(norm);
                out.push((info.representative, amp));
            }
        }
    }

    /// Diagonal matrix elements for a whole block of states:
    /// `out[k] = ⟨α̃_k|H|α̃_k⟩_diag`. Monomial-outer / state-inner loop
    /// order — each Walsh mask is loaded once per block and the inner loop
    /// is a branch-light popcount stream. Elementwise bit-identical to
    /// [`Self::diagonal`] (same monomial accumulation order).
    pub fn diagonal_block(&self, states: &[u64], out: &mut [S]) {
        assert_eq!(states.len(), out.len());
        out.fill(S::ZERO);
        for &(c, zmask) in &self.diag {
            for (o, &s) in out.iter_mut().zip(states) {
                let downs = (!s & zmask).count_ones();
                if downs & 1 == 0 {
                    *o += c;
                } else {
                    *o -= c;
                }
            }
        }
        for &(c, sites, pat) in &self.patterns {
            for (o, &s) in out.iter_mut().zip(states) {
                if s & sites == pat {
                    *o += c;
                }
            }
        }
    }

    /// Batched [`Self::apply_off_diag`]: generates every off-diagonal
    /// emission for a block of representatives (`states` with orbit sizes
    /// `orbits`) into `out`'s SoA arrays.
    ///
    /// The pipeline is: (1) channel-mask generation of raw states, (2) a
    /// single [`state_info_batch`] pass over all raw states of the block
    /// (group-element-outer), (3) amplitude resolution with zero-norm
    /// emissions compacted away. Emission order and every floating-point
    /// operation match the scalar path, so results are bit-identical to
    /// calling `apply_off_diag` state by state.
    pub fn apply_off_diag_block(
        &self,
        states: &[u64],
        orbits: &[u32],
        out: &mut OffDiagBlock<S>,
    ) {
        assert_eq!(states.len(), orbits.len());
        out.src.clear();
        out.reps.clear();
        out.amps.clear();
        if self.has_signs {
            for (k, &alpha) in states.iter().enumerate() {
                for ch in &self.channels {
                    if alpha & ch.sites == ch.in_pat {
                        out.src.push(k as u32);
                        out.reps.push(alpha ^ ch.flip);
                        out.amps.push(ch.signed_coeff(alpha));
                    }
                }
            }
        } else {
            // Sign-free hot loop, untouched.
            for (k, &alpha) in states.iter().enumerate() {
                for ch in &self.channels {
                    if alpha & ch.sites == ch.in_pat {
                        out.src.push(k as u32);
                        out.reps.push(alpha ^ ch.flip);
                        out.amps.push(ch.coeff);
                    }
                }
            }
        }
        if self.trivial_group {
            // Raw states are their own representatives with unit phase.
            return;
        }
        state_info_batch(&self.group, &out.reps, &mut out.info);
        let info = &out.info;
        let mut w = 0usize;
        for r in 0..out.reps.len() {
            if !info.valid[r] {
                continue;
            }
            let alpha_orbit = orbits[out.src[r] as usize];
            let norm = (alpha_orbit as f64 / info.orbit_sizes[r] as f64).sqrt();
            let phase =
                S::from_c64(info.phases[r]).expect("real sector guarantees real phases");
            out.src[w] = out.src[r];
            out.reps[w] = info.representatives[r];
            out.amps[w] = out.amps[r] * phase.scale_re(norm);
            w += 1;
        }
        out.src.truncate(w);
        out.reps.truncate(w);
        out.amps.truncate(w);
    }

    /// The U(1) fused fast path: generation *and ranking* of a block in
    /// one pass. Valid only for a trivial group over the full fixed-weight
    /// basis (the combinadic-ranking precondition): there the basis index
    /// of a state *is* its combinadic rank, the rank of the block's `k`-th
    /// row is simply `first_rank + k`, and each destination rank follows
    /// by [`BinomialTable::rank_xor`] — O(flipped span) instead of
    /// O(weight) per matrix element, with no lookup structure touched at
    /// all. Emits `(src, dest rank, amplitude)` in the same (state,
    /// channel) order as [`Self::apply_off_diag_block`]; destination ranks
    /// are always valid.
    pub fn apply_off_diag_block_u1_ranked(
        &self,
        states: &[u64],
        first_rank: u64,
        table: &BinomialTable,
        src: &mut Vec<u32>,
        idx: &mut Vec<u32>,
        amps: &mut Vec<S>,
    ) {
        debug_assert!(self.trivial_group, "fused ranking requires the trivial group");
        debug_assert!(!self.has_signs, "fused ranking requires sign-free channels");
        src.clear();
        idx.clear();
        amps.clear();
        for (k, &alpha) in states.iter().enumerate() {
            let rank_alpha = first_rank + k as u64;
            debug_assert_eq!(table.rank(alpha), rank_alpha);
            for ch in &self.channels {
                if alpha & ch.sites == ch.in_pat {
                    let dest = table.rank_xor(alpha, ch.flip, rank_alpha);
                    src.push(k as u32);
                    idx.push(dest as u32);
                    amps.push(ch.coeff);
                }
            }
        }
    }

    /// Channel-outer variant of [`Self::apply_off_diag_block_u1_ranked`]
    /// for the gather (pull) formulation.
    ///
    /// For each channel, firing rows are first collected with a
    /// *branchless* compaction sweep (the data-dependent fire/no-fire
    /// branch of the row-outer loops mispredicts constantly; a
    /// conditional-increment store does not), then ranked differentially.
    /// Output is segment-encoded: `emit` packs each emission as
    /// `(source position << 32) | destination rank` grouped by channel,
    /// and `segs` holds one `(coefficient, end offset)` pair per channel —
    /// the amplitude of a U(1) channel is a constant, so storing it per
    /// segment instead of per emission halves the emission traffic.
    ///
    /// Emission order is (channel, state); each output element still
    /// receives its contributions in ascending channel order — exactly the
    /// scalar pull accumulation order, so gather results stay bit-exact.
    /// Not suitable for the push formulation, whose serial reference
    /// requires (state, channel) order per *destination*.
    pub fn apply_off_diag_block_u1_ranked_channels(
        &self,
        states: &[u64],
        first_rank: u64,
        table: &BinomialTable,
        fired: &mut Vec<u32>,
        emit: &mut Vec<u64>,
        segs: &mut Vec<(S, u32)>,
    ) {
        debug_assert!(self.trivial_group, "fused ranking requires the trivial group");
        debug_assert!(!self.has_signs, "fused ranking requires sign-free channels");
        emit.clear();
        segs.clear();
        fired.clear();
        fired.resize(states.len(), 0);
        let mut c = 0usize;
        while c < self.channels.len() {
            let ch = &self.channels[c];
            // Exchange-pair merge: the kernel's channel list is sorted by
            // (sites, in_pat), so the S⁺S⁻ / S⁻S⁺ halves of a bond are
            // consecutive; with equal coefficients they share one
            // "exactly one of the two sites is up" sweep (a row fires at
            // most one of the two, so per-row emission order is
            // unchanged). This halves the dominant cost — the per-channel
            // block sweep.
            let paired = c + 1 < self.channels.len() && {
                let ch2 = &self.channels[c + 1];
                ch.sites.count_ones() == 2
                    && ch.flip == ch.sites
                    && ch2.sites == ch.sites
                    && ch2.flip == ch.sites
                    && ch.in_pat ^ ch2.in_pat == ch.sites
                    && ch.coeff == ch2.coeff
            };
            let sites = ch.sites;
            let in_pat = ch.in_pat;
            // Branchless compaction: every row writes its index, only
            // firing rows advance the cursor.
            let mut w = 0usize;
            if paired {
                for (k, &alpha) in states.iter().enumerate() {
                    fired[w] = k as u32;
                    let t = alpha & sites;
                    w += (t != 0 && t != sites) as usize;
                }
            } else {
                for (k, &alpha) in states.iter().enumerate() {
                    fired[w] = k as u32;
                    w += (alpha & sites == in_pat) as usize;
                }
            }
            // Channel constants of the differential rank, hoisted.
            let lo = ch.flip.trailing_zeros();
            let below = !(u64::MAX << lo);
            if ch.flip >> lo == 0b11 {
                // Adjacent transposition (every nearest-neighbour term):
                // the rank delta is two table loads.
                for &k in &fired[..w] {
                    let alpha = states[k as usize];
                    let dest = table.rank_xor_adjacent(alpha, lo, below, first_rank + k as u64);
                    emit.push((k as u64) << 32 | dest);
                }
            } else {
                for &k in &fired[..w] {
                    let alpha = states[k as usize];
                    let dest = table.rank_xor(alpha, ch.flip, first_rank + k as u64);
                    emit.push((k as u64) << 32 | dest);
                }
            }
            segs.push((ch.coeff, emit.len() as u32));
            c += if paired { 2 } else { 1 };
        }
    }

    /// Builds the dense sector matrix (testing / small systems only).
    // Column index `j` addresses `h`, the basis and the orbit list at
    // once; the range loop is the clear form.
    #[allow(clippy::needless_range_loop)]
    pub fn to_dense(&self, basis: &crate::SpinBasis) -> Vec<Vec<S>> {
        let dim = basis.dim();
        assert!(dim <= 1 << 14, "dense sector matrix too large");
        let mut h = vec![vec![S::ZERO; dim]; dim];
        let mut row = Vec::new();
        for j in 0..dim {
            let alpha = basis.state(j);
            let orbit = basis.orbit_sizes()[j];
            h[j][j] += self.diagonal(alpha);
            row.clear();
            self.apply_off_diag(alpha, orbit, &mut row);
            for &(beta, amp) in &row {
                let i =
                    basis.index_of(beta).expect("channel produced a state outside the basis");
                h[i][j] += amp;
            }
        }
        h
    }
}

/// Convenience: symmetrize a Hermitian kernel with complex bookkeeping and
/// verify Hermiticity of the dense sector matrix (test helper).
pub fn sector_matrix_c64(
    kernel: &OperatorKernel,
    sector: &SectorSpec,
    basis: &crate::SpinBasis,
) -> Result<Vec<Vec<Complex64>>, BasisError> {
    let op = SymmetrizedOperator::<Complex64>::new(kernel, sector)?;
    Ok(op.to_dense(basis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::SpinBasis;
    use ls_expr::builders::heisenberg;
    use ls_symmetry::lattice;

    fn chain_setup(
        n: usize,
        k: i64,
        r: Option<i64>,
        z: Option<i64>,
    ) -> (OperatorKernel, SectorSpec, SpinBasis) {
        let kernel = heisenberg(&lattice::chain_bonds(n), 1.0).to_kernel(n as u32).unwrap();
        let group = lattice::chain_group(n, k, r, z).unwrap();
        let sector = SectorSpec::new(n as u32, Some(n as u32 / 2), group).unwrap();
        let basis = SpinBasis::build(sector.clone());
        (kernel, sector, basis)
    }

    #[test]
    fn real_sector_builds_with_f64() {
        let (kernel, sector, _) = chain_setup(8, 0, Some(0), Some(0));
        let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();
        assert!(op.is_hermitian());
        assert_eq!(op.n_diag_monomials(), 8);
        assert_eq!(op.n_channels(), 16);
    }

    #[test]
    fn complex_sector_rejects_f64() {
        let (kernel, sector, _) = chain_setup(8, 1, None, None);
        let err = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap_err();
        assert_eq!(err, BasisError::ComplexSector);
        // ... but accepts Complex64.
        assert!(SymmetrizedOperator::<Complex64>::new(&kernel, &sector).is_ok());
    }

    #[test]
    fn symmetry_violation_detected() {
        // A single bond does not commute with translation.
        let n = 6;
        let kernel = ls_expr::builders::heisenberg_bond(0, 1).to_kernel(n as u32).unwrap();
        let group = lattice::chain_group(n, 0, None, None).unwrap();
        let sector = SectorSpec::new(n as u32, Some(3), group).unwrap();
        let err = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap_err();
        assert_eq!(err, BasisError::BreaksSymmetry);
    }

    #[test]
    fn u1_violation_detected() {
        let n = 4;
        let kernel = ls_expr::builders::transverse_field(n, 1.0).to_kernel(n as u32).unwrap();
        let sector = SectorSpec::with_weight(n as u32, 2).unwrap();
        let err = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap_err();
        assert_eq!(err, BasisError::BreaksU1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // symmetric (i, j) access pattern
    fn dense_sector_matrix_is_hermitian() {
        for (k, r, z) in
            [(0i64, Some(0i64), Some(0i64)), (0, Some(1), None), (4, None, Some(0))]
        {
            let (kernel, sector, basis) = chain_setup(8, k, r, z);
            let h = sector_matrix_c64(&kernel, &sector, &basis).unwrap();
            for i in 0..h.len() {
                for j in 0..h.len() {
                    assert!(
                        h[i][j].approx_eq(h[j][i].conj(), 1e-10),
                        "H[{i}][{j}] = {:?} vs H[{j}][{i}]* = {:?} (k={k})",
                        h[i][j],
                        h[j][i].conj()
                    );
                }
            }
        }
    }

    #[test]
    fn block_generation_matches_scalar_apply() {
        // Symmetric and U(1)-only sectors; Complex64 covers the momentum
        // sector path with genuine phases.
        let n = 8usize;
        let kernel = heisenberg(&lattice::chain_bonds(n), 1.0).to_kernel(n as u32).unwrap();
        for (k, r, z) in [(0i64, Some(0i64), Some(0i64)), (2, None, None), (4, None, Some(0))] {
            let group = lattice::chain_group(n, k, r, z).unwrap();
            let sector = SectorSpec::new(n as u32, Some(4), group).unwrap();
            let basis = SpinBasis::build(sector.clone());
            let op = SymmetrizedOperator::<Complex64>::new(&kernel, &sector).unwrap();
            check_block_matches_scalar(&op, &basis);
        }
        // Trivial group fast path (f64).
        let sector = SectorSpec::with_weight(n as u32, 4).unwrap();
        let basis = SpinBasis::build(sector.clone());
        let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();
        check_block_matches_scalar(&op, &basis);
    }

    fn check_block_matches_scalar<S: Scalar>(op: &SymmetrizedOperator<S>, basis: &SpinBasis) {
        let states = basis.states();
        let orbits = basis.orbit_sizes();
        let mut block = OffDiagBlock::new();
        let mut diag = vec![S::ZERO; 0];
        let mut row = Vec::new();
        // Deliberately odd block size to exercise boundaries.
        let bs = 13usize;
        let mut b0 = 0usize;
        while b0 < states.len() {
            let b1 = (b0 + bs).min(states.len());
            op.apply_off_diag_block(&states[b0..b1], &orbits[b0..b1], &mut block);
            diag.resize(b1 - b0, S::ZERO);
            op.diagonal_block(&states[b0..b1], &mut diag);
            let mut t = 0usize;
            for k in 0..(b1 - b0) {
                // Diagonal: bit-identical to the scalar accumulator.
                assert_eq!(diag[k], op.diagonal(states[b0 + k]));
                row.clear();
                op.apply_off_diag(states[b0 + k], orbits[b0 + k], &mut row);
                for &(rep, amp) in &row {
                    assert!(t < block.len(), "batch emitted too few entries");
                    assert_eq!(block.src[t] as usize, k);
                    assert_eq!(block.reps[t], rep);
                    // Bit-exact: the batch path performs the identical
                    // floating-point operations in the same order.
                    assert_eq!(block.amps[t], amp);
                    t += 1;
                }
            }
            assert_eq!(t, block.len(), "batch emitted extra entries");
            b0 = b1;
        }
    }

    #[test]
    fn encoding_mismatch_detected() {
        // A spin-1/2 kernel cannot bind to a fermionic sector …
        let kernel = heisenberg(&[(0, 1)], 1.0).to_kernel(4).unwrap();
        let sector = SectorSpec::spinful_fermions(2, 1, 1).unwrap();
        let err = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap_err();
        assert_eq!(err, BasisError::EncodingMismatch);
        // … and a fermionic kernel cannot bind to a spin sector.
        let h = ls_expr::LocalHilbert::fermion();
        let hop = ls_expr::fermion_hop(0, 1, 1.0).to_kernel_in(&h, 4).unwrap();
        let spin = SectorSpec::with_weight(4, 2).unwrap();
        let err = SymmetrizedOperator::<f64>::new(&hop, &spin).unwrap_err();
        assert_eq!(err, BasisError::EncodingMismatch);
    }

    #[test]
    fn charge_violation_detected() {
        // A hop between the up and down orbitals of site 0 conserves the
        // total particle number but not the per-species counts.
        let h = ls_expr::LocalHilbert::fermion();
        let mix = ls_expr::fermion_hop(0, 2, 1.0).to_kernel_in(&h, 4).unwrap();
        let sector = SectorSpec::spinful_fermions(2, 1, 1).unwrap();
        let err = SymmetrizedOperator::<f64>::new(&mix, &sector).unwrap_err();
        assert!(matches!(err, BasisError::BreaksCharge { .. }));
    }

    #[test]
    fn hubbard_sector_matrix_matches_kernel_dense() {
        // Periodic 4-site Hubbard chain at quarter-ish filling: JW sign
        // masks are live. The symmetrized dense matrix must equal the raw
        // kernel restricted to the basis states.
        let h = ls_expr::LocalHilbert::fermion();
        let kernel = ls_expr::hubbard_1d(4, 1.0, 4.0, true).to_kernel_in(&h, 8).unwrap();
        assert!(kernel.has_signs());
        let sector = SectorSpec::spinful_fermions(4, 2, 1).unwrap();
        let basis = SpinBasis::build(sector.clone());
        assert_eq!(basis.dim() as u64, sector.dimension());
        let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();
        assert!(op.has_signs());
        assert!(op.is_hermitian());
        let dense = op.to_dense(&basis);
        let expect = kernel.to_dense_states(basis.states());
        for i in 0..basis.dim() {
            for j in 0..basis.dim() {
                assert!(
                    (dense[i][j] - expect[i][j].re).abs() < 1e-12,
                    "H[{i}][{j}]: {} vs {}",
                    dense[i][j],
                    expect[i][j].re
                );
            }
        }
        // Batched generation agrees bit-exactly with the scalar path.
        check_block_matches_scalar(&op, &basis);
    }

    #[test]
    fn spin_one_sector_matrix_matches_kernel_dense() {
        // 4-site spin-1 Heisenberg ring in the Σ Sz = 0 sector: diagonal
        // patterns (SzSz over 2-bit codes) are live.
        let hilb = ls_expr::LocalHilbert::spin_one();
        let kernel =
            heisenberg(&[(0, 1), (1, 2), (2, 3), (3, 0)], 1.0).to_kernel_in(&hilb, 4).unwrap();
        let sector = SectorSpec::spin_s(4, 3, Some(4)).unwrap();
        let basis = SpinBasis::build(sector.clone());
        assert_eq!(basis.dim() as u64, sector.dimension());
        let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();
        assert!(op.n_diag_patterns() > 0);
        assert!(!op.has_signs());
        let dense = op.to_dense(&basis);
        let expect = kernel.to_dense_states(basis.states());
        for i in 0..basis.dim() {
            for j in 0..basis.dim() {
                assert!(
                    (dense[i][j] - expect[i][j].re).abs() < 1e-12,
                    "H[{i}][{j}]: {} vs {}",
                    dense[i][j],
                    expect[i][j].re
                );
            }
        }
        check_block_matches_scalar(&op, &basis);
    }

    #[test]
    fn trivial_group_matches_generic_path() {
        // U(1)-only: the fast path must agree with a 1-element group going
        // through state_info.
        let n = 6u32;
        let kernel = heisenberg(&lattice::chain_bonds(n as usize), 1.0).to_kernel(n).unwrap();
        let sector = SectorSpec::with_weight(n, 3).unwrap();
        let basis = SpinBasis::build(sector.clone());
        let op = SymmetrizedOperator::<f64>::new(&kernel, &sector).unwrap();
        let mut out = Vec::new();
        for (j, &alpha) in basis.states().iter().enumerate() {
            out.clear();
            op.apply_off_diag(alpha, basis.orbit_sizes()[j], &mut out);
            // Compare against the raw kernel's off-diagonal (orbit size 1,
            // no phases in the trivial group).
            let mut raw = Vec::new();
            kernel.off_diagonal(alpha, &mut raw);
            let expect: Vec<(u64, f64)> = raw.into_iter().map(|(b, c)| (b, c.re)).collect();
            assert_eq!(out.len(), expect.len());
            for (a, e) in out.iter().zip(&expect) {
                assert_eq!(a.0, e.0);
                assert!((a.1 - e.1).abs() < 1e-14);
            }
        }
    }
}
