//! The multiprocess job supervisor: spawn, reap, classify, relaunch.
//!
//! [`crate::transport::launch_if_requested`] lands here when
//! `LS_TRANSPORT=multiprocess` is requested by a process that is not yet
//! a worker. Where the old launcher spawned the workers once and
//! propagated the first failure, the supervisor owns the job's whole
//! lifecycle:
//!
//! * **Reap + classify.** Every worker exit is classified (see
//!   [`FailureClass`]): clean, orphaned watchdog (124), protocol
//!   desync/timeout (113), failover after a peer death (114), a signal
//!   crash, or some other nonzero code. The *culprit* of a failed round
//!   is the worker with the most causal class — a crash outranks a
//!   desync outranks collateral failovers — so the diagnostic names the
//!   rank that actually died, not the first rank that noticed.
//! * **Prompt teardown.** On the first abnormal exit the supervisor
//!   gives the survivors a short grace period (the `ABORT` fan-out
//!   usually beats it), then kills and reaps whatever is left and
//!   removes the rendezvous directory. No `ls-mp-*` artifact outlives
//!   the round on any exit path.
//! * **Bounded relaunch.** Abnormal rounds are retried up to
//!   `LS_MP_MAX_RESTARTS` times (default 2) with exponential backoff
//!   starting at `LS_MP_BACKOFF_MS` (default 250). Each relaunch runs
//!   the identical command line with `LS_MP_RESTART_COUNT` incremented
//!   and a fresh rendezvous directory; programs that save checkpoints
//!   (`ls-eigen`'s thick restart) resume from the latest valid one and,
//!   by the workspace determinism contract, converge bit-identically to
//!   an uninterrupted run.
//!
//! The supervisor holds the write end of each worker's stdin pipe and
//! never writes it. If the supervisor itself dies — even by SIGKILL —
//! workers see EOF, remove the rendezvous directory themselves, and exit
//! 124 (see `spawn_watchdog` in [`crate::transport`]).

use crate::fault::FaultPlan;
use crate::transport::{
    ENV_BACKOFF_MS, ENV_JOB, ENV_LOCALES, ENV_MAX_RESTARTS, ENV_RANK, ENV_RESTART_COUNT,
    ENV_WATCHDOG, EXIT_CORRUPTION, EXIT_FAILOVER, EXIT_ORPHANED, EXIT_PROTOCOL,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// How long after the first abnormal exit the supervisor waits for the
/// remaining workers to exit on their own (the `ABORT` fan-out usually
/// finishes the job in milliseconds) before killing them.
const TEARDOWN_GRACE: Duration = Duration::from_secs(3);
/// Reap polling interval.
const REAP_POLL: Duration = Duration::from_millis(5);
/// Ceiling on the exponential backoff between relaunches.
const MAX_BACKOFF: Duration = Duration::from_secs(10);

/// Classification of one worker's exit, ordered by causal priority:
/// when a round fails, the worker whose class compares highest is
/// reported as the culprit.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureClass {
    /// Exit code 0.
    Clean,
    /// Exit 114: the worker aborted because a *peer* failed — always
    /// collateral damage, never the culprit.
    Failover,
    /// Exit 124: the watchdog fired (supervisor death) — ambient, not a
    /// worker's fault.
    Orphaned,
    /// Any other nonzero exit code (application failure).
    Other(i32),
    /// Exit 113: transport protocol failure (desync, timeout) detected
    /// by this worker.
    Desync,
    /// Exit 115: this worker detected data corruption (CRC/checksum
    /// violation) that escaped or exhausted the solver's rollback path.
    /// More causal than a desync — the corruption is the root event —
    /// but a signal crash still outranks it.
    Corruption,
    /// Killed by a signal (SIGABRT, SIGKILL, SIGSEGV...) — the most
    /// causal class: this is the worker that actually died.
    Crash(i32),
}

impl FailureClass {
    /// True for every class except [`FailureClass::Clean`].
    pub fn is_abnormal(self) -> bool {
        self != FailureClass::Clean
    }

    /// The exit code the supervisor propagates when this class is the
    /// round's culprit and the retry budget is exhausted.
    pub fn exit_code(self) -> i32 {
        match self {
            FailureClass::Clean => 0,
            FailureClass::Failover => EXIT_FAILOVER,
            FailureClass::Orphaned => EXIT_ORPHANED,
            FailureClass::Other(code) => code,
            FailureClass::Desync => EXIT_PROTOCOL,
            FailureClass::Corruption => EXIT_CORRUPTION,
            FailureClass::Crash(_) => EXIT_PROTOCOL,
        }
    }

    /// Human-readable description for supervisor diagnostics.
    pub fn describe(self) -> String {
        match self {
            FailureClass::Clean => "exited cleanly".into(),
            FailureClass::Failover => {
                format!("aborted after a peer failure (exit {EXIT_FAILOVER})")
            }
            FailureClass::Orphaned => {
                format!("orphaned by the watchdog (exit {EXIT_ORPHANED})")
            }
            FailureClass::Other(code) => format!("failed (exit {code})"),
            FailureClass::Desync => {
                format!("desynchronized or timed out (exit {EXIT_PROTOCOL})")
            }
            FailureClass::Corruption => {
                format!("detected unrecovered data corruption (exit {EXIT_CORRUPTION})")
            }
            FailureClass::Crash(signal) => format!("crashed (signal {signal})"),
        }
    }
}

/// Classifies a worker exit from its code (`None` when signal-killed)
/// and terminating signal, mirroring `ExitStatus` on unix.
pub fn classify_exit(code: Option<i32>, signal: Option<i32>) -> FailureClass {
    match (code, signal) {
        (Some(0), _) => FailureClass::Clean,
        (Some(c), _) if c == EXIT_PROTOCOL => FailureClass::Desync,
        (Some(c), _) if c == EXIT_FAILOVER => FailureClass::Failover,
        (Some(c), _) if c == EXIT_ORPHANED => FailureClass::Orphaned,
        (Some(c), _) if c == EXIT_CORRUPTION => FailureClass::Corruption,
        (Some(c), _) => FailureClass::Other(c),
        (None, Some(sig)) => FailureClass::Crash(sig),
        (None, None) => FailureClass::Other(1),
    }
}

fn classify_status(status: ExitStatus) -> FailureClass {
    #[cfg(unix)]
    let signal = {
        use std::os::unix::process::ExitStatusExt;
        status.signal()
    };
    #[cfg(not(unix))]
    let signal = None;
    classify_exit(status.code(), signal)
}

/// One supervised worker.
struct Worker {
    rank: usize,
    child: Child,
    /// The never-written stdin pipe: dropping it (only after the whole
    /// round is down) signals the watchdog.
    pipe: Option<std::process::ChildStdin>,
    outcome: Option<FailureClass>,
}

/// One round's result: every worker's class, in rank order.
struct Round {
    outcomes: Vec<FailureClass>,
}

impl Round {
    /// The most causal abnormal class and its rank, if any worker
    /// misbehaved.
    fn culprit(&self) -> Option<(usize, FailureClass)> {
        self.outcomes
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, c)| c.is_abnormal())
            .max_by_key(|&(rank, class)| (class, std::cmp::Reverse(rank)))
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The supervisor entry point: runs rounds until one exits cleanly or
/// the retry budget is spent, then exits with the verdict. Never
/// returns.
pub(crate) fn run_supervisor() -> ! {
    // Validate the fault plan before spawning anything: a chaos-test
    // typo fails at launch with the offending clause named, instead of
    // panicking inside every worker's transport connect.
    if let Err(e) = FaultPlan::try_from_env() {
        eprintln!("ls-mp: supervisor: {e}");
        std::process::exit(2);
    }
    let n: usize = env_u64(ENV_LOCALES, 2) as usize;
    assert!(n >= 1, "{ENV_LOCALES} must be >= 1");
    let max_restarts = env_u64(ENV_MAX_RESTARTS, 2);
    let backoff_base = Duration::from_millis(env_u64(ENV_BACKOFF_MS, 250));
    let exe = std::env::current_exe().expect("current_exe for the multiprocess supervisor");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let base = if cfg!(unix) && std::path::Path::new("/dev/shm").is_dir() {
        PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };

    let mut attempt: u64 = 0;
    loop {
        // A fresh rendezvous directory per round: a relaunch must never
        // read stale port files or segments from the crashed round.
        let job_dir = base.join(format!("ls-mp-{}.{attempt}", std::process::id()));
        fs::create_dir_all(&job_dir).expect("create multiprocess job directory");
        let round = run_round(&exe, &args, n, &job_dir, attempt);
        let _ = fs::remove_dir_all(&job_dir);

        let Some((rank, class)) = round.culprit() else {
            std::process::exit(0);
        };
        eprintln!("ls-mp: supervisor: worker {rank} {}", class.describe());
        if attempt >= max_restarts {
            if max_restarts > 0 {
                eprintln!(
                    "ls-mp: supervisor: giving up after {attempt} restart(s) \
                     (raise {ENV_MAX_RESTARTS} to retry more)"
                );
            }
            std::process::exit(class.exit_code());
        }
        let backoff = backoff_base.saturating_mul(1 << attempt.min(16)).min(MAX_BACKOFF);
        attempt += 1;
        eprintln!(
            "ls-mp: supervisor: relaunching in {:.2}s \
             (attempt {attempt}/{max_restarts}, {ENV_RESTART_COUNT}={attempt})",
            backoff.as_secs_f64()
        );
        std::thread::sleep(backoff);
    }
}

/// Spawns and reaps one round of workers.
fn run_round(exe: &Path, args: &[String], n: usize, job_dir: &Path, attempt: u64) -> Round {
    let mut workers: Vec<Worker> = (0..n)
        .map(|rank| {
            let mut child = Command::new(exe)
                .args(args)
                .env(ENV_RANK, rank.to_string())
                .env(ENV_JOB, job_dir)
                .env(ENV_LOCALES, n.to_string())
                .env(ENV_WATCHDOG, "1")
                .env(ENV_RESTART_COUNT, attempt.to_string())
                // The pipe is never written: its EOF (supervisor death,
                // even by SIGKILL) tells workers to clean up and exit.
                .stdin(Stdio::piped())
                // Rank 0's stdout is the job's canonical output.
                .stdout(if rank == 0 { Stdio::inherit() } else { Stdio::null() })
                .spawn()
                .unwrap_or_else(|e| panic!("spawn worker {rank}: {e}"));
            // `Child::wait` would close the child's stdin first, tripping
            // the watchdog of a still-running worker — hold the write
            // ends apart until the whole round is down.
            let pipe = child.stdin.take();
            Worker { rank, child, pipe, outcome: None }
        })
        .collect();

    let mut teardown_deadline: Option<Instant> = None;
    loop {
        let mut live = 0usize;
        for w in workers.iter_mut() {
            if w.outcome.is_some() {
                continue;
            }
            match w.child.try_wait() {
                Ok(Some(status)) => {
                    let class = classify_status(status);
                    if class.is_abnormal() && teardown_deadline.is_none() {
                        // First abnormal exit: give the ABORT fan-out a
                        // moment to finish the survivors, then kill.
                        teardown_deadline = Some(Instant::now() + TEARDOWN_GRACE);
                    }
                    w.outcome = Some(class);
                }
                Ok(None) => live += 1,
                Err(e) => {
                    eprintln!("ls-mp: supervisor: wait for worker {}: {e}", w.rank);
                    w.outcome = Some(FailureClass::Other(1));
                }
            }
        }
        if live == 0 {
            break;
        }
        if let Some(deadline) = teardown_deadline {
            if Instant::now() >= deadline {
                for w in workers.iter_mut() {
                    if w.outcome.is_none() {
                        let _ = w.child.kill();
                        match w.child.wait() {
                            Ok(status) => w.outcome = Some(classify_status(status)),
                            Err(_) => w.outcome = Some(FailureClass::Other(1)),
                        }
                    }
                }
                break;
            }
        }
        std::thread::sleep(REAP_POLL);
    }
    // Only now release the watchdog pipes: every worker has been reaped.
    for w in workers.iter_mut() {
        drop(w.pipe.take());
    }
    Round { outcomes: workers.into_iter().map(|w| w.outcome.unwrap()).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_classification_covers_the_failure_model() {
        assert_eq!(classify_exit(Some(0), None), FailureClass::Clean);
        assert_eq!(classify_exit(Some(113), None), FailureClass::Desync);
        assert_eq!(classify_exit(Some(114), None), FailureClass::Failover);
        assert_eq!(classify_exit(Some(124), None), FailureClass::Orphaned);
        assert_eq!(classify_exit(Some(115), None), FailureClass::Corruption);
        assert_eq!(classify_exit(Some(7), None), FailureClass::Other(7));
        assert_eq!(classify_exit(None, Some(6)), FailureClass::Crash(6));
        assert_eq!(classify_exit(None, None), FailureClass::Other(1));
    }

    #[test]
    fn culprit_prefers_the_causal_class() {
        // A crash outranks the desync that noticed it, which outranks
        // the collateral failovers.
        let round = Round {
            outcomes: vec![
                FailureClass::Failover,
                FailureClass::Crash(6),
                FailureClass::Desync,
                FailureClass::Failover,
            ],
        };
        assert_eq!(round.culprit(), Some((1, FailureClass::Crash(6))));

        // All-failover rounds blame the lowest such rank.
        let round = Round { outcomes: vec![FailureClass::Clean, FailureClass::Failover] };
        assert_eq!(round.culprit(), Some((1, FailureClass::Failover)));

        let clean = Round { outcomes: vec![FailureClass::Clean, FailureClass::Clean] };
        assert_eq!(clean.culprit(), None);
    }

    #[test]
    fn exit_codes_and_descriptions() {
        assert_eq!(FailureClass::Clean.exit_code(), 0);
        assert!(!FailureClass::Clean.is_abnormal());
        assert_eq!(FailureClass::Desync.exit_code(), 113);
        assert_eq!(FailureClass::Failover.exit_code(), 114);
        assert_eq!(FailureClass::Orphaned.exit_code(), 124);
        assert_eq!(FailureClass::Crash(9).exit_code(), 113);
        assert_eq!(FailureClass::Other(3).exit_code(), 3);
        assert_eq!(FailureClass::Corruption.exit_code(), 115);
        assert!(FailureClass::Corruption.describe().contains("corruption"));
        assert!(FailureClass::Crash(6).describe().contains("signal 6"));
        assert!(FailureClass::Crash(6).is_abnormal());
        // Causal ordering: a crash outranks corruption outranks desync.
        assert!(FailureClass::Crash(6) > FailureClass::Corruption);
        assert!(FailureClass::Corruption > FailureClass::Desync);
    }
}
