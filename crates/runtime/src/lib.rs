//! # ls-runtime
//!
//! A simulated multi-locale PGAS runtime: the stand-in for Chapel's
//! distributed execution model (and the cluster it runs on) that the
//! paper's algorithms are written against.
//!
//! ## What is simulated, and what is real
//!
//! *Real*: every algorithmic ingredient. Locales are OS threads with
//! disjoint memory regions ([`DistVec`]); communication happens only
//! through explicit one-sided operations — [`window::RmaWriteWindow::put`],
//! [`window::RmaReadWindow::get`], [`accum::AtomicAccumWindow`] for remote
//! atomic accumulation, and [`remote::remote_atomic_store`] for the paper's
//! `remoteAtomicWrite` flag protocol. Synchronization (sense-reversing
//! barriers, spin-with-backoff flag waits) is executed with real atomics,
//! so the producer/consumer protocol of Sec. 5.3 is genuinely exercised,
//! including its memory-ordering obligations.
//!
//! *Simulated*: the wire. All "remote" transfers are memcpys between
//! address ranges owned by different threads of one process. Every
//! operation is counted in [`stats::CommStats`] (operation counts, bytes,
//! message-size histogram), and `ls-perfmodel` converts those exact counts
//! into projected wall-clock times for a real interconnect.
//!
//! The memory-safety discipline follows MPI RMA epochs: windows borrow the
//! distributed vector (`&mut` for write windows), so Rust's borrow checker
//! enforces that an epoch's writers have exclusive access at the type
//! level, while in-epoch disjointness of writes is checked at runtime in
//! debug builds.
//!
//! ## Transports
//!
//! Since the [`transport`] module landed, "simulated wire" describes only
//! the *default* backend. `LS_TRANSPORT=multiprocess` runs the identical
//! one-sided API across real OS processes — shared-memory segment files
//! for puts/gets, TCP frames for accumulates/channels/barriers — with the
//! same visibility and determinism contract (see [`transport`] and
//! `docs/ARCHITECTURE.md`). Programs opt in by calling
//! [`transport::launch_if_requested`] first thing in `main`.
//!
//! ## Failure model
//!
//! Multiprocess jobs are supervised: the launcher side of
//! [`transport::launch_if_requested`] is a [`supervisor`] loop that
//! classifies worker exits and relaunches abnormal rounds (programs that
//! checkpoint resume bit-identically). Inside a job, peer failures are
//! detected in milliseconds (socket EOF + heartbeats), attributed with a
//! typed [`transport::TransportError`], and fanned out with an `ABORT`
//! frame so every rank exits promptly. Deterministic fault injection
//! ([`fault`], `LS_FAULT`) drives the whole machinery under test.
//!
//! Fail-stop supervision is complemented by a *fail-silent* defense:
//! CRC32C ([`crc32c()`]) over every wire frame and shared-memory segment
//! (`LS_INTEGRITY`), detected corruption surfacing as a recoverable
//! [`transport::TransportError::Corruption`] that solvers catch and
//! roll back from their newest checkpoint — see the "Silent-error
//! defense" section of `docs/ARCHITECTURE.md`.

#![warn(missing_docs)]

pub mod accum;
pub mod barrier;
pub mod cluster;
pub mod crc32c;
pub mod distvec;
pub mod fault;
pub mod remote;
pub mod stats;
pub mod supervisor;
pub mod transport;
pub mod window;

pub use accum::AtomicAccumWindow;
pub use barrier::SenseBarrier;
pub use cluster::{Cluster, ClusterSpec, LocaleCtx};
pub use crc32c::{crc32c, crc32c_append};
pub use distvec::{block_range, BlockLayout, DistVec};
pub use fault::{FaultAction, FaultKind, FaultPlan, FaultPlanError, FrameClass};
pub use stats::CommStats;
pub use supervisor::{classify_exit, FailureClass};
pub use transport::{
    Backend, IntegrityMode, MpRuntime, PairChannel, TransportError, TransportSnapshot,
    TransportStats,
};
pub use window::{RmaReadWindow, RmaWriteWindow};
