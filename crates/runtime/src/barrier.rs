//! A reusable sense-reversing spin barrier.
//!
//! Built from two atomics following the construction in *Rust Atomics and
//! Locks*; spinning uses `crossbeam`'s `Backoff` so oversubscribed
//! configurations (more simulated locales than hardware threads) yield to
//! the OS instead of burning a core.

use crossbeam::utils::Backoff;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable barrier for a fixed set of `n` participants.
#[derive(Debug)]
pub struct SenseBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SenseBarrier {
    /// A barrier for exactly `n` participants (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Self { n, count: AtomicUsize::new(0), sense: AtomicBool::new(false) }
    }

    /// The fixed participant count `n`.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Blocks until all `n` participants have called `wait`. The barrier
    /// is immediately reusable for the next phase.
    pub fn wait(&self) {
        // The phase everyone is waiting to *enter*.
        let my_sense = !self.sense.load(Ordering::Relaxed);
        // AcqRel: makes all writes before the barrier visible to everyone
        // after it (release on increment, acquire on the sense load below).
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
        } else {
            let backoff = Backoff::new();
            while self.sense.load(Ordering::Acquire) != my_sense {
                backoff.snooze();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_participant_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..100 {
            b.wait();
        }
    }

    #[test]
    fn phases_are_separated() {
        // Each thread increments a phase counter, crosses the barrier, and
        // checks that everyone finished the previous phase.
        const T: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = SenseBarrier::new(T);
        let counters: Vec<AtomicU64> = (0..ROUNDS).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..T {
                s.spawn(|| {
                    for (r, counter) in counters.iter().enumerate() {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // After the barrier, all T increments of round r
                        // must be visible.
                        assert_eq!(counter.load(Ordering::Relaxed), T as u64, "round {r}");
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn reusable_many_rounds_two_threads() {
        let barrier = SenseBarrier::new(2);
        let turn = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..500u64 {
                    // Even turns belong to thread A.
                    turn.store(2 * i, Ordering::Relaxed);
                    barrier.wait();
                    barrier.wait();
                }
            });
            s.spawn(|| {
                for i in 0..500u64 {
                    barrier.wait();
                    assert_eq!(turn.load(Ordering::Relaxed), 2 * i);
                    barrier.wait();
                }
            });
        });
    }
}
