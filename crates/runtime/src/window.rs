//! One-sided RMA windows over distributed vectors.
//!
//! A window opens an *epoch* on a [`DistVec`]: while the window is alive,
//! the vector is only accessible through the window's operations, and the
//! Rust borrow checker enforces it (write windows take `&mut`). Inside an
//! epoch:
//!
//! * [`RmaReadWindow::get`] — remote read (any number, freely concurrent);
//! * [`RmaWriteWindow::put`] — remote write; each element may be written
//!   **at most once per epoch** (the paper's conversion algorithms have
//!   exactly this write-once structure, with offsets precomputed so that
//!   all transfers are disjoint). Violations are detected at runtime by an
//!   interval ledger — always on, because a silent data race would
//!   invalidate every benchmark built on top.
//!
//! For repeatedly reused buffers (the producer/consumer matvec), see
//! [`crate::remote::BufferChannel`], whose flag protocol transfers
//! ownership back and forth instead.
//!
//! ## Multiprocess epochs
//!
//! Under the multiprocess transport ([`crate::transport`]) a window epoch
//! is a real collective. `new` publishes this rank's part to a
//! shared-memory segment and barriers (so every peer's segment exists
//! before any access); `get`/`put` on remote locales become
//! `pread`/`pwrite` on the owner's segment; dropping the window barriers
//! again — and a write window's drop additionally **reads every locale's
//! segment back** into the local replica, so after the epoch the whole
//! `DistVec` is coherent in every process (the paper's enumeration
//! pipeline relies on this full replication). Because epochs are
//! collective, all ranks must create and drop windows at the same program
//! point. The write-once ledger only observes this process's puts — a
//! cross-process overlap is caught by whichever rank issues both halves,
//! not globally.
//!
//! If a peer dies while an epoch's collective (open or close barrier) is
//! in flight, the barrier detects it within milliseconds and the job
//! aborts with the failure attributed to that rank — see the failure
//! model in [`crate::transport`]. Segment I/O errors (a peer's segment
//! vanishing mid-epoch) abort the same way rather than killing the
//! process silently.

use crate::cluster::LocaleCtx;
use crate::distvec::DistVec;
use crate::transport::{self, Segment};
use parking_lot::Mutex;
use std::marker::PhantomData;

/// Views one part as bytes for segment publication.
///
/// # Safety
/// `T` must be a padding-free POD (the window element types of this
/// workspace: `u32`/`u64`/`f64`/`Complex64`).
unsafe fn part_bytes<T: Copy>(part: &[T]) -> &[u8] {
    std::slice::from_raw_parts(part.as_ptr() as *const u8, std::mem::size_of_val(part))
}

fn new_segment_for<T: Copy>(lens: &[usize], own: &[T]) -> Option<Segment> {
    let mp = transport::active()?;
    let seg = mp.new_segment(std::mem::size_of::<T>(), lens);
    // SAFETY: window element types are padding-free PODs (doc contract).
    seg.publish_own(unsafe { part_bytes(own) });
    mp.barrier();
    Some(seg)
}

/// Read-only window (shared borrow ⇒ no writers can exist).
pub struct RmaReadWindow<'a, T: Copy + Sync> {
    parts: Vec<(*const T, usize)>,
    segment: Option<Segment>,
    _marker: PhantomData<&'a [T]>,
}

unsafe impl<'a, T: Copy + Sync> Send for RmaReadWindow<'a, T> {}
unsafe impl<'a, T: Copy + Sync> Sync for RmaReadWindow<'a, T> {}

impl<'a, T: Copy + Sync> RmaReadWindow<'a, T> {
    /// Opens a read epoch on `vec`. Multiprocess: collective (publishes
    /// this rank's part and barriers).
    pub fn new(vec: &'a DistVec<T>) -> Self {
        let lens: Vec<usize> = vec.parts().iter().map(Vec::len).collect();
        let me = transport::active().map(|mp| mp.rank()).unwrap_or(0);
        let segment = new_segment_for(&lens, vec.part(me));
        Self {
            parts: vec.parts().iter().map(|p| (p.as_ptr(), p.len())).collect(),
            segment,
            _marker: PhantomData,
        }
    }

    /// Element count of `locale`'s part.
    pub fn len(&self, locale: usize) -> usize {
        self.parts[locale].1
    }

    /// True when `locale`'s part is empty.
    pub fn is_empty(&self, locale: usize) -> bool {
        self.len(locale) == 0
    }

    /// Copies `dst.len()` elements starting at `offset` from `src_locale`'s
    /// part into `dst` (a remote get). Attributed to `ctx`'s locale.
    pub fn get(&self, ctx: &LocaleCtx<'_>, src_locale: usize, offset: usize, dst: &mut [T]) {
        let (ptr, len) = self.parts[src_locale];
        assert!(
            offset + dst.len() <= len,
            "get out of bounds: {}..{} of {len}",
            offset,
            offset + dst.len()
        );
        match &self.segment {
            Some(seg) if src_locale != ctx.locale() => {
                // SAFETY: dst is a unique &mut of padding-free PODs.
                let raw = unsafe {
                    std::slice::from_raw_parts_mut(
                        dst.as_mut_ptr() as *mut u8,
                        std::mem::size_of_val(dst),
                    )
                };
                seg.read(src_locale, offset, raw);
            }
            _ => {
                // SAFETY: shared borrow of the DistVec guarantees no
                // concurrent writers; the range is in bounds.
                unsafe {
                    std::ptr::copy_nonoverlapping(ptr.add(offset), dst.as_mut_ptr(), dst.len());
                }
            }
        }
        ctx.stats().record_get(std::mem::size_of_val(dst), src_locale != ctx.locale());
    }

    /// Borrow the caller's *own* part directly (local access is free in
    /// the PGAS model).
    pub fn local_part(&self, ctx: &LocaleCtx<'_>) -> &[T] {
        let (ptr, len) = self.parts[ctx.locale()];
        // SAFETY: as in `get`.
        unsafe { std::slice::from_raw_parts(ptr, len) }
    }
}

impl<'a, T: Copy + Sync> Drop for RmaReadWindow<'a, T> {
    fn drop(&mut self) {
        // Multiprocess: collective close (peers may read our segment up
        // to the last moment of the epoch).
        if let Some(seg) = &self.segment {
            seg.close();
        }
    }
}

/// Write window with write-once-per-epoch semantics.
pub struct RmaWriteWindow<'a, T: Copy + Send> {
    parts: Vec<(*mut T, usize)>,
    /// Per-destination ledger of claimed `[start, end)` ranges.
    claims: Vec<Mutex<Vec<(usize, usize)>>>,
    segment: Option<Segment>,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<'a, T: Copy + Send> Send for RmaWriteWindow<'a, T> {}
unsafe impl<'a, T: Copy + Send> Sync for RmaWriteWindow<'a, T> {}

impl<'a, T: Copy + Send> RmaWriteWindow<'a, T> {
    /// Opens a write epoch on `vec`. Multiprocess: collective (publishes
    /// this rank's current part content and barriers, so unwritten
    /// elements keep their values through the epoch).
    pub fn new(vec: &'a mut DistVec<T>) -> Self {
        let lens: Vec<usize> = vec.parts().iter().map(Vec::len).collect();
        let me = transport::active().map(|mp| mp.rank()).unwrap_or(0);
        let segment = new_segment_for(&lens, vec.part(me));
        let parts: Vec<(*mut T, usize)> =
            vec.parts_mut().iter_mut().map(|p| (p.as_mut_ptr(), p.len())).collect();
        let claims = (0..parts.len()).map(|_| Mutex::new(Vec::new())).collect();
        Self { parts, claims, segment, _marker: PhantomData }
    }

    /// Element count of `locale`'s part.
    pub fn len(&self, locale: usize) -> usize {
        self.parts[locale].1
    }

    /// Writes `src` into `dest_locale`'s part at `offset` (a remote put).
    ///
    /// # Panics
    /// Panics when the range is out of bounds or overlaps a range already
    /// written in this epoch — both indicate an offset-computation bug in
    /// the caller, which in a real distributed run would be silent data
    /// corruption.
    pub fn put(&self, ctx: &LocaleCtx<'_>, dest_locale: usize, offset: usize, src: &[T]) {
        if src.is_empty() {
            return;
        }
        let (ptr, len) = self.parts[dest_locale];
        assert!(
            offset + src.len() <= len,
            "put out of bounds: {}..{} of {len}",
            offset,
            offset + src.len()
        );
        let range = (offset, offset + src.len());
        {
            let mut ledger = self.claims[dest_locale].lock();
            for &(s, e) in ledger.iter() {
                assert!(
                    range.1 <= s || e <= range.0,
                    "overlapping puts in one epoch: {range:?} vs {:?}",
                    (s, e)
                );
            }
            ledger.push(range);
        }
        match &self.segment {
            Some(seg) => {
                // Multiprocess: every put (own part included) lands in the
                // destination's segment; drop reads the results back.
                // SAFETY: window element types are padding-free PODs.
                let raw = unsafe { part_bytes(src) };
                seg.write(dest_locale, offset, raw);
            }
            None => {
                // SAFETY: exclusive borrow of the DistVec for the window
                // lifetime; the ledger guarantees the range is written by
                // this call only.
                unsafe {
                    std::ptr::copy_nonoverlapping(src.as_ptr(), ptr.add(offset), src.len());
                }
            }
        }
        ctx.stats().record_put(std::mem::size_of_val(src), dest_locale != ctx.locale());
    }
}

impl<'a, T: Copy + Send> Drop for RmaWriteWindow<'a, T> {
    fn drop(&mut self) {
        let Some(seg) = &self.segment else { return };
        let mp = transport::active().expect("segment implies active transport");
        // Unwinding out of a poisoned epoch: the close barrier would
        // hang against peers that are unwinding too, and rollback
        // discards the epoch's data anyway — skip read-back and close.
        if mp.is_poisoned() || std::thread::panicking() {
            return;
        }
        // Multiprocess epoch close: barrier (every rank's puts are in the
        // segments), then replicate every locale's part back into local
        // memory — the algorithms built on write epochs (distributed
        // enumeration) expect the full vector to be readable afterwards.
        // The read-back also runs the first-read CRC verification, so a
        // corrupt put surfaces here, on every rank, before the data is
        // consumed.
        mp.barrier();
        for (locale, &(ptr, len)) in self.parts.iter().enumerate() {
            if len == 0 {
                continue;
            }
            // SAFETY: exclusive borrow of the DistVec for the window
            // lifetime; every rank performs the same read-back.
            let raw = unsafe {
                std::slice::from_raw_parts_mut(ptr as *mut u8, len * std::mem::size_of::<T>())
            };
            seg.read(locale, 0, raw);
        }
        seg.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterSpec};

    #[test]
    fn all_to_all_puts() {
        // Locale l writes value l into slot l of every other locale.
        let n = 4usize;
        let cluster = Cluster::new(ClusterSpec::new(n, 1));
        let mut data = DistVec::<u64>::zeros(&vec![n; n]);
        {
            let win = RmaWriteWindow::new(&mut data);
            cluster.run(|ctx| {
                let me = ctx.locale() as u64;
                for dest in 0..n {
                    win.put(ctx, dest, ctx.locale(), &[me + 100]);
                }
            });
        }
        for l in 0..n {
            let expect: Vec<u64> = (0..n as u64).map(|i| i + 100).collect();
            assert_eq!(data.part(l), &expect[..]);
        }
        let total = cluster.stats_total();
        assert_eq!(total.puts, (n * (n - 1)) as u64); // remote only
        assert_eq!(total.local_ops, n as u64);
        assert_eq!(total.put_bytes, (n * (n - 1) * 8) as u64);
    }

    #[test]
    fn gets_read_remote_parts() {
        let n = 3usize;
        let cluster = Cluster::new(ClusterSpec::new(n, 1));
        let data =
            DistVec::from_parts(vec![vec![1u64, 2, 3], vec![10, 20, 30], vec![100, 200, 300]]);
        let win = RmaReadWindow::new(&data);
        let sums = cluster.run(|ctx| {
            let mut buf = [0u64; 3];
            let mut sum = 0u64;
            for src in 0..n {
                win.get(ctx, src, 0, &mut buf);
                sum += buf.iter().sum::<u64>();
            }
            // Local part direct access.
            assert_eq!(win.local_part(ctx).len(), 3);
            sum
        });
        assert_eq!(sums, vec![666, 666, 666]);
        assert_eq!(cluster.stats_total().gets, (n * (n - 1)) as u64);
    }

    #[test]
    #[should_panic(expected = "overlapping puts")]
    fn overlap_detected() {
        let cluster = Cluster::new(ClusterSpec::new(1, 1));
        let mut data = DistVec::<u32>::zeros(&[8]);
        let win = RmaWriteWindow::new(&mut data);
        cluster.run(|ctx| {
            win.put(ctx, 0, 0, &[1, 2, 3]);
            win.put(ctx, 0, 2, &[4, 5]); // overlaps element 2
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn put_bounds_checked() {
        let cluster = Cluster::new(ClusterSpec::new(1, 1));
        let mut data = DistVec::<u32>::zeros(&[4]);
        let win = RmaWriteWindow::new(&mut data);
        cluster.run(|ctx| {
            win.put(ctx, 0, 3, &[1, 2]);
        });
    }

    #[test]
    fn adjacent_puts_are_fine() {
        let cluster = Cluster::new(ClusterSpec::new(2, 1));
        let mut data = DistVec::<u32>::zeros(&[6, 0]);
        let win = RmaWriteWindow::new(&mut data);
        cluster.run(|ctx| {
            if ctx.locale() == 0 {
                win.put(ctx, 0, 0, &[1, 2, 3]);
            } else {
                win.put(ctx, 0, 3, &[4, 5, 6]);
            }
        });
        drop(win);
        assert_eq!(data.part(0), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn message_size_histogram_populated() {
        let cluster = Cluster::new(ClusterSpec::new(2, 1));
        let mut data = DistVec::<u8>::zeros(&[4096, 4096]);
        let win = RmaWriteWindow::new(&mut data);
        cluster.run(|ctx| {
            if ctx.locale() == 0 {
                let buf = vec![7u8; 2048];
                win.put(ctx, 1, 0, &buf); // 2048 bytes -> bucket 12
            }
        });
        let snap = cluster.stats()[0].snapshot();
        assert_eq!(snap.size_histogram[12], 1);
        assert!((snap.mean_message_bytes() - 2048.0).abs() < 1e-9);
    }
}
