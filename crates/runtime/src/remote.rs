//! The producer/consumer buffer channel of the paper's Fig. 5, plus the
//! `remoteAtomicWrite` primitive.
//!
//! A [`BufferChannel`] models one `RemoteBuffer`/`LocalBuffer` pair: a
//! fixed-capacity staging area on the consumer's locale, a flag on the
//! producer's side (`producer_free`: may I fill?) and a flag on the
//! consumer's side (`consumer_full`: is there data?). Each side spins only
//! on *its own* flag — the property the paper highlights as the key to
//! avoiding communication in the wait loops — and flips the peer's flag
//! with a `remoteAtomicWrite` (here: a release store plus a statistics
//! record standing in for the fastOn active message).
//!
//! Ownership of the buffer alternates strictly: producer between a
//! successful [`BufferChannel::try_claim`] and [`BufferChannel::send`];
//! consumer between a successful [`BufferChannel::try_recv`]'s CAS and its
//! returning flag store. The Release/Acquire pairs on the two flags make
//! the hand-off a happens-before edge, so the unsynchronized buffer copy
//! inside is race-free.

use crate::stats::CommStats;
use crossbeam::utils::Backoff;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The paper's `remoteAtomicWrite`: sets a flag that (conceptually) lives
/// on another locale. Implemented as a release store; the statistics
/// record stands in for the fastOn active message.
#[inline]
pub fn remote_atomic_store(stats: &CommStats, flag: &AtomicBool, value: bool) {
    flag.store(value, Ordering::Release);
    stats.record_flag_message();
}

/// Spins (with exponential backoff and eventual yielding) until `flag`
/// reads `expected`.
#[inline]
pub fn spin_until(flag: &AtomicBool, expected: bool) {
    let backoff = Backoff::new();
    while flag.load(Ordering::Acquire) != expected {
        backoff.snooze();
    }
}

/// One producer→consumer staging buffer (a RemoteBuffer/LocalBuffer pair).
pub struct BufferChannel<T> {
    buf: UnsafeCell<Box<[T]>>,
    len: AtomicUsize,
    /// Producer-side flag: true ⇒ the producer may claim and fill.
    producer_free: AtomicBool,
    /// Consumer-side flag: true ⇒ the buffer holds unconsumed data.
    consumer_full: AtomicBool,
    /// Producer signals it will send nothing more.
    closed: AtomicBool,
}

// SAFETY: the flag protocol (see module docs) serializes all access to
// `buf` and `len` between exactly one producer and one consumer at a time.
unsafe impl<T: Send> Sync for BufferChannel<T> {}

impl<T: Copy + Default> BufferChannel<T> {
    /// A channel whose single buffer holds up to `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            buf: UnsafeCell::new(vec![T::default(); capacity].into_boxed_slice()),
            len: AtomicUsize::new(0),
            producer_free: AtomicBool::new(true),
            consumer_full: AtomicBool::new(false),
            closed: AtomicBool::new(false),
        }
    }

    /// The buffer's element capacity.
    pub fn capacity(&self) -> usize {
        // SAFETY: the boxed slice's length is immutable after
        // construction; reading it never races with content writes.
        unsafe { (&*self.buf.get()).len() }
    }

    /// Producer: tries to claim the buffer for filling. On success the
    /// producer owns the buffer until [`Self::send`].
    #[inline]
    pub fn try_claim(&self) -> bool {
        self.producer_free
            .compare_exchange(true, false, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Producer: blocking claim.
    pub fn claim(&self) {
        let backoff = Backoff::new();
        while !self.try_claim() {
            backoff.snooze();
        }
    }

    /// Producer: copies `data` into the (claimed) buffer and publishes it
    /// to the consumer. `remote` says whether the consumer lives on a
    /// different locale (for statistics).
    ///
    /// # Panics
    /// Panics if `data` exceeds the capacity. Calling `send` without a
    /// successful claim is a protocol violation (not checked — the flags
    /// would desynchronize, and tests would catch the lost data).
    pub fn send(&self, stats: &CommStats, remote: bool, data: &[T]) {
        assert!(data.len() <= self.capacity(), "buffer overflow");
        // SAFETY: claim succeeded, so the producer exclusively owns `buf`.
        unsafe {
            let buf = &mut *self.buf.get();
            buf[..data.len()].copy_from_slice(data);
        }
        self.len.store(data.len(), Ordering::Relaxed);
        stats.record_put(std::mem::size_of_val(data), remote);
        // Publish: the paper's remoteAtomicWrite on the consumer's flag.
        remote_atomic_store(stats, &self.consumer_full, true);
    }

    /// Producer: declares the stream finished. Must be called after the
    /// last `send` returned.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// True once the producer declared the stream finished.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Consumer: tries to take a published buffer. On success the contents
    /// are appended to `out` and the producer's flag is released.
    pub fn try_recv(&self, stats: &CommStats, remote: bool, out: &mut Vec<T>) -> bool {
        if self
            .consumer_full
            .compare_exchange(true, false, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        let n = self.len.load(Ordering::Relaxed);
        // SAFETY: the CAS above acquired exclusive ownership of `buf`.
        unsafe {
            let buf = &*self.buf.get();
            out.extend_from_slice(&buf[..n]);
        }
        let _ = remote;
        // Release the producer: remoteAtomicWrite on its flag.
        remote_atomic_store(stats, &self.producer_free, true);
        true
    }

    /// Consumer: is the channel certainly drained? Only meaningful after
    /// a failed `try_recv`: if `closed` was observed `true` *and then*
    /// another `try_recv` fails, no more data can arrive (the producer's
    /// final `send` happens-before `close`).
    pub fn drained_after_failed_recv(&self, stats: &CommStats, out: &mut Vec<T>) -> bool {
        if !self.is_closed() {
            return false;
        }
        !self.try_recv(stats, false, out)
    }

    /// Re-arms a fully drained channel for another round (the paper reuses
    /// its buffers across matrix-vector products to avoid reallocation and
    /// re-pinning).
    ///
    /// # Panics
    /// Panics if the channel is not in the idle state (closed producer,
    /// no unconsumed data, buffer free).
    pub fn reset(&self) {
        assert!(self.is_closed(), "reset of an open channel");
        assert!(!self.consumer_full.load(Ordering::Acquire), "reset with unconsumed data");
        assert!(
            self.producer_free.load(Ordering::Acquire),
            "reset while producer holds the buffer"
        );
        self.closed.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_transfers_everything_in_order() {
        let chan = BufferChannel::<u64>::new(16);
        let stats_p = CommStats::new();
        let stats_c = CommStats::new();
        let total: u64 = 1000;
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut next = 0u64;
                let mut batch = Vec::new();
                while next < total {
                    batch.clear();
                    while next < total && batch.len() < 16 {
                        batch.push(next);
                        next += 1;
                    }
                    chan.claim();
                    chan.send(&stats_p, true, &batch);
                }
                chan.close();
            });
            s.spawn(|| {
                let mut got = Vec::new();
                let backoff = Backoff::new();
                loop {
                    if chan.try_recv(&stats_c, true, &mut got) {
                        backoff.reset();
                        continue;
                    }
                    if chan.drained_after_failed_recv(&stats_c, &mut got) {
                        break;
                    }
                    backoff.snooze();
                }
                let expect: Vec<u64> = (0..total).collect();
                assert_eq!(got, expect);
            });
        });
        // Producer recorded one put per batch; batches of 16 → 63 sends.
        assert_eq!(stats_p.snapshot().puts, total.div_ceil(16));
        // Each send and each recv flips one flag.
        assert_eq!(
            stats_p.snapshot().flag_messages + stats_c.snapshot().flag_messages,
            2 * total.div_ceil(16)
        );
    }

    #[test]
    fn close_without_data() {
        let chan = BufferChannel::<u32>::new(4);
        let stats = CommStats::new();
        chan.close();
        let mut out = Vec::new();
        assert!(!chan.try_recv(&stats, false, &mut out));
        assert!(chan.drained_after_failed_recv(&stats, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn claim_blocks_until_consumed() {
        let chan = BufferChannel::<u32>::new(2);
        let stats = CommStats::new();
        assert!(chan.try_claim());
        chan.send(&stats, false, &[1, 2]);
        // Buffer full and unconsumed: claim must fail.
        assert!(!chan.try_claim());
        let mut out = Vec::new();
        assert!(chan.try_recv(&stats, false, &mut out));
        assert_eq!(out, vec![1, 2]);
        // Now the producer may claim again.
        assert!(chan.try_claim());
    }

    #[test]
    #[should_panic(expected = "buffer overflow")]
    fn capacity_enforced() {
        let chan = BufferChannel::<u8>::new(2);
        let stats = CommStats::new();
        chan.claim();
        chan.send(&stats, false, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "reset of an open channel")]
    fn reset_of_open_channel_panics() {
        let chan = BufferChannel::<u8>::new(2);
        chan.reset();
    }

    #[test]
    #[should_panic(expected = "reset with unconsumed data")]
    fn reset_with_pending_data_panics() {
        let chan = BufferChannel::<u8>::new(2);
        let stats = CommStats::new();
        chan.claim();
        chan.send(&stats, false, &[1]);
        chan.close();
        chan.reset();
    }

    #[test]
    fn reset_rearms_for_a_second_round() {
        let chan = BufferChannel::<u8>::new(2);
        let stats = CommStats::new();
        for round in 0..3 {
            chan.claim();
            chan.send(&stats, false, &[round as u8]);
            chan.close();
            let mut out = Vec::new();
            assert!(chan.try_recv(&stats, false, &mut out));
            assert_eq!(out, vec![round as u8]);
            assert!(chan.drained_after_failed_recv(&stats, &mut out));
            chan.reset();
        }
    }

    #[test]
    fn spin_until_and_remote_store() {
        let flag = AtomicBool::new(false);
        let stats = CommStats::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                remote_atomic_store(&stats, &flag, true);
            });
            spin_until(&flag, true);
        });
        assert_eq!(stats.snapshot().flag_messages, 1);
    }
}
