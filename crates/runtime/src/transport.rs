//! Pluggable PGAS transport: the layer that decides what "remote" means.
//!
//! Every one-sided primitive of this crate ([`crate::window`],
//! [`crate::accum`], [`crate::cluster::LocaleCtx::barrier_wait`], the
//! producer/consumer [`PairChannel`]) runs over one of two backends,
//! selected by the `LS_TRANSPORT` environment variable:
//!
//! * **`inprocess`** (default) — the historical backend: locales are
//!   threads of one process and every transfer is a memcpy. Hermetic,
//!   deterministic, and what `cargo test` exercises.
//! * **`multiprocess`** — one OS process per locale. A launcher
//!   ([`launch_if_requested`]) re-executes the current binary once per
//!   locale; workers rendezvous through a job directory, exchange window
//!   puts/gets through shared-memory segment files (`/dev/shm`), and run
//!   accumulate/channel/barrier traffic over a full mesh of TCP sockets
//!   with frames serialized through the `bytes` shim.
//!
//! # Execution model (multiprocess)
//!
//! The multiprocess backend is SPMD, like MPI: every worker process runs
//! the *identical* program. Collective operations (barriers, allgathers,
//! the reductions of `ls-eigen`'s distributed vectors) are matched up
//! purely by program order — each process stamps its `k`-th collective
//! with sequence number `k`, and the deterministic control flow that the
//! workspace already guarantees (fixed reduction trees, counter-derived
//! RNG, identical convergence scalars on every rank) makes the `k`-th
//! collective the same operation everywhere. A desynchronized sequence
//! number is detected and aborts the job rather than deadlocking.
//!
//! Distributed vectors keep their full shape in every process; only rank
//! `r`'s part is authoritative on rank `r`. One-sided epochs re-replicate
//! where needed: an [`crate::RmaWriteWindow`] epoch ends by reading every
//! locale's segment back, so data produced by distributed enumeration is
//! fully replicated, while Krylov vectors are never replicated — their
//! reductions combine per-rank partials in rank order, bit-identical to
//! the in-process locale-ordered sum.
//!
//! # Visibility and ordering contract
//!
//! Both backends satisfy the same contract (docs/ARCHITECTURE.md states
//! it in full):
//!
//! * puts/gets are only ordered by barriers — a get may not observe a
//!   concurrent epoch's put until a barrier separates them;
//! * remote accumulates become visible to the owner no later than the
//!   next barrier (TCP frames are FIFO per peer, and the barrier's
//!   collective frame travels behind every earlier accumulate);
//! * channel sends arrive in order per (source, destination) pair;
//! * barriers order everything: an operation issued before a barrier on
//!   one rank happens-before anything issued after that barrier anywhere.

use crate::crc32c::{crc32c, crc32c_append};
use crate::fault::{FaultKind, FaultPlan, FrameClass};
use crate::remote::BufferChannel;
use crate::stats::CommStats;
use bytes::{Buf, BufMut};
use crossbeam::utils::Backoff;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fs::{self, File};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Backend selector (`LS_TRANSPORT=inprocess|multiprocess`).
pub const ENV_TRANSPORT: &str = "LS_TRANSPORT";
/// Locale count for the multiprocess launcher (`LS_LOCALES=N`).
pub const ENV_LOCALES: &str = "LS_LOCALES";
/// Internal: this worker's rank. Set by the launcher, never by hand.
pub const ENV_RANK: &str = "LS_MP_RANK";
/// Internal: the rendezvous/job directory. Set by the launcher.
pub const ENV_JOB: &str = "LS_MP_JOB";
/// Internal: enables the parent-death watchdog in workers.
pub const ENV_WATCHDOG: &str = "LS_MP_WATCHDOG";
/// Collective timeout override in seconds (default 180).
pub const ENV_TIMEOUT: &str = "LS_MP_TIMEOUT_SECS";
/// Supervisor retry budget: how many times an abnormally-exited job is
/// relaunched before the supervisor gives up (default 2).
pub const ENV_MAX_RESTARTS: &str = "LS_MP_MAX_RESTARTS";
/// Base supervisor backoff in milliseconds, doubled per retry
/// (default 250).
pub const ENV_BACKOFF_MS: &str = "LS_MP_BACKOFF_MS";
/// Heartbeat interval in milliseconds (default 500; 0 disables).
pub const ENV_HEARTBEAT_MS: &str = "LS_MP_HEARTBEAT_MS";
/// Peer-silence threshold in seconds: a peer that sends nothing (not
/// even heartbeats) for this long while we wait on it is declared failed
/// (default 30; 0 disables).
pub const ENV_SILENCE_SECS: &str = "LS_MP_SILENCE_SECS";
/// Internal: which supervisor incarnation this worker belongs to (0 on
/// the first launch). Set by the supervisor, read by fault injection and
/// [`restart_count`].
pub const ENV_RESTART_COUNT: &str = "LS_MP_RESTART_COUNT";
/// Integrity-checking level (`LS_INTEGRITY=off|wire|full`, default
/// `full`). See [`IntegrityMode`].
pub const ENV_INTEGRITY: &str = "LS_INTEGRITY";

const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(60);
const DEFAULT_COLLECTIVE_TIMEOUT: Duration = Duration::from_secs(180);
const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(500);
const DEFAULT_SILENCE: Duration = Duration::from_secs(30);

/// Exit code of a worker whose launcher died (watchdog).
pub(crate) const EXIT_ORPHANED: i32 = 124;
/// Exit code for transport protocol failures (desync, timeout).
pub(crate) const EXIT_PROTOCOL: i32 = 113;
/// Exit code of a rank that aborted because a *peer* failed (either it
/// detected the failure itself or an `ABORT` frame told it to die).
pub(crate) const EXIT_FAILOVER: i32 = 114;
/// Exit code of a rank that died on *unrecovered* data corruption: a
/// CRC/checksum violation that escaped (or exhausted) the solver-level
/// rollback path and unwound out of the program.
pub(crate) const EXIT_CORRUPTION: i32 = 115;

// Wire frame tags. Every frame travels on the single TCP stream between
// an ordered pair of ranks, so per-peer FIFO is a transport guarantee.
const TAG_COLL: u8 = 1;
const TAG_CHAN: u8 = 2;
const TAG_CLOSE: u8 = 3;
const TAG_CREDIT: u8 = 4;
const TAG_ACC: u8 = 5;
/// Job-abort fan-out: origin rank, exit code, reason. A rank that
/// detects an unrecoverable failure sends this to every live peer so the
/// whole job exits promptly instead of burning the collective timeout.
const TAG_ABORT: u8 = 6;
/// Heartbeat: a single tag byte. Carries no data — its only job is to
/// advance the receiver's last-traffic clock so silent-peer detection
/// can distinguish "slow collective" from "hung process".
const TAG_PING: u8 = 7;
/// Corruption fan-out: a rank that detected a CRC/checksum violation
/// tells every peer, so ranks that are *not* currently waiting on the
/// detector still learn within one frame time instead of stalling into
/// the collective timeout. Unlike `ABORT` this is recoverable: the
/// receiver poisons its collectives (they surface
/// [`TransportError::Corruption`]) and the solver above rolls back.
const TAG_POISON: u8 = 8;

/// Collective sequence numbers carry the recovery epoch in their top 16
/// bits (`(epoch << EPOCH_SHIFT) | seq`): after a corruption rollback
/// every rank bumps its epoch, resets `seq`, and silently discards
/// queued frames from the poisoned epoch — the one desync that is
/// expected and benign.
const EPOCH_SHIFT: u32 = 48;

/// A typed, attributed transport failure. This is what replaced the
/// pile of anonymous `fatal()` exits: every failure names the peer (or
/// protocol condition) responsible, and the runtime's internal abort
/// path turns it into a prompt, job-wide abort with a matching exit
/// code (an `ABORT` frame fans out so every rank exits naming the
/// origin).
#[derive(Clone, Debug)]
pub enum TransportError {
    /// A peer's mesh connection died (EOF / reset) or a send to it
    /// failed. `detection` is how long the failure went unnoticed from
    /// this rank's perspective (wait start or socket death, whichever is
    /// later — sub-second in practice, never the collective timeout).
    PeerFailed {
        /// The failed peer's rank.
        peer: usize,
        /// What was observed (connection lost, send failed, silent...).
        detail: String,
        /// Latency from failure to detection on this rank.
        detection: Duration,
    },
    /// A collective arrived with the wrong sequence number: the SPMD
    /// ranks are no longer executing the same program.
    Desync {
        /// The peer whose frame mismatched.
        peer: usize,
        /// The sequence number this rank expected.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
    /// A collective hit the `LS_MP_TIMEOUT_SECS` deadline with the peer
    /// still connected (backstop for failures EOF cannot see).
    Timeout {
        /// The peer that never delivered.
        peer: usize,
        /// The collective's sequence number.
        seq: u64,
        /// How long this rank waited.
        waited: Duration,
    },
    /// A peer told this rank to die (`ABORT` frame), or the local abort
    /// path is already underway.
    Aborted {
        /// The rank where the failure originated.
        origin: usize,
        /// The originating failure, as text.
        reason: String,
    },
    /// A protocol invariant broke (unknown frame tag, unregistered
    /// accumulate window, segment IO failure, ...).
    Protocol {
        /// What broke.
        detail: String,
    },
    /// Data corruption caught by the integrity layer: a wire frame or
    /// shared-memory segment failed its CRC32C, or a matvec checksum
    /// invariant broke. Unlike every other variant this one is
    /// *recoverable*: it unwinds as a catchable panic so the solver can
    /// roll back to its newest checkpoint instead of the job dying.
    Corruption {
        /// The rank whose data was corrupt (the frame's sender, the
        /// segment part's owner, or the locale whose partial broke the
        /// checksum invariant).
        peer: usize,
        /// What carried the corruption (`"coll"`, `"chan"`, `"accum"`,
        /// `"window"`, `"abft"`).
        frame: String,
        /// Which check failed (CRC mismatch, checksum-vector drift...).
        kind: String,
    },
}

impl TransportError {
    /// The process exit code this failure maps to: protocol breakages
    /// keep the historical 113, while dying *because a peer died* is 114
    /// so the supervisor can tell the culprit from the collateral.
    pub fn exit_code(&self) -> i32 {
        match self {
            TransportError::PeerFailed { .. } | TransportError::Aborted { .. } => EXIT_FAILOVER,
            TransportError::Desync { .. }
            | TransportError::Timeout { .. }
            | TransportError::Protocol { .. } => EXIT_PROTOCOL,
            TransportError::Corruption { .. } => EXIT_CORRUPTION,
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::PeerFailed { peer, detail, detection } => write!(
                f,
                "peer rank {peer} failed ({detail}) — detected in {:.3}s",
                detection.as_secs_f64()
            ),
            TransportError::Desync { peer, expected, got } => write!(
                f,
                "collective desync with rank {peer}: expected seq {expected}, got {got}"
            ),
            TransportError::Timeout { peer, seq, waited } => write!(
                f,
                "collective timeout waiting for rank {peer} (seq {seq}, waited {:.0}s)",
                waited.as_secs_f64()
            ),
            TransportError::Aborted { origin, reason } => {
                write!(f, "aborted by rank {origin}: {reason}")
            }
            TransportError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            TransportError::Corruption { peer, frame, kind } => {
                write!(f, "corrupt {frame} from rank {peer} ({kind})")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Which supervisor incarnation this process belongs to: 0 on a fresh
/// launch, `k` after the supervisor's `k`-th relaunch. Workers read it
/// to arm fault injection; [`TransportSnapshot::restarts`] surfaces it
/// in benchmark output.
pub fn restart_count() -> u64 {
    static COUNT: OnceLock<u64> = OnceLock::new();
    *COUNT.get_or_init(|| {
        std::env::var(ENV_RESTART_COUNT).ok().and_then(|v| v.parse().ok()).unwrap_or(0)
    })
}

/// How much end-to-end integrity checking the runtime performs
/// (`LS_INTEGRITY=off|wire|full`):
///
/// * **`off`** — no checksums anywhere. The baseline the bench guard
///   measures overhead against.
/// * **`wire`** — every data-bearing TCP frame (collective, channel,
///   accumulate) carries a CRC32C over its header and payload, verified
///   on receive.
/// * **`full`** (default) — `wire`, plus CRC32C sidecars over
///   shared-memory segment parts verified on first remote read, plus the
///   matvec checksum-vector invariant in `ls-dist`.
///
/// The mode must be uniform across ranks (the supervisor exports one
/// environment to every worker): it changes the wire format.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IntegrityMode {
    /// No integrity checking.
    Off,
    /// Frame CRCs only.
    Wire,
    /// Frame CRCs + segment CRCs + matvec checksum vectors.
    Full,
}

impl IntegrityMode {
    /// Reads `LS_INTEGRITY` **fresh** (no caching): benchmark drivers
    /// toggle it between sections to measure overhead in one process.
    /// The multiprocess runtime caches its own copy at connect time,
    /// because the wire format cannot change mid-job.
    ///
    /// # Panics
    /// Panics on an unrecognized value — a typo must not silently
    /// disable the defense.
    pub fn from_env() -> IntegrityMode {
        match std::env::var(ENV_INTEGRITY) {
            Err(_) => IntegrityMode::Full,
            Ok(v) => match v.as_str() {
                "" | "full" => IntegrityMode::Full,
                "wire" => IntegrityMode::Wire,
                "off" => IntegrityMode::Off,
                other => {
                    panic!("{ENV_INTEGRITY}={other:?}: expected \"off\", \"wire\" or \"full\"")
                }
            },
        }
    }

    /// True when wire frames carry CRCs (`wire` or `full`).
    #[inline]
    pub fn wire(self) -> bool {
        self != IntegrityMode::Off
    }

    /// True when segment sidecars and matvec checksums are on (`full`).
    #[inline]
    pub fn full(self) -> bool {
        self == IntegrityMode::Full
    }

    /// Stable lowercase name, as used in `LS_INTEGRITY` and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            IntegrityMode::Off => "off",
            IntegrityMode::Wire => "wire",
            IntegrityMode::Full => "full",
        }
    }
}

/// Which transport the process runs on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Locales are threads of this process; transfers are memcpys.
    InProcess,
    /// Locales are OS processes; transfers cross real process boundaries.
    MultiProcess,
}

impl Backend {
    /// Stable lowercase name (`"inprocess"` / `"multiprocess"`), as used
    /// in `LS_TRANSPORT` and benchmark JSON labels.
    pub fn name(self) -> &'static str {
        match self {
            Backend::InProcess => "inprocess",
            Backend::MultiProcess => "multiprocess",
        }
    }
}

/// The backend requested through `LS_TRANSPORT`.
///
/// # Panics
/// Panics on an unrecognized value — a typo must not silently fall back
/// to simulated numbers.
pub fn requested_backend() -> Backend {
    match std::env::var(ENV_TRANSPORT) {
        Err(_) => Backend::InProcess,
        Ok(v) => match v.as_str() {
            "" | "inprocess" => Backend::InProcess,
            "multiprocess" => Backend::MultiProcess,
            other => {
                panic!("{ENV_TRANSPORT}={other:?}: expected \"inprocess\" or \"multiprocess\"")
            }
        },
    }
}

/// The backend this process is actually running on: `MultiProcess` only
/// when the process is a connected worker of a multiprocess job.
pub fn backend() -> Backend {
    if active().is_some() {
        Backend::MultiProcess
    } else {
        Backend::InProcess
    }
}

/// True on the rank whose output is canonical (rank 0), and always true
/// in-process. Gate file writes (benchmark JSON, reports) on this so a
/// multiprocess job does not race N identical writers.
pub fn is_primary() -> bool {
    active().map(|mp| mp.rank() == 0).unwrap_or(true)
}

static RUNTIME: OnceLock<Option<&'static MpRuntime>> = OnceLock::new();

/// The multiprocess runtime of this worker, or `None` when the process
/// is not part of a multiprocess job. Initializes (rendezvous + mesh
/// connect) on first call when `LS_MP_RANK` is present.
pub fn active() -> Option<&'static MpRuntime> {
    *RUNTIME.get_or_init(|| {
        if std::env::var_os(ENV_RANK).is_some() {
            let rt: &'static MpRuntime = Box::leak(Box::new(MpRuntime::connect()));
            rt.spawn_receivers();
            rt.spawn_watchdog();
            rt.spawn_heartbeat();
            Some(rt)
        } else {
            None
        }
    })
}

/// The multiprocess entry hook: call this first in `main` of any binary
/// that supports `LS_TRANSPORT=multiprocess`.
///
/// * In-process backend requested: returns immediately (no-op).
/// * Worker process (spawned by the supervisor): connects the mesh and
///   returns — the program then runs SPMD.
/// * Supervisor (multiprocess requested, not yet a worker): spawns
///   `LS_LOCALES` copies of the current binary with identical arguments,
///   reaps them, classifies abnormal exits, relaunches the job (bounded
///   by `LS_MP_MAX_RESTARTS`, resuming from checkpoints where the
///   program saves them), and **exits** — it never returns. See
///   [`crate::supervisor`].
pub fn launch_if_requested() {
    if requested_backend() != Backend::MultiProcess {
        return;
    }
    if std::env::var_os(ENV_RANK).is_some() {
        // Worker: ensure the runtime is up before any Cluster exists.
        let _ = active();
        return;
    }
    crate::supervisor::run_supervisor();
}

/// Fast failure poll for spin loops that wait on peer progress outside a
/// collective (producer/consumer drains). No-op on the in-process
/// backend. On the multiprocess backend, aborts the job promptly when a
/// peer has died — such loops otherwise spin until the full collective
/// timeout because nothing they wait on ever arrives.
///
/// Only call this from code that runs strictly *between* two barriers of
/// a product (every `PcEngine` drain does): inside that bracket a peer
/// cannot have exited cleanly, so a dead connection is always a failure.
pub fn poll_failure() {
    if let Some(mp) = active() {
        mp.check_peers_alive("peer lost during producer/consumer product");
    }
}

/// Unrecoverable failure *before* the mesh exists (rendezvous, bad
/// worker environment): there is no one to send an `ABORT` to yet, so
/// die loudly and let the supervisor classify the exit.
fn fatal(msg: &str) -> ! {
    let rank = std::env::var(ENV_RANK).unwrap_or_default();
    eprintln!("ls-mp[rank {rank}]: fatal: {msg}");
    std::process::exit(EXIT_PROTOCOL);
}

/// One collective inbox per peer: frames arrive FIFO from the peer's
/// receiver thread, the main thread pops them in sequence order.
struct CollQueue {
    q: Mutex<VecDeque<(u64, Vec<u8>)>>,
    cv: Condvar,
}

/// Receiver side of one multiprocess channel.
struct ChanInbox {
    q: Mutex<VecDeque<Vec<u8>>>,
    closed: AtomicBool,
}

/// Sender-side flow control of one multiprocess channel: mirrors the
/// single-buffer ownership of the in-process [`BufferChannel`] (one
/// outstanding batch; a credit returns when the consumer took it).
struct ChanCredits {
    avail: AtomicUsize,
}

/// Owner-side target of a registered accumulation window.
#[derive(Copy, Clone)]
struct AccTarget {
    /// Base address of the owner part's first `AtomicU64` lane.
    base: usize,
    /// Scalar element count of the owner part.
    len: usize,
    /// `f64` lanes per scalar element.
    lanes: usize,
}

/// Wire-level statistics of the multiprocess backend: real bytes moved,
/// not simulated counts. [`CommStats`] keeps recording the *logical*
/// one-sided operations on both backends; these counters exist only when
/// bytes genuinely cross a process boundary.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Frames written to TCP peers.
    pub tx_frames: AtomicU64,
    /// Bytes written to TCP peers (headers + payloads).
    pub tx_bytes: AtomicU64,
    /// Frames read from TCP peers.
    pub rx_frames: AtomicU64,
    /// Bytes read from TCP peers.
    pub rx_bytes: AtomicU64,
    /// Bytes read from other locales' shared-memory segments.
    pub shm_read_bytes: AtomicU64,
    /// Bytes written to shared-memory segments (own publishes + puts).
    pub shm_write_bytes: AtomicU64,
    /// Barrier crossings.
    pub barriers: AtomicU64,
    /// Total nanoseconds spent inside barriers (latency numerator).
    pub barrier_nanos: AtomicU64,
    /// Peer failures this rank detected (EOF, send failure, silence).
    pub peer_failures: AtomicU64,
    /// `ABORT` frames this rank fanned out to peers.
    pub aborts_sent: AtomicU64,
    /// Heartbeat frames sent (not counted in `tx_frames`/`tx_bytes`, so
    /// wire-traffic numbers stay comparable across heartbeat settings).
    pub heartbeats: AtomicU64,
    /// Total failure-to-detection nanoseconds (latency numerator over
    /// `peer_failures`).
    pub detection_nanos: AtomicU64,
    /// Corrupt frames / segment parts / checksum invariants this rank
    /// detected (each one poisons the epoch and triggers rollback).
    pub frames_corrupted: AtomicU64,
    /// Bytes this rank ran through CRC32C verification (received frames
    /// and segment parts — a measure of integrity coverage, not cost).
    pub crc_bytes_checked: AtomicU64,
}

impl TransportStats {
    fn add(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Plain-data snapshot.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            tx_frames: self.tx_frames.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
            rx_frames: self.rx_frames.load(Ordering::Relaxed),
            rx_bytes: self.rx_bytes.load(Ordering::Relaxed),
            shm_read_bytes: self.shm_read_bytes.load(Ordering::Relaxed),
            shm_write_bytes: self.shm_write_bytes.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            barrier_nanos: self.barrier_nanos.load(Ordering::Relaxed),
            peer_failures: self.peer_failures.load(Ordering::Relaxed),
            aborts_sent: self.aborts_sent.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
            detection_nanos: self.detection_nanos.load(Ordering::Relaxed),
            frames_corrupted: self.frames_corrupted.load(Ordering::Relaxed),
            crc_bytes_checked: self.crc_bytes_checked.load(Ordering::Relaxed),
            restarts: restart_count(),
        }
    }

    /// Zeroes every counter (`restarts` is incarnation identity, not a
    /// counter — it survives resets).
    pub fn reset(&self) {
        self.tx_frames.store(0, Ordering::Relaxed);
        self.tx_bytes.store(0, Ordering::Relaxed);
        self.rx_frames.store(0, Ordering::Relaxed);
        self.rx_bytes.store(0, Ordering::Relaxed);
        self.shm_read_bytes.store(0, Ordering::Relaxed);
        self.shm_write_bytes.store(0, Ordering::Relaxed);
        self.barriers.store(0, Ordering::Relaxed);
        self.barrier_nanos.store(0, Ordering::Relaxed);
        self.peer_failures.store(0, Ordering::Relaxed);
        self.aborts_sent.store(0, Ordering::Relaxed);
        self.heartbeats.store(0, Ordering::Relaxed);
        self.detection_nanos.store(0, Ordering::Relaxed);
        self.frames_corrupted.store(0, Ordering::Relaxed);
        self.crc_bytes_checked.store(0, Ordering::Relaxed);
    }
}

/// Plain-data snapshot of [`TransportStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Frames written to TCP peers.
    pub tx_frames: u64,
    /// Bytes written to TCP peers.
    pub tx_bytes: u64,
    /// Frames read from TCP peers.
    pub rx_frames: u64,
    /// Bytes read from TCP peers.
    pub rx_bytes: u64,
    /// Bytes read from other locales' segments.
    pub shm_read_bytes: u64,
    /// Bytes written to segments.
    pub shm_write_bytes: u64,
    /// Barrier crossings.
    pub barriers: u64,
    /// Nanoseconds spent in barriers.
    pub barrier_nanos: u64,
    /// Peer failures this rank detected.
    pub peer_failures: u64,
    /// `ABORT` frames fanned out.
    pub aborts_sent: u64,
    /// Heartbeat frames sent.
    pub heartbeats: u64,
    /// Failure-to-detection nanoseconds (numerator over `peer_failures`).
    pub detection_nanos: u64,
    /// Corruption events this rank detected.
    pub frames_corrupted: u64,
    /// Bytes run through CRC32C verification.
    pub crc_bytes_checked: u64,
    /// Supervisor incarnation of this process ([`restart_count`]): how
    /// many times the job was relaunched before this snapshot was taken.
    pub restarts: u64,
}

impl TransportSnapshot {
    /// Mean barrier latency in seconds (0 when no barrier was crossed).
    pub fn mean_barrier_seconds(&self) -> f64 {
        if self.barriers == 0 {
            0.0
        } else {
            self.barrier_nanos as f64 * 1e-9 / self.barriers as f64
        }
    }

    /// Mean failure-to-detection latency in seconds (0 when no peer
    /// failure was detected).
    pub fn mean_detection_seconds(&self) -> f64 {
        if self.peer_failures == 0 {
            0.0
        } else {
            self.detection_nanos as f64 * 1e-9 / self.peer_failures as f64
        }
    }
}

/// Liveness bookkeeping for one mesh peer, written by receiver threads
/// and the heartbeat sender, read by every wait loop.
struct PeerHealth {
    /// The connection died (EOF, reset, failed send).
    dead: AtomicBool,
    /// Nanoseconds since runtime start when death was first observed.
    died_at: AtomicU64,
    /// Nanoseconds since runtime start of the last received frame
    /// (heartbeats included) — the silent-peer clock.
    last_rx: AtomicU64,
}

/// The per-worker multiprocess runtime: rank identity, the TCP mesh, the
/// shared-memory job directory, and the registries behind channels and
/// accumulation windows. One per process, `'static`, created lazily by
/// [`active`].
pub struct MpRuntime {
    rank: usize,
    n: usize,
    job_dir: PathBuf,
    /// Write halves of the mesh (`None` at the self index).
    writers: Vec<Option<Mutex<TcpStream>>>,
    /// Read halves, drained once by [`Self::spawn_receivers`].
    readers: Mutex<Vec<Option<TcpStream>>>,
    /// Collective sequence counter; the guard also serializes collectives.
    coll_seq: Mutex<u64>,
    coll_in: Vec<CollQueue>,
    chans: Mutex<HashMap<u64, Arc<ChanInbox>>>,
    credits: Mutex<HashMap<u64, Arc<ChanCredits>>>,
    accums: Mutex<HashMap<u64, AccTarget>>,
    next_chan: AtomicU64,
    next_seg: AtomicU64,
    next_win: AtomicU64,
    stats: TransportStats,
    timeout: Duration,
    /// Per-peer liveness (self index unused).
    health: Vec<PeerHealth>,
    /// Set once the local abort path is underway (dedupes fan-out).
    aborting: AtomicBool,
    /// Monotonic time base for the health clocks.
    epoch: Instant,
    /// Heartbeat send interval (zero disables).
    hb_interval: Duration,
    /// Silent-peer threshold (zero disables).
    silence: Duration,
    /// Parsed `LS_FAULT` plan (empty when unset).
    faults: FaultPlan,
    /// Supervisor incarnation, gating which fault actions are armed.
    attempt: u64,
    /// 1-based count of barriers entered — the fault-trigger clock.
    barrier_ordinal: AtomicU64,
    /// Per-fault-action budget spent (indexed like `faults.actions`).
    fault_spent: Vec<AtomicU64>,
    /// Integrity level, cached at connect (the wire format cannot
    /// change mid-job).
    integrity: IntegrityMode,
    /// Set while a detected corruption awaits solver-level rollback;
    /// every collective wait surfaces `Corruption` instead of blocking.
    poisoned: AtomicBool,
    /// Set for the duration of [`Self::recover_from_corruption`], whose
    /// own collectives must run despite the poison flag.
    recovering: AtomicBool,
    /// First corruption's attribution: (culprit rank, frame, kind).
    poison: Mutex<Option<(usize, String, String)>>,
    /// Dedupes the POISON fan-out (re-armed by recovery).
    poison_fanned: AtomicBool,
    /// Recovery epoch, carried in the top bits of collective sequence
    /// numbers so post-rollback ranks can discard poisoned-epoch frames.
    coll_epoch: AtomicU64,
    /// 1-based count of fused matvec epochs — the `nan` fault-trigger
    /// clock. Monotonic across rollbacks, so a consumed injection never
    /// re-fires against the replayed epoch.
    matvec_ordinal: AtomicU64,
}

impl MpRuntime {
    /// This worker's locale index.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of worker processes (= locales) in the job.
    #[inline]
    pub fn n_locales(&self) -> usize {
        self.n
    }

    /// Wire statistics of this process.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// Rendezvous + full-mesh connect. Every worker binds an ephemeral
    /// listener, publishes its port as a file in the job directory
    /// (write-tmp-then-rename, so readers never see a partial file),
    /// connects to all lower ranks and accepts from all higher ranks.
    fn connect() -> MpRuntime {
        if !cfg!(unix) {
            fatal("the multiprocess backend requires a unix platform");
        }
        let rank: usize = std::env::var(ENV_RANK)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fatal(&format!("{ENV_RANK} missing or unparsable")));
        let n: usize = std::env::var(ENV_LOCALES)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fatal(&format!("{ENV_LOCALES} missing or unparsable")));
        let job_dir = PathBuf::from(
            std::env::var_os(ENV_JOB).unwrap_or_else(|| fatal(&format!("{ENV_JOB} missing"))),
        );
        let timeout = std::env::var(ENV_TIMEOUT)
            .ok()
            .and_then(|v| v.parse().ok())
            .map(Duration::from_secs)
            .unwrap_or(DEFAULT_COLLECTIVE_TIMEOUT);
        let hb_interval = std::env::var(ENV_HEARTBEAT_MS)
            .ok()
            .and_then(|v| v.parse().ok())
            .map(Duration::from_millis)
            .unwrap_or(DEFAULT_HEARTBEAT);
        let silence = std::env::var(ENV_SILENCE_SECS)
            .ok()
            .and_then(|v| v.parse().ok())
            .map(Duration::from_secs)
            .unwrap_or(DEFAULT_SILENCE);
        let faults = FaultPlan::from_env();
        let attempt = restart_count();

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind mesh listener");
        let port = listener.local_addr().expect("listener addr").port();
        let port_file = job_dir.join(format!("port-{rank}"));
        let tmp = job_dir.join(format!("port-{rank}.tmp"));
        fs::write(&tmp, port.to_string()).expect("write port file");
        fs::rename(&tmp, &port_file).expect("publish port file");

        let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        // Dial every lower rank, announcing who we are.
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let peer_file = job_dir.join(format!("port-{peer}"));
            let stream = loop {
                if let Ok(text) = fs::read_to_string(&peer_file) {
                    if let Ok(port) = text.trim().parse::<u16>() {
                        if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
                            break s;
                        }
                    }
                }
                if Instant::now() > deadline {
                    fatal(&format!("rendezvous timeout dialing rank {peer}"));
                }
                std::thread::sleep(Duration::from_millis(2));
            };
            stream.set_nodelay(true).ok();
            let mut hello = Vec::with_capacity(4);
            hello.put_u32_le(rank as u32);
            (&stream).write_all(&hello).expect("send hello");
            *slot = Some(stream);
        }
        // Accept every higher rank; the hello says which one arrived.
        for _ in rank + 1..n {
            listener.set_nonblocking(false).expect("blocking accept mode");
            let (stream, _) = listener.accept().unwrap_or_else(|e| {
                fatal(&format!("mesh accept: {e}"));
            });
            stream.set_nodelay(true).ok();
            let mut hello = [0u8; 4];
            (&stream).read_exact(&mut hello).expect("read hello");
            let peer = u32::from_le_bytes(hello) as usize;
            if peer <= rank || peer >= n || streams[peer].is_some() {
                fatal(&format!("bogus hello from rank {peer}"));
            }
            streams[peer] = Some(stream);
        }

        let mut writers = Vec::with_capacity(n);
        let mut readers = Vec::with_capacity(n);
        for (peer, s) in streams.into_iter().enumerate() {
            match s {
                Some(s) if peer != rank => {
                    // A blocked send must not outlive the collective
                    // timeout (backstop: a peer that stops reading but
                    // keeps its socket open).
                    s.set_write_timeout(Some(timeout)).ok();
                    readers.push(Some(s.try_clone().expect("clone mesh stream")));
                    writers.push(Some(Mutex::new(s)));
                }
                _ => {
                    readers.push(None);
                    writers.push(None);
                }
            }
        }
        let fault_spent = (0..faults.actions.len()).map(|_| AtomicU64::new(0)).collect();
        MpRuntime {
            rank,
            n,
            job_dir,
            writers,
            readers: Mutex::new(readers),
            coll_seq: Mutex::new(0),
            coll_in: (0..n)
                .map(|_| CollQueue { q: Mutex::new(VecDeque::new()), cv: Condvar::new() })
                .collect(),
            chans: Mutex::new(HashMap::new()),
            credits: Mutex::new(HashMap::new()),
            accums: Mutex::new(HashMap::new()),
            next_chan: AtomicU64::new(0),
            next_seg: AtomicU64::new(0),
            next_win: AtomicU64::new(0),
            stats: TransportStats::default(),
            timeout,
            health: (0..n)
                .map(|_| PeerHealth {
                    dead: AtomicBool::new(false),
                    died_at: AtomicU64::new(0),
                    last_rx: AtomicU64::new(0),
                })
                .collect(),
            aborting: AtomicBool::new(false),
            epoch: Instant::now(),
            hb_interval,
            silence,
            faults,
            attempt,
            barrier_ordinal: AtomicU64::new(0),
            fault_spent,
            integrity: IntegrityMode::from_env(),
            poisoned: AtomicBool::new(false),
            recovering: AtomicBool::new(false),
            poison: Mutex::new(None),
            poison_fanned: AtomicBool::new(false),
            coll_epoch: AtomicU64::new(0),
            matvec_ordinal: AtomicU64::new(0),
        }
    }

    /// One receiver thread per peer: reads frames off the stream in order
    /// and dispatches them. EOF (peer exited) ends the thread quietly.
    fn spawn_receivers(&'static self) {
        let mut readers = self.readers.lock().unwrap();
        for (peer, slot) in readers.iter_mut().enumerate() {
            let Some(stream) = slot.take() else { continue };
            std::thread::Builder::new()
                .name(format!("ls-mp-rx-{peer}"))
                .spawn(move || self.receive_loop(peer, stream))
                .expect("spawn receiver thread");
        }
    }

    /// Workers must not outlive a killed supervisor: the supervisor holds
    /// the write end of each worker's stdin pipe and never writes, so EOF
    /// on stdin — including after `kill -9` of the supervisor — means
    /// orphaned. Orphans best-effort-delete the job directory on the way
    /// out (the supervisor is gone, so nobody else will), which is what
    /// keeps `/dev/shm` free of `ls-mp-*` debris after any exit path.
    fn spawn_watchdog(&'static self) {
        if std::env::var_os(ENV_WATCHDOG).is_none() {
            return;
        }
        let job_dir = self.job_dir.clone();
        std::thread::Builder::new()
            .name("ls-mp-watchdog".into())
            .spawn(move || {
                let mut buf = [0u8; 64];
                let mut stdin = std::io::stdin();
                loop {
                    match stdin.read(&mut buf) {
                        Ok(0) | Err(_) => {
                            let _ = fs::remove_dir_all(&job_dir);
                            std::process::exit(EXIT_ORPHANED);
                        }
                        Ok(_) => {}
                    }
                }
            })
            .expect("spawn watchdog thread");
    }

    /// Heartbeat sender: a bare `PING` tag byte to every live peer each
    /// interval. Pings advance the receivers' silent-peer clocks; a send
    /// failure doubles as failure detection between collectives.
    fn spawn_heartbeat(&'static self) {
        if self.hb_interval.is_zero() || self.n < 2 {
            return;
        }
        std::thread::Builder::new()
            .name("ls-mp-hb".into())
            .spawn(move || loop {
                std::thread::sleep(self.hb_interval);
                if self.aborting.load(Ordering::SeqCst) {
                    return;
                }
                for peer in 0..self.n {
                    if peer == self.rank || self.health[peer].dead.load(Ordering::SeqCst) {
                        continue;
                    }
                    let Some(writer) = self.writers[peer].as_ref() else { continue };
                    if writer.lock().unwrap().write_all(&[TAG_PING]).is_err() {
                        self.note_peer_lost(peer);
                    } else {
                        self.stats.add(&self.stats.heartbeats, 1);
                    }
                }
            })
            .expect("spawn heartbeat thread");
    }

    /// Nanoseconds since runtime start (the health clock base).
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Bytes the trailing frame CRC occupies on the wire (0 with
    /// integrity off).
    fn crc_len(&self) -> usize {
        if self.integrity.wire() {
            4
        } else {
            0
        }
    }

    /// Receive-side integrity check: reads the trailing CRC32C and
    /// verifies it over the frame's header + payload. Returns `None` on
    /// a stream failure (peer marked lost), `Some(true)` for a good
    /// frame (or integrity off), `Some(false)` for a corrupt one — the
    /// corruption is counted, attributed and fanned out; the caller
    /// must drop the frame instead of dispatching it.
    fn verify_rx(
        &self,
        stream: &mut TcpStream,
        peer: usize,
        head: &[u8],
        payload: &[u8],
        frame: &str,
    ) -> Option<bool> {
        if !self.integrity.wire() {
            return Some(true);
        }
        let mut want = [0u8; 4];
        if stream.read_exact(&mut want).is_err() {
            self.note_peer_lost(peer);
            return None;
        }
        self.stats.add(&self.stats.crc_bytes_checked, (head.len() + payload.len()) as u64);
        if crc32c_append(crc32c(head), payload) == u32::from_le_bytes(want) {
            Some(true)
        } else {
            self.report_corruption(peer, frame, "frame CRC mismatch");
            Some(false)
        }
    }

    /// The local half of corruption detection: count it, record the
    /// attribution, poison every collective wait (they surface
    /// [`TransportError::Corruption`] instead of blocking), and fan a
    /// `POISON` frame so peers not currently waiting on this rank learn
    /// within one frame time. Unlike [`Self::abort_job`] this does
    /// **not** exit: the solver above catches the error, rolls back to
    /// its newest checkpoint and calls
    /// [`Self::recover_from_corruption`].
    fn report_corruption(&self, peer: usize, frame: &str, kind: &str) {
        self.stats.add(&self.stats.frames_corrupted, 1);
        eprintln!(
            "ls-mp[rank {}]: integrity: corrupt {frame} from rank {peer} ({kind})",
            self.rank
        );
        self.set_poison(peer, frame, kind);
        if !self.poison_fanned.swap(true, Ordering::SeqCst) {
            let mut pframe = Vec::with_capacity(15 + frame.len() + kind.len());
            pframe.put_u8(TAG_POISON);
            pframe.put_u64_le(self.coll_epoch.load(Ordering::SeqCst));
            pframe.put_u32_le(peer as u32);
            pframe.put_u8(frame.len() as u8);
            pframe.put_u8(kind.len() as u8);
            pframe.put_slice(frame.as_bytes());
            pframe.put_slice(kind.as_bytes());
            for p in 0..self.n {
                if p == self.rank || self.health[p].dead.load(Ordering::SeqCst) {
                    continue;
                }
                let Some(writer) = self.writers[p].as_ref() else { continue };
                let _ = writer.lock().unwrap().write_all(&pframe);
            }
        }
    }

    /// Records the poison state (first attribution wins) and wakes every
    /// collective waiter so detection is prompt.
    fn set_poison(&self, peer: usize, frame: &str, kind: &str) {
        {
            let mut slot = self.poison.lock().unwrap();
            if slot.is_none() {
                *slot = Some((peer, frame.to_string(), kind.to_string()));
            }
        }
        self.poisoned.store(true, Ordering::SeqCst);
        for queue in &self.coll_in {
            queue.cv.notify_all();
        }
    }

    /// The attributed error for the current poison state.
    fn corruption_error(&self) -> TransportError {
        match &*self.poison.lock().unwrap() {
            Some((peer, frame, kind)) => TransportError::Corruption {
                peer: *peer,
                frame: frame.clone(),
                kind: kind.clone(),
            },
            None => TransportError::Corruption {
                peer: self.rank,
                frame: "unknown".into(),
                kind: "poisoned without attribution".into(),
            },
        }
    }

    /// True while a detected corruption awaits rollback ([`Self::
    /// recover_from_corruption`] clears it).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Raises the pending corruption as a *catchable* panic when the
    /// epoch is poisoned, and returns normally otherwise. Cleanup paths
    /// that find collective state inconsistent mid-unwind (undrained
    /// channels, outstanding credits) call this before asserting: under
    /// poison the inconsistency is a symptom of the corruption unwind,
    /// and turning it into a plain panic would make a recoverable error
    /// fatal.
    pub fn raise_if_poisoned(&self) {
        if self.is_poisoned() {
            std::panic::panic_any(self.corruption_error());
        }
    }

    /// Entry point for algorithm-based fault tolerance above the
    /// transport: a checksum-vector invariant over the distributed
    /// matvec failed for `locale`'s partial sums. Funnels into the same
    /// detect → poison → unwind pipeline as a frame CRC mismatch, so
    /// the solver's rollback path handles both identically. Unlike wire
    /// corruption this is detected *collectively* (every rank evaluates
    /// the same allreduced checksums), so every rank calls it at the
    /// same program point and unwinds in lockstep.
    pub fn report_abft_violation(&self, locale: usize, detail: &str) -> ! {
        self.report_corruption(locale, "abft", detail);
        std::panic::panic_any(self.corruption_error())
    }

    /// Routes a failure: *recoverable* corruption unwinds as a catchable
    /// panic (the solver rolls back), everything else takes the
    /// fail-stop abort path.
    fn bail(&self, err: TransportError) -> ! {
        if matches!(err, TransportError::Corruption { .. }) {
            std::panic::panic_any(err);
        }
        self.abort_job(err)
    }

    /// Marks a peer's connection dead and wakes every collective waiter
    /// so detection is immediate, not deferred to the next timeout slice.
    fn note_peer_lost(&self, peer: usize) {
        let health = &self.health[peer];
        if !health.dead.swap(true, Ordering::SeqCst) {
            health.died_at.store(self.now_nanos().max(1), Ordering::SeqCst);
        }
        for queue in &self.coll_in {
            queue.cv.notify_all();
        }
    }

    /// Builds the attributed [`TransportError::PeerFailed`] for a failure
    /// of `peer` first observable to the caller at `since` (nanos on the
    /// health clock), recording the detection-latency statistics.
    fn peer_failed(&self, peer: usize, detail: &str, since: u64) -> TransportError {
        let died = self.health[peer].died_at.load(Ordering::SeqCst);
        let detection = Duration::from_nanos(self.now_nanos().saturating_sub(died.max(since)));
        self.stats.add(&self.stats.peer_failures, 1);
        self.stats.add(&self.stats.detection_nanos, detection.as_nanos() as u64);
        TransportError::PeerFailed { peer, detail: detail.to_string(), detection }
    }

    /// Aborts the job on a dead peer: the check behind [`poll_failure`]
    /// and the channel spin loops. Only valid between the barriers of a
    /// product, where a dead connection is always a genuine failure.
    fn check_peers_alive(&self, detail: &str) {
        if self.aborting.load(Ordering::SeqCst) {
            // Another thread of this process is already exiting.
            std::thread::sleep(Duration::from_millis(50));
            return;
        }
        // Integrity outranks liveness: a poisoned epoch surfaces as
        // recoverable corruption, never misattributed as a peer crash.
        if self.poisoned.load(Ordering::SeqCst) && !self.recovering.load(Ordering::SeqCst) {
            std::panic::panic_any(self.corruption_error());
        }
        let now = self.now_nanos();
        for peer in 0..self.n {
            if peer != self.rank && self.health[peer].dead.load(Ordering::SeqCst) {
                self.abort_job(self.peer_failed(peer, detail, now));
            }
        }
    }

    /// The one-way door of every unrecoverable failure: fan an `ABORT`
    /// frame to every live peer (so the whole job dies promptly instead
    /// of burning its collective timeout), print the attributed
    /// diagnostic, and exit with the failure's code. Remote-origin
    /// aborts are not re-fanned.
    fn abort_job(&self, err: TransportError) -> ! {
        if !self.aborting.swap(true, Ordering::SeqCst)
            && !matches!(err, TransportError::Aborted { .. })
        {
            let reason = err.to_string();
            let mut frame = Vec::with_capacity(13 + reason.len());
            frame.put_u8(TAG_ABORT);
            frame.put_u32_le(self.rank as u32);
            frame.put_u32_le(err.exit_code() as u32);
            frame.put_u32_le(reason.len() as u32);
            frame.put_slice(reason.as_bytes());
            for peer in 0..self.n {
                if peer == self.rank || self.health[peer].dead.load(Ordering::SeqCst) {
                    continue;
                }
                let Some(writer) = self.writers[peer].as_ref() else { continue };
                if writer.lock().unwrap().write_all(&frame).is_ok() {
                    self.stats.add(&self.stats.aborts_sent, 1);
                }
            }
        }
        eprintln!("ls-mp[rank {}]: abort: {err} (exit {})", self.rank, err.exit_code());
        std::process::exit(err.exit_code());
    }

    /// Reads frames off one peer's stream in order and dispatches them.
    /// Any read failure — EOF on a cleanly-exited peer, ECONNRESET on a
    /// crashed one — marks the peer dead *immediately* and wakes every
    /// collective waiter, so detection costs milliseconds, not the
    /// collective timeout. Whether the death is fatal is decided at the
    /// wait sites: a peer that already contributed everything this rank
    /// will ever wait for is allowed to be gone.
    fn receive_loop(&'static self, peer: usize, mut stream: TcpStream) {
        let mut tag = [0u8; 1];
        loop {
            if stream.read_exact(&mut tag).is_err() {
                self.note_peer_lost(peer);
                return;
            }
            let frame_bytes = match tag[0] {
                TAG_COLL => {
                    let mut head = [0u8; 12];
                    if stream.read_exact(&mut head).is_err() {
                        self.note_peer_lost(peer);
                        return;
                    }
                    let mut r: &[u8] = &head;
                    let seq = r.get_u64_le();
                    let len = r.get_u32_le() as usize;
                    let mut payload = vec![0u8; len];
                    if stream.read_exact(&mut payload).is_err() {
                        self.note_peer_lost(peer);
                        return;
                    }
                    match self.verify_rx(&mut stream, peer, &head, &payload, "coll") {
                        None => return,
                        Some(false) => {}
                        Some(true) => {
                            let queue = &self.coll_in[peer];
                            queue.q.lock().unwrap().push_back((seq, payload));
                            queue.cv.notify_all();
                        }
                    }
                    13 + len + self.crc_len()
                }
                TAG_CHAN => {
                    let mut head = [0u8; 12];
                    if stream.read_exact(&mut head).is_err() {
                        self.note_peer_lost(peer);
                        return;
                    }
                    let mut r: &[u8] = &head;
                    let chan = r.get_u64_le();
                    let len = r.get_u32_le() as usize;
                    let mut payload = vec![0u8; len];
                    if stream.read_exact(&mut payload).is_err() {
                        self.note_peer_lost(peer);
                        return;
                    }
                    match self.verify_rx(&mut stream, peer, &head, &payload, "chan") {
                        None => return,
                        Some(false) => {}
                        Some(true) => self.inbox(chan).q.lock().unwrap().push_back(payload),
                    }
                    13 + len + self.crc_len()
                }
                TAG_CLOSE => {
                    let mut head = [0u8; 8];
                    if stream.read_exact(&mut head).is_err() {
                        self.note_peer_lost(peer);
                        return;
                    }
                    let mut r: &[u8] = &head;
                    let chan = r.get_u64_le();
                    self.inbox(chan).closed.store(true, Ordering::Release);
                    9
                }
                TAG_CREDIT => {
                    let mut head = [0u8; 8];
                    if stream.read_exact(&mut head).is_err() {
                        self.note_peer_lost(peer);
                        return;
                    }
                    let mut r: &[u8] = &head;
                    let chan = r.get_u64_le();
                    self.credit_cell(chan).avail.fetch_add(1, Ordering::Release);
                    9
                }
                TAG_ACC => {
                    let mut head = [0u8; 20];
                    if stream.read_exact(&mut head).is_err() {
                        self.note_peer_lost(peer);
                        return;
                    }
                    let mut r: &[u8] = &head;
                    let win = r.get_u64_le();
                    let index = r.get_u64_le() as usize;
                    let lanes = r.get_u32_le() as usize;
                    let mut payload = vec![0u8; lanes * 8];
                    if stream.read_exact(&mut payload).is_err() {
                        self.note_peer_lost(peer);
                        return;
                    }
                    match self.verify_rx(&mut stream, peer, &head, &payload, "accum") {
                        None => return,
                        Some(false) => {}
                        Some(true) => {
                            let mut r: &[u8] = &payload;
                            let mut vals = [0.0f64; 2];
                            for v in vals.iter_mut().take(lanes.min(2)) {
                                *v = r.get_f64_le();
                            }
                            self.apply_acc(win, index, &vals[..lanes.min(2)]);
                        }
                    }
                    21 + lanes * 8 + self.crc_len()
                }
                TAG_ABORT => {
                    let mut head = [0u8; 12];
                    if stream.read_exact(&mut head).is_err() {
                        self.note_peer_lost(peer);
                        return;
                    }
                    let mut r: &[u8] = &head;
                    let origin = r.get_u32_le() as usize;
                    let code = r.get_u32_le() as i32;
                    let len = r.get_u32_le() as usize;
                    let mut reason = vec![0u8; len];
                    if stream.read_exact(&mut reason).is_err() {
                        self.note_peer_lost(peer);
                        return;
                    }
                    let reason = String::from_utf8_lossy(&reason).into_owned();
                    // Exit right here: the job is already lost, and the
                    // sooner every rank is gone the sooner the supervisor
                    // can relaunch from the last checkpoint.
                    if !self.aborting.swap(true, Ordering::SeqCst) {
                        eprintln!(
                            "ls-mp[rank {}]: abort: aborted by rank {origin} \
                             (peer exit {code}): {reason} (exit {EXIT_FAILOVER})",
                            self.rank
                        );
                    }
                    std::process::exit(EXIT_FAILOVER);
                }
                TAG_PING => 1,
                TAG_POISON => {
                    let mut head = [0u8; 14];
                    if stream.read_exact(&mut head).is_err() {
                        self.note_peer_lost(peer);
                        return;
                    }
                    let mut r: &[u8] = &head;
                    let epoch = r.get_u64_le();
                    let culprit = r.get_u32_le() as usize;
                    let flen = r.get_u8() as usize;
                    let klen = r.get_u8() as usize;
                    let mut text = vec![0u8; flen + klen];
                    if stream.read_exact(&mut text).is_err() {
                        self.note_peer_lost(peer);
                        return;
                    }
                    // A poison stamped with an older epoch belongs to a
                    // corruption this rank already rolled back past.
                    if epoch >= self.coll_epoch.load(Ordering::SeqCst) {
                        let frame = String::from_utf8_lossy(&text[..flen]).into_owned();
                        let kind = String::from_utf8_lossy(&text[flen..]).into_owned();
                        self.set_poison(culprit, &frame, &kind);
                    }
                    15 + flen + klen
                }
                other => {
                    self.abort_job(TransportError::Protocol {
                        detail: format!("unknown frame tag {other} from rank {peer}"),
                    });
                }
            };
            self.health[peer].last_rx.store(self.now_nanos(), Ordering::Relaxed);
            self.stats.add(&self.stats.rx_frames, 1);
            self.stats.add(&self.stats.rx_bytes, frame_bytes as u64);
        }
    }

    fn inbox(&self, chan: u64) -> Arc<ChanInbox> {
        Arc::clone(self.chans.lock().unwrap().entry(chan).or_insert_with(|| {
            Arc::new(ChanInbox {
                q: Mutex::new(VecDeque::new()),
                closed: AtomicBool::new(false),
            })
        }))
    }

    fn credit_cell(&self, chan: u64) -> Arc<ChanCredits> {
        Arc::clone(
            self.credits
                .lock()
                .unwrap()
                .entry(chan)
                .or_insert_with(|| Arc::new(ChanCredits { avail: AtomicUsize::new(1) })),
        )
    }

    /// Executes the delay actions armed for frames of `class` (no-op
    /// without a matching `LS_FAULT` plan).
    fn fault_delay_hook(&self, class: FrameClass) {
        if self.faults.is_empty_for(self.rank, self.attempt) {
            return;
        }
        for (idx, action) in self.faults.delays_for(self.rank, self.attempt, class) {
            if self.fault_spent[idx].fetch_add(1, Ordering::Relaxed) < action.count {
                std::thread::sleep(action.delay());
            }
        }
    }

    /// Advances the barrier-ordinal clock and executes any kill /
    /// drop-conn action armed for this entry.
    fn fault_barrier_hook(&self) {
        let ordinal = self.barrier_ordinal.fetch_add(1, Ordering::Relaxed) + 1;
        if self.faults.is_empty_for(self.rank, self.attempt) {
            return;
        }
        for action in self.faults.at_barrier(self.rank, self.attempt, ordinal) {
            match action.kind {
                FaultKind::Kill => {
                    eprintln!(
                        "ls-mp[rank {}]: fault injection: kill at barrier {ordinal}",
                        self.rank
                    );
                    std::process::abort();
                }
                FaultKind::DropConn => {
                    eprintln!(
                        "ls-mp[rank {}]: fault injection: drop-conn at barrier {ordinal}",
                        self.rank
                    );
                    for writer in self.writers.iter().flatten() {
                        let _ = writer.lock().unwrap().shutdown(std::net::Shutdown::Both);
                    }
                }
                // The corruption kinds fire at their own sites: flip-bit
                // in seal_frame, corrupt-window in the segment writes,
                // nan in the matvec epoch clock.
                FaultKind::Delay
                | FaultKind::FlipBit
                | FaultKind::CorruptWindow
                | FaultKind::Nan => {}
            }
        }
    }

    /// Seals an outgoing data frame: appends the CRC32C of everything
    /// after the tag byte (when wire integrity is on) and executes any
    /// armed `flip-bit` injection. The flip happens *after* the
    /// checksum is computed and flips a payload bit — corrupting the
    /// data the way a failing NIC or DMA engine would, so only the
    /// receiver's verification can catch it. Injections count (and
    /// fire on) the `nth` *payload-bearing* frame of their class; with
    /// `LS_INTEGRITY=off` no checksum travels and the flip goes
    /// undetected, which is exactly what the knob trades away.
    fn seal_frame(&self, frame: &mut Vec<u8>, payload_start: usize, class: FrameClass) {
        let crc = if self.integrity.wire() { Some(crc32c(&frame[1..])) } else { None };
        if frame.len() > payload_start && !self.faults.is_empty_for(self.rank, self.attempt) {
            for (idx, action) in self.faults.flips_for(self.rank, self.attempt, class) {
                if self.fault_spent[idx].fetch_add(1, Ordering::Relaxed) + 1 == action.nth {
                    eprintln!(
                        "ls-mp[rank {}]: fault injection: flip-bit in {} frame {}",
                        self.rank,
                        class.name(),
                        action.nth
                    );
                    frame[payload_start] ^= 1;
                }
            }
        }
        if let Some(crc) = crc {
            frame.put_u32_le(crc);
        }
    }

    /// Fallible frame send: a failed write marks the peer dead and
    /// returns the attributed failure instead of killing the process.
    fn try_send_frame(
        &self,
        peer: usize,
        frame: &[u8],
        class: FrameClass,
    ) -> Result<(), TransportError> {
        self.fault_delay_hook(class);
        let Some(writer) = self.writers[peer].as_ref() else {
            return Err(TransportError::Protocol {
                detail: format!("send to self or unconnected rank {peer}"),
            });
        };
        let sent_at = self.now_nanos();
        let result = writer.lock().unwrap().write_all(frame);
        if let Err(e) = result {
            self.note_peer_lost(peer);
            return Err(self.peer_failed(peer, &format!("send failed: {e}"), sent_at));
        }
        self.stats.add(&self.stats.tx_frames, 1);
        self.stats.add(&self.stats.tx_bytes, frame.len() as u64);
        Ok(())
    }

    fn send_frame(&self, peer: usize, frame: &[u8], class: FrameClass) {
        self.try_send_frame(peer, frame, class).unwrap_or_else(|e| self.bail(e));
    }

    /// Pops the collective payload with sequence `seq` from `peer`. The
    /// per-peer stream is FIFO and both ranks count collectives in the
    /// same SPMD program order, so the queue head must carry exactly
    /// `seq` — anything else is a desynchronized job.
    ///
    /// Failure handling, in priority order: an already-queued frame is
    /// consumed even if the peer has since died (its last contribution
    /// before a clean exit is still valid); a dead connection fails the
    /// wait immediately (sub-second detection, not the timeout); a peer
    /// silent past the heartbeat threshold is declared hung; the
    /// collective timeout is the last-ditch backstop.
    fn try_pop_coll(&self, peer: usize, seq: u64) -> Result<Vec<u8>, TransportError> {
        let queue = &self.coll_in[peer];
        let wait_start = Instant::now();
        let wait_start_nanos = self.now_nanos();
        let deadline = wait_start + self.timeout;
        let silence_limit = if self.hb_interval.is_zero() || self.silence.is_zero() {
            None
        } else {
            Some(self.silence.as_nanos() as u64)
        };
        let mut q = queue.q.lock().unwrap();
        loop {
            if let Some(&(s, _)) = q.front() {
                if s >> EPOCH_SHIFT < seq >> EPOCH_SHIFT {
                    // Leftover frame of a rolled-back epoch: the peer
                    // sent it before recovery. Benign — discard.
                    q.pop_front();
                    continue;
                }
                if s >> EPOCH_SHIFT == seq >> EPOCH_SHIFT {
                    if s != seq {
                        return Err(TransportError::Desync { peer, expected: seq, got: s });
                    }
                    return Ok(q.pop_front().unwrap().1);
                }
                // The peer already recovered into a *newer* epoch: a
                // corruption was detected somewhere and this rank's
                // poison notification is still in flight. Leave the
                // frame queued (it belongs to the post-recovery epoch)
                // and fall through to the poison check / wait below —
                // this is the corruption unwind racing the fan-out,
                // never a desync.
            }
            if self.aborting.load(Ordering::SeqCst) {
                return Err(TransportError::Aborted {
                    origin: self.rank,
                    reason: "local abort already in progress".into(),
                });
            }
            // A poisoned epoch fails the wait with the attributed
            // corruption — the frame this rank is waiting for may have
            // been the corrupt one that was dropped. Recovery's own
            // collectives run with `recovering` set.
            if self.poisoned.load(Ordering::SeqCst) && !self.recovering.load(Ordering::SeqCst) {
                return Err(self.corruption_error());
            }
            if self.health[peer].dead.load(Ordering::SeqCst) {
                return Err(self.peer_failed(
                    peer,
                    "connection lost during collective",
                    wait_start_nanos,
                ));
            }
            if let Some(limit) = silence_limit {
                let last_rx = self.health[peer].last_rx.load(Ordering::Relaxed);
                let now = self.now_nanos();
                // Only distrust silence we actually waited through: the
                // clock may be stale from a long compute phase.
                if now.saturating_sub(last_rx.max(wait_start_nanos)) > limit {
                    self.note_peer_lost(peer);
                    return Err(self.peer_failed(
                        peer,
                        "peer silent past heartbeat threshold",
                        wait_start_nanos,
                    ));
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout { peer, seq, waited: self.timeout });
            }
            // Short slices: death/abort flags flip without a cv notify
            // in some paths, and 100 ms keeps detection prompt anyway.
            let slice = (deadline - now).min(Duration::from_millis(100));
            let (guard, _) = queue.cv.wait_timeout(q, slice).unwrap();
            q = guard;
        }
    }

    /// Fallible allgather: every rank contributes `payload`, every rank
    /// receives all contributions indexed by rank. The fundamental
    /// collective — barriers and reductions are built on it.
    pub fn try_allgather(&self, payload: &[u8]) -> Result<Vec<Vec<u8>>, TransportError> {
        // The guard both allocates the sequence number and serializes
        // collectives within the process.
        let mut seq_guard = self.coll_seq.lock().unwrap();
        let seq = (self.coll_epoch.load(Ordering::SeqCst) << EPOCH_SHIFT) | *seq_guard;
        *seq_guard += 1;
        let mut frame = Vec::with_capacity(17 + payload.len());
        frame.put_u8(TAG_COLL);
        frame.put_u64_le(seq);
        frame.put_u32_le(payload.len() as u32);
        frame.put_slice(payload);
        self.seal_frame(&mut frame, 13, FrameClass::Coll);
        for peer in 0..self.n {
            if peer != self.rank {
                self.try_send_frame(peer, &frame, FrameClass::Coll)?;
            }
        }
        let mut out: Vec<Vec<u8>> = (0..self.n).map(|_| Vec::new()).collect();
        out[self.rank] = payload.to_vec();
        for (peer, slot) in out.iter_mut().enumerate() {
            if peer != self.rank {
                *slot = self.try_pop_coll(peer, seq)?;
            }
        }
        drop(seq_guard);
        Ok(out)
    }

    /// Infallible allgather: aborts the whole job on failure —
    /// except recoverable corruption, which unwinds as a catchable
    /// panic carrying the [`TransportError::Corruption`].
    pub fn allgather(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        self.try_allgather(payload).unwrap_or_else(|e| self.bail(e))
    }

    /// Fallible barrier: an empty allgather. Per-peer FIFO makes it a
    /// flush: every accumulate/channel/credit frame a peer sent before
    /// entering the barrier has been applied here once its barrier frame
    /// is popped. Also the fault-injection trigger point: `LS_FAULT`
    /// kill/drop-conn actions fire on entry, keyed by the 1-based count
    /// of barriers this process has entered.
    pub fn try_barrier(&self) -> Result<(), TransportError> {
        self.fault_barrier_hook();
        let t0 = Instant::now();
        self.try_allgather(&[])?;
        self.stats.add(&self.stats.barriers, 1);
        self.stats.add(&self.stats.barrier_nanos, t0.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Infallible barrier: aborts the whole job on failure (corruption
    /// unwinds as a catchable panic instead, like [`Self::allgather`]).
    pub fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| self.bail(e));
    }

    /// Fallible lane-wise allreduce of `f64` partials: gathers every
    /// rank's lanes and sums them **in rank order**, which is
    /// bit-identical to the in-process backend's locale-ordered
    /// combination.
    pub fn try_allreduce_lanes(&self, lanes: &[f64]) -> Result<Vec<f64>, TransportError> {
        let mut payload = Vec::with_capacity(lanes.len() * 8);
        for &v in lanes {
            payload.put_f64_le(v);
        }
        let all = self.try_allgather(&payload)?;
        let mut out = vec![0.0f64; lanes.len()];
        for contribution in &all {
            let mut r: &[u8] = contribution;
            if r.remaining() != lanes.len() * 8 {
                return Err(TransportError::Protocol {
                    detail: "allreduce lane-count mismatch across ranks".into(),
                });
            }
            for slot in out.iter_mut() {
                *slot += r.get_f64_le();
            }
        }
        Ok(out)
    }

    /// Infallible lane-wise allreduce: aborts the whole job on failure
    /// (corruption unwinds as a catchable panic, like
    /// [`Self::allgather`]).
    pub fn allreduce_lanes(&self, lanes: &[f64]) -> Vec<f64> {
        self.try_allreduce_lanes(lanes).unwrap_or_else(|e| self.bail(e))
    }

    /// Collective recovery from a poisoned epoch: every surviving rank
    /// calls this (the solver's rollback path does) after unwinding out
    /// of the corrupt product. Steps, whose order is load-bearing:
    ///
    /// 1. bump the recovery epoch and reset the collective sequence —
    ///    stale frames of the poisoned epoch now carry visibly-old
    ///    epoch bits and are silently discarded at the pop;
    /// 2. barrier in the new epoch — per-peer FIFO means that once a
    ///    peer's new-epoch barrier frame has arrived, *everything* it
    ///    sent before recovery has been received and dispatched, so the
    ///    stale channel/credit state is complete;
    /// 3. drop all channel inboxes and credits (the poisoned product's
    ///    ranks unwound mid-stream and will rebuild their grids);
    /// 4. allgather the channel/segment/window id counters and take the
    ///    job-wide maximum — ranks unwound at different points, so the
    ///    per-process counters diverged. No peer can send a new-id
    ///    frame before its own allgather completes, which needs our
    ///    contribution, which we send *after* clearing the maps — so a
    ///    fresh inbox can never be dropped by step 3;
    /// 5. clear the poison.
    ///
    /// No-op when the epoch is not poisoned, so callers may invoke it
    /// unconditionally before a retry.
    pub fn recover_from_corruption(&self) {
        if !self.poisoned.load(Ordering::SeqCst) {
            return;
        }
        self.recovering.store(true, Ordering::SeqCst);
        self.coll_epoch.fetch_add(1, Ordering::SeqCst);
        *self.coll_seq.lock().unwrap() = 0;
        self.barrier();
        self.chans.lock().unwrap().clear();
        self.credits.lock().unwrap().clear();
        let mut payload = Vec::with_capacity(24);
        payload.put_u64_le(self.next_chan.load(Ordering::SeqCst));
        payload.put_u64_le(self.next_seg.load(Ordering::SeqCst));
        payload.put_u64_le(self.next_win.load(Ordering::SeqCst));
        let all = self.allgather(&payload);
        let (mut chan, mut seg, mut win) = (0u64, 0u64, 0u64);
        for contribution in &all {
            let mut r: &[u8] = contribution;
            chan = chan.max(r.get_u64_le());
            seg = seg.max(r.get_u64_le());
            win = win.max(r.get_u64_le());
        }
        self.next_chan.store(chan, Ordering::SeqCst);
        self.next_seg.store(seg, Ordering::SeqCst);
        self.next_win.store(win, Ordering::SeqCst);
        *self.poison.lock().unwrap() = None;
        self.poison_fanned.store(false, Ordering::SeqCst);
        self.poisoned.store(false, Ordering::SeqCst);
        self.recovering.store(false, Ordering::SeqCst);
        eprintln!(
            "ls-mp[rank {}]: integrity: recovered into epoch {}",
            self.rank,
            self.coll_epoch.load(Ordering::SeqCst)
        );
    }

    /// Advances the fused-matvec epoch clock and reports whether an
    /// `LS_FAULT` `nan` action fires for this rank at this epoch. The
    /// product engine calls it once per distributed matvec and, on
    /// `true`, replaces its local dot partial with NaN — silent
    /// arithmetic corruption that the rank-ordered reduction then
    /// propagates to every rank identically. The ordinal is monotonic
    /// across rollbacks, so a consumed injection never re-fires against
    /// the replayed epoch.
    pub fn nan_fault_fires(&self) -> bool {
        let ordinal = self.matvec_ordinal.fetch_add(1, Ordering::Relaxed) + 1;
        if self.faults.is_empty_for(self.rank, self.attempt) {
            return false;
        }
        let mut fires = false;
        for (idx, action) in self.faults.nans_at(self.rank, self.attempt, ordinal) {
            if self.fault_spent[idx].fetch_add(1, Ordering::Relaxed) < action.count {
                eprintln!(
                    "ls-mp[rank {}]: fault injection: nan into matvec epoch {ordinal}",
                    self.rank
                );
                fires = true;
            }
        }
        fires
    }

    // ---- accumulation windows -------------------------------------------

    /// Registers the owner-side target of a new accumulation window and
    /// returns its id. SPMD-collective: every rank must call it in the
    /// same program order (ids are derived from a per-process counter).
    /// Callers must barrier after registration and before any remote
    /// accumulate can target the window (see [`crate::accum`]).
    ///
    /// # Safety
    /// `base` must point at `len * lanes` `AtomicU64` cells that stay
    /// valid until [`Self::deregister_accum`].
    pub unsafe fn register_accum(
        &self,
        base: *const AtomicU64,
        len: usize,
        lanes: usize,
    ) -> u64 {
        let id = self.next_win.fetch_add(1, Ordering::Relaxed);
        self.accums.lock().unwrap().insert(id, AccTarget { base: base as usize, len, lanes });
        id
    }

    /// Drops a window registration. Callers must barrier first so no
    /// in-flight accumulate can still target the window.
    pub fn deregister_accum(&self, id: u64) {
        self.accums.lock().unwrap().remove(&id);
    }

    /// Ships one remote accumulate (`y[dest][index] += value`, given as
    /// its `f64` lanes) to the owner, which applies it atomically.
    pub fn send_acc(&self, dest: usize, win: u64, index: usize, lanes: &[f64]) {
        let mut frame = Vec::with_capacity(25 + lanes.len() * 8);
        frame.put_u8(TAG_ACC);
        frame.put_u64_le(win);
        frame.put_u64_le(index as u64);
        frame.put_u32_le(lanes.len() as u32);
        for &v in lanes {
            frame.put_f64_le(v);
        }
        self.seal_frame(&mut frame, 21, FrameClass::Accum);
        self.send_frame(dest, &frame, FrameClass::Accum);
    }

    fn apply_acc(&self, win: u64, index: usize, lanes: &[f64]) {
        let target = match self.accums.lock().unwrap().get(&win) {
            Some(&t) => t,
            None if self.poisoned.load(Ordering::SeqCst)
                || self.recovering.load(Ordering::SeqCst) =>
            {
                // A stale accumulate racing a window the unwinding
                // solver already dropped: safe to discard — rollback
                // throws the whole poisoned epoch away.
                return;
            }
            None => self.abort_job(TransportError::Protocol {
                detail: format!("accumulate into unregistered window {win}"),
            }),
        };
        if index >= target.len || lanes.len() > target.lanes {
            self.abort_job(TransportError::Protocol {
                detail: format!("accumulate out of bounds: {index} >= {}", target.len),
            });
        }
        let base = target.base as *const AtomicU64;
        for (lane, &add) in lanes.iter().enumerate() {
            if add == 0.0 {
                continue;
            }
            // SAFETY: the registration contract keeps the cells alive and
            // in bounds; all access during the epoch is atomic.
            let cell = unsafe { &*base.add(index * target.lanes + lane) };
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let new = (f64::from_bits(cur) + add).to_bits();
                match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    // ---- shared-memory segments -----------------------------------------

    /// Creates a new segment set for a distributed epoch: one file per
    /// locale under the job directory, element size `elem` bytes, part
    /// lengths `lens`. SPMD-collective (ids come from a counter), and the
    /// caller must publish its own part and barrier before peers read.
    pub fn new_segment(&'static self, elem: usize, lens: &[usize]) -> Segment {
        let id = self.next_seg.fetch_add(1, Ordering::Relaxed);
        Segment {
            mp: self,
            id,
            elem,
            files: (0..lens.len()).map(|_| Mutex::new(None)).collect(),
            verified: (0..lens.len()).map(|_| AtomicBool::new(false)).collect(),
            lens: lens.to_vec(),
        }
    }

    // ---- channels --------------------------------------------------------

    /// Reserves `count` consecutive channel ids. SPMD-collective: every
    /// rank must allocate blocks in the same program order so ids agree.
    pub fn alloc_chan_ids(&self, count: usize) -> u64 {
        self.next_chan.fetch_add(count as u64, Ordering::Relaxed)
    }

    fn send_chan(&self, peer: usize, chan: u64, payload: &[u8]) {
        let mut frame = Vec::with_capacity(17 + payload.len());
        frame.put_u8(TAG_CHAN);
        frame.put_u64_le(chan);
        frame.put_u32_le(payload.len() as u32);
        frame.put_slice(payload);
        self.seal_frame(&mut frame, 13, FrameClass::Chan);
        self.send_frame(peer, &frame, FrameClass::Chan);
    }

    fn send_close(&self, peer: usize, chan: u64) {
        let mut frame = Vec::with_capacity(9);
        frame.put_u8(TAG_CLOSE);
        frame.put_u64_le(chan);
        self.send_frame(peer, &frame, FrameClass::Close);
    }

    fn send_credit(&self, peer: usize, chan: u64) {
        let mut frame = Vec::with_capacity(9);
        frame.put_u8(TAG_CREDIT);
        frame.put_u64_le(chan);
        self.send_frame(peer, &frame, FrameClass::Credit);
    }

    fn drop_chan(&self, chan: u64) {
        self.chans.lock().unwrap().remove(&chan);
        self.credits.lock().unwrap().remove(&chan);
    }
}

// ---- shared-memory segment ----------------------------------------------

/// One distributed epoch's shared-memory backing: a file per locale in
/// the job directory (`/dev/shm` — tmpfs, so reads/writes are real
/// same-host shared memory through the page cache). The owner publishes
/// its part, a barrier makes it visible, peers `pread`/`pwrite` at
/// element offsets.
pub struct Segment {
    mp: &'static MpRuntime,
    id: u64,
    elem: usize,
    lens: Vec<usize>,
    files: Vec<Mutex<Option<File>>>,
    /// Per-part latch: in full-integrity mode the first `read` of each
    /// part verifies its CRC sidecars once, then trusts the page cache.
    verified: Vec<AtomicBool>,
}

impl Segment {
    fn path(&self, locale: usize) -> PathBuf {
        self.mp.job_dir.join(format!("seg-{}-{locale}", self.id))
    }

    /// Whole-part CRC sidecar, written by the part's owner at publish.
    fn crc_path(&self, locale: usize) -> PathBuf {
        self.mp.job_dir.join(format!("seg-{}-{locale}.crc", self.id))
    }

    /// Per-writer put-record sidecar against `locale`'s part: a flat
    /// list of `(byte offset: u64, len: u64, crc32c: u32)` records, one
    /// appended per [`Self::write`] by rank `writer`.
    fn putcrc_path(&self, locale: usize, writer: usize) -> PathBuf {
        self.mp.job_dir.join(format!("seg-{}-{locale}.putcrc-{writer}", self.id))
    }

    /// Segment IO failure router: under poison the files may already be
    /// gone (peers unwound and dropped the epoch), so surface the
    /// corruption for rollback instead of a fail-stop protocol abort.
    fn fail(&self, detail: String) -> ! {
        if self.mp.is_poisoned() {
            std::panic::panic_any(self.mp.corruption_error());
        }
        self.mp.abort_job(TransportError::Protocol { detail })
    }

    /// Executes any armed `corrupt-window` injection after this rank
    /// wrote `locale`'s part: flips the low bit of the byte at the
    /// action's offset (clamped to the part), bypassing the CRC
    /// sidecars — only a reader's verification can catch it.
    fn corrupt_window_hook(&self, locale: usize) {
        let mp = self.mp;
        if mp.faults.is_empty_for(mp.rank, mp.attempt) {
            return;
        }
        let part_bytes = self.lens[locale] * self.elem;
        if part_bytes == 0 {
            return;
        }
        for (idx, action) in mp.faults.window_corruptions_for(mp.rank, mp.attempt) {
            // `nth` selects where the damage starts (1-based over this
            // rank's segment writes — enumeration epochs write windows
            // too, so chaos plans use it to land inside the solve) and
            // `count` how many consecutive writes get hit.
            let n = mp.fault_spent[idx].fetch_add(1, Ordering::Relaxed) + 1;
            if n >= action.nth && n < action.nth + action.count {
                let at = (action.offset as usize).min(part_bytes - 1);
                eprintln!(
                    "ls-mp[rank {}]: fault injection: corrupt-window byte {at} of \
                     segment {} part {locale}",
                    mp.rank, self.id
                );
                self.with_file(locale, |f| {
                    let mut b = [0u8; 1];
                    pread(f, at as u64, &mut b)?;
                    b[0] ^= 1;
                    pwrite(f, at as u64, &b)
                });
            }
        }
    }

    /// First-read verification of `locale`'s part against its CRC
    /// sidecars (full-integrity mode). Put records — ranges written
    /// one-sidedly by peers — take precedence; a part nobody put into
    /// is checked whole against the owner's publish sidecar. A mismatch
    /// poisons the epoch and unwinds with the attributed
    /// [`TransportError::Corruption`].
    fn verify_part(&self, locale: usize) {
        let part_bytes = self.lens[locale] * self.elem;
        if part_bytes == 0 {
            return;
        }
        let mut buf = vec![0u8; part_bytes];
        self.with_file(locale, |f| pread(f, 0, &mut buf));
        let mut checked = 0u64;
        let mut bad = false;
        let mut any_put = false;
        for writer in 0..self.lens.len() {
            let Ok(records) = fs::read(self.putcrc_path(locale, writer)) else { continue };
            any_put = true;
            let mut r: &[u8] = &records;
            while r.remaining() >= 20 {
                let off = r.get_u64_le() as usize;
                let len = r.get_u64_le() as usize;
                let want = r.get_u32_le();
                if off + len > part_bytes || crc32c(&buf[off..off + len]) != want {
                    bad = true;
                }
                checked += len as u64;
            }
        }
        if !any_put {
            if let Ok(side) = fs::read(self.crc_path(locale)) {
                if side.len() == 4 {
                    let want = u32::from_le_bytes([side[0], side[1], side[2], side[3]]);
                    checked += part_bytes as u64;
                    if crc32c(&buf) != want {
                        bad = true;
                    }
                }
            }
        }
        self.mp.stats.add(&self.mp.stats.crc_bytes_checked, checked);
        if bad {
            self.mp.report_corruption(locale, "window", "segment CRC mismatch");
            std::panic::panic_any(self.mp.corruption_error());
        }
    }

    /// Element count of one locale's part.
    pub fn len(&self, locale: usize) -> usize {
        self.lens[locale]
    }

    /// True when `locale`'s part is empty.
    pub fn is_empty(&self, locale: usize) -> bool {
        self.lens[locale] == 0
    }

    /// Creates this rank's file and writes `bytes` as its full content.
    /// Must be followed by a barrier before any peer reads or writes it.
    pub fn publish_own(&self, bytes: &[u8]) {
        let me = self.mp.rank();
        assert_eq!(bytes.len(), self.lens[me] * self.elem, "publish size mismatch");
        // Read+write: the handle is cached and later serves `read` too.
        let mut f = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.path(me))
            .unwrap_or_else(|e| {
                self.fail(format!("create segment {}: {e}", self.path(me).display()))
            });
        f.write_all(bytes).unwrap_or_else(|e| self.fail(format!("publish segment: {e}")));
        *self.files[me].lock().unwrap() = Some(f);
        self.mp.stats.add(&self.mp.stats.shm_write_bytes, bytes.len() as u64);
        if self.mp.integrity.full() {
            let _ = fs::write(self.crc_path(me), crc32c(bytes).to_le_bytes());
        }
        self.corrupt_window_hook(me);
    }

    fn with_file<R>(&self, locale: usize, f: impl FnOnce(&File) -> std::io::Result<R>) -> R {
        let mut guard = self.files[locale].lock().unwrap();
        if guard.is_none() {
            let file = fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(self.path(locale))
                .unwrap_or_else(|e| {
                    self.fail(format!(
                        "open segment {} (missing barrier before access?): {e}",
                        self.path(locale).display()
                    ))
                });
            *guard = Some(file);
        }
        f(guard.as_ref().unwrap()).unwrap_or_else(|e| self.fail(format!("segment io: {e}")))
    }

    /// Reads `dst.len()` bytes from `locale`'s part at element `offset`.
    /// In full-integrity mode the first read of each part verifies the
    /// whole part against its CRC sidecars before any data is returned.
    pub fn read(&self, locale: usize, offset: usize, dst: &mut [u8]) {
        assert!(offset * self.elem + dst.len() <= self.lens[locale] * self.elem);
        if self.mp.integrity.full() && !self.verified[locale].swap(true, Ordering::SeqCst) {
            self.verify_part(locale);
        }
        self.with_file(locale, |f| pread(f, (offset * self.elem) as u64, dst));
        self.mp.stats.add(&self.mp.stats.shm_read_bytes, dst.len() as u64);
    }

    /// Writes `src` into `locale`'s part at element `offset`.
    pub fn write(&self, locale: usize, offset: usize, src: &[u8]) {
        assert!(offset * self.elem + src.len() <= self.lens[locale] * self.elem);
        self.with_file(locale, |f| pwrite(f, (offset * self.elem) as u64, src));
        self.mp.stats.add(&self.mp.stats.shm_write_bytes, src.len() as u64);
        if self.mp.integrity.full() {
            let mut record = Vec::with_capacity(20);
            record.put_u64_le((offset * self.elem) as u64);
            record.put_u64_le(src.len() as u64);
            record.put_u32_le(crc32c(src));
            let _ = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.putcrc_path(locale, self.mp.rank()))
                .and_then(|mut f| f.write_all(&record));
        }
        self.corrupt_window_hook(locale);
    }

    /// Collective epoch close: barriers (so every peer is done accessing
    /// the files) and then deletes this rank's file and the sidecars it
    /// wrote. Skipped while unwinding a poisoned epoch — a barrier here
    /// would hang against peers that are also unwinding; recovery
    /// resynchronizes segment ids, and the job directory is removed at
    /// exit, so the leaked files are bounded and harmless.
    pub fn close(&self) {
        if self.mp.is_poisoned() || std::thread::panicking() {
            return;
        }
        self.mp.barrier();
        let me = self.mp.rank();
        let _ = fs::remove_file(self.path(me));
        if self.mp.integrity.full() {
            let _ = fs::remove_file(self.crc_path(me));
            for locale in 0..self.lens.len() {
                let _ = fs::remove_file(self.putcrc_path(locale, me));
            }
        }
    }
}

fn pread(file: &File, off: u64, dst: &mut [u8]) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(dst, off)
    }
    #[cfg(not(unix))]
    {
        let _ = (file, off, dst);
        unreachable!("multiprocess backend is unix-only")
    }
}

fn pwrite(file: &File, off: u64, src: &[u8]) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(src, off)
    }
    #[cfg(not(unix))]
    {
        let _ = (file, off, src);
        unreachable!("multiprocess backend is unix-only")
    }
}

// ---- raw byte views ------------------------------------------------------

/// Views a slice of plain-old-data elements as bytes.
///
/// # Safety
/// `T` must be `Copy` **without padding bytes** (the runtime moves
/// `u64`/`u32`/`f64`/scalar-pair payloads only). All processes run the
/// same executable on the same architecture, so the layout agrees.
pub(crate) unsafe fn slice_as_bytes<T: Copy>(s: &[T]) -> &[u8] {
    std::slice::from_raw_parts(s.as_ptr() as *const u8, std::mem::size_of_val(s))
}

/// Decodes a byte payload produced by [`slice_as_bytes`] back into `T`s,
/// appending to `out`. Unaligned-safe.
pub(crate) fn decode_extend<T: Copy>(payload: &[u8], out: &mut Vec<T>) {
    let size = std::mem::size_of::<T>();
    assert!(
        size > 0 && payload.len().is_multiple_of(size),
        "payload not a whole number of elements"
    );
    out.reserve(payload.len() / size);
    for chunk in payload.chunks_exact(size) {
        // SAFETY: chunk holds exactly one T's bytes; read_unaligned
        // tolerates the arbitrary alignment of the network buffer.
        out.push(unsafe { std::ptr::read_unaligned(chunk.as_ptr() as *const T) });
    }
}

// ---- pair channels -------------------------------------------------------

/// Backend-agnostic (source locale → destination locale) staging channel:
/// the transport-aware replacement for raw [`BufferChannel`] grids. The
/// in-process variant *is* a `BufferChannel`; the multiprocess variants
/// speak the CHAN/CLOSE/CREDIT frame protocol, with exactly the same
/// single-outstanding-batch flow control and the same per-operation
/// [`CommStats`] attribution, so channel statistics agree across
/// backends.
pub enum PairChannel<T: Copy + Default> {
    /// Both endpoints in this process (in-process backend, or the local
    /// loopback pair of the multiprocess backend).
    Local(BufferChannel<T>),
    /// This process is the producer; the consumer is a remote rank.
    Sender(MpSender<T>),
    /// This process is the consumer; the producer is a remote rank.
    Receiver(MpReceiver<T>),
    /// Neither endpoint lives here (multiprocess: a third-party pair).
    Absent,
}

/// Producer endpoint of a cross-process channel.
pub struct MpSender<T: Copy> {
    mp: &'static MpRuntime,
    peer: usize,
    id: u64,
    capacity: usize,
    credits: Arc<ChanCredits>,
    _marker: std::marker::PhantomData<fn(T)>,
}

/// Consumer endpoint of a cross-process channel.
pub struct MpReceiver<T: Copy> {
    mp: &'static MpRuntime,
    peer: usize,
    id: u64,
    inbox: Arc<ChanInbox>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Copy + Default> PairChannel<T> {
    /// Builds the full `locales × locales` channel grid in row-major
    /// `[source][destination]` order. In-process: every pair is a
    /// [`BufferChannel`]. Multiprocess: this rank's outgoing pairs are
    /// senders, incoming pairs are receivers, the self-loop stays a local
    /// buffer, and all other pairs are [`PairChannel::Absent`].
    /// SPMD-collective (channel ids come from a per-process counter).
    pub fn grid(n_locales: usize, capacity: usize) -> Vec<PairChannel<T>> {
        let Some(mp) = active() else {
            return (0..n_locales * n_locales)
                .map(|_| PairChannel::Local(BufferChannel::new(capacity)))
                .collect();
        };
        assert_eq!(mp.n_locales(), n_locales, "channel grid sized for another job");
        let base = mp.alloc_chan_ids(n_locales * n_locales);
        let me = mp.rank();
        let mut out = Vec::with_capacity(n_locales * n_locales);
        for src in 0..n_locales {
            for dest in 0..n_locales {
                let id = base + (src * n_locales + dest) as u64;
                out.push(if src == me && dest == me {
                    PairChannel::Local(BufferChannel::new(capacity))
                } else if src == me {
                    PairChannel::Sender(MpSender {
                        mp,
                        peer: dest,
                        id,
                        capacity,
                        credits: mp.credit_cell(id),
                        _marker: std::marker::PhantomData,
                    })
                } else if dest == me {
                    PairChannel::Receiver(MpReceiver {
                        mp,
                        peer: src,
                        id,
                        inbox: mp.inbox(id),
                        _marker: std::marker::PhantomData,
                    })
                } else {
                    PairChannel::Absent
                });
            }
        }
        out
    }

    /// Producer: blocking claim of the (single) staging buffer. On the
    /// multiprocess backend the wait aborts promptly if the consumer
    /// rank dies (its credit would otherwise never come back and the
    /// spin would outlast the collective timeout).
    pub fn claim(&self) {
        match self {
            PairChannel::Local(ch) => ch.claim(),
            PairChannel::Sender(s) => {
                let backoff = Backoff::new();
                loop {
                    let avail = s.credits.avail.load(Ordering::Acquire);
                    if avail > 0
                        && s.credits
                            .avail
                            .compare_exchange(
                                avail,
                                avail - 1,
                                Ordering::Acquire,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    {
                        return;
                    }
                    if backoff.is_completed() {
                        s.mp.check_peers_alive("consumer lost while awaiting channel credit");
                    }
                    backoff.snooze();
                }
            }
            _ => panic!("claim on a non-producer channel endpoint"),
        }
    }

    /// Producer: publishes a claimed batch to the consumer.
    pub fn send(&self, stats: &CommStats, remote: bool, data: &[T]) {
        match self {
            PairChannel::Local(ch) => ch.send(stats, remote, data),
            PairChannel::Sender(s) => {
                assert!(data.len() <= s.capacity, "buffer overflow");
                // SAFETY: channel payload types are padding-free PODs
                // (see slice_as_bytes).
                let payload = unsafe { slice_as_bytes(data) };
                s.mp.send_chan(s.peer, s.id, payload);
                stats.record_put(payload.len(), true);
                stats.record_flag_message();
            }
            _ => panic!("send on a non-producer channel endpoint"),
        }
    }

    /// Producer: declares the stream finished for this product.
    pub fn close(&self) {
        match self {
            PairChannel::Local(ch) => ch.close(),
            PairChannel::Sender(s) => s.mp.send_close(s.peer, s.id),
            _ => panic!("close on a non-producer channel endpoint"),
        }
    }

    /// Consumer: takes one published batch if available, appending the
    /// elements to `out` and returning the buffer credit to the producer.
    pub fn try_recv(&self, stats: &CommStats, remote: bool, out: &mut Vec<T>) -> bool {
        match self {
            PairChannel::Local(ch) => ch.try_recv(stats, remote, out),
            PairChannel::Receiver(r) => {
                let payload = r.inbox.q.lock().unwrap().pop_front();
                let Some(payload) = payload else { return false };
                decode_extend(&payload, out);
                r.mp.send_credit(r.peer, r.id);
                stats.record_flag_message();
                true
            }
            _ => panic!("recv on a non-consumer channel endpoint"),
        }
    }

    /// Consumer: true when the stream is certainly finished (closed
    /// observed, then one more failed receive). See
    /// [`BufferChannel::drained_after_failed_recv`].
    pub fn drained_after_failed_recv(&self, stats: &CommStats, out: &mut Vec<T>) -> bool {
        match self {
            PairChannel::Local(ch) => ch.drained_after_failed_recv(stats, out),
            PairChannel::Receiver(r) => {
                if !r.inbox.closed.load(Ordering::Acquire) {
                    // A producer that died mid-stream will never close;
                    // abort instead of spinning into the timeout.
                    if r.mp.health[r.peer].dead.load(Ordering::SeqCst)
                        && r.inbox.q.lock().unwrap().is_empty()
                    {
                        r.mp.check_peers_alive("producer lost before closing its channel");
                    }
                    return false;
                }
                // CLOSE travels behind every CHAN frame (per-peer FIFO),
                // so closed + empty queue means drained for good.
                !self.try_recv(stats, false, out)
            }
            _ => panic!("drain check on a non-consumer channel endpoint"),
        }
    }

    /// Re-arms the channel for the next product (buffer/credit reuse).
    ///
    /// # Panics
    /// Panics when the channel is not idle (undrained data, outstanding
    /// credit) — products must be separated by a barrier, which also
    /// flushes the last credit frames home.
    pub fn reset(&self) {
        match self {
            PairChannel::Local(ch) => ch.reset(),
            PairChannel::Sender(s) => {
                let avail = s.credits.avail.load(Ordering::Acquire);
                if avail != 1 {
                    // A consumer that unwound out of a poisoned epoch
                    // never returned the credit — recoverable, not a
                    // protocol bug.
                    s.mp.raise_if_poisoned();
                    panic!("reset while the consumer still holds the batch credit ({avail})");
                }
            }
            PairChannel::Receiver(r) => {
                if !r.inbox.closed.load(Ordering::Acquire) {
                    r.mp.raise_if_poisoned();
                    panic!("reset of an open channel");
                }
                if !r.inbox.q.lock().unwrap().is_empty() {
                    r.mp.raise_if_poisoned();
                    panic!("reset with unconsumed data");
                }
                r.inbox.closed.store(false, Ordering::Release);
            }
            PairChannel::Absent => {}
        }
    }
}

impl<T: Copy> Drop for MpSender<T> {
    fn drop(&mut self) {
        self.mp.drop_chan(self.id);
    }
}

impl<T: Copy> Drop for MpReceiver<T> {
    fn drop(&mut self) {
        self.mp.drop_chan(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parse_defaults_to_inprocess() {
        // The test environment never sets LS_TRANSPORT.
        assert_eq!(requested_backend(), Backend::InProcess);
        assert_eq!(backend(), Backend::InProcess);
        assert!(active().is_none());
        assert!(is_primary());
        assert_eq!(Backend::MultiProcess.name(), "multiprocess");
    }

    #[test]
    fn pair_channel_grid_is_local_in_process() {
        let grid = PairChannel::<(u64, f64)>::grid(3, 8);
        assert_eq!(grid.len(), 9);
        let stats = CommStats::new();
        for ch in &grid {
            assert!(matches!(ch, PairChannel::Local(_)));
            ch.claim();
            ch.send(&stats, true, &[(7, 0.5)]);
            let mut out = Vec::new();
            assert!(ch.try_recv(&stats, true, &mut out));
            assert_eq!(out, vec![(7, 0.5)]);
            ch.close();
            assert!(ch.drained_after_failed_recv(&stats, &mut out));
            ch.reset();
        }
    }

    #[test]
    fn byte_roundtrip_preserves_pairs() {
        let data: Vec<(u64, f64)> = (0..17).map(|i| (i as u64 * 3, i as f64 * 0.25)).collect();
        // SAFETY: (u64, f64) has no padding.
        let bytes = unsafe { slice_as_bytes(&data) }.to_vec();
        let mut back: Vec<(u64, f64)> = Vec::new();
        decode_extend(&bytes, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn transport_stats_snapshot_and_reset() {
        let stats = TransportStats::default();
        stats.add(&stats.tx_bytes, 100);
        stats.add(&stats.barriers, 2);
        stats.add(&stats.barrier_nanos, 3_000_000_000);
        stats.add(&stats.peer_failures, 2);
        stats.add(&stats.detection_nanos, 24_000_000);
        stats.add(&stats.frames_corrupted, 1);
        stats.add(&stats.crc_bytes_checked, 4096);
        let snap = stats.snapshot();
        assert_eq!(snap.tx_bytes, 100);
        assert_eq!(snap.frames_corrupted, 1);
        assert_eq!(snap.crc_bytes_checked, 4096);
        assert!((snap.mean_barrier_seconds() - 1.5).abs() < 1e-12);
        assert!((snap.mean_detection_seconds() - 0.012).abs() < 1e-12);
        stats.reset();
        assert_eq!(stats.snapshot(), TransportSnapshot::default());
        assert_eq!(TransportSnapshot::default().mean_barrier_seconds(), 0.0);
        assert_eq!(TransportSnapshot::default().mean_detection_seconds(), 0.0);
    }

    #[test]
    fn transport_errors_attribute_and_map_exit_codes() {
        let failed = TransportError::PeerFailed {
            peer: 2,
            detail: "connection lost during collective".into(),
            detection: Duration::from_millis(12),
        };
        assert_eq!(failed.exit_code(), EXIT_FAILOVER);
        let text = failed.to_string();
        assert!(text.contains("rank 2"), "{text}");
        assert!(text.contains("detected in 0.012s"), "{text}");

        let desync = TransportError::Desync { peer: 1, expected: 7, got: 9 };
        assert_eq!(desync.exit_code(), EXIT_PROTOCOL);
        assert!(desync.to_string().contains("expected seq 7, got 9"));

        let timeout =
            TransportError::Timeout { peer: 3, seq: 5, waited: Duration::from_secs(180) };
        assert_eq!(timeout.exit_code(), EXIT_PROTOCOL);

        let aborted = TransportError::Aborted { origin: 0, reason: "peer died".into() };
        assert_eq!(aborted.exit_code(), EXIT_FAILOVER);
        assert!(aborted.to_string().contains("aborted by rank 0"));

        let protocol = TransportError::Protocol { detail: "unknown frame tag 42".into() };
        assert_eq!(protocol.exit_code(), EXIT_PROTOCOL);

        let corrupt = TransportError::Corruption {
            peer: 1,
            frame: "accum".into(),
            kind: "frame CRC mismatch".into(),
        };
        assert_eq!(corrupt.exit_code(), EXIT_CORRUPTION);
        let text = corrupt.to_string();
        assert!(text.contains("corrupt accum from rank 1"), "{text}");
        assert!(text.contains("frame CRC mismatch"), "{text}");
    }

    #[test]
    fn integrity_mode_defaults_to_full() {
        // The test environment never sets LS_INTEGRITY.
        let mode = IntegrityMode::from_env();
        assert_eq!(mode, IntegrityMode::Full);
        assert!(mode.wire());
        assert!(mode.full());
        assert!(IntegrityMode::Wire.wire());
        assert!(!IntegrityMode::Wire.full());
        assert!(!IntegrityMode::Off.wire());
        assert_eq!(IntegrityMode::Off.name(), "off");
        assert_eq!(IntegrityMode::Wire.name(), "wire");
        assert_eq!(IntegrityMode::Full.name(), "full");
    }

    #[test]
    fn restart_count_defaults_to_zero() {
        // The test environment never sets LS_MP_RESTART_COUNT.
        assert_eq!(restart_count(), 0);
        assert_eq!(TransportStats::default().snapshot().restarts, 0);
    }

    #[test]
    fn poll_failure_is_a_noop_in_process() {
        poll_failure(); // no runtime: must return without side effects
    }
}
