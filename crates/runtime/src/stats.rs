//! Per-locale communication statistics.
//!
//! Every one-sided operation is recorded here. The counts are *exact*
//! functions of the algorithm and the locale count — which is what lets
//! the performance model project paper-scale timings from small-scale
//! executions.
//!
//! These counters describe the *algorithm's* communication; transport
//! mechanics — wire frames and bytes, and since the fault-tolerance
//! work also peer failures detected, aborts fanned out, heartbeats and
//! detection latency — live in [`crate::transport::TransportStats`].
//! Heartbeat traffic is deliberately excluded from the wire byte
//! counters so the two layers stay comparable across runs with and
//! without failure detection enabled.

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket count: message sizes are classified by `ceil(log2)`.
pub const SIZE_CLASSES: usize = 40;

/// Communication counters for one locale. All counters are relaxed
/// atomics: they are statistics, not synchronization.
#[derive(Debug)]
pub struct CommStats {
    /// Remote put operations (writes to another locale's memory).
    pub puts: AtomicU64,
    /// Bytes written by remote puts.
    pub put_bytes: AtomicU64,
    /// Remote get operations.
    pub gets: AtomicU64,
    /// Bytes read by remote gets.
    pub get_bytes: AtomicU64,
    /// Local (same-locale) put/get operations, for completeness.
    pub local_ops: AtomicU64,
    /// Bytes moved by local put/get operations.
    pub local_bytes: AtomicU64,
    /// Remote atomic updates (accumulations into remote memory).
    pub remote_atomics: AtomicU64,
    /// `remoteAtomicWrite` flag messages (the paper's fastOn active
    /// messages).
    pub flag_messages: AtomicU64,
    /// Barrier crossings.
    pub barriers: AtomicU64,
    /// Message-size histogram (puts + gets), bucket = ceil(log2(bytes)).
    pub size_histogram: [AtomicU64; SIZE_CLASSES],
}

impl Default for CommStats {
    fn default() -> Self {
        Self::new()
    }
}

impl CommStats {
    /// All-zero counters.
    pub fn new() -> Self {
        Self {
            puts: AtomicU64::new(0),
            put_bytes: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            get_bytes: AtomicU64::new(0),
            local_ops: AtomicU64::new(0),
            local_bytes: AtomicU64::new(0),
            remote_atomics: AtomicU64::new(0),
            flag_messages: AtomicU64::new(0),
            barriers: AtomicU64::new(0),
            size_histogram: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn bucket(bytes: usize) -> usize {
        (usize::BITS - bytes.max(1).leading_zeros()) as usize % SIZE_CLASSES
    }

    /// Records one put of `bytes` (`remote` selects remote vs local
    /// counters and the histogram).
    #[inline]
    pub fn record_put(&self, bytes: usize, remote: bool) {
        if remote {
            self.puts.fetch_add(1, Ordering::Relaxed);
            self.put_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            self.size_histogram[Self::bucket(bytes)].fetch_add(1, Ordering::Relaxed);
        } else {
            self.local_ops.fetch_add(1, Ordering::Relaxed);
            self.local_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// Records one get of `bytes` (`remote` as in [`Self::record_put`]).
    #[inline]
    pub fn record_get(&self, bytes: usize, remote: bool) {
        if remote {
            self.gets.fetch_add(1, Ordering::Relaxed);
            self.get_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            self.size_histogram[Self::bucket(bytes)].fetch_add(1, Ordering::Relaxed);
        } else {
            self.local_ops.fetch_add(1, Ordering::Relaxed);
            self.local_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// Records one remote atomic update.
    #[inline]
    pub fn record_remote_atomic(&self) {
        self.remote_atomics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one flag message (the paper's `remoteAtomicWrite`).
    #[inline]
    pub fn record_flag_message(&self) {
        self.flag_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one barrier crossing.
    #[inline]
    pub fn record_barrier(&self) {
        self.barriers.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-old-data snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            put_bytes: self.put_bytes.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            get_bytes: self.get_bytes.load(Ordering::Relaxed),
            local_ops: self.local_ops.load(Ordering::Relaxed),
            local_bytes: self.local_bytes.load(Ordering::Relaxed),
            remote_atomics: self.remote_atomics.load(Ordering::Relaxed),
            flag_messages: self.flag_messages.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            size_histogram: self
                .size_histogram
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.puts.store(0, Ordering::Relaxed);
        self.put_bytes.store(0, Ordering::Relaxed);
        self.gets.store(0, Ordering::Relaxed);
        self.get_bytes.store(0, Ordering::Relaxed);
        self.local_ops.store(0, Ordering::Relaxed);
        self.local_bytes.store(0, Ordering::Relaxed);
        self.remote_atomics.store(0, Ordering::Relaxed);
        self.flag_messages.store(0, Ordering::Relaxed);
        self.barriers.store(0, Ordering::Relaxed);
        for c in &self.size_histogram {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Plain-data snapshot of [`CommStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Remote put operations.
    pub puts: u64,
    /// Bytes written by remote puts.
    pub put_bytes: u64,
    /// Remote get operations.
    pub gets: u64,
    /// Bytes read by remote gets.
    pub get_bytes: u64,
    /// Local (same-locale) put/get operations.
    pub local_ops: u64,
    /// Bytes moved by local operations.
    pub local_bytes: u64,
    /// Remote atomic updates.
    pub remote_atomics: u64,
    /// Flag messages.
    pub flag_messages: u64,
    /// Barrier crossings.
    pub barriers: u64,
    /// Message-size histogram (puts + gets), bucket = ceil(log2(bytes)).
    pub size_histogram: Vec<u64>,
}

impl StatsSnapshot {
    /// Sum of two snapshots (for cluster-wide totals).
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            puts: self.puts + other.puts,
            put_bytes: self.put_bytes + other.put_bytes,
            gets: self.gets + other.gets,
            get_bytes: self.get_bytes + other.get_bytes,
            local_ops: self.local_ops + other.local_ops,
            local_bytes: self.local_bytes + other.local_bytes,
            remote_atomics: self.remote_atomics + other.remote_atomics,
            flag_messages: self.flag_messages + other.flag_messages,
            barriers: self.barriers + other.barriers,
            size_histogram: self
                .size_histogram
                .iter()
                .zip(&other.size_histogram)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Mean remote message size in bytes (puts + gets), or 0.
    pub fn mean_message_bytes(&self) -> f64 {
        let msgs = self.puts + self.gets;
        if msgs == 0 {
            0.0
        } else {
            (self.put_bytes + self.get_bytes) as f64 / msgs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_classification() {
        assert_eq!(CommStats::bucket(1), 1);
        assert_eq!(CommStats::bucket(2), 2);
        assert_eq!(CommStats::bucket(3), 2);
        assert_eq!(CommStats::bucket(4), 3);
        assert_eq!(CommStats::bucket(1024), 11);
        assert_eq!(CommStats::bucket(2048), 12);
    }

    #[test]
    fn record_and_snapshot() {
        let s = CommStats::new();
        s.record_put(100, true);
        s.record_put(100, false);
        s.record_get(8, true);
        s.record_remote_atomic();
        s.record_flag_message();
        s.record_barrier();
        let snap = s.snapshot();
        assert_eq!(snap.puts, 1);
        assert_eq!(snap.put_bytes, 100);
        assert_eq!(snap.gets, 1);
        assert_eq!(snap.get_bytes, 8);
        assert_eq!(snap.local_ops, 1);
        assert_eq!(snap.local_bytes, 100);
        assert_eq!(snap.remote_atomics, 1);
        assert_eq!(snap.flag_messages, 1);
        assert_eq!(snap.barriers, 1);
        assert!((snap.mean_message_bytes() - 54.0).abs() < 1e-12);
        s.reset();
        assert_eq!(s.snapshot().puts, 0);
    }

    #[test]
    fn merged_totals() {
        let a = CommStats::new();
        a.record_put(10, true);
        let b = CommStats::new();
        b.record_put(20, true);
        b.record_get(5, true);
        let m = a.snapshot().merged(&b.snapshot());
        assert_eq!(m.puts, 2);
        assert_eq!(m.put_bytes, 30);
        assert_eq!(m.gets, 1);
    }
}
