//! Distributed vectors: one `Vec<T>` per locale.

/// A vector partitioned across locales. The owner holds it outside
//  cluster execution; inside an epoch, access goes through RMA windows.
#[derive(Clone, Debug, PartialEq)]
pub struct DistVec<T> {
    parts: Vec<Vec<T>>,
}

impl<T> DistVec<T> {
    /// `n_locales` empty parts.
    pub fn new(n_locales: usize) -> Self {
        Self { parts: (0..n_locales).map(|_| Vec::new()).collect() }
    }

    /// Wraps existing per-locale parts.
    pub fn from_parts(parts: Vec<Vec<T>>) -> Self {
        Self { parts }
    }

    /// Number of parts (= locales).
    pub fn n_locales(&self) -> usize {
        self.parts.len()
    }

    /// One locale's part, read-only.
    pub fn part(&self, locale: usize) -> &[T] {
        &self.parts[locale]
    }

    /// One locale's part, mutable (owner access outside epochs).
    pub fn part_mut(&mut self, locale: usize) -> &mut Vec<T> {
        &mut self.parts[locale]
    }

    /// All parts in locale order.
    pub fn parts(&self) -> &[Vec<T>] {
        &self.parts
    }

    /// All parts, mutable.
    pub fn parts_mut(&mut self) -> &mut [Vec<T>] {
        &mut self.parts
    }

    /// Consumes the vector into its parts.
    pub fn into_parts(self) -> Vec<Vec<T>> {
        self.parts
    }

    /// Sum of all part lengths (the global dimension).
    pub fn total_len(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// Per-locale part lengths.
    pub fn lens(&self) -> Vec<usize> {
        self.parts.iter().map(|p| p.len()).collect()
    }

    /// Concatenates all parts in locale order.
    pub fn concat(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.total_len());
        for p in &self.parts {
            out.extend_from_slice(p);
        }
        out
    }

    /// Visits every element in ascending global order (parts in locale
    /// order, elements in part order) — the serialization hook: a
    /// distributed vector streamed through this is element-for-element
    /// the canonical dense vector, independent of the locale count.
    /// (Deserialization goes the other way through the owner's mutable
    /// parts, e.g. `ls_eigen::KrylovVec::fill_with`.)
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        for p in &self.parts {
            for x in p {
                f(x);
            }
        }
    }
}

impl<T: Clone + Default> DistVec<T> {
    /// Parts sized according to `lens`, default-filled.
    pub fn zeros(lens: &[usize]) -> Self {
        Self { parts: lens.iter().map(|&l| vec![T::default(); l]).collect() }
    }
}

/// The block distribution of `total` elements over `locales` locales:
/// global indices `block_range(total, locales, l)` live on locale `l`.
/// Matches the range splitting used everywhere else in the workspace
/// (contiguous, sizes differing by at most one).
#[inline]
pub fn block_range(total: u64, locales: usize, locale: usize) -> (u64, u64) {
    debug_assert!(locale < locales);
    let l = locale as u128;
    let n = locales as u128;
    let t = total as u128;
    ((l * t / n) as u64, ((l + 1) * t / n) as u64)
}

/// Block-distribution descriptor with owner lookup.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlockLayout {
    /// Global element count.
    pub total: u64,
    /// Number of locales the elements are distributed over.
    pub locales: usize,
}

impl BlockLayout {
    /// The block distribution of `total` elements over `locales` locales.
    pub fn new(total: u64, locales: usize) -> Self {
        assert!(locales >= 1);
        Self { total, locales }
    }

    /// The `[lo, hi)` global range owned by `locale`.
    #[inline]
    pub fn range(&self, locale: usize) -> (u64, u64) {
        block_range(self.total, self.locales, locale)
    }

    /// Number of elements on `locale`.
    #[inline]
    pub fn len(&self, locale: usize) -> usize {
        let (lo, hi) = self.range(locale);
        (hi - lo) as usize
    }

    /// True when the layout holds no elements at all.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Which locale owns global index `i`.
    #[inline]
    pub fn owner(&self, i: u64) -> usize {
        debug_assert!(i < self.total);
        // Inverse of block_range: owner = floor((i+1) * L - 1 / total)…
        // simpler and safe: first candidate by proportion, then adjust.
        let mut l = ((i as u128 * self.locales as u128) / self.total as u128) as usize;
        loop {
            let (lo, hi) = self.range(l);
            if i < lo {
                l -= 1;
            } else if i >= hi {
                l += 1;
            } else {
                return l;
            }
        }
    }

    /// Global index -> (locale, local offset).
    #[inline]
    pub fn locate(&self, i: u64) -> (usize, usize) {
        let l = self.owner(i);
        let (lo, _) = self.range(l);
        (l, (i - lo) as usize)
    }

    /// All per-locale lengths.
    pub fn all_lens(&self) -> Vec<usize> {
        (0..self.locales).map(|l| self.len(l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distvec_basics() {
        let mut v = DistVec::<u32>::new(3);
        v.part_mut(0).extend([1, 2]);
        v.part_mut(2).extend([5]);
        assert_eq!(v.total_len(), 3);
        assert_eq!(v.lens(), vec![2, 0, 1]);
        assert_eq!(v.concat(), vec![1, 2, 5]);
        let z = DistVec::<f64>::zeros(&[2, 3]);
        assert_eq!(z.part(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn block_ranges_partition() {
        for total in [0u64, 1, 7, 100, 1023] {
            for locales in [1usize, 2, 3, 8] {
                let layout = BlockLayout::new(total, locales);
                let mut covered = 0u64;
                for l in 0..locales {
                    let (lo, hi) = layout.range(l);
                    assert_eq!(lo, covered);
                    covered = hi;
                    // Sizes differ by at most one.
                    let base = total / locales as u64;
                    let len = hi - lo;
                    assert!(len == base || len == base + 1);
                }
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn owner_agrees_with_ranges() {
        let layout = BlockLayout::new(101, 7);
        for i in 0..101u64 {
            let l = layout.owner(i);
            let (lo, hi) = layout.range(l);
            assert!(lo <= i && i < hi);
            let (ll, off) = layout.locate(i);
            assert_eq!(ll, l);
            assert_eq!(off as u64, i - lo);
        }
    }
}
