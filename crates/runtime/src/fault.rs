//! Deterministic fault injection for the multiprocess transport.
//!
//! A fault plan is parsed from the `LS_FAULT` environment variable and
//! executed inside [`crate::transport`]. Triggers are counter-derived
//! (barrier ordinals, frame send counts), never time-derived, so a plan
//! replays identically on every run of the same deterministic SPMD
//! program — the property that turns a kill-and-resume smoke test into a
//! systematic fault matrix.
//!
//! Grammar (actions separated by `;`, keys by `,`):
//!
//! ```text
//! LS_FAULT = action (";" action)*
//! action   = "kill"           ":" keys — SIGABRT the rank at a barrier
//!          | "delay"          ":" keys — sleep before sending matching frames
//!          | "drop-conn"      ":" keys — shut down every mesh socket at a barrier
//!          | "flip-bit"       ":" keys — flip one payload bit of a wire frame
//!                                        after its CRC is sealed (silent wire
//!                                        corruption)
//!          | "corrupt-window" ":" keys — flip one byte's low bit in a
//!                                        shared-memory segment after it is
//!                                        written (silent memory corruption)
//!          | "nan"            ":" keys — poison the rank's local dot partial
//!                                        with NaN in one matvec epoch (silent
//!                                        arithmetic corruption)
//! keys     = key "=" value ("," key "=" value)*
//!            rank=R                  (required: which rank misbehaves)
//!            barrier=N               (kill/drop-conn: fire entering the
//!                                     N-th barrier of the run; default 1)
//!            frame=coll|chan|close|credit|accum|any
//!                                    (delay/flip-bit: which frames;
//!                                     default any)
//!            ms=M                    (delay: sleep per frame; default 100)
//!            count=C                 (delay: first C matching frames;
//!                                     corrupt-window: C consecutive
//!                                     writes starting at nth; default 1)
//!            nth=K                   (flip-bit: fire on the K-th matching
//!                                     frame this rank seals;
//!                                     corrupt-window: start at the K-th
//!                                     segment write — enumeration writes
//!                                     windows too, so pick K past them to
//!                                     land inside the solve; default 1)
//!            offset=B                (corrupt-window: byte offset within
//!                                     the written range; default 0)
//!            cycle=K                 (nan: fire in the K-th fused
//!                                     matvec+dot epoch; default 1)
//!            attempt=A               (fire only in supervisor incarnation
//!                                     A; default 0, i.e. the first launch
//!                                     — restarted incarnations run clean
//!                                     so recovery converges)
//! ```
//!
//! Examples: `kill:rank=2,barrier=7`, `delay:rank=1,frame=accum,ms=500`,
//! `flip-bit:rank=2,frame=accum,nth=40`, `corrupt-window:rank=1,offset=8`,
//! `nan:rank=0,cycle=3`, or several at once separated by `;`.
//!
//! The three corruption kinds are *silent*: they damage data without
//! crashing anything, which is exactly what the integrity layer
//! (`LS_INTEGRITY`, the matvec checksum tally, the Krylov health
//! monitors) must detect and recover from. A malformed plan is a typed
//! [`FaultPlanError`] naming the offending clause; the supervisor
//! validates the plan before spawning any worker, so a chaos-test typo
//! fails at launch instead of deep inside the transport.

use std::fmt;
use std::time::Duration;

/// Environment variable carrying the fault plan.
pub const ENV_FAULT: &str = "LS_FAULT";

/// What a fault action does when its trigger fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Abort the process (SIGABRT — the supervisor classifies it as a
    /// crash) on entering the trigger barrier.
    Kill,
    /// Sleep `ms` before sending each of the first `count` matching
    /// frames.
    Delay,
    /// Shut down every mesh TCP stream on entering the trigger barrier
    /// (simulates losing the NIC: peers observe EOF, the rank itself
    /// fails its next send).
    DropConn,
    /// Flip one bit of the `nth` matching frame's payload *after* the
    /// integrity CRC is sealed — the receiver's CRC check must catch it
    /// (or, with `LS_INTEGRITY=off`, the corruption sails through, which
    /// is the documented cost of turning integrity off).
    FlipBit,
    /// Flip the low bit of one byte in a shared-memory segment right
    /// after this rank writes it, bypassing the CRC sidecar — readers
    /// verifying the part must catch the mismatch.
    CorruptWindow,
    /// Replace this rank's local dot partial with NaN in the `cycle`-th
    /// fused matvec+dot epoch. The NaN propagates through the rank-ordered
    /// reduction to every rank identically, so the solver's health monitor
    /// fails the same cycle everywhere — no distributed coordination
    /// needed to recover.
    Nan,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Kill => "kill",
            FaultKind::Delay => "delay",
            FaultKind::DropConn => "drop-conn",
            FaultKind::FlipBit => "flip-bit",
            FaultKind::CorruptWindow => "corrupt-window",
            FaultKind::Nan => "nan",
        })
    }
}

/// Which wire frames a `delay` action applies to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FrameClass {
    /// Collective frames (barriers, allgathers, reductions).
    Coll,
    /// Channel data frames.
    Chan,
    /// Channel close frames.
    Close,
    /// Channel credit returns.
    Credit,
    /// Remote accumulate frames.
    Accum,
    /// Every frame.
    Any,
}

impl FrameClass {
    /// Stable lowercase name, as used in the `frame=` key.
    pub fn name(self) -> &'static str {
        match self {
            FrameClass::Coll => "coll",
            FrameClass::Chan => "chan",
            FrameClass::Close => "close",
            FrameClass::Credit => "credit",
            FrameClass::Accum => "accum",
            FrameClass::Any => "any",
        }
    }
}

/// One parsed fault action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultAction {
    /// What to do.
    pub kind: FaultKind,
    /// The rank that misbehaves.
    pub rank: usize,
    /// Barrier ordinal (1-based) at which kill/drop-conn fire.
    pub barrier: u64,
    /// Frame filter for delay actions.
    pub frame: FrameClass,
    /// Delay per matching frame.
    pub ms: u64,
    /// How many matching frames a delay action slows down (and how many
    /// writes a corrupt-window action damages).
    pub count: u64,
    /// Which matching frame a flip-bit action damages, or the first
    /// segment write a corrupt-window action damages (1-based).
    pub nth: u64,
    /// Byte offset within the written range a corrupt-window action
    /// flips (clamped to the range).
    pub offset: u64,
    /// Which fused matvec+dot epoch a nan action poisons (1-based).
    pub cycle: u64,
    /// Supervisor incarnation in which the action is armed.
    pub attempt: u64,
}

impl FaultAction {
    /// The sleep a `delay` action injects.
    pub fn delay(&self) -> Duration {
        Duration::from_millis(self.ms)
    }
}

/// A parsed `LS_FAULT` plan. An empty plan injects nothing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The parsed actions, in plan order.
    pub actions: Vec<FaultAction>,
}

/// A malformed `LS_FAULT` value, with the offending fragment. Returned
/// (never panicked from a worker's transport guts) so the launcher can
/// fail fast with the clause that broke.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlanError(pub String);

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed {ENV_FAULT} plan: {}", self.0)
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// Parses a plan string. Errors are loud: a typo in a chaos test must
    /// not silently inject nothing.
    pub fn parse(plan: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut actions = Vec::new();
        for raw in plan.split(';') {
            let spec = raw.trim();
            if spec.is_empty() {
                continue;
            }
            let (kind_str, keys) = spec
                .split_once(':')
                .ok_or_else(|| FaultPlanError(format!("{spec:?}: missing ':' after kind")))?;
            let kind = match kind_str.trim() {
                "kill" => FaultKind::Kill,
                "delay" => FaultKind::Delay,
                "drop-conn" => FaultKind::DropConn,
                "flip-bit" => FaultKind::FlipBit,
                "corrupt-window" => FaultKind::CorruptWindow,
                "nan" => FaultKind::Nan,
                other => {
                    return Err(FaultPlanError(format!(
                        "unknown kind {other:?} (want kill, delay, drop-conn, flip-bit, \
                         corrupt-window or nan)"
                    )))
                }
            };
            let mut rank: Option<usize> = None;
            let mut barrier = 1u64;
            let mut frame = FrameClass::Any;
            let mut ms = 100u64;
            let mut count = 1u64;
            let mut nth = 1u64;
            let mut offset = 0u64;
            let mut cycle = 1u64;
            let mut attempt = 0u64;
            for kv in keys.split(',') {
                let kv = kv.trim();
                if kv.is_empty() {
                    continue;
                }
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| FaultPlanError(format!("{kv:?}: missing '='")))?;
                let (key, value) = (key.trim(), value.trim());
                let num = || {
                    value
                        .parse::<u64>()
                        .map_err(|_| FaultPlanError(format!("{key}={value:?}: not a number")))
                };
                match key {
                    "rank" => rank = Some(num()? as usize),
                    "barrier" => barrier = num()?,
                    "ms" => ms = num()?,
                    "count" => count = num()?,
                    "nth" => nth = num()?,
                    "offset" => offset = num()?,
                    "cycle" => cycle = num()?,
                    "attempt" => attempt = num()?,
                    "frame" => {
                        frame = match value {
                            "coll" => FrameClass::Coll,
                            "chan" => FrameClass::Chan,
                            "close" => FrameClass::Close,
                            "credit" => FrameClass::Credit,
                            "acc" | "accum" => FrameClass::Accum,
                            "any" => FrameClass::Any,
                            other => {
                                return Err(FaultPlanError(format!(
                                    "frame={other:?}: want coll, chan, close, credit, \
                                     accum or any"
                                )))
                            }
                        }
                    }
                    other => return Err(FaultPlanError(format!("unknown key {other:?}"))),
                }
            }
            let rank =
                rank.ok_or_else(|| FaultPlanError(format!("{spec:?}: rank= is required")))?;
            if barrier == 0 {
                return Err(FaultPlanError("barrier ordinals are 1-based".into()));
            }
            if nth == 0 {
                return Err(FaultPlanError("nth is 1-based".into()));
            }
            if cycle == 0 {
                return Err(FaultPlanError("cycle ordinals are 1-based".into()));
            }
            actions.push(FaultAction {
                kind,
                rank,
                barrier,
                frame,
                ms,
                count,
                nth,
                offset,
                cycle,
                attempt,
            });
        }
        Ok(FaultPlan { actions })
    }

    /// Parses `LS_FAULT` from the environment; absent means no faults.
    /// The fallible twin of [`FaultPlan::from_env`] — this is what the
    /// supervisor calls before spawning anything, so a malformed plan
    /// fails at launch with the offending clause instead of panicking
    /// deep inside a worker's transport setup.
    pub fn try_from_env() -> Result<FaultPlan, FaultPlanError> {
        match std::env::var(ENV_FAULT) {
            Err(_) => Ok(FaultPlan::default()),
            Ok(plan) => FaultPlan::parse(&plan),
        }
    }

    /// Parses `LS_FAULT` from the environment; absent means no faults.
    ///
    /// # Panics
    /// Panics on a malformed plan (silently ignoring a chaos plan would
    /// make a failing fault test look green). Worker-side backstop only:
    /// the supervisor already validated the plan via
    /// [`FaultPlan::try_from_env`] before any worker was spawned.
    pub fn from_env() -> FaultPlan {
        match FaultPlan::try_from_env() {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// True when no action is armed for `rank` in incarnation `attempt`
    /// (the hot-path early-out: transport hooks skip all bookkeeping).
    pub fn is_empty_for(&self, rank: usize, attempt: u64) -> bool {
        !self.actions.iter().any(|a| a.rank == rank && a.attempt == attempt)
    }

    /// The kill/drop-conn actions armed for `rank` in `attempt` that fire
    /// on entering barrier ordinal `barrier` (1-based).
    pub fn at_barrier(
        &self,
        rank: usize,
        attempt: u64,
        barrier: u64,
    ) -> impl Iterator<Item = &FaultAction> {
        self.actions.iter().filter(move |a| {
            a.rank == rank
                && a.attempt == attempt
                && a.barrier == barrier
                && matches!(a.kind, FaultKind::Kill | FaultKind::DropConn)
        })
    }

    /// The delay actions armed for `rank` in `attempt` matching a frame of
    /// class `frame`. Budget accounting (`count`) is the caller's job —
    /// the plan itself stays immutable and shareable.
    pub fn delays_for(
        &self,
        rank: usize,
        attempt: u64,
        frame: FrameClass,
    ) -> impl Iterator<Item = (usize, &FaultAction)> {
        self.actions.iter().enumerate().filter(move |(_, a)| {
            a.kind == FaultKind::Delay
                && a.rank == rank
                && a.attempt == attempt
                && (a.frame == FrameClass::Any || a.frame == frame)
        })
    }

    /// The flip-bit actions armed for `rank` in `attempt` matching a
    /// frame of class `frame`. The caller counts matching frames per
    /// action and fires on the `nth` (1-based).
    pub fn flips_for(
        &self,
        rank: usize,
        attempt: u64,
        frame: FrameClass,
    ) -> impl Iterator<Item = (usize, &FaultAction)> {
        self.actions.iter().enumerate().filter(move |(_, a)| {
            a.kind == FaultKind::FlipBit
                && a.rank == rank
                && a.attempt == attempt
                && (a.frame == FrameClass::Any || a.frame == frame)
        })
    }

    /// The corrupt-window actions armed for `rank` in `attempt`. The
    /// caller damages the first `count` segment writes per action.
    pub fn window_corruptions_for(
        &self,
        rank: usize,
        attempt: u64,
    ) -> impl Iterator<Item = (usize, &FaultAction)> {
        self.actions.iter().enumerate().filter(move |(_, a)| {
            a.kind == FaultKind::CorruptWindow && a.rank == rank && a.attempt == attempt
        })
    }

    /// The nan actions armed for `rank` in `attempt` that poison matvec
    /// epoch ordinal `cycle` (1-based).
    pub fn nans_at(
        &self,
        rank: usize,
        attempt: u64,
        cycle: u64,
    ) -> impl Iterator<Item = (usize, &FaultAction)> {
        self.actions.iter().enumerate().filter(move |(_, a)| {
            a.kind == FaultKind::Nan
                && a.rank == rank
                && a.attempt == attempt
                && a.cycle == cycle
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_examples() {
        let plan = FaultPlan::parse(
            "kill:rank=2,barrier=7; delay:rank=1,frame=accum,ms=500; drop-conn:rank=3",
        )
        .unwrap();
        assert_eq!(plan.actions.len(), 3);
        assert_eq!(
            plan.actions[0],
            FaultAction {
                kind: FaultKind::Kill,
                rank: 2,
                barrier: 7,
                frame: FrameClass::Any,
                ms: 100,
                count: 1,
                nth: 1,
                offset: 0,
                cycle: 1,
                attempt: 0,
            }
        );
        assert_eq!(plan.actions[1].kind, FaultKind::Delay);
        assert_eq!(plan.actions[1].frame, FrameClass::Accum);
        assert_eq!(plan.actions[1].ms, 500);
        assert_eq!(plan.actions[2].kind, FaultKind::DropConn);
        assert_eq!(plan.actions[2].barrier, 1, "barrier defaults to the first");
    }

    #[test]
    fn trigger_filters_respect_rank_attempt_and_ordinal() {
        let plan =
            FaultPlan::parse("kill:rank=2,barrier=7;kill:rank=2,barrier=7,attempt=1").unwrap();
        assert_eq!(plan.at_barrier(2, 0, 7).count(), 1);
        assert_eq!(plan.at_barrier(2, 1, 7).count(), 1);
        assert_eq!(plan.at_barrier(2, 0, 6).count(), 0);
        assert_eq!(plan.at_barrier(1, 0, 7).count(), 0);
        assert_eq!(plan.at_barrier(2, 2, 7).count(), 0);
        assert!(plan.is_empty_for(0, 0));
        assert!(!plan.is_empty_for(2, 0));
        assert!(!plan.is_empty_for(2, 1));
        assert!(plan.is_empty_for(2, 2));
    }

    #[test]
    fn delay_matching_by_frame_class() {
        let plan = FaultPlan::parse("delay:rank=1,frame=chan,ms=5,count=3").unwrap();
        assert_eq!(plan.delays_for(1, 0, FrameClass::Chan).count(), 1);
        assert_eq!(plan.delays_for(1, 0, FrameClass::Coll).count(), 0);
        assert_eq!(plan.delays_for(0, 0, FrameClass::Chan).count(), 0);
        let any = FaultPlan::parse("delay:rank=0").unwrap();
        assert_eq!(any.delays_for(0, 0, FrameClass::Credit).count(), 1);
        assert_eq!(any.actions[0].count, 1);
        assert_eq!(any.actions[0].delay(), Duration::from_millis(100));
    }

    #[test]
    fn empty_and_whitespace_plans_are_empty() {
        assert!(FaultPlan::parse("").unwrap().actions.is_empty());
        assert!(FaultPlan::parse(" ; ;").unwrap().actions.is_empty());
        assert!(FaultPlan::default().is_empty_for(0, 0));
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "kill",                    // no keys
            "explode:rank=1",          // unknown kind
            "kill:barrier=3",          // missing rank
            "kill:rank=x",             // non-numeric
            "kill:rank=1,barrier=0",   // 1-based ordinals
            "delay:rank=1,frame=warp", // unknown frame class
            "kill:rank=1,when=now",    // unknown key
            "kill:rank=1,barrier",     // missing '='
            "flip-bit:rank=1,nth=0",   // 1-based frame ordinals
            "nan:rank=0,cycle=0",      // 1-based cycle ordinals
            "corrupt-window:offset=4", // missing rank
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn plan_errors_name_the_offending_clause() {
        let err = FaultPlan::parse("kill:rank=2; explode:rank=1").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("malformed LS_FAULT plan"), "{text}");
        assert!(text.contains("explode"), "{text}");
        let err = FaultPlan::parse("delay:rank=1,frame=warp").unwrap_err();
        assert!(err.to_string().contains("warp"), "{err}");
    }

    #[test]
    fn parses_the_corruption_kinds() {
        let plan = FaultPlan::parse(
            "flip-bit:rank=2,frame=accum,nth=40; corrupt-window:rank=1,offset=8,count=2; \
             nan:rank=0,cycle=3",
        )
        .unwrap();
        assert_eq!(plan.actions.len(), 3);
        assert_eq!(plan.actions[0].kind, FaultKind::FlipBit);
        assert_eq!(plan.actions[0].nth, 40);
        assert_eq!(plan.actions[0].frame, FrameClass::Accum);
        assert_eq!(plan.actions[1].kind, FaultKind::CorruptWindow);
        assert_eq!(plan.actions[1].offset, 8);
        assert_eq!(plan.actions[1].count, 2);
        assert_eq!(plan.actions[2].kind, FaultKind::Nan);
        assert_eq!(plan.actions[2].cycle, 3);
        assert_eq!(format!("{}", FaultKind::FlipBit), "flip-bit");
        assert_eq!(format!("{}", FaultKind::CorruptWindow), "corrupt-window");
        assert_eq!(format!("{}", FaultKind::Nan), "nan");

        // The corruption kinds never fire at barriers and never delay.
        assert_eq!(plan.at_barrier(2, 0, 1).count(), 0);
        assert_eq!(plan.delays_for(2, 0, FrameClass::Accum).count(), 0);
        // But each has its own trigger query, rank- and attempt-gated.
        assert_eq!(plan.flips_for(2, 0, FrameClass::Accum).count(), 1);
        assert_eq!(plan.flips_for(2, 0, FrameClass::Coll).count(), 0);
        assert_eq!(plan.flips_for(2, 1, FrameClass::Accum).count(), 0);
        assert_eq!(plan.window_corruptions_for(1, 0).count(), 1);
        assert_eq!(plan.window_corruptions_for(0, 0).count(), 0);
        assert_eq!(plan.nans_at(0, 0, 3).count(), 1);
        assert_eq!(plan.nans_at(0, 0, 2).count(), 0);
        assert_eq!(plan.nans_at(1, 0, 3).count(), 0);
        assert!(!plan.is_empty_for(0, 0));
    }
}
