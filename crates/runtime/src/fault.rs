//! Deterministic fault injection for the multiprocess transport.
//!
//! A fault plan is parsed from the `LS_FAULT` environment variable and
//! executed inside [`crate::transport`]. Triggers are counter-derived
//! (barrier ordinals, frame send counts), never time-derived, so a plan
//! replays identically on every run of the same deterministic SPMD
//! program — the property that turns a kill-and-resume smoke test into a
//! systematic fault matrix.
//!
//! Grammar (actions separated by `;`, keys by `,`):
//!
//! ```text
//! LS_FAULT = action (";" action)*
//! action   = "kill"      ":" keys   — SIGABRT the rank at a barrier
//!          | "delay"     ":" keys   — sleep before sending matching frames
//!          | "drop-conn" ":" keys   — shut down every mesh socket at a barrier
//! keys     = key "=" value ("," key "=" value)*
//!            rank=R                  (required: which rank misbehaves)
//!            barrier=N               (kill/drop-conn: fire entering the
//!                                     N-th barrier of the run; default 1)
//!            frame=coll|chan|close|credit|accum|any
//!                                    (delay: which frames; default any)
//!            ms=M                    (delay: sleep per frame; default 100)
//!            count=C                 (delay: first C matching frames;
//!                                     default 1)
//!            attempt=A               (fire only in supervisor incarnation
//!                                     A; default 0, i.e. the first launch
//!                                     — restarted incarnations run clean
//!                                     so recovery converges)
//! ```
//!
//! Examples: `kill:rank=2,barrier=7`, `delay:rank=1,frame=accum,ms=500`,
//! `drop-conn:rank=3,barrier=2`, or several at once separated by `;`.

use std::fmt;
use std::time::Duration;

/// Environment variable carrying the fault plan.
pub const ENV_FAULT: &str = "LS_FAULT";

/// What a fault action does when its trigger fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Abort the process (SIGABRT — the supervisor classifies it as a
    /// crash) on entering the trigger barrier.
    Kill,
    /// Sleep `ms` before sending each of the first `count` matching
    /// frames.
    Delay,
    /// Shut down every mesh TCP stream on entering the trigger barrier
    /// (simulates losing the NIC: peers observe EOF, the rank itself
    /// fails its next send).
    DropConn,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Kill => "kill",
            FaultKind::Delay => "delay",
            FaultKind::DropConn => "drop-conn",
        })
    }
}

/// Which wire frames a `delay` action applies to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FrameClass {
    /// Collective frames (barriers, allgathers, reductions).
    Coll,
    /// Channel data frames.
    Chan,
    /// Channel close frames.
    Close,
    /// Channel credit returns.
    Credit,
    /// Remote accumulate frames.
    Accum,
    /// Every frame.
    Any,
}

/// One parsed fault action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultAction {
    /// What to do.
    pub kind: FaultKind,
    /// The rank that misbehaves.
    pub rank: usize,
    /// Barrier ordinal (1-based) at which kill/drop-conn fire.
    pub barrier: u64,
    /// Frame filter for delay actions.
    pub frame: FrameClass,
    /// Delay per matching frame.
    pub ms: u64,
    /// How many matching frames a delay action slows down.
    pub count: u64,
    /// Supervisor incarnation in which the action is armed.
    pub attempt: u64,
}

impl FaultAction {
    /// The sleep a `delay` action injects.
    pub fn delay(&self) -> Duration {
        Duration::from_millis(self.ms)
    }
}

/// A parsed `LS_FAULT` plan. An empty plan injects nothing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The parsed actions, in plan order.
    pub actions: Vec<FaultAction>,
}

/// A malformed `LS_FAULT` value, with the offending fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultParseError(pub String);

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed {ENV_FAULT} plan: {}", self.0)
    }
}

impl std::error::Error for FaultParseError {}

impl FaultPlan {
    /// Parses a plan string. Errors are loud: a typo in a chaos test must
    /// not silently inject nothing.
    pub fn parse(plan: &str) -> Result<FaultPlan, FaultParseError> {
        let mut actions = Vec::new();
        for raw in plan.split(';') {
            let spec = raw.trim();
            if spec.is_empty() {
                continue;
            }
            let (kind_str, keys) = spec
                .split_once(':')
                .ok_or_else(|| FaultParseError(format!("{spec:?}: missing ':' after kind")))?;
            let kind = match kind_str.trim() {
                "kill" => FaultKind::Kill,
                "delay" => FaultKind::Delay,
                "drop-conn" => FaultKind::DropConn,
                other => {
                    return Err(FaultParseError(format!(
                        "unknown kind {other:?} (want kill, delay or drop-conn)"
                    )))
                }
            };
            let mut rank: Option<usize> = None;
            let mut barrier = 1u64;
            let mut frame = FrameClass::Any;
            let mut ms = 100u64;
            let mut count = 1u64;
            let mut attempt = 0u64;
            for kv in keys.split(',') {
                let kv = kv.trim();
                if kv.is_empty() {
                    continue;
                }
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| FaultParseError(format!("{kv:?}: missing '='")))?;
                let (key, value) = (key.trim(), value.trim());
                let num = || {
                    value
                        .parse::<u64>()
                        .map_err(|_| FaultParseError(format!("{key}={value:?}: not a number")))
                };
                match key {
                    "rank" => rank = Some(num()? as usize),
                    "barrier" => barrier = num()?,
                    "ms" => ms = num()?,
                    "count" => count = num()?,
                    "attempt" => attempt = num()?,
                    "frame" => {
                        frame = match value {
                            "coll" => FrameClass::Coll,
                            "chan" => FrameClass::Chan,
                            "close" => FrameClass::Close,
                            "credit" => FrameClass::Credit,
                            "acc" | "accum" => FrameClass::Accum,
                            "any" => FrameClass::Any,
                            other => {
                                return Err(FaultParseError(format!(
                                    "frame={other:?}: want coll, chan, close, credit, \
                                     accum or any"
                                )))
                            }
                        }
                    }
                    other => return Err(FaultParseError(format!("unknown key {other:?}"))),
                }
            }
            let rank =
                rank.ok_or_else(|| FaultParseError(format!("{spec:?}: rank= is required")))?;
            if barrier == 0 {
                return Err(FaultParseError("barrier ordinals are 1-based".into()));
            }
            actions.push(FaultAction { kind, rank, barrier, frame, ms, count, attempt });
        }
        Ok(FaultPlan { actions })
    }

    /// Parses `LS_FAULT` from the environment; absent means no faults.
    ///
    /// # Panics
    /// Panics on a malformed plan (silently ignoring a chaos plan would
    /// make a failing fault test look green).
    pub fn from_env() -> FaultPlan {
        match std::env::var(ENV_FAULT) {
            Err(_) => FaultPlan::default(),
            Ok(plan) => match FaultPlan::parse(&plan) {
                Ok(p) => p,
                Err(e) => panic!("{e}"),
            },
        }
    }

    /// True when no action is armed for `rank` in incarnation `attempt`
    /// (the hot-path early-out: transport hooks skip all bookkeeping).
    pub fn is_empty_for(&self, rank: usize, attempt: u64) -> bool {
        !self.actions.iter().any(|a| a.rank == rank && a.attempt == attempt)
    }

    /// The kill/drop-conn actions armed for `rank` in `attempt` that fire
    /// on entering barrier ordinal `barrier` (1-based).
    pub fn at_barrier(
        &self,
        rank: usize,
        attempt: u64,
        barrier: u64,
    ) -> impl Iterator<Item = &FaultAction> {
        self.actions.iter().filter(move |a| {
            a.rank == rank
                && a.attempt == attempt
                && a.barrier == barrier
                && matches!(a.kind, FaultKind::Kill | FaultKind::DropConn)
        })
    }

    /// The delay actions armed for `rank` in `attempt` matching a frame of
    /// class `frame`. Budget accounting (`count`) is the caller's job —
    /// the plan itself stays immutable and shareable.
    pub fn delays_for(
        &self,
        rank: usize,
        attempt: u64,
        frame: FrameClass,
    ) -> impl Iterator<Item = (usize, &FaultAction)> {
        self.actions.iter().enumerate().filter(move |(_, a)| {
            a.kind == FaultKind::Delay
                && a.rank == rank
                && a.attempt == attempt
                && (a.frame == FrameClass::Any || a.frame == frame)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_examples() {
        let plan = FaultPlan::parse(
            "kill:rank=2,barrier=7; delay:rank=1,frame=accum,ms=500; drop-conn:rank=3",
        )
        .unwrap();
        assert_eq!(plan.actions.len(), 3);
        assert_eq!(
            plan.actions[0],
            FaultAction {
                kind: FaultKind::Kill,
                rank: 2,
                barrier: 7,
                frame: FrameClass::Any,
                ms: 100,
                count: 1,
                attempt: 0,
            }
        );
        assert_eq!(plan.actions[1].kind, FaultKind::Delay);
        assert_eq!(plan.actions[1].frame, FrameClass::Accum);
        assert_eq!(plan.actions[1].ms, 500);
        assert_eq!(plan.actions[2].kind, FaultKind::DropConn);
        assert_eq!(plan.actions[2].barrier, 1, "barrier defaults to the first");
    }

    #[test]
    fn trigger_filters_respect_rank_attempt_and_ordinal() {
        let plan =
            FaultPlan::parse("kill:rank=2,barrier=7;kill:rank=2,barrier=7,attempt=1").unwrap();
        assert_eq!(plan.at_barrier(2, 0, 7).count(), 1);
        assert_eq!(plan.at_barrier(2, 1, 7).count(), 1);
        assert_eq!(plan.at_barrier(2, 0, 6).count(), 0);
        assert_eq!(plan.at_barrier(1, 0, 7).count(), 0);
        assert_eq!(plan.at_barrier(2, 2, 7).count(), 0);
        assert!(plan.is_empty_for(0, 0));
        assert!(!plan.is_empty_for(2, 0));
        assert!(!plan.is_empty_for(2, 1));
        assert!(plan.is_empty_for(2, 2));
    }

    #[test]
    fn delay_matching_by_frame_class() {
        let plan = FaultPlan::parse("delay:rank=1,frame=chan,ms=5,count=3").unwrap();
        assert_eq!(plan.delays_for(1, 0, FrameClass::Chan).count(), 1);
        assert_eq!(plan.delays_for(1, 0, FrameClass::Coll).count(), 0);
        assert_eq!(plan.delays_for(0, 0, FrameClass::Chan).count(), 0);
        let any = FaultPlan::parse("delay:rank=0").unwrap();
        assert_eq!(any.delays_for(0, 0, FrameClass::Credit).count(), 1);
        assert_eq!(any.actions[0].count, 1);
        assert_eq!(any.actions[0].delay(), Duration::from_millis(100));
    }

    #[test]
    fn empty_and_whitespace_plans_are_empty() {
        assert!(FaultPlan::parse("").unwrap().actions.is_empty());
        assert!(FaultPlan::parse(" ; ;").unwrap().actions.is_empty());
        assert!(FaultPlan::default().is_empty_for(0, 0));
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "kill",                    // no keys
            "explode:rank=1",          // unknown kind
            "kill:barrier=3",          // missing rank
            "kill:rank=x",             // non-numeric
            "kill:rank=1,barrier=0",   // 1-based ordinals
            "delay:rank=1,frame=warp", // unknown frame class
            "kill:rank=1,when=now",    // unknown key
            "kill:rank=1,barrier",     // missing '='
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
