//! Atomic accumulation windows: the `y[i] += coeff` of the paper's
//! matrix-vector product, executable concurrently from any locale.
//!
//! Scalars are viewed as their `f64` lanes and accumulated with CAS loops
//! on `AtomicU64` bit patterns; `Relaxed` ordering suffices because
//! accumulation is commutative and the epoch ends with a barrier that
//! publishes everything.
//!
//! The window itself performs no statistics recording: whether an
//! accumulation is "remote" depends on the algorithm (the batched matvec
//! ships coefficients in bulk and then accumulates *locally on behalf of*
//! the destination, while the naive matvec really does remote updates), so
//! attribution is the caller's job via [`crate::stats::CommStats`].
//!
//! ## Multiprocess epochs
//!
//! Under the multiprocess transport an accumulation window is collective:
//! `new` registers this rank's part as an accumulate target and barriers
//! (no remote add can arrive before its target exists), remote
//! `fetch_add`s travel as transport frames applied atomically by the
//! owner, and drop barriers before deregistering — the barrier doubles as
//! the flush, so after the epoch the owner's part holds every
//! contribution. Remote parts of the local replica are **not** updated
//! ([`AtomicAccumWindow::load`] of a remote locale reads stale data).
//! A peer failing while accumulate frames are in flight surfaces at the
//! next collective (or immediately, via socket EOF on the frame
//! stream) as an attributed abort — see [`crate::transport`]'s failure
//! model. Outbound accumulate frames are eligible targets for `LS_FAULT`
//! `delay:` injection (frame class `accum`).

use crate::distvec::DistVec;
use crate::transport::{self, MpRuntime};
use ls_kernels::Scalar;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// A window over a distributed vector of scalars allowing concurrent
/// `fetch_add` from any locale.
pub struct AtomicAccumWindow<'a, S: Scalar> {
    /// Per locale: pointer to the first `AtomicU64` lane and the number of
    /// *scalar* elements.
    parts: Vec<(*const AtomicU64, usize)>,
    /// Multiprocess: the runtime, this rank, and the registered window id.
    mp: Option<(&'static MpRuntime, usize, u64)>,
    _marker: PhantomData<&'a mut [S]>,
}

unsafe impl<'a, S: Scalar> Send for AtomicAccumWindow<'a, S> {}
unsafe impl<'a, S: Scalar> Sync for AtomicAccumWindow<'a, S> {}

impl<'a, S: Scalar> AtomicAccumWindow<'a, S> {
    /// Opens an accumulation epoch on `vec`. Multiprocess: collective
    /// (registers this rank's part and barriers).
    pub fn new(vec: &'a mut DistVec<S>) -> Self {
        // Layout guarantee: f64 and Complex64 are repr(C) aggregates of
        // f64 lanes, and AtomicU64 has the same size/alignment as f64.
        const {
            assert!(std::mem::align_of::<S>() >= std::mem::align_of::<u64>());
        };
        assert_eq!(std::mem::size_of::<S>(), 8 * S::N_REALS);
        let parts: Vec<(*const AtomicU64, usize)> = vec
            .parts_mut()
            .iter_mut()
            .map(|p| (p.as_mut_ptr() as *const AtomicU64, p.len()))
            .collect();
        let mp = transport::active().map(|mp| {
            let me = mp.rank();
            let (base, len) = parts[me];
            // SAFETY: the borrow of `vec` keeps the part alive for the
            // window lifetime; drop deregisters before releasing it.
            let id = unsafe { mp.register_accum(base, len, S::N_REALS) };
            mp.barrier();
            (mp, me, id)
        });
        Self { parts, mp, _marker: PhantomData }
    }

    /// Element count of `locale`'s part.
    pub fn len(&self, locale: usize) -> usize {
        self.parts[locale].1
    }

    /// True when `locale`'s part is empty.
    pub fn is_empty(&self, locale: usize) -> bool {
        self.len(locale) == 0
    }

    /// Atomically `vec[locale][index] += val`. Safe to call concurrently
    /// from any number of threads. Multiprocess: a remote `locale` ships
    /// one transport frame; the add is visible to the owner no later than
    /// the next barrier.
    #[inline]
    pub fn fetch_add(&self, locale: usize, index: usize, val: S) {
        let (base, len) = self.parts[locale];
        assert!(index < len, "accumulate out of bounds: {index} >= {len}");
        let lanes = val.to_reals();
        if let Some((mp, me, id)) = self.mp {
            if locale != me {
                if lanes.iter().take(S::N_REALS).any(|&v| v != 0.0) {
                    mp.send_acc(locale, id, index, &lanes[..S::N_REALS]);
                }
                return;
            }
        }
        for (lane, &add) in lanes.iter().enumerate().take(S::N_REALS) {
            if add == 0.0 {
                continue;
            }
            // SAFETY: index bounds checked; all epoch access is atomic.
            let cell = unsafe { &*base.add(index * S::N_REALS + lane) };
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let new = (f64::from_bits(cur) + add).to_bits();
                match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Views one locale's whole part as plain scalars — the epilogue hook
    /// for fused reductions over freshly accumulated output (e.g. the
    /// producer/consumer engine's matvec+dot computes its per-locale dot
    /// partial through this while the part is still cache-hot).
    ///
    /// # Safety
    /// Callers must guarantee that no `fetch_add` on this part can run
    /// concurrently with (or after) this call's reads — in practice: all
    /// tasks accumulating into `locale` have finished, e.g. its local
    /// countdown reached zero or a barrier was crossed.
    pub unsafe fn part_slice(&self, locale: usize) -> &[S] {
        let (base, len) = self.parts[locale];
        std::slice::from_raw_parts(base as *const S, len)
    }

    /// Atomic read of one element (diagnostics / tests). Multiprocess:
    /// only this rank's part is authoritative — a remote `locale` reads
    /// the stale local replica.
    pub fn load(&self, locale: usize, index: usize) -> S {
        let (base, len) = self.parts[locale];
        assert!(index < len);
        let mut lanes = [0.0f64; 2];
        for (lane, slot) in lanes.iter_mut().enumerate().take(S::N_REALS) {
            let cell = unsafe { &*base.add(index * S::N_REALS + lane) };
            *slot = f64::from_bits(cell.load(Ordering::Relaxed));
        }
        S::from_reals(lanes)
    }
}

impl<'a, S: Scalar> Drop for AtomicAccumWindow<'a, S> {
    fn drop(&mut self) {
        if let Some((mp, _, id)) = self.mp {
            // Unwinding out of a poisoned epoch: the flush barrier would
            // allocate the next collective sequence number against peers
            // that unwound at different points — a guaranteed desync
            // abort that would mask the recoverable corruption. Skip the
            // barrier but still deregister: stale in-flight accumulates
            // targeting a dropped id are discarded while the epoch is
            // poisoned/recovering, never applied through a dangling
            // pointer.
            if mp.is_poisoned() || std::thread::panicking() {
                mp.deregister_accum(id);
                return;
            }
            // The barrier flushes every in-flight remote add (per-peer
            // FIFO: accumulate frames travel ahead of the barrier's
            // collective frame), so deregistering afterwards is safe.
            mp.barrier();
            mp.deregister_accum(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterSpec};
    use ls_kernels::Complex64;

    #[test]
    fn concurrent_real_accumulation() {
        let n_locales = 4;
        let slots = 16usize;
        let adds_per_locale = 1000;
        let cluster = Cluster::new(ClusterSpec::new(n_locales, 1));
        let mut y = DistVec::<f64>::zeros(&vec![slots; n_locales]);
        {
            let win = AtomicAccumWindow::new(&mut y);
            cluster.run(|ctx| {
                for i in 0..adds_per_locale {
                    let dest = i % n_locales;
                    let idx = (i * 7 + ctx.locale()) % slots;
                    win.fetch_add(dest, idx, 0.5);
                }
            });
        }
        let total: f64 = y.parts().iter().flatten().sum();
        let expect = 0.5 * (adds_per_locale * n_locales) as f64;
        assert!((total - expect).abs() < 1e-9, "{total} vs {expect}");
    }

    #[test]
    fn complex_accumulation() {
        let cluster = Cluster::new(ClusterSpec::new(3, 1));
        let mut y = DistVec::<Complex64>::zeros(&[4, 4, 4]);
        {
            let win = AtomicAccumWindow::new(&mut y);
            cluster.run(|_ctx| {
                for _ in 0..100 {
                    win.fetch_add(0, 1, Complex64::new(0.25, -0.5));
                }
            });
        }
        let z = y.part(0)[1];
        assert!(z.approx_eq(Complex64::new(75.0, -150.0), 1e-9), "{z:?}");
        assert_eq!(y.part(0)[0], Complex64::ZERO);
    }

    #[test]
    fn load_reads_back() {
        let mut y = DistVec::<f64>::zeros(&[2]);
        let win = AtomicAccumWindow::new(&mut y);
        win.fetch_add(0, 0, 1.5);
        assert_eq!(win.load(0, 0), 1.5);
        assert_eq!(win.load(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let mut y = DistVec::<f64>::zeros(&[2]);
        let win = AtomicAccumWindow::new(&mut y);
        win.fetch_add(0, 2, 1.0);
    }
}
