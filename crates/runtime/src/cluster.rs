//! The simulated cluster: locales, SPMD execution, per-locale context.

use crate::barrier::SenseBarrier;
use crate::stats::{CommStats, StatsSnapshot};

/// Static description of the simulated machine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Number of locales (compute nodes).
    pub locales: usize,
    /// Worker tasks per locale used by task-parallel algorithms (the
    /// paper's nodes have 128 cores; simulations use small values).
    pub cores_per_locale: usize,
}

impl ClusterSpec {
    pub fn new(locales: usize, cores_per_locale: usize) -> Self {
        assert!(locales >= 1 && cores_per_locale >= 1);
        Self { locales, cores_per_locale }
    }
}

/// A simulated cluster. Executes SPMD closures — one thread per locale —
/// and records per-locale communication statistics.
#[derive(Debug)]
pub struct Cluster {
    spec: ClusterSpec,
    stats: Vec<CommStats>,
    barrier: SenseBarrier,
}

impl Cluster {
    pub fn new(spec: ClusterSpec) -> Self {
        Self {
            stats: (0..spec.locales).map(|_| CommStats::new()).collect(),
            barrier: SenseBarrier::new(spec.locales),
            spec,
        }
    }

    pub fn spec(&self) -> ClusterSpec {
        self.spec
    }

    pub fn n_locales(&self) -> usize {
        self.spec.locales
    }

    pub fn stats(&self) -> &[CommStats] {
        &self.stats
    }

    /// Sum of all locales' statistics.
    pub fn stats_total(&self) -> StatsSnapshot {
        self.stats
            .iter()
            .map(|s| s.snapshot())
            .fold(StatsSnapshot::default(), |acc, s| acc.merged(&s))
    }

    pub fn reset_stats(&self) {
        for s in &self.stats {
            s.reset();
        }
    }

    /// Runs `f` once per locale (SPMD), each invocation on its own OS
    /// thread, and returns the per-locale results in locale order.
    ///
    /// This is the analogue of the paper's
    /// `coforall loc in Locales do on loc { ... }`.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&LocaleCtx<'_>) -> R + Sync,
    {
        let n = self.spec.locales;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for locale in 0..n {
                let ctx = LocaleCtx {
                    locale,
                    n_locales: n,
                    cores: self.spec.cores_per_locale,
                    stats: &self.stats,
                    barrier: &self.barrier,
                };
                let f = &f;
                handles.push(scope.spawn(move || f(&ctx)));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    // Re-raise with the original payload so callers (and
                    // #[should_panic] tests) see the real message.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }
}

/// Execution context handed to each locale's SPMD task.
#[derive(Copy, Clone)]
pub struct LocaleCtx<'a> {
    locale: usize,
    n_locales: usize,
    cores: usize,
    stats: &'a [CommStats],
    barrier: &'a SenseBarrier,
}

impl<'a> LocaleCtx<'a> {
    /// This locale's index (`here.id` in Chapel).
    #[inline]
    pub fn locale(&self) -> usize {
        self.locale
    }

    #[inline]
    pub fn n_locales(&self) -> usize {
        self.n_locales
    }

    /// Task-parallel width within this locale.
    #[inline]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// This locale's statistics.
    #[inline]
    pub fn stats(&self) -> &'a CommStats {
        &self.stats[self.locale]
    }

    /// All locales' statistics (used by windows that attribute the cost to
    /// the initiating locale).
    #[inline]
    pub fn all_stats(&self) -> &'a [CommStats] {
        self.stats
    }

    /// Cluster-wide barrier (records one crossing per locale).
    pub fn barrier(&self) -> &'a SenseBarrier {
        self.barrier
    }

    /// Waits on the cluster barrier and records the crossing.
    pub fn barrier_wait(&self) {
        self.stats().record_barrier();
        self.barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_locales_in_order() {
        let cluster = Cluster::new(ClusterSpec::new(4, 2));
        let ids = cluster.run(|ctx| {
            assert_eq!(ctx.n_locales(), 4);
            assert_eq!(ctx.cores(), 2);
            ctx.locale()
        });
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let cluster = Cluster::new(ClusterSpec::new(3, 1));
        let phase = AtomicUsize::new(0);
        cluster.run(|ctx| {
            phase.fetch_add(1, Ordering::SeqCst);
            ctx.barrier_wait();
            assert_eq!(phase.load(Ordering::SeqCst), 3);
            ctx.barrier_wait();
            phase.fetch_add(1, Ordering::SeqCst);
            ctx.barrier_wait();
            assert_eq!(phase.load(Ordering::SeqCst), 6);
        });
        let total = cluster.stats_total();
        assert_eq!(total.barriers, 9);
    }

    #[test]
    fn stats_reset() {
        let cluster = Cluster::new(ClusterSpec::new(2, 1));
        cluster.run(|ctx| ctx.barrier_wait());
        assert_eq!(cluster.stats_total().barriers, 2);
        cluster.reset_stats();
        assert_eq!(cluster.stats_total().barriers, 0);
    }

    #[test]
    fn single_locale_cluster() {
        let cluster = Cluster::new(ClusterSpec::new(1, 4));
        let out = cluster.run(|ctx| {
            ctx.barrier_wait();
            42usize + ctx.locale()
        });
        assert_eq!(out, vec![42]);
    }
}
